package lint

import (
	"go/ast"
	"go/token"
	"sort"
)

// This file is the dataflow tier's generic engine: a forward worklist solver
// over the CFG of cfg.go. Analyzers model their invariant as a small
// "may"-analysis — per tracked value a bitset of states the value may be in
// on some path — and provide one transfer function. The solver iterates to a
// fixed point (joins are pointwise bitset unions, so in-states only grow),
// then the analyzer replays each block from its solved in-state to check and
// report, asking the solver for a path witness (the statement sequence from
// entry that reaches the violating block) to attach to the diagnostic.

// Bits is a may-state bitset for one tracked value. Analyzers define their
// own bit meanings (bufown: owned/released/transferred; spanbalance:
// started; lockorder: locked).
type Bits uint8

// Fact is the abstract state of one tracked value: the states it may be in,
// plus the node that originated tracking (for reporting).
type Fact struct {
	Bits   Bits
	Origin ast.Node
}

// State maps tracked-value keys to facts. Keys are canonical access paths
// ("buf", "m.Payload", "j.mu") produced by PathKey; a missing key means the
// value is untracked (the analyzer's bottom).
type State map[string]Fact

// clone copies a state.
func (s State) clone() State {
	out := make(State, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// join unions other into s pointwise and reports whether s changed.
func (s State) join(other State) bool {
	changed := false
	for k, v := range other {
		cur, ok := s[k]
		if !ok {
			s[k] = v
			changed = true
			continue
		}
		merged := cur
		merged.Bits |= v.Bits
		if merged.Origin == nil {
			merged.Origin = v.Origin
		}
		if merged != cur {
			s[k] = merged
			changed = true
		}
	}
	return changed
}

// Flow runs a forward may-analysis over g. transfer mutates st in place for
// one node; it is called for every node of every block, in order. The
// returned map holds the solved in-state of every block.
//
// The iteration count is capped (transfer functions with kills are not
// formally monotone); hitting the cap leaves a sound over-approximation
// because in-states only ever grow.
func Flow(g *CFG, transfer func(n ast.Node, st State)) map[*Block]State {
	// Every block is seeded onto the worklist: a block must be processed at
	// least once even if its in-state never grows past empty, or facts born
	// inside it would never reach its successors.
	in := make(map[*Block]State, len(g.Blocks))
	work := make([]*Block, 0, len(g.Blocks))
	queued := make(map[*Block]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = State{}
		work = append(work, b)
		queued[b] = true
	}
	steps := 0
	limit := 64 * (len(g.Blocks) + 1)
	for len(work) > 0 && steps < limit {
		steps++
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := in[b].clone()
		for _, n := range b.Nodes {
			transfer(n, out)
		}
		for _, s := range b.Succs {
			if in[s].join(out) && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// ExitState replays the solved analysis to the exit block's in-state and
// then applies the function's deferred statements through transfer, giving
// the state every path ends in (defers run on all exits).
func ExitState(g *CFG, in map[*Block]State, transfer func(n ast.Node, st State)) State {
	st := in[g.Exit].clone()
	for _, d := range g.Defers {
		transfer(d.Call, st)
	}
	return st
}

// Witness is one step of the path from function entry to a violation.
type Witness struct {
	Pos  token.Position
	Text string
}

// PathWitness returns the shortest entry→to block path's node sequence,
// rendered for humans: the statement sequence that reaches the violation.
// The final node index bounds how much of the destination block is included
// (-1 = all of it).
func (c *CFG) PathWitness(fset *token.FileSet, to *Block, lastNode ast.Node) []Witness {
	// BFS over predecessors from the destination back to the entry.
	prev := map[*Block]*Block{to: nil}
	queue := []*Block{to}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if b == c.Entry {
			break
		}
		preds := append([]*Block(nil), b.Preds...)
		sort.Slice(preds, func(i, j int) bool { return preds[i].Index < preds[j].Index })
		for _, p := range preds {
			if _, seen := prev[p]; !seen {
				prev[p] = b
				queue = append(queue, p)
			}
		}
	}
	if _, ok := prev[c.Entry]; !ok && to != c.Entry {
		return nil
	}
	var path []*Block
	for b := c.Entry; b != nil; b = prev[b] {
		path = append(path, b)
		if b == to {
			break
		}
	}
	var out []Witness
	for _, b := range path {
		for _, n := range b.Nodes {
			out = append(out, Witness{Pos: fset.Position(n.Pos()), Text: nodeText(fset, n)})
			if b == to && n == lastNode {
				return out
			}
		}
	}
	return out
}
