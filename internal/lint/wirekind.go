package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// newWirekind builds the wirekind analyzer: every DWP frame kind must be
// wired through all of its dispatch surfaces. Adding a Kind constant is a
// four-site change — codec (newMessage), server dispatch (the session
// type-switch), client handling, and the diagnostic label table — and the
// compiler checks none of them: a missed arm is a runtime "no message for
// kind" failure or a silent drop the first time a peer sends the frame.
//
// Surfaces are declared, not guessed, with //etlvirt:dispatch directives:
//
//	//etlvirt:dispatch codec            on the kind-switch that allocates messages
//	//etlvirt:dispatch server [-KindX]  on the server's message type-switch;
//	                                    -KindX exempts kinds handled elsewhere
//	//etlvirt:dispatch client [-KindX]  anywhere in the client package: every
//	                                    server->client message type must be
//	                                    referenced in that package
//
// The label surface (Kind.String's positional name table) is found
// automatically from the Kind type's String method. Directions come from the
// constants' trailing comments ("client -> server", "server -> client"),
// which are already the protocol documentation.
func newWirekind() *Analyzer {
	a := &Analyzer{
		Name:     "wirekind",
		Doc:      "every wire kind constant must be covered by the codec, server dispatch, client handling, and label surfaces (//etlvirt:dispatch)",
		Dataflow: true,
		// Not cacheable: coverage spans the wire, core, and client packages.
	}
	st := &wirekindState{
		typeKind: make(map[string]string),
		labels:   make(map[string]labelTable),
	}
	a.Run = func(p *Pass) { st.run(p) }
	a.End = func(report func(Diagnostic)) { st.end(report) }
	return a
}

// wireKindConst is one declared kind constant.
type wireKindConst struct {
	name     string
	pkg      string // package path declaring the constant
	value    int64
	toServer bool // "client -> server" per the trailing comment
	toClient bool // "server -> client"
	pos      token.Position
}

type dispatchSurface struct {
	covered map[string]bool // kind names (codec) or message type names (server)
	exempt  map[string]bool // -KindX tokens
	pos     token.Position
}

type wirekindState struct {
	kinds    []wireKindConst
	typeKind map[string]string // message type name -> kind constant name

	codec        *dispatchSurface
	codecKindPkg string // package path of the codec switch tag's Kind type
	server       *dispatchSurface

	client    *dispatchSurface // covered holds referenced type names
	clientPkg string
	// labels maps a package path to its Kind.String name table, so an
	// unrelated Kind type in another package (e.g. column-type kinds) is
	// checked against its own table, not the wire protocol's.
	labels map[string]labelTable
}

type labelTable struct {
	count int
	pos   token.Position
}

func (st *wirekindState) run(p *Pass) {
	st.collectKinds(p)
	st.collectKindMethods(p)
	st.collectLabelTable(p)
	st.collectDispatch(p)
}

// collectKinds records exported constants of a type named Kind, with their
// direction comments.
func (st *wirekindState) collectKinds(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				dir := ""
				if vs.Comment != nil {
					dir = vs.Comment.Text()
				}
				for _, id := range vs.Names {
					c, ok := p.Info.Defs[id].(*types.Const)
					if !ok || namedTypeName(c.Type()) != "Kind" {
						continue
					}
					if !strings.HasPrefix(id.Name, "Kind") || id.Name == "KindInvalid" {
						continue
					}
					v, ok := constant.Int64Val(c.Val())
					if !ok {
						continue
					}
					st.kinds = append(st.kinds, wireKindConst{
						name:     id.Name,
						pkg:      p.Path,
						value:    v,
						toServer: strings.Contains(dir, "client -> server"),
						toClient: strings.Contains(dir, "server -> client"),
						pos:      p.Fset.Position(id.Pos()),
					})
				}
			}
		}
	}
}

// collectKindMethods maps message type names to kind constants via the
// `func (*T) Kind() Kind { return KindT }` convention.
func (st *wirekindState) collectKindMethods(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Kind" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if len(fd.Body.List) != 1 {
				continue
			}
			ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				continue
			}
			kindID, ok := ast.Unparen(ret.Results[0]).(*ast.Ident)
			if !ok {
				continue
			}
			recv := fd.Recv.List[0].Type
			if se, isStar := recv.(*ast.StarExpr); isStar {
				recv = se.X
			}
			if tid, isIdent := recv.(*ast.Ident); isIdent {
				st.typeKind[tid.Name] = kindID.Name
			}
		}
	}
}

// collectLabelTable finds Kind.String's positional name array.
func (st *wirekindState) collectLabelTable(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "String" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv := fd.Recv.List[0].Type
			if se, isStar := recv.(*ast.StarExpr); isStar {
				recv = se.X
			}
			tid, isIdent := recv.(*ast.Ident)
			if !isIdent || tid.Name != "Kind" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				if _, isArr := lit.Type.(*ast.ArrayType); !isArr {
					return true
				}
				st.labels[p.Path] = labelTable{count: len(lit.Elts), pos: p.Fset.Position(lit.Pos())}
				return false
			})
		}
	}
}

// collectDispatch finds //etlvirt:dispatch directives and the switch
// statements they annotate.
func (st *wirekindState) collectDispatch(p *Pass) {
	type pending struct {
		role   string
		exempt map[string]bool
		file   string
		line   int
		pos    token.Position
	}
	var pendings []pending
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok || d.Verb != "dispatch" || len(d.Args) == 0 {
					continue
				}
				exempt := make(map[string]bool)
				for _, a := range d.Args[1:] {
					exempt[strings.TrimPrefix(a, "-")] = true
				}
				pos := p.Fset.Position(c.Pos())
				role := d.Args[0]
				if role == "client" {
					st.client = &dispatchSurface{covered: make(map[string]bool), exempt: exempt, pos: pos}
					st.clientPkg = p.Path
					continue
				}
				pendings = append(pendings, pending{role: role, exempt: exempt, file: pos.Filename, line: pos.Line, pos: pos})
			}
		}
	}
	if st.client != nil && p.Path == st.clientPkg {
		// Every named type referenced in the client package counts as
		// handled there: construction, type-switch cases, and field access
		// all resolve through a TypeName use. A reference to the Kind
		// constant itself (Expect(wire.KindLoadDone)) also counts — ack-only
		// frames are consumed by kind without naming the message type.
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				switch obj := p.Uses(id).(type) {
				case *types.TypeName:
					st.client.covered[obj.Name()] = true
				case *types.Const:
					if namedTypeName(obj.Type()) == "Kind" {
						st.client.covered[obj.Name()] = true
					}
				}
				return true
			})
		}
	}
	if len(pendings) == 0 {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var covered []string
			tagPkg := ""
			switch sw := n.(type) {
			case *ast.SwitchStmt:
				if sw.Tag != nil && p.Info != nil {
					if named, ok := p.Info.TypeOf(sw.Tag).(*types.Named); ok && named.Obj().Pkg() != nil {
						tagPkg = named.Obj().Pkg().Path()
					}
				}
				for _, c := range sw.Body.List {
					cc := c.(*ast.CaseClause)
					for _, e := range cc.List {
						if id, ok := ast.Unparen(e).(*ast.Ident); ok {
							covered = append(covered, id.Name)
						} else if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
							covered = append(covered, sel.Sel.Name)
						}
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range sw.Body.List {
					cc := c.(*ast.CaseClause)
					for _, e := range cc.List {
						if name := caseTypeName(e); name != "" {
							covered = append(covered, name)
						}
					}
				}
			default:
				return true
			}
			pos := p.Fset.Position(n.Pos())
			for _, pd := range pendings {
				if pd.file != pos.Filename || (pos.Line != pd.line && pos.Line != pd.line+1) {
					continue
				}
				surf := &dispatchSurface{covered: make(map[string]bool), exempt: pd.exempt, pos: pd.pos}
				for _, name := range covered {
					surf.covered[name] = true
				}
				switch pd.role {
				case "codec":
					st.codec = surf
					st.codecKindPkg = tagPkg
				case "server":
					st.server = surf
				}
			}
			return true
		})
	}
}

// caseTypeName extracts the named type of a type-switch case expression
// (*wire.Logoff -> "Logoff").
func caseTypeName(e ast.Expr) string {
	e = ast.Unparen(e)
	if se, ok := e.(*ast.StarExpr); ok {
		e = se.X
	}
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// end cross-references every kind against every declared surface.
func (st *wirekindState) end(report func(Diagnostic)) {
	// kindType inverts typeKind for server/client coverage.
	kindType := make(map[string]string, len(st.typeKind))
	for typ, kind := range st.typeKind {
		kindType[kind] = typ
	}
	kinds := append([]wireKindConst(nil), st.kinds...)
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].value < kinds[j].value })
	for _, k := range kinds {
		typ := kindType[k.name]
		// Protocol-surface checks apply only to the Kind type the codec
		// switch dispatches on; unrelated Kind enums in other packages keep
		// their (per-package) label check but nothing else.
		protocol := st.codecKindPkg == "" || k.pkg == st.codecKindPkg
		if st.codec != nil && protocol && !st.codec.covered[k.name] && !st.codec.exempt[k.name] {
			report(Diagnostic{
				Pos: k.pos, Analyzer: "wirekind",
				Message: k.name + " has no arm in the codec dispatch switch (" + st.codec.pos.String() + "); decoding this kind will fail at runtime",
				Related: []token.Position{st.codec.pos},
			})
		}
		if lt, ok := st.labels[k.pkg]; ok && k.value >= int64(lt.count) {
			report(Diagnostic{
				Pos: k.pos, Analyzer: "wirekind",
				Message: k.name + " has no entry in Kind.String's name table (" + lt.pos.String() + "); traces will show a numeric kind",
				Related: []token.Position{lt.pos},
			})
		}
		if st.server != nil && protocol && k.toServer && typ != "" && !st.server.covered[typ] && !st.server.exempt[k.name] {
			report(Diagnostic{
				Pos: k.pos, Analyzer: "wirekind",
				Message: k.name + " is client->server but *" + typ + " has no case in the server dispatch switch (" + st.server.pos.String() + "); add one or exempt it with -" + k.name,
				Related: []token.Position{st.server.pos},
			})
		}
		if st.client != nil && protocol && k.toClient && typ != "" && !st.client.covered[typ] &&
			!st.client.covered[k.name] && !st.client.exempt[k.name] {
			report(Diagnostic{
				Pos: k.pos, Analyzer: "wirekind",
				Message: k.name + " is server->client but " + typ + " is never referenced in the client package " + st.clientPkg + "; handle it or exempt it with -" + k.name,
			})
		}
	}
}
