package lint

import (
	"go/ast"
	"go/types"
)

// spanStarted: the trace handle may hold an unfinished span on some path.
const spanStarted Bits = 1 << 0

// newSpanbalance builds the spanbalance analyzer: every Tracer.Start /
// Tracer.StartCtx must reach a Finish on all paths, or hand the trace off to
// an owner that will (return it, publish it into a registry, pass it to
// another function). The observability invariant behind it: an unfinished
// span pins its job's trace buffer in the tracer forever and the CDC SLO
// attribution report silently under-counts the job, so span leaks are data
// corruption for the ops plane, not just noise.
//
// The analysis is flow-sensitive with hand-off semantics:
//
//   - assigning the handle into a composite literal re-keys tracking to the
//     literal's field (newImportJob's `j := &importJob{trace: trace}`);
//   - returning or publishing the holder clears it (the caller or registry
//     now owns the span's lifecycle);
//   - passing the handle as a call argument clears it (hand-off), but using
//     it as a method receiver (trace.Span(...)) does not — recording spans
//     is not finishing them;
//   - a Finish call on any tracer clears all handles (Finish is keyed by job
//     id, not by handle, so one call settles the function's spans);
//   - deferred Finish counts on every path, including panic unwinds.
func newSpanbalance() *Analyzer {
	return &Analyzer{
		Name:      "spanbalance",
		Doc:       "trace spans started with Tracer.Start/StartCtx must reach Finish or an ownership hand-off on every path",
		Run:       runSpanbalance,
		Dataflow:  true,
		Cacheable: true,
	}
}

type spanPass struct {
	p    *Pass
	body *ast.BlockStmt
}

func runSpanbalance(p *Pass) {
	if p.Info == nil {
		return // tracker is type-driven; nothing to do without types
	}
	p.forEachFuncBody(func(file *ast.File, fd *ast.FuncDecl, body *ast.BlockStmt) {
		sp := &spanPass{p: p, body: body}
		if !sp.bodyStartsSpan(body) {
			return
		}
		g := BuildCFG(body)
		transfer := func(n ast.Node, st State) { sp.transfer(n, st) }
		in := Flow(g, transfer)
		exit := ExitState(g, in, transfer)
		reported := make(map[ast.Node]bool)
		for key, f := range exit {
			if f.Bits&spanStarted == 0 || f.Origin == nil || reported[f.Origin] {
				continue
			}
			reported[f.Origin] = true
			w := g.PathWitness(p.Fset, g.Exit, nil)
			p.ReportWitness(f.Origin, w, nil,
				"trace %s may reach a return without Finish or a hand-off in %s (leaked span pins the job's trace buffer)",
				keyDisplay(key), fd.Name.Name)
		}
	})
}

// bodyStartsSpan cheaply pre-filters: only bodies containing a Start call
// need the solver.
func (sp *spanPass) bodyStartsSpan(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && sp.isTracerStart(call) {
			found = true
		}
		return !found
	})
	return found
}

func (sp *spanPass) transfer(n ast.Node, st State) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		sp.assign(n, st)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			sp.handOff(r, st)
		}
	case *ast.ExprStmt:
		sp.call(n.X, st)
	case *ast.GoStmt:
		sp.callArgs(n.Call, st)
	case *ast.DeferStmt:
		// Deferred calls run at exit; ExitState routes n.Call back here.
		for _, a := range n.Call.Args {
			sp.handOff(a, st)
		}
	case *ast.CallExpr:
		// Reached via ExitState replaying deferred calls.
		sp.call(n, st)
	case *ast.SendStmt:
		sp.handOff(n.Value, st)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					if sp.isStartExpr(v) && i < len(vs.Names) {
						if key, ok := sp.defKey(vs.Names[i]); ok {
							st[key] = Fact{Bits: spanStarted, Origin: v}
						}
					} else {
						sp.call(v, st)
					}
				}
			}
		}
	}
}

func (sp *spanPass) assign(n *ast.AssignStmt, st State) {
	for i, lhs := range n.Lhs {
		var rhs ast.Expr
		if len(n.Rhs) == len(n.Lhs) {
			rhs = n.Rhs[i]
		} else if len(n.Rhs) == 1 {
			rhs = n.Rhs[0]
		}
		key, root, ok := sp.p.PathKey(lhs)
		if !ok {
			// Publishing into an untrackable location (map entry, slice
			// element): any handle in the RHS is handed off to the store.
			if rhs != nil {
				sp.handOff(rhs, st)
			}
			continue
		}
		killPrefix(st, key)
		if rhs == nil {
			continue
		}
		if sp.isStartExpr(rhs) {
			if isBodyLocal(root, sp.body) {
				st[key] = Fact{Bits: spanStarted, Origin: rhs}
			}
			// A handle assigned straight into a field of a longer-lived
			// value is owned by that value; out of intraprocedural scope.
			continue
		}
		// Re-keying through a composite literal: j := &importJob{trace: t}.
		if lit := compositeLit(rhs); lit != nil {
			moved := false
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				srcKey, _, ok := sp.p.PathKey(kv.Value)
				if !ok {
					continue
				}
				if f, tracked := st[srcKey]; tracked && f.Bits&spanStarted != 0 {
					delete(st, srcKey)
					if isBodyLocal(root, sp.body) {
						if id, ok := kv.Key.(*ast.Ident); ok {
							st[key+"."+id.Name] = f
							moved = true
						}
					}
				}
			}
			if moved {
				continue
			}
			sp.call(rhs, st)
			continue
		}
		// Plain move between paths: alias tracking follows the newest name.
		if srcKey, _, ok := sp.p.PathKey(rhs); ok {
			if f, tracked := st[srcKey]; tracked && f.Bits&spanStarted != 0 {
				delete(st, srcKey)
				if isBodyLocal(root, sp.body) {
					st[key] = f
				}
				continue
			}
		}
		sp.call(rhs, st)
	}
}

// call processes calls inside an expression: Finish settles everything;
// handle-valued arguments are hand-offs.
func (sp *spanPass) call(e ast.Expr, st State) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sp.isTracerFinish(call) {
			for k, f := range st {
				f.Bits &^= spanStarted
				st[k] = f
			}
			return true
		}
		sp.callArgs(call, st)
		return true
	})
}

func (sp *spanPass) callArgs(call *ast.CallExpr, st State) {
	// Arguments are hand-offs; the receiver (sel.X) is only a use.
	for _, a := range call.Args {
		sp.handOff(a, st)
	}
}

// handOff clears tracking for any handle (or holder of a re-keyed handle)
// reachable from e: the recipient owns the span's lifecycle now.
func (sp *spanPass) handOff(e ast.Expr, st State) {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		sp.handOff(e.X, st)
		return
	case *ast.ParenExpr:
		sp.handOff(e.X, st)
		return
	}
	if lit := compositeLit(e); lit != nil {
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				sp.handOff(kv.Value, st)
			} else {
				sp.handOff(el, st)
			}
		}
		return
	}
	if key, _, ok := sp.p.PathKey(e); ok {
		killPrefix(st, key)
		return
	}
	sp.call(e, st)
}

// compositeLit unwraps e to a composite literal (through & and parens).
func compositeLit(e ast.Expr) *ast.CompositeLit {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CompositeLit:
			return x
		default:
			return nil
		}
	}
}

func (sp *spanPass) defKey(id *ast.Ident) (string, bool) {
	obj := sp.p.Info.Defs[id]
	if obj == nil {
		return "", false
	}
	return keyFor(id.Name, obj), true
}

func (sp *spanPass) isStartExpr(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && sp.isTracerStart(call)
}

func (sp *spanPass) isTracerStart(call *ast.CallExpr) bool {
	return sp.isTracerMethod(call, "Start") || sp.isTracerMethod(call, "StartCtx")
}

func (sp *spanPass) isTracerFinish(call *ast.CallExpr) bool {
	return sp.isTracerMethod(call, "Finish")
}

// isTracerMethod matches a method call of the given name on a value whose
// named type is called Tracer (the obs tracer, or a fixture double).
func (sp *spanPass) isTracerMethod(call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	t := sp.p.TypeOf(sel.X)
	return namedTypeName(t) == "Tracer"
}

// namedTypeName returns the name of t's named type, through pointers.
func namedTypeName(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return ""
		}
	}
}
