package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// newCtxbg builds the ctxbg analyzer: no context.Background or
// context.TODO inside internal/... outside the node-lifecycle root.
//
// Invariant (§3, PR 3): every I/O context in the virtualizer derives from
// the node lifetime, so Close() cancels in-flight credit waits, retry
// backoffs, and recovery attempts. A context.Background() anywhere else
// creates work that ignores shutdown — exactly the hang class the retry
// hardening fixed. The node-lifecycle root (node.go, where the lifetime
// context is minted) is the single allowed exception.
func newCtxbg() *Analyzer {
	return &Analyzer{
		Name:      "ctxbg",
		Doc:       "forbid context.Background/TODO in internal packages outside the node-lifecycle root",
		Run:       runCtxbg,
		Cacheable: true,
	}
}

func runCtxbg(p *Pass) {
	if !strings.Contains(p.Path, "/internal/") && !strings.HasPrefix(p.Path, "internal/") {
		return
	}
	p.walkFiles(func(file *ast.File, n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || p.pkgOf(file, id) != "context" {
			return true
		}
		if filepath.Base(p.Filename(sel)) == "node.go" {
			return true // the node-lifecycle root mints the base context
		}
		p.Report(sel, "context.%s() escapes the node lifetime; derive the context from the node or job instead", sel.Sel.Name)
		return true
	})
}
