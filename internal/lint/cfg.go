package lint

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// This file builds intraprocedural control-flow graphs over go/ast function
// bodies. The CFG is the substrate of the dataflow tier (see dataflow.go):
// blocks hold the "simple" statements and condition expressions in execution
// order, while structured control flow (if/for/range/switch/select/goto,
// labeled break/continue, short-circuit && and ||) is decomposed into edges.
// Every graph has exactly one synthetic entry block and one synthetic exit
// block; all returns, panics, and fallthrough-off-the-end paths converge on
// the exit, which is where analyzers run their "on every path" checks.
//
// Defer statements are collected separately in CFG.Defers: deferred calls
// run at function exit on every path (including panic unwinding), so
// analyzers treat them as a suffix applied to the exit state rather than as
// ordinary nodes. This is an over-approximation for conditionally-registered
// defers, which errs toward accepting cleanup — the useful direction for
// balance checks.

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block

	// Defers lists every defer statement in the body, in source order. The
	// deferred calls execute at exit on all paths that registered them.
	Defers []*ast.DeferStmt
}

// Block is one straight-line run of nodes with no internal control flow.
type Block struct {
	Index int
	Kind  string // diagnostic label: "entry", "exit", "if.then", "for.body", ...

	// Nodes holds the block's statements and condition expressions in
	// execution order. A *ast.RangeStmt appearing here marks the
	// per-iteration key/value assignment (it sits at the top of the loop
	// body, not in the head, so states derived from it never leak onto the
	// loop-exit edge).
	Nodes []ast.Node

	Succs []*Block
	Preds []*Block
}

// builder carries the construction state for one function body.
type builder struct {
	cfg    *CFG
	cur    *Block // nil when the current path is terminated (return/goto/...)
	breaks []target
	conts  []target
	labels map[string]*Block // goto targets, created lazily
	gotos  []pendingGoto
}

// target is an enclosing break/continue destination, optionally labeled.
type target struct {
	label string
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the CFG of one function body. It never fails: any
// statement it does not model structurally is kept as an opaque node in the
// current block.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &builder{cfg: &CFG{}, labels: make(map[string]*Block)}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = b.newBlock("body")
	b.edge(b.cfg.Entry, b.cur)
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit)
	}
	for _, g := range b.gotos {
		if dst := b.labels[g.label]; dst != nil {
			b.edge(g.from, dst)
		} else {
			// A goto to a label the builder never saw (malformed source):
			// route to exit so the graph keeps its single-exit shape.
			b.edge(g.from, b.cfg.Exit)
		}
	}
	return b.cfg
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, opening an unreachable block if
// the path was terminated (dead code still gets analyzed, harmlessly).
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement. label is the statement's label when it came
// through a *ast.LabeledStmt wrapper.
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		// A label is both a goto target and (for loops/switches) a named
		// break/continue target. Materialize the goto target block here so
		// backward gotos resolve.
		lb := b.newBlock("label." + s.Label.Name)
		if b.cur != nil {
			b.edge(b.cur, lb)
		}
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		els := done
		if s.Else != nil {
			els = b.newBlock("if.else")
		}
		b.cond(s.Cond, then, els)
		b.cur = then
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, done)
		}
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else, "")
			if b.cur != nil {
				b.edge(b.cur, done)
			}
		}
		b.cur = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = head
		if s.Cond != nil {
			b.cond(s.Cond, body, done)
		} else {
			b.edge(mustCur(b), body)
			b.cur = nil
		}
		// The post statement gets its own block so continue (the loop's
		// continuation target) runs it too; routing continue at the head
		// would skip the post's kills and gens on every continue path.
		cont := head
		if s.Post != nil {
			post := b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			cont = post
		}
		b.pushLoop(label, done, cont)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, cont)
		}
		b.popLoop()
		b.cur = done

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		// The ranged expression is evaluated once in the head; the
		// per-iteration assignment is modeled by the RangeStmt node itself at
		// the top of the body, so facts it generates are confined to
		// iterations and never reach the loop-exit edge.
		head.Nodes = append(head.Nodes, s.X)
		b.edge(head, body)
		b.edge(head, done)
		body.Nodes = append(body.Nodes, s)
		b.pushLoop(label, done, head)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.popLoop()
		b.cur = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, label, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label, nil)

	case *ast.SelectStmt:
		b.switchBody(s.Body, label, func(c ast.Stmt) ast.Stmt {
			return c.(*ast.CommClause).Comm
		})

	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.edge(b.cur, b.cfg.Exit)
		}
		b.cur = nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if dst := b.findTarget(b.breaks, s.Label); dst != nil && b.cur != nil {
				b.edge(b.cur, dst)
			}
			b.cur = nil
		case token.CONTINUE:
			if dst := b.findTarget(b.conts, s.Label); dst != nil && b.cur != nil {
				b.edge(b.cur, dst)
			}
			b.cur = nil
		case token.GOTO:
			if b.cur != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// handled by switchBody's clause chaining; nothing to do here
		}

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			if b.cur != nil {
				b.edge(b.cur, b.cfg.Exit)
			}
			b.cur = nil
		}

	default:
		// assign, incdec, send, go, decl, empty, ...: straight-line
		b.add(s)
	}
}

// switchBody lowers the clause list shared by switch/type-switch/select.
// comm extracts the per-clause communication statement for selects (nil for
// switches). Fallthrough chains a clause's end into the next clause's body.
func (b *builder) switchBody(body *ast.BlockStmt, label string, comm func(ast.Stmt) ast.Stmt) {
	head := b.cur
	if head == nil {
		head = b.newBlock("switch.head")
		b.cur = head
	}
	done := b.newBlock("switch.done")
	b.pushBreakOnly(label, done)

	hasDefault := false
	var clauseBlocks []*Block
	var clauses []ast.Stmt
	for _, c := range body.List {
		cb := b.newBlock("case")
		b.edge(head, cb)
		clauseBlocks = append(clauseBlocks, cb)
		clauses = append(clauses, c)
	}
	for i, c := range clauses {
		cb := clauseBlocks[i]
		b.cur = cb
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				cb.Nodes = append(cb.Nodes, e)
			}
			list = c.Body
		case *ast.CommClause:
			if comm != nil {
				if cs := comm(c); cs != nil {
					b.stmt(cs, "")
				} else {
					hasDefault = true
				}
			}
			list = c.Body
		}
		fallsThrough := false
		for _, s := range list {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
			b.stmt(s, "")
		}
		if fallsThrough && i+1 < len(clauseBlocks) && b.cur != nil {
			b.edge(b.cur, clauseBlocks[i+1])
			b.cur = nil
		}
		if b.cur != nil {
			b.edge(b.cur, done)
		}
	}
	// A switch/select without a default can execute no clause at all (or
	// block forever for select; modeling the skip edge keeps the analysis
	// conservative either way).
	if !hasDefault {
		b.edge(head, done)
	}
	b.popLoop()
	b.cur = done
}

// cond lowers a branch condition, splitting short-circuit operators so each
// operand lands in its own block: in `a && b`, b is only evaluated (and its
// facts only generated) on a's true edge.
func (b *builder) cond(e ast.Expr, then, els *Block) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		b.cond(e.X, then, els)
		return
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			mid := b.newBlock("cond.and")
			b.cond(e.X, mid, els)
			b.cur = mid
			b.cond(e.Y, then, els)
			return
		case token.LOR:
			mid := b.newBlock("cond.or")
			b.cond(e.X, then, mid)
			b.cur = mid
			b.cond(e.Y, then, els)
			return
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			b.cond(e.X, els, then)
			return
		}
	}
	b.add(e)
	cur := mustCur(b)
	b.edge(cur, then)
	b.edge(cur, els)
	b.cur = nil
}

// mustCur returns the current block, materializing one for dead code.
func mustCur(b *builder) *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

// pushLoop registers break/continue targets for a loop. An unlabeled break
// or continue binds to the innermost loop; a labeled one to the matching
// entry.
func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, target{label: label, block: brk})
	b.conts = append(b.conts, target{label: label, block: cont})
}

// pushBreakOnly registers a break target (switch/select) with a matching
// placeholder continue entry so push/pop stay paired; continue skips
// non-loop entries when resolving.
func (b *builder) pushBreakOnly(label string, brk *Block) {
	b.breaks = append(b.breaks, target{label: label, block: brk})
	b.conts = append(b.conts, target{label: label, block: nil})
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
}

// findTarget resolves a break/continue to its destination block.
func (b *builder) findTarget(stack []target, label *ast.Ident) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		t := stack[i]
		if t.block == nil {
			continue // switch entry on the continue stack
		}
		if label == nil || t.label == label.Name {
			return t.block
		}
	}
	return nil
}

// isPanicCall reports whether e is a direct call to the predeclared panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Dump renders the CFG as stable text for golden tests: one line per block
// with its kind, node summaries (source line + compact text), and successor
// indices.
func (c *CFG) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "b%d %s:", blk.Index, blk.Kind)
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, "\tL%d %s\n", fset.Position(n.Pos()).Line, nodeText(fset, n))
		}
	}
	if len(c.Defers) > 0 {
		sb.WriteString("defers:")
		for _, d := range c.Defers {
			fmt.Fprintf(&sb, " L%d", fset.Position(d.Pos()).Line)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// nodeText renders a node as one compact line, truncated for readability.
func nodeText(fset *token.FileSet, n ast.Node) string {
	if _, ok := n.(*ast.RangeStmt); ok {
		return "<range assign>"
	}
	var sb strings.Builder
	cfgPrinter.Fprint(&sb, fset, n)
	s := strings.Join(strings.Fields(sb.String()), " ")
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}

var cfgPrinter = printer.Config{Mode: printer.RawFormat}
