package lint

import "go/ast"

// hotpathDirective marks a function as being on the per-row conversion hot
// path. The annotation is load-bearing: hotalloc bans fmt calls inside any
// function carrying it.
const hotpathDirective = "//etlvirt:hotpath"

// newHotalloc builds the hotalloc analyzer: no fmt calls inside functions
// annotated //etlvirt:hotpath.
//
// Invariant (PR 5, §4-§5): the row-conversion hot path is (amortized)
// allocation-free — append codecs into caller-provided buffers, scratch
// records from pools. Every fmt formatting call allocates its result (and
// boxes its arguments), so one fmt.Sprintf per row puts the allocator back
// on the critical path and erodes the Figure 9 scalability claim. Error
// construction belongs in cold, un-annotated helper functions that the hot
// function calls only on failure paths.
func newHotalloc() *Analyzer {
	return &Analyzer{
		Name:      "hotalloc",
		Doc:       "forbid fmt calls inside functions annotated //etlvirt:hotpath (the per-row conversion path must not allocate)",
		Run:       runHotalloc,
		Cacheable: true,
	}
}

func runHotalloc(p *Pass) {
	for _, f := range p.Files {
		file := f
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd.Doc) {
				continue
			}
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				if p.pkgOf(file, id) == "fmt" {
					p.Report(call,
						"fmt.%s inside hot-path function %s allocates per row; use append codecs or delegate to a cold error helper",
						sel.Sel.Name, name)
				}
				return true
			})
		}
	}
}

// isHotpath reports whether a function's doc group carries the hotpath
// directive.
func isHotpath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == hotpathDirective {
			return true
		}
	}
	return false
}
