package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// newGoroleak builds the goroleak analyzer: every goroutine launched as a
// function literal in internal packages must be stoppable — it has to
// receive a context.Context or channel parameter, or reference one from
// the enclosing scope.
//
// Invariant (PR 3): node Close() must terminate every goroutine the
// pipeline spawned; the shutdown-hang chaos tests assert it. A go func
// that references no context and no channel has no way to observe
// cancellation and is unstoppable by construction. Goroutines bounded by
// other means (a connection whose Close unblocks them) must say so with
// //nolint:goroleak.
func newGoroleak() *Analyzer {
	return &Analyzer{
		Name:      "goroleak",
		Doc:       "go func literals in internal packages must reference a context or channel so they can be stopped",
		Run:       runGoroleak,
		Cacheable: true,
	}
}

func runGoroleak(p *Pass) {
	if !strings.Contains(p.Path, "/internal/") && !strings.HasPrefix(p.Path, "internal/") {
		return
	}
	p.walkFiles(func(file *ast.File, n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		fn, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true // named funcs are the callee's responsibility
		}
		if funcLitStoppable(p, fn) {
			return true
		}
		p.Report(g, "go func literal references no context.Context and no channel; it cannot observe shutdown")
		return true
	})
}

// funcLitStoppable reports whether the literal can observe a stop signal:
// a context/channel parameter, or any referenced expression of such a type
// (captured channels and contexts count; so do calls returning them).
func funcLitStoppable(p *Pass, fn *ast.FuncLit) bool {
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			if isStopType(p.TypeOf(f.Type)) {
				return true
			}
		}
	}
	stoppable := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if stoppable {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if isStopType(p.TypeOf(e)) {
			stoppable = true
			return false
		}
		return true
	})
	return stoppable
}

// isStopType reports whether t is a channel (any direction) or
// context.Context.
func isStopType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	nt := named(t)
	return nt != nil && nt.Obj().Name() == "Context" &&
		nt.Obj().Pkg() != nil && nt.Obj().Pkg().Path() == "context"
}
