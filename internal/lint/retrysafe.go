package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// newRetrysafe builds the retrysafe analyzer: no CDW Exec call lexically
// inside a retrier.Do closure.
//
// Invariant (PR 3, §6): Exec may carry non-idempotent DML, so the only
// layer allowed to retry it is the cdwnet pool itself, which restricts
// retries to failures that provably happened before the request hit the
// wire (NotSent). Wrapping an Exec in an outer retrier.Do re-runs the
// statement after ambiguous failures and can double-apply DML — the
// exactly-once guarantee the paper's semantic-equivalence claim rests on.
// Recovery loops that make Exec idempotent by reconstructing state first
// (COPY recovery) must justify themselves with a //nolint:retrysafe at the
// Do call.
func newRetrysafe() *Analyzer {
	return &Analyzer{
		Name:      "retrysafe",
		Doc:       "forbid Pool.Exec/Client.Exec lexically inside a retrier.Do closure (non-idempotent DML must not be retried)",
		Run:       runRetrysafe,
		Cacheable: true,
	}
}

func runRetrysafe(p *Pass) {
	p.walkFiles(func(file *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Do" {
			return true
		}
		if !isNamed(p.TypeOf(sel.X), "retrier", "Retrier") {
			return true
		}
		for _, arg := range call.Args {
			fn, ok := arg.(*ast.FuncLit)
			if !ok {
				continue
			}
			ast.Inspect(fn.Body, func(inner ast.Node) bool {
				ic, ok := inner.(*ast.CallExpr)
				if !ok {
					return true
				}
				isel, ok := ic.Fun.(*ast.SelectorExpr)
				if !ok || isel.Sel.Name != "Exec" {
					return true
				}
				recv := p.TypeOf(isel.X)
				if isNamed(recv, "cdwnet", "Pool") || isNamed(recv, "cdwnet", "Client") {
					p.ReportRelated(ic, []ast.Node{call},
						"%s.Exec inside a retrier.Do closure can double-apply non-idempotent DML; rely on the pool's NotSent-only retry instead",
						named(recv).Obj().Name())
				}
				return true
			})
		}
		return true
	})
}

// named unwraps pointers down to the named type, or nil.
func named(t types.Type) *types.Named {
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
		case *types.Named:
			return v
		default:
			return nil
		}
	}
}

// isNamed reports whether t (possibly behind pointers) is the named type
// pkgBase.name, where pkgBase matches the final import-path element — so
// the rule covers both the real package and testdata mirrors.
func isNamed(t types.Type, pkgBase, name string) bool {
	nt := named(t)
	if nt == nil || nt.Obj().Name() != name || nt.Obj().Pkg() == nil {
		return false
	}
	path := nt.Obj().Pkg().Path()
	return path == pkgBase || strings.HasSuffix(path, "/"+pkgBase)
}
