package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockHeld: the mutex may be held on some path.
const lockHeld Bits = 1 << 0

// newLockorder builds the lockorder analyzer. Two invariants, one
// flow-sensitive and one global:
//
//  1. Per function: a sync.Mutex/RWMutex locked in a function must be
//     unlocked (directly or by defer) on every path to return. Returning
//     with the lock held is only legal for lock-helper methods (Lock,
//     RLock &c. — forwarding implementations of sync.Locker) or with an
//     explicit //nolint:lockorder justification.
//
//  2. Across the whole run: the may-precede relation of mutex acquisitions
//     — "B locked while A held", including transitively through calls —
//     must stay acyclic. The virtualizer's shutdown paths walk node →
//     job → tracer in one direction and the metrics scrapers walk it in
//     the other; an acquisition cycle is a deadlock waiting for the right
//     interleaving. Findings report the full cycle with one example
//     acquisition site per edge.
//
// Mutex identities are type-level ("core.importJob.mu"), so two instances
// of the same struct field are one graph node: the analysis is about
// ordering disciplines, not individual locks.
func newLockorder() *Analyzer {
	a := &Analyzer{
		Name:     "lockorder",
		Doc:      "mutexes must be released on every path, and cross-package lock acquisition order must be acyclic",
		Dataflow: true,
		// Not cacheable: the acquisition graph accumulates across every
		// package in the run.
	}
	st := &lockorderState{
		edges:   make(map[string]map[string]token.Position),
		summary: make(map[*types.Func]*lockSummary),
	}
	a.Run = func(p *Pass) { st.run(p) }
	a.End = func(report func(Diagnostic)) { st.end(report) }
	return a
}

// lockSummary is one function's contribution to the global graph.
type lockSummary struct {
	locks map[string]token.Position // mutexes the function may lock directly
	calls map[*types.Func]bool      // functions it may call
}

// heldCall is a call made while mutexes were held; expanded against callee
// summaries in End.
type heldCall struct {
	held   map[string]bool
	callee *types.Func
	pos    token.Position
}

type lockorderState struct {
	edges     map[string]map[string]token.Position // A -> B -> example site
	summary   map[*types.Func]*lockSummary
	heldCalls []heldCall
}

type lockPass struct {
	p       *Pass
	st      *lockorderState
	sum     *lockSummary
	display map[string]string // state key -> global mutex display key
}

func (st *lockorderState) run(p *Pass) {
	if p.Info == nil {
		return
	}
	p.forEachFuncBody(func(file *ast.File, fd *ast.FuncDecl, body *ast.BlockStmt) {
		if !bodyLocksMutex(p, body) {
			return
		}
		lp := &lockPass{
			p: p, st: st,
			sum:     &lockSummary{locks: make(map[string]token.Position), calls: make(map[*types.Func]bool)},
			display: make(map[string]string),
		}
		if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
			st.summary[obj] = lp.sum
		}
		g := BuildCFG(body)
		transfer := func(n ast.Node, s State) { lp.transfer(n, s) }
		in := Flow(g, transfer)
		exit := ExitState(g, in, transfer)
		if isLockHelper(fd) {
			return // forwarding Lock/Unlock implementations return held by design
		}
		reported := make(map[string]bool)
		for key, f := range exit {
			if f.Bits&lockHeld == 0 || f.Origin == nil {
				continue
			}
			disp := lp.display[key]
			if reported[disp] {
				continue
			}
			reported[disp] = true
			w := g.PathWitness(p.Fset, g.Exit, nil)
			p.ReportWitness(f.Origin, w, nil,
				"%s may still be held when %s returns (no Unlock on some path)",
				disp, fd.Name.Name)
		}
	})
}

func (lp *lockPass) transfer(n ast.Node, s State) {
	ast.Inspect(n, func(c ast.Node) bool {
		// Deferred unlocks apply at exit (ExitState), not at the defer site.
		if _, ok := c.(*ast.DeferStmt); ok && c != n {
			return false
		}
		if ds, ok := n.(*ast.DeferStmt); ok && c == n {
			// Walk only the deferred call's arguments now; the call itself
			// is replayed at exit.
			for _, a := range ds.Call.Args {
				lp.transfer(a, s)
			}
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok {
			return false // closure bodies run on their own schedule
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		lp.callEffect(call, s)
		return true
	})
}

// callEffect applies one call: mutex ops mutate state and record edges;
// other resolved calls are recorded against the currently held set.
func (lp *lockPass) callEffect(call *ast.CallExpr, s State) {
	name, key, disp, ok := lp.mutexOp(call)
	if ok {
		switch name {
		case "Lock", "RLock":
			// Acquisition edge from everything currently held.
			for heldKey, f := range s {
				if f.Bits&lockHeld == 0 {
					continue
				}
				from := lp.display[heldKey]
				if from != "" && disp != "" && from != disp {
					lp.st.addEdge(from, disp, lp.p.Fset.Position(call.Pos()))
				}
			}
			s[key] = Fact{Bits: lockHeld, Origin: call}
			lp.display[key] = disp
			if disp != "" {
				if _, seen := lp.sum.locks[disp]; !seen {
					lp.sum.locks[disp] = lp.p.Fset.Position(call.Pos())
				}
			}
		case "Unlock", "RUnlock":
			delete(s, key)
		}
		return
	}
	if fn := lp.p.calleeFunc(call); fn != nil {
		lp.sum.calls[fn] = true
		held := make(map[string]bool)
		for heldKey, f := range s {
			if f.Bits&lockHeld != 0 && lp.display[heldKey] != "" {
				held[lp.display[heldKey]] = true
			}
		}
		if len(held) > 0 {
			lp.st.heldCalls = append(lp.st.heldCalls, heldCall{
				held: held, callee: fn, pos: lp.p.Fset.Position(call.Pos()),
			})
		}
	}
}

// mutexOp matches sync.(RW)Mutex method calls and resolves the receiver to a
// per-function state key and a global display key. RLock/RUnlock track a
// separate "/r" key so read and write locks of an RWMutex are independent.
func (lp *lockPass) mutexOp(call *ast.CallExpr) (name, key, display string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	name = sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", "", false
	}
	fn, isFn := lp.p.Uses(sel.Sel).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", "", false
	}
	key, _, pathOK := lp.p.PathKey(sel.X)
	if !pathOK {
		// Untrackable receiver (map element, call result): synthesize a
		// per-site key so Lock/Unlock of the same textual expression pair up
		// within a block but never participate in the global graph.
		key = "??" + pathString(sel.X)
	}
	display = lp.globalMutexKey(sel.X)
	if strings.HasPrefix(name, "R") {
		key += "/r"
		if display != "" {
			display += "/r"
		}
	}
	return name, key, display, true
}

// globalMutexKey names a mutex at type level: "pkg.Type.field" for fields,
// "pkg.var" for package-level mutexes, "" for locals (excluded from the
// global graph — a function-local mutex cannot deadlock across packages).
func (lp *lockPass) globalMutexKey(recv ast.Expr) string {
	switch recv := ast.Unparen(recv).(type) {
	case *ast.Ident:
		obj := lp.p.Uses(recv)
		if obj == nil {
			return ""
		}
		if v, isVar := obj.(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return pkgShort(v.Pkg().Path()) + "." + v.Name()
		}
		return "" // local or parameter mutex
	case *ast.SelectorExpr:
		owner := namedTypeName(lp.p.TypeOf(recv.X))
		if owner == "" {
			return ""
		}
		pkg := ""
		if t := lp.p.TypeOf(recv.X); t != nil {
			if n := namedType(t); n != nil && n.Obj().Pkg() != nil {
				pkg = pkgShort(n.Obj().Pkg().Path())
			}
		}
		if pkg == "" {
			return ""
		}
		return pkg + "." + owner + "." + recv.Sel.Name
	case *ast.StarExpr:
		return lp.globalMutexKey(recv.X)
	}
	return ""
}

func namedType(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return nil
		}
	}
}

func pkgShort(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isLockHelper reports whether fd is itself a locking primitive
// implementation (sync.Locker forwarding), which returns held by contract.
func isLockHelper(fd *ast.FuncDecl) bool {
	switch fd.Name.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock":
		return true
	}
	return false
}

// bodyLocksMutex pre-filters bodies with no Lock call at all.
func bodyLocksMutex(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
			if fn, isFn := p.Uses(sel.Sel).(*types.Func); isFn && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				found = true
			}
		}
		return !found
	})
	return found
}

func (st *lockorderState) addEdge(from, to string, pos token.Position) {
	m := st.edges[from]
	if m == nil {
		m = make(map[string]token.Position)
		st.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = pos
	}
}

// end expands held-site calls through the transitive may-lock closure and
// reports every elementary cycle in the acquisition graph.
func (st *lockorderState) end(report func(Diagnostic)) {
	closure := st.mayLockClosure()
	for _, hc := range st.heldCalls {
		for locked := range closure[hc.callee] {
			for held := range hc.held {
				if held != locked {
					st.addEdge(held, locked, hc.pos)
				}
			}
		}
	}
	for _, cyc := range st.cycles() {
		var steps []string
		for i, node := range cyc {
			next := cyc[(i+1)%len(cyc)]
			pos := st.edges[node][next]
			steps = append(steps, fmt.Sprintf("%s -> %s (%s)", node, next, pos))
		}
		pos := st.edges[cyc[0]][cyc[1%len(cyc)]]
		report(Diagnostic{
			Pos:      pos,
			Analyzer: "lockorder",
			Message: "lock acquisition cycle (potential deadlock): " +
				strings.Join(steps, ", "),
		})
	}
}

// mayLockClosure computes, per function, every mutex it may lock directly or
// through calls.
func (st *lockorderState) mayLockClosure() map[*types.Func]map[string]bool {
	out := make(map[*types.Func]map[string]bool, len(st.summary))
	for fn, sum := range st.summary {
		set := make(map[string]bool, len(sum.locks))
		for k := range sum.locks {
			set[k] = true
		}
		out[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for fn, sum := range st.summary {
			set := out[fn]
			for callee := range sum.calls {
				for k := range out[callee] {
					if !set[k] {
						set[k] = true
						changed = true
					}
				}
			}
		}
	}
	return out
}

// cycles returns the graph's elementary cycles, each canonicalized (rotated
// to its lexicographically smallest node) and deduplicated, in sorted order.
func (st *lockorderState) cycles() [][]string {
	nodes := make([]string, 0, len(st.edges))
	for n := range st.edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	seen := make(map[string]bool)
	var out [][]string
	var stack []string
	onStack := make(map[string]int)
	var dfs func(n string)
	dfs = func(n string) {
		if depth, ok := onStack[n]; ok {
			cyc := canonicalCycle(stack[depth:])
			sig := strings.Join(cyc, "\x00")
			if !seen[sig] {
				seen[sig] = true
				out = append(out, cyc)
			}
			return
		}
		onStack[n] = len(stack)
		stack = append(stack, n)
		succs := make([]string, 0, len(st.edges[n]))
		for s := range st.edges[n] {
			succs = append(succs, s)
		}
		sort.Strings(succs)
		for _, s := range succs {
			dfs(s)
		}
		stack = stack[:len(stack)-1]
		delete(onStack, n)
	}
	for _, n := range nodes {
		dfs(n)
	}
	sort.Slice(out, func(i, j int) bool { return strings.Join(out[i], ",") < strings.Join(out[j], ",") })
	return out
}

func canonicalCycle(cyc []string) []string {
	if len(cyc) == 0 {
		return nil
	}
	min := 0
	for i := range cyc {
		if cyc[i] < cyc[min] {
			min = i
		}
	}
	out := make([]string, 0, len(cyc))
	out = append(out, cyc[min:]...)
	out = append(out, cyc[:min]...)
	return out
}
