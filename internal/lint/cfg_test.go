package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildFirstFunc parses src and builds the CFG of its first function body.
func buildFirstFunc(t *testing.T, src string) (*CFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return BuildCFG(fd.Body), fset
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

// TestCFGDumpGolden pins the builder's lowering of the control shapes the
// dataflow analyzers depend on: the golden text is the full block/edge
// structure, so an accidental change to edge placement fails loudly.
func TestCFGDumpGolden(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "labeled break and continue",
			src: `package p

func f(xs []int) int {
	sum := 0
outer:
	for i := 0; i < 10; i++ {
		for _, x := range xs {
			if x < 0 {
				continue outer
			}
			if x == 9 {
				break outer
			}
			sum += x
		}
	}
	return sum
}
`,
			want: `b0 entry: -> b2
b1 exit:
b2 body: -> b3
	L4 sum := 0
b3 label.outer: -> b4
	L6 i := 0
b4 for.head: -> b5 b6
	L6 i < 10
b5 for.body: -> b8
b6 for.done: -> b1
	L17 return sum
b7 for.post: -> b4
	L6 i++
b8 range.head: -> b9 b10
	L7 xs
b9 range.body: -> b11 b12
	L7 <range assign>
	L8 x < 0
b10 range.done: -> b7
b11 if.then: -> b7
b12 if.done: -> b13 b14
	L11 x == 9
b13 if.then: -> b6
b14 if.done: -> b8
	L14 sum += x
`,
		},
		{
			name: "select with default",
			src: `package p

func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case b <- 1:
	default:
		return -1
	}
	return 0
}
`,
			want: `b0 entry: -> b2
b1 exit:
b2 body: -> b4 b5 b6
b3 switch.done: -> b1
	L11 return 0
b4 case: -> b1
	L5 v := <-a
	L6 return v
b5 case: -> b3
	L7 b <- 1
b6 case: -> b1
	L9 return -1
`,
		},
		{
			name: "defer in loop",
			src: `package p

func f(n int) {
	for i := 0; i < n; i++ {
		defer release(i)
	}
}

func release(int) {}
`,
			want: `b0 entry: -> b2
b1 exit:
b2 body: -> b3
	L4 i := 0
b3 for.head: -> b4 b5
	L4 i < n
b4 for.body: -> b6
	L5 defer release(i)
b5 for.done: -> b1
b6 for.post: -> b3
	L4 i++
defers: L5
`,
		},
		{
			name: "naked returns",
			src: `package p

func f(ok bool) (n int, err error) {
	if ok {
		n = 1
		return
	}
	return
}
`,
			want: `b0 entry: -> b2
b1 exit:
b2 body: -> b3 b4
	L4 ok
b3 if.then: -> b1
	L5 n = 1
	L6 return
b4 if.done: -> b1
	L8 return
`,
		},
		{
			name: "short-circuit condition",
			src: `package p

func f(a, b bool) int {
	if a && b {
		return 1
	}
	return 0
}
`,
			want: `b0 entry: -> b2
b1 exit:
b2 body: -> b5 b4
	L4 a
b3 if.then: -> b1
	L5 return 1
b4 if.done: -> b1
	L7 return 0
b5 cond.and: -> b3 b4
	L4 b
`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, fset := buildFirstFunc(t, c.src)
			got := g.Dump(fset)
			if got != c.want {
				t.Errorf("dump mismatch\n--- got ---\n%s--- want ---\n%s", got, c.want)
			}
		})
	}
}

// TestCFGEveryRepoFunction fuzzes the builder against every function body in
// the module: construction must not panic, and the structural invariants the
// solver relies on must hold for arbitrary real-world control flow.
func TestCFGEveryRepoFunction(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	funcs := 0
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "results" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil // malformed fixtures are not the builder's problem
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			funcs++
			checkCFGInvariants(t, path, fd, fset)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if funcs < 100 {
		t.Errorf("walked only %d function bodies; expected the whole module", funcs)
	}
}

func checkCFGInvariants(t *testing.T, path string, fd *ast.FuncDecl, fset *token.FileSet) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("%s: BuildCFG(%s) panicked: %v", path, fd.Name.Name, r)
		}
	}()
	g := BuildCFG(fd.Body)
	if g.Entry == nil || g.Exit == nil {
		t.Errorf("%s: %s: missing entry or exit", path, fd.Name.Name)
		return
	}
	if g.Entry.Kind != "entry" || g.Exit.Kind != "exit" {
		t.Errorf("%s: %s: entry/exit kinds = %q/%q", path, fd.Name.Name, g.Entry.Kind, g.Exit.Kind)
	}
	if len(g.Entry.Preds) != 0 {
		t.Errorf("%s: %s: entry has %d preds", path, fd.Name.Name, len(g.Entry.Preds))
	}
	if len(g.Exit.Succs) != 0 {
		t.Errorf("%s: %s: exit has %d succs", path, fd.Name.Name, len(g.Exit.Succs))
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !containsBlock(s.Preds, b) {
				t.Errorf("%s: %s: b%d -> b%d missing back-reference", path, fd.Name.Name, b.Index, s.Index)
			}
		}
		for _, n := range b.Nodes {
			if n == nil {
				t.Errorf("%s: %s: b%d holds a nil node", path, fd.Name.Name, b.Index)
			}
		}
	}
	// The solver and witness machinery must also hold up on every body.
	in := Flow(g, func(n ast.Node, st State) {})
	ExitState(g, in, func(n ast.Node, st State) {})
	g.PathWitness(fset, g.Exit, nil)
	g.Dump(fset)
}

func containsBlock(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}
