package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors holds soft type-check failures. Analysis still runs with
	// whatever information was resolved; the driver surfaces these as
	// warnings so a half-broken tree still gets linted.
	TypeErrors []error
}

// Loader parses and type-checks packages of one module from source. It
// resolves module-internal imports itself and delegates the standard
// library to go/importer's source importer, keeping the whole driver free
// of external dependencies.
type Loader struct {
	ModPath string // module path from go.mod, e.g. "etlvirt"
	ModDir  string // module root directory

	fset  *token.FileSet
	std   types.ImporterFrom
	cache map[string]*Package
}

// NewLoader builds a loader rooted at modDir. It reads the module path
// from go.mod.
func NewLoader(modDir string) (*Loader, error) {
	abs, err := filepath.Abs(modDir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer type-checks the standard library from GOROOT
	// source; cgo variants cannot be type-checked that way, so force the
	// pure-Go build configuration before the importer captures the
	// context.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		ModPath: modPath,
		ModDir:  abs,
		fset:    fset,
		std:     std,
		cache:   make(map[string]*Package),
	}, nil
}

// Cached returns an already-loaded package by import path (including
// module-internal dependencies pulled in during type-checking), or nil.
func (l *Loader) Cached(path string) *Package {
	return l.cache[path]
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if p := strings.TrimSpace(rest); p != "" {
				return strings.Trim(p, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves package patterns to loaded packages. Supported patterns:
// "./..." (every package under the module), "./dir/..." (every package
// under dir), and plain relative directories ("./internal/core").
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Join(l.ModDir, strings.TrimSuffix(rest, "/"))
			expanded, err := expandDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range expanded {
				add(d)
			}
			continue
		}
		add(filepath.Join(l.ModDir, pat))
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// expandDirs walks root collecting every directory holding non-test Go
// files, applying the go tool's conventions: testdata, _-prefixed and
// .-prefixed directories are invisible to "...".
func expandDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".")) {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if has {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && isLintableGoFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

// isLintableGoFile reports whether name is a non-test Go source file the
// driver should analyze. Tests are exempt from the invariants by design:
// they legitimately use context.Background and raw byte orders.
func isLintableGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// LoadDir loads the package in one directory. Directories without Go files
// return (nil, nil).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModDir)
	}
	path := l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return l.loadPath(path, abs)
}

func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !isLintableGoFile(e.Name()) {
			continue
		}
		name := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		if !buildConstraintsSatisfied(src) {
			continue
		}
		f, err := parser.ParseFile(l.fset, name, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := &types.Config{
		Importer:    (*loaderImporter)(l),
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := cfg.Check(path, l.fset, files, info) // errors collected above
	pkg.Types = tpkg
	pkg.Info = info
	l.cache[path] = pkg
	return pkg, nil
}

// buildConstraintsSatisfied evaluates a file's //go:build (or legacy
// +build) header against the default build configuration: current
// GOOS/GOARCH, gc, cgo off, race off — the configuration the analyzers
// reason about. Files excluded under it (race-enabled twins, foreign
// platforms) are skipped so variant pairs don't collide in one package.
func buildConstraintsSatisfied(src []byte) bool {
	for _, line := range strings.Split(headerOf(src), "\n") {
		line = strings.TrimSpace(line)
		if !constraint.IsGoBuild(line) && !constraint.IsPlusBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			continue
		}
		if !expr.Eval(defaultBuildTag) {
			return false
		}
	}
	return true
}

func defaultBuildTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		return isUnixGOOS(runtime.GOOS)
	}
	// Assume every go1.N version gate is satisfied by the running
	// toolchain; the module requires a floor well below it.
	return strings.HasPrefix(tag, "go1.")
}

func isUnixGOOS(goos string) bool {
	switch goos {
	case "linux", "darwin", "freebsd", "netbsd", "openbsd", "dragonfly", "solaris", "aix":
		return true
	}
	return false
}

// headerOf returns the portion of src before the package clause, where
// build constraints must appear.
func headerOf(src []byte) string {
	s := string(src)
	if i := strings.Index(s, "\npackage "); i >= 0 {
		return s[:i]
	}
	return s
}

// loaderImporter resolves imports during type-checking: module-internal
// paths load from the module tree (recursively, memoized); everything else
// is the standard library, delegated to the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.loadPath(path, filepath.Join(l.ModDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil || pkg.Types == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
