// Package lint is etlvirtlint's analyzer framework: a dependency-free
// static-analysis driver (go/parser + go/types + go/importer only) that
// enforces the virtualizer's cross-cutting correctness invariants at build
// time — the protocol discipline the runtime layers rely on but cannot
// check themselves (context lineage, error-chain wrapping, wire endianness,
// retry idempotence, metric-name hygiene, goroutine stoppability).
//
// The framework deliberately mirrors the shape of golang.org/x/tools'
// analysis package (Analyzer, Pass, Diagnostic) without importing it, so
// the module keeps its zero-dependency go.mod.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding reported by an analyzer.
type Diagnostic struct {
	Pos      token.Position // resolved position of the offending node
	End      token.Position // resolved end of the offending node (zero if unknown)
	Analyzer string         // analyzer name, e.g. "ctxbg"
	Message  string

	// Related lists additional positions tied to the finding (for
	// retrysafe, the retrier.Do call enclosing the flagged Exec). A nolint
	// directive on any related line suppresses the finding too, so the
	// justification can sit where the intent lives.
	Related []token.Position

	// Witness is the CFG path witness of a dataflow finding: the statement
	// sequence from function entry that reaches the violation, so -json
	// consumers can act on the finding without rerunning the solver.
	Witness []Witness
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string // import path, e.g. "etlvirt/internal/core"
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
	dirs   *directiveResolver
}

// Report files a diagnostic at node n.
func (p *Pass) Report(n ast.Node, format string, args ...any) {
	p.ReportRelated(n, nil, format, args...)
}

// ReportRelated files a diagnostic at node n with extra positions whose
// nolint directives also suppress it.
func (p *Pass) ReportRelated(n ast.Node, related []ast.Node, format string, args ...any) {
	p.ReportWitness(n, nil, related, format, args...)
}

// ReportWitness files a dataflow diagnostic carrying the CFG path witness
// that reaches the violation.
func (p *Pass) ReportWitness(n ast.Node, witness []Witness, related []ast.Node, format string, args ...any) {
	d := Diagnostic{
		Pos:      p.Fset.Position(n.Pos()),
		End:      p.Fset.Position(n.End()),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Witness:  witness,
	}
	for _, r := range related {
		d.Related = append(d.Related, p.Fset.Position(r.Pos()))
	}
	p.report(d)
}

// FuncDirectives resolves the //etlvirt: directives on the declaration of
// fn, looking across package boundaries (the declaring package's AST comes
// from the run set or the loader's dependency cache).
func (p *Pass) FuncDirectives(fn *types.Func) []directive {
	if p.dirs == nil {
		return nil
	}
	return p.dirs.funcDirectives(fn)
}

// Filename returns the file name a node lives in.
func (p *Pass) Filename(n ast.Node) string {
	return p.Fset.Position(n.Pos()).Filename
}

// TypeOf returns the static type of e, or nil when type information is
// unavailable (a package that failed to fully type-check still runs every
// analyzer on what was resolved).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// Uses resolves an identifier to the object it refers to, or nil.
func (p *Pass) Uses(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	return p.Info.Uses[id]
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string // one-line description shown by -help and the JSON header
	Run  func(*Pass)

	// End, when set, runs once after every package's Run pass. It is where
	// cross-package analyzers (lockorder's acquisition graph, wirekind's
	// surface coverage) report findings that need the whole run's state.
	End func(report func(Diagnostic))

	// Dataflow marks the analyzer as belonging to the flow-sensitive tier
	// (CFG + worklist solver) rather than the per-node syntactic tier. The
	// driver's -tier flag and the CI stage split select on it.
	Dataflow bool

	// Cacheable marks an analyzer whose findings for a package depend only
	// on that package's sources and the sources of its module-internal
	// dependencies — no cross-package accumulation. Only cacheable
	// analyzers participate in the driver's -cache incremental mode.
	Cacheable bool
}

// Analyzers returns a fresh instance of every etlvirtlint analyzer.
// Instances carry per-run state (metricname's cross-package duplicate
// table, lockorder's acquisition graph), so each driver invocation must use
// its own set.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		newCtxbg(),
		newErrwrapw(),
		newEndian(),
		newRetrysafe(),
		newMetricname(),
		newGoroleak(),
		newHotalloc(),
		newBufown(),
		newSpanbalance(),
		newLockorder(),
		newSqlident(),
		newWirekind(),
	}
}

// Result is the outcome of running a set of analyzers over a set of
// packages: the surviving findings plus the count of findings a //nolint
// directive suppressed, per analyzer.
type Result struct {
	Diagnostics []Diagnostic
	Suppressed  map[string]int // analyzer name -> nolint-suppressed findings
}

// Runner drives analyzers over loaded packages and applies nolint
// filtering.
type Runner struct {
	Analyzers []*Analyzer

	// Loader, when set, lets analyzers resolve //etlvirt: directives on
	// functions in module-internal dependency packages outside the run set.
	Loader *Loader
}

// Run executes every analyzer over every package, fires the End hooks, and
// returns the filtered, position-sorted findings.
func (r *Runner) Run(pkgs []*Package) Result {
	res := Result{Suppressed: make(map[string]int)}
	dirs := newDirectiveResolver(pkgs, r.Loader)
	merged := make(nolintIndex)
	for _, pkg := range pkgs {
		nolint := collectNolint(pkg)
		for file, lines := range nolint {
			merged[file] = lines
		}
		for _, a := range r.Analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				dirs:     dirs,
			}
			pass.report = func(d Diagnostic) {
				if nolint.suppresses(d) {
					res.Suppressed[a.Name]++
					return
				}
				res.Diagnostics = append(res.Diagnostics, d)
			}
			a.Run(pass)
		}
	}
	for _, a := range r.Analyzers {
		if a.End == nil {
			continue
		}
		name := a.Name
		a.End(func(d Diagnostic) {
			if merged.suppresses(d) {
				res.Suppressed[name]++
				return
			}
			res.Diagnostics = append(res.Diagnostics, d)
		})
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return res
}

// nolintIndex maps file -> line -> the set of analyzer names silenced
// there. The wildcard entry "*" silences every analyzer.
type nolintIndex map[string]map[int]map[string]bool

// collectNolint scans a package's comments for //nolint directives. A
// directive applies to findings on its own line and on the line directly
// below it (so it can sit on the statement or on a comment line above it).
//
//	foo() //nolint:ctxbg          — silences ctxbg on this line
//	//nolint:ctxbg,errwrapw       — silences both on the next line
//	//nolint                      — silences every analyzer on the next line
func collectNolint(pkg *Package) nolintIndex {
	idx := make(nolintIndex)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseNolint(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := lines[line]
					if set == nil {
						set = make(map[string]bool)
						lines[line] = set
					}
					for _, n := range names {
						set[n] = true
					}
				}
			}
		}
	}
	return idx
}

// parseNolint recognizes "//nolint" and "//nolint:a,b" (with optional
// trailing justification after a space). It returns the silenced analyzer
// names, or {"*"} for the bare form.
func parseNolint(text string) ([]string, bool) {
	body, ok := strings.CutPrefix(text, "//nolint")
	if !ok {
		return nil, false
	}
	if body == "" || body[0] == ' ' || body[0] == '\t' {
		return []string{"*"}, true
	}
	if body[0] != ':' {
		return nil, false
	}
	body = body[1:]
	// strip a trailing justification: "ctxbg,endian -- reason" or
	// "ctxbg // reason"
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		body = body[:i]
	}
	var names []string
	for _, n := range strings.Split(body, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return []string{"*"}, true
	}
	return names, true
}

func (idx nolintIndex) suppresses(d Diagnostic) bool {
	at := func(pos token.Position) bool {
		set := idx[pos.Filename][pos.Line]
		return set["*"] || set[d.Analyzer]
	}
	if at(d.Pos) {
		return true
	}
	for _, r := range d.Related {
		if at(r) {
			return true
		}
	}
	return false
}

// walkFiles applies fn to every node of every file in the pass.
func (p *Pass) walkFiles(fn func(file *ast.File, n ast.Node) bool) {
	for _, f := range p.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			return fn(file, n)
		})
	}
}

// pkgOf resolves which imported package an identifier names, e.g. the
// "context" in context.Background. It prefers type information and falls
// back to matching the file's import specs by local name, so analyzers
// still fire on packages that failed to type-check.
func (p *Pass) pkgOf(file *ast.File, id *ast.Ident) string {
	if obj := p.Uses(id); obj != nil {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return "" // shadowed by a local object
	}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		} else if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		} else {
			name = path
		}
		if name == id.Name {
			return path
		}
	}
	return ""
}
