package lint

import (
	"go/ast"
	"strings"
)

// newEndian builds the endian analyzer: the wire-format packages may only
// reference binary.BigEndian.
//
// Invariant (PR 1): DWP parcels, TDF packets, and indicator-mode records
// are encoded network byte order end to end. A single LittleEndian (or
// host-order NativeEndian) reference silently corrupts framing between the
// legacy client and the virtualizer — the decoder reads a garbage length
// and desynchronizes the stream.
func newEndian() *Analyzer {
	return &Analyzer{
		Name:      "endian",
		Doc:       "wire-format packages (wire, tdf, ltype) may only reference binary.BigEndian",
		Run:       runEndian,
		Cacheable: true,
	}
}

// endianScoped reports whether pkgPath is a wire-format package. Suffix
// matching keeps the rule applicable to the testdata fixture mirrors.
func endianScoped(pkgPath string) bool {
	for _, base := range []string{"wire", "tdf", "ltype"} {
		if pkgPath == base || strings.HasSuffix(pkgPath, "/"+base) {
			return true
		}
	}
	return false
}

func runEndian(p *Pass) {
	if !endianScoped(p.Path) {
		return
	}
	p.walkFiles(func(file *ast.File, n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "LittleEndian" && sel.Sel.Name != "NativeEndian" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || p.pkgOf(file, id) != "encoding/binary" {
			return true
		}
		p.Report(sel, "binary.%s in a wire-format package; the wire is BigEndian only", sel.Sel.Name)
		return true
	})
}
