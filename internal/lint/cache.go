package lint

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the driver's incremental mode: per-package result caching for
// the Cacheable analyzers. A package's cache key is an FNV-64a hash over the
// cache format version, the participating analyzer names, and the raw bytes
// of every lintable source file of the package and of its transitive
// module-internal dependencies — exactly the inputs a Cacheable analyzer is
// allowed to read (directives resolve through dependency sources, so those
// bytes are part of the key). Analyzers with cross-package accumulation
// (metricname, lockorder, wirekind) never enter the cache and always run.
//
// Entries store post-nolint diagnostics plus the suppression counts, so a
// cache hit reproduces the exact driver output of a fresh run.

// cacheFormat versions the entry encoding; bump it when Diagnostic's JSON
// shape or the key recipe changes.
const cacheFormat = "etlvirtlint-cache-v1"

// Cache is a directory-backed result store for one driver invocation.
type Cache struct {
	dir    string
	loader *Loader

	// Hits and Misses count per-package lookups for -v reporting.
	Hits   int
	Misses int
}

// NewCache opens (creating if needed) a cache directory.
func NewCache(dir string, loader *Loader) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lint: cache dir: %w", err)
	}
	return &Cache{dir: dir, loader: loader}, nil
}

// cacheEntry is the stored per-package result of the cacheable analyzers.
type cacheEntry struct {
	Diagnostics []Diagnostic   `json:"diagnostics"`
	Suppressed  map[string]int `json:"suppressed,omitempty"`
}

// RunCached runs analyzers over pkgs with per-package caching for the
// cacheable subset. Non-cacheable analyzers run unconditionally over the
// whole set (their End hooks need every package's state). The merged result
// is indistinguishable from an uncached Runner.Run.
func RunCached(cache *Cache, analyzers []*Analyzer, pkgs []*Package) Result {
	var cacheable, always []*Analyzer
	for _, a := range analyzers {
		if cache != nil && a.Cacheable {
			cacheable = append(cacheable, a)
		} else {
			always = append(always, a)
		}
	}
	res := Result{Suppressed: make(map[string]int)}
	if len(always) > 0 {
		merge(&res, (&Runner{Analyzers: always, Loader: loaderOf(cache)}).Run(pkgs))
	}
	for _, pkg := range pkgs {
		if len(cacheable) == 0 {
			break
		}
		key, err := cache.key(cacheable, pkg)
		if err == nil {
			if ent, ok := cache.load(pkg.Path, key); ok {
				cache.Hits++
				merge(&res, Result{Diagnostics: ent.Diagnostics, Suppressed: ent.Suppressed})
				continue
			}
		}
		cache.Misses++
		fresh := (&Runner{Analyzers: cacheable, Loader: loaderOf(cache)}).Run([]*Package{pkg})
		if err == nil {
			cache.store(pkg.Path, key, cacheEntry{Diagnostics: fresh.Diagnostics, Suppressed: fresh.Suppressed})
		}
		merge(&res, fresh)
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return res
}

func loaderOf(c *Cache) *Loader {
	if c == nil {
		return nil
	}
	return c.loader
}

func merge(dst *Result, src Result) {
	dst.Diagnostics = append(dst.Diagnostics, src.Diagnostics...)
	for k, v := range src.Suppressed {
		dst.Suppressed[k] += v
	}
}

// key computes the package's cache key for the given analyzer set.
func (c *Cache) key(analyzers []*Analyzer, pkg *Package) (string, error) {
	h := fnv.New64a()
	fmt.Fprintln(h, cacheFormat)
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	fmt.Fprintln(h, strings.Join(names, ","))
	for _, dir := range c.inputDirs(pkg) {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return "", err
		}
		for _, e := range ents {
			if e.IsDir() || !isLintableGoFile(e.Name()) {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				return "", err
			}
			fmt.Fprintf(h, "%s %d\n", e.Name(), len(src))
			h.Write(src)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// inputDirs lists the package's own directory plus the directories of its
// transitive module-internal dependencies, sorted for key stability.
func (c *Cache) inputDirs(pkg *Package) []string {
	dirs := map[string]bool{pkg.Dir: true}
	seen := map[string]bool{pkg.Path: true}
	var visit func(path string)
	visit = func(path string) {
		if seen[path] {
			return
		}
		seen[path] = true
		dep := c.loader.Cached(path)
		if dep == nil {
			return
		}
		dirs[dep.Dir] = true
		if dep.Types == nil {
			return
		}
		for _, imp := range dep.Types.Imports() {
			if moduleInternal(c.loader, imp.Path()) {
				visit(imp.Path())
			}
		}
	}
	if pkg.Types != nil {
		for _, imp := range pkg.Types.Imports() {
			if moduleInternal(c.loader, imp.Path()) {
				visit(imp.Path())
			}
		}
	}
	out := make([]string, 0, len(dirs))
	for d := range dirs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

func moduleInternal(l *Loader, path string) bool {
	return l != nil && (path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/"))
}

// entryPath names the cache file for one package: a flattened package path
// plus the key, so stale keys for the same package are overwritten in place.
func (c *Cache) entryPath(pkgPath string) string {
	return filepath.Join(c.dir, strings.ReplaceAll(pkgPath, "/", "_")+".json")
}

func (c *Cache) load(pkgPath, key string) (cacheEntry, bool) {
	data, err := os.ReadFile(c.entryPath(pkgPath))
	if err != nil {
		return cacheEntry{}, false
	}
	var stored struct {
		Key   string     `json:"key"`
		Entry cacheEntry `json:"entry"`
	}
	if err := json.Unmarshal(data, &stored); err != nil || stored.Key != key {
		return cacheEntry{}, false
	}
	return stored.Entry, true
}

func (c *Cache) store(pkgPath, key string, ent cacheEntry) {
	data, err := json.Marshal(struct {
		Key   string     `json:"key"`
		Entry cacheEntry `json:"entry"`
	}{Key: key, Entry: ent})
	if err != nil {
		return
	}
	// Best-effort: a failed write just means a miss next run.
	_ = os.WriteFile(c.entryPath(pkgPath), data, 0o644)
}
