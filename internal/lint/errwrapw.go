package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// newErrwrapw builds the errwrapw analyzer: fmt.Errorf calls whose
// arguments include an error must wrap it with %w.
//
// Invariant (PRs 2-3): error classification is chain-based —
// retrier.IsTransient, cdwnet.NotSent, and the errhandle fatal/retry split
// all walk the chain with errors.As/Is. Formatting an error with %v or %s
// flattens it to text and the classifiers stop seeing Transient()/NotSent
// markers, so a transient fault is suddenly treated as fatal (or worse, a
// non-idempotent failure as retryable).
func newErrwrapw() *Analyzer {
	return &Analyzer{
		Name:      "errwrapw",
		Doc:       "fmt.Errorf with an error argument must use %w so errors.As classification survives",
		Run:       runErrwrapw,
		Cacheable: true,
	}
}

func runErrwrapw(p *Pass) {
	errType := types.Universe.Lookup("error").Type()
	p.walkFiles(func(file *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Errorf" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || p.pkgOf(file, id) != "fmt" {
			return true
		}
		if len(call.Args) < 2 {
			return true
		}
		format, ok := stringLiteral(call.Args[0])
		if !ok {
			return true // computed format string: out of static reach
		}
		if strings.Contains(format, "%w") {
			return true
		}
		for _, arg := range call.Args[1:] {
			t := p.TypeOf(arg)
			if t == nil {
				continue
			}
			if types.AssignableTo(t, errType) {
				p.Report(arg, "error formatted without %%w; IsTransient/NotSent classification cannot see through %%v or %%s")
				return true
			}
		}
		return true
	})
}

// stringLiteral unquotes e when it is a basic string literal (possibly a
// concatenation of literals).
func stringLiteral(e ast.Expr) (string, bool) {
	switch v := e.(type) {
	case *ast.BasicLit:
		if v.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(v.Value)
		if err != nil {
			return "", false
		}
		return s, true
	case *ast.BinaryExpr:
		if v.Op != token.ADD {
			return "", false
		}
		l, ok1 := stringLiteral(v.X)
		r, ok2 := stringLiteral(v.Y)
		if ok1 && ok2 {
			return l + r, true
		}
	case *ast.ParenExpr:
		return stringLiteral(v.X)
	}
	return "", false
}
