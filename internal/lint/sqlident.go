package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// sqlDirty: the string value may carry unquoted dynamic input on some path.
const sqlDirty Bits = 1 << 0

// newSqlident builds the sqlident analyzer: SQL text assembled in the
// translation layers (internal/sqlxlate, internal/cdw, internal/scrub) must
// not interpolate unquoted dynamic values. The virtualizer forwards legacy
// ETL identifiers — table names, column lists, scrub predicates — into
// warehouse SQL; a session-supplied name spliced raw into a statement is an
// injection point and, more mundanely, breaks on the first identifier
// needing quoting.
//
// The check is a flow-sensitive taint analysis. Dirty values: the enclosing
// function's string parameters (unvalidated external input) and anything
// derived from them through assignment, concatenation, or Sprintf. Clean
// values: constants, and the results of quoting functions — anything named
// Quote*, or carrying the //etlvirt:sqlclean directive (resolved across
// packages). A finding fires where SQL-shaped text (a constant part
// containing a SQL keyword) interpolates a may-dirty operand, with the CFG
// path that dirties it as witness.
func newSqlident() *Analyzer {
	return &Analyzer{
		Name:      "sqlident",
		Doc:       "SQL text in the translation layers must not interpolate unquoted dynamic identifiers (quote, or mark producers //etlvirt:sqlclean)",
		Run:       runSqlident,
		Dataflow:  true,
		Cacheable: true,
	}
}

// sqlScoped reports whether the analyzer applies to a package: the layers
// that assemble warehouse SQL, plus the analyzer's own fixture tree.
func sqlScoped(pkgPath string) bool {
	for _, suffix := range []string{"sqlxlate", "cdw", "scrub", "sqlident"} {
		if pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix) {
			return true
		}
	}
	return false
}

type sqlPass struct {
	p    *Pass
	fd   *ast.FuncDecl
	body *ast.BlockStmt
}

func runSqlident(p *Pass) {
	if !sqlScoped(p.Path) || p.Info == nil {
		return
	}
	p.forEachFuncBody(func(file *ast.File, fd *ast.FuncDecl, body *ast.BlockStmt) {
		for _, d := range funcDirectives(fd) {
			if d.Verb == "sqlclean" {
				return // the function IS a sanitizer; its internals are exempt
			}
		}
		sp := &sqlPass{p: p, fd: fd, body: body}
		g := BuildCFG(body)
		transfer := func(n ast.Node, st State) { sp.transfer(n, st, nil) }
		in := Flow(g, transfer)
		for _, b := range g.Blocks {
			st := in[b].clone()
			for _, n := range b.Nodes {
				sp.transfer(n, st, func(at ast.Node, operand ast.Expr) {
					w := g.PathWitness(p.Fset, b, at)
					p.ReportWitness(at, w, nil,
						"SQL text interpolates %s, which may be unquoted dynamic input on this path; quote it or mark its producer //etlvirt:sqlclean",
						pathString(operand))
				})
			}
		}
	})
}

// transfer updates taint state for one node; with check set it also reports
// dirty interpolations into SQL-shaped text.
func (sp *sqlPass) transfer(n ast.Node, st State, check func(at ast.Node, operand ast.Expr)) {
	if check != nil {
		sp.scanBuilds(n, st, check)
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			key, _, ok := sp.p.PathKey(lhs)
			if !ok {
				continue
			}
			var rhs ast.Expr
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[i]
			}
			if rhs == nil {
				continue
			}
			if dirty, origin := sp.dirtyExpr(rhs, st); dirty {
				st[key] = Fact{Bits: sqlDirty, Origin: origin}
			} else {
				delete(st, key)
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, id := range vs.Names {
				if i >= len(vs.Values) {
					continue
				}
				if dirty, origin := sp.dirtyExpr(vs.Values[i], st); dirty {
					if obj := sp.p.Info.Defs[id]; obj != nil {
						st[keyFor(id.Name, obj)] = Fact{Bits: sqlDirty, Origin: origin}
					}
				}
			}
		}
	}
}

// scanBuilds finds SQL-building expressions in n and reports dirty operands.
func (sp *sqlPass) scanBuilds(n ast.Node, st State, check func(ast.Node, ast.Expr)) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			if c.Op.String() != "+" {
				return true
			}
			if !sp.sqlShaped(constParts(c)) {
				return true
			}
			for _, side := range []ast.Expr{c.X, c.Y} {
				if dirty, _ := sp.dirtyExpr(side, st); dirty {
					check(c, dirtyOperand(side))
				}
			}
			return false
		case *ast.CallExpr:
			if !sp.isFormatCall(c) || len(c.Args) == 0 {
				return true
			}
			if !sp.sqlShaped(sp.constText(c.Args[0])) {
				return true
			}
			for _, a := range c.Args[1:] {
				if dirty, _ := sp.dirtyExpr(a, st); dirty {
					check(c, dirtyOperand(a))
				}
			}
			return false
		}
		return true
	})
}

// dirtyOperand picks the expression to name in the message.
func dirtyOperand(e ast.Expr) ast.Expr {
	e = ast.Unparen(e)
	if b, ok := e.(*ast.BinaryExpr); ok {
		return dirtyOperand(b.X)
	}
	return e
}

// dirtyExpr reports whether e may be dirty under st, and the node that made
// it so.
func (sp *sqlPass) dirtyExpr(e ast.Expr, st State) (bool, ast.Node) {
	e = ast.Unparen(e)
	if sp.isConst(e) {
		return false, nil
	}
	switch e := e.(type) {
	case *ast.BasicLit:
		return false, nil
	case *ast.BinaryExpr:
		if d, o := sp.dirtyExpr(e.X, st); d {
			return true, o
		}
		return sp.dirtyExpr(e.Y, st)
	case *ast.CallExpr:
		if sp.isCleanCall(e) {
			return false, nil
		}
		if sp.isFormatCall(e) && len(e.Args) > 0 {
			for _, a := range e.Args[1:] {
				if d, o := sp.dirtyExpr(a, st); d {
					return true, o
				}
			}
			return false, nil
		}
		// Other call results are trusted: they are this module's own
		// constructors (AST printers, renderers) — the taint boundary is
		// raw parameter strings, not computation.
		return false, nil
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr:
		key, root, ok := sp.p.PathKey(e)
		if !ok {
			return false, nil
		}
		if f, tracked := st[key]; tracked && f.Bits&sqlDirty != 0 {
			return true, f.Origin
		}
		if sp.isStringParam(root, e) {
			return true, e
		}
		return false, nil
	}
	return false, nil
}

// isStringParam reports whether the path's root object is a string-typed
// parameter (or receiver field access on one) of the enclosing function.
func (sp *sqlPass) isStringParam(root types.Object, e ast.Expr) bool {
	if root == nil {
		return false
	}
	// Parameters and receivers are declared between the func keyword and the
	// body's opening brace.
	if root.Pos() < sp.fd.Pos() || root.Pos() >= sp.body.Pos() {
		return false
	}
	t := sp.p.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func (sp *sqlPass) isConst(e ast.Expr) bool {
	if sp.p.Info == nil {
		return false
	}
	tv, ok := sp.p.Info.Types[e]
	return ok && tv.Value != nil
}

// isCleanCall matches sanitizer calls: Quote*-named functions/methods, or
// anything carrying //etlvirt:sqlclean (resolved cross-package).
func (sp *sqlPass) isCleanCall(call *ast.CallExpr) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if strings.HasPrefix(name, "Quote") || strings.HasPrefix(name, "quote") {
		return true
	}
	fn := sp.p.calleeFunc(call)
	if fn == nil {
		// A conversion like ScrubTableName(x) is not a *types.Func call;
		// resolve the named type's directive-bearing methods elsewhere.
		return false
	}
	for _, d := range sp.p.FuncDirectives(fn) {
		if d.Verb == "sqlclean" {
			return true
		}
	}
	return false
}

// isFormatCall matches fmt.Sprintf/Sprint/Sprintln and strings.Join.
func (sp *sqlPass) isFormatCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	switch {
	case id.Name == "fmt" && strings.HasPrefix(sel.Sel.Name, "Sprint"):
		return true
	case id.Name == "strings" && sel.Sel.Name == "Join":
		return true
	}
	return false
}

// constText returns e's constant string value, or "".
func (sp *sqlPass) constText(e ast.Expr) string {
	if sp.p.Info != nil {
		if tv, ok := sp.p.Info.Types[e]; ok && tv.Value != nil {
			return tv.Value.String()
		}
	}
	if bl, ok := ast.Unparen(e).(*ast.BasicLit); ok {
		return bl.Value
	}
	return ""
}

// constParts concatenates the constant string fragments of a + chain.
func constParts(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return e.Value
	case *ast.BinaryExpr:
		if e.Op.String() == "+" {
			return constParts(e.X) + " " + constParts(e.Y)
		}
	}
	return ""
}

// sqlShaped reports whether constant text looks like SQL: it contains an
// upper-case SQL keyword. The analyzer only polices strings that become
// statements, not every formatted message in the scoped packages.
func (sp *sqlPass) sqlShaped(text string) bool {
	for _, kw := range []string{
		"SELECT ", "INSERT ", "UPDATE ", "DELETE ", "CREATE ", "DROP ",
		"ALTER ", "MERGE ", "COPY ", "TRUNCATE ", " FROM ", " WHERE ", " INTO ",
	} {
		if strings.Contains(text, kw) {
			return true
		}
	}
	return false
}
