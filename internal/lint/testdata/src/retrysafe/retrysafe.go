// Package retrysafe is the retrysafe analyzer fixture: CDW Exec calls may
// not sit lexically inside a retrier.Do closure.
package retrysafe

import (
	"context"

	"etlvirt/internal/cdwnet"
	"etlvirt/internal/retrier"
)

// violating: a blind retry loop around Exec can double-apply DML.
func retryExec(ctx context.Context, r *retrier.Retrier, p *cdwnet.Pool) error {
	return r.Do(ctx, "dml", func() error {
		_, err := p.Exec("UPDATE t SET x = x + 1") // want "Pool.Exec inside a retrier.Do closure"
		return err
	})
}

// violating: the single-connection client is just as unsafe.
func retryClientExec(ctx context.Context, r *retrier.Retrier, c *cdwnet.Client) error {
	return r.Do(ctx, "dml", func() error {
		_, err := c.Exec("DELETE FROM t") // want "Client.Exec inside a retrier.Do closure"
		return err
	})
}

// conforming: idempotent reads may retry freely.
func retryQuery(ctx context.Context, r *retrier.Retrier, p *cdwnet.Pool) error {
	return r.Do(ctx, "probe", func() error {
		_, _, err := p.QueryAll("SELECT 1")
		return err
	})
}

// conforming: Exec outside any retry closure relies on the pool's
// NotSent-only retry.
func plainExec(p *cdwnet.Pool) error {
	_, err := p.Exec("INSERT INTO t VALUES (1)")
	return err
}

// suppressed: the statement is a DDL drop that is idempotent by
// construction, so the blanket rule is deliberately waived here.
func retryIdempotentDrop(ctx context.Context, r *retrier.Retrier, p *cdwnet.Pool) error {
	return r.Do(ctx, "drop", func() error {
		_, err := p.Exec("DROP TABLE IF EXISTS t_stage") //nolint:retrysafe
		return err
	})
}
