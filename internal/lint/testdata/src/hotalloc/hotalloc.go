// Package hotalloc is the hotalloc analyzer fixture: fmt calls inside
// functions annotated //etlvirt:hotpath must be flagged.
package hotalloc

import (
	"fmt"
	"strconv"
)

// violating: per-row formatting through fmt.

//etlvirt:hotpath
func appendRow(dst []byte, row int64) []byte {
	s := fmt.Sprintf("%d", row) // want "fmt.Sprintf inside hot-path function appendRow"
	return append(dst, s...)
}

//etlvirt:hotpath
func decodeField(p []byte) error {
	if len(p) < 2 {
		return fmt.Errorf("truncated field") // want "fmt.Errorf inside hot-path function decodeField"
	}
	return nil
}

// violating even in nested closures: the annotation covers the whole body.
//
//etlvirt:hotpath
func viaClosure(rows []int64) {
	for _, r := range rows {
		func() {
			fmt.Println(r) // want "fmt.Println inside hot-path function viaClosure"
		}()
	}
}

// conforming: append codecs and cold error helpers.

//etlvirt:hotpath
func appendRowFast(dst []byte, row int64) []byte {
	return strconv.AppendInt(dst, row, 10)
}

//etlvirt:hotpath
func decodeFieldFast(p []byte) error {
	if len(p) < 2 {
		return errTruncated()
	}
	return nil
}

// errTruncated is the cold helper: un-annotated, fmt is fine here.
func errTruncated() error { return fmt.Errorf("truncated field") }

// conforming: no annotation, no rule — slow paths may use fmt freely.
func slowPath(row int64) string { return fmt.Sprintf("%d", row) }

// conforming: the escape hatch for a justified exception.
//
//etlvirt:hotpath
func escapeHatch(row int64) string {
	return fmt.Sprintf("%d", row) //nolint:hotalloc // one-off diagnostic, not per-row
}
