// Package wire is the endian analyzer fixture: the import path ends in
// /wire, putting it in the wire-format scope where only binary.BigEndian
// may be referenced.
package wire

import "encoding/binary"

// violating: little-endian framing desynchronizes the legacy stream.
func putLenLE(dst []byte, n uint16) {
	binary.LittleEndian.PutUint16(dst, n) // want "binary.LittleEndian in a wire-format package"
}

func readLenNative(src []byte) uint16 {
	return binary.NativeEndian.Uint16(src) // want "binary.NativeEndian in a wire-format package"
}

// conforming: network byte order.
func putLenBE(dst []byte, n uint16) {
	binary.BigEndian.PutUint16(dst, n)
}

// suppressed: the legacy TDF header's one little-endian field, inherited
// from the mainframe tool byte-for-byte.
func legacyHeaderField(src []byte) uint16 {
	return binary.LittleEndian.Uint16(src) //nolint:endian
}
