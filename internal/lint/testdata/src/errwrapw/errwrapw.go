// Package errwrapw is the errwrapw analyzer fixture: fmt.Errorf calls
// carrying an error must wrap it with %w.
package errwrapw

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

// violating: %v flattens the chain; errors.As can no longer classify it.
func flattenV(err error) error {
	return fmt.Errorf("upload failed: %v", err) // want "error formatted without %w"
}

func flattenS(op string, err error) error {
	return fmt.Errorf("%s: %s", op, err) // want "error formatted without %w"
}

// conforming: %w preserves the chain.
func wrap(err error) error {
	return fmt.Errorf("upload failed: %w", err)
}

// conforming: no error argument at all.
func plain(rows int) error {
	return fmt.Errorf("staging row count %d mismatch", rows)
}

// conforming: err.Error() is a string, already flattened on purpose.
func stringified(err error) error {
	return fmt.Errorf("legacy message %q", err.Error())
}

// out of static reach: computed format strings are skipped.
func computed(format string, err error) error {
	return fmt.Errorf("prefix: "+format, err)
}

// suppressed: the legacy report format is byte-for-byte frozen; wrapping
// would leak Go error-chain syntax into fixed-width report fields.
func frozenReport(err error) error {
	return fmt.Errorf("RC=12 MSG=%v", err) //nolint:errwrapw
}
