// Package bufown is the bufown analyzer fixture: pool-buffer ownership over
// multi-path control flow.
package bufown

import "sync"

var pool = sync.Pool{New: func() any { return make([]byte, 0, 1024) }}

func getBuf(capHint int) []byte { return pool.Get().([]byte)[:0] }

func putBuf(b []byte) { pool.Put(b) }

type task struct {
	payload []byte //etlvirt:owns
	rows    int
}

type sink struct {
	ch chan task
}

// leakOnErrorPath loses the buffer when validation fails: the happy path
// releases, the error path returns early.
func leakOnErrorPath(n int) error {
	buf := getBuf(n) // want "buffer buf from getBuf may reach a return without putBuf"
	if n > 1024 {
		return errTooBig // leaks buf
	}
	use(buf)
	putBuf(buf)
	return nil
}

// balancedBothPaths releases on every path and is clean.
func balancedBothPaths(n int) error {
	buf := getBuf(n)
	if n > 1024 {
		putBuf(buf)
		return errTooBig
	}
	use(buf)
	putBuf(buf)
	return nil
}

// useAfterPut touches the buffer after recycling it — the classic
// len-after-put bug.
func useAfterPut(n int) int {
	buf := getBuf(n)
	use(buf)
	putBuf(buf)
	return len(buf) // want "use of buf after putBuf"
}

// doublePutOneBranch releases twice when the condition holds.
func doublePutOneBranch(n int) {
	buf := getBuf(n)
	if n > 1024 {
		putBuf(buf)
	}
	putBuf(buf) // want "double putBuf of buf"
}

// channelHandOff transfers ownership with the send; clean.
func channelHandOff(s *sink, n int) {
	buf := getBuf(n)
	s.ch <- task{payload: buf, rows: n}
}

// useAfterHandOff touches the buffer after the send transferred it.
func useAfterHandOff(s *sink, n int) int {
	buf := getBuf(n)
	s.ch <- task{payload: buf, rows: n}
	return len(buf) // want "use of buf after its ownership was transferred"
}

// consumeOwned receives ownership via the directive and releases; clean.
//
//etlvirt:owns b
func consumeOwned(b []byte) {
	use(b)
	putBuf(b)
}

// dropOwned receives ownership via the directive and loses it on one path.
//
//etlvirt:owns b
func dropOwned(b []byte, fail bool) error { // want "buffer b from getBuf may reach a return without putBuf"
	if fail {
		return errTooBig // leaks b
	}
	putBuf(b)
	return nil
}

// sinkTransfers declares that it takes ownership of its argument.
//
//etlvirt:transfers b
func sinkTransfers(b []byte) {
	putBuf(b)
}

// callTransfer hands the buffer to a transfers-annotated callee; clean.
func callTransfer(n int) {
	buf := getBuf(n)
	sinkTransfers(buf)
}

// putAfterTransfer releases a buffer a callee now owns.
func putAfterTransfer(n int) {
	buf := getBuf(n)
	sinkTransfers(buf)
	putBuf(buf) // want "putBuf of buf after its ownership was transferred"
}

// rangeOwnedField: each received task owns its payload via the field
// directive; the error path drops it.
func rangeOwnedField(s *sink) {
	for t := range s.ch { // want "buffer t.payload from getBuf may reach a return without putBuf"
		if t.rows == 0 {
			continue // leaks t.payload
		}
		use(t.payload)
		putBuf(t.payload)
	}
}

// rangeOwnedFieldClean releases every received payload; clean.
func rangeOwnedFieldClean(s *sink) {
	for t := range s.ch {
		if t.rows == 0 {
			putBuf(t.payload)
			continue
		}
		use(t.payload)
		putBuf(t.payload)
	}
}

// deferredPut releases via defer on all paths, including the early return.
func deferredPut(n int) error {
	buf := getBuf(n)
	defer putBuf(buf)
	if n > 1024 {
		return errTooBig
	}
	use(buf)
	return nil
}

// escapeToGoroutine captures an owned buffer in a goroutine without a
// transfer annotation.
func escapeToGoroutine(n int) {
	buf := getBuf(n)
	go func() {
		use(buf) // want "owned buffer buf captured by goroutine"
	}()
	putBuf(buf)
}

// returnOwned hands the buffer to the caller; clean (the caller owns it).
func returnOwned(n int) []byte {
	return getBuf(n)
}

// suppressed pins the escape hatch: the leak is acknowledged.
func suppressed(n int) error {
	buf := getBuf(n) //nolint:bufown // intentional: freed by finalizer in this fixture's story
	if n > 1024 {
		return errTooBig
	}
	putBuf(buf)
	return nil
}

func use(b []byte) {}

var errTooBig error

// rangeRegistryView iterates a registry of tasks without taking ownership:
// only a channel receive is a hand-off, so walking a map of owned-field
// structs (a debug view over live jobs) must not seed facts; clean.
func rangeRegistryView(reg map[int]task) int {
	total := 0
	for _, t := range reg {
		total += len(t.payload)
	}
	return total
}
