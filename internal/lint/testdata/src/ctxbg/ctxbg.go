// Package ctxbg is the ctxbg analyzer fixture: root contexts minted
// outside the node-lifecycle root must be flagged.
package ctxbg

import "context"

// violating: a root context created in pipeline code ignores node shutdown.
func acquire() context.Context {
	return context.Background() // want "context.Background\(\) escapes the node lifetime"
}

func todo() context.Context {
	return context.TODO() // want "context.TODO\(\) escapes the node lifetime"
}

// conforming: deriving from a caller-supplied context is the rule.
func derive(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}
