package ctxbg

import "context"

// conforming: node.go is the node-lifecycle root, the one place a base
// context may be minted.
func mintRoot() (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background())
}
