// Package goroleak is the goroleak analyzer fixture: goroutine literals
// must be reachable by a stop signal.
package goroleak

import (
	"context"
	"sync"
	"time"
)

// violating: nothing can ever stop this goroutine.
func spinner() {
	go func() { // want "references no context.Context and no channel"
		for {
			time.Sleep(time.Second)
		}
	}()
}

// violating: a WaitGroup joins the goroutine but cannot interrupt it.
func waitOnly(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // want "references no context.Context and no channel"
		defer wg.Done()
		for i := 0; i < 1000000; i++ {
			_ = i * i
		}
	}()
}

// conforming: receives a context parameter.
func withCtxParam(ctx context.Context) {
	go func(ctx context.Context) {
		<-ctx.Done()
	}(ctx)
}

// conforming: captures a channel from the enclosing scope.
func withCapturedChan() chan struct{} {
	stop := make(chan struct{})
	go func() {
		<-stop
	}()
	return stop
}

// conforming: captures a context from the enclosing scope.
func withCapturedCtx(ctx context.Context, cond *sync.Cond) {
	go func() {
		<-ctx.Done()
		cond.Broadcast()
	}()
}

// conforming: a named function is the callee's responsibility, not the
// launch site's.
func namedLaunch() {
	go helper()
}

func helper() {}

// suppressed: a process-lifetime sampler that must outlive every node;
// leak-on-exit is the documented intent.
func processLifetimeSampler() {
	go func() { //nolint:goroleak
		for {
			time.Sleep(time.Minute)
		}
	}()
}
