// Package nolint is the suppression fixture: //nolint directives silence
// findings on their own line or the line below, per analyzer or globally.
package nolint

import "context"

// suppressed inline, by name.
func inline() context.Context {
	return context.Background() //nolint:ctxbg // bounded by process lifetime in this fixture
}

// suppressed from the line above, by name.
func above() context.Context {
	//nolint:ctxbg
	return context.Background()
}

// suppressed by the bare wildcard form.
func wildcard() context.Context {
	return context.Background() //nolint
}

// NOT suppressed: the directive names a different analyzer.
func wrongName() context.Context {
	return context.Background() //nolint:endian // want "context.Background\(\) escapes the node lifetime"
}
