// Package metricname is the metricname analyzer fixture: registrations
// must use literal, namespaced, unique names.
package metricname

import "etlvirt/internal/obs"

func register(r *obs.Registry, dynamic string) {
	// conforming: namespaced literal.
	r.Counter("etlvirt_fixture_rows_total", "Rows.")
	r.Gauge("etlvirt_fixture_depth", "Depth.")
	r.Histogram("etlvirt_fixture_wait_seconds", "Wait.", nil)
	r.CounterFunc("etlvirt_fixture_funcs_total", "Funcs.", func() int64 { return 0 })
	r.GaugeFunc("etlvirt_fixture_live", "Live.", func() float64 { return 0 })
	r.LabeledGaugeFunc("etlvirt_fixture_lag_seconds", "Lag.", "stream", func() []obs.LabeledValue { return nil })

	// violating: outside the etlvirt_ namespace.
	r.Counter("rows_total", "Rows.") // want "does not match"

	// violating: labeled registrations are registrations too.
	r.LabeledGaugeFunc("fixture_lag", "Lag.", "stream", func() []obs.LabeledValue { return nil }) // want "does not match"

	// violating: an empty help string ships a blank HELP line.
	r.Counter("etlvirt_fixture_blank_total", "") // want "empty help string"

	// violating: computed help defeats the static non-empty check.
	r.Gauge("etlvirt_fixture_computed", dynamic) // want "help for metric .* must be a string literal"

	// violating: uppercase breaks the snake-case convention.
	r.Gauge("etlvirt_Depth", "Depth.") // want "does not match"

	// violating: a computed name defeats static duplicate detection.
	r.Counter(dynamic, "Dynamic.") // want "metric name must be a string literal"

	// violating: second registration of an existing name panics at runtime.
	r.Gauge("etlvirt_fixture_depth", "Depth again.") // want "duplicate metric name"
}

// suppressed: one legacy dashboard series predates the namespace rule and
// is pinned until the dashboards migrate.
func registerLegacy(r *obs.Registry) {
	r.Counter("legacy_rows_total", "Rows, legacy series.") //nolint:metricname
}
