// Package wirekindclient is the client surface of the wirekind fixture: the
// dispatch directive below makes the analyzer require every server->client
// message type (or its kind constant) to be referenced somewhere here.
// Stats is deliberately absent.
//
//etlvirt:dispatch client
package wirekindclient

import wk "etlvirt/internal/lint/testdata/src/wirekind"

// Consume handles the frames the fixture client understands.
func Consume(m wk.Message) int {
	switch m := m.(type) {
	case *wk.Pong:
		_ = m
		return 1
	case *wk.Mute:
		return 2
	case *wk.Hush:
		return 3
	}
	return 0
}

// Expect consumes an ack-only frame by kind constant, the Expect(KindX)
// idiom: coverage without naming the message type.
func Expect(k wk.Kind) bool {
	return k == wk.KindAck
}
