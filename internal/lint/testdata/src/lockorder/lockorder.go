// Package lockorder is the fixture for the lockorder analyzer: mutexes must
// be released on every path, and the global acquisition order must stay
// acyclic (directly and transitively through calls).
package lockorder

import (
	"errors"
	"sync"
)

var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
	muD sync.Mutex
	muE sync.Mutex
	muG sync.Mutex
	muH sync.RWMutex
)

// abOrder and baOrder acquire the same two mutexes in opposite orders: a
// deadlock waiting for the right interleaving. The cycle is reported at the
// edge site of its lexicographically first node.
func abOrder() {
	muA.Lock()
	muB.Lock() // want "lock acquisition cycle"
	muB.Unlock()
	muA.Unlock()
}

func baOrder() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

// cThenD closes a cycle transitively: it holds muC across a call whose
// callee locks muD, while dThenC takes them in the other order.
func lockD() {
	muD.Lock()
	muD.Unlock()
}

func cThenD() {
	muC.Lock()
	lockD() // want "lock acquisition cycle"
	muC.Unlock()
}

func dThenC() {
	muD.Lock()
	muC.Lock()
	muC.Unlock()
	muD.Unlock()
}

// holdOnError forgets the unlock on the early-return path.
func holdOnError(fail bool) error {
	muG.Lock() // want "lockorder.muG may still be held when holdOnError returns"
	if fail {
		return errors.New("boom")
	}
	muG.Unlock()
	return nil
}

// deferUnlock releases on every path, including panic unwinds.
func deferUnlock() {
	muG.Lock()
	defer muG.Unlock()
}

// readLeak loses a read lock on one path; RWMutex read state is tracked
// independently of the write side.
func readLeak(fail bool) int {
	muH.RLock() // want "lockorder.muH/r may still be held when readLeak returns"
	if fail {
		return 0
	}
	muH.RUnlock()
	return 1
}

// readBalanced pairs the read lock on both paths.
func readBalanced(fail bool) int {
	muH.RLock()
	if fail {
		muH.RUnlock()
		return 0
	}
	muH.RUnlock()
	return 1
}

// lockAndReturn hands muE to its caller locked by contract; the escape hatch
// records the deliberate exception.
func lockAndReturn() {
	muE.Lock() //nolint:lockorder
}
