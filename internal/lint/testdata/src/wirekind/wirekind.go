// Package wirekind is the fixture for the wirekind analyzer: every kind
// constant must be wired through the codec, server, client, and label
// surfaces. The companion package wirekindclient carries the client surface.
package wirekind

// Kind tags a frame.
type Kind uint8

// Message is one decoded frame.
type Message interface{ Kind() Kind }

// The direction comments double as the analyzer's input; the want
// expectations ride in the same trailing comment.
const (
	KindInvalid Kind = 0
	KindPing    Kind = 1 // client -> server: fully wired
	KindPong    Kind = 2 // server -> client: fully wired
	KindStats   Kind = 3 // server -> client: want "KindStats is server->client but Stats is never referenced in the client package"
	KindDrop    Kind = 4 // client -> server: want "KindDrop is client->server but \*Drop has no case in the server dispatch switch"
	KindGone    Kind = 5 // client -> server: want "KindGone has no arm in the codec dispatch switch"
	KindAck     Kind = 6 // server -> client: consumed by kind constant in the client
	KindMute    Kind = 7 // server -> client: want "KindMute has no entry in Kind.String's name table"
	// The label gap below is deliberate (diagnostic-only kind); the escape
	// hatch records it.
	//nolint:wirekind
	KindHush Kind = 8 // server -> client: deliberately unlabeled
)

// String names a kind for traces; the table deliberately stops at KindAck.
func (k Kind) String() string {
	names := [...]string{"invalid", "ping", "pong", "stats", "drop", "gone", "ack"}
	if int(k) < len(names) {
		return names[k]
	}
	return "?"
}

type (
	// Ping checks liveness.
	Ping struct{}
	// Pong answers a Ping.
	Pong struct{}
	// Stats reports counters.
	Stats struct{}
	// Drop abandons a stream.
	Drop struct{}
	// Gone announces a closed stream.
	Gone struct{}
	// Ack is a bare acknowledgement.
	Ack struct{}
	// Mute silences reporting.
	Mute struct{}
	// Hush is Mute's diagnostic-only twin.
	Hush struct{}
)

func (*Ping) Kind() Kind  { return KindPing }
func (*Pong) Kind() Kind  { return KindPong }
func (*Stats) Kind() Kind { return KindStats }
func (*Drop) Kind() Kind  { return KindDrop }
func (*Gone) Kind() Kind  { return KindGone }
func (*Ack) Kind() Kind   { return KindAck }
func (*Mute) Kind() Kind  { return KindMute }
func (*Hush) Kind() Kind  { return KindHush }

// NewMessage is the codec surface: it misses KindGone.
func NewMessage(k Kind) Message {
	//etlvirt:dispatch codec
	switch k {
	case KindPing:
		return &Ping{}
	case KindPong:
		return &Pong{}
	case KindStats:
		return &Stats{}
	case KindDrop:
		return &Drop{}
	case KindAck:
		return &Ack{}
	case KindMute:
		return &Mute{}
	case KindHush:
		return &Hush{}
	}
	return nil
}

// Serve is the server surface: it misses *Drop, and exempts KindGone, which
// is consumed by a pre-loop handshake in the real protocol's shape.
func Serve(m Message) {
	//etlvirt:dispatch server -KindGone
	switch m.(type) {
	case *Ping:
	}
}
