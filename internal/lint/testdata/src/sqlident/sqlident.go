// Package sqlident is the fixture for the sqlident analyzer: SQL text in the
// translation layers must not interpolate unquoted dynamic identifiers. The
// package path ends in "sqlident", which puts it in the analyzer's scope.
package sqlident

import (
	"fmt"
	"strings"
)

// quoteName is clean by naming convention (quote* prefix).
func quoteName(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// renderTable is a sanitizer by declaration: its results are trusted.
//
//etlvirt:sqlclean
func renderTable(s string) string {
	return quoteName(s)
}

// concatRaw splices a raw parameter into a statement.
func concatRaw(table string) string {
	return "SELECT * FROM " + table // want "SQL text interpolates table"
}

// sprintfRaw does the same through a format call.
func sprintfRaw(table string) string {
	return fmt.Sprintf("SELECT COUNT(1) FROM %s", table) // want "SQL text interpolates table"
}

// quoted interpolates only sanitized values.
func quoted(table string) string {
	return "SELECT * FROM " + quoteName(table)
}

// rendered trusts the directive-marked producer.
func rendered(table string) string {
	return fmt.Sprintf("DELETE FROM %s", renderTable(table))
}

// taintFlows tracks dirt through assignments and branches: name is clean on
// one path, a raw parameter derivative on the other, so the build site is a
// may-dirty interpolation.
func taintFlows(table string, quote bool) string {
	name := table
	if quote {
		name = quoteName(table)
	}
	return "DROP TABLE " + name // want "SQL text interpolates name"
}

// rebound is clean on every path: the dirty binding is overwritten before
// any SQL is built.
func rebound(table string) string {
	name := table
	name = quoteName(name)
	return "DROP TABLE " + name
}

// messageNotSQL interpolates into non-SQL text; the analyzer only polices
// statement-shaped strings.
func messageNotSQL(table string) string {
	return "scrub skipped table " + table
}

// suppressed pins the escape hatch: text built for parsing only, never sent.
func suppressed(pred string) string {
	return "SELECT 1 FROM t WHERE " + pred //nolint:sqlident
}
