// Package spanbalance is the fixture for the spanbalance analyzer: every
// Tracer.Start/StartCtx must reach Finish or a hand-off on all paths. The
// Tracer double below matches the analyzer's type-driven detection (methods
// on a named type called Tracer).
package spanbalance

import "errors"

// Tracer is a stand-in for the obs tracer.
type Tracer struct{}

// Span is a started-span handle.
type Span struct{ id int }

func (t *Tracer) Start(name string) *Span            { return &Span{} }
func (t *Tracer) StartCtx(name string, id int) *Span { return &Span{} }
func (t *Tracer) Finish(id int)                      {}

func (s *Span) note() {}

type job struct {
	trace *Span
}

var registry = map[int]*job{}

// leakOnErrorPath loses the span when the early return fires.
func leakOnErrorPath(t *Tracer, fail bool) error {
	h := t.Start("job") // want "trace h may reach a return without Finish"
	if fail {
		return errors.New("boom")
	}
	h.note()
	t.Finish(0)
	return nil
}

// startCtxLeak leaks through the loop's break path.
func startCtxLeak(t *Tracer, n int) {
	h := t.StartCtx("chunk", n) // want "trace h may reach a return without Finish"
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
	}
	h.note()
}

// finishBothPaths settles the span on every branch.
func finishBothPaths(t *Tracer, fail bool) error {
	h := t.Start("job")
	h.note()
	if fail {
		t.Finish(0)
		return errors.New("boom")
	}
	t.Finish(0)
	return nil
}

// deferredFinish counts on every path, including the early return.
func deferredFinish(t *Tracer, fail bool) error {
	h := t.Start("job")
	defer t.Finish(0)
	h.note()
	if fail {
		return errors.New("boom")
	}
	return nil
}

// handOffReturn transfers the span's lifecycle to the caller.
func handOffReturn(t *Tracer) *Span {
	h := t.Start("job")
	return h
}

// rekeyAndPublish moves tracking into the composite literal's field and then
// hands the holder to the registry, which owns the lifecycle from there.
func rekeyAndPublish(t *Tracer, id int) {
	h := t.Start("job")
	j := &job{trace: h}
	registry[id] = j
}

// rekeyAndDrop re-keys into the literal but then loses the holder on the
// error path: the diagnostic points at the Start that originated the span.
func rekeyAndDrop(t *Tracer, fail bool) error {
	h := t.Start("job") // want "trace j.trace may reach a return without Finish"
	j := &job{trace: h}
	if fail {
		return errors.New("boom")
	}
	registry[0] = j
	return nil
}

// passToHelper is a hand-off: the callee owns the span now.
func passToHelper(t *Tracer) {
	h := t.Start("job")
	settle(h)
}

func settle(s *Span) {}

// suppressed pins the escape hatch: a fire-and-forget span, deliberately
// unfinished, silenced with a justified directive.
func suppressed(t *Tracer, fail bool) error {
	h := t.Start("probe") //nolint:spanbalance
	if fail {
		return errors.New("boom")
	}
	h.note()
	t.Finish(0)
	return nil
}
