package lint

import (
	"go/ast"
	"go/types"
)

// bufown bit states: what a tracked buffer may be, on some path.
const (
	bufOwned       Bits = 1 << iota // holds pool ownership; must be released or transferred
	bufReleased                     // returned to the pool via putBuf
	bufTransferred                  // ownership handed to another stage
)

// newBufown builds the bufown analyzer: flow-sensitive buffer-ownership
// checking for the recycled chunk buffers of the acquisition hot path.
//
// Invariant (PR 5, "Hot-path allocation discipline"): every buffer obtained
// from the chunk pool (getBuf) changes owner strictly forward through the
// pipeline — session → converter → writer → pool — and exactly one stage
// returns it (putBuf). The compiler cannot see this contract; until this
// analyzer, it was enforced only by hand-off comments. The contract is now
// declared with //etlvirt:owns / //etlvirt:transfers directives (see
// DESIGN.md) and checked over the control-flow graph:
//
//   - use-after-put: reading a buffer that may already be back in the pool
//     (another goroutine may have recycled and be appending into it);
//   - double-put: releasing the same buffer twice poisons the pool with
//     aliased slices;
//   - put-after-transfer: releasing a buffer another stage now owns;
//   - goroutine escape: an owned buffer captured by a `go` literal without
//     a transfer annotation outlives the owner's frame unaccountably;
//   - leak: a path to return on which an owned buffer is neither released
//     nor transferred (the pool silently shrinks under error paths).
func newBufown() *Analyzer {
	return &Analyzer{
		Name:      "bufown",
		Doc:       "buffer-ownership dataflow: every getBuf is released or transferred exactly once on every path (//etlvirt:owns, //etlvirt:transfers)",
		Run:       runBufown,
		Dataflow:  true,
		Cacheable: true,
	}
}

// bufownPass carries per-function analysis state.
type bufownPass struct {
	p         *Pass
	body      *ast.BlockStmt
	ownsField map[types.Object]bool // struct fields marked //etlvirt:owns
	localRoot map[string]bool       // keys whose root is body-local (leak-checked)
	ownsParam map[string]bool       // keys seeded by a function-level owns directive (leak-checked)
}

func runBufown(p *Pass) {
	// Only packages that use the pool idiom have anything to check: the
	// analyzer keys off functions named getBuf/putBuf in the package.
	if !packageHasFunc(p, "getBuf") && !packageHasFunc(p, "putBuf") {
		return
	}
	ownsField := collectOwnsFields(p)
	p.forEachFuncBody(func(file *ast.File, fd *ast.FuncDecl, body *ast.BlockStmt) {
		if fd.Name.Name == "getBuf" || fd.Name.Name == "putBuf" {
			return // the pool's own implementation is exempt
		}
		bp := &bufownPass{
			p: p, body: body,
			ownsField: ownsField,
			localRoot: make(map[string]bool),
			ownsParam: make(map[string]bool),
		}
		seed := State{}
		for _, d := range funcDirectives(fd) {
			if d.Verb != "owns" || len(d.Args) == 0 {
				continue
			}
			for _, arg := range d.Args {
				if key, ok := bp.seedKey(fd, arg); ok {
					seed[key] = Fact{Bits: bufOwned, Origin: fd.Name}
					bp.ownsParam[key] = true
				}
			}
		}
		g := BuildCFG(body)
		transfer := func(n ast.Node, st State) { bp.transfer(n, st, nil) }
		in := flowFrom(g, seed, transfer)
		// Replay each block from its solved in-state, reporting violations.
		for _, b := range g.Blocks {
			st := in[b].clone()
			for _, n := range b.Nodes {
				bp.transfer(n, st, func(at ast.Node, format string, args ...any) {
					w := g.PathWitness(p.Fset, b, at)
					p.ReportWitness(at, w, nil, format, args...)
				})
			}
		}
		// Leak check: anything still possibly owned at exit, rooted in a
		// body-local or an owns-directive parameter, escaped accounting.
		exit := ExitState(g, in, func(n ast.Node, st State) { bp.transfer(n, st, nil) })
		for key, f := range exit {
			if f.Bits&bufOwned == 0 {
				continue
			}
			if !bp.localRoot[key] && !bp.ownsParam[key] {
				continue
			}
			w := g.PathWitness(p.Fset, g.Exit, nil)
			at := f.Origin
			if at == nil {
				at = fd.Name
			}
			p.ReportWitness(at, w, nil,
				"buffer %s from getBuf may reach a return without putBuf or an ownership transfer (pool leak) in %s",
				keyDisplay(key), fd.Name.Name)
		}
	})
}

// flowFrom is Flow with an explicit entry in-state (owns-directive seeds).
func flowFrom(g *CFG, entry State, transfer func(ast.Node, State)) map[*Block]State {
	// As in Flow, every block is seeded so each is processed at least once.
	in := make(map[*Block]State, len(g.Blocks))
	work := make([]*Block, 0, len(g.Blocks))
	queued := make(map[*Block]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = State{}
		work = append(work, b)
		queued[b] = true
	}
	in[g.Entry] = entry.clone()
	steps := 0
	limit := 64 * (len(g.Blocks) + 1)
	for len(work) > 0 && steps < limit {
		steps++
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := in[b].clone()
		for _, n := range b.Nodes {
			transfer(n, out)
		}
		for _, s := range b.Succs {
			if in[s].join(out) && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// seedKey resolves an owns-directive argument ("m.Payload" or "buf") to a
// state key rooted at a parameter or receiver of fd.
func (bp *bufownPass) seedKey(fd *ast.FuncDecl, arg string) (string, bool) {
	root := arg
	rest := ""
	for i := 0; i < len(arg); i++ {
		if arg[i] == '.' {
			root, rest = arg[:i], arg[i:]
			break
		}
	}
	obj := bp.p.funcParamObj(fd, root)
	if obj == nil {
		return "", false
	}
	return keyFor(root, obj) + rest, true
}

func keyFor(name string, obj types.Object) string {
	return name + "#" + itoa(int(obj.Pos()))
}

// keyDisplay strips the disambiguating object positions from a state key.
func keyDisplay(key string) string {
	out := make([]byte, 0, len(key))
	skip := false
	for i := 0; i < len(key); i++ {
		switch {
		case key[i] == '#':
			skip = true
		case skip && (key[i] < '0' || key[i] > '9'):
			skip = false
			out = append(out, key[i])
		case !skip:
			out = append(out, key[i])
		}
	}
	return string(out)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// transfer is the bufown transfer function. When check is non-nil the pass
// is in the reporting replay and violations are reported through it.
func (bp *bufownPass) transfer(n ast.Node, st State, check func(ast.Node, string, ...any)) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		// RHS uses are checked before LHS kills.
		for _, rhs := range n.Rhs {
			bp.expr(rhs, st, check)
		}
		for i, lhs := range n.Lhs {
			key, root, ok := bp.p.PathKey(lhs)
			if !ok {
				bp.expr(lhs, st, check)
				continue
			}
			// Assigning over a tracked key kills its old state and any
			// sub-paths.
			killPrefix(st, key)
			var rhs ast.Expr
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[i]
			}
			if rhs != nil && bp.isGetBuf(rhs) {
				_, isDeref := ast.Unparen(lhs).(*ast.StarExpr)
				if isBodyLocal(root, bp.body) && !isDeref {
					st[key] = Fact{Bits: bufOwned, Origin: n}
					bp.localRoot[key] = true
				} else {
					// Owned value stored into a field, or through a pointer
					// (`*dst = getBuf(...)` where dst aims at a struct
					// field): the pointee's owner holds it now.
					st[key] = Fact{Bits: bufTransferred, Origin: n}
				}
				continue
			}
			if rhs != nil {
				// Moving a tracked buffer between locations: x.f = buf.
				if srcKey, _, ok := bp.p.PathKey(rhs); ok {
					if f, tracked := st[srcKey]; tracked && f.Bits&bufOwned != 0 {
						if isBodyLocal(root, bp.body) {
							st[key] = Fact{Bits: bufOwned, Origin: f.Origin}
							bp.localRoot[key] = true
						}
						// Ownership left the old location either way.
						st[srcKey] = Fact{Bits: bufTransferred, Origin: f.Origin}
					}
				}
			}
		}

	case *ast.RangeStmt:
		// Per-iteration assignment: stale facts from the previous iteration
		// die, and a value received from a channel of a struct type with
		// //etlvirt:owns fields makes those fields owned — the receive IS
		// the ownership hand-off. Ranging a map or slice is mere iteration
		// (a debug view walking the live-job registry does not take the
		// jobs' buffers), so only channel ranges seed. A channel binds the
		// element to Key; maps and slices use Value.
		fromChan := false
		if bp.p.Info != nil {
			if t := bp.p.Info.TypeOf(n.X); t != nil {
				_, fromChan = t.Underlying().(*types.Chan)
			}
		}
		for _, v := range []ast.Expr{n.Key, n.Value} {
			if v == nil {
				continue
			}
			if key, _, ok := bp.p.PathKey(v); ok {
				killPrefix(st, key)
				if fromChan {
					bp.seedOwnedFields(v, key, n, st)
				}
			}
		}

	case *ast.ExprStmt:
		bp.expr(n.X, st, check)

	case *ast.SendStmt:
		bp.expr(n.Chan, st, check)
		// A channel send transfers ownership of any owned buffer the sent
		// value carries (directly, or inside a composite-literal field).
		bp.transferInto(n.Value, st, check)

	case *ast.GoStmt:
		// Arguments evaluated now.
		for _, a := range n.Call.Args {
			bp.expr(a, st, check)
		}
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && check != nil {
			bp.checkGoroutineCapture(lit, st, check)
		}

	case *ast.DeferStmt:
		// The deferred call runs at exit; ExitState applies n.Call there.
		// Evaluate arguments for use checks only.
		for _, a := range n.Call.Args {
			bp.expr(a, st, check)
		}

	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						bp.expr(v, st, check)
					}
				}
			}
		}

	case *ast.ReturnStmt:
		for _, r := range n.Results {
			// Returning a tracked buffer hands ownership to the caller.
			if key, _, ok := bp.p.PathKey(r); ok {
				if f, tracked := st[key]; tracked && f.Bits&bufOwned != 0 {
					st[key] = Fact{Bits: bufTransferred, Origin: f.Origin}
					continue
				}
			}
			bp.expr(r, st, check)
		}

	case *ast.IncDecStmt:
		bp.expr(n.X, st, check)

	case ast.Expr:
		bp.expr(n, st, check)

	case ast.Stmt:
		// Any other statement: check embedded expressions generically.
		ast.Inspect(n, func(c ast.Node) bool {
			if e, ok := c.(ast.Expr); ok {
				bp.expr(e, st, check)
				return false
			}
			return true
		})
	}
}

// expr walks one expression: putBuf/transfer calls mutate state; any other
// mention of a tracked path is a use, checked against released/transferred.
func (bp *bufownPass) expr(e ast.Expr, st State, check func(ast.Node, string, ...any)) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		if bp.isPutBuf(e) && len(e.Args) == 1 {
			arg := e.Args[0]
			if key, _, ok := bp.p.PathKey(arg); ok {
				f := st[key]
				if check != nil && f.Bits&bufReleased != 0 {
					check(e, "double putBuf of %s: the buffer may already be back in the pool", pathString(arg))
				}
				if check != nil && f.Bits&bufTransferred != 0 {
					check(e, "putBuf of %s after its ownership was transferred; the new owner releases it", pathString(arg))
				}
				st[key] = Fact{Bits: bufReleased, Origin: e}
				return
			}
			bp.expr(arg, st, check)
			return
		}
		// A call to a //etlvirt:transfers function consumes the named
		// arguments' ownership.
		transfers := bp.transferParams(e)
		callee := ast.Unparen(e.Fun)
		if sel, ok := callee.(*ast.SelectorExpr); ok {
			bp.expr(sel.X, st, check)
		}
		sig := bp.calleeParams(e)
		for i, a := range e.Args {
			name := ""
			if sig != nil && i < len(sig) {
				name = sig[i]
			}
			if transfers[name] {
				bp.transferInto(a, st, check)
				continue
			}
			bp.expr(a, st, check)
		}

	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr:
		if key, _, ok := bp.p.PathKey(e); ok {
			if f, tracked := st[key]; tracked && check != nil {
				if f.Bits&bufReleased != 0 {
					check(e, "use of %s after putBuf: the pool may have recycled it into another chunk", keyDisplay(key))
				} else if f.Bits&bufTransferred != 0 && f.Bits&bufOwned == 0 {
					check(e, "use of %s after its ownership was transferred to another stage", keyDisplay(key))
				}
			}
			return
		}
		if se, ok := e.(*ast.SelectorExpr); ok {
			bp.expr(se.X, st, check)
		}
		if se, ok := e.(*ast.StarExpr); ok {
			bp.expr(se.X, st, check)
		}

	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				bp.expr(kv.Value, st, check)
				continue
			}
			bp.expr(el, st, check)
		}

	case *ast.BinaryExpr:
		bp.expr(e.X, st, check)
		bp.expr(e.Y, st, check)
	case *ast.UnaryExpr:
		bp.expr(e.X, st, check)
	case *ast.ParenExpr:
		bp.expr(e.X, st, check)
	case *ast.IndexExpr:
		bp.expr(e.X, st, check)
		bp.expr(e.Index, st, check)
	case *ast.SliceExpr:
		bp.expr(e.X, st, check)
	case *ast.TypeAssertExpr:
		bp.expr(e.X, st, check)
	case *ast.FuncLit:
		// Closure bodies execute later (or synchronously for immediate
		// calls); conservatively treat captured tracked values as uses only.
	}
}

// transferInto marks every tracked buffer inside e (directly or via
// composite-literal fields) as transferred.
func (bp *bufownPass) transferInto(e ast.Expr, st State, check func(ast.Node, string, ...any)) {
	switch e := e.(type) {
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				bp.transferInto(kv.Value, st, check)
				continue
			}
			bp.transferInto(el, st, check)
		}
	case *ast.UnaryExpr:
		bp.transferInto(e.X, st, check)
	case *ast.ParenExpr:
		bp.transferInto(e.X, st, check)
	default:
		if key, _, ok := bp.p.PathKey(e); ok {
			f := st[key]
			if check != nil && f.Bits&bufReleased != 0 {
				check(e, "handing off %s after putBuf: the receiver would own a recycled buffer", keyDisplay(key))
			}
			st[key] = Fact{Bits: bufTransferred, Origin: orNode(f.Origin, e)}
			return
		}
		bp.expr(e, st, check)
	}
}

func orNode(a ast.Node, b ast.Node) ast.Node {
	if a != nil {
		return a
	}
	return b
}

// checkGoroutineCapture reports owned buffers captured free by a go literal.
func (bp *bufownPass) checkGoroutineCapture(lit *ast.FuncLit, st State, check func(ast.Node, string, ...any)) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		key, root, ok := bp.p.PathKey(e)
		if !ok {
			return true
		}
		if f, tracked := st[key]; tracked && f.Bits&bufOwned != 0 {
			// Only free variables matter; a redeclaration inside the literal
			// would have a different object position.
			if root != nil && root.Pos() < lit.Pos() {
				check(e, "owned buffer %s captured by goroutine without an ownership transfer (//etlvirt:transfers)", keyDisplay(key))
			}
		}
		return false
	})
}

// seedOwnedFields marks v.field owned for every //etlvirt:owns field of v's
// struct type.
func (bp *bufownPass) seedOwnedFields(v ast.Expr, key string, origin ast.Node, st State) {
	t := bp.p.TypeOf(v)
	if t == nil {
		return
	}
	for {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	s, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		if bp.ownsField[f] {
			st[key+"."+f.Name()] = Fact{Bits: bufOwned, Origin: origin}
			bp.localRoot[key+"."+f.Name()] = true
		}
	}
}

// collectOwnsFields finds struct fields annotated //etlvirt:owns.
func collectOwnsFields(p *Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stn, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range stn.Fields.List {
				for _, d := range fieldDirectives(field) {
					if d.Verb != "owns" {
						continue
					}
					for _, id := range field.Names {
						if p.Info != nil {
							if obj := p.Info.Defs[id]; obj != nil {
								out[obj] = true
							}
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// transferParams returns the set of parameter names the callee's
// //etlvirt:transfers directives name.
func (bp *bufownPass) transferParams(call *ast.CallExpr) map[string]bool {
	fn := bp.p.calleeFunc(call)
	if fn == nil {
		return nil
	}
	var out map[string]bool
	for _, d := range bp.p.FuncDirectives(fn) {
		if d.Verb != "transfers" {
			continue
		}
		if out == nil {
			out = make(map[string]bool)
		}
		for _, a := range d.Args {
			out[a] = true
		}
	}
	return out
}

// calleeParams returns the callee's parameter names, positionally.
func (bp *bufownPass) calleeParams(call *ast.CallExpr) []string {
	fn := bp.p.calleeFunc(call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make([]string, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		out[i] = sig.Params().At(i).Name()
	}
	return out
}

// isGetBuf / isPutBuf match plain calls to the package's pool functions.
func (bp *bufownPass) isGetBuf(e ast.Expr) bool { return isCallNamed(e, "getBuf") }
func (bp *bufownPass) isPutBuf(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	return ok && isCallNamed(call, "putBuf")
}

func isCallNamed(e ast.Expr, name string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == name
}

// packageHasFunc reports whether the package declares a function with the
// given name.
func packageHasFunc(p *Pass, name string) bool {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return true
			}
		}
	}
	return false
}

// killPrefix removes key and every sub-path key ("res" kills "res.CSV").
func killPrefix(st State, key string) {
	delete(st, key)
	for k := range st {
		if len(k) > len(key) && k[:len(key)] == key && (k[len(key)] == '.' || k[len(key)] == ')') {
			delete(st, k)
		}
	}
}
