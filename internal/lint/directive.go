package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Machine-checkable source directives. PR 5 documented the buffer-ownership
// discipline as prose comments; this file promotes that idiom to a grammar
// the dataflow analyzers consume (see DESIGN.md "Static invariants" for the
// full grammar):
//
//	//etlvirt:hotpath                 function is on the per-row hot path (hotalloc)
//	//etlvirt:owns <path>             function owns buffer <path> ("m.Payload") at
//	                                  entry and must release or transfer it on
//	                                  every path (bufown)
//	//etlvirt:owns                    on a struct field: values received from a
//	                                  channel carry buffer ownership in this field;
//	                                  sending a composite literal with this field
//	                                  set transfers the buffer (bufown)
//	//etlvirt:transfers <param>       callers lose ownership of the buffer passed
//	                                  as <param>; the callee releases or re-owns it
//	                                  (bufown)
//	//etlvirt:sqlclean                the function's string results are safely
//	                                  quoted/rendered SQL fragments (sqlident)
//	//etlvirt:dispatch <role> [-Kind] the switch below this comment is the <role>
//	                                  dispatch surface (codec|server|client|label)
//	                                  for wire kinds; -KindX tokens exempt kinds
//	                                  handled outside the switch (wirekind)

const directivePrefix = "//etlvirt:"

// directive is one parsed //etlvirt: comment: a verb and its arguments.
type directive struct {
	Verb string
	Args []string
}

// parseDirective parses one comment's text, or ok=false.
func parseDirective(text string) (directive, bool) {
	body, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return directive{}, false
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return directive{}, false
	}
	return directive{Verb: fields[0], Args: fields[1:]}, true
}

// groupDirectives parses every directive in a comment group.
func groupDirectives(cg *ast.CommentGroup) []directive {
	if cg == nil {
		return nil
	}
	var out []directive
	for _, c := range cg.List {
		if d, ok := parseDirective(c.Text); ok {
			out = append(out, d)
		}
	}
	return out
}

// funcDirectives returns the directives in a function's doc comment.
func funcDirectives(fd *ast.FuncDecl) []directive {
	return groupDirectives(fd.Doc)
}

// fieldDirectives returns the directives attached to a struct field, from
// its doc comment or trailing line comment.
func fieldDirectives(f *ast.Field) []directive {
	return append(groupDirectives(f.Doc), groupDirectives(f.Comment)...)
}

// lineDirectives indexes a package's directives by file and line so
// statement-level directives (//etlvirt:dispatch above a switch) can be
// looked up from the statement's position.
type lineDirectives map[string]map[int][]directive

func collectLineDirectives(pkg *Package) lineDirectives {
	idx := make(lineDirectives)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int][]directive)
					idx[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
			}
		}
	}
	return idx
}

// at returns the directives on the given line or the line directly above it
// (the comment-above-the-statement idiom).
func (idx lineDirectives) at(file string, line int) []directive {
	lines := idx[file]
	if lines == nil {
		return nil
	}
	return append(append([]directive(nil), lines[line-1]...), lines[line]...)
}

// PathKey canonicalizes an expression naming a storage location into a
// stable state key: an identifier, a selector chain rooted at an identifier,
// or a pointer dereference of either ("buf", "m.Payload", "(*dst)"). The
// root object disambiguates shadowed names. Expressions that are not simple
// access paths (calls, index expressions) return ok=false and are untracked.
func (p *Pass) PathKey(e ast.Expr) (key string, root types.Object, ok bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return p.PathKey(e.X)
	case *ast.Ident:
		obj := p.Uses(e)
		if obj == nil && p.Info != nil {
			obj = p.Info.Defs[e]
		}
		if obj == nil {
			return "", nil, false
		}
		return fmt.Sprintf("%s#%d", e.Name, obj.Pos()), obj, true
	case *ast.SelectorExpr:
		k, root, ok := p.PathKey(e.X)
		if !ok {
			return "", nil, false
		}
		return k + "." + e.Sel.Name, root, true
	case *ast.StarExpr:
		k, root, ok := p.PathKey(e.X)
		if !ok {
			return "", nil, false
		}
		return "(*" + k + ")", root, true
	}
	return "", nil, false
}

// pathString renders an access path for humans ("m.Payload"), without the
// disambiguating object positions of PathKey.
func pathString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return pathString(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return pathString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + pathString(e.X)
	}
	return "?"
}

// isBodyLocal reports whether obj is declared inside the function body (not
// a parameter, receiver, or package-level object).
func isBodyLocal(obj types.Object, body *ast.BlockStmt) bool {
	return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
}

// funcParamObj resolves a parameter (or receiver) name of fd to its object.
func (p *Pass) funcParamObj(fd *ast.FuncDecl, name string) types.Object {
	fields := []*ast.FieldList{fd.Type.Params}
	if fd.Recv != nil {
		fields = append(fields, fd.Recv)
	}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, id := range f.Names {
				if id.Name == name && p.Info != nil {
					if obj := p.Info.Defs[id]; obj != nil {
						return obj
					}
				}
			}
		}
	}
	return nil
}

// forEachFuncBody applies fn to every function or method body in the pass,
// including function literals (each literal is visited as its own body).
func (p *Pass) forEachFuncBody(fn func(file *ast.File, decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range p.Files {
		file := f
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(file, fd, fd.Body)
			}
		}
	}
}

// calleeFunc resolves a call expression to the function object it invokes,
// or nil (calls through interfaces or function values).
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if fn, ok := p.Uses(id).(*types.Func); ok {
		return fn
	}
	return nil
}

// directiveResolver answers "what directives does this function object
// carry" across package boundaries: the declaring package's AST is found in
// the run's package set or the loader's dependency cache, and the enclosing
// FuncDecl's doc directives are returned. Results are memoized per run.
type directiveResolver struct {
	pkgs   map[string]*Package
	loader *Loader
	memo   map[types.Object][]directive
}

func newDirectiveResolver(pkgs []*Package, loader *Loader) *directiveResolver {
	r := &directiveResolver{pkgs: make(map[string]*Package), loader: loader, memo: make(map[types.Object][]directive)}
	for _, p := range pkgs {
		r.pkgs[p.Path] = p
	}
	return r
}

// funcDirectives returns the doc directives of the FuncDecl declaring fn.
func (r *directiveResolver) funcDirectives(fn *types.Func) []directive {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if ds, ok := r.memo[fn]; ok {
		return ds
	}
	var ds []directive
	pkg := r.pkgs[fn.Pkg().Path()]
	if pkg == nil && r.loader != nil {
		pkg = r.loader.Cached(fn.Pkg().Path())
	}
	if pkg != nil {
		for _, f := range pkg.Files {
			if fn.Pos() < f.Pos() || fn.Pos() > f.End() {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn.Pos() >= fd.Pos() && fn.Pos() <= fd.End() {
					ds = funcDirectives(fd)
					break
				}
			}
		}
	}
	r.memo[fn] = ds
	return ds
}
