package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// sharedLoader memoizes one Loader per test binary: fixture packages share
// the type-checked standard library and module packages across tests.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := filepath.Abs("../..")
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loader
}

// loadFixture loads one testdata package by fixture name.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join(l.ModDir, "internal/lint/testdata/src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no Go files", name)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s type error: %v", name, terr)
	}
	return pkg
}

// wantRE extracts `want "regex"` expectations from fixture comments.
var wantRE = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// expectations maps file:line to the unmatched want regexes declared there.
func expectations(t *testing.T, pkg *Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// runFixture runs one analyzer over one fixture and matches diagnostics
// against the fixture's want comments: every finding must be expected and
// every expectation must fire.
func runFixture(t *testing.T, analyzerName, fixture string) Result {
	t.Helper()
	return runFixturePkgs(t, analyzerName, fixture)
}

// runFixturePkgs is runFixture over several fixture packages in one run, for
// analyzers whose invariant spans packages (wirekind's dispatch surfaces).
func runFixturePkgs(t *testing.T, analyzerName string, fixtures ...string) Result {
	t.Helper()
	var pkgs []*Package
	for _, fx := range fixtures {
		pkgs = append(pkgs, loadFixture(t, fx))
	}
	var analyzer *Analyzer
	for _, a := range Analyzers() {
		if a.Name == analyzerName {
			analyzer = a
		}
	}
	if analyzer == nil {
		t.Fatalf("no analyzer %q", analyzerName)
	}
	res := (&Runner{Analyzers: []*Analyzer{analyzer}}).Run(pkgs)

	wants := make(map[string][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for key, res := range expectations(t, pkg) {
			wants[key] = append(wants[key], res...)
		}
	}
	for _, d := range res.Diagnostics {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for i, re := range wants[key] {
			if re.MatchString(d.Message) {
				wants[key] = append(wants[key][:i], wants[key][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("expected diagnostic at %s matching %q, got none", key, re)
		}
	}
	return res
}

// The dataflow-tier fixtures assert the suppression count too: each analyzer
// keeps one deliberate, justified escape-hatch case.
func TestBufownFixture(t *testing.T) {
	res := runFixture(t, "bufown", "bufown")
	if got := res.Suppressed["bufown"]; got != 1 {
		t.Errorf("suppressed[bufown] = %d, want 1", got)
	}
}

func TestSpanbalanceFixture(t *testing.T) {
	res := runFixture(t, "spanbalance", "spanbalance")
	if got := res.Suppressed["spanbalance"]; got != 1 {
		t.Errorf("suppressed[spanbalance] = %d, want 1", got)
	}
}

func TestLockorderFixture(t *testing.T) {
	res := runFixture(t, "lockorder", "lockorder")
	if got := res.Suppressed["lockorder"]; got != 1 {
		t.Errorf("suppressed[lockorder] = %d, want 1", got)
	}
}

func TestSqlidentFixture(t *testing.T) {
	res := runFixture(t, "sqlident", "sqlident")
	if got := res.Suppressed["sqlident"]; got != 1 {
		t.Errorf("suppressed[sqlident] = %d, want 1", got)
	}
}

func TestWirekindFixture(t *testing.T) {
	res := runFixturePkgs(t, "wirekind", "wirekind", "wirekindclient")
	if got := res.Suppressed["wirekind"]; got != 1 {
		t.Errorf("suppressed[wirekind] = %d, want 1", got)
	}
}

func TestCtxbgFixture(t *testing.T)      { runFixture(t, "ctxbg", "ctxbg") }
func TestErrwrapwFixture(t *testing.T)   { runFixture(t, "errwrapw", "errwrapw") }
func TestEndianFixture(t *testing.T)     { runFixture(t, "endian", "wire") }
func TestRetrysafeFixture(t *testing.T)  { runFixture(t, "retrysafe", "retrysafe") }
func TestMetricnameFixture(t *testing.T) { runFixture(t, "metricname", "metricname") }
func TestGoroleakFixture(t *testing.T)   { runFixture(t, "goroleak", "goroleak") }

// TestHotallocFixture also pins the escape hatch: the fixture's one
// //nolint:hotalloc use must be counted as suppressed, not reported.
func TestHotallocFixture(t *testing.T) {
	res := runFixture(t, "hotalloc", "hotalloc")
	if got := res.Suppressed["hotalloc"]; got != 1 {
		t.Errorf("suppressed[hotalloc] = %d, want 1", got)
	}
}

// TestNolintSuppression checks the escape hatch: three of the four
// context.Background calls in the fixture carry a matching directive and
// are suppressed (and counted); the one naming the wrong analyzer still
// fires.
func TestNolintSuppression(t *testing.T) {
	res := runFixture(t, "ctxbg", "nolint")
	if got := res.Suppressed["ctxbg"]; got != 3 {
		t.Errorf("suppressed[ctxbg] = %d, want 3", got)
	}
	if len(res.Diagnostics) != 1 {
		t.Errorf("diagnostics = %d, want 1 (the //nolint:endian one)", len(res.Diagnostics))
	}
}

// TestEndianScopeLimited checks the endian rule stays confined to the
// wire-format packages: the same LittleEndian reference in an unscoped
// package is not a finding.
func TestEndianScopeLimited(t *testing.T) {
	for _, path := range []string{"etlvirt/internal/convert", "etlvirt/internal/core"} {
		if endianScoped(path) {
			t.Errorf("endianScoped(%q) = true, want false", path)
		}
	}
	for _, path := range []string{"etlvirt/internal/wire", "etlvirt/internal/tdf", "etlvirt/internal/ltype"} {
		if !endianScoped(path) {
			t.Errorf("endianScoped(%q) = false, want true", path)
		}
	}
}

// TestSelfClean runs the full analyzer suite over the linter's own
// sources: the tool must hold itself to the invariants it enforces,
// without a single escape hatch.
func TestSelfClean(t *testing.T) {
	l := testLoader(t)
	var pkgs []*Package
	for _, dir := range []string{"internal/lint", "cmd/etlvirtlint"} {
		pkg, err := l.LoadDir(filepath.Join(l.ModDir, dir))
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s type error: %v", dir, terr)
		}
		pkgs = append(pkgs, pkg)
	}
	res := (&Runner{Analyzers: Analyzers()}).Run(pkgs)
	for _, d := range res.Diagnostics {
		t.Errorf("self-lint finding: %s", d)
	}
	if n := len(res.Suppressed); n != 0 {
		t.Errorf("self-lint uses %d //nolint suppressions; the linter's own sources must not need the escape hatch", n)
	}
}

// fixtureDirs maps each analyzer to the testdata packages that exercise it.
// A new analyzer must be added here: TestFixtureCoverage fails otherwise.
var fixtureDirs = map[string][]string{
	"ctxbg":       {"ctxbg", "nolint"},
	"errwrapw":    {"errwrapw"},
	"endian":      {"wire"},
	"retrysafe":   {"retrysafe"},
	"metricname":  {"metricname"},
	"goroleak":    {"goroleak"},
	"hotalloc":    {"hotalloc"},
	"bufown":      {"bufown"},
	"spanbalance": {"spanbalance"},
	"lockorder":   {"lockorder"},
	"sqlident":    {"sqlident"},
	"wirekind":    {"wirekind", "wirekindclient"},
}

// TestFixtureCoverage is the fixture-hygiene gate the CI lint-fixtures step
// runs: every registered analyzer must have at least one fixture with a
// positive want expectation and at least one fixture exercising its //nolint
// escape hatch, so both the detection and the suppression paths stay pinned.
func TestFixtureCoverage(t *testing.T) {
	l := testLoader(t)
	for _, a := range Analyzers() {
		dirs, ok := fixtureDirs[a.Name]
		if !ok {
			t.Errorf("analyzer %s has no fixture mapping; add its testdata package(s) to fixtureDirs", a.Name)
			continue
		}
		wants, nolints := 0, 0
		for _, dir := range dirs {
			pkg, err := l.LoadDir(filepath.Join(l.ModDir, "internal/lint/testdata/src", dir))
			if err != nil {
				t.Fatalf("loading fixture %s: %v", dir, err)
			}
			wants += len(expectations(t, pkg))
			for _, f := range pkg.Files {
				for _, cg := range f.Comments {
					for _, c := range cg.List {
						names, ok := parseNolint(c.Text)
						if !ok {
							continue
						}
						for _, name := range names {
							if name == a.Name {
								nolints++
							}
						}
					}
				}
			}
		}
		if wants == 0 {
			t.Errorf("analyzer %s: no want-comment fixture in %v", a.Name, dirs)
		}
		if nolints == 0 {
			t.Errorf("analyzer %s: no //nolint:%s fixture case in %v; the escape hatch is untested", a.Name, a.Name, dirs)
		}
	}
}

// TestParseNolint pins the directive grammar.
func TestParseNolint(t *testing.T) {
	cases := []struct {
		in   string
		want string // comma-joined names, "" = not a directive
	}{
		{"//nolint", "*"},
		{"//nolint:ctxbg", "ctxbg"},
		{"//nolint:ctxbg,endian", "ctxbg,endian"},
		{"//nolint:ctxbg // reason", "ctxbg"},
		{"//nolint: ", "*"},
		{"// nolint:ctxbg", ""},
		{"//nolintish", ""},
		{"// regular comment", ""},
	}
	for _, c := range cases {
		names, ok := parseNolint(c.in)
		got := strings.Join(names, ",")
		if !ok {
			got = ""
		}
		if got != c.want {
			t.Errorf("parseNolint(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
