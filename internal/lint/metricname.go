package lint

import (
	"go/ast"
	"go/token"
	"regexp"
)

// metricNameRE is the required shape of every registered metric name: the
// etlvirt_ namespace, lowercase snake case.
var metricNameRE = regexp.MustCompile(`^etlvirt_[a-z0-9_]+$`)

// registryMethods are the obs.Registry registration entry points; every one
// takes the metric name as its first argument and the help text as its
// second.
var registryMethods = map[string]bool{
	"Counter": true, "CounterFunc": true,
	"Gauge": true, "GaugeFunc": true, "LabeledGaugeFunc": true,
	"Histogram": true,
}

// newMetricname builds the metricname analyzer: obs.Registry registrations
// must use a literal, namespaced, unique metric name and a non-empty literal
// help string.
//
// Invariant (PR 2, extended PR 7): the registry panics at runtime on
// duplicate names and the Prometheus exposition relies on one flat etlvirt_
// namespace for dashboard queries. A computed name defeats both greppability
// and this static duplicate check; a name outside the namespace collides
// with foreign exporters on shared scrape endpoints. An empty help string
// ships a blank # HELP line, which is how metrics become unexplainable six
// months later.
func newMetricname() *Analyzer {
	seen := make(map[string]token.Position) // cross-package duplicate table
	return &Analyzer{
		Name: "metricname",
		Doc:  "obs metric names must be literal etlvirt_[a-z0-9_]+ strings with non-empty help, unique across the tree",
		Run: func(p *Pass) {
			runMetricname(p, seen)
		},
	}
}

func runMetricname(p *Pass, seen map[string]token.Position) {
	p.walkFiles(func(file *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !registryMethods[sel.Sel.Name] {
			return true
		}
		if !isNamed(p.TypeOf(sel.X), "obs", "Registry") {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		name, ok := stringLiteral(call.Args[0])
		if !ok {
			p.Report(call.Args[0], "metric name must be a string literal so duplicates are detectable statically")
			return true
		}
		if !metricNameRE.MatchString(name) {
			p.Report(call.Args[0], "metric name %q does not match ^etlvirt_[a-z0-9_]+$", name)
			return true
		}
		if len(call.Args) >= 2 {
			help, helpLit := stringLiteral(call.Args[1])
			switch {
			case !helpLit:
				p.Report(call.Args[1], "help for metric %q must be a string literal", name)
			case help == "":
				p.Report(call.Args[1], "metric %q has an empty help string; say what the metric measures", name)
			}
		}
		if prev, dup := seen[name]; dup {
			p.Report(call.Args[0], "duplicate metric name %q (also registered at %s); the registry panics on the second registration", name, prev)
			return true
		}
		seen[name] = p.Fset.Position(call.Args[0].Pos())
		return true
	})
}
