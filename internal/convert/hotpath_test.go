package convert

// Hot-path regression coverage for the zero-allocation conversion rewrite:
// byte-identity of ConvertInto against Convert, hard allocs-per-row bounds
// via testing.AllocsPerRun, and the benchmarks whose before/after numbers
// live in EXPERIMENTS.md.

import (
	"bytes"
	"testing"

	"etlvirt/internal/ltype"
	"etlvirt/internal/wire"
)

const benchRows = 1000

// benchIndicatorChunk builds a 7-field mixed-kind indicator chunk: the
// indicator workload of EXPERIMENTS.md.
func benchIndicatorChunk(tb testing.TB, rows int) (*Converter, []byte) {
	tb.Helper()
	layout := &ltype.Layout{Name: "Bench", Fields: []ltype.Field{
		{Name: "ID", Type: ltype.Simple(ltype.KindInteger)},
		{Name: "NAME", Type: ltype.VarChar(40)},
		{Name: "CITY", Type: ltype.Char(12)},
		{Name: "D", Type: ltype.Simple(ltype.KindDate)},
		{Name: "T", Type: ltype.Simple(ltype.KindTime)},
		{Name: "AMT", Type: ltype.Decimal(12, 2)},
		{Name: "F", Type: ltype.Simple(ltype.KindFloat)},
	}}
	var payload []byte
	var err error
	for i := 0; i < rows; i++ {
		dec := ltype.IntValue(ltype.KindDecimal, int64(100000+i))
		dec.S = ltype.FormatDecimal(dec.I, 2)
		payload, err = ltype.EncodeRecord(payload, layout, ltype.Record{
			ltype.IntValue(ltype.KindInteger, int64(i)),
			ltype.StringValue(ltype.KindVarChar, "Some Customer Name"),
			ltype.StringValue(ltype.KindChar, "Springfield"),
			ltype.DateValue(2020, 1+i%12, 1+i%28),
			ltype.IntValue(ltype.KindTime, int64(i%86400)),
			dec,
			ltype.FloatValue(float64(i) * 1.5),
		})
		if err != nil {
			tb.Fatal(err)
		}
	}
	c, err := NewConverter(layout, wire.FormatIndicator, 0, Options{})
	if err != nil {
		tb.Fatal(err)
	}
	return c, payload
}

// benchVartextChunk builds a 3-field vartext chunk matching the layout of
// the package's historical vartext benchmark.
func benchVartextChunk(tb testing.TB, rows int) (*Converter, []byte) {
	tb.Helper()
	c, err := NewConverter(custLayout(), wire.FormatVartext, '|', Options{})
	if err != nil {
		tb.Fatal(err)
	}
	var payload []byte
	for i := 0; i < rows; i++ {
		payload = append(payload, "12345|Some Customer Name|2020-01-01\n"...)
	}
	return c, payload
}

// TestConvertIntoMatchesConvert requires the recycled-buffer path to emit
// byte-identical CSV and identical errors to the allocating wrapper, for
// both formats — the semantic-equivalence half of the acceptance criteria.
func TestConvertIntoMatchesConvert(t *testing.T) {
	for _, format := range []string{"indicator", "vartext"} {
		var c *Converter
		var payload []byte
		if format == "indicator" {
			c, payload = benchIndicatorChunk(t, 100)
		} else {
			c, payload = benchVartextChunk(t, 100)
		}
		want, err := c.Convert(payload, 7)
		if err != nil {
			t.Fatal(err)
		}
		// A dirty recycled buffer must not leak into the output.
		dst := append(getScratchBuf(), "GARBAGE"...)[:0]
		got, err := c.ConvertInto(dst, payload, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.CSV, want.CSV) {
			t.Errorf("%s: ConvertInto CSV differs from Convert", format)
		}
		if got.Rows != want.Rows || len(got.Errors) != len(want.Errors) {
			t.Errorf("%s: rows/errors %d/%d vs %d/%d", format,
				got.Rows, len(got.Errors), want.Rows, len(want.Errors))
		}
	}
}

func getScratchBuf() []byte { return make([]byte, 0, 64<<10) }

// TestConvertIndicatorAllocBound is the alloc-regression gate: at most 2
// allocations per converted row on the indicator path, amortized over a
// full chunk. The steady-state cost is actually ~3 allocations per *chunk*
// (payload copy, Result, pool boxing), so this bound has a wide margin
// while still catching any per-row regression instantly.
func TestConvertIndicatorAllocBound(t *testing.T) {
	c, payload := benchIndicatorChunk(t, benchRows)
	dst := make([]byte, 0, 2*len(payload))
	// Warm the scratch pool so AllocsPerRun measures steady state.
	if _, err := c.ConvertInto(dst[:0], payload, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := c.ConvertInto(dst[:0], payload, 1)
		if err != nil || res.Rows != benchRows {
			t.Fatal("convert failed")
		}
	})
	if perRow := allocs / benchRows; perRow > 2 {
		t.Errorf("indicator path allocates %.3f per row (%.0f per %d-row chunk), want <= 2",
			perRow, allocs, benchRows)
	}
}

// TestConvertVartextAllocBound applies the same gate to the vartext path.
func TestConvertVartextAllocBound(t *testing.T) {
	c, payload := benchVartextChunk(t, benchRows)
	dst := make([]byte, 0, 2*len(payload))
	if _, err := c.ConvertInto(dst[:0], payload, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := c.ConvertInto(dst[:0], payload, 1)
		if err != nil || res.Rows != benchRows {
			t.Fatal("convert failed")
		}
	})
	if perRow := allocs / benchRows; perRow > 2 {
		t.Errorf("vartext path allocates %.3f per row (%.0f per %d-row chunk), want <= 2",
			perRow, allocs, benchRows)
	}
}

// BenchmarkConvertIndicator measures the recycled-buffer indicator path:
// rows/s is b.N*benchRows over elapsed time; MB/s and allocs/op are
// reported for EXPERIMENTS.md.
func BenchmarkConvertIndicator(b *testing.B) {
	c, payload := benchIndicatorChunk(b, benchRows)
	dst := make([]byte, 0, 2*len(payload))
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.ConvertInto(dst[:0], payload, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows != benchRows {
			b.Fatal("rows")
		}
		dst = res.CSV // recycle across iterations, like the pipeline does
	}
	b.ReportMetric(float64(b.N)*benchRows/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkConvertVartext measures the recycled-buffer vartext path.
func BenchmarkConvertVartext(b *testing.B) {
	c, payload := benchVartextChunk(b, benchRows)
	dst := make([]byte, 0, 2*len(payload))
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.ConvertInto(dst[:0], payload, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows != benchRows {
			b.Fatal("rows")
		}
		dst = res.CSV
	}
	b.ReportMetric(float64(b.N)*benchRows/b.Elapsed().Seconds(), "rows/s")
}
