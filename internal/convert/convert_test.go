package convert

import (
	"strings"
	"testing"

	"etlvirt/internal/ltype"
	"etlvirt/internal/wire"
)

func custLayout() *ltype.Layout {
	return &ltype.Layout{Name: "CustLayout", Fields: []ltype.Field{
		{Name: "CUST_ID", Type: ltype.VarChar(5)},
		{Name: "CUST_NAME", Type: ltype.VarChar(50)},
		{Name: "JOIN_DATE", Type: ltype.VarChar(10)},
	}}
}

func TestConvertVartext(t *testing.T) {
	c, err := NewConverter(custLayout(), wire.FormatVartext, '|', Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("123|Smith|2012-01-01\n456|Brown|xxxx\n789||2013-05-05\n")
	res, err := c.Convert(payload, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 3 || len(res.Errors) != 0 {
		t.Fatalf("rows=%d errors=%v", res.Rows, res.Errors)
	}
	lines := strings.Split(strings.TrimSuffix(string(res.CSV), "\n"), "\n")
	if lines[0] != "1,123,Smith,2012-01-01" {
		t.Errorf("line0 = %q", lines[0])
	}
	if lines[1] != "2,456,Brown,xxxx" { // bad date passes acquisition; it fails in DML
		t.Errorf("line1 = %q", lines[1])
	}
	if lines[2] != `3,789,\N,2013-05-05` {
		t.Errorf("line2 = %q", lines[2])
	}
}

func TestConvertVartextDataErrors(t *testing.T) {
	c, _ := NewConverter(custLayout(), wire.FormatVartext, '|', Options{})
	payload := []byte("only|two\n123|Smith|2012-01-01\ntoolooong|x|y\n")
	res, err := c.Convert(payload, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 1 {
		t.Errorf("rows = %d", res.Rows)
	}
	if len(res.Errors) != 2 {
		t.Fatalf("errors = %v", res.Errors)
	}
	if res.Errors[0].Row != 10 || res.Errors[0].Code != CodeFieldCount {
		t.Errorf("error0 = %+v", res.Errors[0])
	}
	if res.Errors[1].Row != 12 || res.Errors[1].Code != CodeBadValue {
		t.Errorf("error1 = %+v", res.Errors[1])
	}
	if !strings.HasPrefix(string(res.CSV), "11,") {
		t.Errorf("good row kept wrong seq: %q", res.CSV)
	}
}

func TestConvertIndicator(t *testing.T) {
	layout := &ltype.Layout{Name: "L", Fields: []ltype.Field{
		{Name: "ID", Type: ltype.Simple(ltype.KindInteger)},
		{Name: "NAME", Type: ltype.VarChar(20)},
		{Name: "D", Type: ltype.Simple(ltype.KindDate)},
		{Name: "AMT", Type: ltype.Decimal(10, 2)},
	}}
	dec := ltype.IntValue(ltype.KindDecimal, 12345)
	dec.S = ltype.FormatDecimal(12345, 2)
	var payload []byte
	var err error
	payload, err = ltype.EncodeRecord(payload, layout, ltype.Record{
		ltype.IntValue(ltype.KindInteger, 7),
		ltype.StringValue(ltype.KindVarChar, "has,comma"),
		ltype.DateValue(2012, 1, 1),
		dec,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload, err = ltype.EncodeRecord(payload, layout, ltype.Record{
		ltype.NullValue(ltype.KindInteger),
		ltype.StringValue(ltype.KindVarChar, `say "hi"`),
		ltype.NullValue(ltype.KindDate),
		ltype.NullValue(ltype.KindDecimal),
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewConverter(layout, wire.FormatIndicator, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Convert(payload, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 2 {
		t.Fatalf("rows = %d", res.Rows)
	}
	lines := strings.Split(strings.TrimSuffix(string(res.CSV), "\n"), "\n")
	if lines[0] != `5,7,"has,comma",2012-01-01,123.45` {
		t.Errorf("line0 = %q", lines[0])
	}
	if lines[1] != `6,\N,"say ""hi""",\N,\N` {
		t.Errorf("line1 = %q", lines[1])
	}
}

func TestConvertIndicatorBrokenFraming(t *testing.T) {
	layout := custLayout()
	var payload []byte
	payload, _ = ltype.EncodeRecord(payload, layout, ltype.Record{
		ltype.StringValue(ltype.KindVarChar, "1"),
		ltype.StringValue(ltype.KindVarChar, "a"),
		ltype.StringValue(ltype.KindVarChar, "b"),
	})
	c, _ := NewConverter(layout, wire.FormatIndicator, 0, Options{})
	if _, err := c.Convert(payload[:len(payload)-2], 1); err == nil {
		t.Error("broken framing accepted")
	}
}

func TestConvertUnicodeValidation(t *testing.T) {
	layout := &ltype.Layout{Name: "U", Fields: []ltype.Field{
		{Name: "S", Type: ltype.Type{Kind: ltype.KindVarChar, Length: 20, CharSet: ltype.CharSetUnicode}},
	}}
	c, err := NewConverter(layout, wire.FormatVartext, '|', Options{ValidateUTF8: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Convert([]byte("ok\xc3\xa9\n\xff\xfe\n"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 1 || len(res.Errors) != 1 || res.Errors[0].Code != CodeBadUnicode {
		t.Errorf("rows=%d errors=%v", res.Rows, res.Errors)
	}
	// without validation both pass
	c2, _ := NewConverter(layout, wire.FormatVartext, '|', Options{})
	res2, _ := c2.Convert([]byte("ok\xc3\xa9\n\xff\xfe\n"), 1)
	if res2.Rows != 2 {
		t.Errorf("lenient rows = %d", res2.Rows)
	}
}

func TestNewConverterValidation(t *testing.T) {
	numeric := &ltype.Layout{Name: "N", Fields: []ltype.Field{
		{Name: "X", Type: ltype.Simple(ltype.KindInteger)},
	}}
	if _, err := NewConverter(numeric, wire.FormatVartext, '|', Options{}); err == nil {
		t.Error("numeric vartext layout accepted")
	}
	if _, err := NewConverter(custLayout(), wire.FormatVartext, 0, Options{}); err == nil {
		t.Error("missing delimiter accepted")
	}
	empty := &ltype.Layout{Name: "E"}
	if _, err := NewConverter(empty, wire.FormatIndicator, 0, Options{}); err == nil {
		t.Error("empty layout accepted")
	}
}

func TestCSVFieldEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"has,comma", `"has,comma"`},
		{`has"quote`, `"has""quote"`},
		{"has\nnewline", "\"has\nnewline\""},
		{`\N`, `"\N"`}, // literal backslash-N must not read as NULL
		{"", ""},
	}
	for _, c := range cases {
		got := string(appendCSVField(nil, c.in))
		if got != c.want {
			t.Errorf("appendCSVField(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func BenchmarkConvertVartextChunk(b *testing.B) {
	c, err := NewConverter(custLayout(), wire.FormatVartext, '|', Options{})
	if err != nil {
		b.Fatal(err)
	}
	var payload []byte
	for i := 0; i < 1000; i++ {
		payload = append(payload, "12345|Some Customer Name|2020-01-01\n"...)
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Convert(payload, 1); err != nil {
			b.Fatal(err)
		}
	}
}
