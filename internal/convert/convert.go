// Package convert implements the DataConverter of §4: on-the-fly conversion
// of legacy-format data chunks into serialized data compatible with the CDW
// bulk-load path.
//
// Input chunks carry either indicator-mode binary records or vartext lines
// (the two legacy client formats). Output is CSV as consumed by the CDW's
// COPY, with a leading __seq column carrying the 1-based global row number —
// the hook that lets adaptive error handling re-apply DML on row ranges and
// report legacy-style "row number" errors (§7).
//
// Records that are malformed in ways the legacy server would catch during
// acquisition (wrong field count, overlong or untypable values) are excluded
// from the output and reported as DataErrors; the virtualizer records them
// in the job's transformation-error table.
package convert

import (
	"fmt"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"

	"etlvirt/internal/ltype"
	"etlvirt/internal/wire"
)

// Error codes for acquisition-phase data errors, aligned with internal/cdw.
const (
	CodeFieldCount = 2673
	CodeBadValue   = 2665
	CodeBadRecord  = 2675
	CodeBadUnicode = 6706
)

// DataError describes one rejected input record.
type DataError struct {
	Row   int64 // 1-based global row number
	Code  int
	Field string
	Msg   string
}

// Error implements the error interface.
func (e *DataError) Error() string {
	return fmt.Sprintf("row %d: error %d (%s): %s", e.Row, e.Code, e.Field, e.Msg)
}

// Options tunes conversion behaviour.
type Options struct {
	// ValidateUTF8 rejects invalid UTF-8 in UNICODE character fields, the
	// "sophisticated" conversion mode of §4.
	ValidateUTF8 bool
	// SimulatedByteCost adds a blocking delay of this duration per input
	// byte to every Convert call. It models conversion work on hardware
	// where real CPU parallelism is unavailable (e.g. single-core CI), so
	// scalability experiments can still exercise the parallel pipeline.
	// Zero disables the simulation.
	SimulatedByteCost time.Duration
}

// Converter converts chunks for one load job. It is stateless with respect
// to chunk order; every method may be called from concurrent goroutines on
// distinct chunks, mirroring the parallel DataConverter processes.
type Converter struct {
	layout *ltype.Layout
	format wire.DataFormat
	delim  byte
	opts   Options
	// scratch pools per-chunk decode state (a Record sized to the layout
	// plus vartext split buffers) so steady-state conversion never allocates
	// per row.
	scratch sync.Pool
}

// convScratch is the per-chunk reusable decode state.
type convScratch struct {
	rec ltype.Record
	vs  ltype.VartextScratch
}

// NewConverter builds a converter for a job's layout and input format.
func NewConverter(layout *ltype.Layout, format wire.DataFormat, delim byte, opts Options) (*Converter, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	if format == wire.FormatVartext {
		if err := ltype.ValidateVartextLayout(layout); err != nil {
			return nil, err
		}
		if delim == 0 {
			return nil, fmt.Errorf("convert: vartext requires a delimiter")
		}
	}
	c := &Converter{layout: layout, format: format, delim: delim, opts: opts}
	c.scratch.New = func() any {
		return &convScratch{rec: make(ltype.Record, len(layout.Fields))}
	}
	return c, nil
}

// Result is the outcome of converting one chunk.
type Result struct {
	CSV    []byte // serialized rows, ready for the FileWriter
	Rows   int    // rows successfully converted
	Errors []DataError
}

// Convert transforms one chunk payload. firstRow is the 1-based global row
// number of the chunk's first record. A malformed binary chunk (framing
// broken mid-chunk) returns an error; per-record data problems are reported
// in Result.Errors instead. Hot-path callers use ConvertInto, which writes
// CSV into a caller-supplied (typically recycled) buffer.
func (c *Converter) Convert(payload []byte, firstRow int64) (*Result, error) {
	return c.ConvertInto(make([]byte, 0, len(payload)+len(payload)/4), payload, firstRow)
}

// ConvertInto is Convert with caller-managed memory: converted CSV is
// appended to dst and returned as Result.CSV, so a recycled buffer in means
// no per-chunk CSV allocation. Ownership of dst transfers to the call (the
// append may have moved it) and comes back as Result.CSV — on error too, so
// a pooled buffer is never lost: the Result always carries the latest
// buffer for the caller to recycle or reuse. The payload buffer is the
// caller's again as soon as ConvertInto returns — the decode works on a
// private copy, so nothing in the Result aliases payload and it may be
// recycled immediately.
//
//etlvirt:transfers dst
func (c *Converter) ConvertInto(dst []byte, payload []byte, firstRow int64) (*Result, error) {
	if c.opts.SimulatedByteCost > 0 {
		time.Sleep(time.Duration(len(payload)) * c.opts.SimulatedByteCost)
	}
	// The chunk's one unavoidable allocation: an immutable string copy that
	// every decoded string value aliases for the duration of the call.
	chunk := string(payload)
	switch c.format {
	case wire.FormatVartext:
		return c.convertVartext(dst, chunk, firstRow)
	case wire.FormatIndicator:
		return c.convertIndicator(dst, chunk, firstRow)
	default:
		return &Result{CSV: dst}, errUnknownFormat(c.format)
	}
}

//etlvirt:hotpath
func (c *Converter) convertVartext(dst []byte, payload string, firstRow int64) (*Result, error) {
	res := &Result{}
	sc := c.scratch.Get().(*convScratch)
	defer c.scratch.Put(sc)
	row := firstRow
	for pos := 0; pos < len(payload); {
		line, next, ok := ltype.NextVartextLine(payload, pos)
		if !ok {
			break
		}
		pos = next
		if err := ltype.ParseVartextRecordInto(sc.rec, line, c.delim, c.layout, &sc.vs); err != nil {
			res.Errors = append(res.Errors, c.classifyVartextError(line, row, err))
			row++
			continue
		}
		if derr := c.validateRecord(sc.rec, row); derr != nil {
			res.Errors = append(res.Errors, *derr)
			row++
			continue
		}
		dst = c.appendCSVRow(dst, sc.rec, row)
		res.Rows++
		row++
	}
	res.CSV = dst
	return res, nil
}

//etlvirt:hotpath
func (c *Converter) convertIndicator(dst []byte, payload string, firstRow int64) (*Result, error) {
	res := &Result{}
	sc := c.scratch.Get().(*convScratch)
	defer c.scratch.Put(sc)
	row := firstRow
	for pos := 0; pos < len(payload); {
		n, err := ltype.DecodeRecordInto(sc.rec, payload[pos:], c.layout)
		if err != nil {
			// Broken framing poisons the rest of the chunk: fail it, but
			// hand the (possibly regrown) buffer back for recycling.
			res.CSV = dst
			return res, errFraming(row, err)
		}
		pos += n
		if derr := c.validateRecord(sc.rec, row); derr != nil {
			res.Errors = append(res.Errors, *derr)
			row++
			continue
		}
		dst = c.appendCSVRow(dst, sc.rec, row)
		res.Rows++
		row++
	}
	res.CSV = dst
	return res, nil
}

// Cold error constructors, kept out of the hotpath-annotated converters.

func errUnknownFormat(f wire.DataFormat) error {
	return fmt.Errorf("convert: unknown format %d", f)
}

func errFraming(row int64, err error) error {
	return fmt.Errorf("convert: chunk framing broken at row %d: %w", row, err)
}

func (c *Converter) classifyVartextError(line string, row int64, err error) DataError {
	fields := ltype.VartextRecord(line, c.delim)
	if len(fields) != len(c.layout.Fields) {
		return DataError{Row: row, Code: CodeFieldCount,
			Msg: fmt.Sprintf("record has %d fields, layout expects %d", len(fields), len(c.layout.Fields))}
	}
	return DataError{Row: row, Code: CodeBadValue, Msg: err.Error()}
}

// validateRecord applies the conversion-time checks of §4: null detection is
// already done by the record codecs; here we validate character-set
// constraints for UNICODE fields.
//
//etlvirt:hotpath
func (c *Converter) validateRecord(rec ltype.Record, row int64) *DataError {
	if !c.opts.ValidateUTF8 {
		return nil
	}
	for i, f := range c.layout.Fields {
		if f.Type.CharSet != ltype.CharSetUnicode || rec[i].Null {
			continue
		}
		if (f.Type.Kind == ltype.KindChar || f.Type.Kind == ltype.KindVarChar) && !utf8.ValidString(rec[i].S) {
			return &DataError{Row: row, Code: CodeBadUnicode, Field: f.Name,
				Msg: "invalid UTF-8 in UNICODE field"}
		}
	}
	return nil
}

// appendCSVRow serializes __seq plus the record's fields as one CSV line in
// the CDW's COPY format: comma-separated, \N for NULL, RFC-4180 quoting.
// Non-character kinds render via the append codecs; their text is digits and
// punctuation that never needs quoting, so only string-carrying kinds pay
// the quote scan.
//
//etlvirt:hotpath
func (c *Converter) appendCSVRow(dst []byte, rec ltype.Record, row int64) []byte {
	dst = strconv.AppendInt(dst, row, 10)
	for i := range rec {
		v := &rec[i]
		dst = append(dst, ',')
		if v.Null {
			dst = append(dst, '\\', 'N')
			continue
		}
		switch v.Kind {
		case ltype.KindChar, ltype.KindVarChar, ltype.KindTimestamp:
			dst = appendCSVField(dst, v.S)
		case ltype.KindDecimal:
			if v.S != "" {
				dst = append(dst, v.S...) // pre-formatted (vartext parse path)
			} else {
				dst = ltype.AppendDecimal(dst, v.I, c.layout.Fields[i].Type.Scale)
			}
		default:
			dst = v.AppendText(dst)
		}
	}
	return append(dst, '\n')
}

// appendCSVField writes one CSV field, quoting when it contains a comma,
// quote, newline, or could be mistaken for the NULL marker.
//
//etlvirt:hotpath
func appendCSVField(dst []byte, s string) []byte {
	needQuote := s == `\N`
	for i := 0; i < len(s) && !needQuote; i++ {
		switch s[i] {
		case ',', '"', '\n', '\r':
			needQuote = true
		}
	}
	if !needQuote {
		return append(dst, s...)
	}
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			dst = append(dst, '"', '"')
			continue
		}
		dst = append(dst, s[i])
	}
	return append(dst, '"')
}
