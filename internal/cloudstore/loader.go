package cloudstore

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// LoaderConfig tunes the bulk loader, mirroring the knobs the paper exposes
// in §6: directory-vs-file upload, upload parallelism, and whether files were
// compressed by the FileWriter (the loader only records it; the CDW COPY
// decompresses).
type LoaderConfig struct {
	// Parallelism is the number of concurrent upload workers for directory
	// uploads. Values below 1 are treated as 1.
	Parallelism int
	// PutTimeout bounds each object-store put; zero disables the bound. A
	// put that exceeds it fails with *TimeoutError, which classifies as
	// transient so the caller's retry policy re-drives the upload. The
	// abandoned attempt keeps running in the background, but it owns its
	// reader (each attempt opens its own) and stores write complete
	// objects atomically, so a late completion writes the same bytes and
	// cannot corrupt a concurrent retry.
	PutTimeout time.Duration
}

// TimeoutError reports an object-store operation that exceeded its
// per-operation bound.
type TimeoutError struct {
	Op    string
	Key   string
	Limit time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("cloudstore: %s %q exceeded %v", e.Op, e.Key, e.Limit)
}

// Timeout satisfies net.Error-style checks.
func (e *TimeoutError) Timeout() bool { return true }

// Transient marks the timeout as retryable.
func (e *TimeoutError) Transient() bool { return true }

// BulkLoader is the vendor upload utility equivalent ("aws s3 cp" / AzCopy):
// it copies local files into the object store.
type BulkLoader struct {
	store Store
	cfg   LoaderConfig
}

// NewBulkLoader returns a loader that uploads into store.
func NewBulkLoader(store Store, cfg LoaderConfig) *BulkLoader {
	if cfg.Parallelism < 1 {
		cfg.Parallelism = 1
	}
	return &BulkLoader{store: store, cfg: cfg}
}

// put drives one store put, bounded by cfg.PutTimeout when set. Each attempt
// opens its own reader via open and closes it itself, so when a timeout
// abandons the attempt goroutine, nothing the caller still holds is shared
// with it: the caller can retry the key immediately while the stale attempt
// finishes (or fails) in the background against its own reader. On timeout
// the caller gets a transient *TimeoutError.
func (b *BulkLoader) put(key string, open func() (io.ReadCloser, error)) error {
	attempt := func() error {
		r, err := open()
		if err != nil {
			return err
		}
		defer r.Close()
		return b.store.Put(key, r)
	}
	if b.cfg.PutTimeout <= 0 {
		return attempt()
	}
	done := make(chan error, 1)
	go func() { done <- attempt() }()
	timer := time.NewTimer(b.cfg.PutTimeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		return &TimeoutError{Op: "put", Key: key, Limit: b.cfg.PutTimeout}
	}
}

// UploadFile copies one local file to the object key and returns the number
// of bytes uploaded.
func (b *BulkLoader) UploadFile(localPath, key string) (int64, error) {
	st, err := os.Stat(localPath)
	if err != nil {
		return 0, fmt.Errorf("cloudstore: open %s: %w", localPath, err)
	}
	err = b.put(key, func() (io.ReadCloser, error) {
		f, err := os.Open(localPath)
		if err != nil {
			return nil, fmt.Errorf("cloudstore: open %s: %w", localPath, err)
		}
		return f, nil
	})
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// UploadBytes uploads an in-memory buffer, used when the FileWriter runs
// with an in-memory filesystem.
func (b *BulkLoader) UploadBytes(data []byte, key string) (int64, error) {
	err := b.put(key, func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(data)), nil
	})
	if err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// UploadDir uploads every regular file under dir to keyPrefix+name, using
// cfg.Parallelism workers, and returns the keys uploaded in lexical order.
func (b *BulkLoader) UploadDir(dir, keyPrefix string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cloudstore: read dir %s: %w", dir, err)
	}
	var files []string
	for _, e := range entries {
		if e.Type().IsRegular() {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)

	sem := make(chan struct{}, b.cfg.Parallelism)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	keys := make([]string, len(files))
	for i, name := range files {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, name string) {
			defer wg.Done()
			defer func() { <-sem }()
			key := keyPrefix + name
			if _, err := b.UploadFile(filepath.Join(dir, name), key); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			keys[i] = key
		}(i, name)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return keys, nil
}
