package cloudstore

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// LoaderConfig tunes the bulk loader, mirroring the knobs the paper exposes
// in §6: directory-vs-file upload, upload parallelism, and whether files were
// compressed by the FileWriter (the loader only records it; the CDW COPY
// decompresses).
type LoaderConfig struct {
	// Parallelism is the number of concurrent upload workers for directory
	// uploads. Values below 1 are treated as 1.
	Parallelism int
	// PutTimeout bounds each object-store put; zero disables the bound. A
	// put that exceeds it fails with *TimeoutError, which classifies as
	// transient so the caller's retry policy re-drives the upload. Puts
	// are idempotent (same key, same content), so a late completion of the
	// abandoned attempt is harmless.
	PutTimeout time.Duration
}

// TimeoutError reports an object-store operation that exceeded its
// per-operation bound.
type TimeoutError struct {
	Op    string
	Key   string
	Limit time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("cloudstore: %s %q exceeded %v", e.Op, e.Key, e.Limit)
}

// Timeout satisfies net.Error-style checks.
func (e *TimeoutError) Timeout() bool { return true }

// Transient marks the timeout as retryable.
func (e *TimeoutError) Transient() bool { return true }

// BulkLoader is the vendor upload utility equivalent ("aws s3 cp" / AzCopy):
// it copies local files into the object store.
type BulkLoader struct {
	store Store
	cfg   LoaderConfig
}

// NewBulkLoader returns a loader that uploads into store.
func NewBulkLoader(store Store, cfg LoaderConfig) *BulkLoader {
	if cfg.Parallelism < 1 {
		cfg.Parallelism = 1
	}
	return &BulkLoader{store: store, cfg: cfg}
}

// put drives one store put, bounded by cfg.PutTimeout when set. On timeout
// the attempt is abandoned (the goroutine drains on its own; a late success
// writes the same bytes under the same key, so it cannot corrupt state) and
// the caller gets a transient *TimeoutError.
func (b *BulkLoader) put(key string, r io.Reader) error {
	if b.cfg.PutTimeout <= 0 {
		return b.store.Put(key, r)
	}
	done := make(chan error, 1)
	go func() { done <- b.store.Put(key, r) }()
	timer := time.NewTimer(b.cfg.PutTimeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		return &TimeoutError{Op: "put", Key: key, Limit: b.cfg.PutTimeout}
	}
}

// UploadFile copies one local file to the object key and returns the number
// of bytes uploaded.
func (b *BulkLoader) UploadFile(localPath, key string) (int64, error) {
	f, err := os.Open(localPath)
	if err != nil {
		return 0, fmt.Errorf("cloudstore: open %s: %w", localPath, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if err := b.put(key, f); err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// UploadBytes uploads an in-memory buffer, used when the FileWriter runs
// with an in-memory filesystem.
func (b *BulkLoader) UploadBytes(data []byte, key string) (int64, error) {
	if err := b.put(key, bytes.NewReader(data)); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// UploadDir uploads every regular file under dir to keyPrefix+name, using
// cfg.Parallelism workers, and returns the keys uploaded in lexical order.
func (b *BulkLoader) UploadDir(dir, keyPrefix string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cloudstore: read dir %s: %w", dir, err)
	}
	var files []string
	for _, e := range entries {
		if e.Type().IsRegular() {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)

	sem := make(chan struct{}, b.cfg.Parallelism)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	keys := make([]string, len(files))
	for i, name := range files {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, name string) {
			defer wg.Done()
			defer func() { <-sem }()
			key := keyPrefix + name
			if _, err := b.UploadFile(filepath.Join(dir, name), key); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			keys[i] = key
		}(i, name)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return keys, nil
}
