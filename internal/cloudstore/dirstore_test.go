package cloudstore

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

func TestDirStoreRoundTrip(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("jobs/1/part-000.csv", bytes.NewReader([]byte("a,b\n"))); err != nil {
		t.Fatal(err)
	}
	if err := store.Put("jobs/1/part-001.csv", bytes.NewReader([]byte("c,d\n"))); err != nil {
		t.Fatal(err)
	}
	if err := store.Put("other/x", bytes.NewReader([]byte("zzz"))); err != nil {
		t.Fatal(err)
	}

	r, err := store.Get("jobs/1/part-000.csv")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r)
	r.Close()
	if string(data) != "a,b\n" {
		t.Errorf("content: %q", data)
	}

	keys, err := store.List("jobs/1/")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"jobs/1/part-000.csv", "jobs/1/part-001.csv"}
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("List = %v, want %v", keys, want)
	}

	n, err := store.Size("other/x")
	if err != nil || n != 3 {
		t.Errorf("Size = %d, %v", n, err)
	}
	if err := store.Delete("other/x"); err != nil {
		t.Fatal(err)
	}
	if err := store.Delete("other/x"); err != nil {
		t.Error("double delete should be a no-op")
	}
	if _, err := store.Get("other/x"); err == nil {
		t.Error("deleted object still readable")
	}
}

func TestDirStoreOverwrite(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.Put("k", bytes.NewReader([]byte("v1")))
	store.Put("k", bytes.NewReader([]byte("v2")))
	r, _ := store.Get("k")
	data, _ := io.ReadAll(r)
	r.Close()
	if string(data) != "v2" {
		t.Errorf("overwrite: %q", data)
	}
}

func TestDirStoreRejectsEscapingKeys(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../evil", "/abs/path", "a/../../b"} {
		if err := store.Put(key, bytes.NewReader(nil)); err == nil {
			t.Errorf("key %q accepted", key)
		}
	}
}

func TestDirStoreImplementsStore(t *testing.T) {
	var _ Store = (*DirStore)(nil)
	var _ Store = (*MemStore)(nil)
	var _ Store = (*ThrottledStore)(nil)
}
