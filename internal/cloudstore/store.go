// Package cloudstore simulates the cloud object store (S3 / Azure Blob) that
// a CDW bulk-loads from, plus the vendor bulk-copy utility ("aws s3 cp",
// AzCopy) the virtualizer invokes to upload intermediate files (§6).
//
// The store is in-process but models the properties that matter for the
// paper's tuning discussion: a bandwidth- and latency-limited uplink, object
// immutability, and listing by prefix.
package cloudstore

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Object is an immutable stored blob.
type Object struct {
	Key      string
	Data     []byte
	Modified time.Time
}

// Store is the object-store API surface the bulk loader needs.
type Store interface {
	// Put stores the object under key, replacing any existing object.
	Put(key string, r io.Reader) error
	// Get returns a reader over the object's contents.
	Get(key string) (io.ReadCloser, error)
	// List returns the keys under the given prefix in lexical order.
	List(prefix string) ([]string, error)
	// Delete removes an object. Deleting a missing key is not an error.
	Delete(key string) error
	// Size returns the stored size of an object in bytes.
	Size(key string) (int64, error)
}

// MemStore is an in-memory Store.
type MemStore struct {
	mu      sync.RWMutex
	objects map[string][]byte
	puts    int64
	bytes   int64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{objects: make(map[string][]byte)}
}

// Put implements Store.
func (s *MemStore) Put(key string, r io.Reader) error {
	if key == "" {
		return fmt.Errorf("cloudstore: empty key")
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("cloudstore: reading object body: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[key] = data
	s.puts++
	s.bytes += int64(len(data))
	return nil
}

// Get implements Store.
func (s *MemStore) Get(key string) (io.ReadCloser, error) {
	s.mu.RLock()
	data, ok := s.objects[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cloudstore: no such object %q", key)
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// List implements Store.
func (s *MemStore) List(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []string
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, key)
	return nil
}

// Size implements Store.
func (s *MemStore) Size(key string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.objects[key]
	if !ok {
		return 0, fmt.Errorf("cloudstore: no such object %q", key)
	}
	return int64(len(data)), nil
}

// Stats returns the number of Put calls and total bytes uploaded.
func (s *MemStore) Stats() (puts, bytes int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.puts, s.bytes
}

// Link models the network path between the virtualizer host and the cloud
// store: a per-request latency plus a shared bandwidth limit. The zero Link
// is infinitely fast.
type Link struct {
	// Latency is added once per Put.
	Latency time.Duration
	// BytesPerSec caps sustained upload throughput across all concurrent
	// uploads. Zero means unlimited.
	BytesPerSec int64
	// OnTransfer, when non-nil, is called after each simulated transfer
	// with the object size and the wall time the link charged for it. Set
	// it before the link carries traffic.
	OnTransfer func(bytes int, d time.Duration)

	mu       sync.Mutex
	earliest time.Time // time at which the shared pipe is next free
}

// delay blocks the calling upload to model transferring n bytes.
func (l *Link) delay(n int) {
	start := time.Now()
	defer func() {
		if l.OnTransfer != nil {
			l.OnTransfer(n, time.Since(start))
		}
	}()
	if l.Latency > 0 {
		time.Sleep(l.Latency)
	}
	if l.BytesPerSec <= 0 {
		return
	}
	dur := time.Duration(float64(n) / float64(l.BytesPerSec) * float64(time.Second))
	l.mu.Lock()
	now := time.Now()
	end := l.earliest
	if end.Before(now) {
		end = now
	}
	end = end.Add(dur)
	l.earliest = end
	l.mu.Unlock()
	time.Sleep(time.Until(end))
}

// ThrottledStore wraps a Store with a simulated uplink.
type ThrottledStore struct {
	Store
	Link *Link
}

// Put implements Store, charging the upload to the link.
func (t *ThrottledStore) Put(key string, r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	t.Link.delay(len(data))
	return t.Store.Put(key, bytes.NewReader(data))
}
