package cloudstore

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DirStore is a Store backed by a directory tree — the deployment shape for
// multi-process setups, where a shared filesystem (or a mounted bucket)
// stands in for the cloud store. Keys map to relative paths under Root.
type DirStore struct {
	Root string
}

// NewDirStore creates the root directory if needed.
func NewDirStore(root string) (*DirStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("cloudstore: creating %s: %w", root, err)
	}
	return &DirStore{Root: root}, nil
}

func (d *DirStore) path(key string) (string, error) {
	if key == "" {
		return "", fmt.Errorf("cloudstore: empty key")
	}
	clean := filepath.Clean(filepath.FromSlash(key))
	if strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
		return "", fmt.Errorf("cloudstore: key %q escapes the store root", key)
	}
	return filepath.Join(d.Root, clean), nil
}

// Put implements Store. Each put writes a uniquely named temp file and
// renames it into place, so concurrent puts to the same key — e.g. a retry
// racing an abandoned timed-out attempt — never interleave writes: whichever
// rename lands last installs one complete object.
func (d *DirStore) Put(key string, r io.Reader) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(p), filepath.Base(p)+".*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := io.Copy(f, r); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, p)
}

// Get implements Store.
func (d *DirStore) Get(key string) (io.ReadCloser, error) {
	p, err := d.path(key)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, fmt.Errorf("cloudstore: no such object %q", key)
	}
	return f, nil
}

// List implements Store.
func (d *DirStore) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.WalkDir(d.Root, func(path string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return err
		}
		if strings.HasSuffix(path, ".tmp") {
			return nil
		}
		rel, err := filepath.Rel(d.Root, path)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Store.
func (d *DirStore) Delete(key string) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	err = os.Remove(p)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Size implements Store.
func (d *DirStore) Size(key string) (int64, error) {
	p, err := d.path(key)
	if err != nil {
		return 0, err
	}
	st, err := os.Stat(p)
	if err != nil {
		return 0, fmt.Errorf("cloudstore: no such object %q", key)
	}
	return st.Size(), nil
}
