package cloudstore

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestMemStorePutGet(t *testing.T) {
	s := NewMemStore()
	if err := s.Put("jobs/1/part-000.csv", bytes.NewReader([]byte("hello"))); err != nil {
		t.Fatal(err)
	}
	r, err := s.Get("jobs/1/part-000.csv")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if string(data) != "hello" {
		t.Errorf("got %q", data)
	}
	if _, err := s.Get("missing"); err == nil {
		t.Error("missing object returned")
	}
	if err := s.Put("", bytes.NewReader(nil)); err == nil {
		t.Error("empty key accepted")
	}
	n, err := s.Size("jobs/1/part-000.csv")
	if err != nil || n != 5 {
		t.Errorf("Size = %d, %v", n, err)
	}
	if _, err := s.Size("missing"); err == nil {
		t.Error("Size of missing object succeeded")
	}
}

func TestMemStoreListDelete(t *testing.T) {
	s := NewMemStore()
	for _, k := range []string{"a/2", "a/1", "b/1", "a/3"} {
		if err := s.Put(k, bytes.NewReader([]byte(k))); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.List("a/")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"a/1", "a/2", "a/3"}) {
		t.Errorf("List = %v", keys)
	}
	if err := s.Delete("a/2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a/2"); err != nil {
		t.Error("double delete should be a no-op")
	}
	keys, _ = s.List("a/")
	if !reflect.DeepEqual(keys, []string{"a/1", "a/3"}) {
		t.Errorf("after delete List = %v", keys)
	}
}

func TestMemStoreOverwrite(t *testing.T) {
	s := NewMemStore()
	s.Put("k", bytes.NewReader([]byte("v1")))
	s.Put("k", bytes.NewReader([]byte("v2")))
	r, _ := s.Get("k")
	data, _ := io.ReadAll(r)
	if string(data) != "v2" {
		t.Errorf("overwrite failed: %q", data)
	}
	puts, n := s.Stats()
	if puts != 2 || n != 4 {
		t.Errorf("Stats = %d, %d", puts, n)
	}
}

func TestMemStoreConcurrent(t *testing.T) {
	s := NewMemStore()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i%5))
			for j := 0; j < 50; j++ {
				s.Put(key, bytes.NewReader([]byte{byte(j)}))
				s.Get(key)
				s.List("")
			}
		}(i)
	}
	wg.Wait()
	keys, _ := s.List("")
	if len(keys) != 5 {
		t.Errorf("got %d keys", len(keys))
	}
}

func TestThrottledStoreBandwidth(t *testing.T) {
	mem := NewMemStore()
	link := &Link{BytesPerSec: 1 << 20} // 1 MiB/s
	ts := &ThrottledStore{Store: mem, Link: link}
	payload := make([]byte, 256<<10) // 256 KiB -> ~250ms
	start := time.Now()
	if err := ts.Put("k", bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 200*time.Millisecond {
		t.Errorf("throttled upload finished too fast: %v", el)
	}
	if n, _ := mem.Size("k"); n != int64(len(payload)) {
		t.Errorf("stored %d bytes", n)
	}
}

func TestThrottledStoreSharedPipe(t *testing.T) {
	mem := NewMemStore()
	link := &Link{BytesPerSec: 1 << 20}
	ts := &ThrottledStore{Store: mem, Link: link}
	payload := make([]byte, 128<<10) // each ~125ms; two concurrent must serialize
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ts.Put(string(rune('a'+i)), bytes.NewReader(payload))
		}(i)
	}
	wg.Wait()
	if el := time.Since(start); el < 200*time.Millisecond {
		t.Errorf("shared pipe not enforced: %v", el)
	}
}

func TestBulkLoaderFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "part-000.csv")
	if err := os.WriteFile(path, []byte("1,a\n2,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewMemStore()
	b := NewBulkLoader(s, LoaderConfig{})
	n, err := b.UploadFile(path, "stage/part-000.csv")
	if err != nil || n != 8 {
		t.Fatalf("UploadFile = %d, %v", n, err)
	}
	if _, err := b.UploadFile(filepath.Join(dir, "missing"), "x"); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := b.UploadBytes([]byte("inline"), "stage/inline"); err != nil {
		t.Fatal(err)
	}
	keys, _ := s.List("stage/")
	if len(keys) != 2 {
		t.Errorf("keys = %v", keys)
	}
}

func TestBulkLoaderDir(t *testing.T) {
	dir := t.TempDir()
	var want []string
	for i := 0; i < 5; i++ {
		name := filepath.Join(dir, string(rune('a'+i))+".csv")
		if err := os.WriteFile(name, []byte{byte(i)}, 0o644); err != nil {
			t.Fatal(err)
		}
		want = append(want, "pfx/"+string(rune('a'+i))+".csv")
	}
	// subdirectories are skipped
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	s := NewMemStore()
	b := NewBulkLoader(s, LoaderConfig{Parallelism: 3})
	keys, err := b.UploadDir(dir, "pfx/")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("keys = %v, want %v", keys, want)
	}
	if _, err := b.UploadDir(filepath.Join(dir, "nope"), "p/"); err == nil {
		t.Error("missing dir accepted")
	}
}

// brokenReader yields some bytes, then fails — an upload whose source dies
// mid-stream.
type brokenReader struct {
	data []byte
	err  error
	off  int
}

func (r *brokenReader) Read(p []byte) (int, error) {
	if r.off < len(r.data) {
		n := copy(p, r.data[r.off:])
		r.off += n
		return n, nil
	}
	return 0, r.err
}

// TestMemStorePutErroringReader is the partial-read regression test: a Put
// whose reader errors mid-stream must fail without leaving a truncated
// object visible, and must not clobber a pre-existing object under the key.
func TestMemStorePutErroringReader(t *testing.T) {
	s := NewMemStore()
	bang := io.ErrUnexpectedEOF
	if err := s.Put("k", &brokenReader{data: []byte("part"), err: bang}); err == nil {
		t.Fatal("erroring reader accepted")
	}
	if _, err := s.Get("k"); err == nil {
		t.Fatal("truncated object visible after failed put")
	}
	if _, err := s.Size("k"); err == nil {
		t.Fatal("Size sees object after failed put")
	}

	// A failed overwrite must preserve the previous version intact.
	if err := s.Put("k", bytes.NewReader([]byte("good-v1"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", &brokenReader{data: []byte("bad"), err: bang}); err == nil {
		t.Fatal("erroring overwrite accepted")
	}
	r, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r)
	r.Close()
	if string(data) != "good-v1" {
		t.Errorf("failed overwrite corrupted object: %q", data)
	}
}

// TestDirStorePutErroringReader: same invariant for the on-disk store (tmp
// file + rename must keep half-written data invisible).
func TestDirStorePutErroringReader(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", bytes.NewReader([]byte("good-v1"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", &brokenReader{data: []byte("bad"), err: io.ErrUnexpectedEOF}); err == nil {
		t.Fatal("erroring overwrite accepted")
	}
	r, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r)
	r.Close()
	if string(data) != "good-v1" {
		t.Errorf("failed overwrite corrupted object: %q", data)
	}
	keys, _ := s.List("")
	if len(keys) != 1 {
		t.Errorf("stray keys after failed put: %v", keys)
	}
}

// slowStore stalls every Put until released.
type slowStore struct {
	Store
	delay time.Duration
}

func (s *slowStore) Put(key string, r io.Reader) error {
	time.Sleep(s.delay)
	return s.Store.Put(key, r)
}

func TestBulkLoaderPutTimeout(t *testing.T) {
	mem := NewMemStore()
	slow := &slowStore{Store: mem, delay: 200 * time.Millisecond}
	b := NewBulkLoader(slow, LoaderConfig{PutTimeout: 20 * time.Millisecond})
	_, err := b.UploadBytes([]byte("x"), "k")
	te, ok := err.(*TimeoutError)
	if !ok {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if !te.Timeout() || !te.Transient() || te.Key != "k" {
		t.Errorf("TimeoutError = %+v", te)
	}

	// Generous bound: the put completes in time.
	fast := NewBulkLoader(mem, LoaderConfig{PutTimeout: 5 * time.Second})
	if _, err := fast.UploadBytes([]byte("y"), "k2"); err != nil {
		t.Fatal(err)
	}
	if n, err := mem.Size("k2"); err != nil || n != 1 {
		t.Errorf("Size(k2) = %d, %v", n, err)
	}
}

func TestLinkOnTransfer(t *testing.T) {
	mem := NewMemStore()
	link := &Link{BytesPerSec: 1 << 20}
	var gotBytes int
	var gotDur time.Duration
	link.OnTransfer = func(bytes int, d time.Duration) {
		gotBytes += bytes
		gotDur += d
	}
	ts := &ThrottledStore{Store: mem, Link: link}
	payload := make([]byte, 64<<10) // ~62ms at 1 MiB/s
	if err := ts.Put("k", bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	if gotBytes != len(payload) {
		t.Errorf("OnTransfer saw %d bytes, want %d", gotBytes, len(payload))
	}
	if gotDur < 40*time.Millisecond {
		t.Errorf("OnTransfer duration %v, want >= 40ms for a throttled upload", gotDur)
	}
}

// TestDirStoreConcurrentPutSameKey: concurrent puts to one key (a retry
// racing an abandoned timed-out attempt) must never interleave — each put
// writes a uniquely named temp file, so the installed object is always one
// attempt's complete bytes. Regression test for the shared fixed ".tmp"
// path.
func TestDirStoreConcurrentPutSameKey(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := bytes.Repeat([]byte("a"), 1<<20)
	b := bytes.Repeat([]byte("b"), 768<<10)
	for i := 0; i < 20; i++ {
		start := make(chan struct{})
		var wg sync.WaitGroup
		for _, content := range [][]byte{a, b} {
			wg.Add(1)
			go func(content []byte) {
				defer wg.Done()
				<-start
				// Hide bytes.Reader's WriteTo fast path so the copy into
				// the temp file proceeds in small chunks, giving the two
				// puts a real window to interleave.
				r := struct{ io.Reader }{bytes.NewReader(content)}
				if err := s.Put("k", r); err != nil {
					t.Error(err)
				}
			}(content)
		}
		close(start)
		wg.Wait()
		r, err := s.Get("k")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(r)
		r.Close()
		if !bytes.Equal(data, a) && !bytes.Equal(data, b) {
			t.Fatalf("iteration %d: object is a corrupt interleaving (%d bytes)", i, len(data))
		}
		keys, _ := s.List("")
		if len(keys) != 1 {
			t.Fatalf("iteration %d: stray keys %v", i, keys)
		}
	}
}

// TestUploadFileRetryAfterTimeout: a timed-out UploadFile abandons its put
// attempt, but the attempt owns its own file handle, so the caller can
// retry (and even return) while the stale attempt finishes in the
// background without racing the retry — the reader-sharing regression the
// race detector catches.
func TestUploadFileRetryAfterTimeout(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "chunk.csv")
	content := bytes.Repeat([]byte("x,y,z\n"), 4<<10)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}

	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	slow := &slowStore{Store: store, delay: 100 * time.Millisecond}
	b := NewBulkLoader(slow, LoaderConfig{PutTimeout: 10 * time.Millisecond})
	if _, err := b.UploadFile(path, "k"); err == nil {
		t.Fatal("timeout expected")
	} else if _, ok := err.(*TimeoutError); !ok {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}

	// Retry immediately while the abandoned attempt is still in flight.
	fast := NewBulkLoader(store, LoaderConfig{})
	n, err := fast.UploadFile(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(content)) {
		t.Errorf("uploaded %d bytes, want %d", n, len(content))
	}

	// Let the abandoned attempt complete; the object must stay intact.
	time.Sleep(200 * time.Millisecond)
	r, err := store.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r)
	r.Close()
	if !bytes.Equal(data, content) {
		t.Errorf("object corrupted after late completion: %d bytes, want %d", len(data), len(content))
	}
}
