package workload

import (
	"bytes"
	"strings"
	"testing"

	"etlvirt/internal/etlscript"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Groups: 32, Seed: 7}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if a.Script != b.Script {
		t.Error("same seed produced different scripts")
	}
	if len(a.Files) != len(b.Files) {
		t.Fatalf("file count differs: %d vs %d", len(a.Files), len(b.Files))
	}
	for name, data := range a.Files {
		if !bytes.Equal(data, b.Files[name]) {
			t.Errorf("file %s differs between runs", name)
		}
	}
	c, err := Generate(Config{Groups: 32, Seed: 8})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if c.Script == a.Script {
		t.Error("different seeds produced identical scripts")
	}
}

func TestGenerateScriptParses(t *testing.T) {
	for _, groups := range []int{4, 32} {
		sc, err := Generate(Config{Groups: groups, Seed: 3})
		if err != nil {
			t.Fatalf("Generate(%d): %v", groups, err)
		}
		if _, err := etlscript.Parse(sc.Script); err != nil {
			t.Fatalf("Generate(%d) script does not parse: %v\n%s", groups, err, sc.Script)
		}
		// Every referenced infile must be present in Files.
		for _, line := range strings.Split(sc.Script, "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, ".import") && !strings.HasPrefix(line, ".stream") {
				continue
			}
			f := strings.Fields(line)
			if len(f) < 3 || f[1] != "infile" {
				t.Fatalf("unexpected import statement shape: %q", line)
			}
			if _, ok := sc.Files[f[2]]; !ok {
				t.Errorf("script references %s but Files lacks it", f[2])
			}
		}
	}
}

func TestGenerateScenarioMix(t *testing.T) {
	sc, err := Generate(Config{Groups: 32, Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	kinds := map[string]int{}
	for _, g := range sc.Groups {
		kinds[g.Kind]++
	}
	if kinds["export"] != 1 || kinds["stream"] != 1 || kinds["import-types"] != 1 || kinds["import-wide"] != 1 {
		t.Errorf("missing special groups: %v", kinds)
	}
	if kinds["import"] < 20 {
		t.Errorf("too few plain imports: %v", kinds)
	}
	if kinds["summary"] == 0 {
		t.Errorf("no summary groups: %v", kinds)
	}
	// Every scrub table must carry a manifest expectation, and vice versa.
	expect := map[string]bool{}
	for _, e := range sc.Expect {
		expect[e.Table] = true
	}
	for _, tb := range sc.Tables {
		if !expect[tb.Name] {
			t.Errorf("table %s has no expectation", tb.Name)
		}
	}
	if len(sc.Expect) != len(sc.Tables) {
		t.Errorf("expectations (%d) != tables (%d)", len(sc.Expect), len(sc.Tables))
	}
	if len(sc.Exports) != 1 || sc.Exports[0].Rows <= 0 {
		t.Errorf("export check malformed: %+v", sc.Exports)
	}
	// Error injection must actually fire somewhere in a 32-group scenario.
	var et, uv int64
	for _, e := range sc.Expect {
		for name, n := range e.ErrRows {
			if strings.HasSuffix(name, "_ET") {
				et += n
			} else {
				uv += n
			}
		}
	}
	if et == 0 || uv == 0 {
		t.Errorf("no injected errors: et=%d uv=%d", et, uv)
	}
}
