// Package workload generates seeded, deterministic ETL scenarios that scale
// the examples/retailnightly shape toward the paper's 127 dependency-ordered
// batch groups. A scenario is a complete legacy job: CDW-dialect DDL, one
// etlscript program whose blocks are the batch groups, the input files the
// script references, and an expected-outcome manifest the scrub layer
// (internal/scrub) consumes.
//
// Diversity is the point: the generator mixes vartext and indicator-mode
// imports, an all-types import covering every ltype column kind, wide rows,
// an ORDER BY-deterministic export, cross-table INSERT..SELECT summary
// statements (the dependency edges), and a CDC stream whose arrivals are
// skewed (hot keys drawn quadratically) and bursty (consecutive updates to
// one hot key). Error rows — apply-time date-conversion failures (ET) and
// duplicate primary keys (UV) — are injected at deterministic rates, and the
// manifest predicts the exact target/ET/UV row counts each group must yield,
// so a scrub catches not only divergence between two engines but agreement
// on a wrong answer.
//
// Everything derives from Config.Seed via one PRNG: the same config always
// generates byte-identical scripts, files and manifests.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"etlvirt/internal/ltype"
	"etlvirt/internal/scrub"
)

// Config sizes a generated scenario.
type Config struct {
	// Groups is the number of dependency-ordered batch groups (default 32).
	Groups int
	// Seed drives every random choice (default 1).
	Seed int64
	// RowsPerGroup is the base import size per group (default 48); actual
	// sizes vary deterministically around it.
	RowsPerGroup int
	// WideColumns is the column count of the wide-row group (default 20).
	WideColumns int
	// BadDateRate and DupKeyRate set the error-injection probabilities for
	// apply-time date failures (ET) and duplicate primary keys (UV).
	// Defaults: 0.06 and 0.05.
	BadDateRate, DupKeyRate float64
}

func (c Config) withDefaults() Config {
	if c.Groups <= 0 {
		c.Groups = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RowsPerGroup <= 0 {
		c.RowsPerGroup = 48
	}
	if c.WideColumns <= 0 {
		c.WideColumns = 20
	}
	if c.BadDateRate == 0 {
		c.BadDateRate = 0.06
	}
	if c.DupKeyRate == 0 {
		c.DupKeyRate = 0.05
	}
	return c
}

// Group describes one batch group of the generated scenario.
type Group struct {
	Index     int    `json:"index"`
	Kind      string `json:"kind"` // import | import-types | import-wide | export | stream | summary
	Table     string `json:"table,omitempty"`
	DependsOn []int  `json:"depends_on,omitempty"`
}

// ExportCheck names an export outfile and its expected row count; the test
// harness compares the files produced by the two runs byte for byte (the
// generated export query carries ORDER BY, so output order is pinned).
type ExportCheck struct {
	Outfile string `json:"outfile"`
	Rows    int64  `json:"rows"`
}

// Scenario is one generated workload.
type Scenario struct {
	Cfg     Config              `json:"cfg"`
	DDL     []string            `json:"ddl"`
	Script  string              `json:"script"`
	Files   map[string][]byte   `json:"-"`
	Groups  []Group             `json:"groups"`
	Tables  []scrub.Table       `json:"tables"`
	Expect  []scrub.Expectation `json:"expect"`
	Exports []ExportCheck       `json:"exports"`
}

var namePool = []string{
	"Smith", "Jones", "Brown", "Garcia", "Miller", "Davis", "Wilson",
	"Moore", "Taylor", "Lee", "Walker", "Hall", "Young", "King", "Wright",
}

// skewed draws an index in [0, n) with a quadratic bias toward 0 — the hot
// end of a skewed key/value distribution.
func skewed(rng *rand.Rand, n int) int {
	r := rng.Float64()
	return int(r * r * float64(n))
}

// Generate builds the scenario for cfg. The same cfg always returns the same
// scenario, byte for byte.
func Generate(cfg Config) (*Scenario, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sc := &Scenario{Cfg: cfg, Files: map[string][]byte{}}

	var script strings.Builder
	script.WriteString(".logon host/user,pass;\n")

	// Special-role group indices. Group 0 is always a plain import so the
	// export has a dependency target; the stream closes the scenario.
	typesIdx, wideIdx, exportIdx, streamIdx := -1, -1, -1, -1
	if cfg.Groups >= 2 {
		typesIdx = 1
	}
	if cfg.Groups >= 3 {
		streamIdx = cfg.Groups - 1
	}
	if cfg.Groups >= 4 {
		exportIdx = cfg.Groups / 2
	}
	if cfg.Groups >= 6 {
		wideIdx = cfg.Groups / 4
		if wideIdx == typesIdx {
			wideIdx++
		}
	}

	summaryUsed := false
	for g := 0; g < cfg.Groups; g++ {
		switch g {
		case typesIdx:
			genTypesImport(sc, &script, rng, g)
		case exportIdx:
			genExport(sc, &script, rng, g)
		case streamIdx:
			genStream(sc, &script, rng, g)
		case wideIdx:
			genImport(sc, &script, rng, g, cfg.WideColumns, "import-wide")
		default:
			cols := 2 + rng.Intn(3)
			genImport(sc, &script, rng, g, cols, "import")
			// Dependency edges: every fourth plain import feeds the shared
			// summary table through a cross-table INSERT..SELECT.
			if g%4 == 3 {
				summaryUsed = true
				tbl := sc.Groups[len(sc.Groups)-1].Table
				fmt.Fprintf(&script,
					".run insert into WL.SUMMARY select %d, count(*) from %s;\n", g, tbl)
				sc.Groups = append(sc.Groups, Group{
					Index: g, Kind: "summary", Table: "WL.SUMMARY", DependsOn: []int{g},
				})
			}
		}
	}

	if summaryUsed {
		sc.DDL = append(sc.DDL, `CREATE TABLE WL.SUMMARY (
	GRP INTEGER NOT NULL,
	ROWCNT BIGINT,
	PRIMARY KEY (GRP))`)
		rows := int64(0)
		for _, gr := range sc.Groups {
			if gr.Kind == "summary" {
				rows++
			}
		}
		sc.Tables = append(sc.Tables, scrub.Table{Name: "WL.SUMMARY"})
		sc.Expect = append(sc.Expect, scrub.Expectation{
			Table: "WL.SUMMARY", Rows: rows,
			Domains: []string{"ROWCNT >= 0"},
		})
	}

	sc.Script = script.String()
	return sc, nil
}

// genImport emits one vartext import group with dataCols payload columns and
// a DATE column, injecting bad dates (ET) and duplicate keys (UV) at the
// configured rates.
func genImport(sc *Scenario, script *strings.Builder, rng *rand.Rand, g, dataCols int, kind string) {
	cfg := sc.Cfg
	table := fmt.Sprintf("WL.G%02d", g)
	et, uv := table+"_ET", table+"_UV"
	layout := fmt.Sprintf("LG%02d", g)
	infile := fmt.Sprintf("g%02d.txt", g)
	colLen := 24
	if kind == "import-wide" {
		colLen = 40
	}

	var ddl strings.Builder
	fmt.Fprintf(&ddl, "CREATE TABLE %s (\n\tPK VARCHAR(8) NOT NULL", table)
	for c := 1; c <= dataCols; c++ {
		fmt.Fprintf(&ddl, ",\n\tC%d VARCHAR(%d)", c, colLen)
	}
	ddl.WriteString(",\n\tDT DATE,\n\tPRIMARY KEY (PK))")
	sc.DDL = append(sc.DDL, ddl.String())

	fmt.Fprintf(script, ".layout %s;\n.field PK varchar(8);\n", layout)
	for c := 1; c <= dataCols; c++ {
		fmt.Fprintf(script, ".field C%d varchar(%d);\n", c, colLen)
	}
	fmt.Fprintf(script, ".field DT varchar(10);\n")
	fmt.Fprintf(script, ".begin import tables %s\n\terrortables %s %s;\n", table, et, uv)
	fmt.Fprintf(script, ".dml label Apply%02d;\ninsert into %s values (\n\ttrim(:PK)", g, table)
	for c := 1; c <= dataCols; c++ {
		fmt.Fprintf(script, ", trim(:C%d)", c)
	}
	fmt.Fprintf(script, ",\n\tcast(:DT as DATE format 'YYYY-MM-DD') );\n")
	fmt.Fprintf(script, ".import infile %s format vartext '|' layout %s apply Apply%02d;\n", infile, layout, g)
	script.WriteString(".end load;\n")

	n := cfg.RowsPerGroup + rng.Intn(cfg.RowsPerGroup/2+1)
	var data strings.Builder
	var landed []string // keys whose insert succeeded; dup candidates
	var etRows, uvRows int64
	for i := 1; i <= n; i++ {
		pk := fmt.Sprintf("K%02d%04d", g, i)
		date := fmt.Sprintf("20%02d-%02d-%02d", 22+rng.Intn(8), 1+rng.Intn(12), 1+rng.Intn(28))
		bad := rng.Float64() < cfg.BadDateRate
		dup := !bad && len(landed) > 0 && rng.Float64() < cfg.DupKeyRate
		if dup {
			// Duplicate a key that actually landed, so the second insert is
			// guaranteed to be a uniqueness violation, not a retried insert
			// of a key whose first image failed on a bad date.
			pk = landed[skewed(rng, len(landed))]
			uvRows++
		} else if bad {
			date = "not-a-date"
			etRows++
		} else {
			landed = append(landed, pk)
		}
		data.WriteString(pk)
		for c := 1; c <= dataCols; c++ {
			fmt.Fprintf(&data, "|%s %d", namePool[skewed(rng, len(namePool))], i)
		}
		data.WriteString("|" + date + "\n")
	}
	sc.Files[infile] = []byte(data.String())

	sc.Groups = append(sc.Groups, Group{Index: g, Kind: kind, Table: table})
	sc.Tables = append(sc.Tables, scrub.Table{Name: table, ErrTables: []string{et, uv}})
	sc.Expect = append(sc.Expect, scrub.Expectation{
		Table: table,
		Rows:  int64(len(landed)),
		ErrRows: map[string]int64{
			strings.ToUpper(et): etRows,
			strings.ToUpper(uv): uvRows,
		},
		Domains: []string{"PK <> ''", "DT >= DATE '2000-01-01'"},
	})
}

// genTypesImport emits the indicator-mode import whose layout exercises every
// ltype column kind, including NULLs in every nullable column.
func genTypesImport(sc *Scenario, script *strings.Builder, rng *rand.Rand, g int) {
	table := "WL.TYPES"
	et, uv := table+"_ET", table+"_UV"
	infile := fmt.Sprintf("g%02d.dat", g)

	layout := &ltype.Layout{Name: "LTYPES", Fields: []ltype.Field{
		{Name: "PK", Type: ltype.Simple(ltype.KindInteger)},
		{Name: "F_BI", Type: ltype.Simple(ltype.KindByteInt)},
		{Name: "F_SI", Type: ltype.Simple(ltype.KindSmallInt)},
		{Name: "F_BG", Type: ltype.Simple(ltype.KindBigInt)},
		{Name: "F_FL", Type: ltype.Simple(ltype.KindFloat)},
		{Name: "F_DC", Type: ltype.Decimal(12, 2)},
		{Name: "F_CH", Type: ltype.Char(8)},
		{Name: "F_VC", Type: ltype.VarChar(20)},
		{Name: "F_DT", Type: ltype.Simple(ltype.KindDate)},
		{Name: "F_TM", Type: ltype.Simple(ltype.KindTime)},
		{Name: "F_TS", Type: ltype.Simple(ltype.KindTimestamp)},
		{Name: "F_B", Type: ltype.Type{Kind: ltype.KindByte, Length: 4}},
		{Name: "F_VB", Type: ltype.Type{Kind: ltype.KindVarByte, Length: 8}},
	}}

	// Binary layout fields stage as hex text (sqlxlate.StagingDDL) and the CDW
	// has no hex-decode, so the target columns carry the hex form as VARCHAR.
	sc.DDL = append(sc.DDL, `CREATE TABLE WL.TYPES (
	PK INTEGER NOT NULL,
	F_BI SMALLINT,
	F_SI SMALLINT,
	F_BG BIGINT,
	F_FL FLOAT,
	F_DC DECIMAL(12,2),
	F_CH CHAR(8),
	F_VC VARCHAR(20),
	F_DT DATE,
	F_TM TIME,
	F_TS TIMESTAMP,
	F_B VARCHAR(8),
	F_VB VARCHAR(16),
	PRIMARY KEY (PK))`)

	fmt.Fprintf(script, ".layout %s;\n", layout.Name)
	for _, f := range layout.Fields {
		fmt.Fprintf(script, ".field %s %s;\n", f.Name, strings.ToLower(f.Type.String()))
	}
	fmt.Fprintf(script, ".begin import tables %s\n\terrortables %s %s;\n", table, et, uv)
	fmt.Fprintf(script, ".dml label ApplyTypes;\ninsert into %s values (", table)
	for i, f := range layout.Fields {
		if i > 0 {
			script.WriteString(", ")
		}
		script.WriteString(":" + f.Name)
	}
	script.WriteString(" );\n")
	fmt.Fprintf(script, ".import infile %s format indicator layout %s apply ApplyTypes;\n", infile, layout.Name)
	script.WriteString(".end load;\n")

	n := sc.Cfg.RowsPerGroup
	var data []byte
	for i := 1; i <= n; i++ {
		rec := ltype.Record{
			ltype.IntValue(ltype.KindInteger, int64(i)),
			ltype.IntValue(ltype.KindByteInt, int64(rng.Intn(200)-100)),
			ltype.IntValue(ltype.KindSmallInt, int64(rng.Intn(20000)-10000)),
			ltype.IntValue(ltype.KindBigInt, rng.Int63n(1<<40)),
			ltype.FloatValue(float64(rng.Intn(1_000_000)) / 64),
			ltype.IntValue(ltype.KindDecimal, rng.Int63n(10_000_000)-5_000_000),
			ltype.StringValue(ltype.KindChar, fmt.Sprintf("CH%05d", rng.Intn(100000))),
			ltype.StringValue(ltype.KindVarChar, namePool[skewed(rng, len(namePool))]),
			ltype.DateValue(2022+rng.Intn(8), 1+rng.Intn(12), 1+rng.Intn(28)),
			ltype.IntValue(ltype.KindTime, int64(rng.Intn(86400))),
			ltype.StringValue(ltype.KindTimestamp,
				fmt.Sprintf("20%02d-%02d-%02d %02d:%02d:%02d",
					22+rng.Intn(8), 1+rng.Intn(12), 1+rng.Intn(28),
					rng.Intn(24), rng.Intn(60), rng.Intn(60))),
			ltype.BytesValue(ltype.KindByte, []byte{
				byte(rng.Intn(96) + 32), byte(rng.Intn(96) + 32),
				byte(rng.Intn(96) + 32), byte(rng.Intn(96) + 32)}),
			ltype.BytesValue(ltype.KindVarByte, []byte(fmt.Sprintf("%d", rng.Intn(100000000)))),
		}
		// Every nullable field goes NULL at a deterministic rate, so the
		// scrub null layer has a real pattern to verify per column.
		for j := 1; j < len(rec); j++ {
			if rng.Float64() < 0.1 {
				rec[j] = ltype.NullValue(layout.Fields[j].Type.Kind)
			}
		}
		var err error
		data, err = ltype.EncodeRecord(data, layout, rec)
		if err != nil {
			panic(fmt.Sprintf("workload: encoding types record: %v", err))
		}
	}
	sc.Files[infile] = data

	sc.Groups = append(sc.Groups, Group{Index: g, Kind: "import-types", Table: table})
	sc.Tables = append(sc.Tables, scrub.Table{Name: table, ErrTables: []string{et, uv}})
	sc.Expect = append(sc.Expect, scrub.Expectation{
		Table: table, Rows: int64(n),
		ErrRows: map[string]int64{strings.ToUpper(et): 0, strings.ToUpper(uv): 0},
		Domains: []string{"PK > 0"},
	})
}

// genExport emits the export group: a deterministic ORDER BY dump of group
// 0's table, so two runs must produce byte-identical outfiles.
func genExport(sc *Scenario, script *strings.Builder, rng *rand.Rand, g int) {
	_ = rng
	src := "WL.G00"
	outfile := fmt.Sprintf("g%02d_export.out", g)
	fmt.Fprintf(script, ".begin export outfile %s format vartext '|';\n", outfile)
	fmt.Fprintf(script, "select PK, DT from %s order by PK;\n", src)
	script.WriteString(".end export;\n")

	var rows int64 = -1
	for _, e := range sc.Expect {
		if e.Table == src {
			rows = e.Rows
		}
	}
	sc.Groups = append(sc.Groups, Group{Index: g, Kind: "export", Table: src, DependsOn: []int{0}})
	sc.Exports = append(sc.Exports, ExportCheck{Outfile: outfile, Rows: rows})
}

// genStream emits the CDC stream group: skewed, bursty insert/update/delete
// deltas over a hot-key space, with apply-time date failures feeding the
// stream's error table.
func genStream(sc *Scenario, script *strings.Builder, rng *rand.Rand, g int) {
	cfg := sc.Cfg
	table := "WL.STR"
	et := table + "_ET"
	infile := fmt.Sprintf("g%02d_deltas.txt", g)

	sc.DDL = append(sc.DDL, `CREATE TABLE WL.STR (
	ID VARCHAR(6) NOT NULL,
	NAME VARCHAR(60),
	DT DATE,
	PRIMARY KEY (ID))`)

	fmt.Fprintf(script, ".layout LSTR;\n.field ID varchar(6);\n.field NAME varchar(60);\n.field DT varchar(10);\n")
	fmt.Fprintf(script, ".begin stream name wl_cdc tables %s\n\terrortables %s latency 50;\n", table, et)
	fmt.Fprintf(script, ".dml label ApplyStr;\ninsert into %s values (\n", table)
	script.WriteString("\ttrim(:ID), trim(:NAME),\n\tcast(:DT as DATE format 'YYYY-MM-DD') );\n")
	fmt.Fprintf(script, ".stream infile %s format vartext '|' layout LSTR apply ApplyStr;\n", infile)
	script.WriteString(".end stream;\n")

	keys := 8 * cfg.Groups // key space scales with the scenario
	total := 4*cfg.RowsPerGroup + rng.Intn(cfg.RowsPerGroup)
	live := map[string]bool{}
	var data strings.Builder
	var etRows int64
	burst := 0
	burstKey := ""
	for i := 1; i <= total; i++ {
		var id string
		if burst > 0 {
			// Bursty arrivals: several consecutive images of one hot key.
			id, burst = burstKey, burst-1
		} else {
			id = fmt.Sprintf("S%04d", 1+skewed(rng, keys))
			if rng.Float64() < 0.15 {
				burst, burstKey = 2+rng.Intn(3), id
			}
		}
		if live[id] && rng.Float64() < 0.12 {
			fmt.Fprintf(&data, "D|%s||\n", id)
			delete(live, id)
			continue
		}
		date := fmt.Sprintf("20%02d-%02d-%02d", 24+rng.Intn(6), 1+rng.Intn(12), 1+rng.Intn(28))
		bad := rng.Float64() < cfg.BadDateRate
		if bad {
			date = "bad-date"
			etRows++
		}
		op := "U"
		if !live[id] {
			op = "I"
		}
		fmt.Fprintf(&data, "%s|%s|%s %d|%s\n", op, id, namePool[skewed(rng, len(namePool))], i, date)
		// A failed insert leaves the key absent; a failed update leaves the
		// previous image live. Mirrors tuple-at-a-time legacy semantics.
		if !bad {
			live[id] = true
		} else if op == "U" {
			// stays live with old values
		} else {
			delete(live, id)
		}
	}
	sc.Files[infile] = []byte(data.String())

	sc.Groups = append(sc.Groups, Group{Index: g, Kind: "stream", Table: table})
	sc.Tables = append(sc.Tables, scrub.Table{Name: table, ErrTables: []string{et}})
	sc.Expect = append(sc.Expect, scrub.Expectation{
		Table: table, Rows: int64(len(live)),
		ErrRows: map[string]int64{strings.ToUpper(et): etRows},
		Domains: []string{"ID <> ''"},
	})
}
