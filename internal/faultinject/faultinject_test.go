package faultinject

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"etlvirt/internal/cloudstore"
	"etlvirt/internal/retrier"
)

// faultSequence records which of n calls to op fault.
func faultSequence(inj *Injector, op string, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = inj.Fault(op) != nil
	}
	return out
}

func TestSeedDeterminism(t *testing.T) {
	rule := Rule{Rate: 0.3, Class: ClassTimeout}
	a, b := New(42), New(42)
	a.SetRule("store.put", rule)
	b.SetRule("store.put", rule)
	sa := faultSequence(a, "store.put", 500)
	sb := faultSequence(b, "store.put", 500)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("same seed diverged at call %d", i+1)
		}
	}
	faults := 0
	for _, f := range sa {
		if f {
			faults++
		}
	}
	if faults < 100 || faults > 200 {
		t.Errorf("rate 0.3 over 500 calls injected %d faults", faults)
	}

	// A different seed must produce a different sequence.
	c := New(43)
	c.SetRule("store.put", rule)
	sc := faultSequence(c, "store.put", 500)
	same := true
	for i := range sa {
		if sa[i] != sc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestPerOpIndependence(t *testing.T) {
	// The op-A sequence must not change when op-B calls interleave.
	solo := New(7)
	solo.SetRule("a", Rule{Rate: 0.5})
	want := faultSequence(solo, "a", 200)

	mixed := New(7)
	mixed.SetRule("a", Rule{Rate: 0.5})
	mixed.SetRule("b", Rule{Rate: 0.5})
	got := make([]bool, 200)
	for i := range got {
		_ = mixed.Fault("b") // interleaved traffic on another op
		got[i] = mixed.Fault("a") != nil
		_ = mixed.Fault("b")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op-a sequence changed at call %d when op-b interleaved", i+1)
		}
	}
}

func TestNthEveryLimit(t *testing.T) {
	inj := New(1)
	inj.SetRule("op", Rule{Nth: []int64{2, 5}})
	got := faultSequence(inj, "op", 6)
	want := []bool{false, true, false, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("nth: call %d fault=%v, want %v", i+1, got[i], want[i])
		}
	}

	inj.SetRule("op2", Rule{Every: 3})
	got = faultSequence(inj, "op2", 7)
	want = []bool{false, false, true, false, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("every: call %d fault=%v, want %v", i+1, got[i], want[i])
		}
	}

	inj.SetRule("op3", Rule{Every: 1, Limit: 2})
	got = faultSequence(inj, "op3", 5)
	want = []bool{true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("limit: call %d fault=%v, want %v", i+1, got[i], want[i])
		}
	}
}

func TestErrorClassification(t *testing.T) {
	for _, c := range []Class{ClassUnavailable, ClassTimeout, ClassThrottle, ClassReset} {
		e := &Error{Op: "x", Class: c, Seq: 1}
		if !e.Transient() || !retrier.IsTransient(e) {
			t.Errorf("class %s must be transient", c)
		}
	}
	fatal := &Error{Op: "x", Class: ClassFatal, Seq: 1}
	if fatal.Transient() || retrier.IsTransient(fatal) {
		t.Error("fatal class must not be transient")
	}
	to := &Error{Op: "x", Class: ClassTimeout, Seq: 1}
	if !to.Timeout() {
		t.Error("timeout class must report Timeout()")
	}
}

func TestLatencySchedule(t *testing.T) {
	inj := New(9)
	var slept []time.Duration
	inj.SetSleep(func(d time.Duration) { slept = append(slept, d) })
	inj.SetRule("op", Rule{Latency: 5 * time.Millisecond, LatencyEvery: 2})
	for i := 0; i < 4; i++ {
		_ = inj.Fault("op")
	}
	if len(slept) != 2 || slept[0] != 5*time.Millisecond {
		t.Errorf("latency schedule: slept %v", slept)
	}
}

func TestOnInjectAndCounters(t *testing.T) {
	inj := New(3)
	inj.SetRule("op", Rule{Every: 1})
	var seen []string
	inj.SetOnInject(func(op string, err *Error) { seen = append(seen, op) })
	_ = inj.Fault("op")
	_ = inj.Fault("other") // no rule: no fault
	_ = inj.Fault("op")
	if inj.Injected() != 2 || len(seen) != 2 {
		t.Errorf("injected=%d observed=%d", inj.Injected(), len(seen))
	}
}

func TestParse(t *testing.T) {
	inj, err := Parse("store.put:rate=0.25,class=timeout,latency=2ms;cdw.query:every=7,limit=3;x:nth=2+9", 11)
	if err != nil {
		t.Fatal(err)
	}
	ops := inj.Ops()
	if len(ops) != 3 || ops[0] != "cdw.query" || ops[1] != "store.put" || ops[2] != "x" {
		t.Errorf("ops = %v", ops)
	}
	// nth rule round-trips
	got := faultSequence(inj, "x", 9)
	if !got[1] || !got[8] || got[0] || got[4] {
		t.Errorf("nth parse: %v", got)
	}

	for _, bad := range []string{
		"noColon", "op:rate=2", "op:class=bogus", "op:nth=0", "op:latency=fast", "op:wat=1", "op:kv",
	} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}

	empty, err := Parse("  ", 1)
	if err != nil || empty.Fault("anything") != nil {
		t.Errorf("empty spec must inject nothing: %v", err)
	}
}

func TestFaultyStore(t *testing.T) {
	mem := cloudstore.NewMemStore()
	inj := New(5)
	inj.SetRule(OpStorePut, Rule{Nth: []int64{1}})
	inj.SetRule(OpStoreGet, Rule{Nth: []int64{1}})
	fs := NewStore(inj, mem)

	// first put faults, nothing stored
	if err := fs.Put("k", strings.NewReader("hello")); err == nil {
		t.Fatal("first put should fault")
	}
	if _, err := mem.Size("k"); err == nil {
		t.Fatal("faulted put must not store the object")
	}
	// retry (second call) passes through
	if err := fs.Put("k", strings.NewReader("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Get("k"); err == nil {
		t.Fatal("first get should fault")
	}
	rc, err := fs.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if keys, err := fs.List(""); err != nil || len(keys) != 1 {
		t.Errorf("list: %v %v", keys, err)
	}
	if n, err := fs.Size("k"); err != nil || n != 5 {
		t.Errorf("size: %d %v", n, err)
	}
	if err := fs.Delete("k"); err != nil {
		t.Fatal(err)
	}

	// reset-class put faults consume part of the body (mid-stream break)
	inj2 := New(5)
	inj2.SetRule(OpStorePut, Rule{Every: 1, Class: ClassReset})
	fs2 := NewStore(inj2, mem)
	body := bytes.NewReader([]byte("abcdef"))
	err = fs2.Put("r", body)
	var fe *Error
	if !errors.As(err, &fe) || fe.Class != ClassReset {
		t.Fatalf("err = %v", err)
	}
	if body.Len() == 6 {
		t.Error("reset fault should have consumed part of the body")
	}
	if _, serr := mem.Size("r"); serr == nil {
		t.Error("no object may be visible after a mid-stream reset")
	}
}
