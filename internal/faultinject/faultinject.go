// Package faultinject is the deterministic fault-injection layer the chaos
// tests drive the resilience machinery with. An Injector holds per-operation
// rules — error rates, error classes, nth-call triggers, and latency
// schedules — and is consulted by thin wrappers at the system's
// infrastructure seams: FaultyStore around a cloudstore.Store, and the fault
// hook inside cdwnet client round trips.
//
// Determinism is the point: every operation name owns an independent PRNG
// seeded from (seed, op), so the nth call to a given operation makes the
// same fault decision in every run with that seed, regardless of how calls
// to *other* operations interleave. Same seed, same per-op call sequence ⇒
// same fault sequence, which is what lets the differential tests assert that
// a faulted run converges to a byte-identical final state.
//
// Faults fire *before* the wrapped operation executes, modeling a request
// lost on the way to the service. A retried operation therefore executes at
// most once per logical request, which keeps retries semantically safe in
// the simulation while still exercising every recovery path.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Class is the failure mode an injected fault presents as. All classes
// except ClassFatal report themselves transient, mirroring how cloud SDKs
// classify service errors.
type Class string

const (
	ClassUnavailable Class = "unavailable" // 503-style service unavailable
	ClassTimeout     Class = "timeout"     // request deadline exceeded
	ClassThrottle    Class = "throttle"    // rate-limit rejection
	ClassReset       Class = "reset"       // connection reset mid-request
	ClassFatal       Class = "fatal"       // permanent failure, not retryable
)

func validClass(c Class) bool {
	switch c {
	case ClassUnavailable, ClassTimeout, ClassThrottle, ClassReset, ClassFatal:
		return true
	}
	return false
}

// Error is an injected fault. Seq is the 1-based call number of Op that
// triggered it, making failures reproducible and reportable.
type Error struct {
	Op    string
	Class Class
	Seq   int64
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: %s fault injected on %s (call %d)", e.Class, e.Op, e.Seq)
}

// Transient reports whether retrying may succeed.
func (e *Error) Transient() bool { return e.Class != ClassFatal }

// Timeout lets timeout-class faults satisfy net.Error-style checks.
func (e *Error) Timeout() bool { return e.Class == ClassTimeout }

// Rule schedules faults for one operation name. Triggers combine: a call
// fails if its number appears in Nth, divides Every, or the per-op PRNG
// draws below Rate. Limit bounds the total errors injected for the op.
type Rule struct {
	// Rate is the probability (0..1) that any one call fails.
	Rate float64
	// Class is the failure mode; empty selects ClassUnavailable.
	Class Class
	// Nth lists 1-based call numbers that always fail.
	Nth []int64
	// Every, when > 0, fails every Every-th call.
	Every int64
	// Limit, when > 0, caps how many faults the op injects in total.
	Limit int64
	// Latency is added to every call (or every LatencyEvery-th call when
	// that is set), simulating slow infrastructure; it applies to calls
	// whether or not they also fault, and is what per-operation timeouts
	// are tested against.
	Latency time.Duration
	// LatencyEvery, when > 0, applies Latency only to every
	// LatencyEvery-th call.
	LatencyEvery int64
}

type opState struct {
	rule     Rule
	rng      *rand.Rand
	calls    int64
	injected int64
	nth      map[int64]bool
}

// Injector decides faults for named operations. Safe for concurrent use.
type Injector struct {
	seed int64

	mu  sync.Mutex
	ops map[string]*opState

	injected atomic.Int64
	onInject func(op string, err *Error)
	sleep    func(time.Duration)
}

// New returns an injector with no rules: every Fault call passes until
// SetRule installs schedules.
func New(seed int64) *Injector {
	return &Injector{seed: seed, ops: make(map[string]*opState), sleep: time.Sleep}
}

// Seed returns the injector's seed.
func (i *Injector) Seed() int64 { return i.seed }

// SetRule installs (or replaces) the schedule for op, resetting the op's
// call counter and PRNG so rule changes are themselves deterministic.
func (i *Injector) SetRule(op string, r Rule) {
	if r.Class == "" {
		r.Class = ClassUnavailable
	}
	st := &opState{
		rule: r,
		rng:  rand.New(rand.NewSource(i.seed ^ int64(hashOp(op)))),
	}
	if len(r.Nth) > 0 {
		st.nth = make(map[int64]bool, len(r.Nth))
		for _, n := range r.Nth {
			st.nth[n] = true
		}
	}
	i.mu.Lock()
	i.ops[op] = st
	i.mu.Unlock()
}

// SetOnInject installs a callback invoked once per injected fault, after the
// fault decision and outside the injector lock. The node wires this into its
// etlvirt_faults_injected_total metric and debug log.
func (i *Injector) SetOnInject(fn func(op string, err *Error)) {
	i.mu.Lock()
	i.onInject = fn
	i.mu.Unlock()
}

// SetSleep replaces the latency sleep, letting tests run latency schedules
// without wall-clock waits.
func (i *Injector) SetSleep(fn func(time.Duration)) {
	i.mu.Lock()
	i.sleep = fn
	i.mu.Unlock()
}

// Injected returns the total number of faults injected across all ops.
func (i *Injector) Injected() int64 { return i.injected.Load() }

// Ops returns the operation names with rules installed, sorted.
func (i *Injector) Ops() []string {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]string, 0, len(i.ops))
	for op := range i.ops {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}

// Fault records one call to op and returns the fault to inject, or nil to
// let the call proceed. Latency schedules are served before returning.
func (i *Injector) Fault(op string) error {
	i.mu.Lock()
	st, ok := i.ops[op]
	if !ok {
		i.mu.Unlock()
		return nil
	}
	st.calls++
	seq := st.calls
	r := st.rule

	var delay time.Duration
	if r.Latency > 0 && (r.LatencyEvery <= 0 || seq%r.LatencyEvery == 0) {
		delay = r.Latency
	}

	fail := false
	if r.Rate > 0 {
		// Draw exactly once per call so the random sequence stays aligned
		// with the call counter whatever the other triggers say.
		draw := st.rng.Float64()
		fail = draw < r.Rate
	}
	if st.nth[seq] || (r.Every > 0 && seq%r.Every == 0) {
		fail = true
	}
	if fail && r.Limit > 0 && st.injected >= r.Limit {
		fail = false
	}
	var ferr *Error
	if fail {
		st.injected++
		ferr = &Error{Op: op, Class: r.Class, Seq: seq}
	}
	onInject := i.onInject
	sleep := i.sleep
	i.mu.Unlock()

	if delay > 0 && sleep != nil {
		sleep(delay)
	}
	if ferr == nil {
		return nil
	}
	i.injected.Add(1)
	if onInject != nil {
		onInject(op, ferr)
	}
	return ferr
}

func hashOp(op string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(op))
	return h.Sum64()
}

// Parse builds an injector from a flag-friendly spec:
//
//	op:key=value,key=value;op2:key=value,...
//
// Keys: rate (0..1), class (unavailable|timeout|throttle|reset|fatal),
// nth (1-based call numbers joined with '+', e.g. nth=3+7), every, limit,
// latency (Go duration, e.g. 5ms), latency_every.
//
// Example: "store.put:rate=0.1,class=timeout;cdw.query:every=7"
func Parse(spec string, seed int64) (*Injector, error) {
	inj := New(seed)
	if strings.TrimSpace(spec) == "" {
		return inj, nil
	}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		op, kvs, ok := strings.Cut(entry, ":")
		op = strings.TrimSpace(op)
		if !ok || op == "" {
			return nil, fmt.Errorf("faultinject: entry %q is not op:key=value,...", entry)
		}
		var rule Rule
		for _, kv := range strings.Split(kvs, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: %s: %q is not key=value", op, kv)
			}
			var err error
			switch key {
			case "rate":
				rule.Rate, err = strconv.ParseFloat(val, 64)
				if err == nil && (rule.Rate < 0 || rule.Rate > 1) {
					err = fmt.Errorf("rate %v outside [0,1]", rule.Rate)
				}
			case "class":
				rule.Class = Class(val)
				if !validClass(rule.Class) {
					err = fmt.Errorf("unknown class %q", val)
				}
			case "nth":
				for _, n := range strings.Split(val, "+") {
					v, perr := strconv.ParseInt(n, 10, 64)
					if perr != nil || v < 1 {
						err = fmt.Errorf("bad nth value %q", n)
						break
					}
					rule.Nth = append(rule.Nth, v)
				}
			case "every":
				rule.Every, err = strconv.ParseInt(val, 10, 64)
			case "limit":
				rule.Limit, err = strconv.ParseInt(val, 10, 64)
			case "latency":
				rule.Latency, err = time.ParseDuration(val)
			case "latency_every":
				rule.LatencyEvery, err = strconv.ParseInt(val, 10, 64)
			default:
				err = fmt.Errorf("unknown key %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: %s: %s=%s: %w", op, key, val, err)
			}
		}
		inj.SetRule(op, rule)
	}
	return inj, nil
}
