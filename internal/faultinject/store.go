package faultinject

import (
	"io"

	"etlvirt/internal/cloudstore"
)

// Store operation names FaultyStore consults the injector with.
const (
	OpStorePut    = "store.put"
	OpStoreGet    = "store.get"
	OpStoreList   = "store.list"
	OpStoreDelete = "store.delete"
	OpStoreSize   = "store.size"
)

// FaultyStore implements cloudstore.Store, consulting an Injector before
// delegating each operation. Faults fire before the inner store sees the
// request, so a failed Put never stores anything — except reset-class put
// faults, which consume part of the request body first to model an upload
// broken mid-stream (the inner store must still not expose a truncated
// object; FaultyStore never forwards the partial read).
type FaultyStore struct {
	inner cloudstore.Store
	inj   *Injector
}

// NewStore wraps inner with fault injection.
func NewStore(inj *Injector, inner cloudstore.Store) *FaultyStore {
	return &FaultyStore{inner: inner, inj: inj}
}

// Inner returns the wrapped store.
func (s *FaultyStore) Inner() cloudstore.Store { return s.inner }

// Put implements cloudstore.Store.
func (s *FaultyStore) Put(key string, r io.Reader) error {
	if err := s.inj.Fault(OpStorePut); err != nil {
		if fe, ok := err.(*Error); ok && fe.Class == ClassReset {
			// connection reset mid-upload: part of the body is gone
			_, _ = io.CopyN(io.Discard, r, 1)
		}
		return err
	}
	return s.inner.Put(key, r)
}

// Get implements cloudstore.Store.
func (s *FaultyStore) Get(key string) (io.ReadCloser, error) {
	if err := s.inj.Fault(OpStoreGet); err != nil {
		return nil, err
	}
	return s.inner.Get(key)
}

// List implements cloudstore.Store.
func (s *FaultyStore) List(prefix string) ([]string, error) {
	if err := s.inj.Fault(OpStoreList); err != nil {
		return nil, err
	}
	return s.inner.List(prefix)
}

// Delete implements cloudstore.Store.
func (s *FaultyStore) Delete(key string) error {
	if err := s.inj.Fault(OpStoreDelete); err != nil {
		return err
	}
	return s.inner.Delete(key)
}

// Size implements cloudstore.Store.
func (s *FaultyStore) Size(key string) (int64, error) {
	if err := s.inj.Fault(OpStoreSize); err != nil {
		return 0, err
	}
	return s.inner.Size(key)
}
