package cdwnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cloudstore"
	"etlvirt/internal/obs"
	"etlvirt/internal/retrier"
)

func startServer(t *testing.T) (*cdw.Engine, string) {
	t.Helper()
	eng := cdw.NewEngine(cloudstore.NewMemStore(), cdw.Options{})
	srv := NewServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return eng, addr
}

func TestClientExecAndQuery(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec("CREATE TABLE t (a BIGINT, b VARCHAR(10))"); err != nil {
		t.Fatal(err)
	}
	n, err := c.Exec("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, NULL)")
	if err != nil || n != 3 {
		t.Fatalf("insert: %d, %v", n, err)
	}
	cols, rows, err := c.QueryAll("SELECT a, b FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0].Name != "a" || cols[0].Type.Kind != cdw.KInt {
		t.Errorf("cols: %+v", cols)
	}
	if len(rows) != 3 || rows[0][0].I != 1 || !rows[2][1].IsNull() {
		t.Errorf("rows: %v", rows)
	}
}

func TestRemoteErrorRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("SELECT * FROM missing")
	ee, ok := err.(*cdw.Error)
	if !ok || ee.Code != cdw.CodeNoSuchObject {
		t.Fatalf("want remote engine error, got %v", err)
	}
	// connection still usable after engine error
	if _, err := c.Exec("CREATE TABLE t (a BIGINT)"); err != nil {
		t.Fatalf("connection unusable after error: %v", err)
	}
}

func TestCursorBatching(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Exec("CREATE TABLE t (a BIGINT)")
	var sb []byte
	sb = append(sb, "INSERT INTO t VALUES "...)
	for i := 0; i < 100; i++ {
		if i > 0 {
			sb = append(sb, ',')
		}
		sb = append(sb, fmt.Sprintf("(%d)", i)...)
	}
	if _, err := c.Exec(string(sb)); err != nil {
		t.Fatal(err)
	}
	cur, err := c.Query("SELECT a FROM t ORDER BY a", 7)
	if err != nil {
		t.Fatal(err)
	}
	total, batches := 0, 0
	for {
		rows, ok, err := cur.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		batches++
		if len(rows) > 7 {
			t.Errorf("batch of %d exceeds fetch size", len(rows))
		}
		total += len(rows)
	}
	if total != 100 || batches < 15 {
		t.Errorf("total=%d batches=%d", total, batches)
	}
	// cursor closed; connection reusable
	if _, err := c.Exec("SELECT count(*) FROM t"); err != nil {
		t.Fatal(err)
	}
}

func TestCursorMustCloseBeforeNextQuery(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Exec("CREATE TABLE t (a BIGINT)")
	c.Exec("INSERT INTO t VALUES (1), (2), (3)")
	cur, err := c.Query("SELECT a FROM t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT a FROM t", 1); err == nil {
		t.Error("second query with open cursor accepted")
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	cur2, err := c.Query("SELECT a FROM t", 1)
	if err != nil {
		t.Fatal(err)
	}
	cur2.Close()
}

func TestPoolConcurrentUse(t *testing.T) {
	_, addr := startServer(t)
	pool := NewPool(addr, 4)
	defer pool.Close()
	if _, err := pool.Exec("CREATE TABLE t (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := pool.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	_, rows, err := pool.QueryAll("SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].I != 32 {
		t.Errorf("count = %v", rows[0][0])
	}
}

func TestPoolSurvivesEngineErrors(t *testing.T) {
	_, addr := startServer(t)
	pool := NewPool(addr, 1)
	defer pool.Close()
	for i := 0; i < 5; i++ {
		if _, err := pool.Exec("SELECT * FROM missing"); err == nil {
			t.Fatal("missing table accepted")
		}
	}
	if _, err := pool.Exec("CREATE TABLE t (a BIGINT)"); err != nil {
		t.Fatalf("pool broken after engine errors: %v", err)
	}
}

func TestDescribe(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`CREATE TABLE s.t (
		k VARCHAR(5) NOT NULL, v DECIMAL(10,2), d DATE,
		PRIMARY KEY (k), UNIQUE (d))`); err != nil {
		t.Fatal(err)
	}
	c.Exec("INSERT INTO s.t VALUES ('a', '1.50', '2020-01-01')")
	meta, err := c.Describe("s.t")
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Columns) != 3 || meta.Columns[0].Name != "k" {
		t.Errorf("columns: %+v", meta.Columns)
	}
	if !meta.NotNull[0] || meta.NotNull[1] {
		t.Errorf("notnull: %v", meta.NotNull)
	}
	if len(meta.PrimaryKey) != 1 || meta.PrimaryKey[0] != "k" {
		t.Errorf("pk: %v", meta.PrimaryKey)
	}
	if len(meta.Unique) != 1 || meta.Unique[0][0] != "d" {
		t.Errorf("unique: %v", meta.Unique)
	}
	if meta.Rows != 1 {
		t.Errorf("rows: %d", meta.Rows)
	}
	if meta.Columns[1].Type.Kind != cdw.KDecimal || meta.Columns[1].Type.Scale != 2 {
		t.Errorf("decimal type: %+v", meta.Columns[1].Type)
	}
	// missing table is a remote engine error; connection survives
	if _, err := c.Describe("nope"); err == nil {
		t.Error("missing table described")
	}
	if _, err := c.Exec("SELECT 1"); err != nil {
		t.Fatalf("connection broken after describe error: %v", err)
	}
	// pool path
	pool := NewPool(addr, 2)
	defer pool.Close()
	if _, err := pool.Describe("s.t"); err != nil {
		t.Fatal(err)
	}
}

// TestPoolDiscardsPoisonedConnection is the regression test for the
// recycling bug: a connection whose round trip hit a transport failure must
// be discarded by Put, never handed out again.
func TestPoolDiscardsPoisonedConnection(t *testing.T) {
	_, addr := startServer(t)
	p := NewPool(addr, 1)
	defer p.Close()

	c1, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	// Poison the connection with an injected transport fault.
	c1.SetFaultHook(func(op string) error { return fmt.Errorf("injected transport fault") })
	if _, err := c1.Exec("SELECT 1"); err == nil {
		t.Fatal("faulted round trip should error")
	}
	if !c1.Broken() {
		t.Fatal("transport failure must mark the connection broken")
	}
	p.Put(c1)

	// The pool slot must have been freed and the next Get must dial fresh —
	// returning the poisoned client here would hand out a desynchronized
	// gob stream.
	c2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Fatal("poisoned connection was handed out again")
	}
	if _, err := c2.Exec("SELECT 1"); err != nil {
		t.Fatalf("fresh connection should work: %v", err)
	}
	p.Put(c2)
}

// TestPoolRetriesTransientFaults wires a retrier and a one-shot injected
// fault into the pool and checks the round trip succeeds transparently on a
// fresh connection.
func TestPoolRetriesTransientFaults(t *testing.T) {
	_, addr := startServer(t)
	p := NewPool(addr, 2)
	defer p.Close()

	var mu sync.Mutex
	faults := 0
	p.SetFaultHook(func(op string) error {
		mu.Lock()
		defer mu.Unlock()
		if op == "query" && faults == 0 {
			faults++
			return &faultErr{}
		}
		return nil
	})
	p.SetRetrier(&retrier.Retrier{
		Policy: retrier.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond},
	})
	if _, err := p.Exec("CREATE TABLE rt (a BIGINT)"); err != nil {
		t.Fatalf("retried exec failed: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if faults != 1 {
		t.Errorf("fault fired %d times", faults)
	}
}

// TestPoolDoesNotRetryEngineErrors: remote engine errors must surface
// immediately (per-tuple error semantics depend on it).
func TestPoolDoesNotRetryEngineErrors(t *testing.T) {
	_, addr := startServer(t)
	p := NewPool(addr, 1)
	defer p.Close()
	attempts := 0
	p.SetRetrier(&retrier.Retrier{
		Policy:  retrier.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond},
		Observe: func(string, int, time.Duration, error) { attempts++ },
	})
	if _, err := p.Exec("SELECT * FROM no_such_table"); err == nil {
		t.Fatal("engine error expected")
	}
	if attempts != 0 {
		t.Errorf("engine error was retried %d times", attempts)
	}
}

// faultErr is a transient transport failure for pool tests.
type faultErr struct{}

func (*faultErr) Error() string   { return "injected fault" }
func (*faultErr) Transient() bool { return true }

// TestClientTimeout bounds a round trip against a server that never
// responds; the deadline must fire and poison the connection.
func TestClientTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// accept and go silent: never answer
			defer conn.Close()
		}
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(50 * time.Millisecond)
	start := time.Now()
	_, err = c.Exec("SELECT 1")
	if err == nil {
		t.Fatal("timeout expected")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want net timeout", err)
	}
	if !c.Broken() {
		t.Error("timed-out connection must be marked broken")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline did not bound the round trip: %v", elapsed)
	}
}

// startSilentServer accepts connections and never answers, so every round
// trip against it dies on the client's recv deadline — a failure that
// happens AFTER the request hit the wire.
func startSilentServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		var conns []net.Conn
		defer func() {
			for _, c := range conns {
				c.Close()
			}
		}()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conns = append(conns, conn)
		}
	}()
	return ln.Addr().String()
}

// TestPoolDoesNotRetryExecAfterSend: a real recv deadline fires after the
// request may have executed server-side, so the pool must NOT re-run a
// (possibly non-idempotent) Exec — a retry would double-apply DML.
func TestPoolDoesNotRetryExecAfterSend(t *testing.T) {
	addr := startSilentServer(t)
	p := NewPool(addr, 1)
	defer p.Close()
	p.SetTimeout(30 * time.Millisecond)
	retries := 0
	p.SetRetrier(&retrier.Retrier{
		Policy:  retrier.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond},
		Observe: func(string, int, time.Duration, error) { retries++ },
	})
	_, err := p.Exec("INSERT INTO t VALUES (1)")
	if err == nil {
		t.Fatal("timeout expected")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want net timeout", err)
	}
	if NotSent(err) {
		t.Errorf("post-send deadline misclassified as NotSent: %v", err)
	}
	if retries != 0 {
		t.Errorf("post-send timeout on Exec was retried %d times", retries)
	}
}

// TestPoolRetriesIdempotentAfterSend: the same post-send deadline IS retried
// for read-only round trips (QueryAll, Describe), which are safe to re-run.
func TestPoolRetriesIdempotentAfterSend(t *testing.T) {
	addr := startSilentServer(t)
	p := NewPool(addr, 1)
	defer p.Close()
	p.SetTimeout(30 * time.Millisecond)
	retries := 0
	p.SetRetrier(&retrier.Retrier{
		Policy:  retrier.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond},
		Observe: func(string, int, time.Duration, error) { retries++ },
	})
	if _, _, err := p.QueryAll("SELECT 1"); err == nil {
		t.Fatal("timeout expected")
	}
	if retries == 0 {
		t.Error("post-send timeout on read-only QueryAll was not retried")
	}
}

// TestPoolGetWokenByDiscard: a Get blocked on pool capacity must wake up
// when a broken connection is discarded — discarding frees a dial slot.
// Regression test for the hang where discard decremented the made counter
// without signaling blocked waiters.
func TestPoolGetWokenByDiscard(t *testing.T) {
	_, addr := startServer(t)
	p := NewPool(addr, 1)
	defer p.Close()

	c1, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan error, 1)
	go func() {
		c2, err := p.Get()
		if err == nil {
			p.Put(c2)
		}
		got <- err
	}()
	// Let the goroutine reach the blocking select, then poison c1 so Put
	// discards it instead of recycling.
	time.Sleep(20 * time.Millisecond)
	c1.SetFaultHook(func(op string) error { return fmt.Errorf("poison") })
	if _, err := c1.Exec("SELECT 1"); err == nil {
		t.Fatal("faulted round trip should error")
	}
	p.Put(c1) // discard: must free the slot and wake the blocked Get

	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("woken Get failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Get blocked forever after discard freed capacity")
	}
}

// TestNotSentClassification: injected faults and dial failures are tagged
// NotSent (safe to retry blindly); their Transient verdict still unwraps.
func TestNotSentClassification(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetFaultHook(func(op string) error { return &faultErr{} })
	_, err = c.Exec("SELECT 1")
	if err == nil {
		t.Fatal("fault expected")
	}
	if !NotSent(err) {
		t.Errorf("injected fault not tagged NotSent: %v", err)
	}
	if !retrier.IsTransient(err) {
		t.Errorf("NotSent wrapper hid the Transient verdict: %v", err)
	}

	// Dial failure: point a pool at a dead address.
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	dead := ln.Addr().String()
	ln.Close()
	p := NewPool(dead, 1)
	defer p.Close()
	if _, err := p.Get(); err == nil {
		t.Fatal("dial to dead address should fail")
	} else if !NotSent(err) {
		t.Errorf("dial failure not tagged NotSent: %v", err)
	}
}

func TestTracePropagationAndEngineNanos(t *testing.T) {
	eng := cdw.NewEngine(cloudstore.NewMemStore(), cdw.Options{})
	srv := NewServer(eng)
	ev := obs.NewEventLog(16)
	srv.SetEventLog(ev)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := NewPool(addr, 1)
	defer p.Close()

	type hookCall struct {
		op       string
		tc       obs.TraceContext
		engineNS int64
	}
	var mu sync.Mutex
	var calls []hookCall
	p.SetTraceHook(func(op string, tc obs.TraceContext, _ time.Time, _ time.Duration, engineNS int64, err error) {
		mu.Lock()
		calls = append(calls, hookCall{op, tc, engineNS})
		mu.Unlock()
	})

	tc := obs.TraceContext{TraceID: 0xBEEF, SpanID: 0x12, Sampled: true}
	if _, err := p.ExecT("CREATE TABLE tt (a BIGINT)", tc); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.QueryAllT("SELECT a FROM tt", tc); err != nil {
		t.Fatal(err)
	}
	// Untraced calls must not reach the trace hook.
	if _, err := p.Exec("INSERT INTO tt VALUES (7)"); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 2 {
		t.Fatalf("trace hook fired %d times, want 2", len(calls))
	}
	if calls[0].op != "exec" || calls[1].op != "query" {
		t.Errorf("ops: %q, %q", calls[0].op, calls[1].op)
	}
	for i, c := range calls {
		if c.tc != tc {
			t.Errorf("call %d context %+v, want %+v", i, c.tc, tc)
		}
		if c.engineNS <= 0 {
			t.Errorf("call %d engineNS %d, want > 0", i, c.engineNS)
		}
	}

	// The server event log saw all three requests; the traced ones carry
	// the propagated trace ID.
	events := ev.Events(0)
	if len(events) != 3 {
		t.Fatalf("server recorded %d events, want 3", len(events))
	}
	want := obs.FormatTraceID(tc.TraceID)
	if events[0].TraceID != want || events[1].TraceID != want {
		t.Errorf("traced events carry %q/%q, want %q", events[0].TraceID, events[1].TraceID, want)
	}
	if events[2].TraceID != "" {
		t.Errorf("untraced event carries trace ID %q", events[2].TraceID)
	}
	for _, e := range events {
		if e.Type != "cdw_request" {
			t.Errorf("event type %q", e.Type)
		}
	}
}
