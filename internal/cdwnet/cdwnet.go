// Package cdwnet provides the network interface of the CDW: a TCP server in
// front of a cdw.Engine and a client with batched result fetching. The
// virtualizer's Beta process and TDFCursor sit on top of this client (§3).
//
// The protocol is a simple length-delimited gob stream: the client sends a
// request, the server answers with a response header followed by zero or
// more row batches. Batched fetch is what lets the TDFCursor retrieve
// results "on demand" in chunks rather than materializing everything.
package cdwnet

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"etlvirt/internal/cdw"
	"etlvirt/internal/obs"
	"etlvirt/internal/retrier"
	"etlvirt/internal/sqlparse"
)

// DefaultFetchSize is the row-batch size used when a query does not specify
// one.
const DefaultFetchSize = 4096

type request struct {
	SQL       string
	FetchSize int
	// Describe, when non-empty, requests table metadata ("schema.name" or
	// "name") instead of executing SQL.
	Describe string
	// Distributed trace context propagated from the virtualizer: the trace
	// this request belongs to and the span it is parented under. Zero TraceID
	// means untraced.
	TraceID uint64
	SpanID  uint64
	Sampled bool
}

// trace reassembles the request's trace context.
func (r *request) trace() obs.TraceContext {
	return obs.TraceContext{TraceID: r.TraceID, SpanID: r.SpanID, Sampled: r.Sampled}
}

type colInfo struct {
	Name string
	Type cdw.ColType
}

// TableMeta mirrors cdw.TableMeta on the wire.
type TableMeta struct {
	Columns    []ResultCol
	NotNull    []bool
	PrimaryKey []string
	Unique     [][]string
	Rows       int
}

type responseHeader struct {
	ErrCode  int
	ErrMsg   string
	ErrField string
	ErrRow   int64
	Columns  []colInfo
	Activity int64
	HasRows  bool
	Meta     *TableMeta
	// EngineNanos is the server-side engine latency for this request, so the
	// client can split a round trip into network and engine time.
	EngineNanos int64
}

type rowBatch struct {
	Rows [][]cdw.Datum
	Last bool
}

// Server serves a cdw.Engine over TCP.
type Server struct {
	eng *cdw.Engine
	ln  net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	done     chan struct{}
	observer func(op string, d time.Duration, errCode int)
	events   *obs.EventLog
}

// SetEventLog records one event per served request (type "cdw_request") into
// ev, carrying the propagated trace ID so engine-side activity can be joined
// to the distributed trace. Nil disables recording.
func (s *Server) SetEventLog(ev *obs.EventLog) {
	s.mu.Lock()
	s.events = ev
	s.mu.Unlock()
}

func (s *Server) event(op string, tc obs.TraceContext, d time.Duration, errCode int) {
	s.mu.Lock()
	ev := s.events
	s.mu.Unlock()
	if ev == nil {
		return
	}
	e := obs.Event{
		Type: "cdw_request",
		Msg:  op,
		Attrs: map[string]any{
			"dur_ns":   d.Nanoseconds(),
			"err_code": errCode,
		},
	}
	if tc.Valid() {
		e.TraceID = obs.FormatTraceID(tc.TraceID)
	}
	ev.Add(e)
}

// SetObserver installs a callback invoked once per served request with the
// request kind ("exec" or "describe"), its engine latency, and the engine
// error code (0 on success). cdwd wires this into its request metrics.
func (s *Server) SetObserver(fn func(op string, d time.Duration, errCode int)) {
	s.mu.Lock()
	s.observer = fn
	s.mu.Unlock()
}

func (s *Server) observe(op string, start time.Time, errCode int) {
	s.mu.Lock()
	fn := s.observer
	s.mu.Unlock()
	if fn != nil {
		fn(op, time.Since(start), errCode)
	}
}

// NewServer returns an unstarted server for eng.
func NewServer(eng *cdw.Engine) *Server {
	return &Server{eng: eng, conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting connections.
// It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the listener and closes active connections.
func (s *Server) Close() error {
	close(s.done)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // disconnect
		}
		if req.Describe != "" {
			start := time.Now()
			if err := s.serveDescribe(enc, req.Describe); err != nil {
				return
			}
			s.observe("describe", start, 0)
			s.event("describe", req.trace(), time.Since(start), 0)
			continue
		}
		start := time.Now()
		res, err := s.eng.ExecSQL(req.SQL)
		engineDur := time.Since(start)
		var hdr responseHeader
		if err != nil {
			ee := cdw.AsError(err)
			hdr = responseHeader{ErrCode: ee.Code, ErrMsg: ee.Msg, ErrField: ee.Field, ErrRow: ee.Row}
		} else {
			hdr.Activity = res.Activity
			for _, c := range res.Columns {
				hdr.Columns = append(hdr.Columns, colInfo{Name: c.Name, Type: c.Type})
			}
			hdr.HasRows = len(res.Columns) > 0
		}
		hdr.EngineNanos = engineDur.Nanoseconds()
		s.observe("exec", start, hdr.ErrCode)
		s.event("exec", req.trace(), engineDur, hdr.ErrCode)
		if err := enc.Encode(&hdr); err != nil {
			return
		}
		if hdr.ErrCode != 0 || !hdr.HasRows {
			continue
		}
		fetch := req.FetchSize
		if fetch <= 0 {
			fetch = DefaultFetchSize
		}
		rows := res.Rows
		for {
			n := len(rows)
			if n > fetch {
				n = fetch
			}
			batch := rowBatch{Rows: rows[:n], Last: n == len(rows)}
			rows = rows[n:]
			if err := enc.Encode(&batch); err != nil {
				return
			}
			if batch.Last {
				break
			}
		}
	}
}

func (s *Server) serveDescribe(enc *gob.Encoder, name string) error {
	tn := parseTableName(name)
	start := time.Now()
	meta, err := s.eng.Describe(tn)
	var hdr responseHeader
	if err != nil {
		ee := cdw.AsError(err)
		hdr = responseHeader{ErrCode: ee.Code, ErrMsg: ee.Msg}
	} else {
		m := &TableMeta{
			NotNull:    meta.NotNull,
			PrimaryKey: meta.PrimaryKey,
			Unique:     meta.Unique,
			Rows:       meta.Rows,
		}
		for _, c := range meta.Columns {
			m.Columns = append(m.Columns, ResultCol{Name: c.Name, Type: c.Type})
		}
		hdr.Meta = m
	}
	hdr.EngineNanos = time.Since(start).Nanoseconds()
	return enc.Encode(&hdr)
}

func parseTableName(s string) sqlparse.TableName {
	if i := indexByte(s, '.'); i >= 0 {
		return sqlparse.TableName{Schema: s[:i], Name: s[i+1:]}
	}
	return sqlparse.TableName{Name: s}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Client is one CDW connection. A Client is not safe for concurrent use; the
// virtualizer maintains a Pool.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder

	// open cursor state
	cursorOpen bool

	// broken marks a connection whose last round trip hit a transport
	// failure (send/recv error, deadline, or injected fault). The gob
	// stream may be desynchronized, so the connection must be discarded,
	// never recycled — Pool.Put enforces this.
	broken bool

	// timeout, when > 0, bounds each network operation (request send,
	// header recv, and every batch recv) with a connection deadline.
	timeout time.Duration

	// faultHook, when non-nil, is consulted before each round trip with
	// the operation kind ("query", "describe", "fetch"); a non-nil return
	// is surfaced as a transport failure before anything hits the wire.
	faultHook func(op string) error

	// lastEngineNS is the engine latency reported by the most recent
	// response header, splitting a round trip into network and engine time.
	lastEngineNS int64
}

// Dial connects to a CDW server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// SetTimeout bounds each subsequent network operation; zero disables the
// bound.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// SetFaultHook installs the fault-injection hook consulted before each round
// trip.
func (c *Client) SetFaultHook(fn func(op string) error) { c.faultHook = fn }

// Broken reports whether the connection suffered a transport failure and
// must not be reused.
func (c *Client) Broken() bool { return c.broken }

// fault consults the injection hook; an injected fault poisons the
// connection exactly like a real transport failure so the pool's discard
// path is exercised. The error is tagged NotSent — injected faults fire
// before anything hits the wire, so retrying them cannot re-execute a
// statement.
func (c *Client) fault(op string) error {
	if c.faultHook == nil {
		return nil
	}
	if err := c.faultHook(op); err != nil {
		c.broken = true
		return &notSentError{err: fmt.Errorf("cdwnet: %s: %w", op, err)}
	}
	return nil
}

// armDeadline starts the per-operation timeout window.
func (c *Client) armDeadline() {
	if c.timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
}

// notSentError tags a failure that occurred before the request hit the wire
// (an injected fault or a dial failure). Only these are safe for the pool to
// retry blindly: once bytes have been sent, the engine may have executed the
// statement even though the client saw a transport error, and re-running a
// non-idempotent statement would double-apply it.
type notSentError struct{ err error }

func (e *notSentError) Error() string { return e.err.Error() }

// Unwrap exposes the underlying failure so Transient()/Timeout()
// classification still works through errors.As.
func (e *notSentError) Unwrap() error { return e.err }

func (e *notSentError) notSent() {}

// NotSent reports whether err happened before the request reached the wire,
// making a retry safe even for non-idempotent statements.
func NotSent(err error) bool {
	var ns interface{ notSent() }
	return errors.As(err, &ns)
}

// remoteError reconstructs the engine error from a response header.
func remoteError(hdr *responseHeader) error {
	if hdr.ErrCode == 0 {
		return nil
	}
	return &cdw.Error{Code: hdr.ErrCode, Msg: hdr.ErrMsg, Field: hdr.ErrField, Row: hdr.ErrRow}
}

// EngineNanos reports the server-side engine latency of the most recent
// round trip, 0 when unknown.
func (c *Client) EngineNanos() int64 { return c.lastEngineNS }

// Exec runs a statement and drains any rows, returning the activity count.
func (c *Client) Exec(sql string) (int64, error) {
	return c.ExecT(sql, obs.TraceContext{})
}

// ExecT is Exec with a trace context propagated to the server.
func (c *Client) ExecT(sql string, tc obs.TraceContext) (int64, error) {
	cur, err := c.QueryT(sql, 0, tc)
	if err != nil {
		return 0, err
	}
	defer cur.Close()
	for {
		_, ok, err := cur.NextBatch()
		if err != nil {
			return 0, err
		}
		if !ok {
			return cur.Activity(), nil
		}
	}
}

// QueryAll runs a query and materializes all rows.
func (c *Client) QueryAll(sql string) ([]ResultCol, [][]cdw.Datum, error) {
	return c.QueryAllT(sql, obs.TraceContext{})
}

// QueryAllT is QueryAll with a trace context propagated to the server.
func (c *Client) QueryAllT(sql string, tc obs.TraceContext) ([]ResultCol, [][]cdw.Datum, error) {
	cur, err := c.QueryT(sql, 0, tc)
	if err != nil {
		return nil, nil, err
	}
	defer cur.Close()
	var rows [][]cdw.Datum
	for {
		batch, ok, err := cur.NextBatch()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return cur.Columns(), rows, nil
		}
		rows = append(rows, batch...)
	}
}

// ResultCol mirrors cdw.ResultCol for client consumers.
type ResultCol struct {
	Name string
	Type cdw.ColType
}

// Describe fetches table metadata ("schema.name" or "name").
func (c *Client) Describe(table string) (*TableMeta, error) {
	if c.cursorOpen {
		return nil, errors.New("cdwnet: previous cursor still open")
	}
	if err := c.fault("describe"); err != nil {
		return nil, err
	}
	c.armDeadline()
	if err := c.enc.Encode(&request{Describe: table}); err != nil {
		c.broken = true
		return nil, fmt.Errorf("cdwnet: send: %w", err)
	}
	var hdr responseHeader
	if err := c.dec.Decode(&hdr); err != nil {
		c.broken = true
		return nil, fmt.Errorf("cdwnet: recv: %w", err)
	}
	c.lastEngineNS = hdr.EngineNanos
	if err := remoteError(&hdr); err != nil {
		return nil, err
	}
	return hdr.Meta, nil
}

// Cursor streams the result of one query in batches.
type Cursor struct {
	client   *Client
	cols     []ResultCol
	activity int64
	hasRows  bool
	finished bool
}

// Query sends sql and returns a cursor over its result. fetchSize <= 0 uses
// the default.
func (c *Client) Query(sql string, fetchSize int) (*Cursor, error) {
	return c.QueryT(sql, fetchSize, obs.TraceContext{})
}

// QueryT is Query with a trace context propagated to the server.
func (c *Client) QueryT(sql string, fetchSize int, tc obs.TraceContext) (*Cursor, error) {
	if c.cursorOpen {
		return nil, errors.New("cdwnet: previous cursor still open")
	}
	if err := c.fault("query"); err != nil {
		return nil, err
	}
	c.armDeadline()
	req := request{SQL: sql, FetchSize: fetchSize, TraceID: tc.TraceID, SpanID: tc.SpanID, Sampled: tc.Sampled}
	if err := c.enc.Encode(&req); err != nil {
		c.broken = true
		return nil, fmt.Errorf("cdwnet: send: %w", err)
	}
	var hdr responseHeader
	if err := c.dec.Decode(&hdr); err != nil {
		c.broken = true
		return nil, fmt.Errorf("cdwnet: recv: %w", err)
	}
	c.lastEngineNS = hdr.EngineNanos
	if err := remoteError(&hdr); err != nil {
		return nil, err
	}
	cur := &Cursor{client: c, activity: hdr.Activity, hasRows: hdr.HasRows}
	for _, ci := range hdr.Columns {
		cur.cols = append(cur.cols, ResultCol{Name: ci.Name, Type: ci.Type})
	}
	if hdr.HasRows {
		c.cursorOpen = true
	} else {
		cur.finished = true
	}
	return cur, nil
}

// Columns returns the result schema.
func (cur *Cursor) Columns() []ResultCol { return cur.cols }

// Activity returns the statement's activity count.
func (cur *Cursor) Activity() int64 { return cur.activity }

// NextBatch returns the next batch of rows. ok is false once the result is
// exhausted.
func (cur *Cursor) NextBatch() ([][]cdw.Datum, bool, error) {
	if cur.finished {
		return nil, false, nil
	}
	if err := cur.client.fault("fetch"); err != nil {
		cur.finished = true
		cur.client.cursorOpen = false
		return nil, false, err
	}
	cur.client.armDeadline()
	var batch rowBatch
	if err := cur.client.dec.Decode(&batch); err != nil {
		cur.finished = true
		cur.client.cursorOpen = false
		cur.client.broken = true
		if err == io.EOF {
			return nil, false, fmt.Errorf("cdwnet: connection closed mid-result")
		}
		return nil, false, err
	}
	if batch.Last {
		cur.finished = true
		cur.client.cursorOpen = false
	}
	return batch.Rows, true, nil
}

// Close drains any remaining batches so the connection can be reused.
func (cur *Cursor) Close() error {
	for !cur.finished {
		if _, _, err := cur.NextBatch(); err != nil {
			return err
		}
	}
	return nil
}

// Pool is a fixed-size pool of CDW client connections, shared by the
// virtualizer's concurrent jobs.
type Pool struct {
	addr string
	// conns holds idle healthy connections; slots holds dial-capacity
	// tokens. Every live connection owns exactly one token, taken at dial
	// and returned by discard, so a Get blocked on capacity wakes up as
	// soon as a broken connection is discarded.
	conns chan *Client
	slots chan struct{}

	cfgMu     sync.Mutex
	ctx       context.Context
	timeout   time.Duration
	faultHook func(op string) error
	retry     *retrier.Retrier

	obsMu     sync.Mutex
	observer  func(op string, d time.Duration, err error)
	traceHook func(op string, tc obs.TraceContext, start time.Time, d time.Duration, engineNS int64, err error)
}

// SetTimeout bounds each network operation on pooled connections; zero
// disables the bound. Applies to connections dialed after the call.
func (p *Pool) SetTimeout(d time.Duration) {
	p.cfgMu.Lock()
	p.timeout = d
	p.cfgMu.Unlock()
}

// SetFaultHook installs the fault-injection hook propagated to every
// connection the pool dials.
func (p *Pool) SetFaultHook(fn func(op string) error) {
	p.cfgMu.Lock()
	p.faultHook = fn
	p.cfgMu.Unlock()
}

// SetRetrier makes Exec/Describe/QueryAll retry transient transport
// failures on a fresh connection under r's policy. Nil disables retries.
// Retries are further restricted per operation: idempotent round trips
// (Describe, QueryAll) retry any transient failure, while Exec — which may
// carry non-idempotent DML — retries only failures that happened before the
// request hit the wire (NotSent), so a deadline firing after the engine
// executed a statement can never double-apply it.
func (p *Pool) SetRetrier(r *retrier.Retrier) {
	p.cfgMu.Lock()
	p.retry = r
	p.cfgMu.Unlock()
}

// SetContext sets the base context for pooled round trips: backoff waits and
// further retry attempts stop once it is canceled, so node shutdown or job
// abort is not delayed by in-flight recovery. Nil resets to Background.
func (p *Pool) SetContext(ctx context.Context) {
	p.cfgMu.Lock()
	p.ctx = ctx
	p.cfgMu.Unlock()
}

func (p *Pool) context() context.Context {
	p.cfgMu.Lock()
	defer p.cfgMu.Unlock()
	if p.ctx == nil {
		// Documented SetContext(nil) reset: a pool used without a node
		// (tests, standalone tools) falls back to an unbounded context.
		// Every node-owned pool has SetContext wired at construction.
		return context.Background() //nolint:ctxbg // explicit nil-reset fallback, not node-owned I/O
	}
	return p.ctx
}

func (p *Pool) clientConfig() (time.Duration, func(op string) error) {
	p.cfgMu.Lock()
	defer p.cfgMu.Unlock()
	return p.timeout, p.faultHook
}

func (p *Pool) retrier() *retrier.Retrier {
	p.cfgMu.Lock()
	defer p.cfgMu.Unlock()
	return p.retry
}

// SetObserver installs a callback invoked once per pooled round trip with
// the operation kind ("exec", "query" or "describe"), its end-to-end
// latency (including connection checkout), and the resulting error. The
// virtualizer's Beta path wires this into its CDW request metrics.
func (p *Pool) SetObserver(fn func(op string, d time.Duration, err error)) {
	p.obsMu.Lock()
	p.observer = fn
	p.obsMu.Unlock()
}

func (p *Pool) observe(op string, start time.Time, err error) {
	p.obsMu.Lock()
	fn := p.observer
	p.obsMu.Unlock()
	if fn != nil {
		fn(op, time.Since(start), err)
	}
}

// SetTraceHook installs a callback invoked once per traced round trip (ExecT,
// QueryAllT called with a valid context) with the operation kind, the trace
// context it ran under, its wall-clock window, the server-reported engine
// latency, and the resulting error. The virtualizer turns these into child
// spans of the calling job.
func (p *Pool) SetTraceHook(fn func(op string, tc obs.TraceContext, start time.Time, d time.Duration, engineNS int64, err error)) {
	p.obsMu.Lock()
	p.traceHook = fn
	p.obsMu.Unlock()
}

func (p *Pool) traceObserve(op string, tc obs.TraceContext, start time.Time, engineNS int64, err error) {
	if !tc.Valid() {
		return
	}
	p.obsMu.Lock()
	fn := p.traceHook
	p.obsMu.Unlock()
	if fn != nil {
		fn(op, tc, start, time.Since(start), engineNS, err)
	}
}

// NewPool creates a pool of up to size connections to addr. Connections are
// dialed lazily.
func NewPool(addr string, size int) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{addr: addr, conns: make(chan *Client, size), slots: make(chan struct{}, size)}
	for i := 0; i < size; i++ {
		p.slots <- struct{}{}
	}
	return p
}

// Get borrows a connection, dialing a new one if the pool has capacity. When
// the pool is at capacity it blocks until a connection is returned or a
// broken one is discarded (which frees a dial slot).
func (p *Pool) Get() (*Client, error) {
	select {
	case c := <-p.conns:
		return c, nil
	default:
	}
	select {
	case c := <-p.conns:
		return c, nil
	case <-p.slots:
		c, err := Dial(p.addr)
		if err != nil {
			p.slots <- struct{}{}
			// Nothing hit the wire, so the failure is safe to retry.
			return nil, &notSentError{err: err}
		}
		timeout, hook := p.clientConfig()
		c.SetTimeout(timeout)
		c.SetFaultHook(hook)
		return c, nil
	}
}

// Put returns a connection to the pool. A connection whose last round trip
// hit a transport failure (Broken) — or that still has a cursor open — is
// poisoned: its gob stream may be desynchronized, so it is closed and its
// pool slot freed for a fresh dial instead of being recycled.
func (p *Pool) Put(c *Client) {
	if c == nil {
		return
	}
	if c.Broken() || c.cursorOpen {
		p.discard(c)
		return
	}
	select {
	case p.conns <- c:
	default:
		p.discard(c)
	}
}

// discard closes a connection and releases its dial slot, waking any Get
// blocked on capacity.
func (p *Pool) discard(c *Client) {
	c.Close()
	p.slots <- struct{}{}
}

// Close closes all pooled connections.
func (p *Pool) Close() {
	for {
		select {
		case c := <-p.conns:
			c.Close()
		default:
			return
		}
	}
}

// roundTrip borrows a connection, runs fn on it, and returns it — Put
// discards it if fn broke it. With a retrier installed, transient transport
// failures are retried on a fresh connection under the backoff policy —
// any transient failure for idempotent operations, but only failures that
// happened before the request hit the wire (NotSent: injected faults, dial
// errors) otherwise, because a real deadline can fire after the engine
// already executed the statement and a blind retry would double-apply
// non-idempotent DML. Remote engine errors are never retried, so legacy
// per-tuple error semantics are preserved.
func (p *Pool) roundTrip(op string, idempotent bool, fn func(c *Client) error) error {
	attempt := func() error {
		c, err := p.Get()
		if err != nil {
			return err
		}
		err = fn(c)
		p.Put(c)
		return err
	}
	if r := p.retrier(); r != nil {
		base := r.Retryable
		if base == nil {
			base = retrier.IsTransient
		}
		rr := *r
		rr.Retryable = func(err error) bool {
			return base(err) && (idempotent || NotSent(err))
		}
		return rr.Do(p.context(), "cdw."+op, attempt)
	}
	return attempt()
}

// Exec borrows a connection and runs a statement.
func (p *Pool) Exec(sql string) (int64, error) {
	return p.ExecT(sql, obs.TraceContext{})
}

// ExecT is Exec with a trace context propagated to the CDW server and
// reported to the pool's trace hook.
func (p *Pool) ExecT(sql string, tc obs.TraceContext) (int64, error) {
	start := time.Now()
	var n int64
	var engineNS int64
	err := p.roundTrip("exec", false, func(c *Client) error {
		var cerr error
		n, cerr = c.ExecT(sql, tc)
		engineNS = c.EngineNanos()
		return cerr
	})
	p.observe("exec", start, err)
	p.traceObserve("exec", tc, start, engineNS, err)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Describe borrows a connection and fetches table metadata.
func (p *Pool) Describe(table string) (*TableMeta, error) {
	start := time.Now()
	var meta *TableMeta
	err := p.roundTrip("describe", true, func(c *Client) error {
		var cerr error
		meta, cerr = c.Describe(table)
		return cerr
	})
	p.observe("describe", start, err)
	if err != nil {
		return nil, err
	}
	return meta, nil
}

// QueryAll borrows a connection and materializes a query result.
func (p *Pool) QueryAll(sql string) ([]ResultCol, [][]cdw.Datum, error) {
	return p.QueryAllT(sql, obs.TraceContext{})
}

// QueryAllT is QueryAll with a trace context propagated to the CDW server and
// reported to the pool's trace hook.
func (p *Pool) QueryAllT(sql string, tc obs.TraceContext) ([]ResultCol, [][]cdw.Datum, error) {
	start := time.Now()
	var cols []ResultCol
	var rows [][]cdw.Datum
	var engineNS int64
	err := p.roundTrip("query", true, func(c *Client) error {
		var cerr error
		cols, rows, cerr = c.QueryAllT(sql, tc)
		engineNS = c.EngineNanos()
		return cerr
	})
	p.observe("query", start, err)
	p.traceObserve("query", tc, start, engineNS, err)
	if err != nil {
		return nil, nil, err
	}
	return cols, rows, nil
}
