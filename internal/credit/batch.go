package credit

// Batch aggregates credits whose lifetime ends together. A streaming
// micro-batch acquires one credit per delta frame as frames arrive, but the
// frames' memory is only reclaimable once the whole batch commits to the
// CDW — so the stream job parks each credit in a Batch and releases them
// all at the commit (or abort) boundary with one call. ReleaseAll is
// idempotent, which makes defer-based cleanup on abort paths safe alongside
// the explicit release on the commit path, while each underlying Credit is
// still released exactly once (Credit.Release panics on double release).
//
// A Batch is not safe for concurrent use; the stream job serializes frame
// intake and batch commits on one goroutine.
type Batch struct {
	credits []*Credit
}

// Add parks a credit in the batch. Nil credits are ignored so callers can
// pass through optional acquisitions unconditionally.
func (b *Batch) Add(c *Credit) {
	if c != nil {
		b.credits = append(b.credits, c)
	}
}

// Len reports the number of parked credits.
func (b *Batch) Len() int { return len(b.credits) }

// Bytes reports the total bytes charged to the parked credits.
func (b *Batch) Bytes() int64 {
	var n int64
	for _, c := range b.credits {
		n += c.bytes
	}
	return n
}

// ReleaseAll releases every parked credit and empties the batch. Calling it
// again (or on an empty batch) is a no-op.
func (b *Batch) ReleaseAll() {
	for _, c := range b.credits {
		c.Release()
	}
	// Keep the backing array for the next micro-batch; the stream job
	// reuses one Batch for the life of the stream.
	b.credits = b.credits[:0]
}
