package credit

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestAcquireRelease(t *testing.T) {
	m := NewManager(2, 0)
	ctx := context.Background()
	c1, err := m.Acquire(ctx, 100)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.Acquire(ctx, 200)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Available != 0 || st.InFlight != 300 {
		t.Errorf("stats = %+v", st)
	}
	c1.Release()
	c2.Release()
	st = m.Stats()
	if st.Available != 2 || st.InFlight != 0 || st.PeakInFlight != 300 {
		t.Errorf("stats after release = %+v", st)
	}
}

func TestAcquireBlocksUntilRelease(t *testing.T) {
	m := NewManager(1, 0)
	ctx := context.Background()
	c1, err := m.Acquire(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{})
	go func() {
		c2, err := m.Acquire(ctx, 1)
		if err != nil {
			t.Error(err)
			return
		}
		c2.Release()
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("second acquire did not block")
	case <-time.After(50 * time.Millisecond):
	}
	c1.Release()
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("blocked acquire never woke")
	}
	if m.Stats().Waits == 0 {
		t.Error("wait counter not incremented")
	}
}

func TestAcquireContextCancel(t *testing.T) {
	m := NewManager(1, 0)
	c1, _ := m.Acquire(context.Background(), 1)
	defer c1.Release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := m.Acquire(ctx, 1)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled acquire succeeded")
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled acquire never returned")
	}
}

func TestMemoryCapTriggersOOM(t *testing.T) {
	m := NewManager(1000, 1000)
	ctx := context.Background()
	var held []*Credit
	for i := 0; i < 10; i++ {
		c, err := m.Acquire(ctx, 100)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, c)
	}
	if _, err := m.Acquire(ctx, 100); err != ErrOutOfMemory {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	held[0].Release()
	c, err := m.Acquire(ctx, 100)
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	c.Release()
	for _, h := range held[1:] {
		h.Release()
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	m := NewManager(1, 0)
	c, _ := m.Acquire(context.Background(), 1)
	c.Release()
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	c.Release()
}

func TestConservationUnderConcurrency(t *testing.T) {
	const credits = 8
	m := NewManager(credits, 0)
	ctx := context.Background()
	var inUse atomic.Int64
	var maxSeen atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c, err := m.Acquire(ctx, 10)
				if err != nil {
					t.Error(err)
					return
				}
				n := inUse.Add(1)
				for {
					old := maxSeen.Load()
					if n <= old || maxSeen.CompareAndSwap(old, n) {
						break
					}
				}
				inUse.Add(-1)
				c.Release()
			}
		}()
	}
	wg.Wait()
	if got := maxSeen.Load(); got > credits {
		t.Errorf("observed %d concurrent credits, pool has %d", got, credits)
	}
	st := m.Stats()
	if st.Available != credits || st.InFlight != 0 {
		t.Errorf("pool not restored: %+v", st)
	}
}

func TestPropertyPoolNeverExceedsTotal(t *testing.T) {
	f := func(creditsRaw uint8, ops uint8) bool {
		credits := int(creditsRaw%5) + 1
		m := NewManager(credits, 0)
		ctx := context.Background()
		var held []*Credit
		for i := 0; i < int(ops); i++ {
			if len(held) < credits && i%3 != 2 {
				c, err := m.Acquire(ctx, 1)
				if err != nil {
					return false
				}
				held = append(held, c)
			} else if len(held) > 0 {
				held[len(held)-1].Release()
				held = held[:len(held)-1]
			}
			st := m.Stats()
			if st.Available < 0 || st.Available > st.Total {
				return false
			}
			if st.Available+len(held) != st.Total {
				return false
			}
		}
		for _, c := range held {
			c.Release()
		}
		return m.Stats().Available == credits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMinimumOneCredit(t *testing.T) {
	m := NewManager(0, 0)
	if m.Stats().Total != 1 {
		t.Errorf("total = %d, want clamped to 1", m.Stats().Total)
	}
}

func TestAcquireObserver(t *testing.T) {
	m := NewManager(1, 0)
	type obs struct {
		wait    time.Duration
		blocked bool
	}
	var mu sync.Mutex
	var seen []obs
	m.SetObserver(func(wait time.Duration, blocked bool) {
		mu.Lock()
		seen = append(seen, obs{wait, blocked})
		mu.Unlock()
	})

	ctx := context.Background()
	c1, err := m.Acquire(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Second acquire must block until the first credit is released.
	done := make(chan *Credit)
	go func() {
		c2, err := m.Acquire(ctx, 1)
		if err != nil {
			t.Error(err)
		}
		done <- c2
	}()
	time.Sleep(20 * time.Millisecond)
	c1.Release()
	c2 := <-done
	c2.Release()

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("observer calls = %d, want 2", len(seen))
	}
	if seen[0].blocked {
		t.Error("first acquire reported blocked with a free pool")
	}
	if !seen[1].blocked {
		t.Error("second acquire should report blocked")
	}
	if seen[1].wait < 10*time.Millisecond {
		t.Errorf("blocked wait = %v, want >= 10ms", seen[1].wait)
	}
}
