package credit

import (
	"context"
	"testing"
)

func TestBatchReleaseAll(t *testing.T) {
	m := NewManager(4, 0)
	var b Batch
	for i := 0; i < 3; i++ {
		c, err := m.Acquire(context.Background(), 100)
		if err != nil {
			t.Fatal(err)
		}
		b.Add(c)
	}
	if b.Len() != 3 || b.Bytes() != 300 {
		t.Fatalf("batch = %d credits / %d bytes, want 3 / 300", b.Len(), b.Bytes())
	}
	if st := m.Stats(); st.Available != 1 || st.InFlight != 300 {
		t.Fatalf("pool before release: %+v", st)
	}
	b.ReleaseAll()
	if st := m.Stats(); st.Available != 4 || st.InFlight != 0 {
		t.Fatalf("pool after release: %+v", st)
	}
	if b.Len() != 0 {
		t.Fatalf("batch not emptied: %d", b.Len())
	}
}

func TestBatchReleaseAllIdempotent(t *testing.T) {
	m := NewManager(2, 0)
	var b Batch
	c, err := m.Acquire(context.Background(), 50)
	if err != nil {
		t.Fatal(err)
	}
	b.Add(c)
	b.ReleaseAll()
	// Second release must be a no-op, not a Credit double-release panic.
	b.ReleaseAll()
	if st := m.Stats(); st.Available != 2 || st.InFlight != 0 {
		t.Fatalf("pool after double release: %+v", st)
	}
}

func TestBatchIgnoresNil(t *testing.T) {
	var b Batch
	b.Add(nil)
	if b.Len() != 0 {
		t.Fatalf("nil credit parked")
	}
	b.ReleaseAll() // empty batch must be safe
}

func TestBatchReuseAcrossCommits(t *testing.T) {
	m := NewManager(2, 0)
	var b Batch
	for commit := 0; commit < 5; commit++ {
		for i := 0; i < 2; i++ {
			c, err := m.Acquire(context.Background(), 10)
			if err != nil {
				t.Fatal(err)
			}
			b.Add(c)
		}
		b.ReleaseAll()
	}
	if st := m.Stats(); st.Available != 2 || st.InFlight != 0 {
		t.Fatalf("pool leaked across reuse: %+v", st)
	}
}
