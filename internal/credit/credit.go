// Package credit implements the CreditManager of §5: a per-node credit pool
// providing lightweight back-pressure across the acquisition pipeline.
//
// A session must acquire a credit before handing a data chunk to conversion;
// the credit travels with the chunk through the DataConverter and FileWriter
// stages and is released just before the converted data is written to disk.
// When the pool is empty the session blocks, slowing acquisition until the
// downstream stages catch up. One CreditManager is shared by all concurrent
// ETL jobs on a virtualizer node.
//
// The manager also keeps a byte ledger of in-flight chunk memory. When a
// configured memory limit is exceeded the node fails the acquisition — this
// models the out-of-memory crash the paper reports when the pool was sized
// at one million credits (§9, Figure 10).
package credit

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOutOfMemory reports that in-flight chunk bytes exceeded the node's
// memory budget. It corresponds to the Hyper-Q OOM crash in the paper's
// credit-scaling experiment.
var ErrOutOfMemory = errors.New("credit: in-flight data exceeds node memory budget")

// Manager is a credit pool. The zero value is not usable; use NewManager.
type Manager struct {
	mu      sync.Mutex
	cond    *sync.Cond
	total   int
	avail   int
	inFlite int64 // bytes currently charged to credits
	memCap  int64 // 0 = unlimited

	waits    atomic.Int64 // number of Acquire calls that blocked
	acquires atomic.Int64
	peak     int64 // max observed in-flight bytes (under mu)

	observer func(wait time.Duration, blocked bool) // under mu
}

// SetObserver installs a callback invoked after every successful Acquire
// with the time the caller spent waiting for a credit and whether it had to
// block at all. The virtualizer node wires this into its credit-wait
// histogram; nil disables observation.
func (m *Manager) SetObserver(fn func(wait time.Duration, blocked bool)) {
	m.mu.Lock()
	m.observer = fn
	m.mu.Unlock()
}

// NewManager returns a pool with the given number of credits and an optional
// in-flight memory cap in bytes (0 disables the cap).
func NewManager(credits int, memCap int64) *Manager {
	if credits < 1 {
		credits = 1
	}
	m := &Manager{total: credits, avail: credits, memCap: memCap}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Credit is an acquired credit charged with the bytes of one chunk. Release
// it exactly once.
type Credit struct {
	m     *Manager
	bytes int64
	done  bool
}

// Acquire blocks until a credit is available or ctx is cancelled. bytes is
// the chunk size charged to the node's memory ledger. If accepting the chunk
// would exceed the memory cap, Acquire fails with ErrOutOfMemory — the
// paper's unbounded-credit failure mode.
func (m *Manager) Acquire(ctx context.Context, bytes int64) (*Credit, error) {
	start := time.Now()
	m.acquires.Add(1)
	m.mu.Lock()
	blocked := false
	for m.avail == 0 {
		if !blocked {
			blocked = true
			m.waits.Add(1)
		}
		if err := ctx.Err(); err != nil {
			m.mu.Unlock()
			return nil, err
		}
		// cond.Wait cannot watch ctx directly; poke waiters on cancellation.
		stop := watchCtx(ctx, m.cond)
		m.cond.Wait()
		stop()
	}
	if err := ctx.Err(); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	if m.memCap > 0 && m.inFlite+bytes > m.memCap {
		m.mu.Unlock()
		return nil, ErrOutOfMemory
	}
	m.avail--
	m.inFlite += bytes
	if m.inFlite > m.peak {
		m.peak = m.inFlite
	}
	observer := m.observer
	m.mu.Unlock()
	if observer != nil {
		observer(time.Since(start), blocked)
	}
	return &Credit{m: m, bytes: bytes}, nil
}

// watchCtx wakes all cond waiters when ctx is cancelled, so a blocked
// Acquire can observe the cancellation. The returned stop function must be
// called after the wait.
func watchCtx(ctx context.Context, cond *sync.Cond) func() {
	if ctx.Done() == nil {
		return func() {}
	}
	stopc := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			cond.Broadcast()
		case <-stopc:
		}
	}()
	return func() { close(stopc) }
}

// Release returns the credit to the pool. Releasing twice panics: it would
// silently inflate the pool.
func (c *Credit) Release() {
	if c.done {
		panic("credit: double release")
	}
	c.done = true
	m := c.m
	m.mu.Lock()
	m.avail++
	m.inFlite -= c.bytes
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Stats is a snapshot of pool counters.
type Stats struct {
	Total        int
	Available    int
	InFlight     int64 // bytes charged to outstanding credits
	PeakInFlight int64
	Acquires     int64
	Waits        int64 // acquires that had to block
}

// Stats returns a snapshot of the pool.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Total:        m.total,
		Available:    m.avail,
		InFlight:     m.inFlite,
		PeakInFlight: m.peak,
		Acquires:     m.acquires.Load(),
		Waits:        m.waits.Load(),
	}
}
