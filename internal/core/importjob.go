package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cdwnet"
	"etlvirt/internal/convert"
	"etlvirt/internal/credit"
	"etlvirt/internal/errhandle"
	"etlvirt/internal/fwriter"
	"etlvirt/internal/obs"
	"etlvirt/internal/retrier"
	"etlvirt/internal/sqlparse"
	"etlvirt/internal/sqlxlate"
	"etlvirt/internal/tune"
	"etlvirt/internal/wire"
)

// convTask is one data chunk travelling from a session to a DataConverter.
// The owns directive on payload is the machine-checked form of the pipeline
// hand-off contract: a goroutine receiving a convTask owns the pooled
// payload buffer and must release or forward it on every path (bufown).
type convTask struct {
	payload  []byte //etlvirt:owns
	firstRow int64
	credit   *credit.Credit
	done     chan struct{} // non-nil in synchronous-acquisition mode
}

// writeTask is one converted chunk travelling to a FileWriter, which owns
// the pooled CSV buffer from receipt until its putBuf.
type writeTask struct {
	csv    []byte //etlvirt:owns
	rows   int
	credit *credit.Credit
	done   chan struct{} // closed once the chunk is on disk
}

// importJob is the state of one virtualized import. Its pipeline mirrors
// Figure 2(a): session handlers feed DataConverter workers through convCh,
// converters feed FileWriter goroutines, writers hand finished files to
// upload workers, and the final COPY moves everything into the staging
// table.
type importJob struct {
	id   uint64
	node *Node
	req  *wire.BeginLoad

	stage   sqlparse.TableName
	etName  sqlparse.TableName
	uvName  sqlparse.TableName
	tr      *sqlxlate.Translator
	conv    *convert.Converter
	keyPfx  string // object-store prefix for this job's files
	targets string // rendered target table name for error messages

	convCh   chan convTask
	writeChs []chan writeTask
	uploadCh chan fwriter.FinishedFile
	convWG   sync.WaitGroup
	writeWG  sync.WaitGroup
	uploadWG sync.WaitGroup

	// copy scheduler (incremental manifest COPY while acquisition runs)
	copyableCh chan string // uploaded object names ready to COPY; nil = serialized
	schedWG    sync.WaitGroup
	landed     []copyBatch // manifest batches COPYed into staging; scheduler-then-finisher owned
	stagedN    int64       // rows landed across batches; same ownership as landed
	copyQueue  atomic.Int64
	batchesN   atomic.Int64 // incremental COPY batches issued (live, for debug)

	// dynamic uploader pool
	upMu     sync.Mutex
	upLive   int  // uploader goroutines currently running
	upClosed bool // uploadCh closed; no more resizing
	upQuit   chan struct{}
	upSeq    atomic.Int64

	// adaptive staging-lane tuner; nil when AdaptiveStaging is off. The knob
	// atomics are the tuner's outputs, polled by writers and the scheduler.
	tuner        *tune.ImportTuner
	tunerStop    chan struct{}
	tunerWG      sync.WaitGroup
	tuneMu       sync.Mutex
	tuneSnap     tune.ImportSnapshot
	spoolBytesN  atomic.Int64
	gzipLevelN   atomic.Int64 // 0 = uncompressed
	copyFilesN   atomic.Int64
	spoolBusyNs  atomic.Int64 // FileWriter busy time (append + rotate + gzip)
	upBusyNs     atomic.Int64 // uploader busy time
	fileLatNs    atomic.Int64 // summed per-file upload latency
	fileLatCount atomic.Int64

	// pending counts chunks acknowledged but not yet handed to convCh.
	pending sync.WaitGroup

	memfs *fwriter.MemFS // nil when spooling to disk
	osDir string

	rr atomic.Uint64 // round-robin for writer selection

	mu         sync.Mutex
	dataErrors []convert.DataError
	failure    error // first pipeline failure; poisons the job

	// maxSeq and acqFromNs are updated lock-free on every chunk (CAS loops
	// in handleChunk) so concurrent session goroutines never contend on
	// j.mu for the per-chunk bookkeeping.
	maxSeq    atomic.Int64
	acqFromNs atomic.Int64 // UnixNano of the first data chunk; 0 = none yet

	chunks      atomic.Int64
	bytesIn     atomic.Int64
	rowsIn      atomic.Int64
	rowsConv    atomic.Int64
	filesW      atomic.Int64 // intermediate files finalized
	files       atomic.Int64 // files uploaded
	upBytes     atomic.Int64
	stmts       atomic.Int64 // application DML statements issued so far
	errsETLive  atomic.Int64
	errsUVLive  atomic.Int64
	creditsHeld atomic.Int64
	acqDone     atomic.Bool // acquisition finalized, observable lock-free
	aborted     atomic.Bool
	acquireMu   sync.Mutex
	acquired    bool      // acquisition finalized
	drain       sync.Once // pipeline teardown
	finishSeq   sync.Once // report filing + table cleanup

	trace  *obs.JobTrace
	watch  stopwatch
	report JobReport
}

func (n *Node) newImportJob(m *wire.BeginLoad, tc obs.TraceContext) (*importJob, error) {
	if m.Layout == nil {
		return nil, fmt.Errorf("load request carries no layout")
	}
	conv, err := convert.NewConverter(m.Layout, m.Format, m.Delim, n.cfg.ConvertOpts)
	if err != nil {
		return nil, err
	}
	id := n.nextJob.Add(1)
	target := parseQualifiedName(m.Table)
	j := &importJob{
		id:      id,
		node:    n,
		req:     m,
		conv:    conv,
		stage:   sqlparse.TableName{Schema: n.cfg.StagingSchema, Name: fmt.Sprintf("job_%d", id)},
		etName:  parseQualifiedName(m.ErrTableET),
		uvName:  parseQualifiedName(m.ErrTableUV),
		keyPfx:  fmt.Sprintf("%s%d/", n.cfg.UploadPrefix, id),
		targets: target.String(),
	}
	j.watch.start = time.Now()
	n.nm.jobsStarted.Inc()
	j.trace = n.tracer.StartCtx(id, "import "+j.targets, tc)
	n.events.Add(obs.Event{
		Type: "job_start", Job: id, TraceID: j.traceID(),
		Msg: "import " + j.targets,
	})
	setupStart := time.Now()
	j.tr = &sqlxlate.Translator{
		Stage:      j.stage,
		StageAlias: "s",
		Layout:     m.Layout,
		SchemaMap:  n.cfg.SchemaMap,
	}

	// create staging and error tables
	ddl, err := sqlxlate.StagingDDL(j.stage, m.Layout)
	if err != nil {
		// The job trace is already open; settle it or the span leaks and
		// the SLO report under-counts failed setups forever.
		n.tracer.Finish(id)
		return nil, err
	}
	stmts := []string{
		dropIfExists(j.stage), ddl,
	}
	for _, et := range []sqlparse.TableName{j.etName, j.uvName} {
		if et.Name == "" {
			continue
		}
		etDDL, err := sqlxlate.ErrorTableDDL(et)
		if err != nil {
			n.tracer.Finish(id)
			return nil, err
		}
		stmts = append(stmts, dropIfExists(et), etDDL)
	}
	for _, s := range stmts {
		if _, err := n.pool.ExecT(s, j.trace.ChildContext()); err != nil {
			n.events.Add(obs.Event{
				Type: "job_fail", Job: id, TraceID: j.traceID(),
				Msg: "preparing job tables", Attrs: map[string]any{"err": err.Error()},
			})
			n.tracer.Finish(id)
			return nil, fmt.Errorf("preparing job tables: %w", err)
		}
	}
	j.trace.Span("setup", "session", setupStart, 0, 0, nil)

	// spin up the pipeline
	cfg := n.cfg
	j.convCh = make(chan convTask, cfg.Converters)
	j.uploadCh = make(chan fwriter.FinishedFile, cfg.FileWriters*2)
	if cfg.SpoolDir == "" {
		// Pre-size spool buffers from the rotation threshold: files rotate
		// shortly after crossing it, so this is the file's final size plus
		// slack (much less when gzip shrinks what actually lands in memory).
		hint := cfg.FileSizeThreshold + cfg.FileSizeThreshold/8
		if cfg.Gzip {
			hint = cfg.FileSizeThreshold / 4
		}
		j.memfs = fwriter.NewMemFSSized(hint)
	} else {
		j.osDir = cfg.SpoolDir
	}
	// Knob atomics seed from the static config; the tuner (when on) retunes
	// them each tick and the stage goroutines poll them.
	j.spoolBytesN.Store(int64(cfg.FileSizeThreshold))
	j.gzipLevelN.Store(int64(staticGzipLevel(cfg)))
	j.copyFilesN.Store(int64(cfg.CopyBatchFiles))
	j.upQuit = make(chan struct{}, 64)
	if !cfg.SerializedCopy {
		j.copyableCh = make(chan string, cfg.FileWriters*4)
		j.schedWG.Add(1)
		// Bounded by the upload stage: drainPipeline closes copyableCh after
		// the uploaders exit, which ends the scheduler loop.
		go j.runCopyScheduler() //nolint:goroleak // job-bounded; drainPipeline closes copyableCh
	}
	if cfg.AdaptiveStaging {
		j.tuner = tune.NewImportTuner(tune.ImportConfig{
			InitialWorkers:    cfg.UploadParallelism,
			InitialSpoolBytes: cfg.FileSizeThreshold,
			InitialCopyFiles:  cfg.CopyBatchFiles,
			InitialGzipLevel:  staticGzipLevel(cfg),
		})
		j.tuneSnap = j.tuner.Snapshot()
		j.tunerStop = make(chan struct{})
		j.tunerWG.Add(1)
		// Bounded by the job: drainPipeline closes tunerStop first.
		go j.runTuner(cfg.TunerInterval) //nolint:goroleak // job-bounded; drainPipeline closes tunerStop
	}
	for w := 0; w < cfg.FileWriters; w++ {
		ch := make(chan writeTask, 2)
		j.writeChs = append(j.writeChs, ch)
		j.writeWG.Add(1)
		go j.runFileWriter(w, ch)
	}
	for i := 0; i < cfg.Converters; i++ {
		j.convWG.Add(1)
		go j.runConverter(i)
	}
	for u := 0; u < cfg.UploadParallelism; u++ {
		j.upLive++
		j.upSeq.Store(int64(u))
		j.uploadWG.Add(1)
		go j.runUploader(u)
	}

	n.mu.Lock()
	n.imports[id] = j
	n.mu.Unlock()
	return j, nil
}

func dropIfExists(tn sqlparse.TableName) string {
	s, _ := sqlparse.Print(&sqlparse.DropTableStmt{Table: tn, IfExists: true}, sqlparse.DialectCDW)
	return s
}

func (j *importJob) fail(err error) {
	j.mu.Lock()
	first := j.failure == nil
	if first {
		j.failure = err
	}
	j.mu.Unlock()
	if first {
		j.node.nm.jobsFailed.Inc()
	}
	j.node.log.Error("import job failed", "job", j.id, "err", err)
}

// releaseCredit returns a credit to the pool and updates the live held count
// surfaced by /jobs/active.
func (j *importJob) releaseCredit(cr *credit.Credit) {
	cr.Release()
	j.creditsHeld.Add(-1)
}

func (j *importJob) failed() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failure
}

// traceID renders the job's distributed trace ID for event records.
func (j *importJob) traceID() string {
	tc := j.trace.Context()
	if !tc.Valid() {
		return ""
	}
	return obs.FormatTraceID(tc.TraceID)
}

// handleChunk is called by a session goroutine: the chunk has already been
// acknowledged; acquire a credit (the back-pressure point, §5) and hand the
// payload to the conversion stage. The owns directive seeds bufown: the
// pooled payload buffer arrives owned and must leave through putBuf or a
// hand-off on every path.
//
//etlvirt:owns m.Payload
func (j *importJob) handleChunk(m *wire.DataChunk, done chan struct{}) error {
	j.chunks.Add(1)
	j.bytesIn.Add(int64(len(m.Payload)))
	j.rowsIn.Add(int64(m.Count))
	nm := j.node.nm
	nm.chunks.Inc()
	nm.bytesIn.Add(int64(len(m.Payload)))
	nm.rowsIn.Add(int64(m.Count))
	top := int64(m.FirstRow + uint64(m.Count) - 1)
	for {
		cur := j.maxSeq.Load()
		if top <= cur || j.maxSeq.CompareAndSwap(cur, top) {
			break
		}
	}
	if j.acqFromNs.Load() == 0 {
		// First chunk starts the acquisition stopwatch; losing the CAS just
		// means another session's chunk arrived first.
		j.acqFromNs.CompareAndSwap(0, time.Now().UnixNano())
	}

	// The wait is bounded by the node lifetime: Close cancels n.ctx, which
	// wakes blocked acquisitions so shutdown never hangs on back-pressure.
	waitStart := time.Now()
	cr, err := j.node.credits.Acquire(j.node.ctx, int64(len(m.Payload)))
	j.trace.Span("credit_wait", "session", waitStart, int64(m.Count), int64(len(m.Payload)), err)
	if err != nil {
		putBuf(m.Payload) // never reached the converter; recycle here
		j.fail(err)
		j.pending.Done()
		if done != nil {
			close(done)
		}
		return err
	}
	j.creditsHeld.Add(1)
	// Ownership of m.Payload transfers to the conversion stage with this
	// send; the session goroutine must not touch it afterwards.
	j.convCh <- convTask{payload: m.Payload, firstRow: int64(m.FirstRow), credit: cr, done: done}
	j.pending.Done()
	return nil
}

func (j *importJob) runConverter(idx int) {
	defer j.convWG.Done()
	nm := j.node.nm
	lane := fmt.Sprintf("convert-%d", idx)
	for task := range j.convCh {
		convStart := time.Now()
		payloadLen := len(task.payload)
		// The CSV buffer comes from the pool; ConvertInto appends into it and
		// hands it back as res.CSV.
		dst := getBuf(payloadLen + payloadLen/4)
		res, err := j.conv.ConvertInto(dst, task.payload, task.firstRow)
		// ConvertInto works on a private copy, so the payload buffer is
		// recyclable the moment it returns.
		putBuf(task.payload)
		nm.convertLat.ObserveDuration(time.Since(convStart))
		if err != nil {
			// ConvertInto hands the buffer back in the Result even on
			// error; recycle it or the pool shrinks by one chunk per
			// failure.
			putBuf(res.CSV)
			j.trace.Span("convert", lane, convStart, 0, int64(payloadLen), err)
			j.releaseCredit(task.credit)
			j.fail(err)
			if task.done != nil {
				close(task.done)
			}
			continue
		}
		j.trace.Span("convert", lane, convStart, int64(res.Rows), int64(payloadLen), nil)
		if len(res.Errors) > 0 {
			nm.dataErrors.Add(int64(len(res.Errors)))
			j.mu.Lock()
			j.dataErrors = append(j.dataErrors, res.Errors...)
			j.mu.Unlock()
		}
		j.rowsConv.Add(int64(res.Rows))
		nm.rowsConverted.Add(int64(res.Rows))
		if res.Rows == 0 {
			putBuf(res.CSV) // no writer will consume it
			j.releaseCredit(task.credit)
			if task.done != nil {
				close(task.done)
			}
			continue
		}
		// Ownership of res.CSV transfers to the file-writer stage; it returns
		// the buffer to the pool once the bytes are on disk.
		w := int(j.rr.Add(1)) % len(j.writeChs)
		j.writeChs[w] <- writeTask{csv: res.CSV, rows: res.Rows, credit: task.credit, done: task.done}
	}
}

func (j *importJob) runFileWriter(idx int, ch chan writeTask) {
	defer j.writeWG.Done()
	nm := j.node.nm
	lane := fmt.Sprintf("write-%d", idx)
	var fs fwriter.FS
	if j.memfs != nil {
		fs = j.memfs
	} else {
		fs = fwriter.OSFS{Dir: j.osDir}
	}
	w := fwriter.NewWriter(fs, fwriter.Config{
		SizeThreshold: j.node.cfg.FileSizeThreshold,
		Gzip:          j.node.cfg.Gzip,
		GzipLevel:     j.node.cfg.GzipLevel,
		NamePrefix:    fmt.Sprintf("job%d-w%d-", j.id, idx),
		OnRotate: func(f fwriter.FinishedFile, d time.Duration) {
			nm.rotateLat.ObserveDuration(d)
			nm.filesWritten.Inc()
			j.filesW.Add(1)
			j.trace.Add(obs.Span{Stage: "rotate", Worker: lane,
				Start: time.Now().Add(-d), Dur: d, Rows: int64(f.Rows), Bytes: int64(f.Bytes)})
		},
	})
	for task := range ch {
		if j.tuner != nil {
			// Adopt the tuner's current spool geometry; threshold changes act
			// on the in-progress file, codec changes at its next open.
			if v := int(j.spoolBytesN.Load()); v > 0 {
				w.SetSizeThreshold(v)
			}
			lvl := int(j.gzipLevelN.Load())
			w.SetGzip(lvl > 0, lvl)
		}
		// The credit returns to the pool just before the data is written to
		// disk (§5, Figure 4).
		j.releaseCredit(task.credit)
		writeStart := time.Now()
		csvBytes := int64(len(task.csv))
		err := w.Write(task.csv, task.rows)
		// Write copies the bytes into the spool file, so the CSV buffer's
		// trip through the pipeline ends here. The span reads the length
		// captured above: after putBuf the pool may recycle the buffer into
		// another chunk, so task.csv must not be touched again.
		putBuf(task.csv)
		j.spoolBusyNs.Add(int64(time.Since(writeStart)))
		j.trace.Span("write", lane, writeStart, int64(task.rows), csvBytes, err)
		if task.done != nil {
			close(task.done)
		}
		if err != nil {
			j.fail(err)
			continue
		}
		for _, f := range w.TakeFinished() {
			j.uploadCh <- f
		}
	}
	files, err := w.Flush()
	if err != nil {
		j.fail(err)
		return
	}
	for _, f := range files {
		j.uploadCh <- f
	}
}

func (j *importJob) runUploader(idx int) {
	defer j.uploadWG.Done()
	nm := j.node.nm
	lane := fmt.Sprintf("upload-%d", idx)
	for {
		var f fwriter.FinishedFile
		select {
		case <-j.upQuit:
			// Tuner-driven shrink: retire this worker unless it is the last
			// one (the pool never drops below one live uploader). The
			// decrement happens under the same lock as the decision so two
			// workers racing on stale tokens cannot both retire past the
			// floor.
			j.upMu.Lock()
			if j.upLive > 1 {
				j.upLive--
				j.upMu.Unlock()
				return
			}
			j.upMu.Unlock()
			continue
		case got, ok := <-j.uploadCh:
			if !ok {
				j.upMu.Lock()
				j.upLive--
				j.upMu.Unlock()
				return
			}
			f = got
		}
		key := j.keyPfx + f.Name
		upStart := time.Now()
		var err error
		var n int64
		if j.memfs != nil {
			data, ok := j.memfs.Bytes(f.Name)
			if !ok {
				j.fail(fmt.Errorf("finished file %s missing from spool", f.Name))
				continue
			}
			// Puts are idempotent (same key, same bytes), so transient store
			// failures are retried whole-file.
			err = j.node.retry.Do(j.node.ctx, "upload", func() error {
				var uerr error
				n, uerr = j.node.loader.UploadBytes(data, key)
				return uerr
			})
			j.memfs.Remove(f.Name)
		} else {
			path := j.osDir + "/" + f.Name
			err = j.node.retry.Do(j.node.ctx, "upload", func() error {
				var uerr error
				n, uerr = j.node.loader.UploadFile(path, key)
				return uerr
			})
		}
		upDur := time.Since(upStart)
		nm.uploadLat.ObserveDuration(upDur)
		j.upBusyNs.Add(int64(upDur))
		j.fileLatNs.Add(int64(upDur))
		j.fileLatCount.Add(1)
		j.trace.Span("upload", lane, upStart, int64(f.Rows), n, err)
		if err != nil {
			j.fail(fmt.Errorf("uploading %s: %w", f.Name, err))
			continue
		}
		j.files.Add(1)
		j.upBytes.Add(n)
		nm.filesUploaded.Inc()
		nm.bytesUploaded.Add(n)
		if j.copyableCh != nil {
			// Hand the landed object to the copy scheduler; the send blocks
			// only while a COPY batch is in flight, which is the lane's
			// natural back-pressure.
			landed := f.Name
			j.copyQueue.Add(1)
			j.copyableCh <- landed
		}
	}
}

// finishAcquisition drains the pipeline, uploads remaining files, COPYs the
// staged data into the staging table, and records acquisition data errors.
func (j *importJob) finishAcquisition() (*wire.AcquireDone, error) {
	j.acquireMu.Lock()
	defer j.acquireMu.Unlock()
	if j.acquired {
		return j.acquireReply(), nil
	}
	j.drainPipeline()
	if err := j.failed(); err != nil {
		return nil, err
	}

	if j.copyableCh == nil {
		// Serialized ablation: everything lands in one monolithic prefix COPY
		// now that the pipeline has drained.
		if _, err := j.copyWithRecovery(nil); err != nil {
			return nil, fmt.Errorf("COPY into staging failed: %w", err)
		}
	}
	// In scheduler mode every uploaded file has passed through the copy
	// scheduler by now (drainPipeline joins it after the uploaders), so
	// stagedN already covers the barrier sweep.
	if staged := j.stagedN; staged != j.rowsConv.Load() {
		return nil, fmt.Errorf("staging row count %d does not match converted %d", staged, j.rowsConv.Load())
	}

	// record acquisition data errors in the ET table
	j.mu.Lock()
	dataErrs := j.dataErrors
	j.mu.Unlock()
	if err := recordDataErrors(j.node, j.etName, j.trace.ChildContext(), dataErrs); err != nil {
		return nil, err
	}
	j.watch.acqTo = time.Now()
	j.acquired = true
	j.acqDone.Store(true)
	return j.acquireReply(), nil
}

// copyBatch is one landed staging COPY: the manifest (object names relative
// to the job's upload prefix; nil for a whole-prefix COPY) and the row count
// the COPY reported.
type copyBatch struct {
	files []string
	rows  int64
}

// copySQL renders the staging COPY for one manifest. A nil manifest copies
// the whole upload prefix (the serialized path); manifest COPYs rely on the
// engine's per-file .gz suffix detection, since a manifest may mix
// compression levels when the tuner moves the gzip ladder mid-job.
func (j *importJob) copySQL(files []string) (string, error) {
	st := &sqlparse.CopyStmt{
		Table:   j.stage,
		From:    "store://" + j.keyPfx,
		Files:   files,
		Options: map[string]string{"format": "csv", "order": sqlxlate.SeqColumn},
	}
	if files == nil && j.node.cfg.Gzip {
		st.Options["gzip"] = "true"
	}
	return sqlparse.Print(st, sqlparse.DialectCDW)
}

// copyWithRecovery lands one COPY batch (a file manifest, or the whole
// prefix when files is nil) under the node's retry policy. Transient
// transport failures are already retried inside the pool; this layer
// additionally recovers engine-side COPY failures (the CDW reading a faulted
// object store) by recreating the staging table before re-running the
// statement — and, with incremental batches, replaying every batch that
// already landed so the recreated table holds exactly what it held before
// the failing attempt. Each landed batch is recorded once, so recovery
// replays are exactly-once regardless of how many attempts it takes. Engine
// errors other than CodeCopyFailed surface immediately.
//
// Only one goroutine issues COPYs at a time (the scheduler during
// acquisition, finishAcquisition after it joins), so landed/stagedN need no
// lock.
func (j *importJob) copyWithRecovery(files []string) (int64, error) {
	nm := j.node.nm
	var staged int64
	attempt := 0
	r := *j.node.retry // shares Budget/observers; only Retryable differs
	r.Retryable = func(err error) bool {
		if retrier.IsTransient(err) {
			return true
		}
		var ce *cdw.Error
		return errors.As(err, &ce) && ce.Code == cdw.CodeCopyFailed
	}
	// COPY is made idempotent by the recovery step above each re-attempt
	// (drop + recreate staging + replay landed batches), so retrying Exec
	// here cannot double-apply.
	err := r.Do(j.node.ctx, "copy", func() error { //nolint:retrysafe // COPY re-runs against a recreated staging table
		attempt++
		if attempt > 1 {
			// recovery point: wipe any partial staging state, then rebuild it
			// from the landed-batch log before re-running this batch
			recStart := time.Now()
			nm.copyRecoveries.Inc()
			if _, err := j.node.pool.ExecT(dropIfExists(j.stage), j.trace.ChildContext()); err != nil {
				return err
			}
			ddl, err := sqlxlate.StagingDDL(j.stage, j.req.Layout)
			if err != nil {
				return err
			}
			if _, err := j.node.pool.ExecT(ddl, j.trace.ChildContext()); err != nil {
				return err
			}
			for i := range j.landed {
				b := &j.landed[i]
				sql, err := j.copySQL(b.files)
				if err != nil {
					return err
				}
				rows, err := j.node.pool.ExecT(sql, j.trace.ChildContext())
				if err != nil {
					return err
				}
				nm.copyReplays.Inc()
				if rows != b.rows {
					return fmt.Errorf("replaying COPY batch landed %d rows, originally %d", rows, b.rows)
				}
			}
			j.trace.Span("copy_retry", "stage", recStart, 0, 0, nil)
		}
		sql, err := j.copySQL(files)
		if err != nil {
			return err
		}
		copyStart := time.Now()
		staged, err = j.node.pool.ExecT(sql, j.trace.ChildContext())
		nm.copyStatements.Inc()
		j.trace.Span("copy", "stage", copyStart, staged, j.upBytes.Load(), err)
		return err
	})
	if err != nil {
		return 0, err
	}
	if files != nil {
		j.landed = append(j.landed, copyBatch{files: files, rows: staged})
	}
	j.stagedN += staged
	return staged, err
}

func (j *importJob) acquireReply() *wire.AcquireDone {
	return &wire.AcquireDone{
		JobID:      j.id,
		RowsStaged: uint64(j.rowsConv.Load()),
		DataErrors: uint64(len(j.dataErrors)),
	}
}

// drainPipeline stops the conversion/write/upload/copy stages and waits for
// them to exit. Idempotent; safe after a client disconnect.
func (j *importJob) drainPipeline() {
	j.drain.Do(func() {
		// Stop the tuner first so nothing resizes the uploader pool or moves
		// knobs while the stages wind down.
		if j.tunerStop != nil {
			close(j.tunerStop)
			j.tunerWG.Wait()
		}
		j.pending.Wait()
		close(j.convCh)
		j.convWG.Wait()
		for _, ch := range j.writeChs {
			close(ch)
		}
		j.writeWG.Wait()
		j.upMu.Lock()
		j.upClosed = true
		j.upMu.Unlock()
		close(j.uploadCh)
		j.uploadWG.Wait()
		if j.copyableCh != nil {
			// Every upload has landed; closing the channel makes the
			// scheduler sweep its remaining manifest as the barrier COPY.
			close(j.copyableCh)
			j.schedWG.Wait()
		}
	})
}

// abort tears down a job whose client went away: the pipeline is drained and
// the job's CDW state removed, without running COPY or the application
// phase.
func (j *importJob) abort() {
	j.aborted.Store(true)
	j.node.nm.jobsAborted.Inc()
	j.acquireMu.Lock()
	j.drainPipeline()
	j.acquireMu.Unlock()
	j.node.log.Warn("import job aborted by client disconnect", "job", j.id)
	j.finish()
}

// errInsertBatch is how many error rows one INSERT into an error table
// carries: large enough that error-heavy jobs don't serialize thousands of
// pool round trips, small enough to keep statements readable in traces.
const errInsertBatch = 100

// errorRow builds one error-table tuple.
func errorRow(lo, hi int64, code int, field, msg string) []sqlparse.Expr {
	return []sqlparse.Expr{
		&sqlparse.Literal{Kind: sqlparse.LitInt, Int: lo},
		&sqlparse.Literal{Kind: sqlparse.LitInt, Int: hi},
		&sqlparse.Literal{Kind: sqlparse.LitInt, Int: int64(code)},
		&sqlparse.Literal{Kind: sqlparse.LitString, Str: field},
		&sqlparse.Literal{Kind: sqlparse.LitString, Str: msg},
	}
}

// recordError inserts one entry into an error table. Shared by the discrete
// import path and the streaming path. tc ties the insert's CDW round trip to
// the owning job's trace; a zero context records untraced.
func recordError(n *Node, table sqlparse.TableName, tc obs.TraceContext, lo, hi int64, code int, field, msg string) error {
	ins := &sqlparse.InsertStmt{
		Table: table,
		Rows:  [][]sqlparse.Expr{errorRow(lo, hi, code, field, msg)},
	}
	sql, err := sqlparse.Print(ins, sqlparse.DialectCDW)
	if err != nil {
		return err
	}
	_, err = n.pool.ExecT(sql, tc)
	return err
}

// recordDataErrors inserts acquisition data errors into an error table in
// multi-row batches of errInsertBatch, one round trip per batch.
func recordDataErrors(n *Node, table sqlparse.TableName, tc obs.TraceContext, errs []convert.DataError) error {
	for len(errs) > 0 {
		take := len(errs)
		if take > errInsertBatch {
			take = errInsertBatch
		}
		ins := &sqlparse.InsertStmt{Table: table}
		for _, de := range errs[:take] {
			ins.Rows = append(ins.Rows, errorRow(de.Row, de.Row, de.Code, de.Field, de.Msg))
		}
		sql, err := sqlparse.Print(ins, sqlparse.DialectCDW)
		if err != nil {
			return err
		}
		if _, err := n.pool.ExecT(sql, tc); err != nil {
			return err
		}
		errs = errs[take:]
	}
	return nil
}

// applyDML runs the application phase: translate the legacy DML, set up
// uniqueness emulation for inserts into keyed tables, and drive the adaptive
// error handler over the staged row range.
func (j *importJob) applyDML(m *wire.ApplyDML) (*wire.ApplyResult, error) {
	if !j.acquired {
		return nil, fmt.Errorf("apply requested before acquisition finished")
	}
	j.watch.appFrom = time.Now()
	dml, err := j.tr.TranslateDML(m.SQL)
	if err != nil {
		return nil, fmt.Errorf("cross-compiling DML: %w", err)
	}

	// Uniqueness emulation (§7): the CDW does not enforce the target's
	// declared key, so collisions must be detected with queries.
	var intraQ, targetQ *sqlxlate.RangeStmt
	if dml.Kind == sqlxlate.DMLInsert {
		meta, err := j.node.pool.Describe(dml.Target.String())
		if err != nil {
			return nil, fmt.Errorf("describing target: %w", err)
		}
		if len(meta.PrimaryKey) > 0 {
			keyExprs, keyCols := keyExprsFor(dml, meta)
			if len(keyExprs) > 0 {
				if intraQ, targetQ, err = j.tr.DupCheckQueries(dml, keyCols, keyExprs); err != nil {
					return nil, err
				}
			}
		}
	}

	var upsertUpdated, upsertInserted int64
	apply := func(ctx context.Context, lo, hi int64) (int64, error) {
		for _, q := range []*sqlxlate.RangeStmt{intraQ, targetQ} {
			if q == nil {
				continue
			}
			sql, err := q.SQL(lo, hi)
			if err != nil {
				return 0, err
			}
			_, rows, err := j.node.pool.QueryAllT(sql, j.trace.ChildContext())
			if err != nil {
				return 0, err
			}
			if len(rows) == 1 && rows[0][0].I > 0 {
				// Legacy precedence: a tuple whose transformation fails is a
				// transformation error even if its key also collides, because
				// the legacy engine evaluates expressions before checking
				// constraints. For an isolated tuple, probe the expressions
				// first and surface their error instead of the collision.
				if lo == hi {
					if perr := j.probeRow(dml, lo); perr != nil {
						return 0, perr
					}
				}
				return 0, &cdw.Error{Code: cdw.CodeUniqueness,
					Msg: "duplicate unique key value"}
			}
		}
		sql, err := dml.Apply.SQL(lo, hi)
		if err != nil {
			return 0, err
		}
		a1, err := j.node.pool.ExecT(sql, j.trace.ChildContext())
		if err != nil {
			return 0, err
		}
		if dml.ApplySecond == nil {
			return a1, nil
		}
		// upsert: the guarded INSERT half runs after the UPDATE half; both
		// are idempotent per range, so a failure here safely re-applies on
		// sub-ranges.
		sql2, err := dml.ApplySecond.SQL(lo, hi)
		if err != nil {
			return 0, err
		}
		a2, err := j.node.pool.ExecT(sql2, j.trace.ChildContext())
		if err != nil {
			return 0, err
		}
		upsertUpdated += a1
		upsertInserted += a2
		return a1 + a2, nil
	}

	classify := func(err error) errhandle.Classified {
		var ex *retrier.Exhausted
		if errors.As(err, &ex) {
			// Retries gave up on an infrastructure failure: poison the job
			// instead of splitting — adaptive splitting is for per-tuple data
			// errors, and re-driving a dead CDW would burn the whole budget.
			return errhandle.Classified{Fatal: true, Msg: err.Error()}
		}
		ce, ok := err.(*cdw.Error)
		if !ok {
			return errhandle.Classified{Fatal: true, Msg: err.Error()}
		}
		switch ce.Code {
		case cdw.CodeUniqueness:
			return errhandle.Classified{Code: ce.Code, Field: ce.Field, Msg: ce.Msg, Unique: true}
		case cdw.CodeNoSuchObject, cdw.CodeNoSuchColumn, cdw.CodeSyntax,
			cdw.CodeUnsupported, cdw.CodeCopyFailed, cdw.CodeInternal:
			return errhandle.Classified{Fatal: true, Code: ce.Code, Msg: ce.Msg}
		default:
			return errhandle.Classified{Code: ce.Code, Field: ce.Field, Msg: ce.Msg}
		}
	}

	nm := j.node.nm
	var errsET, errsUV int64
	record := func(lo, hi int64, c errhandle.Classified) error {
		table := j.etName
		msg := c.Msg
		switch {
		case c.Code == errhandle.CodeMaxErrors:
			msg = fmt.Sprintf("Max number of errors reached during DML on %s, row numbers: (%d, %d)", j.targets, lo, hi)
			errsET++
			j.errsETLive.Add(1)
			nm.errorsET.Inc()
		case c.Unique:
			table = j.uvName
			msg = fmt.Sprintf("%s during DML on %s, row number: %d%s", c.Msg, j.targets, lo, j.stagedTupleSuffix(lo))
			errsUV++
			j.errsUVLive.Add(1)
			nm.errorsUV.Inc()
		default:
			if c.Field == "" && lo == hi {
				// isolate the offending input field by probing each insert
				// expression against the single staged row
				c.Field = j.probeField(dml, lo)
			}
			msg = fmt.Sprintf("%s during DML on %s, row number: %d", c.Msg, j.targets, lo)
			errsET++
			j.errsETLive.Add(1)
			nm.errorsET.Inc()
		}
		if table.Name == "" {
			return nil // job declared no error table; drop silently like the legacy tools
		}
		return recordError(j.node, table, j.trace.ChildContext(), lo, hi, c.Code, c.Field, msg)
	}

	cfg := errhandle.Config{
		MaxErrors:  int(j.req.MaxErrors),
		MaxRetries: int(j.req.MaxRetries),
		Observe: func(depth int, lo, hi int64, d time.Duration, err error) {
			nm.dmlStatements.Inc()
			nm.dmlLat.ObserveDuration(d)
			j.stmts.Add(1)
			if err != nil {
				nm.splitDepth.Observe(float64(depth))
			}
			j.trace.Add(obs.Span{Stage: "dml", Worker: "beta",
				Start: time.Now().Add(-d), Dur: d, Rows: hi - lo + 1, Depth: depth,
				Err: errString(err)})
		},
	}
	if cfg.MaxErrors == 0 {
		cfg.MaxErrors = j.node.cfg.MaxErrors
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = j.node.cfg.MaxRetries
	}
	h := errhandle.New(cfg, apply, classify, record)
	maxSeq := j.maxSeq.Load()
	// The adaptive run derives from the node lifetime so Close aborts the
	// application phase between statements instead of letting it drive a
	// closed pool.
	applyStart := time.Now()
	runErr := h.Run(j.node.ctx, 1, maxSeq)
	st := h.Stats()
	j.trace.Span("apply", "beta", applyStart, st.Activity, 0, runErr)
	nm.adaptiveSplits.Add(st.Splits)
	nm.blockErrors.Add(st.BlockErrors)
	if runErr != nil {
		return nil, runErr
	}
	j.watch.appTo = time.Now()

	res := &wire.ApplyResult{JobID: j.id, ErrorsET: uint64(errsET), ErrorsUV: uint64(errsUV)}
	switch dml.Kind {
	case sqlxlate.DMLInsert:
		res.Inserted = uint64(st.Activity)
	case sqlxlate.DMLUpdate:
		res.Updated = uint64(st.Activity)
	case sqlxlate.DMLDelete:
		res.Deleted = uint64(st.Activity)
	case sqlxlate.DMLUpsert:
		res.Updated = uint64(upsertUpdated)
		res.Inserted = uint64(upsertInserted)
	}
	nm.rowsInserted.Add(int64(res.Inserted))
	nm.rowsUpdated.Add(int64(res.Updated))
	nm.rowsDeleted.Add(int64(res.Deleted))
	j.report.ApplyStmts = st.Attempts
	j.report.BlockErrors = st.BlockErrors
	j.report.Splits = st.Splits
	j.report.MaxSplitDepth = st.MaxDepth
	j.report.Inserted = int64(res.Inserted)
	j.report.Updated = int64(res.Updated)
	j.report.Deleted = int64(res.Deleted)
	j.report.ErrorsET = errsET
	j.report.ErrorsUV = errsUV
	return res, nil
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// probeRow evaluates the full rewritten insert projection against the single
// staged row seq, returning any transformation error it raises.
func (j *importJob) probeRow(dml *sqlxlate.DML, seq int64) error {
	if len(dml.OrderedExprs) == 0 {
		return nil
	}
	var items []string
	for _, e := range dml.OrderedExprs {
		txt, err := sqlparse.PrintExpr(e, sqlparse.DialectCDW)
		if err != nil {
			return nil
		}
		items = append(items, txt)
	}
	sql := fmt.Sprintf("SELECT %s FROM %s s WHERE s.%s = %d",
		strings.Join(items, ", "), j.stage.String(), sqlxlate.SeqColumn, seq)
	if _, _, err := j.node.pool.QueryAllT(sql, j.trace.ChildContext()); err != nil {
		if _, ok := err.(*cdw.Error); ok {
			return err
		}
	}
	return nil
}

// probeField evaluates each rewritten insert expression against the single
// staged row seq to discover which input field a conversion error comes
// from — the CDW reports expression failures without field attribution, so
// the virtualizer reconstructs it (ERRFIELD in Figure 5).
func (j *importJob) probeField(dml *sqlxlate.DML, seq int64) string {
	for _, e := range dml.OrderedExprs {
		txt, err := sqlparse.PrintExpr(e, sqlparse.DialectCDW)
		if err != nil {
			continue
		}
		sql := fmt.Sprintf("SELECT %s FROM %s s WHERE s.%s = %d",
			txt, j.stage.String(), sqlxlate.SeqColumn, seq)
		if _, _, err := j.node.pool.QueryAllT(sql, j.trace.ChildContext()); err != nil {
			if fields := sqlxlate.StageFields(e, "s"); len(fields) > 0 {
				return fields[0]
			}
			return ""
		}
	}
	return ""
}

// stagedTupleSuffix renders the staged tuple for UV error messages, matching
// the legacy habit of recording the violating tuple itself (Figure 5c).
func (j *importJob) stagedTupleSuffix(seq int64) string {
	sel := fmt.Sprintf("SELECT * FROM %s WHERE %s = %d",
		j.stage.String(), sqlxlate.SeqColumn, seq)
	_, rows, err := j.node.pool.QueryAllT(sel, j.trace.ChildContext())
	if err != nil || len(rows) != 1 {
		return ""
	}
	var parts []string
	for _, d := range rows[0][1:] { // skip __seq
		parts = append(parts, d.Render())
	}
	return ", tuple: " + strings.Join(parts, "|")
}

// keyExprsFor resolves the insert expressions feeding the target's primary
// key. Shared by the discrete import path and the streaming path.
func keyExprsFor(dml *sqlxlate.DML, meta *cdwnet.TableMeta) ([]sqlparse.Expr, []string) {
	var exprs []sqlparse.Expr
	var cols []string
	for _, pk := range meta.PrimaryKey {
		e, ok := dml.NamedInsertExpr(pk)
		if !ok {
			// positional insert: find the target column ordinal
			for i, c := range meta.Columns {
				if strings.EqualFold(c.Name, pk) {
					e, ok = dml.PositionalInsertExpr(i)
					break
				}
			}
		}
		if !ok {
			// PK column not fed by the insert: it will be NULL, which never
			// collides; skip the emulation for this column.
			continue
		}
		exprs = append(exprs, e)
		cols = append(cols, pk)
	}
	return exprs, cols
}

// finish tears the job down: drop staging, delete uploaded objects, file the
// report.
func (j *importJob) finish() *JobReport {
	j.finishSeq.Do(func() {
		_, _ = j.node.pool.ExecT(dropIfExists(j.stage), j.trace.ChildContext())
		if keys, err := j.node.store.List(j.keyPfx); err == nil {
			for _, k := range keys {
				_ = j.node.store.Delete(k)
			}
		}
		j.report.JobID = j.id
		j.report.Target = j.targets
		j.report.Chunks = j.chunks.Load()
		j.report.BytesIn = j.bytesIn.Load()
		j.report.RowsIn = j.rowsIn.Load()
		j.report.RowsStaged = j.rowsConv.Load()
		j.report.DataErrors = int64(len(j.dataErrors))
		j.report.FilesWritten = j.files.Load()
		j.report.BytesUpload = j.upBytes.Load()
		j.report.CopyBatches = j.batchesN.Load()
		if ns := j.acqFromNs.Load(); ns != 0 {
			j.watch.acqFrom = time.Unix(0, ns)
		}
		j.watch.fill(&j.report, time.Now())
		j.node.record(j.report)
		evType := "job_finish"
		if j.aborted.Load() {
			evType = "job_abort"
		} else {
			j.node.nm.jobsCompleted.Inc()
		}
		j.node.events.Add(obs.Event{
			Type: evType, Job: j.id, TraceID: j.traceID(), Msg: "import " + j.targets,
			Attrs: map[string]any{
				"rows_staged": j.rowsConv.Load(),
				"data_errors": len(j.dataErrors),
			},
		})
		j.node.tracer.Finish(j.id)
		j.node.mu.Lock()
		delete(j.node.imports, j.id)
		j.node.mu.Unlock()
	})
	return &j.report
}
