package core

import "sync"

// bufPool recycles the two large per-chunk buffers of the acquisition
// pipeline: the wire payload a session hands to a converter, and the CSV
// buffer a converter hands to a file writer. Ownership moves strictly
// forward (session → converter → writer) and whichever stage consumes a
// buffer returns it here; see the hand-off comments in importjob.go.
var bufPool sync.Pool

// maxPooledBuf bounds the capacity of recycled buffers so one pathological
// chunk does not pin megabytes in the pool forever.
const maxPooledBuf = 8 << 20

// getBuf returns an empty buffer with at least capHint capacity, recycled
// when the pool has one big enough.
func getBuf(capHint int) []byte {
	if v := bufPool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= capHint {
			return b[:0]
		}
	}
	return make([]byte, 0, capHint)
}

// putBuf returns a buffer to the pool. The caller must not touch b again.
func putBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
