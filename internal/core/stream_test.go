package core_test

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"etlvirt/internal/core"
	"etlvirt/internal/etlclient"
	"etlvirt/internal/ltype"
	"etlvirt/internal/stream"
	"etlvirt/internal/wire"
)

const streamApplySQL = `insert into PROD.CUSTOMER values (
	trim(:CUST_ID), trim(:CUST_NAME),
	cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') )`

func custLayout() *ltype.Layout {
	return &ltype.Layout{Name: "CustLayout", Fields: []ltype.Field{
		{Name: "CUST_ID", Type: ltype.VarChar(5)},
		{Name: "CUST_NAME", Type: ltype.VarChar(50)},
		{Name: "JOIN_DATE", Type: ltype.VarChar(10)},
	}}
}

// dialStream opens a raw wire connection and completes the logon handshake.
func dialStream(t *testing.T, addr string) *wire.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := wire.NewConn(nc)
	if err := c.Send(0, &wire.Logon{User: "u", Password: "p"}); err != nil {
		t.Fatal(err)
	}
	m, _, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*wire.LogonOK); !ok {
		t.Fatalf("logon reply = %T", m)
	}
	return c
}

// beginStream opens a CDC stream over c and returns the server's StreamOK.
func beginStream(t *testing.T, c *wire.Conn, name, et string) *wire.StreamOK {
	t.Helper()
	if err := c.Send(1, &wire.BeginStream{
		Name:       name,
		Table:      "PROD.CUSTOMER",
		ErrTableET: et,
		Layout:     custLayout(),
		Format:     wire.FormatVartext,
		Delim:      '|',
		SQL:        streamApplySQL,
	}); err != nil {
		t.Fatal(err)
	}
	m, _, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ok, is := m.(*wire.StreamOK)
	if !is {
		t.Fatalf("BeginStream reply = %#v", m)
	}
	return ok
}

// vtDelta appends one vartext delta (op marker + pipe-joined line).
func vtDelta(dst []byte, op stream.Op, fields ...string) []byte {
	return stream.AppendDelta(dst, op, []byte(strings.Join(fields, "|")+"\n"))
}

// sendFrame sends one delta frame and returns its ack.
func sendFrame(t *testing.T, c *wire.Conn, streamID, firstSeq uint64, count int, payload []byte) *wire.DeltaAck {
	t.Helper()
	if err := c.Send(1, &wire.DeltaFrame{
		StreamID: streamID, FirstSeq: firstSeq, Count: uint32(count), Payload: payload,
	}); err != nil {
		t.Fatal(err)
	}
	m, _, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ack, is := m.(*wire.DeltaAck)
	if !is {
		t.Fatalf("DeltaFrame reply = %#v", m)
	}
	return ack
}

// endStream closes the stream and returns its StreamDone summary.
func endStream(t *testing.T, c *wire.Conn, streamID uint64) *wire.StreamDone {
	t.Helper()
	if err := c.Send(1, &wire.EndStream{StreamID: streamID}); err != nil {
		t.Fatal(err)
	}
	m, _, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	done, is := m.(*wire.StreamDone)
	if !is {
		t.Fatalf("EndStream reply = %#v", m)
	}
	return done
}

// TestStreamEndToEnd drives one micro-batch of interleaved insert / update /
// delete deltas through a streaming session, including two images of the
// same not-yet-present key in one upsert run (the insert-guard hazard the
// duplicate probe must catch) and an apply-time transformation error.
func TestStreamEndToEnd(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)

	c := dialStream(t, st.addr)
	defer c.Close()
	ok := beginStream(t, c, "cust_cdc", "PROD.CUSTOMER_STREAM_ET")
	if ok.ResumeSeq != 0 {
		t.Fatalf("fresh stream ResumeSeq = %d", ok.ResumeSeq)
	}

	var p []byte
	p = vtDelta(p, stream.OpInsert, "100", "Alice", "2024-01-01")
	p = vtDelta(p, stream.OpInsert, "200", "Bob", "2024-01-02")
	// Second image of key 100 in the same upsert run: the set-oriented
	// guarded insert alone would double-insert it; the duplicate probe must
	// split the run so the update half applies in sequence order.
	p = vtDelta(p, stream.OpUpdate, "100", "Alicia", "2024-01-03")
	p = vtDelta(p, stream.OpDelete, "200", "Bob", "2024-01-02")
	p = vtDelta(p, stream.OpInsert, "300", "Carol", "xxxx") // apply-time cast error -> ET
	p = vtDelta(p, stream.OpInsert, "400", "Dave", "2024-01-04")
	ack := sendFrame(t, c, ok.StreamID, 1, 6, p)
	if ack.CommittedSeq != 0 {
		t.Errorf("sub-hint frame committed early: %d", ack.CommittedSeq)
	}

	done := endStream(t, c, ok.StreamID)
	if done.Watermark != 6 {
		t.Errorf("watermark = %d, want 6", done.Watermark)
	}
	if done.Inserted != 3 || done.Updated != 1 || done.Deleted != 1 {
		t.Errorf("activity I/U/D = %d/%d/%d, want 3/1/1", done.Inserted, done.Updated, done.Deleted)
	}
	if done.ErrorsET != 1 {
		t.Errorf("ErrorsET = %d, want 1", done.ErrorsET)
	}

	res := mustEng(t, st.eng, "SELECT CUST_ID, CUST_NAME FROM PROD.CUSTOMER ORDER BY CUST_ID")
	if len(res.Rows) != 2 {
		t.Fatalf("target rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0][0].S != "100" || res.Rows[0][1].S != "Alicia" {
		t.Errorf("row0 = %v (last image of key 100 must win)", res.Rows[0])
	}
	if res.Rows[1][0].S != "400" || res.Rows[1][1].S != "Dave" {
		t.Errorf("row1 = %v", res.Rows[1])
	}
	et := mustEng(t, st.eng, "SELECT SEQNO, ERRCODE FROM PROD.CUSTOMER_STREAM_ET")
	if len(et.Rows) != 1 || et.Rows[0][0].I != 5 {
		t.Errorf("ET rows = %v, want one row for seq 5", et.Rows)
	}
}

// TestStreamControllerAdapts sustains a continuous delta workload and
// asserts the adaptive controller demonstrably moves the batch hint: commits
// far below the 2s default target must grow the micro-batch. Also checks the
// stream surfaces on /jobs/active and /metrics while running.
func TestStreamControllerAdapts(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)
	dbgAddr, err := st.node.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c := dialStream(t, st.addr)
	defer c.Close()
	ok := beginStream(t, c, "cust_adapt", "")
	first := ok.BatchHint

	seq := uint64(1)
	var last *wire.DeltaAck
	for f := 0; f < 10; f++ {
		var p []byte
		const rows = 200
		for i := 0; i < rows; i++ {
			p = vtDelta(p, stream.OpInsert,
				fmt.Sprintf("%05d", seq+uint64(i)), "Name", "2024-01-01")
		}
		last = sendFrame(t, c, ok.StreamID, seq, rows, p)
		seq += rows

		if f == 5 {
			// Mid-stream: the session must be visible with live progress.
			jobs := st.node.ActiveJobs()
			var found bool
			for _, j := range jobs {
				if j.Kind == "stream" && j.Target == "PROD.CUSTOMER" && j.Deltas > 0 {
					found = true
					if j.BatchHint <= 0 {
						t.Errorf("active stream batch hint = %d", j.BatchHint)
					}
				}
			}
			if !found {
				t.Errorf("no stream entry in ActiveJobs: %+v", jobs)
			}
			_, body := httpGet(t, dbgAddr, "/metrics")
			for _, want := range []string{
				"etlvirt_stream_sessions_active 1",
				"etlvirt_stream_batches_total",
				"etlvirt_stream_commit_seconds",
				"etlvirt_stream_ctrl_grow_total",
			} {
				if !strings.Contains(body, want) {
					t.Errorf("/metrics missing %q", want)
				}
			}
		}
	}
	if last.CommittedSeq == 0 {
		t.Fatalf("no micro-batch committed after %d deltas", seq-1)
	}
	if last.BatchHint <= first {
		t.Errorf("controller did not grow the batch: hint %d -> %d", first, last.BatchHint)
	}

	done := endStream(t, c, ok.StreamID)
	if done.Watermark != seq-1 {
		t.Errorf("watermark = %d, want %d", done.Watermark, seq-1)
	}
	if done.Inserted != seq-1 {
		t.Errorf("inserted = %d, want %d", done.Inserted, seq-1)
	}
}

// TestStreamResumeNoDoubleApply kills a stream with a committed batch plus a
// buffered uncommitted tail, then resumes under the same name: the server
// must advertise the durable watermark, drop the full replay below it, and
// end with every key applied exactly once.
func TestStreamResumeNoDoubleApply(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)

	mkFrame := func(first, count int) []byte {
		var p []byte
		for i := 0; i < count; i++ {
			p = vtDelta(p, stream.OpInsert,
				fmt.Sprintf("%05d", first+i), "Name", "2024-01-01")
		}
		return p
	}

	// Incarnation 1: 64 deltas commit (default initial hint), 10 more stay
	// buffered, then the connection dies without EndStream.
	c1 := dialStream(t, st.addr)
	ok1 := beginStream(t, c1, "cust_resume", "")
	ack := sendFrame(t, c1, ok1.StreamID, 1, 64, mkFrame(1, 64))
	if ack.CommittedSeq != 64 {
		t.Fatalf("first batch CommittedSeq = %d, want 64", ack.CommittedSeq)
	}
	ack = sendFrame(t, c1, ok1.StreamID, 65, 10, mkFrame(65, 10))
	if ack.CommittedSeq != 64 {
		t.Fatalf("buffered tail advanced the watermark: %d", ack.CommittedSeq)
	}
	c1.Close() // abort: the 10 buffered deltas are discarded

	// The abort runs on the connection goroutine; wait for deregistration.
	waitStreamsIdle(t, st.node)

	// Incarnation 2: resume under the same name; replay everything from 1.
	c2 := dialStream(t, st.addr)
	defer c2.Close()
	ok2 := beginStream(t, c2, "cust_resume", "")
	if ok2.ResumeSeq != 64 {
		t.Fatalf("ResumeSeq = %d, want 64", ok2.ResumeSeq)
	}
	sendFrame(t, c2, ok2.StreamID, 1, 74, mkFrame(1, 74))
	done := endStream(t, c2, ok2.StreamID)
	if done.Watermark != 74 {
		t.Errorf("watermark = %d, want 74", done.Watermark)
	}
	if done.Replayed != 64 {
		t.Errorf("replayed = %d, want 64", done.Replayed)
	}
	if done.Inserted != 10 {
		t.Errorf("resumed incarnation inserted = %d, want 10 (no double-apply)", done.Inserted)
	}

	res := mustEng(t, st.eng, "SELECT count(*) FROM PROD.CUSTOMER")
	if res.Rows[0][0].I != 74 {
		t.Errorf("target rows = %d, want 74", res.Rows[0][0].I)
	}
	dup := mustEng(t, st.eng, `SELECT count(*) FROM (
		SELECT 1 AS one FROM PROD.CUSTOMER GROUP BY CUST_ID HAVING count(*) > 1) d`)
	if dup.Rows[0][0].I != 0 {
		t.Errorf("%d keys double-applied", dup.Rows[0][0].I)
	}
}

// waitStreamsIdle waits until no streaming session is registered on n.
func waitStreamsIdle(t *testing.T, n *core.Node) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		idle := true
		for _, j := range n.ActiveJobs() {
			if j.Kind == "stream" {
				idle = false
			}
		}
		if idle {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("streams still registered after 5s")
}

// TestStreamSessionCreditLeak is the close-path audit regression: open and
// kill 100 streaming sessions, each holding a frame credit in an
// uncommitted micro-batch when its connection drops, and assert the
// CreditManager gauge returns to baseline — a dead stream must never leak
// pool capacity.
func TestStreamSessionCreditLeak(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)
	base := st.node.Credits()

	for i := 0; i < 100; i++ {
		c := dialStream(t, st.addr)
		ok := beginStream(t, c, fmt.Sprintf("leak_%d", i), "")
		// One sub-hint frame: its credit stays parked in the open batch.
		p := vtDelta(nil, stream.OpInsert, fmt.Sprintf("%05d", i), "Name", "2024-01-01")
		ack := sendFrame(t, c, ok.StreamID, uint64(i+1), 1, p)
		if ack.CommittedSeq != 0 {
			t.Fatalf("session %d: unexpected commit %d", i, ack.CommittedSeq)
		}
		c.Close() // kill without EndStream
	}

	waitStreamsIdle(t, st.node)
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur := st.node.Credits()
		if cur.Available == base.Available && cur.InFlight == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("credits leaked after 100 killed sessions: baseline %+v, now %+v", base, cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// cdcStreamScript is an etlscript stream block over the Example 2.1 layout.
func cdcStreamScript(name string) string {
	return fmt.Sprintf(`
.logon host/user,pass;
.layout CustLayout;
.field CUST_ID varchar(5);
.field CUST_NAME varchar(50);
.field JOIN_DATE varchar(10);
.begin stream name %s tables PROD.CUSTOMER
	errortables PROD.CUSTOMER_ET latency 100;
.dml label Apply;
insert into PROD.CUSTOMER values (
	trim(:CUST_ID), trim(:CUST_NAME),
	cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') );
.stream infile deltas.txt format vartext '|' layout CustLayout apply Apply;
.end stream;
`, name)
}

const cdcDeltaFile = `I|100|Alice|2012-01-01
I|200|Bob|2012-02-02
U|100|Alicia|2012-01-01
D|200|Bob|2012-02-02
I|300|Carol|xxxx
I|400|Dave|2013-03-03
`

// TestStreamScript drives a CDC stream through the full stack — etlscript
// parser, etlclient streaming loop, wire protocol, stream job — and then
// re-runs the identical script to prove client-side resume: every delta is
// at or below the durable watermark, so nothing is retransmitted and
// nothing double-applies.
func TestStreamScript(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)

	files := map[string]string{"deltas.txt": cdcDeltaFile}
	res := runScript(t, st.addr, cdcStreamScript("script_cdc"), files, etlclient.Options{})
	if len(res.Streams) != 1 {
		t.Fatalf("streams: %+v", res)
	}
	sr := res.Streams[0]
	if sr.DeltasSent != 6 || sr.Skipped != 0 || sr.Watermark != 6 {
		t.Errorf("first run: %+v", sr)
	}
	if sr.Inserted != 3 || sr.Updated != 1 || sr.Deleted != 1 || sr.ErrorsET != 1 {
		t.Errorf("first run counters: %+v", sr)
	}
	rows := mustEng(t, st.eng, "SELECT cust_id, cust_name FROM PROD.CUSTOMER ORDER BY cust_id").Rows
	if len(rows) != 2 || rows[0][0].S != "100" || rows[0][1].S != "Alicia" ||
		rows[1][0].S != "400" || rows[1][1].S != "Dave" {
		t.Errorf("target rows: %v", rows)
	}

	// Identical re-run: the stream name resolves to watermark 6, the client
	// skips everything, and the CDW state is untouched.
	res = runScript(t, st.addr, cdcStreamScript("script_cdc"), files, etlclient.Options{})
	sr = res.Streams[0]
	if sr.Skipped != 6 || sr.DeltasSent != 0 || sr.Frames != 0 || sr.Watermark != 6 {
		t.Errorf("resume run: %+v", sr)
	}
	if sr.Inserted != 0 || sr.Updated != 0 || sr.Deleted != 0 {
		t.Errorf("resume run applied deltas: %+v", sr)
	}
	rows = mustEng(t, st.eng, "SELECT count(*) FROM PROD.CUSTOMER").Rows
	if rows[0][0].I != 2 {
		t.Errorf("target row count after resume: %d", rows[0][0].I)
	}
}
