package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"etlvirt/internal/cdw"
	"etlvirt/internal/convert"
	"etlvirt/internal/credit"
	"etlvirt/internal/errhandle"
	"etlvirt/internal/obs"
	"etlvirt/internal/retrier"
	"etlvirt/internal/sqlparse"
	"etlvirt/internal/sqlxlate"
	"etlvirt/internal/stream"
	"etlvirt/internal/wire"
)

// opRun is a maximal run of consecutive same-class deltas inside one
// micro-batch: either upsert images (insert/update) or delete images. Runs
// are applied in delta-sequence order, which reproduces the tuple-at-a-time
// ordering of a legacy CDC apply with set-oriented statements: within an
// upsert run the CDW's UPDATE ... FROM applies matching images in staged
// (__seq) order so the last image of a key wins, and class boundaries order
// deletes against upserts of the same key.
type opRun struct {
	del    bool  // delete run; otherwise an upsert (insert/update) run
	lo, hi int64 // inclusive delta-sequence range
}

// errStreamDupRange forces an adaptive split: the guarded INSERT half of an
// upsert run is only correct when each key appears at most once in the
// range — two images of an unseen key would both pass the NOT EXISTS guard
// in one set-oriented statement. The intra-range duplicate probe raises this
// sentinel so errhandle halves the range; a singleton can never carry a
// duplicate, so the split always terminates without recording an error.
var errStreamDupRange = errors.New("duplicate key images in upsert range")

// streamJob is one long-lived streaming session: it stays open after logon,
// ingests continuous CDC deltas as adaptively sized micro-batches, and
// checkpoints a durable watermark per committed batch so a killed stream
// resumes without double-applying replayed deltas.
//
// Unlike importJob's parallel pipeline, a stream is serviced entirely by its
// session goroutine: the legacy protocol is strictly request/response, so
// delayed DeltaAcks while a batch commits are the stream's backpressure, on
// top of the per-frame credits bounding buffered delta memory.
type streamJob struct {
	id   uint64
	node *Node
	req  *wire.BeginStream

	upsStage sqlparse.TableName // staged insert/update images
	delStage sqlparse.TableName // staged delete images
	ckpt     sqlparse.TableName // durable watermark table (shared, one row per stream)
	etName   sqlparse.TableName
	tr       *sqlxlate.Translator
	conv     *convert.Converter
	sd       *sqlxlate.StreamDML
	intraDup *sqlxlate.RangeStmt // duplicate-key probe over the upsert stage
	ctrl     *stream.Controller
	keyPfx   string
	targets  string
	started  time.Time

	// watermark is the highest delta sequence durably applied to the CDW,
	// mirroring the checkpoint row. Deltas at or below it are replays.
	watermark int64

	// Current micro-batch accumulation. Only the session goroutine touches
	// these; a stream has exactly one connection. The CSV spools are pooled
	// buffers owned by the job from their getBuf in bufferDelta until
	// finish's putBuf — field-held, so bufown sees the stores through
	// bufferDelta's pointer as hand-offs to the job.
	credits          credit.Batch
	upsCSV, delCSV   []byte //etlvirt:owns
	upsRows, delRows int
	upsFiles         int // spool objects rotated out for this batch
	delFiles         int
	runs             []opRun
	dataErrs         []convert.DataError
	batchLo, batchHi int64 // fresh delta range buffered; batchLo == 0 means empty
	batchBytes       int
	batchStart       time.Time
	batchNo          int64

	// Per-stage time accumulated across the current micro-batch, fed to the
	// controller and the per-stage histograms at commit so every grow/shrink
	// decision is attributable to the stage driving it. frameAcc is the
	// session-side frame ingest time, reported separately (it overlaps the
	// spool stage rather than extending the commit path).
	stageAcc stream.Stages
	frameAcc time.Duration

	// oldestLiveNs is the arrival time (UnixNano) of the oldest buffered,
	// not-yet-committed delta; 0 when the batch is empty. The per-stream
	// watermark-lag gauge reads it from debug-server goroutines.
	oldestLiveNs atomic.Int64

	// lastStat is the most recent commit's controller view for /streams;
	// statMu guards it against debug-server readers.
	statMu   sync.Mutex
	lastStat streamCommitStat

	// Whole-stream counters; atomics because /jobs/active reads them from
	// debug-server goroutines while the stream runs. wmLive/hintLive mirror
	// the session-goroutine-owned watermark and controller hint for the same
	// reason.
	deltas    atomic.Int64
	replayed  atomic.Int64
	batches   atomic.Int64
	inserted  atomic.Int64
	updated   atomic.Int64
	deleted   atomic.Int64
	errsET    atomic.Int64
	heldBytes atomic.Int64
	heldCreds atomic.Int64
	wmLive    atomic.Int64
	hintLive  atomic.Int64

	finishSeq sync.Once
	trace     *obs.JobTrace
}

// streamCommitStat is the last committed micro-batch's controller view,
// snapshotted for the /streams debug endpoint.
type streamCommitStat struct {
	rows     int
	latency  time.Duration
	action   string
	dominant string
	stages   map[string]time.Duration
}

// traceID renders the stream's distributed trace ID for event records.
func (j *streamJob) traceID() string {
	tc := j.trace.Context()
	if !tc.Valid() {
		return ""
	}
	return obs.FormatTraceID(tc.TraceID)
}

// newStreamJob opens (or resumes) a stream. The stream's name is its durable
// identity: the checkpoint table keeps one watermark row per name, so a
// re-opened stream resumes from where its last incarnation committed. Only a
// fresh stream (no checkpoint row yet) recreates the error table — a resumed
// one must keep the entries of already-committed batches.
func (n *Node) newStreamJob(m *wire.BeginStream, tc obs.TraceContext) (*streamJob, error) {
	if m.Layout == nil {
		return nil, fmt.Errorf("stream request carries no layout")
	}
	if m.Name == "" {
		return nil, fmt.Errorf("stream request carries no name")
	}
	conv, err := convert.NewConverter(m.Layout, m.Format, m.Delim, n.cfg.ConvertOpts)
	if err != nil {
		return nil, err
	}
	id := n.nextJob.Add(1)
	j := &streamJob{
		id:       id,
		node:     n,
		req:      m,
		conv:     conv,
		upsStage: sqlparse.TableName{Schema: n.cfg.StagingSchema, Name: fmt.Sprintf("stream_%d_ups", id)},
		delStage: sqlparse.TableName{Schema: n.cfg.StagingSchema, Name: fmt.Sprintf("stream_%d_del", id)},
		ckpt:     sqlparse.TableName{Schema: n.cfg.StagingSchema, Name: "stream_checkpoints"},
		etName:   parseQualifiedName(m.ErrTableET),
		keyPfx:   fmt.Sprintf("%sstream%d/", n.cfg.UploadPrefix, id),
		started:  time.Now(),
	}
	j.tr = &sqlxlate.Translator{
		Stage:      j.upsStage,
		StageAlias: "s",
		Layout:     m.Layout,
		SchemaMap:  n.cfg.SchemaMap,
	}

	// Translate once as a plain insert DML to resolve the CDW target name and
	// the expressions feeding it, then derive the streaming triple.
	dml, err := j.tr.TranslateDML(m.SQL)
	if err != nil {
		return nil, fmt.Errorf("cross-compiling stream apply DML: %w", err)
	}
	if dml.Kind != sqlxlate.DMLInsert {
		return nil, fmt.Errorf("stream apply DML must be an INSERT")
	}
	j.targets = dml.Target.String()
	meta, err := n.pool.Describe(dml.Target.String())
	if err != nil {
		return nil, fmt.Errorf("describing stream target: %w", err)
	}
	if len(meta.PrimaryKey) == 0 {
		return nil, fmt.Errorf("stream target %s has no primary key; CDC deltas need one to identify rows", j.targets)
	}
	targetCols := make([]string, len(meta.Columns))
	for i, c := range meta.Columns {
		targetCols[i] = c.Name
	}
	j.sd, err = j.tr.TranslateStreamDML(m.SQL, j.delStage, targetCols, meta.PrimaryKey)
	if err != nil {
		return nil, err
	}
	keyExprs, keyCols := keyExprsFor(dml, meta)
	if len(keyCols) == len(meta.PrimaryKey) {
		if j.intraDup, _, err = j.tr.DupCheckQueries(dml, keyCols, keyExprs); err != nil {
			return nil, err
		}
	}

	// Durable checkpoint: create the table if needed, then read or seed this
	// stream's watermark row.
	ckptDDL, err := sqlxlate.CheckpointTableDDL(j.ckpt)
	if err != nil {
		return nil, err
	}
	if _, err := n.pool.Exec(ckptDDL); err != nil {
		return nil, fmt.Errorf("preparing checkpoint table: %w", err)
	}
	selSQL, err := j.ckptSelect()
	if err != nil {
		return nil, err
	}
	_, rows, err := n.pool.QueryAll(selSQL)
	if err != nil {
		return nil, fmt.Errorf("reading stream checkpoint: %w", err)
	}
	if len(rows) == 0 {
		// Fresh stream: seed the watermark and start the error table clean.
		ins := &sqlparse.InsertStmt{Table: j.ckpt, Rows: [][]sqlparse.Expr{{
			&sqlparse.Literal{Kind: sqlparse.LitString, Str: m.Name},
			&sqlparse.Literal{Kind: sqlparse.LitInt, Int: 0},
		}}}
		insSQL, err := sqlparse.Print(ins, sqlparse.DialectCDW)
		if err != nil {
			return nil, err
		}
		if _, err := n.pool.Exec(insSQL); err != nil {
			return nil, fmt.Errorf("seeding stream checkpoint: %w", err)
		}
		if j.etName.Name != "" {
			etDDL, err := sqlxlate.ErrorTableDDL(j.etName)
			if err != nil {
				return nil, err
			}
			for _, s := range []string{dropIfExists(j.etName), etDDL} {
				if _, err := n.pool.Exec(s); err != nil {
					return nil, fmt.Errorf("preparing stream error table: %w", err)
				}
			}
		}
	} else {
		j.watermark = rows[0][0].I
	}

	target := n.cfg.StreamLatencyTarget
	if m.LatencyTargetMS > 0 {
		target = time.Duration(m.LatencyTargetMS) * time.Millisecond
	}
	j.ctrl = stream.NewController(stream.Config{
		Target:   target,
		MinBatch: n.cfg.StreamMinBatch,
		MaxBatch: n.cfg.StreamMaxBatch,
	})

	j.wmLive.Store(j.watermark)
	j.hintLive.Store(int64(j.ctrl.Hint().BatchRows))
	n.nm.streamsOpened.Inc()
	j.trace = n.tracer.StartCtx(id, "stream "+m.Name, tc)
	n.events.Add(obs.Event{
		Type: "stream_open", Job: id, TraceID: j.traceID(), Msg: m.Name,
		Attrs: map[string]any{
			"target":    j.targets,
			"watermark": j.watermark,
			"slo_ms":    j.ctrl.Target().Milliseconds(),
		},
	})
	n.mu.Lock()
	n.streams[id] = j
	n.mu.Unlock()
	n.log.Info("stream opened", "stream", j.id, "name", m.Name, "target", j.targets,
		"watermark", j.watermark, "latency_target", j.ctrl.Target())
	return j, nil
}

// ckptSelect builds the watermark lookup for this stream's name.
func (j *streamJob) ckptSelect() (string, error) {
	sel := &sqlparse.SelectStmt{
		Items: []sqlparse.SelectItem{{Expr: &sqlparse.ColRef{Name: "WATERMARK"}}},
		From:  []sqlparse.TableExpr{&sqlparse.TableRef{Table: j.ckpt}},
		Where: &sqlparse.BinaryExpr{Op: "=",
			L: &sqlparse.ColRef{Name: "STREAM_NAME"},
			R: &sqlparse.Literal{Kind: sqlparse.LitString, Str: j.req.Name}},
	}
	return sqlparse.Print(sel, sqlparse.DialectCDW)
}

// ckptUpdate builds the watermark advance to hi.
func (j *streamJob) ckptUpdate(hi int64) (string, error) {
	upd := &sqlparse.UpdateStmt{
		Table: j.ckpt,
		Set: []sqlparse.Assignment{{Column: "WATERMARK",
			Value: &sqlparse.Literal{Kind: sqlparse.LitInt, Int: hi}}},
		Where: &sqlparse.BinaryExpr{Op: "=",
			L: &sqlparse.ColRef{Name: "STREAM_NAME"},
			R: &sqlparse.Literal{Kind: sqlparse.LitString, Str: j.req.Name}},
	}
	return sqlparse.Print(upd, sqlparse.DialectCDW)
}

// handleFrame ingests one delta frame on the session goroutine: replayed
// deltas (at or below the watermark) are dropped but acknowledged, fresh
// ones are converted into the batch's CSV spool, and when the buffered batch
// reaches the controller's cut-point it commits synchronously — the delayed
// ack is the stream's backpressure.
func (j *streamJob) handleFrame(m *wire.DeltaFrame) (*wire.DeltaAck, error) {
	nm := j.node.nm
	frameStart := time.Now()
	// One credit per frame bounds buffered delta memory; it is parked in the
	// batch and released when the batch commits or the stream aborts.
	cr, err := j.node.credits.Acquire(j.node.ctx, int64(len(m.Payload)))
	if err != nil {
		return nil, err
	}
	j.credits.Add(cr)
	j.heldBytes.Add(int64(len(m.Payload)))
	j.heldCreds.Add(1)

	hint := j.ctrl.Hint()
	rest := m.Payload
	parsed := 0
	for len(rest) > 0 {
		op, rec, r, err := stream.NextDelta(rest, j.req.Format)
		if err != nil {
			return nil, fmt.Errorf("delta frame %d: %w", m.FirstSeq, err)
		}
		seq := int64(m.FirstSeq) + int64(parsed)
		parsed++
		rest = r
		j.deltas.Add(1)
		nm.streamDeltas.Inc()
		if seq <= j.watermark {
			// Replay of an already-committed delta (client resume overlap or a
			// re-sent frame): dropping it here is what makes checkpoint resume
			// exactly-once at the data level.
			j.replayed.Add(1)
			nm.streamReplays.Inc()
			continue
		}
		if j.batchLo == 0 {
			j.batchLo = seq
			j.batchStart = time.Now()
			j.oldestLiveNs.Store(j.batchStart.UnixNano())
		}
		j.batchHi = seq
		j.batchBytes += len(rec)
		if err := j.bufferDelta(op, rec, seq, hint.SpoolBytes); err != nil {
			return nil, err
		}
	}
	if parsed != int(m.Count) {
		return nil, fmt.Errorf("delta frame %d declares %d deltas, carries %d", m.FirstSeq, m.Count, parsed)
	}
	if j.batchLo == 0 {
		// Nothing buffered (all replays): no memory is held, return the
		// frame's credit instead of parking it until some future commit.
		j.credits.ReleaseAll()
		j.heldBytes.Store(0)
		j.heldCreds.Store(0)
	}
	frameDur := time.Since(frameStart)
	j.frameAcc += frameDur
	nm.streamStageFrame.ObserveEx(frameDur.Seconds(), j.trace.Context().TraceID)

	// Cut the batch when it reaches the controller's row target, or when
	// spool rotation has already produced the COPY fan-in it wants.
	if j.upsRows+j.delRows >= hint.BatchRows || j.upsFiles+j.delFiles >= hint.CopyFiles {
		if err := j.commitBatch(); err != nil {
			return nil, err
		}
	}
	return &wire.DeltaAck{
		StreamID:     j.id,
		Seq:          m.FirstSeq,
		CommittedSeq: uint64(j.watermark),
		BatchHint:    uint32(j.ctrl.Hint().BatchRows),
	}, nil
}

// bufferDelta converts one fresh delta into the batch spool and extends the
// op-run structure. Conversion failures become data errors recorded at the
// batch commit, exactly like acquisition-phase rejects of a discrete import.
func (j *streamJob) bufferDelta(op stream.Op, rec []byte, seq int64, spoolBytes int) error {
	dst := &j.upsCSV
	if op == stream.OpDelete {
		dst = &j.delCSV
	}
	if *dst == nil {
		*dst = getBuf(spoolBytes + spoolBytes/8)
	}
	// Converting per record with firstRow=seq stages the delta under its
	// global sequence — the __seq the MERGE triple ranges over and the SEQNO
	// error tables report.
	spoolStart := time.Now()
	res, err := j.conv.ConvertInto(*dst, rec, seq)
	j.stageAcc.Spool += time.Since(spoolStart)
	if err != nil {
		// The conversion may have grown (and therefore moved) the spool
		// buffer before failing; keep the Result's buffer or the field
		// would hold a stale header and the grown one would leak.
		*dst = res.CSV
		return err
	}
	*dst = res.CSV
	if len(res.Errors) > 0 {
		j.dataErrs = append(j.dataErrs, res.Errors...)
		j.node.nm.dataErrors.Add(int64(len(res.Errors)))
		return nil
	}
	if op == stream.OpDelete {
		j.delRows++
	} else {
		j.upsRows++
	}
	del := op == stream.OpDelete
	if n := len(j.runs); n > 0 && j.runs[n-1].del == del {
		j.runs[n-1].hi = seq
	} else {
		j.runs = append(j.runs, opRun{del: del, lo: seq, hi: seq})
	}
	// Rotate the spool once it crosses the controller's threshold so one
	// oversized batch never buffers unbounded CSV.
	if len(*dst) >= spoolBytes {
		kind := "ups"
		files := &j.upsFiles
		if op == stream.OpDelete {
			kind = "del"
			files = &j.delFiles
		}
		if err := j.uploadSpool(kind, *dst, *files); err != nil {
			return err
		}
		*files++
		*dst = (*dst)[:0]
	}
	return nil
}

// uploadSpool puts one rotated spool object under the batch's prefix. Puts
// are idempotent (same key, same bytes), so transient store failures retry
// whole-object.
func (j *streamJob) uploadSpool(kind string, csv []byte, fileNo int) error {
	key := fmt.Sprintf("%sb%d/%s/%06d", j.keyPfx, j.batchNo, kind, fileNo)
	upStart := time.Now()
	var n int64
	err := j.node.retry.Do(j.node.ctx, "upload", func() error {
		var uerr error
		n, uerr = j.node.loader.UploadBytes(csv, key)
		return uerr
	})
	nm := j.node.nm
	j.stageAcc.Upload += time.Since(upStart)
	nm.uploadLat.ObserveDuration(time.Since(upStart))
	j.trace.Span("upload", "stream", upStart, 0, n, err)
	if err != nil {
		return fmt.Errorf("uploading stream spool %s: %w", key, err)
	}
	nm.filesUploaded.Inc()
	nm.bytesUploaded.Add(n)
	return nil
}

// copyStage recreates a staging table and COPYs the batch's spool objects
// into it. Recreate-then-COPY on every attempt is the batch's recovery
// point: a replayed batch after a crash (and an engine-side COPY failure
// mid-batch) both rebuild identical staging state from the durable objects.
func (j *streamJob) copyStage(stage sqlparse.TableName, prefix string, want int64) error {
	ddl, err := sqlxlate.StagingDDL(stage, j.req.Layout)
	if err != nil {
		return err
	}
	copyStmt := &sqlparse.CopyStmt{
		Table:   stage,
		From:    "store://" + prefix,
		Options: map[string]string{"format": "csv", "order": sqlxlate.SeqColumn},
	}
	copySQL, err := sqlparse.Print(copyStmt, sqlparse.DialectCDW)
	if err != nil {
		return err
	}
	nm := j.node.nm
	attempt := 0
	r := *j.node.retry // shares Budget/observers; only Retryable differs
	r.Retryable = func(err error) bool {
		if retrier.IsTransient(err) {
			return true
		}
		var ce *cdw.Error
		return errors.As(err, &ce) && ce.Code == cdw.CodeCopyFailed
	}
	stageStart := time.Now()
	defer func() { j.stageAcc.Copy += time.Since(stageStart) }()
	return r.Do(j.node.ctx, "stream_copy", func() error { //nolint:retrysafe // each attempt recreates the staging table first
		attempt++
		if attempt > 1 {
			nm.copyRecoveries.Inc()
		}
		if _, err := j.node.pool.ExecT(dropIfExists(stage), j.trace.ChildContext()); err != nil {
			return err
		}
		if _, err := j.node.pool.ExecT(ddl, j.trace.ChildContext()); err != nil {
			return err
		}
		if want == 0 {
			return nil
		}
		copyStart := time.Now()
		staged, err := j.node.pool.ExecT(copySQL, j.trace.ChildContext())
		nm.copyStatements.Inc()
		j.trace.Span("copy", "stream", copyStart, staged, 0, err)
		if err != nil {
			return err
		}
		if staged != want {
			return fmt.Errorf("stream staging %s holds %d rows, want %d", stage.Name, staged, want)
		}
		return nil
	})
}

// commitBatch drives one micro-batch through stage -> apply -> checkpoint.
// The order makes the whole batch replay-idempotent: staging tables are
// rebuilt from scratch, error-table rows above the watermark are wiped
// before re-recording, the MERGE triple is idempotent per staged range, and
// the watermark only advances after everything else is durable — so a crash
// anywhere in between replays the batch to the same end state.
func (j *streamJob) commitBatch() error {
	if j.batchLo == 0 {
		return nil
	}
	nm := j.node.nm
	lo, hi := j.batchLo, j.batchHi
	rows := j.upsRows + j.delRows
	commitStart := j.batchStart

	// Flush spool remainders for both halves.
	if len(j.upsCSV) > 0 {
		if err := j.uploadSpool("ups", j.upsCSV, j.upsFiles); err != nil {
			return err
		}
		j.upsFiles++
		j.upsCSV = j.upsCSV[:0]
	}
	if len(j.delCSV) > 0 {
		if err := j.uploadSpool("del", j.delCSV, j.delFiles); err != nil {
			return err
		}
		j.delFiles++
		j.delCSV = j.delCSV[:0]
	}

	if err := j.copyStage(j.upsStage, fmt.Sprintf("%sb%d/ups/", j.keyPfx, j.batchNo), int64(j.upsRows)); err != nil {
		return err
	}
	if err := j.copyStage(j.delStage, fmt.Sprintf("%sb%d/del/", j.keyPfx, j.batchNo), int64(j.delRows)); err != nil {
		return err
	}

	// Idempotent error recording: a crashed attempt may have recorded rows
	// for sequences the watermark never covered; wipe them before this
	// attempt re-records.
	applyStart := time.Now()
	if j.etName.Name != "" {
		del := fmt.Sprintf("DELETE FROM %s WHERE SEQNO_END > %d", j.etName.String(), j.watermark)
		if _, err := j.node.pool.ExecT(del, j.trace.ChildContext()); err != nil {
			return fmt.Errorf("clearing uncommitted error rows: %w", err)
		}
	}
	if j.etName.Name != "" && len(j.dataErrs) > 0 {
		if err := recordDataErrors(j.node, j.etName, j.trace.ChildContext(), j.dataErrs); err != nil {
			return err
		}
	}
	j.errsET.Add(int64(len(j.dataErrs)))
	for range j.dataErrs {
		nm.errorsET.Inc()
	}

	if err := j.applyRuns(); err != nil {
		return err
	}
	j.stageAcc.Apply += time.Since(applyStart)
	j.trace.Span("apply", "stream", applyStart, int64(rows), 0, nil)

	// Durable watermark advance: the last write of the commit. Everything
	// before this line is idempotent under replay; after it, the batch's
	// deltas are dropped as replays.
	ckptStart := time.Now()
	updSQL, err := j.ckptUpdate(hi)
	if err != nil {
		return err
	}
	if _, err := j.node.pool.ExecT(updSQL, j.trace.ChildContext()); err != nil {
		return fmt.Errorf("advancing stream watermark: %w", err)
	}
	j.watermark = hi
	j.stageAcc.Checkpoint += time.Since(ckptStart)
	j.trace.Span("checkpoint", "stream", ckptStart, 0, 0, nil)

	// The batch's memory and objects are reclaimable now.
	j.credits.ReleaseAll()
	j.heldBytes.Store(0)
	j.heldCreds.Store(0)
	if keys, err := j.node.store.List(fmt.Sprintf("%sb%d/", j.keyPfx, j.batchNo)); err == nil {
		for _, k := range keys {
			_ = j.node.store.Delete(k)
		}
	}

	lat := time.Since(commitStart)
	st := j.stageAcc
	d := j.ctrl.ObserveStages(rows, j.batchBytes, lat, st)
	j.wmLive.Store(hi)
	j.hintLive.Store(int64(d.BatchRows))
	j.batches.Add(1)
	traceID := j.trace.Context().TraceID
	nm.streamBatches.Inc()
	nm.streamBatchRows.Observe(float64(rows))
	nm.streamCommitLat.ObserveEx(lat.Seconds(), traceID)
	nm.streamStageSpool.ObserveEx(st.Spool.Seconds(), traceID)
	nm.streamStageUpload.ObserveEx(st.Upload.Seconds(), traceID)
	nm.streamStageCopy.ObserveEx(st.Copy.Seconds(), traceID)
	nm.streamStageApply.ObserveEx(st.Apply.Seconds(), traceID)
	nm.streamStageCkpt.ObserveEx(st.Checkpoint.Seconds(), traceID)
	switch d.Action {
	case stream.ActionGrow:
		nm.streamGrows.Inc()
	case stream.ActionShrink:
		nm.streamShrinks.Inc()
	default:
		nm.streamHolds.Inc()
	}
	// The spool stage interleaves with frame ingest across the whole batch
	// window; anchoring both synthetic spans at the batch start renders them
	// as the concurrent activity they are.
	j.trace.Add(obs.Span{Stage: "frame_recv", Worker: "session", Start: commitStart, Dur: j.frameAcc, Rows: int64(rows), Bytes: int64(j.batchBytes)})
	j.trace.Add(obs.Span{Stage: "spool", Worker: "session", Start: commitStart, Dur: st.Spool, Rows: int64(rows)})
	j.trace.Span("stream_commit", "stream", commitStart, int64(rows), int64(j.batchBytes), nil)
	j.statMu.Lock()
	j.lastStat = streamCommitStat{
		rows:     rows,
		latency:  lat,
		action:   d.Action.String(),
		dominant: d.Dominant,
		stages:   j.ctrl.StageEWMA(),
	}
	j.statMu.Unlock()
	j.node.events.Add(obs.Event{
		Type: "batch_commit", Job: j.id, TraceID: j.traceID(), Msg: j.req.Name,
		Attrs: map[string]any{
			"lo": lo, "hi": hi, "rows": rows, "bytes": j.batchBytes,
			"latency_ms": lat.Milliseconds(), "dominant": d.Dominant,
		},
	})
	j.node.events.Add(obs.Event{
		Type: "ctrl_decision", Job: j.id, TraceID: j.traceID(), Msg: d.Action.String(),
		Attrs: map[string]any{
			"batch_rows": d.BatchRows, "spool_bytes": d.SpoolBytes,
			"copy_files": d.CopyFiles, "dominant": d.Dominant,
		},
	})
	j.node.log.Debug("stream micro-batch committed", "stream", j.id, "lo", lo, "hi", hi,
		"rows", rows, "latency", lat, "action", d.Action.String(), "next_batch", d.BatchRows,
		"dominant", d.Dominant)

	j.batchLo, j.batchHi = 0, 0
	j.upsRows, j.delRows = 0, 0
	j.upsFiles, j.delFiles = 0, 0
	j.batchBytes = 0
	j.runs = j.runs[:0]
	j.dataErrs = j.dataErrs[:0]
	j.stageAcc = stream.Stages{}
	j.frameAcc = 0
	j.oldestLiveNs.Store(0)
	j.batchNo++
	return nil
}

// applyRuns applies the batch's op runs in sequence order under the adaptive
// error handler: a delete run ranges the DELETE over the delete stage, an
// upsert run probes for duplicate key images (splitting until ranges are
// duplicate-free) then runs the UPDATE and guarded INSERT halves.
func (j *streamJob) applyRuns() error {
	if len(j.runs) == 0 {
		return nil
	}
	nm := j.node.nm
	var cur opRun
	apply := func(ctx context.Context, lo, hi int64) (int64, error) {
		if cur.del {
			sql, err := j.sd.Delete.SQL(lo, hi)
			if err != nil {
				return 0, err
			}
			n, err := j.node.pool.ExecT(sql, j.trace.ChildContext())
			if err != nil {
				return 0, err
			}
			j.deleted.Add(n)
			nm.rowsDeleted.Add(n)
			return n, nil
		}
		if lo < hi && j.intraDup != nil {
			sql, err := j.intraDup.SQL(lo, hi)
			if err != nil {
				return 0, err
			}
			_, dups, err := j.node.pool.QueryAllT(sql, j.trace.ChildContext())
			if err != nil {
				return 0, err
			}
			if len(dups) == 1 && dups[0][0].I > 0 {
				return 0, errStreamDupRange
			}
		}
		var a1 int64
		if j.sd.Update != nil {
			sql, err := j.sd.Update.SQL(lo, hi)
			if err != nil {
				return 0, err
			}
			if a1, err = j.node.pool.ExecT(sql, j.trace.ChildContext()); err != nil {
				return 0, err
			}
		}
		sql, err := j.sd.Insert.SQL(lo, hi)
		if err != nil {
			return 0, err
		}
		a2, err := j.node.pool.ExecT(sql, j.trace.ChildContext())
		if err != nil {
			return 0, err
		}
		j.updated.Add(a1)
		j.inserted.Add(a2)
		nm.rowsUpdated.Add(a1)
		nm.rowsInserted.Add(a2)
		return a1 + a2, nil
	}

	classify := func(err error) errhandle.Classified {
		if errors.Is(err, errStreamDupRange) {
			// Not a data error: just force the split toward duplicate-free
			// ranges. Never reaches a singleton, so never recorded.
			return errhandle.Classified{Msg: err.Error()}
		}
		var ex *retrier.Exhausted
		if errors.As(err, &ex) {
			return errhandle.Classified{Fatal: true, Msg: err.Error()}
		}
		ce, ok := err.(*cdw.Error)
		if !ok {
			return errhandle.Classified{Fatal: true, Msg: err.Error()}
		}
		switch ce.Code {
		case cdw.CodeNoSuchObject, cdw.CodeNoSuchColumn, cdw.CodeSyntax,
			cdw.CodeUnsupported, cdw.CodeCopyFailed, cdw.CodeInternal:
			return errhandle.Classified{Fatal: true, Code: ce.Code, Msg: ce.Msg}
		default:
			return errhandle.Classified{Code: ce.Code, Field: ce.Field, Msg: ce.Msg}
		}
	}

	record := func(lo, hi int64, c errhandle.Classified) error {
		msg := c.Msg
		if c.Code == errhandle.CodeMaxErrors {
			msg = fmt.Sprintf("Max number of errors reached during stream apply on %s, row numbers: (%d, %d)", j.targets, lo, hi)
		} else {
			msg = fmt.Sprintf("%s during stream apply on %s, row number: %d", c.Msg, j.targets, lo)
		}
		j.errsET.Add(1)
		nm.errorsET.Inc()
		if j.etName.Name == "" {
			return nil // stream declared no error table; drop like the legacy tools
		}
		return recordError(j.node, j.etName, j.trace.ChildContext(), lo, hi, c.Code, c.Field, msg)
	}

	cfg := errhandle.Config{
		MaxErrors:  int(j.req.MaxErrors),
		MaxRetries: j.node.cfg.MaxRetries,
		Observe: func(depth int, lo, hi int64, d time.Duration, err error) {
			nm.dmlStatements.Inc()
			nm.dmlLat.ObserveDuration(d)
			if err != nil {
				nm.splitDepth.Observe(float64(depth))
			}
			j.trace.Add(obs.Span{Stage: "dml", Worker: "stream",
				Start: time.Now().Add(-d), Dur: d, Rows: hi - lo + 1, Depth: depth,
				Err: errString(err)})
		},
	}
	if cfg.MaxErrors == 0 {
		cfg.MaxErrors = j.node.cfg.MaxErrors
	}
	h := errhandle.New(cfg, apply, classify, record)
	for _, run := range j.runs {
		cur = run
		if err := h.Run(j.node.ctx, run.lo, run.hi); err != nil {
			return err
		}
	}
	st := h.Stats()
	nm.adaptiveSplits.Add(st.Splits)
	nm.blockErrors.Add(st.BlockErrors)
	return nil
}

// finishStream commits any buffered tail and closes the stream. The
// checkpoint row and error table survive — they are the stream's durable
// identity for the next incarnation.
func (j *streamJob) finishStream() (*wire.StreamDone, error) {
	if err := j.commitBatch(); err != nil {
		return nil, err
	}
	done := &wire.StreamDone{
		StreamID:  j.id,
		Watermark: uint64(j.watermark),
		Inserted:  uint64(j.inserted.Load()),
		Updated:   uint64(j.updated.Load()),
		Deleted:   uint64(j.deleted.Load()),
		ErrorsET:  uint64(j.errsET.Load()),
		Replayed:  uint64(j.replayed.Load()),
	}
	j.node.events.Add(obs.Event{
		Type: "stream_finish", Job: j.id, TraceID: j.traceID(), Msg: j.req.Name,
		Attrs: map[string]any{
			"watermark": j.watermark,
			"batches":   j.batches.Load(),
			"replayed":  j.replayed.Load(),
		},
	})
	j.finish()
	return done, nil
}

// abort tears down a stream whose client went away mid-batch: buffered
// deltas are discarded (the client replays them on resume) and their credits
// returned so a dead stream can never leak pool capacity.
func (j *streamJob) abort() {
	j.credits.ReleaseAll()
	j.heldBytes.Store(0)
	j.heldCreds.Store(0)
	j.oldestLiveNs.Store(0)
	j.node.nm.streamsAborted.Inc()
	j.node.events.Add(obs.Event{
		Type: "stream_abort", Job: j.id, TraceID: j.traceID(), Msg: j.req.Name,
		Attrs: map[string]any{"watermark": j.watermark},
	})
	j.node.log.Warn("stream aborted by client disconnect", "stream", j.id,
		"name", j.req.Name, "watermark", j.watermark)
	j.finish()
}

// finish removes the stream's transient state: staging tables, uploaded
// batch objects, registry entry. Checkpoint and error tables stay.
func (j *streamJob) finish() {
	j.finishSeq.Do(func() {
		_, _ = j.node.pool.ExecT(dropIfExists(j.upsStage), j.trace.ChildContext())
		_, _ = j.node.pool.ExecT(dropIfExists(j.delStage), j.trace.ChildContext())
		if keys, err := j.node.store.List(j.keyPfx); err == nil {
			for _, k := range keys {
				_ = j.node.store.Delete(k)
			}
		}
		putBuf(j.upsCSV)
		putBuf(j.delCSV)
		j.upsCSV, j.delCSV = nil, nil
		j.node.tracer.Finish(j.id)
		j.node.mu.Lock()
		delete(j.node.streams, j.id)
		j.node.mu.Unlock()
	})
}
