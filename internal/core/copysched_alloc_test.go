package core

import (
	"fmt"
	"strings"
	"testing"

	"etlvirt/internal/sqlparse"
)

// allocJob builds the minimal importJob shape copySQL reads: the staging
// table name, the object-store prefix, and the node config the gzip option
// comes from.
func allocJob() *importJob {
	return &importJob{
		stage:  sqlparse.TableName{Schema: "etlvirt_stage", Name: "job42"},
		keyPfx: "job42/",
		node:   &Node{cfg: Config{}.withDefaults()},
	}
}

func manifestFiles(n int) []string {
	files := make([]string, n)
	for i := range files {
		files[i] = fmt.Sprintf("part-%05d.csv.gz", i)
	}
	return files
}

// TestTakeBatchAllocFree pins the copy-scheduler hot path at zero
// allocations: splitting the next manifest batch off the pending list is
// pure reslicing.
func TestTakeBatchAllocFree(t *testing.T) {
	pending := manifestFiles(64)
	var batch, rest []string
	allocs := testing.AllocsPerRun(200, func() {
		rest = pending
		for len(rest) > 0 {
			batch, rest = takeBatch(rest, 4)
		}
	})
	if allocs != 0 {
		t.Errorf("takeBatch allocates %.1f times per drain, want 0", allocs)
	}
	_ = batch
}

// TestTakeBatchClamping covers the batch-size edges: a non-positive or
// oversized n degrades to a usable batch instead of panicking, and the batch
// slice is capacity-capped so appends to rest can never alias into it.
func TestTakeBatchClamping(t *testing.T) {
	pending := manifestFiles(3)
	batch, rest := takeBatch(pending, 0)
	if len(batch) != 1 || len(rest) != 2 {
		t.Errorf("n=0: batch %d rest %d, want 1/2", len(batch), len(rest))
	}
	batch, rest = takeBatch(pending, 99)
	if len(batch) != 3 || len(rest) != 0 {
		t.Errorf("n=99: batch %d rest %d, want 3/0", len(batch), len(rest))
	}
	batch, rest = takeBatch(pending, 2)
	if cap(batch) != len(batch) {
		t.Errorf("batch cap %d exceeds len %d: appends to rest could corrupt it", cap(batch), len(batch))
	}
	_ = rest
}

// TestCopyManifestSQLAllocBound bounds the allocations of building one
// manifest COPY statement — the per-batch cost the scheduler pays on every
// issue while acquisition is running.
func TestCopyManifestSQLAllocBound(t *testing.T) {
	j := allocJob()
	files := manifestFiles(16)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := j.copySQL(files); err != nil {
			t.Fatal(err)
		}
	})
	const bound = 64
	if allocs > bound {
		t.Errorf("copySQL(16 files) allocates %.1f times, want <= %d", allocs, bound)
	}
}

// TestCopySQLManifestShape pins the statement the scheduler issues: explicit
// FILES manifest, ordered format options, and no statement-level gzip (the
// engine sniffs per-file .gz suffixes on manifest COPYs).
func TestCopySQLManifestShape(t *testing.T) {
	j := allocJob()
	j.node.cfg.Gzip = true
	sql, err := j.copySQL([]string{"a.csv.gz", "b.csv.gz"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FILES", "'a.csv.gz'", "'b.csv.gz'", "store://job42/"} {
		if !strings.Contains(sql, want) {
			t.Errorf("manifest COPY %q missing %q", sql, want)
		}
	}
	if strings.Contains(strings.ToLower(sql), "gzip") {
		t.Errorf("manifest COPY %q should rely on per-file suffixes, not a gzip option", sql)
	}
	sweep, err := j.copySQL(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(sweep), "gzip") {
		t.Errorf("prefix COPY %q should keep the statement-level gzip option", sweep)
	}
}

// BenchmarkTakeBatch measures the scheduler's batch-split hot path.
func BenchmarkTakeBatch(b *testing.B) {
	pending := manifestFiles(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rest := pending
		for len(rest) > 0 {
			_, rest = takeBatch(rest, 4)
		}
	}
}

// BenchmarkCopyManifestSQL measures building the incremental COPY statement
// for one 16-file batch.
func BenchmarkCopyManifestSQL(b *testing.B) {
	j := allocJob()
	files := manifestFiles(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := j.copySQL(files); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStaticGzipLevel keeps the knob mapping on the scheduler's control
// path honest — it runs on every tuner tick.
func BenchmarkStaticGzipLevel(b *testing.B) {
	cfgs := []Config{{}, {Gzip: true}, {Gzip: true, GzipLevel: 9}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, c := range cfgs {
			_ = staticGzipLevel(c)
		}
	}
}
