package core_test

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"

	"etlvirt/internal/core"
	"etlvirt/internal/etlclient"
	"etlvirt/internal/ltype"
	"etlvirt/internal/obs"
	"etlvirt/internal/wire"
)

const accountDDL = `CREATE TABLE PROD.ACCOUNT (
	ACCT_ID VARCHAR(8) NOT NULL,
	OWNER VARCHAR(40),
	PRIMARY KEY (ACCT_ID))`

// cdcScript mirrors examples/cdcstream: one stream block with a tight
// latency target feeding PROD.ACCOUNT.
const cdcScript = `
.logon host/user,pass;
.layout AcctLayout;
.field ACCT_ID varchar(8);
.field OWNER varchar(40);
.begin stream name acct_cdc tables PROD.ACCOUNT
	errortables PROD.ACCOUNT_ET latency 50;
.dml label Apply;
insert into PROD.ACCOUNT values ( trim(:ACCT_ID), trim(:OWNER) );
.stream infile deltas.txt format vartext '|' layout AcctLayout apply Apply;
.end stream;
`

func cdcDeltas(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "I|A%06d|Owner %d\n", i, i)
	}
	return sb.String()
}

// TestDistributedTraceStitched is the PR's acceptance pin: a traced
// cdcstream-style run must leave one stitched trace whose spans come from
// all three processes — etlclient, etlvirtd and cdwd — causally linked into
// a single tree under the client's root span.
func TestDistributedTraceStitched(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, accountDDL)
	dbgAddr, err := st.node.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	res := runScript(t, st.addr, cdcScript, map[string]string{"deltas.txt": cdcDeltas(60)},
		etlclient.Options{Trace: true})
	if len(res.TraceID) != 16 {
		t.Fatalf("client trace ID: %q", res.TraceID)
	}

	code, body := httpGet(t, dbgAddr, "/traces/"+res.TraceID)
	if code != 200 {
		t.Fatalf("/traces/%s: status %d: %s", res.TraceID, code, body)
	}
	var snap obs.TraceSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if snap.TraceID != res.TraceID {
		t.Errorf("stitched trace ID %q, want %q", snap.TraceID, res.TraceID)
	}
	if !snap.Finished {
		t.Errorf("trace not finished after the run completed")
	}

	byID := make(map[uint64]obs.Span, len(snap.Spans))
	procs := map[string]int{}
	for _, sp := range snap.Spans {
		if sp.ID == 0 {
			t.Fatalf("span without ID: %+v", sp)
		}
		byID[sp.ID] = sp
		procs[sp.Proc]++
	}
	for _, proc := range []string{"etlclient", "etlvirtd", "cdwd"} {
		if procs[proc] == 0 {
			t.Errorf("no spans from %s; have %v", proc, procs)
		}
	}

	// Every parent link resolves inside the trace: the tree has no orphans.
	var clientRoot, serverRoot obs.Span
	for _, sp := range snap.Spans {
		if sp.Parent != 0 {
			if _, ok := byID[sp.Parent]; !ok {
				t.Errorf("span %d (%s/%s) parent %d not in trace", sp.ID, sp.Proc, sp.Stage, sp.Parent)
			}
		}
		switch {
		case sp.Proc == "etlclient" && sp.Stage == "client":
			clientRoot = sp
		case sp.Proc == "etlvirtd" && sp.Stage == "job":
			serverRoot = sp
		}
	}
	if clientRoot.ID == 0 {
		t.Fatal("no client root span")
	}
	if clientRoot.Parent != 0 {
		t.Errorf("client root has parent %d, want none", clientRoot.Parent)
	}
	if serverRoot.ID == 0 {
		t.Fatal("no virtualizer job root span")
	}
	// Causal order across processes: the virtualizer's job root parents
	// under the client root, and every cdwd engine span nests inside a
	// virtualizer-side cdw_* round-trip span.
	if serverRoot.Parent != clientRoot.ID {
		t.Errorf("virtualizer root parent %d, want client root %d", serverRoot.Parent, clientRoot.ID)
	}
	engines := 0
	for _, sp := range snap.Spans {
		if sp.Proc != "cdwd" {
			continue
		}
		engines++
		parent, ok := byID[sp.Parent]
		if !ok {
			continue // already reported above
		}
		if parent.Proc != "etlvirtd" || !strings.HasPrefix(parent.Stage, "cdw_") {
			t.Errorf("engine span %d parent is %s/%s, want an etlvirtd cdw_* span", sp.ID, parent.Proc, parent.Stage)
			continue
		}
		if sp.Start.Before(parent.Start) || sp.Start.Add(sp.Dur).After(parent.Start.Add(parent.Dur)) {
			t.Errorf("engine span [%v +%v] escapes its round trip [%v +%v]",
				sp.Start, sp.Dur, parent.Start, parent.Dur)
		}
	}
	if engines == 0 {
		t.Error("no cdwd engine spans in the stitched trace")
	}

	// The stream's per-stage attribution made it into the same trace.
	stages := map[string]int{}
	for _, sp := range snap.Spans {
		stages[sp.Stage]++
	}
	for _, want := range []string{"frame_recv", "spool", "apply", "checkpoint"} {
		if stages[want] == 0 {
			t.Errorf("stage %q missing from stitched trace; have %v", want, stages)
		}
	}

	// Chrome export lays the three processes out as separate trace processes.
	code, body = httpGet(t, dbgAddr, "/traces/"+res.TraceID+"?format=chrome")
	if code != 200 {
		t.Fatalf("chrome trace: status %d", code)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &chrome); err != nil {
		t.Fatalf("chrome JSON: %v", err)
	}
	chromeProcs := map[string]bool{}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			chromeProcs[fmt.Sprint(ev.Args["name"])] = true
		}
	}
	if len(chromeProcs) < 3 {
		t.Errorf("chrome trace has %d processes, want >= 3: %v", len(chromeProcs), chromeProcs)
	}

	if code, _ := httpGet(t, dbgAddr, "/traces/0123456789abcdef"); code != 404 {
		t.Errorf("unknown trace: status %d, want 404", code)
	}
	if code, _ := httpGet(t, dbgAddr, "/traces/nothex"); code != 400 {
		t.Errorf("malformed trace ID: status %d, want 400", code)
	}
}

// TestLiveJobTraceEndpoint pins /jobs/{id}/trace for a job that is still
// running: the snapshot must be served mid-flight, unfinished, and then
// flip to finished once the job retires.
func TestLiveJobTraceEndpoint(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)
	dbgAddr, err := st.node.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	conn, err := wire.Dial(st.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(0, &wire.Logon{User: "u"}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Expect(wire.KindLogonOK); err != nil {
		t.Fatal(err)
	}
	layout := &ltype.Layout{Name: "L", Fields: []ltype.Field{
		{Name: "K", Type: ltype.VarChar(5)},
		{Name: "V", Type: ltype.VarChar(50)},
		{Name: "D", Type: ltype.VarChar(10)},
	}}
	if err := conn.Send(0, &wire.BeginLoad{
		Table: "PROD.CUSTOMER", Layout: layout,
		Format: wire.FormatVartext, Delim: '|', Sessions: 1,
	}); err != nil {
		t.Fatal(err)
	}
	m, err := conn.Expect(wire.KindLoadOK)
	if err != nil {
		t.Fatal(err)
	}
	jobID := m.(*wire.LoadOK).JobID

	if err := conn.Send(0, &wire.DataChunk{
		JobID: jobID, Seq: 0, FirstRow: 1, Count: 1,
		Payload: []byte("1|A|2020-01-01\n"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Expect(wire.KindChunkAck); err != nil {
		t.Fatal(err)
	}

	path := fmt.Sprintf("/jobs/%d/trace", jobID)
	code, body := httpGet(t, dbgAddr, path)
	if code != 200 {
		t.Fatalf("live trace: status %d: %s", code, body)
	}
	var snap obs.TraceSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("live trace JSON: %v", err)
	}
	if snap.Finished {
		t.Error("trace reported finished while the job is mid-acquisition")
	}
	if !snap.End.IsZero() {
		t.Errorf("live trace has an end time: %v", snap.End)
	}
	if len(snap.TraceID) != 16 {
		t.Errorf("live trace ID: %q", snap.TraceID)
	}
	if len(snap.Spans) == 0 {
		t.Fatal("live trace has no spans")
	}
	// The synthesized root span covers the job so far and keeps growing.
	if snap.Spans[0].Stage != "job" {
		t.Errorf("first span: %q, want the job root", snap.Spans[0].Stage)
	}

	if err := conn.Send(0, &wire.EndAcquire{JobID: jobID}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Expect(wire.KindAcquireDone); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(0, &wire.EndLoad{JobID: jobID}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Expect(wire.KindLoadDone); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body = httpGet(t, dbgAddr, path)
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("finished trace JSON: %v", err)
		}
		if snap.Finished {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("trace never finished after LoadDone")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if snap.End.IsZero() {
		t.Error("finished trace has no end time")
	}
}

// TestStreamWatermarkLagGauge drives a stream by hand and scrapes /metrics
// and /streams while it is open: the per-stream watermark-lag gauge and the
// SLO attribution view must both report the live stream.
func TestStreamWatermarkLagGauge(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, accountDDL)
	dbgAddr, err := st.node.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	conn, err := wire.Dial(st.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(0, &wire.Logon{User: "u"}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Expect(wire.KindLogonOK); err != nil {
		t.Fatal(err)
	}
	layout := &ltype.Layout{Name: "A", Fields: []ltype.Field{
		{Name: "ACCT_ID", Type: ltype.VarChar(8)},
		{Name: "OWNER", Type: ltype.VarChar(40)},
	}}
	if err := conn.Send(0, &wire.BeginStream{
		Name: "lag_probe", Table: "PROD.ACCOUNT", ErrTableET: "PROD.ACCOUNT_ET",
		Layout: layout, Format: wire.FormatVartext, Delim: '|',
		SQL:             "insert into PROD.ACCOUNT values ( trim(:ACCT_ID), trim(:OWNER) )",
		LatencyTargetMS: 100,
	}); err != nil {
		t.Fatal(err)
	}
	m, err := conn.Expect(wire.KindStreamOK)
	if err != nil {
		t.Fatal(err)
	}
	ok := m.(*wire.StreamOK)

	var payload []byte
	payload = append(payload, 'I')
	payload = append(payload, []byte("A000001|Owner 1\n")...)
	if err := conn.Send(0, &wire.DeltaFrame{
		StreamID: ok.StreamID, FirstSeq: 1, Count: 1, Payload: payload,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Expect(wire.KindDeltaAck); err != nil {
		t.Fatal(err)
	}

	_, metrics := httpGet(t, dbgAddr, "/metrics")
	if !strings.Contains(metrics, `etlvirt_stream_watermark_lag_seconds{stream="lag_probe"}`) {
		t.Errorf("no live watermark-lag series for the open stream:\n%s",
			grepPrefix(metrics, "etlvirt_stream_watermark_lag"))
	}

	code, body := httpGet(t, dbgAddr, "/streams")
	if code != 200 {
		t.Fatalf("/streams: status %d", code)
	}
	var streams []core.StreamStatus
	if err := json.Unmarshal([]byte(body), &streams); err != nil {
		t.Fatalf("/streams JSON: %v\n%s", err, body)
	}
	if len(streams) != 1 {
		t.Fatalf("streams: %+v, want one open stream", streams)
	}
	ss := streams[0]
	if ss.Name != "lag_probe" || ss.Target != "PROD.ACCOUNT" {
		t.Errorf("stream status identity: %+v", ss)
	}
	if ss.SLOTargetMS != 100 {
		t.Errorf("SLO target: %d ms, want 100", ss.SLOTargetMS)
	}
	if len(ss.TraceID) != 16 {
		t.Errorf("stream trace ID: %q", ss.TraceID)
	}

	if err := conn.Send(0, &wire.EndStream{StreamID: ok.StreamID}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Expect(wire.KindStreamDone); err != nil {
		t.Fatal(err)
	}
	// Closed stream leaves the gauge: no stale series.
	_, metrics = httpGet(t, dbgAddr, "/metrics")
	if strings.Contains(metrics, `etlvirt_stream_watermark_lag_seconds{stream=`) {
		t.Errorf("watermark-lag series survived stream close:\n%s",
			grepPrefix(metrics, "etlvirt_stream_watermark_lag"))
	}
}

// TestMetricsExpositionFormat parses /metrics line by line and pins the
// Prometheus text exposition contract: families sorted by name, HELP
// directly before TYPE with non-empty help text, every sample parseable,
// histogram buckets with strictly increasing bounds, non-decreasing
// cumulative counts, a trailing +Inf bucket equal to _count.
func TestMetricsExpositionFormat(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)
	mustEng(t, st.eng, accountDDL)
	dbgAddr, err := st.node.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, st.addr, example21Script(""), map[string]string{"input.txt": figure5Data},
		etlclient.Options{ChunkRecords: 2, Trace: true})
	// A traced stream run populates the stream-stage histograms and leaves
	// exemplars behind for the opt-in exposition variant.
	runScript(t, st.addr, cdcScript, map[string]string{"deltas.txt": cdcDeltas(40)},
		etlclient.Options{Trace: true})

	_, body := httpGet(t, dbgAddr, "/metrics")

	type bucket struct {
		le    float64
		count int64
	}
	var families []string // in exposition order
	buckets := map[string][]bucket{}
	counts := map[string]int64{}
	sums := map[string]bool{}
	samples := map[string]int{}
	typed := map[string]string{}
	lastHelp := ""

	for i, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(line, " ", 4)
			if len(parts) != 4 || strings.TrimSpace(parts[3]) == "" {
				t.Errorf("line %d: HELP without help text: %q", i+1, line)
				continue
			}
			families = append(families, parts[2])
			lastHelp = parts[2]
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			if parts[2] != lastHelp {
				t.Errorf("line %d: TYPE %s does not follow its HELP (last HELP %s)", i+1, parts[2], lastHelp)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("line %d: unknown metric type %q", i+1, parts[3])
			}
			typed[parts[2]] = parts[3]
		case strings.HasPrefix(line, "#"):
			t.Errorf("line %d: unexpected comment %q", i+1, line)
		default:
			fields := strings.Fields(line)
			if len(fields) != 2 {
				t.Errorf("line %d: sample is not `name value`: %q", i+1, line)
				continue
			}
			val, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Errorf("line %d: unparseable value %q", i+1, fields[1])
				continue
			}
			name := fields[0]
			samples[name]++
			fam := metricFamily(name)
			if typed[fam] == "" {
				t.Errorf("line %d: sample %q precedes its TYPE line", i+1, name)
			}
			switch {
			case strings.Contains(name, "_bucket{le="):
				base := name[:strings.Index(name, "_bucket{")]
				leStr := name[strings.Index(name, `le="`)+4:]
				leStr = leStr[:strings.IndexByte(leStr, '"')]
				le := math.Inf(1)
				if leStr != "+Inf" {
					if le, err = strconv.ParseFloat(leStr, 64); err != nil {
						t.Errorf("line %d: unparseable le %q", i+1, leStr)
						continue
					}
				}
				buckets[base] = append(buckets[base], bucket{le: le, count: int64(val)})
			case strings.HasSuffix(name, "_sum"):
				sums[strings.TrimSuffix(name, "_sum")] = true
			case strings.HasSuffix(name, "_count"):
				counts[strings.TrimSuffix(name, "_count")] = int64(val)
			}
		}
	}

	if len(families) == 0 {
		t.Fatal("no metric families parsed")
	}
	sorted := append([]string(nil), families...)
	seen := map[string]bool{}
	for _, f := range families {
		if seen[f] {
			t.Errorf("family %s exposed twice", f)
		}
		seen[f] = true
	}
	if !strings.HasPrefix(families[0], "etlvirt_") {
		t.Errorf("first family %q outside the namespace", families[0])
	}
	sortStrings(sorted)
	for i := range families {
		if families[i] != sorted[i] {
			t.Fatalf("families not sorted: position %d has %s, sorted order wants %s", i, families[i], sorted[i])
		}
	}
	for name, n := range samples {
		if n > 1 {
			t.Errorf("series %s emitted %d times", name, n)
		}
	}

	histFamilies := 0
	for fam, typ := range typed {
		if typ != "histogram" {
			continue
		}
		histFamilies++
		bks := buckets[fam]
		if len(bks) == 0 {
			t.Errorf("histogram %s has no buckets", fam)
			continue
		}
		for i := 1; i < len(bks); i++ {
			if bks[i].le <= bks[i-1].le {
				t.Errorf("%s: bucket bounds not increasing: le=%v after le=%v", fam, bks[i].le, bks[i-1].le)
			}
			if bks[i].count < bks[i-1].count {
				t.Errorf("%s: cumulative counts decrease: %d after %d (le=%v)", fam, bks[i].count, bks[i-1].count, bks[i].le)
			}
		}
		last := bks[len(bks)-1]
		if !math.IsInf(last.le, 1) {
			t.Errorf("%s: last bucket le=%v, want +Inf", fam, last.le)
		}
		if !sums[fam] {
			t.Errorf("%s: no _sum series", fam)
		}
		c, ok := counts[fam]
		if !ok {
			t.Errorf("%s: no _count series", fam)
		} else if c != last.count {
			t.Errorf("%s: _count %d != +Inf bucket %d", fam, c, last.count)
		}
	}
	if histFamilies < 10 {
		t.Errorf("only %d histogram families parsed", histFamilies)
	}

	// The traced import left exemplars behind the opt-in query parameter.
	_, exemplars := httpGet(t, dbgAddr, "/metrics?exemplars=1")
	if !strings.Contains(exemplars, `# {trace_id="`) {
		t.Error("no exemplar annotations on /metrics?exemplars=1 after a traced run")
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k] < s[k-1]; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
}
