package core_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cdwnet"
	"etlvirt/internal/cloudstore"
	"etlvirt/internal/core"
	"etlvirt/internal/etlclient"
	"etlvirt/internal/etlscript"
	"etlvirt/internal/ltype"
	"etlvirt/internal/wire"
)

// stack is a complete virtualized environment: object store, CDW engine +
// server, and a virtualizer node.
type stack struct {
	store *cloudstore.MemStore
	eng   *cdw.Engine
	node  *core.Node
	addr  string // node address for legacy clients
}

func startStack(t *testing.T, cfg core.Config) *stack {
	t.Helper()
	store := cloudstore.NewMemStore()
	eng := cdw.NewEngine(store, cdw.Options{})
	srv := cdwnet.NewServer(eng)
	cdwAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	cfg.CDWAddr = cdwAddr
	node := core.NewNode(cfg, store)
	addr, err := node.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	return &stack{store: store, eng: eng, node: node, addr: addr}
}

// figure5Data is the data file of Figure 5(a).
const figure5Data = `123|Smith|2012-01-01
456|Brown|xxxx
789|Brown|yyyyy
123|Jones|2012-12-01
157|Jones|2012-12-01
`

// example21Script builds the Example 2.1 script with optional extra options
// on the .begin import line.
func example21Script(opts string) string {
	return fmt.Sprintf(`
.logon host/user,pass;
.layout CustLayout;
.field CUST_ID varchar(5);
.field CUST_NAME varchar(50);
.field JOIN_DATE varchar(10);
.begin import tables PROD.CUSTOMER
	errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV%s;
.dml label InsApply;
insert into PROD.CUSTOMER values (
	trim(:CUST_ID), trim(:CUST_NAME),
	cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') );
.import infile input.txt
	format vartext '|' layout CustLayout
	apply InsApply;
.end load;
`, opts)
}

const customerDDL = `CREATE TABLE PROD.CUSTOMER (
	CUST_ID VARCHAR(5) NOT NULL,
	CUST_NAME VARCHAR(50),
	JOIN_DATE DATE,
	PRIMARY KEY (CUST_ID))`

func runScript(t *testing.T, addr, script string, files map[string]string, opts etlclient.Options) *etlclient.Result {
	t.Helper()
	s, err := etlscript.Parse(script)
	if err != nil {
		t.Fatal(err)
	}
	opts.Addr = addr
	opts.ReadFile = func(name string) ([]byte, error) {
		data, ok := files[name]
		if !ok {
			return nil, fmt.Errorf("no such test file %q", name)
		}
		return []byte(data), nil
	}
	res, err := etlclient.Run(s, opts)
	if err != nil {
		t.Fatalf("script run failed: %v", err)
	}
	return res
}

func mustEng(t *testing.T, eng *cdw.Engine, sql string) *cdw.Result {
	t.Helper()
	res, err := eng.ExecSQL(sql)
	if err != nil {
		t.Fatalf("ExecSQL(%q): %v", sql, err)
	}
	return res
}

// TestFigure5Example21 reproduces the paper's worked example end to end
// through the virtualizer: bad dates land in the ET table, the uniqueness
// violation lands in the UV table, and the loadable tuples reach the target.
func TestFigure5Example21(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)

	res := runScript(t, st.addr, example21Script(""), map[string]string{"input.txt": figure5Data},
		etlclient.Options{ChunkRecords: 2})
	ir := res.Imports[0]
	if ir.RowsSent != 5 || ir.RowsStaged != 5 || ir.DataErrors != 0 {
		t.Errorf("acquisition: %+v", ir)
	}
	if ir.Inserted != 2 {
		t.Errorf("inserted = %d, want 2", ir.Inserted)
	}
	if ir.ErrorsET != 2 || ir.ErrorsUV != 1 {
		t.Errorf("errors: ET=%d UV=%d, want 2/1", ir.ErrorsET, ir.ErrorsUV)
	}

	// target table: rows 1 and 5 (Figure 5(d))
	rows := mustEng(t, st.eng, "SELECT cust_id, cust_name FROM PROD.CUSTOMER ORDER BY cust_id").Rows
	if len(rows) != 2 || rows[0][0].S != "123" || rows[0][1].S != "Smith" ||
		rows[1][0].S != "157" || rows[1][1].S != "Jones" {
		t.Errorf("target rows: %v", rows)
	}

	// ET table: rows 2 and 3 with the date-conversion code (Figure 5(b))
	et := mustEng(t, st.eng, "SELECT SEQNO, ERRCODE, ERRFIELD FROM PROD.CUSTOMER_ET ORDER BY SEQNO").Rows
	if len(et) != 2 {
		t.Fatalf("ET rows: %v", et)
	}
	for i, want := range []int64{2, 3} {
		if et[i][0].I != want || et[i][1].I != cdw.CodeDateConv {
			t.Errorf("ET row %d: %v", i, et[i])
		}
		if !strings.Contains(et[i][2].S, "JOIN_DATE") {
			t.Errorf("ET field: %v", et[i][2])
		}
	}

	// UV table: row 4 with the uniqueness code (Figure 5(c))
	uv := mustEng(t, st.eng, "SELECT SEQNO, ERRCODE, ERRMSG FROM PROD.CUSTOMER_UV").Rows
	if len(uv) != 1 || uv[0][0].I != 4 || uv[0][1].I != cdw.CodeUniqueness {
		t.Fatalf("UV rows: %v", uv)
	}
	if !strings.Contains(uv[0][2].S, "123|Jones|2012-12-01") {
		t.Errorf("UV message should carry the violating tuple: %q", uv[0][2].S)
	}

	// staging table dropped after EndLoad
	if _, err := st.eng.ExecSQL("SELECT * FROM etl_stage.job_1"); err == nil {
		t.Error("staging table survived EndLoad")
	}
	// uploaded objects cleaned up
	keys, _ := st.store.List("jobs/")
	if len(keys) != 0 {
		t.Errorf("leftover objects: %v", keys)
	}
}

// TestFigure6MaxErrors reproduces Figure 6: with max_errors=2 the first two
// bad tuples are recorded individually and the remaining failing range
// (rows 4-5) becomes one block entry with code 9057.
func TestFigure6MaxErrors(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)

	res := runScript(t, st.addr, example21Script("\n\tmaxerrors 2"),
		map[string]string{"input.txt": figure5Data}, etlclient.Options{ChunkRecords: 5})
	ir := res.Imports[0]
	if ir.Inserted != 1 {
		t.Errorf("inserted = %d, want 1 (row 5 is blocked with row 4)", ir.Inserted)
	}

	et := mustEng(t, st.eng, "SELECT SEQNO, SEQNO_END, ERRCODE, ERRMSG FROM PROD.CUSTOMER_ET ORDER BY SEQNO").Rows
	if len(et) != 3 {
		t.Fatalf("ET rows: %v", et)
	}
	if et[0][0].I != 2 || et[0][2].I != cdw.CodeDateConv {
		t.Errorf("ET row 0: %v", et[0])
	}
	if et[1][0].I != 3 || et[1][2].I != cdw.CodeDateConv {
		t.Errorf("ET row 1: %v", et[1])
	}
	if et[2][0].I != 4 || et[2][1].I != 5 || et[2][2].I != 9057 {
		t.Errorf("block entry: %v", et[2])
	}
	if !strings.Contains(et[2][3].S, "(4, 5)") {
		t.Errorf("block message: %q", et[2][3].S)
	}
	uv := mustEng(t, st.eng, "SELECT count(*) FROM PROD.CUSTOMER_UV").Rows
	if uv[0][0].I != 0 {
		t.Errorf("UV rows recorded despite block: %v", uv)
	}
}

// TestCleanLoadSingleStatement verifies the no-error fast path: one DML
// statement for the whole staged range, no error-table entries.
func TestCleanLoadSingleStatement(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)
	clean := "1|Alpha|2020-01-01\n2|Beta|2020-01-02\n3|Gamma|2020-01-03\n4|Delta|2020-01-04\n"
	res := runScript(t, st.addr, example21Script(""), map[string]string{"input.txt": clean},
		etlclient.Options{ChunkRecords: 2})
	ir := res.Imports[0]
	if ir.Inserted != 4 || ir.ErrorsET != 0 || ir.ErrorsUV != 0 {
		t.Errorf("result: %+v", ir)
	}
	reports := st.node.Reports()
	if len(reports) != 1 {
		t.Fatalf("reports: %d", len(reports))
	}
	r := reports[0]
	// dup-check (2 queries) + 1 insert = 1 apply attempt
	if r.ApplyStmts != 1 {
		t.Errorf("apply stmts = %d, want 1", r.ApplyStmts)
	}
	if r.RowsIn != 4 || r.RowsStaged != 4 || r.Chunks != 2 {
		t.Errorf("report: %+v", r)
	}
	if r.Acquisition <= 0 {
		t.Errorf("acquisition duration missing: %+v", r)
	}
}

// TestParallelSessionsAndLargeLoad pushes a larger load through multiple
// parallel data sessions and verifies counts survive the full pipeline.
func TestParallelSessionsAndLargeLoad(t *testing.T) {
	st := startStack(t, core.Config{
		FileSizeThreshold: 8 << 10, // force several intermediate files
		Converters:        4,
		FileWriters:       2,
	})
	mustEng(t, st.eng, customerDDL)

	var sb strings.Builder
	const n = 5000
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d|Customer %d|2021-%02d-%02d\n", i, i, 1+i%12, 1+i%28)
	}
	script := example21Script(" sessions 4")
	res := runScript(t, st.addr, script, map[string]string{"input.txt": sb.String()},
		etlclient.Options{ChunkRecords: 100})
	ir := res.Imports[0]
	if ir.Inserted != n || ir.ErrorsET != 0 || ir.ErrorsUV != 0 {
		t.Errorf("result: %+v", ir)
	}
	count := mustEng(t, st.eng, "SELECT count(*) FROM PROD.CUSTOMER").Rows[0][0].I
	if count != n {
		t.Errorf("target count = %d", count)
	}
	r := st.node.Reports()[0]
	if r.FilesWritten < 2 {
		t.Errorf("expected multiple intermediate files, got %d", r.FilesWritten)
	}
	if st.node.Credits().Acquires < int64(r.Chunks) {
		t.Errorf("credits not exercised: %+v", st.node.Credits())
	}
}

// TestGzipUpload runs the same load with compression enabled.
func TestGzipUpload(t *testing.T) {
	st := startStack(t, core.Config{Gzip: true, FileSizeThreshold: 4 << 10})
	mustEng(t, st.eng, customerDDL)
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sb, "%d|Name %d|2021-01-01\n", i, i)
	}
	res := runScript(t, st.addr, example21Script(""), map[string]string{"input.txt": sb.String()},
		etlclient.Options{ChunkRecords: 100})
	if res.Imports[0].Inserted != 1000 {
		t.Errorf("inserted = %d", res.Imports[0].Inserted)
	}
	r := st.node.Reports()[0]
	if r.BytesUpload >= r.BytesIn {
		t.Errorf("gzip did not shrink upload: up=%d in=%d", r.BytesUpload, r.BytesIn)
	}
}

// TestAcquisitionDataErrors checks that malformed records are rejected
// during acquisition and recorded in the ET table with their row numbers.
func TestAcquisitionDataErrors(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)
	data := "1|Good|2020-01-01\nonly|two\n3|AlsoGood|2020-01-03\nwaytoolong|x|2020-01-01\n"
	res := runScript(t, st.addr, example21Script(""), map[string]string{"input.txt": data},
		etlclient.Options{ChunkRecords: 10})
	ir := res.Imports[0]
	if ir.DataErrors != 2 || ir.RowsStaged != 2 || ir.Inserted != 2 {
		t.Errorf("result: %+v", ir)
	}
	et := mustEng(t, st.eng, "SELECT SEQNO FROM PROD.CUSTOMER_ET ORDER BY SEQNO").Rows
	if len(et) != 2 || et[0][0].I != 2 || et[1][0].I != 4 {
		t.Errorf("ET: %v", et)
	}
}

// TestIndicatorFormatImport loads binary indicator-mode input with typed
// fields through the virtualizer.
func TestIndicatorFormatImport(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, `CREATE TABLE sales (id BIGINT, amount DECIMAL(10,2), sold DATE)`)

	layout := &ltype.Layout{Name: "SalesLayout", Fields: []ltype.Field{
		{Name: "ID", Type: ltype.Simple(ltype.KindInteger)},
		{Name: "AMOUNT", Type: ltype.Decimal(10, 2)},
		{Name: "SOLD", Type: ltype.Simple(ltype.KindDate)},
	}}
	var data []byte
	var err error
	for i := 1; i <= 50; i++ {
		dec := ltype.IntValue(ltype.KindDecimal, int64(i*100+25))
		dec.S = ltype.FormatDecimal(dec.I, 2)
		data, err = ltype.EncodeRecord(data, layout, ltype.Record{
			ltype.IntValue(ltype.KindInteger, int64(i)),
			dec,
			ltype.DateValue(2022, 1+i%12, 1+i%28),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	script := `
.logon host/user,pass;
.layout SalesLayout;
.field ID integer;
.field AMOUNT decimal(10,2);
.field SOLD date;
.begin import tables sales;
.dml label Ins;
insert into sales values (:ID, :AMOUNT, :SOLD);
.import infile sales.dat format indicator layout SalesLayout apply Ins;
.end load;
`
	res := runScript(t, st.addr, script, map[string]string{"sales.dat": string(data)},
		etlclient.Options{ChunkRecords: 7})
	if res.Imports[0].Inserted != 50 {
		t.Errorf("inserted = %d", res.Imports[0].Inserted)
	}
	rows := mustEng(t, st.eng, "SELECT amount FROM sales WHERE id = 3").Rows
	if len(rows) != 1 || rows[0][0].Render() != "3.25" {
		t.Errorf("decimal round trip: %v", rows)
	}
	rows = mustEng(t, st.eng, "SELECT sold FROM sales WHERE id = 1").Rows
	if rows[0][0].Render() != "2022-02-02" {
		t.Errorf("date round trip: %v", rows[0][0].Render())
	}
}

// TestUpdateAndDeleteDML exercises the non-insert application paths.
func TestUpdateAndDeleteDML(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)
	mustEng(t, st.eng, `INSERT INTO PROD.CUSTOMER VALUES
		('1', 'Old One', '2010-01-01'), ('2', 'Old Two', '2010-01-02'), ('3', 'Keep', '2010-01-03')`)

	updScript := `
.logon host/user,pass;
.layout KV;
.field K varchar(5);
.field V varchar(50);
.begin import tables PROD.CUSTOMER errortables PROD.UPD_ET PROD.UPD_UV;
.dml label Upd;
update PROD.CUSTOMER set CUST_NAME = trim(:V) where CUST_ID = trim(:K);
.import infile upd.txt format vartext '|' layout KV apply Upd;
.end load;
`
	res := runScript(t, st.addr, updScript, map[string]string{"upd.txt": "1|New One\n2|New Two\n"},
		etlclient.Options{})
	if res.Imports[0].Updated != 2 {
		t.Errorf("updated = %d", res.Imports[0].Updated)
	}
	rows := mustEng(t, st.eng, "SELECT cust_name FROM PROD.CUSTOMER ORDER BY cust_id").Rows
	if rows[0][0].S != "New One" || rows[1][0].S != "New Two" || rows[2][0].S != "Keep" {
		t.Errorf("after update: %v", rows)
	}

	delScript := `
.logon host/user,pass;
.layout K1;
.field K varchar(5);
.begin import tables PROD.CUSTOMER errortables PROD.DEL_ET PROD.DEL_UV;
.dml label Del;
delete from PROD.CUSTOMER where CUST_ID = trim(:K);
.import infile del.txt format vartext '|' layout K1 apply Del;
.end load;
`
	res = runScript(t, st.addr, delScript, map[string]string{"del.txt": "1\n3\n"}, etlclient.Options{})
	if res.Imports[0].Deleted != 2 {
		t.Errorf("deleted = %d", res.Imports[0].Deleted)
	}
	if n := mustEng(t, st.eng, "SELECT count(*) FROM PROD.CUSTOMER").Rows[0][0].I; n != 1 {
		t.Errorf("remaining = %d", n)
	}
}

// TestExportJob round-trips data out through parallel export sessions.
func TestExportJob(t *testing.T) {
	st := startStack(t, core.Config{ExportChunkRows: 10})
	mustEng(t, st.eng, customerDDL)
	for i := 0; i < 95; i++ {
		mustEng(t, st.eng, fmt.Sprintf(
			"INSERT INTO PROD.CUSTOMER VALUES ('%03d', 'Name %d', '2020-01-01')", i, i))
	}
	script := `
.logon host/user,pass;
.begin export outfile out.txt format vartext '|' sessions 3;
SEL CUST_ID, CUST_NAME FROM PROD.CUSTOMER WHERE CUST_ID < '090' ORDER BY CUST_ID;
.end export;
`
	s, err := etlscript.Parse(script)
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	opts := etlclient.Options{
		Addr:      st.addr,
		WriteFile: func(name string, data []byte) error { out = data; return nil },
	}
	res, err := etlclient.Run(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exports[0].Rows != 90 {
		t.Errorf("exported %d rows", res.Exports[0].Rows)
	}
	lines := strings.Split(strings.TrimSuffix(string(out), "\n"), "\n")
	if len(lines) != 90 {
		t.Fatalf("output lines: %d", len(lines))
	}
	sorted := sort.StringsAreSorted(lines)
	if !sorted {
		t.Error("export chunks reassembled out of order")
	}
	if lines[0] != "000|Name 0" {
		t.Errorf("first line: %q", lines[0])
	}
}

// TestRunSQLThroughVirtualizer checks the Beta path: legacy SQL in, legacy
// result records out.
func TestRunSQLThroughVirtualizer(t *testing.T) {
	st := startStack(t, core.Config{})
	lg := etlscript.Logon{User: "u", Password: "p"}
	if _, err := etlclient.Exec(st.addr, lg, customerDDL); err != nil {
		t.Fatal(err)
	}
	if _, err := etlclient.Exec(st.addr, lg,
		"INSERT INTO PROD.CUSTOMER VALUES ('1', 'Alpha', DATE '2020-06-15')"); err != nil {
		t.Fatal(err)
	}
	layout, rows, err := etlclient.QueryRows(st.addr, lg,
		"SEL CUST_ID, CUST_NAME, JOIN_DATE FROM PROD.CUSTOMER")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0][0].S != "1" || rows[0][1].S != "Alpha" {
		t.Errorf("row: %v", rows[0])
	}
	// legacy DATE comes back in the legacy integer encoding
	if layout.Fields[2].Type.Kind != ltype.KindDate {
		t.Errorf("date field type: %v", layout.Fields[2].Type)
	}
	if rows[0][2].Text() != "2020-06-15" {
		t.Errorf("date text: %q", rows[0][2].Text())
	}
	// a failing statement produces a Failure, and the session survives
	if _, err := etlclient.Exec(st.addr, lg, "SELECT * FROM nope"); err == nil {
		t.Error("missing table accepted")
	}
}

// TestSchemaMapping verifies the node-level schema rename applied during
// cross compilation.
func TestSchemaMapping(t *testing.T) {
	st := startStack(t, core.Config{SchemaMap: map[string]string{"PROD": "analytics"}})
	mustEng(t, st.eng, `CREATE TABLE analytics.customer (CUST_ID VARCHAR(5), CUST_NAME VARCHAR(50), JOIN_DATE DATE)`)
	clean := "1|Alpha|2020-01-01\n"
	res := runScript(t, st.addr, example21Script(""), map[string]string{"input.txt": clean},
		etlclient.Options{})
	if res.Imports[0].Inserted != 1 {
		t.Errorf("inserted = %d", res.Imports[0].Inserted)
	}
	n := mustEng(t, st.eng, "SELECT count(*) FROM analytics.customer").Rows[0][0].I
	if n != 1 {
		t.Errorf("mapped target count = %d", n)
	}
}

// TestConcurrentJobsSharedCreditManager runs two imports at once against one
// node, per the paper's one-CreditManager-per-node design.
func TestConcurrentJobsSharedCreditManager(t *testing.T) {
	st := startStack(t, core.Config{Credits: 4})
	mustEng(t, st.eng, `CREATE TABLE t1 (k VARCHAR(5), v VARCHAR(50))`)
	mustEng(t, st.eng, `CREATE TABLE t2 (k VARCHAR(5), v VARCHAR(50))`)
	script := func(table string) string {
		return fmt.Sprintf(`
.logon host/user,pass;
.layout L;
.field K varchar(5);
.field V varchar(50);
.begin import tables %s;
.dml label I;
insert into %s values (:K, :V);
.import infile in.txt format vartext '|' layout L apply I;
.end load;
`, table, table)
	}
	var data strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&data, "%d|value %d\n", i, i)
	}
	errCh := make(chan error, 2)
	for _, tbl := range []string{"t1", "t2"} {
		go func(tbl string) {
			s, err := etlscript.Parse(script(tbl))
			if err != nil {
				errCh <- err
				return
			}
			_, err = etlclient.Run(s, etlclient.Options{
				Addr:         st.addr,
				ChunkRecords: 50,
				ReadFile:     func(string) ([]byte, error) { return []byte(data.String()), nil },
			})
			errCh <- err
		}(tbl)
	}
	deadline := time.After(30 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("concurrent jobs timed out")
		}
	}
	for _, tbl := range []string{"t1", "t2"} {
		if n := mustEng(t, st.eng, "SELECT count(*) FROM "+tbl).Rows[0][0].I; n != 2000 {
			t.Errorf("%s count = %d", tbl, n)
		}
	}
}

// TestMemBudgetOOM reproduces the paper's out-of-memory failure: a huge
// credit pool with a small memory budget makes acquisition fail instead of
// thrashing (§9 Figure 10).
func TestMemBudgetOOM(t *testing.T) {
	st := startStack(t, core.Config{Credits: 1_000_000, MemBudget: 2048})
	mustEng(t, st.eng, customerDDL)
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "%d|%s|2020-01-01\n", i, strings.Repeat("x", 40))
	}
	s, err := etlscript.Parse(example21Script(""))
	if err != nil {
		t.Fatal(err)
	}
	_, err = etlclient.Run(s, etlclient.Options{
		Addr:         st.addr,
		ChunkRecords: 50,
		ReadFile:     func(string) ([]byte, error) { return []byte(sb.String()), nil },
	})
	if err == nil {
		t.Fatal("load with blown memory budget succeeded")
	}
	if !strings.Contains(err.Error(), "memory") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestUpsertDML exercises the legacy atomic upsert (UPDATE ... ELSE INSERT)
// through the virtualizer: existing keys update, new keys insert.
func TestUpsertDML(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)
	mustEng(t, st.eng, `INSERT INTO PROD.CUSTOMER VALUES
		('1', 'Old One', '2010-01-01'), ('2', 'Old Two', '2010-01-02')`)

	script := `
.logon host/user,pass;
.layout KV;
.field K varchar(5);
.field V varchar(50);
.field D varchar(10);
.begin import tables PROD.CUSTOMER errortables PROD.UP_ET PROD.UP_UV;
.dml label Up;
update PROD.CUSTOMER set CUST_NAME = trim(:V) where CUST_ID = trim(:K)
else insert into PROD.CUSTOMER values (trim(:K), trim(:V),
	cast(:D as DATE format 'YYYY-MM-DD'));
.import infile up.txt format vartext '|' layout KV apply Up;
.end load;
`
	data := "1|New One|2020-01-01\n3|Fresh Three|2020-03-03\n2|New Two|2020-02-02\n4|Fresh Four|2020-04-04\n"
	res := runScript(t, st.addr, script, map[string]string{"up.txt": data}, etlclient.Options{ChunkRecords: 2})
	ir := res.Imports[0]
	if ir.Updated != 2 || ir.Inserted != 2 {
		t.Errorf("upsert counts: updated=%d inserted=%d", ir.Updated, ir.Inserted)
	}
	rows := mustEng(t, st.eng, "SELECT cust_id, cust_name FROM PROD.CUSTOMER ORDER BY cust_id").Rows
	want := map[string]string{"1": "New One", "2": "New Two", "3": "Fresh Three", "4": "Fresh Four"}
	if len(rows) != 4 {
		t.Fatalf("rows: %v", rows)
	}
	for _, r := range rows {
		if want[r[0].S] != r[1].S {
			t.Errorf("row %s = %q, want %q", r[0].S, r[1].S, want[r[0].S])
		}
	}
}

// TestUpsertWithErrors mixes a bad date into the upsert input: the bad
// tuple lands in the ET table and the rest applies.
func TestUpsertWithErrors(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)
	mustEng(t, st.eng, `INSERT INTO PROD.CUSTOMER VALUES ('1', 'Old', '2010-01-01')`)
	script := `
.logon host/user,pass;
.layout KV;
.field K varchar(5);
.field V varchar(50);
.field D varchar(10);
.begin import tables PROD.CUSTOMER errortables PROD.UP_ET PROD.UP_UV;
.dml label Up;
update PROD.CUSTOMER set CUST_NAME = trim(:V), JOIN_DATE = cast(:D as DATE format 'YYYY-MM-DD')
	where CUST_ID = trim(:K)
else insert into PROD.CUSTOMER values (trim(:K), trim(:V),
	cast(:D as DATE format 'YYYY-MM-DD'));
.import infile up.txt format vartext '|' layout KV apply Up;
.end load;
`
	data := "1|Updated|2020-01-01\n2|BadDate|xxxx\n3|Fine|2020-03-03\n"
	res := runScript(t, st.addr, script, map[string]string{"up.txt": data}, etlclient.Options{ChunkRecords: 3})
	ir := res.Imports[0]
	if ir.Updated != 1 || ir.Inserted != 1 || ir.ErrorsET != 1 {
		t.Errorf("counts: %+v", ir)
	}
	et := mustEng(t, st.eng, "SELECT SEQNO FROM PROD.UP_ET").Rows
	if len(et) != 1 || et[0][0].I != 2 {
		t.Errorf("ET: %v", et)
	}
}

// TestSyncAcquisitionCorrectness runs the §5 ablation configuration (ack
// only after conversion and write) and checks it produces the same results,
// just with the pipeline synchronized.
func TestSyncAcquisitionCorrectness(t *testing.T) {
	st := startStack(t, core.Config{SyncAcquisition: true})
	mustEng(t, st.eng, customerDDL)
	res := runScript(t, st.addr, example21Script(""), map[string]string{"input.txt": figure5Data},
		etlclient.Options{ChunkRecords: 2})
	ir := res.Imports[0]
	if ir.Inserted != 2 || ir.ErrorsET != 2 || ir.ErrorsUV != 1 {
		t.Errorf("sync-mode result: %+v", ir)
	}
}

// TestJobAbortOnDisconnect verifies that a client vanishing mid-job does not
// leak the job: the staging table is dropped, uploads are deleted and the
// job is deregistered.
func TestJobAbortOnDisconnect(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)

	conn, err := wire.Dial(st.addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(0, &wire.Logon{User: "u"}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Expect(wire.KindLogonOK); err != nil {
		t.Fatal(err)
	}
	layout := &ltype.Layout{Name: "L", Fields: []ltype.Field{
		{Name: "K", Type: ltype.VarChar(5)},
		{Name: "V", Type: ltype.VarChar(50)},
		{Name: "D", Type: ltype.VarChar(10)},
	}}
	if err := conn.Send(0, &wire.BeginLoad{
		Table: "PROD.CUSTOMER", Layout: layout,
		Format: wire.FormatVartext, Delim: '|', Sessions: 1,
	}); err != nil {
		t.Fatal(err)
	}
	m, err := conn.Expect(wire.KindLoadOK)
	if err != nil {
		t.Fatal(err)
	}
	jobID := m.(*wire.LoadOK).JobID
	// push one chunk, then vanish without EndAcquire/EndLoad
	if err := conn.Send(0, &wire.DataChunk{
		JobID: jobID, Seq: 0, FirstRow: 1, Count: 1, Payload: []byte("1|x|2020-01-01\n"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Expect(wire.KindChunkAck); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// the node must clean the job up: staging table gone, job deregistered
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, stagingErr := st.eng.ExecSQL(fmt.Sprintf("SELECT count(*) FROM etl_stage.job_%d", jobID))
		if stagingErr != nil && len(st.node.Reports()) == 1 {
			break // dropped and reported
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not cleaned up: stagingErr=%v reports=%d", stagingErr, len(st.node.Reports()))
		}
		time.Sleep(20 * time.Millisecond)
	}
	keys, _ := st.store.List("jobs/")
	if len(keys) != 0 {
		t.Errorf("leaked objects: %v", keys)
	}
}

// TestProtocolRobustness throws malformed input at the node: garbage bytes,
// wrong first message, truncated frames. The node must refuse politely and
// keep serving.
func TestProtocolRobustness(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)

	// raw garbage
	if nc, err := netDial(st.addr); err == nil {
		nc.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
		buf := make([]byte, 64)
		nc.Read(buf)
		nc.Close()
	}
	// valid frame, wrong opening message
	if conn, err := wire.Dial(st.addr); err == nil {
		conn.Send(0, &wire.RunSQL{SQL: "SELECT 1"})
		conn.Close()
	}
	// logon then nonsense kind for the state (chunk for unknown job)
	conn, err := wire.Dial(st.addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Send(0, &wire.Logon{User: "u"})
	if _, err := conn.Expect(wire.KindLogonOK); err != nil {
		t.Fatal(err)
	}
	conn.Send(0, &wire.DataChunk{JobID: 999, Payload: []byte("x")})
	if _, err := conn.Expect(wire.KindChunkAck); err == nil {
		t.Error("chunk for unknown job acked")
	}
	conn.Close()

	// after all the abuse, a normal session still works
	clean := "1|Alpha|2020-01-01\n"
	res := runScript(t, st.addr, example21Script(""), map[string]string{"input.txt": clean},
		etlclient.Options{})
	if res.Imports[0].Inserted != 1 {
		t.Errorf("node unhealthy after abuse: %+v", res.Imports[0])
	}
}

func netDial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// TestMultipleImportFiles loads several input files through one job block,
// with row numbering continuing across files.
func TestMultipleImportFiles(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)
	script := `
.logon host/user,pass;
.layout CustLayout;
.field CUST_ID varchar(5);
.field CUST_NAME varchar(50);
.field JOIN_DATE varchar(10);
.begin import tables PROD.CUSTOMER errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;
.dml label Ins;
insert into PROD.CUSTOMER values (trim(:CUST_ID), trim(:CUST_NAME),
	cast(:JOIN_DATE as DATE format 'YYYY-MM-DD'));
.import infile part1.txt format vartext '|' layout CustLayout apply Ins;
.import infile part2.txt format vartext '|' layout CustLayout apply Ins;
.import infile part3.txt format vartext '|' layout CustLayout apply Ins;
.end load;
`
	files := map[string]string{
		"part1.txt": "1|A|2020-01-01\n2|B|2020-01-02\n",
		"part2.txt": "3|C|xxxx\n", // row 3 overall: bad date
		"part3.txt": "4|D|2020-01-04\n5|E|2020-01-05\n",
	}
	res := runScript(t, st.addr, script, files, etlclient.Options{ChunkRecords: 2})
	ir := res.Imports[0]
	if ir.RowsSent != 5 || ir.Inserted != 4 || ir.ErrorsET != 1 {
		t.Errorf("result: %+v", ir)
	}
	// the bad row keeps its global row number across files
	et := mustEng(t, st.eng, "SELECT SEQNO FROM PROD.CUSTOMER_ET").Rows
	if len(et) != 1 || et[0][0].I != 3 {
		t.Errorf("ET: %v", et)
	}
}

// TestDebugEndpoints exercises /healthz, /metrics and /jobs.
func TestDebugEndpoints(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)
	dbgAddr, err := st.node.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, st.addr, example21Script(""), map[string]string{"input.txt": figure5Data},
		etlclient.Options{})

	get := func(path string) string {
		resp, err := http.Get("http://" + dbgAddr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if got := get("/healthz"); !strings.Contains(got, "ok") {
		t.Errorf("healthz: %q", got)
	}
	metrics := get("/metrics")
	for _, want := range []string{
		"etlvirt_jobs_completed_total 1",
		"etlvirt_rows_received_total 5",
		"etlvirt_errors_et_total 2",
		"etlvirt_errors_uv_total 1",
		"etlvirt_credits_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
	var reports []core.JobReport
	if err := json.Unmarshal([]byte(get("/jobs")), &reports); err != nil {
		t.Fatalf("jobs JSON: %v", err)
	}
	if len(reports) != 1 || reports[0].RowsIn != 5 {
		t.Errorf("jobs: %+v", reports)
	}
}

// TestExportIndicatorFormat exports typed data in indicator-mode binary and
// decodes it with the legacy record codec — the full reverse conversion.
func TestExportIndicatorFormat(t *testing.T) {
	st := startStack(t, core.Config{ExportChunkRows: 4})
	mustEng(t, st.eng, "CREATE TABLE m (id BIGINT, amt DECIMAL(10,2), d DATE, note VARCHAR(20))")
	mustEng(t, st.eng, `INSERT INTO m VALUES
		(1, '10.50', '2020-01-01', 'alpha'),
		(2, '0.25', '2021-06-15', NULL),
		(3, NULL, NULL, 'gamma')`)
	script := `
.logon host/user,pass;
.begin export outfile out.bin format indicator sessions 2;
SELECT id, amt, d, note FROM m ORDER BY id;
.end export;
`
	s, err := etlscript.Parse(script)
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	res, err := etlclient.Run(s, etlclient.Options{
		Addr:      st.addr,
		WriteFile: func(name string, data []byte) error { out = data; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exports[0].Rows != 3 {
		t.Fatalf("exported %d rows", res.Exports[0].Rows)
	}
	layout := &ltype.Layout{Name: "E", Fields: []ltype.Field{
		{Name: "id", Type: ltype.Simple(ltype.KindBigInt)},
		{Name: "amt", Type: ltype.Decimal(10, 2)},
		{Name: "d", Type: ltype.Simple(ltype.KindDate)},
		{Name: "note", Type: ltype.VarChar(20)},
	}}
	var recs []ltype.Record
	rest := out
	for len(rest) > 0 {
		rec, n, err := ltype.DecodeRecord(rest, layout)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		recs = append(recs, rec)
		rest = rest[n:]
	}
	if len(recs) != 3 {
		t.Fatalf("decoded %d records", len(recs))
	}
	if recs[0][0].I != 1 || recs[0][1].S != "10.50" || recs[0][2].Text() != "2020-01-01" || recs[0][3].S != "alpha" {
		t.Errorf("rec0: %+v", recs[0])
	}
	if !recs[1][3].Null || !recs[2][1].Null || !recs[2][2].Null {
		t.Errorf("NULLs lost: %+v %+v", recs[1], recs[2])
	}
}
