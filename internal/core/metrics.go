package core

import (
	"time"

	"etlvirt/internal/cloudstore"
	"etlvirt/internal/obs"
)

// nodeMetrics is the node's registry of live pipeline series — the
// stage-granular telemetry the paper's evaluation attributes job time with
// (§9, Figures 7-11). Every pipeline stage publishes here while jobs run;
// JobReport remains the per-job summary filed at completion.
type nodeMetrics struct {
	reg *obs.Registry

	// job lifecycle
	jobsStarted, jobsCompleted, jobsFailed, jobsAborted *obs.Counter
	exportsStarted, exportsCompleted                    *obs.Counter

	// acquisition (Alpha chunk receipt -> conversion -> files -> upload)
	chunks, rowsIn, bytesIn           *obs.Counter
	rowsConverted, dataErrors         *obs.Counter
	filesWritten, filesUploaded       *obs.Counter
	bytesUploaded, copyStatements     *obs.Counter
	creditWait, convertLat, rotateLat *obs.Histogram
	uploadLat, linkLat                *obs.Histogram

	// pipelined staging lane (incremental COPY scheduler + adaptive tuner)
	copyBatches, copyReplays             *obs.Counter
	tunerGrows, tunerShrinks, tunerHolds *obs.Counter
	copyBatchFiles                       *obs.Histogram

	// application (Beta DML with adaptive splitting)
	rowsInserted, rowsUpdated, rowsDeleted *obs.Counter
	errorsET, errorsUV, blockErrors        *obs.Counter
	dmlStatements, adaptiveSplits          *obs.Counter
	dmlLat                                 *obs.Histogram
	splitDepth                             *obs.Histogram

	// export (TDFCursor)
	rowsExported, exportBatches, exportChunks *obs.Counter
	exportBatchLat                            *obs.Histogram

	// streaming (continuous micro-batch CDC ingestion)
	streamsOpened, streamsAborted           *obs.Counter
	streamDeltas, streamReplays             *obs.Counter
	streamBatches                           *obs.Counter
	streamGrows, streamShrinks, streamHolds *obs.Counter
	streamBatchRows                         *obs.Histogram
	streamCommitLat                         *obs.Histogram

	// streaming per-stage latency attribution (frame ingest plus the five
	// commit-path stages the controller's EWMA breakdown tracks)
	streamStageFrame  *obs.Histogram
	streamStageSpool  *obs.Histogram
	streamStageUpload *obs.Histogram
	streamStageCopy   *obs.Histogram
	streamStageApply  *obs.Histogram
	streamStageCkpt   *obs.Histogram

	// CDW round trips (all Beta traffic incl. staging DDL and probes)
	cdwRequests, cdwErrors *obs.Counter
	cdwReqLat              *obs.Histogram

	// resilience layer (retries, recovery, injected faults)
	retryAttempts, retryExhausted *obs.Counter
	copyRecoveries                *obs.Counter
	retryBackoff                  *obs.Histogram
}

// newNodeMetrics builds the registry and wires the stage observers of every
// subsystem the node owns into it.
func newNodeMetrics(n *Node) *nodeMetrics {
	r := obs.NewRegistry()
	m := &nodeMetrics{reg: r}

	m.jobsStarted = r.Counter("etlvirt_jobs_started_total", "Import jobs begun.")
	m.jobsCompleted = r.Counter("etlvirt_jobs_completed_total", "Completed import jobs.")
	m.jobsFailed = r.Counter("etlvirt_jobs_failed_total", "Import jobs poisoned by a pipeline failure.")
	m.jobsAborted = r.Counter("etlvirt_jobs_aborted_total", "Import jobs aborted by client disconnect.")
	m.exportsStarted = r.Counter("etlvirt_exports_started_total", "Export jobs begun.")
	m.exportsCompleted = r.Counter("etlvirt_exports_completed_total", "Completed export jobs.")
	r.GaugeFunc("etlvirt_jobs_active", "Import jobs currently running.", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return float64(len(n.imports))
	})
	r.GaugeFunc("etlvirt_exports_active", "Export jobs currently running.", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return float64(len(n.exports))
	})

	m.chunks = r.Counter("etlvirt_chunks_received_total", "Data chunks received from legacy clients (Alpha).")
	m.rowsIn = r.Counter("etlvirt_rows_received_total", "Records received from legacy clients.")
	m.bytesIn = r.Counter("etlvirt_bytes_received_total", "Payload bytes received from legacy clients.")
	m.rowsConverted = r.Counter("etlvirt_rows_converted_total", "Records surviving DataConverter conversion.")
	m.dataErrors = r.Counter("etlvirt_data_errors_total", "Records rejected during acquisition conversion.")
	m.filesWritten = r.Counter("etlvirt_files_written_total", "Intermediate files finalized by FileWriters.")
	m.filesUploaded = r.Counter("etlvirt_files_uploaded_total", "Intermediate files uploaded to the object store.")
	m.bytesUploaded = r.Counter("etlvirt_bytes_uploaded_total", "Bytes handed to the bulk loader.")
	m.copyStatements = r.Counter("etlvirt_copy_statements_total", "COPY statements issued to stage uploaded files.")
	m.creditWait = r.Histogram("etlvirt_credit_wait_seconds",
		"Time sessions spent acquiring a credit (back-pressure, §5).", nil)
	m.convertLat = r.Histogram("etlvirt_chunk_convert_seconds",
		"Per-chunk DataConverter latency.", nil)
	m.rotateLat = r.Histogram("etlvirt_file_rotate_seconds",
		"FileWriter rotation latency (gzip finalize + close).", nil)
	m.uploadLat = r.Histogram("etlvirt_upload_seconds",
		"Per-file bulk-loader upload latency.", nil)
	m.copyBatches = r.Counter("etlvirt_copy_batches_total",
		"Incremental manifest COPY batches landed while acquisition was still running.")
	m.copyReplays = r.Counter("etlvirt_copy_batch_replays_total",
		"Landed manifest batches re-COPYed while recovering a failed staging COPY.")
	m.copyBatchFiles = r.Histogram("etlvirt_copy_batch_files",
		"Files folded into one manifest COPY statement.", obs.SizeBuckets)
	m.tunerGrows = r.Counter("etlvirt_import_tuner_grow_total",
		"Staging-lane tuner decisions growing the uploader pool.")
	m.tunerShrinks = r.Counter("etlvirt_import_tuner_shrink_total",
		"Staging-lane tuner decisions shrinking the uploader pool.")
	m.tunerHolds = r.Counter("etlvirt_import_tuner_hold_total",
		"Staging-lane tuner decisions holding the uploader pool size.")
	m.linkLat = r.Histogram("etlvirt_link_transfer_seconds",
		"Simulated cloud-link transfer time per object.", nil)

	m.rowsInserted = r.Counter("etlvirt_rows_inserted_total", "Rows inserted by application DML.")
	m.rowsUpdated = r.Counter("etlvirt_rows_updated_total", "Rows updated by application DML.")
	m.rowsDeleted = r.Counter("etlvirt_rows_deleted_total", "Rows deleted by application DML.")
	m.errorsET = r.Counter("etlvirt_errors_et_total", "Application errors recorded in ET tables.")
	m.errorsUV = r.Counter("etlvirt_errors_uv_total", "Uniqueness violations recorded in UV tables.")
	m.blockErrors = r.Counter("etlvirt_block_errors_total", "Ranges recorded as blocks after budget exhaustion.")
	m.dmlStatements = r.Counter("etlvirt_dml_statements_total",
		"Application DML statements issued, including adaptive retries (Figure 11).")
	m.adaptiveSplits = r.Counter("etlvirt_adaptive_splits_total",
		"Failing ranges split in half by the adaptive error handler (§7).")
	m.dmlLat = r.Histogram("etlvirt_dml_statement_seconds",
		"Per-statement application DML latency.", nil)
	m.splitDepth = r.Histogram("etlvirt_split_depth",
		"Adaptive-split depth of failing DML statements.", obs.DepthBuckets)

	m.rowsExported = r.Counter("etlvirt_rows_exported_total", "Rows streamed to export clients.")
	m.exportBatches = r.Counter("etlvirt_export_batches_total", "Result batches fetched by TDFCursors.")
	m.exportChunks = r.Counter("etlvirt_export_chunks_total", "Export chunks encoded for legacy clients.")
	m.exportBatchLat = r.Histogram("etlvirt_export_batch_seconds",
		"Per-batch TDFCursor fetch latency.", nil)

	m.streamsOpened = r.Counter("etlvirt_stream_sessions_opened_total", "Streaming sessions opened (fresh or resumed).")
	m.streamsAborted = r.Counter("etlvirt_stream_sessions_aborted_total", "Streaming sessions aborted by client disconnect or a poisoned frame.")
	m.streamDeltas = r.Counter("etlvirt_stream_deltas_total", "CDC delta records received on streaming sessions.")
	m.streamReplays = r.Counter("etlvirt_stream_replays_total", "Delta records dropped as replays at or below the committed watermark.")
	m.streamBatches = r.Counter("etlvirt_stream_batches_total", "Streaming micro-batches committed.")
	m.streamGrows = r.Counter("etlvirt_stream_ctrl_grow_total", "Adaptive controller decisions growing the micro-batch.")
	m.streamShrinks = r.Counter("etlvirt_stream_ctrl_shrink_total", "Adaptive controller decisions shrinking the micro-batch.")
	m.streamHolds = r.Counter("etlvirt_stream_ctrl_hold_total", "Adaptive controller decisions holding the micro-batch size.")
	m.streamBatchRows = r.Histogram("etlvirt_stream_batch_rows",
		"Records per committed streaming micro-batch.", obs.SizeBuckets)
	m.streamCommitLat = r.Histogram("etlvirt_stream_commit_seconds",
		"End-to-end micro-batch commit latency (first buffered delta to watermark advance).", nil)
	m.streamStageFrame = r.Histogram("etlvirt_stream_frame_recv_seconds",
		"Per-frame delta ingest latency (parse, replay filter, spool hand-off).", nil)
	m.streamStageSpool = r.Histogram("etlvirt_stream_spool_seconds",
		"Per-batch delta conversion and spool-append time.", nil)
	m.streamStageUpload = r.Histogram("etlvirt_stream_upload_seconds",
		"Per-batch spool rotation and object-store upload time.", nil)
	m.streamStageCopy = r.Histogram("etlvirt_stream_copy_seconds",
		"Per-batch staging COPY time (recreate + COPY, both halves).", nil)
	m.streamStageApply = r.Histogram("etlvirt_stream_apply_seconds",
		"Per-batch DML application time (error bookkeeping + MERGE triple).", nil)
	m.streamStageCkpt = r.Histogram("etlvirt_stream_checkpoint_seconds",
		"Per-batch watermark checkpoint write time.", nil)
	r.GaugeFunc("etlvirt_stream_sessions_active", "Streaming sessions currently open.", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return float64(len(n.streams))
	})
	r.LabeledGaugeFunc("etlvirt_stream_watermark_lag_seconds",
		"Age of the oldest buffered, not-yet-committed delta per stream; 0 when fully applied.",
		"stream", func() []obs.LabeledValue {
			n.mu.Lock()
			streams := make([]*streamJob, 0, len(n.streams))
			for _, j := range n.streams {
				streams = append(streams, j)
			}
			n.mu.Unlock()
			now := time.Now()
			out := make([]obs.LabeledValue, 0, len(streams))
			for _, j := range streams {
				lag := 0.0
				if ns := j.oldestLiveNs.Load(); ns != 0 {
					lag = now.Sub(time.Unix(0, ns)).Seconds()
				}
				out = append(out, obs.LabeledValue{Label: j.req.Name, Value: lag})
			}
			return out
		})

	m.cdwRequests = r.Counter("etlvirt_cdw_requests_total", "Round trips to the CDW (all Beta traffic).")
	m.cdwErrors = r.Counter("etlvirt_cdw_errors_total", "CDW round trips that returned an error.")
	m.cdwReqLat = r.Histogram("etlvirt_cdw_request_seconds", "CDW round-trip latency.", nil)

	m.retryAttempts = r.Counter("etlvirt_retry_attempts_total",
		"Operations re-driven after a transient failure (CDW round trips, uploads, COPY, export opens).")
	m.retryExhausted = r.Counter("etlvirt_retry_exhausted_total",
		"Operations abandoned after exhausting their retry attempts or budget.")
	m.copyRecoveries = r.Counter("etlvirt_copy_recoveries_total",
		"Staging tables recreated to recover a failed COPY.")
	m.retryBackoff = r.Histogram("etlvirt_retry_backoff_seconds",
		"Backoff scheduled before each retry.", nil)
	r.GaugeFunc("etlvirt_retry_budget_remaining",
		"Retries left in the node-wide budget; -1 when unlimited.",
		func() float64 { return float64(n.budget.Remaining()) })
	inj := n.inj
	r.CounterFunc("etlvirt_faults_injected_total", "Faults fired by the fault-injection layer.",
		func() int64 {
			if inj == nil {
				return 0
			}
			return inj.Injected()
		})

	// CreditManager pool state, read live at scrape time.
	r.GaugeFunc("etlvirt_credits_total", "Size of the CreditManager pool.",
		func() float64 { return float64(n.credits.Stats().Total) })
	r.GaugeFunc("etlvirt_credits_available", "Credits currently available.",
		func() float64 { return float64(n.credits.Stats().Available) })
	r.GaugeFunc("etlvirt_credit_inflight_bytes", "Bytes charged to outstanding credits.",
		func() float64 { return float64(n.credits.Stats().InFlight) })
	r.GaugeFunc("etlvirt_credit_peak_inflight_bytes", "Peak observed in-flight bytes.",
		func() float64 { return float64(n.credits.Stats().PeakInFlight) })
	r.CounterFunc("etlvirt_credit_acquires_total", "Credit Acquire calls.",
		func() int64 { return n.credits.Stats().Acquires })
	r.CounterFunc("etlvirt_credit_waits_total", "Credit acquires that had to block.",
		func() int64 { return n.credits.Stats().Waits })

	r.GaugeFunc("etlvirt_reports_dropped", "Completed job reports evicted from the bounded report log.",
		func() float64 { return float64(n.reports.droppedCount()) })

	// Observability self-telemetry: trace retention and event-log pressure.
	r.CounterFunc("etlvirt_trace_jobs_started_total", "Job traces opened by the tracer.",
		func() int64 { return n.tracer.Started() })
	r.CounterFunc("etlvirt_trace_evicted_total", "Finished job traces evicted by the retention bound.",
		func() int64 { return n.tracer.Evicted() })
	r.CounterFunc("etlvirt_trace_spans_dropped_total", "Spans dropped by per-job span caps.",
		func() int64 { return n.tracer.DroppedSpans() })
	r.GaugeFunc("etlvirt_trace_retained", "Finished job traces currently retained.",
		func() float64 { return float64(n.tracer.Retained()) })
	r.CounterFunc("etlvirt_events_recorded_total", "Structured events recorded in the event ring.",
		func() int64 { return n.events.Recorded() })
	r.CounterFunc("etlvirt_events_dropped_total", "Events overwritten in the ring before being drained.",
		func() int64 { return n.events.Dropped() })
	r.CounterFunc("etlvirt_events_sampled_total", "Events skipped by per-type sampling.",
		func() int64 { return n.events.Sampled() })

	obs.RegisterRuntimeMetrics(r)

	// stage observers
	n.credits.SetObserver(func(wait time.Duration, _ bool) {
		m.creditWait.ObserveDuration(wait)
	})
	n.pool.SetObserver(func(_ string, d time.Duration, err error) {
		m.cdwRequests.Inc()
		if err != nil {
			m.cdwErrors.Inc()
		}
		m.cdwReqLat.ObserveDuration(d)
	})
	n.retry.Observe = func(op string, retry int, delay time.Duration, err error) {
		m.retryAttempts.Inc()
		m.retryBackoff.ObserveDuration(delay)
		n.events.Add(obs.Event{Type: "retry", Msg: op, Attrs: map[string]any{
			"retry": retry, "delay_ms": delay.Milliseconds(), "err": err.Error(),
		}})
		n.log.Warn("retrying after transient failure", "op", op, "retry", retry, "delay", delay, "err", err)
	}
	n.retry.OnExhausted = func(op string, attempts int, err error) {
		m.retryExhausted.Inc()
		n.events.Add(obs.Event{Type: "retry_exhausted", Msg: op, Attrs: map[string]any{
			"attempts": attempts, "err": err.Error(),
		}})
		n.log.Error("retries exhausted", "op", op, "attempts", attempts, "err", err)
	}
	if ts, ok := n.store.(*cloudstore.ThrottledStore); ok && ts.Link != nil {
		ts.Link.OnTransfer = func(bytes int, d time.Duration) {
			m.linkLat.ObserveDuration(d)
		}
	}
	return m
}
