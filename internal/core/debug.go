package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"etlvirt/internal/obs"
)

// ActiveJob is the live progress snapshot of one running job, served by
// /jobs/active. Counter fields are read from the job's atomics, so the
// values advance while the job runs.
type ActiveJob struct {
	JobID     uint64    `json:"job_id"`
	Kind      string    `json:"kind"` // "import" or "export"
	Target    string    `json:"target,omitempty"`
	Phase     string    `json:"phase"` // "acquisition", "application" or "export"
	StartedAt time.Time `json:"started_at"`
	ElapsedMS int64     `json:"elapsed_ms"`

	// acquisition progress
	Chunks        int64 `json:"chunks_received,omitempty"`
	RowsIn        int64 `json:"rows_received,omitempty"`
	BytesIn       int64 `json:"bytes_received,omitempty"`
	RowsConverted int64 `json:"rows_converted,omitempty"`
	FilesWritten  int64 `json:"files_written,omitempty"`
	FilesUploaded int64 `json:"files_uploaded,omitempty"`
	BytesUploaded int64 `json:"bytes_uploaded,omitempty"`
	CreditsHeld   int64 `json:"credits_held,omitempty"`

	// application progress
	Statements int64 `json:"statements_applied,omitempty"`
	ErrorsET   int64 `json:"errors_et,omitempty"`
	ErrorsUV   int64 `json:"errors_uv,omitempty"`

	// export progress
	RowsExported   int64 `json:"rows_exported,omitempty"`
	BatchesFetched int64 `json:"batches_fetched,omitempty"`

	// streaming progress
	Deltas    int64 `json:"deltas_received,omitempty"`
	Replayed  int64 `json:"deltas_replayed,omitempty"`
	Batches   int64 `json:"batches_committed,omitempty"`
	Watermark int64 `json:"watermark,omitempty"`
	BatchHint int64 `json:"batch_hint,omitempty"`
}

// ActiveJobs snapshots every running import and export job.
func (n *Node) ActiveJobs() []ActiveJob {
	n.mu.Lock()
	imports := make([]*importJob, 0, len(n.imports))
	for _, j := range n.imports {
		imports = append(imports, j)
	}
	exports := make([]*exportJob, 0, len(n.exports))
	for _, j := range n.exports {
		exports = append(exports, j)
	}
	streams := make([]*streamJob, 0, len(n.streams))
	for _, j := range n.streams {
		streams = append(streams, j)
	}
	n.mu.Unlock()

	now := time.Now()
	out := make([]ActiveJob, 0, len(imports)+len(exports)+len(streams))
	for _, j := range imports {
		phase := "acquisition"
		if j.acqDone.Load() {
			phase = "application"
		}
		out = append(out, ActiveJob{
			JobID:         j.id,
			Kind:          "import",
			Target:        j.targets,
			Phase:         phase,
			StartedAt:     j.watch.start,
			ElapsedMS:     now.Sub(j.watch.start).Milliseconds(),
			Chunks:        j.chunks.Load(),
			RowsIn:        j.rowsIn.Load(),
			BytesIn:       j.bytesIn.Load(),
			RowsConverted: j.rowsConv.Load(),
			FilesWritten:  j.filesW.Load(),
			FilesUploaded: j.files.Load(),
			BytesUploaded: j.upBytes.Load(),
			CreditsHeld:   j.creditsHeld.Load(),
			Statements:    j.stmts.Load(),
			ErrorsET:      j.errsETLive.Load(),
			ErrorsUV:      j.errsUVLive.Load(),
		})
	}
	for _, j := range exports {
		out = append(out, ActiveJob{
			JobID:          j.id,
			Kind:           "export",
			Phase:          "export",
			StartedAt:      j.started,
			ElapsedMS:      now.Sub(j.started).Milliseconds(),
			RowsExported:   j.rowsOut.Load(),
			BatchesFetched: j.batches.Load(),
		})
	}
	for _, j := range streams {
		out = append(out, ActiveJob{
			JobID:       j.id,
			Kind:        "stream",
			Target:      j.targets,
			Phase:       "streaming",
			StartedAt:   j.started,
			ElapsedMS:   now.Sub(j.started).Milliseconds(),
			ErrorsET:    j.errsET.Load(),
			CreditsHeld: j.heldCreds.Load(),
			Deltas:      j.deltas.Load(),
			Replayed:    j.replayed.Load(),
			Batches:     j.batches.Load(),
			Watermark:   j.wmLive.Load(),
			BatchHint:   j.hintLive.Load(),
		})
	}
	// stable order for consumers
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].JobID < out[k-1].JobID; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// ServeDebug starts an HTTP listener exposing operational endpoints:
//
//	/healthz           liveness probe
//	/metrics           Prometheus text exposition of the node registry
//	/jobs              JSON array of completed job reports
//	/jobs/active       JSON array of running jobs with live progress
//	/jobs/{id}/trace   per-job span timeline; ?format=chrome emits
//	                   Chrome trace_event JSON for chrome://tracing
//	/debug/pprof/      runtime profiling
//
// It returns the bound address. Calling ServeDebug again replaces the
// previous debug server, closing it. The listener shuts down with the node.
func (n *Node) ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/metrics", obs.MetricsHandler(n.nm.reg))
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(n.Reports())
	})
	mux.HandleFunc("/jobs/active", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(n.ActiveJobs())
	})
	mux.HandleFunc("/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			http.Error(w, "bad job id", http.StatusBadRequest)
			return
		}
		t, ok := n.tracer.Get(id)
		if !ok {
			http.Error(w, "no trace for job", http.StatusNotFound)
			return
		}
		snap := t.Snapshot()
		var body []byte
		if r.URL.Query().Get("format") == "chrome" {
			body, err = snap.ChromeTrace()
		} else {
			body, err = snap.JSON()
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	})
	obs.AttachPprof(mux)
	srv := &http.Server{Handler: mux}
	// Bounded by the listener: node Close() (or a replacing DebugListen)
	// calls srv.Close, which stops Serve and ends the goroutine.
	go func() { //nolint:goroleak // listener-bounded; srv.Close stops Serve
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			n.log.Error("debug server", "err", err)
		}
	}()
	n.mu.Lock()
	prev := n.debugSrv
	n.debugSrv = srv
	n.mu.Unlock()
	if prev != nil {
		prev.Close()
	}
	return ln.Addr().String(), nil
}
