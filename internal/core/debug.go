package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"etlvirt/internal/obs"
)

// ActiveJob is the live progress snapshot of one running job, served by
// /jobs/active. Counter fields are read from the job's atomics, so the
// values advance while the job runs.
type ActiveJob struct {
	JobID     uint64    `json:"job_id"`
	Kind      string    `json:"kind"` // "import" or "export"
	Target    string    `json:"target,omitempty"`
	Phase     string    `json:"phase"` // "acquisition", "application" or "export"
	StartedAt time.Time `json:"started_at"`
	ElapsedMS int64     `json:"elapsed_ms"`

	// acquisition progress
	Chunks        int64 `json:"chunks_received,omitempty"`
	RowsIn        int64 `json:"rows_received,omitempty"`
	BytesIn       int64 `json:"bytes_received,omitempty"`
	RowsConverted int64 `json:"rows_converted,omitempty"`
	FilesWritten  int64 `json:"files_written,omitempty"`
	FilesUploaded int64 `json:"files_uploaded,omitempty"`
	BytesUploaded int64 `json:"bytes_uploaded,omitempty"`
	CreditsHeld   int64 `json:"credits_held,omitempty"`
	CopyBatches   int64 `json:"copy_batches,omitempty"`
	CopyQueue     int64 `json:"copy_queue_files,omitempty"`

	// Tuning is the adaptive staging-lane tuner's live state; absent when
	// the job runs with static knobs.
	Tuning *TuningStatus `json:"tuning,omitempty"`

	// application progress
	Statements int64 `json:"statements_applied,omitempty"`
	ErrorsET   int64 `json:"errors_et,omitempty"`
	ErrorsUV   int64 `json:"errors_uv,omitempty"`

	// export progress
	RowsExported   int64 `json:"rows_exported,omitempty"`
	BatchesFetched int64 `json:"batches_fetched,omitempty"`

	// streaming progress
	Deltas    int64 `json:"deltas_received,omitempty"`
	Replayed  int64 `json:"deltas_replayed,omitempty"`
	Batches   int64 `json:"batches_committed,omitempty"`
	Watermark int64 `json:"watermark,omitempty"`
	BatchHint int64 `json:"batch_hint,omitempty"`
}

// TuningStatus is the per-job view of the adaptive staging-lane tuner: the
// current knob geometry, the smoothed observations driving it, and the
// decision counts since the job started.
type TuningStatus struct {
	Workers        int     `json:"workers"`
	SpoolBytes     int     `json:"spool_bytes"`
	GzipLevel      int     `json:"gzip_level"`
	CopyFiles      int     `json:"copy_files"`
	UtilizationPct float64 `json:"utilization_pct"`
	FileLatencyMS  int64   `json:"file_latency_ms"`
	QueueDepth     float64 `json:"queue_depth"`
	Dominant       string  `json:"dominant_stage,omitempty"`
	Grows          uint64  `json:"grows"`
	Shrinks        uint64  `json:"shrinks"`
	Holds          uint64  `json:"holds"`
}

// StreamStatus is one stream's row in the /streams debug view: watermark
// progress, live lag, and the controller's latest latency attribution.
type StreamStatus struct {
	StreamID  uint64 `json:"stream_id"`
	Name      string `json:"name"`
	Target    string `json:"target"`
	TraceID   string `json:"trace_id,omitempty"`
	Watermark int64  `json:"watermark"`
	Batches   int64  `json:"batches_committed"`
	BatchHint int64  `json:"batch_hint"`

	// LagSeconds is the age of the oldest buffered, not-yet-committed delta
	// (0 when everything received has been applied) — the live value behind
	// the etlvirt_stream_watermark_lag_seconds gauge.
	LagSeconds float64 `json:"lag_seconds"`

	// SLO status: the controller's latency target versus the last commit.
	SLOTargetMS  int64 `json:"slo_target_ms"`
	LastCommitMS int64 `json:"last_commit_ms,omitempty"`
	LastRows     int   `json:"last_batch_rows,omitempty"`
	SLOOk        bool  `json:"slo_ok"`

	// Latency attribution from the controller's per-stage EWMAs.
	LastAction    string           `json:"last_action,omitempty"`
	DominantStage string           `json:"dominant_stage,omitempty"`
	StageEWMAMS   map[string]int64 `json:"stage_ewma_ms,omitempty"`
}

// status snapshots the stream for /streams. Safe from debug goroutines.
func (j *streamJob) status(now time.Time) StreamStatus {
	s := StreamStatus{
		StreamID:    j.id,
		Name:        j.req.Name,
		Target:      j.targets,
		TraceID:     j.traceID(),
		Watermark:   j.wmLive.Load(),
		Batches:     j.batches.Load(),
		BatchHint:   j.hintLive.Load(),
		SLOTargetMS: j.ctrl.Target().Milliseconds(),
		SLOOk:       true,
	}
	if ns := j.oldestLiveNs.Load(); ns != 0 {
		s.LagSeconds = now.Sub(time.Unix(0, ns)).Seconds()
	}
	j.statMu.Lock()
	st := j.lastStat
	j.statMu.Unlock()
	if st.latency > 0 {
		s.LastCommitMS = st.latency.Milliseconds()
		s.LastRows = st.rows
		s.LastAction = st.action
		s.DominantStage = st.dominant
		s.SLOOk = st.latency <= j.ctrl.Target()
		if len(st.stages) > 0 {
			s.StageEWMAMS = make(map[string]int64, len(st.stages))
			for name, d := range st.stages {
				s.StageEWMAMS[name] = d.Milliseconds()
			}
		}
	}
	return s
}

// StreamStatuses snapshots every open stream, ordered by stream ID.
func (n *Node) StreamStatuses() []StreamStatus {
	n.mu.Lock()
	streams := make([]*streamJob, 0, len(n.streams))
	for _, j := range n.streams {
		streams = append(streams, j)
	}
	n.mu.Unlock()
	now := time.Now()
	out := make([]StreamStatus, 0, len(streams))
	for _, j := range streams {
		out = append(out, j.status(now))
	}
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].StreamID < out[k-1].StreamID; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// ActiveJobs snapshots every running import and export job.
func (n *Node) ActiveJobs() []ActiveJob {
	n.mu.Lock()
	imports := make([]*importJob, 0, len(n.imports))
	for _, j := range n.imports {
		imports = append(imports, j)
	}
	exports := make([]*exportJob, 0, len(n.exports))
	for _, j := range n.exports {
		exports = append(exports, j)
	}
	streams := make([]*streamJob, 0, len(n.streams))
	for _, j := range n.streams {
		streams = append(streams, j)
	}
	n.mu.Unlock()

	now := time.Now()
	out := make([]ActiveJob, 0, len(imports)+len(exports)+len(streams))
	for _, j := range imports {
		phase := "acquisition"
		if j.acqDone.Load() {
			phase = "application"
		}
		out = append(out, ActiveJob{
			JobID:         j.id,
			Kind:          "import",
			Target:        j.targets,
			Phase:         phase,
			StartedAt:     j.watch.start,
			ElapsedMS:     now.Sub(j.watch.start).Milliseconds(),
			Chunks:        j.chunks.Load(),
			RowsIn:        j.rowsIn.Load(),
			BytesIn:       j.bytesIn.Load(),
			RowsConverted: j.rowsConv.Load(),
			FilesWritten:  j.filesW.Load(),
			FilesUploaded: j.files.Load(),
			BytesUploaded: j.upBytes.Load(),
			CreditsHeld:   j.creditsHeld.Load(),
			CopyBatches:   j.batchesN.Load(),
			CopyQueue:     j.copyQueue.Load(),
			Tuning:        j.tuningStatus(),
			Statements:    j.stmts.Load(),
			ErrorsET:      j.errsETLive.Load(),
			ErrorsUV:      j.errsUVLive.Load(),
		})
	}
	for _, j := range exports {
		out = append(out, ActiveJob{
			JobID:          j.id,
			Kind:           "export",
			Phase:          "export",
			StartedAt:      j.started,
			ElapsedMS:      now.Sub(j.started).Milliseconds(),
			RowsExported:   j.rowsOut.Load(),
			BatchesFetched: j.batches.Load(),
		})
	}
	for _, j := range streams {
		out = append(out, ActiveJob{
			JobID:       j.id,
			Kind:        "stream",
			Target:      j.targets,
			Phase:       "streaming",
			StartedAt:   j.started,
			ElapsedMS:   now.Sub(j.started).Milliseconds(),
			ErrorsET:    j.errsET.Load(),
			CreditsHeld: j.heldCreds.Load(),
			Deltas:      j.deltas.Load(),
			Replayed:    j.replayed.Load(),
			Batches:     j.batches.Load(),
			Watermark:   j.wmLive.Load(),
			BatchHint:   j.hintLive.Load(),
		})
	}
	// stable order for consumers
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].JobID < out[k-1].JobID; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// ServeDebug starts an HTTP listener exposing operational endpoints:
//
//	/healthz           liveness probe
//	/metrics           Prometheus text exposition of the node registry
//	/jobs              JSON array of completed job reports
//	/jobs/active       JSON array of running jobs with live progress
//	/jobs/{id}/trace   per-job span timeline; ?format=chrome emits
//	                   Chrome trace_event JSON for chrome://tracing
//	/traces/{traceid}  distributed trace stitched across every job (and
//	                   process) sharing the 16-hex trace ID; ?format=chrome
//	                   as above
//	/streams           JSON array of open streams with live watermark lag
//	                   and per-stage latency attribution
//	/events            structured event log (JSONL); ?since=seq resumes
//	/debug/pprof/      runtime profiling
//
// It returns the bound address. Calling ServeDebug again replaces the
// previous debug server, closing it. The listener shuts down with the node.
func (n *Node) ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/metrics", obs.MetricsHandler(n.nm.reg))
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(n.Reports())
	})
	mux.HandleFunc("/jobs/active", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(n.ActiveJobs())
	})
	mux.HandleFunc("/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			http.Error(w, "bad job id", http.StatusBadRequest)
			return
		}
		t, ok := n.tracer.Get(id)
		if !ok {
			http.Error(w, "no trace for job", http.StatusNotFound)
			return
		}
		snap := t.Snapshot()
		var body []byte
		if r.URL.Query().Get("format") == "chrome" {
			body, err = snap.ChromeTrace()
		} else {
			body, err = snap.JSON()
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	})
	mux.HandleFunc("/traces/{traceid}", func(w http.ResponseWriter, r *http.Request) {
		id, err := obs.ParseTraceID(r.PathValue("traceid"))
		if err != nil {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		snap, ok := n.tracer.TraceByID(id)
		if !ok {
			http.Error(w, "no such trace", http.StatusNotFound)
			return
		}
		var body []byte
		if r.URL.Query().Get("format") == "chrome" {
			body, err = snap.ChromeTrace()
		} else {
			body, err = snap.JSON()
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	})
	mux.HandleFunc("/streams", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(n.StreamStatuses())
	})
	mux.Handle("/events", obs.EventsHandler(n.events))
	obs.AttachPprof(mux)
	srv := &http.Server{Handler: mux}
	// Bounded by the listener: node Close() (or a replacing DebugListen)
	// calls srv.Close, which stops Serve and ends the goroutine.
	go func() { //nolint:goroleak // listener-bounded; srv.Close stops Serve
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			n.log.Error("debug server", "err", err)
		}
	}()
	n.mu.Lock()
	prev := n.debugSrv
	n.debugSrv = srv
	n.mu.Unlock()
	if prev != nil {
		prev.Close()
	}
	return ln.Addr().String(), nil
}
