package core

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
)

// ServeDebug starts an HTTP listener exposing operational endpoints:
//
//	/healthz  liveness probe
//	/metrics  Prometheus-style text counters
//	/jobs     JSON array of completed job reports
//
// It returns the bound address. The listener shuts down with the node.
func (n *Node) ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		n.writeMetrics(w)
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(n.Reports())
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	n.mu.Lock()
	n.debugSrv = srv
	n.mu.Unlock()
	return ln.Addr().String(), nil
}

func (n *Node) writeMetrics(w http.ResponseWriter) {
	reports := n.Reports()
	var jobs, exports, rowsIn, bytesIn, errsET, errsUV, files int64
	for _, r := range reports {
		if r.Export {
			exports++
			continue
		}
		jobs++
		rowsIn += r.RowsIn
		bytesIn += r.BytesIn
		errsET += r.ErrorsET
		errsUV += r.ErrorsUV
		files += r.FilesWritten
	}
	n.mu.Lock()
	active := len(n.imports) + len(n.exports)
	n.mu.Unlock()
	cs := n.Credits()

	fmt.Fprintf(w, "# HELP etlvirt_jobs_completed_total Completed import jobs.\n")
	fmt.Fprintf(w, "etlvirt_jobs_completed_total %d\n", jobs)
	fmt.Fprintf(w, "etlvirt_exports_completed_total %d\n", exports)
	fmt.Fprintf(w, "etlvirt_jobs_active %d\n", active)
	fmt.Fprintf(w, "etlvirt_rows_received_total %d\n", rowsIn)
	fmt.Fprintf(w, "etlvirt_bytes_received_total %d\n", bytesIn)
	fmt.Fprintf(w, "etlvirt_files_uploaded_total %d\n", files)
	fmt.Fprintf(w, "etlvirt_errors_et_total %d\n", errsET)
	fmt.Fprintf(w, "etlvirt_errors_uv_total %d\n", errsUV)
	fmt.Fprintf(w, "etlvirt_credits_total %d\n", cs.Total)
	fmt.Fprintf(w, "etlvirt_credits_available %d\n", cs.Available)
	fmt.Fprintf(w, "etlvirt_credit_acquires_total %d\n", cs.Acquires)
	fmt.Fprintf(w, "etlvirt_credit_waits_total %d\n", cs.Waits)
	fmt.Fprintf(w, "etlvirt_credit_inflight_bytes %d\n", cs.InFlight)
	fmt.Fprintf(w, "etlvirt_credit_peak_inflight_bytes %d\n", cs.PeakInFlight)
}
