package core_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"etlvirt/internal/core"
	"etlvirt/internal/etlclient"
	"etlvirt/internal/ltype"
	"etlvirt/internal/obs"
	"etlvirt/internal/wire"
)

func httpGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// metricFamily strips histogram-sample suffixes so a sample line maps back to
// its registered family name.
func metricFamily(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// TestMetricsExposition verifies the Prometheus exposition contract after a
// real import: HELP and TYPE lines on every family, histograms expanded to
// _bucket/_sum/_count with a +Inf bucket, and the stage histograms populated.
func TestMetricsExposition(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)
	dbgAddr, err := st.node.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, st.addr, example21Script(""), map[string]string{"input.txt": figure5Data},
		etlclient.Options{ChunkRecords: 2})

	resp, err := http.Get("http://" + dbgAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type: %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)

	helped := map[string]bool{}
	typed := map[string]string{}
	series := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			helped[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			typed[f[2]] = f[3]
			continue
		}
		name := strings.Fields(line)[0]
		series[name] = true
		fam := metricFamily(name)
		if !helped[fam] {
			t.Errorf("sample %q has no # HELP for family %q", name, fam)
		}
		if typed[fam] == "" {
			t.Errorf("sample %q has no # TYPE for family %q", name, fam)
		}
	}
	if len(typed) < 25 {
		t.Errorf("only %d metric families exposed, want >= 25", len(typed))
	}

	// The stage histograms the acceptance criteria name must exist, be typed
	// histogram, and have observations from the run just performed.
	histograms := 0
	for _, typ := range typed {
		if typ == "histogram" {
			histograms++
		}
	}
	if histograms < 4 {
		t.Errorf("only %d histograms exposed", histograms)
	}
	for _, h := range []string{
		"etlvirt_credit_wait_seconds",
		"etlvirt_chunk_convert_seconds",
		"etlvirt_upload_seconds",
		"etlvirt_dml_statement_seconds",
	} {
		if typed[h] != "histogram" {
			t.Errorf("%s: TYPE %q, want histogram", h, typed[h])
		}
		if !series[h+"_sum"] || !series[h+"_count"] {
			t.Errorf("%s: missing _sum/_count series", h)
		}
		if !strings.Contains(body, h+`_bucket{le="+Inf"}`) {
			t.Errorf("%s: missing +Inf bucket", h)
		}
		if strings.Contains(body, h+"_count 0\n") {
			t.Errorf("%s: no observations after import:\n%s", h, grepPrefix(body, h))
		}
	}

	// Legacy series names survive with live values.
	for _, want := range []string{
		"etlvirt_jobs_completed_total 1",
		"etlvirt_rows_received_total 5",
		"etlvirt_errors_et_total 2",
		"etlvirt_errors_uv_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func grepPrefix(body, prefix string) string {
	var out []string
	for _, l := range strings.Split(body, "\n") {
		if strings.HasPrefix(l, prefix) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestJobsActiveLiveProgress drives an import by hand over the wire protocol
// and watches /jobs/active report advancing row counts while the job is
// mid-flight, then the phase flip to application, then the job's retirement.
func TestJobsActiveLiveProgress(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)
	dbgAddr, err := st.node.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	conn, err := wire.Dial(st.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(0, &wire.Logon{User: "u"}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Expect(wire.KindLogonOK); err != nil {
		t.Fatal(err)
	}
	layout := &ltype.Layout{Name: "L", Fields: []ltype.Field{
		{Name: "K", Type: ltype.VarChar(5)},
		{Name: "V", Type: ltype.VarChar(50)},
		{Name: "D", Type: ltype.VarChar(10)},
	}}
	if err := conn.Send(0, &wire.BeginLoad{
		Table: "PROD.CUSTOMER", Layout: layout,
		Format: wire.FormatVartext, Delim: '|', Sessions: 1,
	}); err != nil {
		t.Fatal(err)
	}
	m, err := conn.Expect(wire.KindLoadOK)
	if err != nil {
		t.Fatal(err)
	}
	jobID := m.(*wire.LoadOK).JobID

	sendChunk := func(seq, firstRow uint64, rows ...string) {
		t.Helper()
		payload := strings.Join(rows, "\n") + "\n"
		if err := conn.Send(0, &wire.DataChunk{
			JobID: jobID, Seq: seq, FirstRow: firstRow,
			Count: uint32(len(rows)), Payload: []byte(payload),
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Expect(wire.KindChunkAck); err != nil {
			t.Fatal(err)
		}
	}
	activeJobs := func() []core.ActiveJob {
		t.Helper()
		code, body := httpGet(t, dbgAddr, "/jobs/active")
		if code != 200 {
			t.Fatalf("/jobs/active: status %d", code)
		}
		var jobs []core.ActiveJob
		if err := json.Unmarshal([]byte(body), &jobs); err != nil {
			t.Fatalf("/jobs/active JSON: %v\n%s", err, body)
		}
		return jobs
	}
	waitFor := func(desc string, cond func([]core.ActiveJob) bool) []core.ActiveJob {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			jobs := activeJobs()
			if cond(jobs) {
				return jobs
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; last: %+v", desc, jobs)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	sendChunk(0, 1, "1|A|2020-01-01", "2|B|2020-01-02")
	jobs := waitFor("2 rows received", func(js []core.ActiveJob) bool {
		return len(js) == 1 && js[0].RowsIn == 2
	})
	if jobs[0].JobID != jobID || jobs[0].Kind != "import" || jobs[0].Phase != "acquisition" {
		t.Errorf("active job: %+v", jobs[0])
	}
	if jobs[0].Target != "PROD.CUSTOMER" {
		t.Errorf("target: %q", jobs[0].Target)
	}

	sendChunk(1, 3, "3|C|2020-01-03", "4|D|2020-01-04")
	waitFor("4 rows received", func(js []core.ActiveJob) bool {
		return len(js) == 1 && js[0].RowsIn == 4 && js[0].Chunks == 2
	})

	if err := conn.Send(0, &wire.EndAcquire{JobID: jobID}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Expect(wire.KindAcquireDone); err != nil {
		t.Fatal(err)
	}
	jobs = waitFor("application phase", func(js []core.ActiveJob) bool {
		return len(js) == 1 && js[0].Phase == "application"
	})
	if jobs[0].RowsConverted != 4 {
		t.Errorf("rows converted: %+v", jobs[0])
	}

	if err := conn.Send(0, &wire.EndLoad{JobID: jobID}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Expect(wire.KindLoadDone); err != nil {
		t.Fatal(err)
	}
	waitFor("job retired", func(js []core.ActiveJob) bool { return len(js) == 0 })
}

// TestJobTraceEndpoint checks the per-job span timeline: ordered spans with
// the pipeline's stages after a finished import, the Chrome trace_event
// rendering, and the error paths.
func TestJobTraceEndpoint(t *testing.T) {
	st := startStack(t, core.Config{})
	mustEng(t, st.eng, customerDDL)
	dbgAddr, err := st.node.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, st.addr, example21Script(""), map[string]string{"input.txt": figure5Data},
		etlclient.Options{ChunkRecords: 2})

	code, body := httpGet(t, dbgAddr, "/jobs/1/trace")
	if code != 200 {
		t.Fatalf("trace status %d: %s", code, body)
	}
	var snap obs.TraceSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if snap.JobID != 1 || !snap.Finished {
		t.Errorf("snapshot header: %+v", snap)
	}
	if len(snap.Spans) == 0 {
		t.Fatal("no spans recorded")
	}
	stages := map[string]int{}
	for i, sp := range snap.Spans {
		stages[sp.Stage]++
		if i > 0 && sp.Start.Before(snap.Spans[i-1].Start) {
			t.Errorf("span %d out of order: %v before %v", i, sp.Start, snap.Spans[i-1].Start)
		}
	}
	for _, want := range []string{"setup", "credit_wait", "convert", "write", "upload", "copy", "dml", "apply"} {
		if stages[want] == 0 {
			t.Errorf("stage %q missing from trace; have %v", want, stages)
		}
	}
	// figure5Data drives adaptive splitting: more than one DML statement.
	if stages["dml"] < 2 {
		t.Errorf("dml spans = %d, want >= 2 (adaptive splits)", stages["dml"])
	}

	// Chrome trace_event format: complete events plus lane metadata.
	code, body = httpGet(t, dbgAddr, "/jobs/1/trace?format=chrome")
	if code != 200 {
		t.Fatalf("chrome trace status %d", code)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  uint64  `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(body), &chrome); err != nil {
		t.Fatalf("chrome trace JSON: %v", err)
	}
	if chrome.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit: %q", chrome.DisplayTimeUnit)
	}
	// Spans now carry per-process lanes: the virtualizer's own stages land
	// on the first process, nested CDW engine spans on another.
	var complete, meta int
	pids := map[uint64]bool{}
	for _, ev := range chrome.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.PID == 0 {
				t.Errorf("event without pid: %+v", ev)
			}
			pids[ev.PID] = true
		case "M":
			meta++
		}
	}
	if !pids[1] {
		t.Errorf("no events on the primary process lane; pids %v", pids)
	}
	if complete != len(snap.Spans) {
		t.Errorf("chrome complete events %d != %d spans", complete, len(snap.Spans))
	}
	if meta < 2 {
		t.Errorf("chrome metadata events: %d", meta)
	}

	if code, _ := httpGet(t, dbgAddr, "/jobs/999/trace"); code != 404 {
		t.Errorf("unknown job trace: status %d, want 404", code)
	}
	if code, _ := httpGet(t, dbgAddr, "/jobs/abc/trace"); code != 400 {
		t.Errorf("malformed job id: status %d, want 400", code)
	}
}

// TestServeDebugReRegistration verifies that a second ServeDebug call closes
// the first server instead of leaking it.
func TestServeDebugReRegistration(t *testing.T) {
	st := startStack(t, core.Config{})
	first, err := st.node.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := httpGet(t, first, "/healthz"); code != 200 {
		t.Fatalf("first debug server unhealthy: %d", code)
	}
	second, err := st.node.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := httpGet(t, second, "/healthz"); code != 200 {
		t.Fatalf("second debug server unhealthy: %d", code)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := http.Get("http://" + first + "/healthz"); err != nil {
			break // prior server closed
		}
		if time.Now().After(deadline) {
			t.Fatal("first debug server still serving after re-registration")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReportLogBounded exercises the report ring: with a capacity of 3, five
// jobs leave the three most recent reports and a dropped count of two.
func TestReportLogBounded(t *testing.T) {
	st := startStack(t, core.Config{ReportLogSize: 3})
	mustEng(t, st.eng, customerDDL)
	for i := 0; i < 5; i++ {
		data := fmt.Sprintf("%d|Name %d|2020-01-01\n", i, i)
		runScript(t, st.addr, example21Script(""), map[string]string{"input.txt": data},
			etlclient.Options{})
	}
	reports := st.node.Reports()
	if len(reports) != 3 {
		t.Fatalf("retained reports: %d, want 3", len(reports))
	}
	for i, r := range reports {
		if want := uint64(i + 3); r.JobID != want {
			t.Errorf("report %d: job %d, want %d", i, r.JobID, want)
		}
	}
	dbgAddr, err := st.node.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	_, metrics := httpGet(t, dbgAddr, "/metrics")
	if !strings.Contains(metrics, "etlvirt_reports_dropped 2") {
		t.Errorf("dropped gauge:\n%s", grepPrefix(metrics, "etlvirt_reports_dropped"))
	}
}
