package core_test

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cdwnet"
	"etlvirt/internal/cloudstore"
	"etlvirt/internal/core"
	"etlvirt/internal/etlclient"
	"etlvirt/internal/etlscript"
	"etlvirt/internal/faultinject"
)

func parseScript(t *testing.T, script string) *etlscript.Script {
	t.Helper()
	s, err := etlscript.Parse(script)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// chaosSeed returns the fault seed for this run: ETLVIRT_FAULT_SEED from the
// environment (the CI chaos matrix sets it), or 1.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("ETLVIRT_FAULT_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("ETLVIRT_FAULT_SEED=%q: %v", s, err)
	}
	return v
}

// metricsDump renders the node's registry the same way /metrics does.
func metricsDump(t *testing.T, node *core.Node) string {
	t.Helper()
	var buf bytes.Buffer
	if err := node.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// metricValue extracts an un-labelled series value from a Prometheus dump.
func metricValue(t *testing.T, dump, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(dump, "\n") {
		val, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			t.Fatalf("metric %s: bad value %q", name, val)
		}
		return v
	}
	t.Fatalf("metric %s not found in dump:\n%s", name, dump)
	return 0
}

// chaosInput builds a load with clean rows, scattered bad dates, and one
// duplicate key, so faults hit acquisition and the error-handling
// application phase alike.
func chaosInput(rows int) string {
	var sb strings.Builder
	for i := 1; i <= rows; i++ {
		date := fmt.Sprintf("2021-%02d-%02d", 1+i%12, 1+i%28)
		if i%30 == 7 {
			date = "xxxx" // conversion error -> ET
		}
		id := i
		if i == rows-3 {
			id = 1 // duplicate key -> UV
		}
		fmt.Fprintf(&sb, "%d|Name %d|%s\n", id, i, date)
	}
	return sb.String()
}

// TestImportUnderInjectedFaults is the headline resilience assertion: an
// import driven through injected object-store and CDW transport faults must
// converge to the exact same target table and error-table contents as the
// same import with no faults, while the retry metrics record the recovery
// work.
func TestImportUnderInjectedFaults(t *testing.T) {
	seed := chaosSeed(t)
	input := chaosInput(300)
	// UploadParallelism 1 keeps the store.put call order deterministic, so a
	// given seed always exercises the same schedule.
	base := core.Config{UploadParallelism: 1, FileSizeThreshold: 2 << 10}

	clean := startStack(t, base)
	mustEng(t, clean.eng, customerDDL)
	cleanRes := runScript(t, clean.addr, example21Script(""), map[string]string{"input.txt": input},
		etlclient.Options{ChunkRecords: 20})

	inj := faultinject.New(seed)
	inj.SetRule(faultinject.OpStorePut,
		faultinject.Rule{Rate: 0.2, Every: 4, Class: faultinject.ClassTimeout})
	inj.SetRule("cdw.query",
		faultinject.Rule{Rate: 0.02, Every: 25, Class: faultinject.ClassReset})
	cfg := base
	cfg.FaultInjector = inj
	cfg.RetryMaxAttempts = 8
	cfg.RetryBaseDelay = time.Millisecond
	cfg.RetryMaxDelay = 5 * time.Millisecond
	faulted := startStack(t, cfg)
	mustEng(t, faulted.eng, customerDDL)
	faultedRes := runScript(t, faulted.addr, example21Script(""), map[string]string{"input.txt": input},
		etlclient.Options{ChunkRecords: 20})

	c, f := cleanRes.Imports[0], faultedRes.Imports[0]
	if c.Inserted != f.Inserted || c.ErrorsET != f.ErrorsET || c.ErrorsUV != f.ErrorsUV ||
		c.RowsStaged != f.RowsStaged || c.DataErrors != f.DataErrors {
		t.Errorf("job outcomes diverged under faults:\n clean:   %+v\n faulted: %+v", c, f)
	}
	for _, q := range []string{
		"SELECT CUST_ID, CUST_NAME, JOIN_DATE FROM PROD.CUSTOMER",
		"SELECT SEQNO, SEQNO_END, ERRCODE, ERRFIELD, ERRMSG FROM PROD.CUSTOMER_ET",
		"SELECT SEQNO, SEQNO_END, ERRCODE, ERRMSG FROM PROD.CUSTOMER_UV",
	} {
		if got, want := engState(t, faulted.eng, q), engState(t, clean.eng, q); got != want {
			t.Errorf("state diverged under faults for %q:\n clean:\n%s\n faulted:\n%s", q, want, got)
		}
	}

	dump := metricsDump(t, faulted.node)
	if v := metricValue(t, dump, "etlvirt_faults_injected_total"); v == 0 {
		t.Error("no faults fired; the chaos schedule is dead")
	}
	if v := metricValue(t, dump, "etlvirt_retry_attempts_total"); v == 0 {
		t.Error("faults fired but nothing was retried")
	}
	if v := metricValue(t, dump, "etlvirt_retry_exhausted_total"); v != 0 {
		t.Errorf("retries exhausted %v times during a load that succeeded", v)
	}
	if inj.Injected() == 0 {
		t.Error("injector reports zero faults")
	}
	// the clean node must publish the same series, at zero
	cleanDump := metricsDump(t, clean.node)
	if v := metricValue(t, cleanDump, "etlvirt_faults_injected_total"); v != 0 {
		t.Errorf("clean run injected %v faults", v)
	}
}

// engState canonicalizes a query result for byte-for-byte comparison across
// engines: rendered rows, sorted.
func engState(t *testing.T, eng *cdw.Engine, sql string) string {
	t.Helper()
	res, err := eng.ExecSQL(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		var parts []string
		for _, d := range row {
			parts = append(parts, d.Render())
		}
		lines = append(lines, strings.Join(parts, "|"))
	}
	// insertion-order independence
	for i := 1; i < len(lines); i++ {
		for j := i; j > 0 && lines[j] < lines[j-1]; j-- {
			lines[j], lines[j-1] = lines[j-1], lines[j]
		}
	}
	return strings.Join(lines, "\n")
}

// TestCopyRecoveryOnEngineFault injects a fault into the CDW engine's side
// of the object store — the COPY's read path — and checks the node recovers
// by recreating the staging table and re-running the COPY.
func TestCopyRecoveryOnEngineFault(t *testing.T) {
	mem := cloudstore.NewMemStore()
	engInj := faultinject.New(chaosSeed(t))
	// first store read the engine performs (the COPY pulling the uploaded
	// file) fails
	engInj.SetRule(faultinject.OpStoreGet, faultinject.Rule{Nth: []int64{1}})
	eng := cdw.NewEngine(faultinject.NewStore(engInj, mem), cdw.Options{})
	srv := cdwnet.NewServer(eng)
	cdwAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	node := core.NewNode(core.Config{
		CDWAddr:        cdwAddr,
		RetryBaseDelay: time.Millisecond,
	}, mem)
	addr, err := node.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	mustEng(t, eng, customerDDL)

	clean := "1|Alpha|2020-01-01\n2|Beta|2020-01-02\n3|Gamma|2020-01-03\n"
	res := runScript(t, addr, example21Script(""), map[string]string{"input.txt": clean},
		etlclient.Options{ChunkRecords: 10})
	if res.Imports[0].Inserted != 3 {
		t.Errorf("inserted = %d, want 3", res.Imports[0].Inserted)
	}
	if n := mustEng(t, eng, "SELECT count(*) FROM PROD.CUSTOMER").Rows[0][0].I; n != 3 {
		t.Errorf("target count = %d", n)
	}
	dump := metricsDump(t, node)
	if v := metricValue(t, dump, "etlvirt_copy_recoveries_total"); v < 1 {
		t.Errorf("copy recoveries = %v, want >= 1", v)
	}
	if v := metricValue(t, dump, "etlvirt_retry_attempts_total"); v < 1 {
		t.Errorf("retry attempts = %v, want >= 1", v)
	}
	if engInj.Injected() != 1 {
		t.Errorf("engine-side faults = %d, want 1", engInj.Injected())
	}
}

// TestPartialCopyRecoveryReplaysLandedBatches faults the engine's object
// store between incremental COPY batches: the first manifest batch lands,
// then the next batch's first file read fails, forcing the staging-recreate
// recovery path. The recreated staging table must replay every landed batch
// exactly once before re-running the failing batch, and the final target
// must hold every row — the exactly-once guarantee of the copy scheduler.
func TestPartialCopyRecoveryReplaysLandedBatches(t *testing.T) {
	mem := cloudstore.NewMemStore()
	engInj := faultinject.New(chaosSeed(t))
	// Gets 1-2 are the first two-file batch landing; Get 3 is the next
	// batch's first file and fails, after state has already been staged.
	engInj.SetRule(faultinject.OpStoreGet, faultinject.Rule{Nth: []int64{3}})
	eng := cdw.NewEngine(faultinject.NewStore(engInj, mem), cdw.Options{})
	srv := cdwnet.NewServer(eng)
	cdwAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	node := core.NewNode(core.Config{
		CDWAddr:           cdwAddr,
		RetryBaseDelay:    time.Millisecond,
		FileSizeThreshold: 256, // many small spool files
		FileWriters:       1,   // deterministic file sequence
		UploadParallelism: 1,   // deterministic upload (and COPY-feed) order
		CopyBatchFiles:    2,
	}, mem)
	addr, err := node.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	mustEng(t, eng, customerDDL)

	const rows = 120
	var input strings.Builder
	for i := 1; i <= rows; i++ {
		fmt.Fprintf(&input, "%d|Name %d|2021-%02d-%02d\n", i, i, 1+i%12, 1+i%28)
	}
	res := runScript(t, addr, example21Script(""), map[string]string{"input.txt": input.String()},
		etlclient.Options{ChunkRecords: 10})
	if got := res.Imports[0].Inserted; got != rows {
		t.Errorf("inserted = %d, want %d", got, rows)
	}
	if n := mustEng(t, eng, "SELECT count(*) FROM PROD.CUSTOMER").Rows[0][0].I; n != rows {
		t.Errorf("target count = %d, want %d", n, rows)
	}

	dump := metricsDump(t, node)
	if v := metricValue(t, dump, "etlvirt_copy_recoveries_total"); v != 1 {
		t.Errorf("copy recoveries = %v, want exactly 1", v)
	}
	// Exactly one batch had landed when the fault hit, and recovery replays
	// it exactly once — more would double rows, fewer would drop them.
	if v := metricValue(t, dump, "etlvirt_copy_batch_replays_total"); v != 1 {
		t.Errorf("landed-batch replays = %v, want exactly 1", v)
	}
	if v := metricValue(t, dump, "etlvirt_copy_batches_total"); v < 2 {
		t.Errorf("incremental batches = %v, want >= 2", v)
	}
	if got := engInj.Injected(); got != 1 {
		t.Errorf("engine-side faults = %d, want 1", got)
	}
}

// TestRetryExhaustionPoisonsJob removes any hope of recovery (every put
// faults forever) and checks the job fails cleanly instead of hanging, with
// the exhaustion recorded.
func TestRetryExhaustionPoisonsJob(t *testing.T) {
	inj := faultinject.New(chaosSeed(t))
	inj.SetRule(faultinject.OpStorePut, faultinject.Rule{Every: 1})
	st := startStack(t, core.Config{
		FaultInjector:    inj,
		RetryMaxAttempts: 3,
		RetryBaseDelay:   time.Millisecond,
		RetryMaxDelay:    2 * time.Millisecond,
	})
	mustEng(t, st.eng, customerDDL)
	s := parseScript(t, example21Script(""))
	_, err := etlclient.Run(s, etlclient.Options{
		Addr:     st.addr,
		ReadFile: func(string) ([]byte, error) { return []byte("1|A|2020-01-01\n"), nil },
	})
	if err == nil {
		t.Fatal("load succeeded with every store put faulting")
	}
	dump := metricsDump(t, st.node)
	if v := metricValue(t, dump, "etlvirt_retry_exhausted_total"); v < 1 {
		t.Errorf("retry exhaustion not recorded: %v", v)
	}
	if v := metricValue(t, dump, "etlvirt_jobs_failed_total"); v != 1 {
		t.Errorf("jobs failed = %v, want 1", v)
	}
}

// TestRetryBudgetBoundsRecoveryWork sets a node-wide retry budget smaller
// than the fault schedule demands and checks the budget gauge drains to zero
// and the job fails rather than retrying forever.
func TestRetryBudgetBoundsRecoveryWork(t *testing.T) {
	inj := faultinject.New(chaosSeed(t))
	inj.SetRule(faultinject.OpStorePut, faultinject.Rule{Every: 1})
	st := startStack(t, core.Config{
		FaultInjector:    inj,
		RetryMaxAttempts: 100,
		RetryBaseDelay:   time.Millisecond,
		RetryMaxDelay:    2 * time.Millisecond,
		RetryBudget:      5,
	})
	mustEng(t, st.eng, customerDDL)
	s := parseScript(t, example21Script(""))
	_, err := etlclient.Run(s, etlclient.Options{
		Addr:     st.addr,
		ReadFile: func(string) ([]byte, error) { return []byte("1|A|2020-01-01\n"), nil },
	})
	if err == nil {
		t.Fatal("load succeeded with every store put faulting")
	}
	dump := metricsDump(t, st.node)
	if v := metricValue(t, dump, "etlvirt_retry_budget_remaining"); v != 0 {
		t.Errorf("budget remaining = %v, want 0", v)
	}
	if v := metricValue(t, dump, "etlvirt_retry_attempts_total"); v != 5 {
		t.Errorf("retry attempts = %v, want exactly the budget (5)", v)
	}
}
