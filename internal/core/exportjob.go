package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cdwnet"
	"etlvirt/internal/ltype"
	"etlvirt/internal/obs"
	"etlvirt/internal/tdf"
	"etlvirt/internal/wire"
)

// exportJob serves one virtualized export (Figure 2(b)). A TDFCursor
// goroutine retrieves CDW result batches on demand, packages them as TDF
// packets, and buffers a bounded window ahead of client requests. Client
// export sessions request chunks by sequence number; the PXC unwraps the TDF
// packet for that sequence and re-encodes its rows in the legacy format.
type exportJob struct {
	id     uint64
	node   *Node
	layout *ltype.Layout
	cols   []cdwnet.ResultCol
	format wire.DataFormat
	delim  byte

	mu      sync.Mutex
	cond    *sync.Cond
	packets map[uint64]*tdf.Packet
	nextSeq uint64 // next packet the producer will emit
	lastSeq uint64 // seq of the packet marked Last; valid when done
	done    bool
	err     error

	client     *cdwnet.Client
	cursorDone chan struct{} // closed when runCursor has released the cursor
	rows       int64
	rowsOut    atomic.Int64 // rows encoded for the client, observable lock-free
	batches    atomic.Int64 // result batches fetched by the TDFCursor
	started    time.Time
	trace      *obs.JobTrace
}

func (n *Node) newExportJob(m *wire.BeginExport) (*exportJob, error) {
	cdwSQL, err := n.translator().Translate(m.SQL)
	if err != nil {
		return nil, fmt.Errorf("cross-compiling export query: %w", err)
	}
	// Opening an export pins a pooled connection for the cursor's lifetime,
	// so the pool's internal round-trip retry does not apply; re-drive the
	// open (fresh Get + Query) under the node retry policy instead.
	var client *cdwnet.Client
	var cur *cdwnet.Cursor
	openStart := time.Now()
	err = n.retry.Do(n.ctx, "export.open", func() error {
		c, err := n.pool.Get()
		if err != nil {
			return err
		}
		q, err := c.Query(cdwSQL, n.cfg.ExportChunkRows)
		if err != nil {
			n.pool.Put(c) // discards if the fault poisoned it
			return err
		}
		client, cur = c, q
		return nil
	})
	if err != nil {
		return nil, err
	}
	id := n.nextJob.Add(1)
	n.nm.exportsStarted.Inc()
	trace := n.tracer.Start(id, "export")
	trace.Span("export_open", "tdfcursor", openStart, 0, 0, nil)
	j := &exportJob{
		id:         id,
		node:       n,
		cols:       cur.Columns(),
		format:     m.Format,
		delim:      m.Delim,
		packets:    make(map[uint64]*tdf.Packet),
		client:     client,
		cursorDone: make(chan struct{}),
		started:    time.Now(),
		trace:      trace,
	}
	j.cond = sync.NewCond(&j.mu)
	j.layout = layoutFromCols(fmt.Sprintf("export_%d", id), j.cols)
	if m.Delim == 0 {
		j.delim = '|'
	}

	go j.runCursor(cur)

	n.mu.Lock()
	n.exports[id] = j
	n.mu.Unlock()
	return j, nil
}

// runCursor is the TDFCursor process: pull result batches, wrap them in TDF
// packets, and buffer up to ExportPrefetch packets ahead of consumption.
func (j *exportJob) runCursor(cur *cdwnet.Cursor) {
	defer func() {
		_ = cur.Close() // drain so the pooled connection is reusable
		close(j.cursorDone)
	}()
	prefetch := j.node.cfg.ExportPrefetch
	nm := j.node.nm
	seq := uint64(0)
	for {
		fetchStart := time.Now()
		batch, ok, err := cur.NextBatch()
		if ok || err != nil {
			nm.exportBatches.Inc()
			nm.exportBatchLat.ObserveDuration(time.Since(fetchStart))
			j.batches.Add(1)
			j.trace.Span("export_fetch", "tdfcursor", fetchStart, int64(len(batch)), 0, err)
		}
		if err != nil {
			j.mu.Lock()
			j.err = err
			j.done = true
			j.cond.Broadcast()
			j.mu.Unlock()
			return
		}
		j.mu.Lock()
		for len(j.packets) >= prefetch && j.err == nil && !j.done {
			j.cond.Wait()
		}
		if j.done && ok {
			// client abandoned the export
			j.mu.Unlock()
			return
		}
		if !ok {
			// mark the previous packet as last, or emit an empty last packet
			if seq == 0 {
				j.packets[0] = &tdf.Packet{Seq: 0, Last: true, Columns: j.tdfColumns()}
				seq = 1
			} else if p, ok := j.packets[seq-1]; ok {
				p.Last = true
			} else {
				j.packets[seq] = &tdf.Packet{Seq: seq, Last: true, Columns: j.tdfColumns()}
				seq++
			}
			j.lastSeq = seq - 1
			j.done = true
			j.nextSeq = seq
			j.cond.Broadcast()
			j.mu.Unlock()
			return
		}
		p := &tdf.Packet{Seq: seq, Columns: j.tdfColumns()}
		for _, row := range batch {
			tr := make([]tdf.Value, len(row))
			for i, d := range row {
				tr[i] = datumToTDF(d)
			}
			p.Rows = append(p.Rows, tr)
		}
		j.packets[seq] = p
		seq++
		j.nextSeq = seq
		j.cond.Broadcast()
		j.mu.Unlock()
	}
}

func (j *exportJob) tdfColumns() []tdf.Column {
	out := make([]tdf.Column, len(j.cols))
	for i, c := range j.cols {
		out[i] = tdf.Column{Name: c.Name, DeclType: c.Type.String()}
	}
	return out
}

// chunk returns the encoded legacy payload for packet seq, blocking until
// the TDFCursor has buffered it.
func (j *exportJob) chunk(seq uint64) (*wire.ExportChunk, error) {
	j.mu.Lock()
	for {
		if j.err != nil {
			err := j.err
			j.mu.Unlock()
			return nil, err
		}
		if p, ok := j.packets[seq]; ok {
			delete(j.packets, seq)
			j.cond.Broadcast() // free prefetch space
			j.mu.Unlock()
			return j.encodePacket(p)
		}
		if j.done {
			// past the end: empty EOF chunk
			j.mu.Unlock()
			return &wire.ExportChunk{JobID: j.id, Seq: seq, EOF: true}, nil
		}
		j.cond.Wait()
	}
}

// encodePacket unwraps a TDF packet and encodes its rows in the legacy
// format — the PXC's export-direction conversion (§4).
func (j *exportJob) encodePacket(p *tdf.Packet) (*wire.ExportChunk, error) {
	rows := make([][]cdw.Datum, len(p.Rows))
	for i, tr := range p.Rows {
		row := make([]cdw.Datum, len(tr))
		for k, v := range tr {
			d, err := tdfToDatum(v, j.cols[k].Type)
			if err != nil {
				return nil, err
			}
			row[k] = d
		}
		rows[i] = row
	}
	encStart := time.Now()
	payload, err := encodeRowsLegacy(rows, j.layout, uint8(j.format), j.delim)
	if err != nil {
		return nil, err
	}
	j.trace.Span("export_encode", "pxc", encStart, int64(len(rows)), int64(len(payload)), nil)
	j.node.nm.rowsExported.Add(int64(len(rows)))
	j.node.nm.exportChunks.Inc()
	j.rowsOut.Add(int64(len(rows)))
	j.mu.Lock()
	j.rows += int64(len(rows))
	j.mu.Unlock()
	return &wire.ExportChunk{
		JobID:   j.id,
		Seq:     p.Seq,
		Count:   uint32(len(p.Rows)),
		EOF:     p.Last,
		Payload: payload,
	}, nil
}

// finish releases the CDW connection and files a report.
func (j *exportJob) finish() {
	j.mu.Lock()
	j.done = true
	rows := j.rows
	j.cond.Broadcast()
	j.mu.Unlock()
	// Wait for the TDFCursor to drain the cursor (it may still be mid-fetch
	// if the client abandoned the export early), then return the connection.
	<-j.cursorDone
	j.node.pool.Put(j.client)
	r := JobReport{
		JobID:        j.id,
		Export:       true,
		ExportedRows: rows,
		Other:        time.Since(j.started),
	}
	j.node.record(r)
	j.node.nm.exportsCompleted.Inc()
	j.node.tracer.Finish(j.id)
	j.node.mu.Lock()
	delete(j.node.exports, j.id)
	j.node.mu.Unlock()
}
