package core

import (
	"fmt"
	"net"

	"etlvirt/internal/wire"
)

// serveConn runs the PXC state machine for one client connection. The
// legacy protocol is strictly request/response per session, so a single
// goroutine per connection suffices; concurrency comes from clients opening
// parallel data sessions (each its own connection).
func (n *Node) serveConn(nc net.Conn) {
	c := wire.NewConn(nc)
	defer c.Close()

	m, _, err := c.Recv()
	if err != nil {
		return
	}
	logon, ok := m.(*wire.Logon)
	if !ok {
		_ = c.Send(0, &wire.Failure{Code: 3001, Message: "expected logon"})
		return
	}
	if logon.User == "" {
		_ = c.Send(0, &wire.Failure{Code: 3002, Message: "missing user"})
		return
	}
	session := n.nextSession.Add(1)
	if err := c.Send(session, &wire.LogonOK{SessionID: session, ServerVersion: "etlvirt/1.0"}); err != nil {
		return
	}

	// Jobs begun on this control session; any still registered when the
	// connection drops are aborted so they cannot leak goroutines, staging
	// tables or uploaded objects.
	ownedImports := make(map[uint64]bool)
	ownedExports := make(map[uint64]bool)
	ownedStreams := make(map[uint64]bool)
	defer func() {
		for id := range ownedImports {
			if job, ok := n.importJob(id); ok {
				job.abort()
			}
		}
		for id := range ownedExports {
			if job, ok := n.exportJob(id); ok {
				job.finish()
			}
		}
		// A dropped streaming connection aborts its stream: buffered deltas
		// are discarded and their credits returned; checkpoint and error
		// tables stay so the stream's next incarnation resumes.
		for id := range ownedStreams {
			if job, ok := n.streamJob(id); ok {
				job.abort()
			}
		}
	}()

	for {
		m, _, tc, err := c.RecvT()
		if err != nil {
			return
		}
		// Logon is consumed by the handshake before this loop starts, so it
		// is exempt from the dispatch-coverage check here.
		//etlvirt:dispatch server -KindLogon
		switch msg := m.(type) {
		case *wire.Logoff:
			return

		case *wire.RunSQL:
			if err := n.handleRunSQL(c, session, msg); err != nil {
				return
			}

		case *wire.BeginLoad:
			job, err := n.newImportJob(msg, tc)
			if err != nil {
				if e := c.Send(session, &wire.Failure{Code: 3004, Message: err.Error()}); e != nil {
					return
				}
				continue
			}
			ownedImports[job.id] = true
			if err := c.Send(session, &wire.LoadOK{JobID: job.id}); err != nil {
				return
			}

		case *wire.AttachLoad:
			if _, ok := n.importJob(msg.JobID); !ok {
				if e := c.Send(session, &wire.Failure{Code: 3005, Message: jobErr(msg.JobID)}); e != nil {
					return
				}
				continue
			}
			if err := c.Send(session, &wire.AttachOK{}); err != nil {
				return
			}

		case *wire.DataChunk:
			job, ok := n.importJob(msg.JobID)
			if !ok {
				if e := c.Send(session, &wire.Failure{Code: 3005, Message: jobErr(msg.JobID)}); e != nil {
					return
				}
				continue
			}
			job.pending.Add(1)
			if n.cfg.SyncAcquisition {
				// Ablation (§5): synchronize the pipeline — convert and
				// persist the chunk before acknowledging it.
				done := make(chan struct{})
				if err := job.handleChunk(msg, done); err != nil {
					n.log.Error("chunk handling failed", "job", job.id, "err", err)
				} else {
					<-done
				}
				if err := c.Send(session, &wire.ChunkAck{Seq: msg.Seq}); err != nil {
					return
				}
				continue
			}
			// Minimal validation, then acknowledge immediately (§5); the
			// credit acquisition below is the only back-pressure.
			if err := c.Send(session, &wire.ChunkAck{Seq: msg.Seq}); err != nil {
				job.pending.Done()
				return
			}
			if err := job.handleChunk(msg, nil); err != nil {
				// the job is poisoned; subsequent EndAcquire reports it
				n.log.Error("chunk handling failed", "job", job.id, "err", err)
			}

		case *wire.EndAcquire:
			job, ok := n.importJob(msg.JobID)
			if !ok {
				if e := c.Send(session, &wire.Failure{Code: 3005, Message: jobErr(msg.JobID)}); e != nil {
					return
				}
				continue
			}
			done, err := job.finishAcquisition()
			if err != nil {
				if e := c.Send(session, &wire.Failure{Code: 3006, Message: err.Error()}); e != nil {
					return
				}
				continue
			}
			if err := c.Send(session, done); err != nil {
				return
			}

		case *wire.ApplyDML:
			job, ok := n.importJob(msg.JobID)
			if !ok {
				if e := c.Send(session, &wire.Failure{Code: 3005, Message: jobErr(msg.JobID)}); e != nil {
					return
				}
				continue
			}
			res, err := job.applyDML(msg)
			if err != nil {
				if e := c.Send(session, &wire.Failure{Code: 3007, Message: err.Error()}); e != nil {
					return
				}
				continue
			}
			if err := c.Send(session, res); err != nil {
				return
			}

		case *wire.EndLoad:
			job, ok := n.importJob(msg.JobID)
			if !ok {
				if e := c.Send(session, &wire.Failure{Code: 3005, Message: jobErr(msg.JobID)}); e != nil {
					return
				}
				continue
			}
			job.finish()
			delete(ownedImports, job.id)
			if err := c.Send(session, &wire.LoadDone{JobID: job.id}); err != nil {
				return
			}

		case *wire.BeginExport:
			job, err := n.newExportJob(msg)
			if err != nil {
				if e := c.Send(session, &wire.Failure{Code: 3008, Message: err.Error()}); e != nil {
					return
				}
				continue
			}
			ownedExports[job.id] = true
			if err := c.Send(session, &wire.ExportOK{JobID: job.id, Layout: job.layout}); err != nil {
				return
			}

		case *wire.ExportChunkRq:
			job, ok := n.exportJob(msg.JobID)
			if !ok {
				if e := c.Send(session, &wire.Failure{Code: 3005, Message: jobErr(msg.JobID)}); e != nil {
					return
				}
				continue
			}
			chunk, err := job.chunk(msg.Seq)
			if err != nil {
				if e := c.Send(session, &wire.Failure{Code: 3009, Message: err.Error()}); e != nil {
					return
				}
				continue
			}
			if err := c.Send(session, chunk); err != nil {
				return
			}

		case *wire.EndExport:
			job, ok := n.exportJob(msg.JobID)
			if ok {
				job.finish()
				delete(ownedExports, msg.JobID)
			}
			if err := c.Send(session, &wire.LoadDone{JobID: msg.JobID}); err != nil {
				return
			}

		case *wire.BeginStream:
			job, err := n.newStreamJob(msg, tc)
			if err != nil {
				if e := c.Send(session, &wire.Failure{Code: 3010, Message: err.Error()}); e != nil {
					return
				}
				continue
			}
			ownedStreams[job.id] = true
			if err := c.Send(session, &wire.StreamOK{
				StreamID:  job.id,
				ResumeSeq: uint64(job.watermark),
				BatchHint: uint32(job.ctrl.Hint().BatchRows),
			}); err != nil {
				return
			}

		case *wire.DeltaFrame:
			job, ok := n.streamJob(msg.StreamID)
			if !ok {
				if e := c.Send(session, &wire.Failure{Code: 3005, Message: jobErr(msg.StreamID)}); e != nil {
					return
				}
				continue
			}
			ack, err := job.handleFrame(msg)
			if err != nil {
				// A failed frame poisons the stream: abort so the client's
				// reconnect resumes from the durable watermark.
				job.abort()
				delete(ownedStreams, msg.StreamID)
				if e := c.Send(session, &wire.Failure{Code: 3011, Message: err.Error()}); e != nil {
					return
				}
				continue
			}
			if err := c.Send(session, ack); err != nil {
				return
			}

		case *wire.EndStream:
			job, ok := n.streamJob(msg.StreamID)
			if !ok {
				if e := c.Send(session, &wire.Failure{Code: 3005, Message: jobErr(msg.StreamID)}); e != nil {
					return
				}
				continue
			}
			done, err := job.finishStream()
			if err != nil {
				job.abort()
				delete(ownedStreams, msg.StreamID)
				if e := c.Send(session, &wire.Failure{Code: 3011, Message: err.Error()}); e != nil {
					return
				}
				continue
			}
			delete(ownedStreams, msg.StreamID)
			if err := c.Send(session, done); err != nil {
				return
			}

		case *wire.TraceSpans:
			// Client-side spans for one of this trace's jobs: fold them into
			// the job's timeline so /traces/{id} stitches both processes.
			added := n.foldTraceSpans(msg)
			if err := c.Send(session, &wire.TraceAck{JobID: msg.JobID, Added: added}); err != nil {
				return
			}

		default:
			if e := c.Send(session, &wire.Failure{Code: 3003,
				Message: fmt.Sprintf("unexpected message %s", m.Kind())}); e != nil {
				return
			}
		}
	}
}

func (n *Node) importJob(id uint64) (*importJob, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	j, ok := n.imports[id]
	return j, ok
}

func (n *Node) exportJob(id uint64) (*exportJob, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	j, ok := n.exports[id]
	return j, ok
}

func (n *Node) streamJob(id uint64) (*streamJob, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	j, ok := n.streams[id]
	return j, ok
}

func jobErr(id uint64) string {
	return fmt.Sprintf("no such job %d", id)
}

// foldTraceSpans merges client-recorded spans into a job's trace timeline.
// The job may be live or already finished-and-retained; spans past the
// trace's span cap are dropped there and not counted as added.
func (n *Node) foldTraceSpans(m *wire.TraceSpans) uint32 {
	t, ok := n.tracer.Get(m.JobID)
	if !ok {
		return 0
	}
	before := t.Snapshot().Dropped
	for _, s := range m.Spans {
		if s.Proc == "" {
			s.Proc = "etlclient" // defensive: never inherit the server's proc
		}
		t.AddRemote(s)
	}
	dropped := t.Snapshot().Dropped - before
	return uint32(len(m.Spans)) - uint32(dropped)
}
