package core

import (
	"fmt"
	"time"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cdwnet"
	"etlvirt/internal/ltype"
	"etlvirt/internal/tdf"
)

// colTypeToLegacy maps a CDW result column type to the legacy type used when
// re-encoding result rows for the legacy client (export jobs and RunSQL
// result sets).
func colTypeToLegacy(t cdw.ColType) ltype.Type {
	switch t.Kind {
	case cdw.KBool:
		return ltype.Simple(ltype.KindByteInt)
	case cdw.KInt:
		return ltype.Simple(ltype.KindBigInt)
	case cdw.KFloat:
		return ltype.Simple(ltype.KindFloat)
	case cdw.KDecimal:
		return ltype.Decimal(t.Precision, t.Scale)
	case cdw.KString:
		n := t.Length
		if n <= 0 {
			n = 4000
		}
		lt := ltype.VarChar(n)
		if t.National {
			lt.CharSet = ltype.CharSetUnicode
		}
		return lt
	case cdw.KDate:
		return ltype.Simple(ltype.KindDate)
	case cdw.KTime:
		return ltype.Simple(ltype.KindTime)
	case cdw.KTimestamp:
		return ltype.Simple(ltype.KindTimestamp)
	case cdw.KBytes:
		n := t.Length
		if n <= 0 {
			n = 4000
		}
		return ltype.Type{Kind: ltype.KindVarByte, Length: n}
	default:
		return ltype.VarChar(4000)
	}
}

// layoutFromCols builds the legacy layout announced to the client for a
// result set.
func layoutFromCols(name string, cols []cdwnet.ResultCol) *ltype.Layout {
	l := &ltype.Layout{Name: name}
	for _, c := range cols {
		l.Fields = append(l.Fields, ltype.Field{Name: c.Name, Type: colTypeToLegacy(c.Type)})
	}
	return l
}

// datumToLegacy converts one CDW datum into the legacy value for field type
// lt. This is the export-direction format conversion of §4: epoch-day dates
// become the legacy integer encoding, timestamps become fixed-width text,
// and so on.
func datumToLegacy(d cdw.Datum, lt ltype.Type) (ltype.Value, error) {
	if d.IsNull() {
		return ltype.NullValue(lt.Kind), nil
	}
	switch lt.Kind {
	case ltype.KindByteInt, ltype.KindSmallInt, ltype.KindInteger, ltype.KindBigInt:
		switch d.Kind {
		case cdw.KInt:
			return ltype.IntValue(lt.Kind, d.I), nil
		case cdw.KBool:
			if d.Bool {
				return ltype.IntValue(lt.Kind, 1), nil
			}
			return ltype.IntValue(lt.Kind, 0), nil
		}
	case ltype.KindFloat:
		if d.Kind == cdw.KFloat {
			return ltype.FloatValue(d.F), nil
		}
	case ltype.KindDecimal:
		if d.Kind == cdw.KDecimal {
			v := ltype.IntValue(ltype.KindDecimal, d.I)
			v.S = ltype.FormatDecimal(d.I, int(d.Scale))
			return v, nil
		}
	case ltype.KindChar, ltype.KindVarChar:
		return ltype.StringValue(lt.Kind, d.Render()), nil
	case ltype.KindDate:
		if d.Kind == cdw.KDate {
			t := time.Unix(d.I*86400, 0).UTC()
			return ltype.DateValue(t.Year(), int(t.Month()), t.Day()), nil
		}
	case ltype.KindTime:
		if d.Kind == cdw.KTime {
			return ltype.IntValue(ltype.KindTime, d.I), nil
		}
	case ltype.KindTimestamp:
		if d.Kind == cdw.KTimestamp {
			s := time.UnixMicro(d.I).UTC().Format("2006-01-02 15:04:05")
			return ltype.StringValue(ltype.KindTimestamp, s), nil
		}
	case ltype.KindByte, ltype.KindVarByte:
		if d.Kind == cdw.KBytes {
			return ltype.BytesValue(lt.Kind, d.B), nil
		}
	}
	return ltype.Value{}, fmt.Errorf("core: cannot convert CDW %s to legacy %s", d.Kind, lt.Kind)
}

// datumToTDF wraps a CDW datum as a TDF value for transport between the
// TDFCursor and the PXC.
func datumToTDF(d cdw.Datum) tdf.Value {
	switch d.Kind {
	case cdw.KNull:
		return tdf.Null()
	case cdw.KBool:
		return tdf.Bool(d.Bool)
	case cdw.KInt, cdw.KDate, cdw.KTime, cdw.KTimestamp:
		return tdf.Int(d.I)
	case cdw.KDecimal:
		// decimals travel as a struct to preserve exactness and scale —
		// the nested-value capability TDF exists for
		return tdf.Struct(
			tdf.StructField{Name: "u", Value: tdf.Int(d.I)},
			tdf.StructField{Name: "s", Value: tdf.Int(int64(d.Scale))},
		)
	case cdw.KFloat:
		return tdf.Float(d.F)
	case cdw.KString:
		return tdf.String(d.S)
	case cdw.KBytes:
		return tdf.BytesValue(d.B)
	default:
		return tdf.Null()
	}
}

// tdfToDatum unwraps a TDF value back into a CDW datum of column type t.
func tdfToDatum(v tdf.Value, t cdw.ColType) (cdw.Datum, error) {
	if v.Tag == tdf.TagNull {
		return cdw.Null(), nil
	}
	switch t.Kind {
	case cdw.KBool:
		if v.Tag == tdf.TagBool {
			return cdw.BoolD(v.Bool), nil
		}
	case cdw.KInt, cdw.KDate, cdw.KTime, cdw.KTimestamp:
		if v.Tag == tdf.TagInt {
			return cdw.Datum{Kind: t.Kind, I: v.Int}, nil
		}
	case cdw.KDecimal:
		if v.Tag == tdf.TagStruct && len(v.Fields) == 2 {
			return cdw.DecimalD(v.Fields[0].Value.Int, int(v.Fields[1].Value.Int)), nil
		}
	case cdw.KFloat:
		if v.Tag == tdf.TagFloat {
			return cdw.FloatD(v.Float), nil
		}
	case cdw.KString:
		if v.Tag == tdf.TagString {
			return cdw.StringD(v.Str), nil
		}
	case cdw.KBytes:
		if v.Tag == tdf.TagBytes {
			return cdw.BytesD(v.Bytes), nil
		}
	}
	return cdw.Datum{}, fmt.Errorf("core: TDF tag %d does not match column type %s", v.Tag, t)
}

// encodeRowsLegacy encodes CDW rows into a legacy record payload in the
// requested format.
func encodeRowsLegacy(rows [][]cdw.Datum, layout *ltype.Layout, format uint8, delim byte) ([]byte, error) {
	var out []byte
	for _, row := range rows {
		if len(row) != len(layout.Fields) {
			return nil, fmt.Errorf("core: row has %d values, layout %d fields", len(row), len(layout.Fields))
		}
		rec := make(ltype.Record, len(row))
		for i, d := range row {
			v, err := datumToLegacy(d, layout.Fields[i].Type)
			if err != nil {
				return nil, err
			}
			rec[i] = v
		}
		if format == 1 { // wire.FormatVartext
			fields := make([]string, len(rec))
			for i, v := range rec {
				fields[i] = v.Text()
			}
			out = ltype.AppendVartext(out, fields, delim)
		} else {
			var err error
			out, err = ltype.EncodeRecord(out, layout, rec)
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
