package core

import (
	"fmt"
	"time"

	"etlvirt/internal/obs"
	"etlvirt/internal/tune"
)

// This file is the self-tuning pipelined staging lane: the copy scheduler
// that lands already-uploaded files in incremental manifest COPY batches
// while acquisition is still producing more (overlapping COPY latency with
// conversion, spooling and upload), and the adaptive tuner loop that retunes
// the lane's knobs — uploader parallelism, spool rotation threshold, gzip
// level, files-per-COPY — from live per-stage observations.

// staticGzipLevel maps the node config to the knob/tuner gzip convention:
// 0 means uncompressed, 1..9 an explicit level. A configured Gzip with no
// usable level lands on 6, the codec's default-compression work factor.
func staticGzipLevel(cfg Config) int {
	if !cfg.Gzip {
		return 0
	}
	if cfg.GzipLevel >= 1 && cfg.GzipLevel <= 9 {
		return cfg.GzipLevel
	}
	return 6
}

// takeBatch splits the next n names off pending without copying. The batch
// is capacity-capped so later appends to rest can never write into it —
// landed batches retain their manifest slices across COPY recovery replays.
//
//etlvirt:hotpath
func takeBatch(pending []string, n int) (batch, rest []string) {
	if n < 1 {
		n = 1
	}
	if n > len(pending) {
		n = len(pending)
	}
	return pending[:n:n], pending[n:]
}

// runCopyScheduler is the copy-scheduler stage: it accumulates uploaded
// object names and folds them into manifest COPY statements sized by the
// files-per-COPY knob, issued while the rest of the pipeline keeps running.
// When the channel closes (all uploads landed) it sweeps whatever remains as
// the final barrier COPY, so finishAcquisition only has to verify totals.
func (j *importJob) runCopyScheduler() {
	defer j.schedWG.Done()
	var pending []string
	dead := false // a COPY failed permanently; drain without issuing more
	issue := func(batch []string) {
		if err := j.issueCopyBatch(batch); err != nil {
			dead = true
			j.fail(fmt.Errorf("incremental COPY into staging failed: %w", err))
		}
	}
	for name := range j.copyableCh {
		pending = append(pending, name)
		for !dead {
			n := int(j.copyFilesN.Load())
			if len(pending) < n || n < 1 {
				break
			}
			var batch []string
			batch, pending = takeBatch(pending, n)
			issue(batch)
		}
	}
	for len(pending) > 0 && !dead {
		var batch []string
		batch, pending = takeBatch(pending, int(j.copyFilesN.Load()))
		issue(batch)
	}
}

// issueCopyBatch lands one manifest batch and keeps the live bookkeeping the
// tuner and debug view read.
func (j *importJob) issueCopyBatch(batch []string) error {
	if _, err := j.copyWithRecovery(batch); err != nil {
		return err
	}
	j.copyQueue.Add(int64(-len(batch)))
	j.batchesN.Add(1)
	nm := j.node.nm
	nm.copyBatches.Inc()
	nm.copyBatchFiles.Observe(float64(len(batch)))
	return nil
}

// resizeUploaders steers the live uploader pool toward n workers: missing
// workers are spawned, surplus ones are asked to retire via quit tokens.
// Token sends never block — a busy pool just shrinks on a later tick.
func (j *importJob) resizeUploaders(n int) {
	if n < 1 {
		n = 1
	}
	j.upMu.Lock()
	defer j.upMu.Unlock()
	if j.upClosed {
		return
	}
	for j.upLive < n {
		j.upLive++
		j.uploadWG.Add(1)
		idx := int(j.upSeq.Add(1))
		go j.runUploader(idx)
	}
	for extra := j.upLive - n; extra > 0; extra-- {
		select {
		case j.upQuit <- struct{}{}:
		default:
			return
		}
	}
}

// runTuner is the adaptive staging-lane control loop: each tick it samples
// the per-stage busy counters the pipeline goroutines maintain, feeds the
// deltas to the ImportTuner, and applies the returned geometry through the
// knob atomics and the uploader pool.
func (j *importJob) runTuner(interval time.Duration) {
	defer j.tunerWG.Done()
	tk := time.NewTicker(interval)
	defer tk.Stop()
	nm := j.node.nm
	var prevSpool, prevUpload, prevLatSum, prevLatN int64
	last := time.Now()
	for {
		select {
		case <-j.tunerStop:
			return
		case now := <-tk.C:
			elapsed := now.Sub(last)
			last = now
			spool := j.spoolBusyNs.Load()
			upload := j.upBusyNs.Load()
			latSum := j.fileLatNs.Load()
			latN := j.fileLatCount.Load()
			j.upMu.Lock()
			workers := j.upLive
			j.upMu.Unlock()
			o := tune.ImportObservation{
				Elapsed:         elapsed,
				Workers:         workers,
				SpoolBusy:       time.Duration(spool - prevSpool),
				UploadBusy:      time.Duration(upload - prevUpload),
				QueuedCopyFiles: int(j.copyQueue.Load()),
			}
			if dn := latN - prevLatN; dn > 0 {
				o.FileLatency = time.Duration((latSum - prevLatSum) / dn)
			}
			prevSpool, prevUpload, prevLatSum, prevLatN = spool, upload, latSum, latN

			d := j.tuner.Observe(o)
			j.spoolBytesN.Store(int64(d.SpoolBytes))
			j.gzipLevelN.Store(int64(d.GzipLevel))
			j.copyFilesN.Store(int64(d.CopyFiles))
			j.resizeUploaders(d.Workers)
			switch d.Action {
			case tune.ActionGrow:
				nm.tunerGrows.Inc()
			case tune.ActionShrink:
				nm.tunerShrinks.Inc()
			default:
				nm.tunerHolds.Inc()
			}
			snap := j.tuner.Snapshot()
			j.tuneMu.Lock()
			j.tuneSnap = snap
			j.tuneMu.Unlock()
			j.trace.Add(obs.Span{Stage: "tune", Worker: d.Action.String(),
				Start: now, Dur: time.Since(now),
				Rows: int64(d.Workers), Bytes: int64(d.SpoolBytes)})
			if d.Action != tune.ActionHold {
				j.node.events.Add(obs.Event{
					Type: "tune_decision", Job: j.id, TraceID: j.traceID(),
					Msg: d.Action.String(),
					Attrs: map[string]any{
						"workers": d.Workers, "spool_bytes": d.SpoolBytes,
						"gzip_level": d.GzipLevel, "copy_files": d.CopyFiles,
						"dominant": d.Dominant,
					},
				})
			}
		}
	}
}

// tuningStatus snapshots the tuner for /jobs/active; nil when the job runs
// with static knobs.
func (j *importJob) tuningStatus() *TuningStatus {
	if j.tuner == nil {
		return nil
	}
	j.tuneMu.Lock()
	s := j.tuneSnap
	j.tuneMu.Unlock()
	return &TuningStatus{
		Workers:        s.Workers,
		SpoolBytes:     s.SpoolBytes,
		GzipLevel:      s.GzipLevel,
		CopyFiles:      s.CopyFiles,
		UtilizationPct: s.Utilization * 100,
		FileLatencyMS:  s.FileLatency.Milliseconds(),
		QueueDepth:     s.QueueDepth,
		Dominant:       s.Dominant,
		Grows:          s.Stats.Grows,
		Shrinks:        s.Stats.Shrinks,
		Holds:          s.Stats.Holds,
	}
}
