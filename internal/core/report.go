package core

import (
	"sync"
	"time"
)

// JobReport captures the timings and counters of one virtualized job, broken
// into the phases the paper's evaluation reports (Figure 7): acquisition
// (receiving, converting, serializing and staging the data), application
// (running the transformed DML on the CDW), and other (startup/teardown).
type JobReport struct {
	JobID  uint64
	Target string
	Export bool

	// phase durations
	Acquisition time.Duration
	Application time.Duration
	Other       time.Duration

	// acquisition counters
	Chunks       int64
	BytesIn      int64
	RowsIn       int64 // records received from the client
	RowsStaged   int64 // records surviving conversion and COPY
	DataErrors   int64 // records rejected during acquisition
	FilesWritten int64
	BytesUpload  int64 // bytes handed to the bulk loader

	// application counters
	Inserted     int64
	Updated      int64
	Deleted      int64
	ErrorsET     int64
	ErrorsUV     int64
	BlockErrors  int64
	ApplyStmts   int64 // DML statements issued, incl. adaptive retries
	ExportedRows int64
}

// Total returns the end-to-end job duration.
func (r *JobReport) Total() time.Duration {
	return r.Acquisition + r.Application + r.Other
}

// reportLog keeps finished job reports for inspection by tests and the
// benchmark harness.
type reportLog struct {
	mu      sync.Mutex
	reports []JobReport
}

func (l *reportLog) add(r JobReport) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reports = append(l.reports, r)
}

// all returns a copy of the accumulated reports.
func (l *reportLog) all() []JobReport {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]JobReport, len(l.reports))
	copy(out, l.reports)
	return out
}

// stopwatch measures named spans of a job's lifetime.
type stopwatch struct {
	start   time.Time // job creation
	acqFrom time.Time // first data chunk
	acqTo   time.Time // acquisition done
	appFrom time.Time
	appTo   time.Time
}

func (s *stopwatch) fill(r *JobReport, end time.Time) {
	if !s.acqFrom.IsZero() && !s.acqTo.IsZero() {
		r.Acquisition = s.acqTo.Sub(s.acqFrom)
	}
	if !s.appFrom.IsZero() && !s.appTo.IsZero() {
		r.Application = s.appTo.Sub(s.appFrom)
	}
	total := end.Sub(s.start)
	other := total - r.Acquisition - r.Application
	if other < 0 {
		other = 0
	}
	r.Other = other
}
