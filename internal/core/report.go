package core

import (
	"sync"
	"time"
)

// JobReport captures the timings and counters of one virtualized job, broken
// into the phases the paper's evaluation reports (Figure 7): acquisition
// (receiving, converting, serializing and staging the data), application
// (running the transformed DML on the CDW), and other (startup/teardown).
type JobReport struct {
	JobID  uint64
	Target string
	Export bool

	// phase durations
	Acquisition time.Duration
	Application time.Duration
	Other       time.Duration

	// acquisition counters
	Chunks       int64
	BytesIn      int64
	RowsIn       int64 // records received from the client
	RowsStaged   int64 // records surviving conversion and COPY
	DataErrors   int64 // records rejected during acquisition
	FilesWritten int64
	BytesUpload  int64 // bytes handed to the bulk loader
	CopyBatches  int64 // incremental COPY manifests issued by the scheduler

	// application counters
	Inserted      int64
	Updated       int64
	Deleted       int64
	ErrorsET      int64
	ErrorsUV      int64
	BlockErrors   int64
	ApplyStmts    int64 // DML statements issued, incl. adaptive retries
	Splits        int64 // failing ranges split by the adaptive handler
	MaxSplitDepth int   // deepest adaptive-split level reached
	ExportedRows  int64
}

// Total returns the end-to-end job duration.
func (r *JobReport) Total() time.Duration {
	return r.Acquisition + r.Application + r.Other
}

// reportLog keeps finished job reports for inspection by tests and the
// benchmark harness. It is a bounded ring: once cap reports accumulate the
// oldest are evicted, and the eviction count is surfaced as the
// etlvirt_reports_dropped gauge so operators notice the truncation.
type reportLog struct {
	mu      sync.Mutex
	cap     int
	reports []JobReport
	start   int // index of the oldest report when the ring is full
	dropped int64
}

// setCap bounds the log. It must be called before the log carries reports;
// n <= 0 leaves the log unbounded.
func (l *reportLog) setCap(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cap = n
}

// record stores a finished job's report and feeds the OnJobDone observer
// hook, the collection point both import and export completion paths share.
func (n *Node) record(r JobReport) {
	n.reports.add(r)
	if n.cfg.OnJobDone != nil {
		n.cfg.OnJobDone(r)
	}
}

func (l *reportLog) add(r JobReport) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cap > 0 && len(l.reports) >= l.cap {
		l.reports[l.start] = r
		l.start = (l.start + 1) % len(l.reports)
		l.dropped++
		return
	}
	l.reports = append(l.reports, r)
}

// all returns a copy of the retained reports in insertion order.
func (l *reportLog) all() []JobReport {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]JobReport, 0, len(l.reports))
	out = append(out, l.reports[l.start:]...)
	out = append(out, l.reports[:l.start]...)
	return out
}

// droppedCount reports how many finished jobs were evicted from the ring.
func (l *reportLog) droppedCount() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// stopwatch measures named spans of a job's lifetime.
type stopwatch struct {
	start   time.Time // job creation
	acqFrom time.Time // first data chunk
	acqTo   time.Time // acquisition done
	appFrom time.Time
	appTo   time.Time
}

func (s *stopwatch) fill(r *JobReport, end time.Time) {
	if !s.acqFrom.IsZero() && !s.acqTo.IsZero() {
		r.Acquisition = s.acqTo.Sub(s.acqFrom)
	}
	if !s.appFrom.IsZero() && !s.appTo.IsZero() {
		r.Application = s.appTo.Sub(s.appFrom)
	}
	total := end.Sub(s.start)
	other := total - r.Acquisition - r.Application
	if other < 0 {
		other = 0
	}
	r.Other = other
}
