package core_test

// Buffer-recycling correctness: the sync.Pool hand-off of payload and CSV
// buffers through the pipeline (session → converter → writer → pool) must
// never change the staged bytes. These tests run concurrent converters and
// writers over small chunks (maximum buffer churn), capture every object
// the pipeline uploads, and compare against golden CSV derived directly
// from the input — any use-after-recycle shows up as corrupted rows. CI
// pins them under -race, where sync.Pool also randomizes buffer reuse.

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cdwnet"
	"etlvirt/internal/cloudstore"
	"etlvirt/internal/core"
	"etlvirt/internal/etlclient"
	"etlvirt/internal/faultinject"
)

// recordingStore keeps a copy of every object successfully Put, surviving
// the job's post-COPY cleanup deletes.
type recordingStore struct {
	cloudstore.Store
	mu   sync.Mutex
	objs map[string][]byte
}

func (r *recordingStore) Put(key string, rd io.Reader) error {
	data, err := io.ReadAll(rd)
	if err != nil {
		return err
	}
	r.mu.Lock()
	if r.objs == nil {
		r.objs = make(map[string][]byte)
	}
	r.objs[key] = append([]byte(nil), data...)
	r.mu.Unlock()
	return r.Store.Put(key, bytes.NewReader(data))
}

// stagedLines returns every CSV line recorded under upload keys, sorted,
// transparently gunzipping compressed objects.
func (r *recordingStore) stagedLines(t *testing.T) []string {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for key, data := range r.objs {
		if strings.HasSuffix(key, ".gz") {
			zr, err := gzip.NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("gunzip %s: %v", key, err)
			}
			if data, err = io.ReadAll(zr); err != nil {
				t.Fatalf("gunzip %s: %v", key, err)
			}
		}
		for _, l := range strings.Split(string(data), "\n") {
			if l != "" {
				lines = append(lines, l)
			}
		}
	}
	sort.Strings(lines)
	return lines
}

// startRecordingStack is startStack with a recording store spliced between
// the node and the shared MemStore.
func startRecordingStack(t *testing.T, cfg core.Config) (*stack, *recordingStore) {
	t.Helper()
	store := cloudstore.NewMemStore()
	eng := cdw.NewEngine(store, cdw.Options{})
	srv := cdwnet.NewServer(eng)
	cdwAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	rec := &recordingStore{Store: store}
	cfg.CDWAddr = cdwAddr
	node := core.NewNode(cfg, rec)
	addr, err := node.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	return &stack{store: store, eng: eng, node: node, addr: addr}, rec
}

// recycleInput builds rows whose staged CSV golden is computable in place:
// row i stages as "i,i,Name i,<date>".
func recycleInput(rows int) (input string, golden []string) {
	var sb strings.Builder
	for i := 1; i <= rows; i++ {
		date := fmt.Sprintf("2021-%02d-%02d", 1+i%12, 1+i%28)
		fmt.Fprintf(&sb, "%d|Name %d|%s\n", i, i, date)
		golden = append(golden, fmt.Sprintf("%d,%d,Name %d,%s", i, i, i, date))
	}
	sort.Strings(golden)
	return sb.String(), golden
}

func checkStagedGolden(t *testing.T, rec *recordingStore, golden []string) {
	t.Helper()
	got := rec.stagedLines(t)
	if len(got) != len(golden) {
		t.Fatalf("staged %d CSV lines, want %d", len(got), len(golden))
	}
	for i := range golden {
		if got[i] != golden[i] {
			t.Fatalf("staged CSV diverged at sorted line %d: %q, want %q", i, got[i], golden[i])
		}
	}
}

// TestBufferRecyclingGoldenOutput runs three concurrent sessions through
// small chunks, small files, and parallel converters/writers, and requires
// the staged bytes to be exactly the golden CSV.
func TestBufferRecyclingGoldenOutput(t *testing.T) {
	input, golden := recycleInput(2000)
	for _, gz := range []bool{false, true} {
		name := "plain"
		if gz {
			name = "gzip"
		}
		t.Run(name, func(t *testing.T) {
			st, rec := startRecordingStack(t, core.Config{
				Converters: 4, FileWriters: 3, UploadParallelism: 2,
				FileSizeThreshold: 4 << 10, Gzip: gz,
			})
			mustEng(t, st.eng, customerDDL)
			res := runScript(t, st.addr, example21Script(" sessions 3"),
				map[string]string{"input.txt": input},
				etlclient.Options{ChunkRecords: 16})
			if ir := res.Imports[0]; ir.RowsStaged != 2000 || ir.DataErrors != 0 {
				t.Fatalf("acquisition: %+v", ir)
			}
			checkStagedGolden(t, rec, golden)
		})
	}
}

// TestRecycledBuffersSurviveFaultRetries re-runs the golden comparison with
// object-store faults injected at seed 42: uploads fail and retry whole
// files, and the retried bytes must still match the golden — proving
// recycled buffers are never handed back to the pool while a retry path
// can still read them.
func TestRecycledBuffersSurviveFaultRetries(t *testing.T) {
	input, golden := recycleInput(1500)
	inj := faultinject.New(42)
	inj.SetRule(faultinject.OpStorePut,
		faultinject.Rule{Rate: 0.25, Every: 3, Class: faultinject.ClassTimeout})
	st, rec := startRecordingStack(t, core.Config{
		Converters: 4, FileWriters: 2, UploadParallelism: 1,
		FileSizeThreshold: 4 << 10,
		FaultInjector:     inj,
		RetryMaxAttempts:  8,
		RetryBaseDelay:    time.Millisecond,
		RetryMaxDelay:     5 * time.Millisecond,
	})
	mustEng(t, st.eng, customerDDL)
	res := runScript(t, st.addr, example21Script(" sessions 2"),
		map[string]string{"input.txt": input},
		etlclient.Options{ChunkRecords: 16})
	if ir := res.Imports[0]; ir.RowsStaged != 1500 || ir.DataErrors != 0 {
		t.Fatalf("acquisition: %+v", ir)
	}
	if inj.Injected() == 0 {
		t.Fatal("no faults fired; the schedule is dead")
	}
	checkStagedGolden(t, rec, golden)
}
