package core

import (
	"testing"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cdwnet"
	"etlvirt/internal/ltype"
	"etlvirt/internal/tdf"
	"etlvirt/internal/wire"
)

func TestColTypeToLegacy(t *testing.T) {
	cases := []struct {
		in   cdw.ColType
		want ltype.Kind
	}{
		{cdw.ColType{Kind: cdw.KBool}, ltype.KindByteInt},
		{cdw.ColType{Kind: cdw.KInt}, ltype.KindBigInt},
		{cdw.ColType{Kind: cdw.KFloat}, ltype.KindFloat},
		{cdw.ColType{Kind: cdw.KDecimal, Precision: 10, Scale: 2}, ltype.KindDecimal},
		{cdw.ColType{Kind: cdw.KString, Length: 5}, ltype.KindVarChar},
		{cdw.ColType{Kind: cdw.KDate}, ltype.KindDate},
		{cdw.ColType{Kind: cdw.KTime}, ltype.KindTime},
		{cdw.ColType{Kind: cdw.KTimestamp}, ltype.KindTimestamp},
		{cdw.ColType{Kind: cdw.KBytes, Length: 4}, ltype.KindVarByte},
	}
	for _, c := range cases {
		got := colTypeToLegacy(c.in)
		if got.Kind != c.want {
			t.Errorf("colTypeToLegacy(%v) = %v, want %v", c.in, got.Kind, c.want)
		}
	}
	// unbounded string gets a generous default length
	lt := colTypeToLegacy(cdw.ColType{Kind: cdw.KString})
	if lt.Length <= 0 {
		t.Errorf("unbounded string maps to length %d", lt.Length)
	}
	// national strings keep the unicode charset
	lt = colTypeToLegacy(cdw.ColType{Kind: cdw.KString, Length: 9, National: true})
	if lt.CharSet != ltype.CharSetUnicode {
		t.Errorf("national flag lost: %+v", lt)
	}
}

func TestDatumToLegacyConversions(t *testing.T) {
	// the export-direction format conversion: CDW epoch-days -> legacy int date
	d, err := datumToLegacy(cdw.DateD(2012, 1, 1), ltype.Simple(ltype.KindDate))
	if err != nil {
		t.Fatal(err)
	}
	if d.I != ltype.EncodeLegacyDate(2012, 1, 1) {
		t.Errorf("date encoding: %d", d.I)
	}
	d, err = datumToLegacy(cdw.DecimalD(12345, 2), ltype.Decimal(10, 2))
	if err != nil || d.S != "123.45" {
		t.Errorf("decimal: %+v %v", d, err)
	}
	d, err = datumToLegacy(cdw.BoolD(true), ltype.Simple(ltype.KindByteInt))
	if err != nil || d.I != 1 {
		t.Errorf("bool: %+v %v", d, err)
	}
	d, err = datumToLegacy(cdw.Null(), ltype.VarChar(5))
	if err != nil || !d.Null {
		t.Errorf("null: %+v %v", d, err)
	}
	d, err = datumToLegacy(cdw.TimestampD(0), ltype.Simple(ltype.KindTimestamp))
	if err != nil || d.S != "1970-01-01 00:00:00" {
		t.Errorf("timestamp: %+v %v", d, err)
	}
	// kind mismatch is an error, not silent coercion
	if _, err := datumToLegacy(cdw.StringD("x"), ltype.Simple(ltype.KindDate)); err == nil {
		t.Error("string->date conversion accepted")
	}
}

func TestTDFDatumRoundTrip(t *testing.T) {
	cases := []struct {
		d cdw.Datum
		t cdw.ColType
	}{
		{cdw.Null(), cdw.ColType{Kind: cdw.KInt}},
		{cdw.BoolD(true), cdw.ColType{Kind: cdw.KBool}},
		{cdw.IntD(-42), cdw.ColType{Kind: cdw.KInt}},
		{cdw.FloatD(3.25), cdw.ColType{Kind: cdw.KFloat}},
		{cdw.DecimalD(999, 3), cdw.ColType{Kind: cdw.KDecimal, Precision: 10, Scale: 3}},
		{cdw.StringD("héllo"), cdw.ColType{Kind: cdw.KString}},
		{cdw.BytesD([]byte{1, 2, 3}), cdw.ColType{Kind: cdw.KBytes}},
		{cdw.DateD(2023, 6, 30), cdw.ColType{Kind: cdw.KDate}},
		{cdw.TimeD(7200), cdw.ColType{Kind: cdw.KTime}},
		{cdw.TimestampD(1234567890), cdw.ColType{Kind: cdw.KTimestamp}},
	}
	for _, c := range cases {
		v := datumToTDF(c.d)
		back, err := tdfToDatum(v, c.t)
		if err != nil {
			t.Errorf("tdfToDatum(%+v): %v", c.d, err)
			continue
		}
		if back.Kind != c.d.Kind || back.I != c.d.I || back.F != c.d.F ||
			back.S != c.d.S || string(back.B) != string(c.d.B) || back.Bool != c.d.Bool ||
			back.Scale != c.d.Scale {
			t.Errorf("round trip %+v -> %+v", c.d, back)
		}
	}
	// mismatched tag vs column type is rejected
	if _, err := tdfToDatum(tdf.String("x"), cdw.ColType{Kind: cdw.KInt}); err == nil {
		t.Error("tag/type mismatch accepted")
	}
}

func TestEncodeRowsLegacyVartextAndIndicator(t *testing.T) {
	cols := []cdwnet.ResultCol{
		{Name: "id", Type: cdw.ColType{Kind: cdw.KInt}},
		{Name: "name", Type: cdw.ColType{Kind: cdw.KString, Length: 20}},
	}
	layout := layoutFromCols("r", cols)
	rows := [][]cdw.Datum{
		{cdw.IntD(1), cdw.StringD("alpha")},
		{cdw.IntD(2), cdw.Null()},
	}
	// vartext
	out, err := encodeRowsLegacy(rows, layout, uint8(wire.FormatVartext), '|')
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "1|alpha\n2|\n" {
		t.Errorf("vartext: %q", out)
	}
	// indicator: must decode back
	out, err = encodeRowsLegacy(rows, layout, uint8(wire.FormatIndicator), 0)
	if err != nil {
		t.Fatal(err)
	}
	rec, n, err := ltype.DecodeRecord(out, layout)
	if err != nil {
		t.Fatal(err)
	}
	if rec[0].I != 1 || rec[1].S != "alpha" {
		t.Errorf("record 0: %+v", rec)
	}
	rec, _, err = ltype.DecodeRecord(out[n:], layout)
	if err != nil {
		t.Fatal(err)
	}
	if rec[0].I != 2 || !rec[1].Null {
		t.Errorf("record 1: %+v", rec)
	}
	// arity mismatch
	if _, err := encodeRowsLegacy([][]cdw.Datum{{cdw.IntD(1)}}, layout, 0, 0); err == nil {
		t.Error("arity mismatch accepted")
	}
}
