// Package core implements the virtualizer node — the system of §3. It
// listens for legacy-protocol connections (Alpha), reassembles messages
// (wire.Coalescer inside wire.Conn), cross-compiles protocol and SQL (PXC,
// via internal/sqlxlate), converts and stages data through the acquisition
// pipeline (DataConverter -> FileWriter -> bulk loader -> COPY), executes
// rewritten statements on the CDW (Beta, via internal/cdwnet), streams
// export results through a TDFCursor, and emulates legacy error-handling
// semantics with adaptive splitting (internal/errhandle).
package core

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cdwnet"
	"etlvirt/internal/cloudstore"
	"etlvirt/internal/convert"
	"etlvirt/internal/credit"
	"etlvirt/internal/faultinject"
	"etlvirt/internal/obs"
	"etlvirt/internal/retrier"
	"etlvirt/internal/sqlparse"
	"etlvirt/internal/sqlxlate"
	"etlvirt/internal/wire"
)

// Config tunes a virtualizer node. Zero values select sensible defaults.
type Config struct {
	// CDWAddr is the address of the cdwnet server.
	CDWAddr string
	// CDWPoolSize caps concurrent CDW connections.
	CDWPoolSize int

	// Credits sizes the node-wide CreditManager pool (§5). Zero defaults to
	// 4 x Converters.
	Credits int
	// MemBudget caps in-flight chunk bytes; exceeding it fails the job, the
	// paper's OOM failure mode. Zero disables the cap.
	MemBudget int64

	// Converters is the number of parallel DataConverter workers per job.
	// Zero defaults to GOMAXPROCS.
	Converters int
	// FileWriters is the number of parallel FileWriter goroutines per job.
	// Zero defaults to 2.
	FileWriters int
	// FileSizeThreshold rotates intermediate files (bytes). Zero defaults to
	// 4 MiB.
	FileSizeThreshold int
	// Gzip compresses intermediate files before upload.
	Gzip bool
	// GzipLevel selects the gzip compression level (1..9) when Gzip is set;
	// values outside that range select the codec default. When
	// AdaptiveStaging is on this is the tuner's starting rung.
	GzipLevel int
	// SpoolDir, when set, writes intermediate files to disk instead of
	// memory.
	SpoolDir string

	// CopyBatchFiles is how many uploaded files the copy scheduler folds into
	// one incremental manifest COPY. Zero defaults to 4. When AdaptiveStaging
	// is on this only seeds the tuner's files-per-COPY knob.
	CopyBatchFiles int
	// SerializedCopy is the ablation of the pipelined staging lane: when set,
	// no COPY is issued until acquisition fully drains, and the staged data
	// lands in one monolithic prefix COPY — the pre-scheduler behavior the
	// overlap benchmark compares against.
	SerializedCopy bool
	// AdaptiveStaging closes the control loop over the staging lane: a
	// per-job tuner picks uploader parallelism, the spool rotation threshold,
	// the gzip level, and the files-per-COPY manifest size from live
	// per-stage observations. Off by default so deterministic tests keep a
	// fixed upload order.
	AdaptiveStaging bool
	// TunerInterval is the adaptive tuner's observation tick. Zero defaults
	// to 200ms.
	TunerInterval time.Duration

	// StagingSchema is the CDW schema for per-job staging tables.
	StagingSchema string
	// UploadPrefix namespaces object-store keys.
	UploadPrefix string
	// UploadParallelism bounds concurrent uploads per job.
	UploadParallelism int

	// ExportChunkRows sizes export chunks (and the TDFCursor fetch size).
	ExportChunkRows int
	// ExportPrefetch bounds TDF packets buffered ahead of client requests.
	ExportPrefetch int

	// SchemaMap renames legacy databases to CDW schemas.
	SchemaMap map[string]string
	// ConvertOpts tunes the DataConverter.
	ConvertOpts convert.Options

	// MaxErrors/MaxRetries are the defaults for jobs that do not set their
	// own (§7).
	MaxErrors  int
	MaxRetries int

	// StreamLatencyTarget is the end-to-end micro-batch commit latency the
	// streaming controller steers toward for streams that do not set their
	// own. Zero defaults to 2s (inside stream.Config).
	StreamLatencyTarget time.Duration
	// StreamMinBatch/StreamMaxBatch clamp the adaptive records-per-micro-batch
	// hint. Zeros select the stream.Config defaults (16 and 8192).
	StreamMinBatch int
	StreamMaxBatch int

	// ReportLogSize bounds the in-memory log of completed job reports; the
	// oldest reports are evicted beyond it and counted in the
	// etlvirt_reports_dropped gauge. Zero defaults to 1024.
	ReportLogSize int
	// TraceRetention bounds how many finished job traces stay retrievable
	// via /jobs/{id}/trace. Zero defaults to 64.
	TraceRetention int
	// TraceSpansPerJob caps the spans recorded per job timeline; spans past
	// the cap are dropped and counted. Zero defaults to 8192.
	TraceSpansPerJob int
	// EventLogSize bounds the in-memory ring of structured events drained at
	// /events; once full the oldest entry is overwritten and counted as
	// dropped. Zero defaults to 1024.
	EventLogSize int
	// EventSink, when non-nil, receives every recorded event as one JSON
	// line in addition to the ring (typically an event-log file).
	EventSink io.Writer

	// RetryMaxAttempts caps attempts (including the first) for each retried
	// operation: CDW round trips, uploads, COPY recovery, export opens.
	// Zero selects retrier.DefaultMaxAttempts.
	RetryMaxAttempts int
	// RetryBaseDelay is the backoff before the first retry; RetryMaxDelay
	// caps the exponential growth. Zeros select the retrier defaults.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// RetryBudget bounds total retries across the whole node; zero or
	// negative means unlimited.
	RetryBudget int64

	// PutTimeout bounds each object-store put; CDWTimeout bounds each CDW
	// round trip. Zero disables the bound.
	PutTimeout time.Duration
	CDWTimeout time.Duration

	// FaultInjector, when non-nil, wraps the object store in a
	// faultinject.FaultyStore and arms the CDW client fault hook — the
	// chaos-testing surface. Nil injects nothing.
	FaultInjector *faultinject.Injector

	// OnJobDone, when non-nil, observes every finished job report (imports
	// and exports) as it is recorded — the hook the differential scrub and
	// workload harnesses use to collect per-job outcomes without polling.
	// It runs on the job's goroutine and must not block.
	OnJobDone func(JobReport)

	// SyncAcquisition is the ablation of §5's design discussion: when set,
	// a chunk is only acknowledged after it has been converted and written,
	// synchronizing the pipeline instead of relying on the CreditManager.
	// The paper rejects this design because it stalls the client; the
	// ablation benchmark quantifies by how much.
	SyncAcquisition bool

	// Logger receives node diagnostics; nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.CDWPoolSize <= 0 {
		c.CDWPoolSize = 8
	}
	if c.Converters <= 0 {
		c.Converters = runtime.GOMAXPROCS(0)
	}
	if c.FileWriters <= 0 {
		c.FileWriters = 2
	}
	if c.Credits <= 0 {
		c.Credits = 4 * c.Converters
	}
	if c.FileSizeThreshold <= 0 {
		c.FileSizeThreshold = 4 << 20
	}
	if c.CopyBatchFiles <= 0 {
		c.CopyBatchFiles = 4
	}
	if c.TunerInterval <= 0 {
		c.TunerInterval = 200 * time.Millisecond
	}
	if c.StagingSchema == "" {
		c.StagingSchema = "etl_stage"
	}
	if c.UploadPrefix == "" {
		c.UploadPrefix = "jobs/"
	}
	if c.UploadParallelism <= 0 {
		c.UploadParallelism = 4
	}
	if c.ExportChunkRows <= 0 {
		c.ExportChunkRows = 4096
	}
	if c.ExportPrefetch <= 0 {
		c.ExportPrefetch = 8
	}
	if c.ReportLogSize <= 0 {
		c.ReportLogSize = 1024
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(discard{}, nil))
	}
	return c
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Node is one virtualizer instance.
type Node struct {
	cfg     Config
	credits *credit.Manager
	pool    *cdwnet.Pool
	store   cloudstore.Store
	loader  *cloudstore.BulkLoader
	log     *slog.Logger

	ln     net.Listener
	connWG sync.WaitGroup

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	imports  map[uint64]*importJob
	exports  map[uint64]*exportJob
	streams  map[uint64]*streamJob
	debugSrv *http.Server
	closed   bool

	nextJob     atomic.Uint64
	nextSession atomic.Uint32

	reports reportLog
	nm      *nodeMetrics
	tracer  *obs.Tracer
	events  *obs.EventLog

	retry  *retrier.Retrier
	budget *retrier.Budget
	inj    *faultinject.Injector // nil when fault injection is off

	// ctx is canceled on Close, stopping retry backoff waits and further
	// recovery attempts so teardown is not delayed by in-flight retries.
	ctx       context.Context
	ctxCancel context.CancelFunc
}

// NewNode builds a node. store is the cloud object store shared with the
// CDW (uploads land there; COPY reads from there).
func NewNode(cfg Config, store cloudstore.Store) *Node {
	cfg = cfg.withDefaults()
	if cfg.FaultInjector != nil {
		// The virtualizer's own store traffic goes through the injector; the
		// CDW engine keeps its direct handle (its faults are injected on its
		// side via the daemon flag).
		store = faultinject.NewStore(cfg.FaultInjector, store)
	}
	n := &Node{
		cfg:     cfg,
		credits: credit.NewManager(cfg.Credits, cfg.MemBudget),
		pool:    cdwnet.NewPool(cfg.CDWAddr, cfg.CDWPoolSize),
		store:   store,
		loader: cloudstore.NewBulkLoader(store, cloudstore.LoaderConfig{
			Parallelism: cfg.UploadParallelism,
			PutTimeout:  cfg.PutTimeout,
		}),
		log:     cfg.Logger,
		conns:   make(map[net.Conn]struct{}),
		imports: make(map[uint64]*importJob),
		exports: make(map[uint64]*exportJob),
		streams: make(map[uint64]*streamJob),
		tracer:  obs.NewTracer(cfg.TraceRetention, cfg.TraceSpansPerJob),
		events:  obs.NewEventLog(cfg.EventLogSize),
		inj:     cfg.FaultInjector,
	}
	n.tracer.SetProc("etlvirtd")
	if cfg.EventSink != nil {
		n.events.SetSink(cfg.EventSink)
	}
	// Per-batch controller decisions dominate the event rate on busy streams;
	// sample them so rare lifecycle and fault events are not washed out.
	n.events.SetSample("ctrl_decision", 4)
	n.ctx, n.ctxCancel = context.WithCancel(context.Background())
	n.budget = retrier.NewBudget(cfg.RetryBudget)
	n.retry = &retrier.Retrier{
		Policy: retrier.Policy{
			MaxAttempts: cfg.RetryMaxAttempts,
			BaseDelay:   cfg.RetryBaseDelay,
			MaxDelay:    cfg.RetryMaxDelay,
		}.WithDefaults(),
		Budget: n.budget,
	}
	n.pool.SetRetrier(n.retry)
	n.pool.SetContext(n.ctx)
	if cfg.CDWTimeout > 0 {
		n.pool.SetTimeout(cfg.CDWTimeout)
	}
	if n.inj != nil {
		inj := n.inj
		n.pool.SetFaultHook(func(op string) error { return inj.Fault("cdw." + op) })
		inj.SetOnInject(func(op string, ferr *faultinject.Error) {
			n.events.Add(obs.Event{Type: "fault", Msg: op, Attrs: map[string]any{
				"class": string(ferr.Class),
			}})
		})
	}
	// Every traced CDW round trip becomes two spans on the owning job's
	// timeline: the virtualizer-side round trip parented under the caller's
	// span, and a cdwd-side engine span nested inside it, so the stitched
	// timeline splits wire time from engine time across processes.
	n.pool.SetTraceHook(func(op string, tc obs.TraceContext, start time.Time, d time.Duration, engineNS int64, err error) {
		jobs := n.tracer.JobsByTrace(tc.TraceID)
		if len(jobs) == 0 {
			return
		}
		// Several jobs can share one client trace; bucket the span under the
		// job whose root span the caller parented it to, falling back to the
		// first participant.
		jt := jobs[0]
		for _, cand := range jobs {
			if cand.ChildContext().SpanID == tc.SpanID {
				jt = cand
				break
			}
		}
		rt := obs.Span{ID: obs.NewSpanID(), Parent: tc.SpanID, Stage: "cdw_" + op, Worker: "cdw", Start: start, Dur: d}
		if err != nil {
			rt.Err = err.Error()
		}
		jt.Add(rt)
		if engineNS > 0 && engineNS <= d.Nanoseconds() {
			// Engine time sits somewhere inside the round trip; center it so
			// the nested span renders inside its parent without claiming
			// per-direction wire asymmetry we cannot measure.
			jt.Add(obs.Span{
				ID: obs.NewSpanID(), Parent: rt.ID, Proc: "cdwd",
				Stage: "engine", Worker: "engine",
				Start: start.Add((d - time.Duration(engineNS)) / 2),
				Dur:   time.Duration(engineNS),
			})
		}
	})
	n.reports.setCap(cfg.ReportLogSize)
	n.nm = newNodeMetrics(n)
	return n
}

// Credits exposes the node's CreditManager statistics.
func (n *Node) Credits() credit.Stats { return n.credits.Stats() }

// Reports returns the reports of all completed jobs.
func (n *Node) Reports() []JobReport { return n.reports.all() }

// Metrics exposes the node's live metrics registry — the same series
// /metrics serves — so embedders and the benchmark harness can snapshot
// per-stage telemetry programmatically.
func (n *Node) Metrics() *obs.Registry { return n.nm.reg }

// Tracer exposes the node's per-job span tracer.
func (n *Node) Tracer() *obs.Tracer { return n.tracer }

// Events exposes the node's structured event log — the same ring /events
// drains.
func (n *Node) Events() *obs.EventLog { return n.events }

// Listen binds addr and starts the Alpha accept loop, returning the bound
// address.
func (n *Node) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	n.ln = ln
	go n.acceptLoop()
	return ln.Addr().String(), nil
}

// Close shuts the node down: listener, live connections, CDW pool. Retry
// backoff waits in flight are canceled so teardown is not delayed.
func (n *Node) Close() error {
	n.ctxCancel()
	n.mu.Lock()
	n.closed = true
	for c := range n.conns {
		c.Close()
	}
	dbg := n.debugSrv
	n.mu.Unlock()
	if dbg != nil {
		dbg.Close()
	}
	var err error
	if n.ln != nil {
		err = n.ln.Close()
	}
	n.connWG.Wait()
	n.pool.Close()
	return err
}

func (n *Node) acceptLoop() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = struct{}{}
		n.mu.Unlock()
		n.connWG.Add(1)
		// Bounded by the connection, not a context: Close() closes every
		// live conn, which unblocks serveConn's reads and ends the goroutine.
		go func() { //nolint:goroleak // conn-bounded; Close() closes all conns
			defer n.connWG.Done()
			n.serveConn(conn)
			n.mu.Lock()
			delete(n.conns, conn)
			n.mu.Unlock()
		}()
	}
}

// translator builds the node's non-job SQL translator.
func (n *Node) translator() *sqlxlate.Translator {
	return &sqlxlate.Translator{SchemaMap: n.cfg.SchemaMap}
}

// parseQualifiedName splits "SCHEMA.NAME" into a TableName.
func parseQualifiedName(s string) sqlparse.TableName {
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return sqlparse.TableName{Schema: s[:i], Name: s[i+1:]}
	}
	return sqlparse.TableName{Name: s}
}

// handleRunSQL is the Beta path for ad-hoc statements: translate, execute,
// re-encode results in the legacy format.
func (n *Node) handleRunSQL(c *wire.Conn, session uint32, m *wire.RunSQL) error {
	cdwSQL, err := n.translator().Translate(m.SQL)
	if err != nil {
		return c.Send(session, &wire.Failure{Code: 3706, Message: fmt.Sprintf("cross-compilation failed: %v", err)})
	}
	stmt, err := sqlparse.Parse(cdwSQL, sqlparse.DialectCDW)
	if err != nil {
		return c.Send(session, &wire.Failure{Code: 3706, Message: err.Error()})
	}
	if _, isSelect := stmt.(*sqlparse.SelectStmt); !isSelect {
		activity, err := n.pool.Exec(cdwSQL)
		if err != nil {
			return sendEngineFailure(c, session, err)
		}
		return c.Send(session, &wire.StmtSuccess{ActivityCount: uint64(activity)})
	}
	cols, rows, err := n.pool.QueryAll(cdwSQL)
	if err != nil {
		return sendEngineFailure(c, session, err)
	}
	layout := layoutFromCols("result", cols)
	if err := c.Send(session, &wire.RecordHeader{Layout: layout}); err != nil {
		return err
	}
	const batch = 1024
	for start := 0; start < len(rows); start += batch {
		end := start + batch
		if end > len(rows) {
			end = len(rows)
		}
		payload, err := encodeRowsLegacy(rows[start:end], layout, uint8(wire.FormatIndicator), 0)
		if err != nil {
			return c.Send(session, &wire.Failure{Code: 1000, Message: err.Error()})
		}
		if err := c.Send(session, &wire.Records{Count: uint32(end - start), Payload: payload}); err != nil {
			return err
		}
	}
	return c.Send(session, &wire.EndStatement{})
}

func sendEngineFailure(c *wire.Conn, session uint32, err error) error {
	code := uint32(1000)
	if ce, ok := err.(*cdw.Error); ok {
		code = uint32(ce.Code)
	}
	return c.Send(session, &wire.Failure{Code: code, Message: err.Error()})
}
