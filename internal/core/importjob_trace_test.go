package core_test

import (
	"strings"
	"testing"
	"time"

	"etlvirt/internal/core"
	"etlvirt/internal/etlclient"
	"etlvirt/internal/faultinject"
)

// TestImportSetupFailureSettlesTrace pins the newImportJob error paths found
// by the spanbalance analyzer: when preparing the job tables fails, the
// already-opened job trace must be finished, not leaked in the tracer's live
// set. A leaked live trace here made the SLO report under-count failed
// setups for the life of the node.
func TestImportSetupFailureSettlesTrace(t *testing.T) {
	inj := faultinject.New(1)
	// The import's first CDW statement is the staging-table DDL; failing it
	// fatally (not retryable) drives newImportJob down its ExecT error
	// return.
	inj.SetRule("cdw.query", faultinject.Rule{Nth: []int64{1}, Class: faultinject.ClassFatal})
	st := startStack(t, core.Config{
		FaultInjector:  inj,
		RetryBaseDelay: time.Millisecond,
	})
	mustEng(t, st.eng, customerDDL)

	script := parseScript(t, example21Script(""))
	opts := etlclient.Options{
		Addr:         st.addr,
		ReadFile:     func(string) ([]byte, error) { return []byte(figure5Data), nil },
		ChunkRecords: 2,
	}
	if _, err := etlclient.Run(script, opts); err == nil {
		t.Fatal("import succeeded despite a fatal DDL fault; the fault schedule is dead")
	}

	tr := st.node.Tracer()
	if got := tr.Started(); got != 1 {
		t.Fatalf("traces started = %d, want 1 (the failed import's)", got)
	}
	if live := tr.Live(); len(live) != 0 {
		var labels []string
		for _, jt := range live {
			labels = append(labels, jt.Label)
		}
		t.Errorf("failed import leaked %d live trace(s): %s", len(live), strings.Join(labels, ", "))
	}
}
