package errhandle

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// fakeTarget simulates a set-oriented engine over rows 1..n with a set of
// bad rows: applying a range fails if it contains any bad row, succeeds
// otherwise, and counts applied rows.
type fakeTarget struct {
	bad      map[int64]bool
	applied  map[int64]bool
	attempts int
}

func newFakeTarget(badRows ...int64) *fakeTarget {
	t := &fakeTarget{bad: map[int64]bool{}, applied: map[int64]bool{}}
	for _, r := range badRows {
		t.bad[r] = true
	}
	return t
}

func (f *fakeTarget) apply(_ context.Context, lo, hi int64) (int64, error) {
	f.attempts++
	for r := lo; r <= hi; r++ {
		if f.bad[r] {
			return 0, fmt.Errorf("bad tuple somewhere in chunk") // no row info!
		}
	}
	for r := lo; r <= hi; r++ {
		f.applied[r] = true
	}
	return hi - lo + 1, nil
}

func passThrough(err error) Classified {
	return Classified{Code: 2666, Field: "F", Msg: err.Error()}
}

type recorded struct {
	lo, hi int64
	c      Classified
}

func collect(recs *[]recorded) RecordFunc {
	return func(lo, hi int64, c Classified) error {
		*recs = append(*recs, recorded{lo, hi, c})
		return nil
	}
}

func TestIsolatesExactBadRows(t *testing.T) {
	ft := newFakeTarget(2, 3, 17)
	var recs []recorded
	h := New(Config{}, ft.apply, passThrough, collect(&recs))
	if err := h.Run(context.Background(), 1, 20); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("recorded %d errors: %+v", len(recs), recs)
	}
	got := map[int64]bool{}
	for _, r := range recs {
		if r.lo != r.hi {
			t.Errorf("block entry unexpected: %+v", r)
		}
		got[r.lo] = true
	}
	for _, want := range []int64{2, 3, 17} {
		if !got[want] {
			t.Errorf("row %d not recorded", want)
		}
	}
	// every good row applied exactly once
	for r := int64(1); r <= 20; r++ {
		if ft.bad[r] {
			if ft.applied[r] {
				t.Errorf("bad row %d applied", r)
			}
		} else if !ft.applied[r] {
			t.Errorf("good row %d not applied", r)
		}
	}
	st := h.Stats()
	if st.Activity != 17 || st.IndividualErrors != 3 || st.BlockErrors != 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestNoErrorsSingleStatement(t *testing.T) {
	ft := newFakeTarget()
	var recs []recorded
	h := New(Config{}, ft.apply, passThrough, collect(&recs))
	if err := h.Run(context.Background(), 1, 1000); err != nil {
		t.Fatal(err)
	}
	if ft.attempts != 1 {
		t.Errorf("attempts = %d, want 1 (bulk path)", ft.attempts)
	}
	if h.Stats().Activity != 1000 || len(recs) != 0 {
		t.Errorf("stats: %+v recs: %v", h.Stats(), recs)
	}
}

func TestMaxErrorsProducesBlockEntry(t *testing.T) {
	// Figure 6: rows 2,3 recorded individually; with max_errors=2 the chunk
	// (4,5) is recorded as a block and not split further.
	ft := newFakeTarget(2, 3, 4)
	var recs []recorded
	h := New(Config{MaxErrors: 2}, ft.apply, passThrough, collect(&recs))
	if err := h.Run(context.Background(), 1, 5); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.IndividualErrors != 2 {
		t.Errorf("individual errors = %d", st.IndividualErrors)
	}
	if st.BlockErrors < 1 {
		t.Fatalf("no block entry: %+v", recs)
	}
	var blocks []recorded
	for _, r := range recs {
		if r.c.Code == CodeMaxErrors {
			blocks = append(blocks, r)
		}
	}
	if len(blocks) == 0 {
		t.Fatal("no CodeMaxErrors entry")
	}
	// rows covered by blocks must include row 4 (the third bad row)
	covered := false
	for _, b := range blocks {
		if b.lo <= 4 && 4 <= b.hi {
			covered = true
		}
	}
	if !covered {
		t.Errorf("row 4 not covered by block entries: %+v", blocks)
	}
}

func TestMaxRetriesStopsSplitting(t *testing.T) {
	ft := newFakeTarget(500)
	var recs []recorded
	h := New(Config{MaxRetries: 2}, ft.apply, passThrough, collect(&recs))
	if err := h.Run(context.Background(), 1, 1024); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.IndividualErrors != 0 {
		t.Errorf("individual errors = %d, want 0 (depth-capped)", st.IndividualErrors)
	}
	if st.BlockErrors != 1 {
		t.Errorf("block errors = %d", st.BlockErrors)
	}
	if st.BlockedRows != 256 {
		t.Errorf("blocked rows = %d, want 256 (quarter range)", st.BlockedRows)
	}
	// attempts bounded by depth cap: 1 root + 2 + 4 at depth 2 max
	if ft.attempts > 7 {
		t.Errorf("attempts = %d, want <= 7", ft.attempts)
	}
}

func TestUniqueErrorsRouted(t *testing.T) {
	ft := newFakeTarget(3)
	classify := func(err error) Classified {
		return Classified{Code: 2794, Unique: true, Msg: err.Error()}
	}
	var recs []recorded
	h := New(Config{}, ft.apply, classify, collect(&recs))
	if err := h.Run(context.Background(), 1, 4); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !recs[0].c.Unique || recs[0].lo != 3 {
		t.Errorf("recs: %+v", recs)
	}
}

func TestFatalAborts(t *testing.T) {
	boom := errors.New("connection lost")
	apply := func(_ context.Context, lo, hi int64) (int64, error) { return 0, boom }
	classify := func(err error) Classified { return Classified{Fatal: true, Msg: err.Error()} }
	h := New(Config{}, apply, classify, func(lo, hi int64, c Classified) error { return nil })
	if err := h.Run(context.Background(), 1, 10); err == nil {
		t.Fatal("fatal error absorbed")
	}
}

func TestRecordFailurePropagates(t *testing.T) {
	ft := newFakeTarget(1)
	h := New(Config{}, ft.apply, passThrough, func(lo, hi int64, c Classified) error {
		return errors.New("error table write failed")
	})
	if err := h.Run(context.Background(), 1, 4); err == nil {
		t.Fatal("record failure absorbed")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ft := newFakeTarget(1)
	h := New(Config{}, ft.apply, passThrough, collect(&[]recorded{}))
	if err := h.Run(ctx, 1, 10); err == nil {
		t.Fatal("cancelled context ignored")
	}
}

func TestEmptyAndInvertedRange(t *testing.T) {
	ft := newFakeTarget()
	h := New(Config{}, ft.apply, passThrough, collect(&[]recorded{}))
	if err := h.Run(context.Background(), 5, 4); err != nil {
		t.Fatal(err)
	}
	if ft.attempts != 0 {
		t.Errorf("attempts on empty range: %d", ft.attempts)
	}
}

func TestAllRowsBad(t *testing.T) {
	var bad []int64
	for i := int64(1); i <= 16; i++ {
		bad = append(bad, i)
	}
	ft := newFakeTarget(bad...)
	var recs []recorded
	h := New(Config{}, ft.apply, passThrough, collect(&recs))
	if err := h.Run(context.Background(), 1, 16); err != nil {
		t.Fatal(err)
	}
	if h.Stats().IndividualErrors != 16 || h.Stats().Activity != 0 {
		t.Errorf("stats: %+v", h.Stats())
	}
}

func TestPropertyExactIsolation(t *testing.T) {
	f := func(seed int64, nRaw, badRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int64(nRaw%100) + 1
		nBad := int(badRaw) % 10
		ft := newFakeTarget()
		for i := 0; i < nBad; i++ {
			ft.bad[r.Int63n(n)+1] = true
		}
		var recs []recorded
		h := New(Config{}, ft.apply, passThrough, collect(&recs))
		if err := h.Run(context.Background(), 1, n); err != nil {
			return false
		}
		// each bad row recorded exactly once, no good row recorded
		seen := map[int64]int{}
		for _, rec := range recs {
			if rec.lo != rec.hi {
				return false
			}
			seen[rec.lo]++
		}
		for row := int64(1); row <= n; row++ {
			if ft.bad[row] {
				if seen[row] != 1 || ft.applied[row] {
					return false
				}
			} else {
				if seen[row] != 0 || !ft.applied[row] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAttemptsLogarithmic(t *testing.T) {
	// One bad row in n rows needs O(log n) attempts.
	for _, n := range []int64{64, 1024, 65536} {
		ft := newFakeTarget(n / 2)
		h := New(Config{}, ft.apply, passThrough, collect(&[]recorded{}))
		if err := h.Run(context.Background(), 1, n); err != nil {
			t.Fatal(err)
		}
		limit := 0
		for x := n; x > 0; x >>= 1 {
			limit += 2
		}
		if ft.attempts > limit+2 {
			t.Errorf("n=%d: %d attempts exceeds ~2*log2(n)=%d", n, ft.attempts, limit)
		}
	}
}

func TestObserveReceivesEveryAttempt(t *testing.T) {
	ft := newFakeTarget(3)
	var recs []recorded
	type attempt struct {
		depth  int
		lo, hi int64
		failed bool
	}
	var attempts []attempt
	h := New(Config{
		Observe: func(depth int, lo, hi int64, _ time.Duration, err error) {
			attempts = append(attempts, attempt{depth, lo, hi, err != nil})
		},
	}, ft.apply, passThrough, collect(&recs))
	if err := h.Run(context.Background(), 1, 4); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if int64(len(attempts)) != st.Attempts {
		t.Fatalf("observer saw %d attempts, stats counted %d", len(attempts), st.Attempts)
	}
	if attempts[0].depth != 0 || attempts[0].lo != 1 || attempts[0].hi != 4 || !attempts[0].failed {
		t.Errorf("first attempt = %+v, want failing root range 1..4 at depth 0", attempts[0])
	}
	maxDepth := 0
	for _, a := range attempts {
		if a.depth > maxDepth {
			maxDepth = a.depth
		}
		if a.lo == 3 && a.hi == 3 && !a.failed {
			t.Error("isolated bad row 3 observed as success")
		}
	}
	if maxDepth != st.MaxDepth {
		t.Errorf("observer max depth = %d, stats say %d", maxDepth, st.MaxDepth)
	}
}
