// Package errhandle implements the adaptive error handling of §7.
//
// The CDW applies DML set-oriented: a failing statement aborts as a whole
// and does not say which row was at fault. Legacy ETL semantics demand the
// opposite — load everything loadable, record each bad tuple in an error
// table. The adaptive mechanism bridges the two by recursively re-applying
// the DML on smaller __seq ranges: a failing range is split in half until
// either a single tuple is isolated (recorded individually) or a budget is
// exhausted (the remaining range is recorded as a block, Figure 6).
//
// Two user knobs bound the work, exactly as in the paper: MaxErrors caps the
// number of individually-recorded errors before the retry logic stops
// isolating, and MaxRetries caps how many times any one input chunk is
// split.
package errhandle

import (
	"context"
	"fmt"
	"time"
)

// Classified is the verdict of the error classifier on a failed range
// application.
type Classified struct {
	Code   int
	Field  string
	Msg    string
	Unique bool // record in the uniqueness-violation table instead of ET
	Fatal  bool // infrastructure failure: abort the job instead of retrying
}

// Config bounds the adaptive retry logic.
type Config struct {
	// MaxErrors is the maximum number of individual errors to record before
	// the retry logic stops splitting. Zero means DefaultMaxErrors.
	MaxErrors int
	// MaxRetries is the maximum number of times one input chunk is split
	// before the remaining range is recorded as a block. Zero means
	// DefaultMaxRetries.
	MaxRetries int
	// Observe, when non-nil, receives every DML statement attempt: the
	// split depth the range sits at, the rows it covers, the statement
	// latency, and the error (nil on success). The virtualizer wires this
	// into its DML-latency histogram and the per-job span timeline.
	Observe func(depth int, lo, hi int64, d time.Duration, err error)
}

// Default budgets applied when Config fields are zero.
const (
	DefaultMaxErrors  = 1000
	DefaultMaxRetries = 64
)

// ApplyFunc applies the job's DML to staged rows lo..hi (inclusive) and
// returns the statement's activity count.
type ApplyFunc func(ctx context.Context, lo, hi int64) (int64, error)

// ClassifyFunc decides what a failure means.
type ClassifyFunc func(err error) Classified

// RecordFunc persists one error-table entry covering rows lo..hi. For an
// individual error lo == hi; for a block error lo < hi and c.Code is
// CodeMaxErrors-style.
type RecordFunc func(lo, hi int64, c Classified) error

// Stats reports what one adaptive application did.
type Stats struct {
	Activity         int64 // rows affected by successful applications
	Attempts         int64 // DML statements executed (cost driver of Figure 11)
	IndividualErrors int64 // tuples recorded one-by-one
	BlockErrors      int64 // range entries recorded after budget exhaustion
	BlockedRows      int64 // rows covered by block entries
	Splits           int64 // failing ranges that were split in half
	MaxDepth         int   // deepest split level reached
}

// Handler drives adaptive application for one job. Not safe for concurrent
// use; the application phase is sequential per job.
type Handler struct {
	cfg      Config
	apply    ApplyFunc
	classify ClassifyFunc
	record   RecordFunc

	stats       Stats
	errBudget   int
	budgetSpent bool
}

// New builds a handler.
func New(cfg Config, apply ApplyFunc, classify ClassifyFunc, record RecordFunc) *Handler {
	if cfg.MaxErrors <= 0 {
		cfg.MaxErrors = DefaultMaxErrors
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	return &Handler{cfg: cfg, apply: apply, classify: classify, record: record}
}

// Stats returns the accumulated statistics.
func (h *Handler) Stats() Stats { return h.stats }

// Run applies the DML to rows lo..hi inclusive with adaptive error handling.
// It returns a non-nil error only for fatal failures (classifier verdict or
// error-table write failure); data errors are recorded and absorbed.
func (h *Handler) Run(ctx context.Context, lo, hi int64) error {
	if lo > hi {
		return nil
	}
	return h.run(ctx, lo, hi, 0)
}

func (h *Handler) run(ctx context.Context, lo, hi int64, depth int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	h.stats.Attempts++
	if depth > h.stats.MaxDepth {
		h.stats.MaxDepth = depth
	}
	start := time.Now()
	n, err := h.apply(ctx, lo, hi)
	if h.cfg.Observe != nil {
		h.cfg.Observe(depth, lo, hi, time.Since(start), err)
	}
	if err == nil {
		h.stats.Activity += n
		return nil
	}
	c := h.classify(err)
	if c.Fatal {
		return fmt.Errorf("errhandle: fatal failure applying rows %d-%d: %w", lo, hi, err)
	}

	// Single tuple isolated: record it individually.
	if lo == hi {
		if h.stats.IndividualErrors >= int64(h.cfg.MaxErrors) {
			return h.recordBlock(lo, hi, c)
		}
		h.stats.IndividualErrors++
		return h.record(lo, hi, c)
	}

	// Budgets exhausted: record the remaining range as a block.
	if h.stats.IndividualErrors >= int64(h.cfg.MaxErrors) || depth >= h.cfg.MaxRetries {
		return h.recordBlock(lo, hi, c)
	}

	h.stats.Splits++
	mid := lo + (hi-lo)/2
	if err := h.run(ctx, lo, mid, depth+1); err != nil {
		return err
	}
	return h.run(ctx, mid+1, hi, depth+1)
}

func (h *Handler) recordBlock(lo, hi int64, c Classified) error {
	h.stats.BlockErrors++
	h.stats.BlockedRows += hi - lo + 1
	block := c
	block.Code = CodeMaxErrors
	block.Unique = false
	if lo == hi {
		block.Msg = fmt.Sprintf("max number of errors reached, row %d not loaded: %s", lo, c.Msg)
	} else {
		block.Msg = fmt.Sprintf("max number of errors reached, rows (%d, %d) include one or more errors and will not be further split", lo, hi)
	}
	return h.record(lo, hi, block)
}

// CodeMaxErrors marks block entries, mirroring the 9057 code of Figure 6.
const CodeMaxErrors = 9057
