// Package testhost is the shared integration-test harness: the in-process
// EDW + virtualizer + CDW pair the differential tests (chaos, scrub) run
// legacy scripts against, plus the small process/socket helpers the
// multi-binary end-to-end test uses. It exists so every differential test
// builds the same topology the same way — reference EDW on one side,
// fault-injectable virtualized stack on the other — instead of each test
// re-wiring it by hand.
package testhost

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"sort"
	"strings"
	"testing"
	"time"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cdwnet"
	"etlvirt/internal/cloudstore"
	"etlvirt/internal/core"
	"etlvirt/internal/edw"
	"etlvirt/internal/etlclient"
	"etlvirt/internal/etlscript"
	"etlvirt/internal/faultinject"
	"etlvirt/internal/scrub"
)

// Options configures a StartPair topology.
type Options struct {
	// Seed enables the standard chaos rules (store-put timeouts, CDW query
	// resets) on the virtualized side with this fault seed. Zero runs
	// fault-free.
	Seed int64
	// DDL statements (CDW dialect) executed on both engines before any run.
	DDL []string
	// Node optionally adjusts the virtualizer config after the harness
	// defaults are applied.
	Node func(*core.Config)
}

// Pair is one differential topology: a reference EDW and a virtualizer in
// front of a CDW, both empty-or-identically-seeded, reachable over the same
// legacy wire protocol.
type Pair struct {
	EDW      *edw.Server
	EDWAddr  string
	CDWEng   *cdw.Engine
	Store    *cloudstore.MemStore
	Node     *core.Node
	NodeAddr string
	// Injector is non-nil when Options.Seed enabled fault injection.
	Injector *faultinject.Injector
}

// ChaosRules installs the standard differential-chaos fault rules used across
// the test suite: timeouts on object-store puts, connection resets on CDW
// queries.
func ChaosRules(inj *faultinject.Injector) {
	inj.SetRule(faultinject.OpStorePut,
		faultinject.Rule{Rate: 0.15, Every: 5, Class: faultinject.ClassTimeout})
	inj.SetRule("cdw.query",
		faultinject.Rule{Rate: 0.02, Every: 30, Class: faultinject.ClassReset})
}

// StartPair builds the differential topology and tears it down with the test.
func StartPair(t testing.TB, opts Options) *Pair {
	t.Helper()
	p := &Pair{}

	p.EDW = edw.NewServer()
	addr, err := p.EDW.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("testhost: edw listen: %v", err)
	}
	p.EDWAddr = addr
	t.Cleanup(func() { p.EDW.Close() })

	p.Store = cloudstore.NewMemStore()
	p.CDWEng = cdw.NewEngine(p.Store, cdw.Options{})
	cdwSrv := cdwnet.NewServer(p.CDWEng)
	cdwAddr, err := cdwSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("testhost: cdw listen: %v", err)
	}
	t.Cleanup(func() { cdwSrv.Close() })

	cfg := core.Config{
		CDWAddr:           cdwAddr,
		UploadParallelism: 1, // deterministic store.put order for a fault seed
		FileSizeThreshold: 2 << 10,
		RetryMaxAttempts:  8,
		RetryBaseDelay:    time.Millisecond,
		RetryMaxDelay:     5 * time.Millisecond,
	}
	if opts.Seed != 0 {
		p.Injector = faultinject.New(opts.Seed)
		ChaosRules(p.Injector)
		cfg.FaultInjector = p.Injector
	}
	if opts.Node != nil {
		opts.Node(&cfg)
	}
	p.Node = core.NewNode(cfg, p.Store)
	nodeAddr, err := p.Node.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("testhost: node listen: %v", err)
	}
	p.NodeAddr = nodeAddr
	t.Cleanup(func() { p.Node.Close() })

	for _, ddl := range opts.DDL {
		if _, err := p.EDW.Engine().ExecSQL(ddl); err != nil {
			t.Fatalf("testhost: edw ddl: %v\n%s", err, ddl)
		}
		if _, err := p.CDWEng.ExecSQL(ddl); err != nil {
			t.Fatalf("testhost: cdw ddl: %v\n%s", err, ddl)
		}
	}
	return p
}

// Run parses and executes one legacy script against addr (either side of the
// pair), reading input files from files and collecting export output into
// the returned map.
func (p *Pair) Run(t testing.TB, addr, script string, files map[string][]byte) (*etlclient.Result, map[string][]byte) {
	t.Helper()
	s, err := etlscript.Parse(script)
	if err != nil {
		t.Fatalf("testhost: parsing script: %v", err)
	}
	exports := map[string][]byte{}
	res, err := etlclient.Run(s, etlclient.Options{
		Addr:         addr,
		ChunkRecords: 16,
		ReadFile: func(name string) ([]byte, error) {
			data, ok := files[name]
			if !ok {
				return nil, fmt.Errorf("testhost: script references unknown input %q", name)
			}
			return data, nil
		},
		WriteFile: func(name string, data []byte) error {
			exports[name] = append([]byte(nil), data...)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("testhost: script run against %s failed: %v", addr, err)
	}
	return res, exports
}

// Scrub runs the differential scrub over the pair's two engines, EDW as
// reference and CDW as subject.
func (p *Pair) Scrub(t testing.TB, opts scrub.Options) *scrub.Report {
	t.Helper()
	ref := &scrub.EngineSource{Name: "edw", Engine: p.EDW.Engine()}
	sub := &scrub.EngineSource{Name: "virt", Engine: p.CDWEng}
	rep, err := scrub.Run(ref, sub, opts)
	if err != nil {
		t.Fatalf("testhost: scrub: %v", err)
	}
	return rep
}

// State dumps a query's result as sorted, pipe-joined rows — the byte-level
// comparison format of the differential chaos tests.
func State(t testing.TB, eng *cdw.Engine, sql string) []string {
	t.Helper()
	res, err := eng.ExecSQL(sql)
	if err != nil {
		t.Fatalf("testhost: %s: %v", sql, err)
	}
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, d := range row {
			parts[i] = d.Render()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

// FaultSeed reads ETLVIRT_FAULT_SEED (the CI chaos matrix variable), falling
// back to def.
func FaultSeed(t testing.TB, def int64) int64 {
	t.Helper()
	s := os.Getenv("ETLVIRT_FAULT_SEED")
	if s == "" {
		return def
	}
	var v int64
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		t.Fatalf("ETLVIRT_FAULT_SEED=%q: %v", s, err)
	}
	return v
}

// --- multi-process helpers (binary end-to-end tests) ---

// StartProc launches a built binary with output folded into the test log.
func StartProc(t testing.TB, path string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(path, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", path, err)
	}
	return cmd
}

// FreeAddr reserves and releases a listening address for a process to bind.
func FreeAddr(t testing.TB) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// WaitListening blocks until addr accepts connections or the deadline hits.
func WaitListening(t testing.TB, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server on %s never came up", addr)
}
