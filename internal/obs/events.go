package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one structured entry in the node's causal record: a job or stream
// lifecycle step, a retry, an injected fault, or a controller decision.
// TraceID ties the event to the distributed trace it happened under.
type Event struct {
	Seq     uint64         `json:"seq"`
	Time    time.Time      `json:"time"`
	Type    string         `json:"type"`
	TraceID string         `json:"trace_id,omitempty"` // 16 hex digits
	Job     uint64         `json:"job,omitempty"`
	Msg     string         `json:"msg,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// EventLog is a bounded ring of recent events. Writers never block and never
// allocate beyond the ring: once full, the oldest entry is overwritten and
// counted as dropped. Per-type sampling keeps high-rate types (per-batch
// controller decisions) from washing out rare ones (faults, aborts). An
// optional sink receives every recorded event as one JSON line.
type EventLog struct {
	mu      sync.Mutex
	buf     []Event
	next    uint64 // seq of the next event to be recorded
	every   map[string]int
	typeSeq map[string]uint64

	recorded int64
	dropped  int64 // overwritten before being drained past
	sampled  int64 // skipped by per-type sampling

	sink    io.Writer
	sinkErr error // first sink failure; sink is disabled after it
}

// NewEventLog returns a ring holding up to capacity events (non-positive
// selects 1024).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 1024
	}
	return &EventLog{
		buf:     make([]Event, 0, capacity),
		every:   make(map[string]int),
		typeSeq: make(map[string]uint64),
	}
}

// SetSample records only every n-th event of the given type; n <= 1 restores
// record-everything.
func (l *EventLog) SetSample(typ string, n int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 1 {
		delete(l.every, typ)
		return
	}
	l.every[typ] = n
}

// SetSink mirrors every recorded event to w as one JSON line. The write
// happens under the log's lock, so w need not be safe for concurrent use;
// the first write error disables the sink.
func (l *EventLog) SetSink(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink = w
	l.sinkErr = nil
	l.mu.Unlock()
}

// Add records one event, stamping its sequence number and (when unset) its
// time. Safe on a nil log (events disabled) and from any goroutine.
func (l *EventLog) Add(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := l.every[e.Type]; n > 1 {
		l.typeSeq[e.Type]++
		if (l.typeSeq[e.Type]-1)%uint64(n) != 0 {
			l.sampled++
			return
		}
	}
	e.Seq = l.next
	l.next++
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[e.Seq%uint64(cap(l.buf))] = e
		l.dropped++
	}
	l.recorded++
	if l.sink != nil && l.sinkErr == nil {
		line, err := json.Marshal(e)
		if err == nil {
			line = append(line, '\n')
			_, err = l.sink.Write(line)
		}
		if err != nil {
			l.sinkErr = fmt.Errorf("event sink: %w", err)
		}
	}
}

// Events returns the retained events with Seq >= since, oldest first.
func (l *EventLog) Events(since uint64) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	lo := uint64(0)
	if n := uint64(len(l.buf)); l.next > n {
		lo = l.next - n
	}
	if since > lo {
		lo = since
	}
	for seq := lo; seq < l.next; seq++ {
		out = append(out, l.buf[seq%uint64(cap(l.buf))])
	}
	return out
}

// WriteJSONL drains the retained events with Seq >= since to w, one JSON
// object per line.
func (l *EventLog) WriteJSONL(w io.Writer, since uint64) error {
	for _, e := range l.Events(since) {
		line, err := json.Marshal(e)
		if err != nil {
			return err
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}

// Recorded counts events accepted into the ring since startup.
func (l *EventLog) Recorded() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recorded
}

// Dropped counts ring entries overwritten by newer events.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Sampled counts events skipped by per-type sampling.
func (l *EventLog) Sampled() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sampled
}

// SinkErr reports the first sink write failure, if any.
func (l *EventLog) SinkErr() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinkErr
}
