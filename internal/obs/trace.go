package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed stage of a job: receipt of a chunk, one conversion, one
// file rotation, one upload, one DML statement, one export batch. ID, Parent
// and Proc place the span in a cross-process timeline: leave them zero and
// Add fills in a fresh ID, the trace's root span as parent, and the tracer's
// process name.
type Span struct {
	ID     uint64        `json:"id,omitempty"`
	Parent uint64        `json:"parent,omitempty"`
	Proc   string        `json:"proc,omitempty"` // originating process, e.g. "etlclient"
	Stage  string        `json:"stage"`
	Worker string        `json:"worker,omitempty"` // goroutine lane, e.g. "convert-2"
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	Rows   int64         `json:"rows,omitempty"`
	Bytes  int64         `json:"bytes,omitempty"`
	Depth  int           `json:"depth,omitempty"` // adaptive-split depth for DML spans
	Err    string        `json:"err,omitempty"`
}

// JobTrace accumulates the ordered span timeline of one job. Spans may be
// added concurrently from every pipeline goroutine; the timeline is
// retrievable at any moment, including while the job is still running. The
// span count is capped so error storms cannot grow memory without bound;
// spans past the cap are counted in Dropped.
type JobTrace struct {
	JobID uint64
	Label string
	Begin time.Time

	ctx  TraceContext // identity in the distributed timeline; zero TraceID = standalone
	root uint64       // span ID of the synthesized per-job root span; 0 = none
	proc string       // default Proc stamped on spans added here

	mu       sync.Mutex
	spans    []Span
	cap      int
	dropped  int64
	finished bool
	end      time.Time
}

// NewJobTrace builds a standalone trace outside any Tracer — the client side
// of a distributed trace records its local spans into one and ships them to
// the server. Spans default to proc as their process name.
func NewJobTrace(label string, spanCap int, proc string, tc TraceContext) *JobTrace {
	if spanCap <= 0 {
		spanCap = 8192
	}
	return &JobTrace{Label: label, Begin: time.Now(), cap: spanCap, proc: proc, ctx: tc}
}

// Context returns the trace identity assigned at Start.
func (t *JobTrace) Context() TraceContext {
	if t == nil {
		return TraceContext{}
	}
	return t.ctx
}

// ChildContext is the context to propagate on outbound calls made on behalf
// of this job: same trace, parented under the job's root span.
func (t *JobTrace) ChildContext() TraceContext {
	if t == nil {
		return TraceContext{}
	}
	tc := t.ctx
	if t.root != 0 {
		tc.SpanID = t.root
	}
	return tc
}

// Add appends one span. Safe on a nil trace (tracing disabled). A zero ID,
// Parent or Proc is filled in from the trace's identity so call sites only
// name what deviates from the default.
func (t *JobTrace) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.cap {
		t.dropped++
		return
	}
	if s.ID == 0 {
		s.ID = NewSpanID()
	}
	if s.Parent == 0 {
		s.Parent = t.root
	}
	if s.Proc == "" {
		s.Proc = t.proc
	}
	t.spans = append(t.spans, s)
}

// AddRemote appends a span recorded by another process, preserving its
// parent link verbatim. Unlike Add, a zero Parent stays zero: the remote
// process's root span is the origin of the distributed trace, not a child
// of this job's local root, and re-parenting it would make the stitched
// timeline cyclic.
func (t *JobTrace) AddRemote(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.cap {
		t.dropped++
		return
	}
	if s.ID == 0 {
		s.ID = NewSpanID()
	}
	t.spans = append(t.spans, s)
}

// Span records a completed stage that started at start and just ended.
func (t *JobTrace) Span(stage, worker string, start time.Time, rows, bytes int64, err error) {
	if t == nil {
		return
	}
	s := Span{Stage: stage, Worker: worker, Start: start, Dur: time.Since(start), Rows: rows, Bytes: bytes}
	if err != nil {
		s.Err = err.Error()
	}
	t.Add(s)
}

// TraceSnapshot is a copy of a trace timeline, spans ordered by start time.
type TraceSnapshot struct {
	JobID    uint64    `json:"job_id"`
	TraceID  string    `json:"trace_id,omitempty"` // 16 hex digits
	Sampled  bool      `json:"sampled,omitempty"`
	Label    string    `json:"label"`
	Begin    time.Time `json:"begin"`
	End      time.Time `json:"end,omitempty"`
	Finished bool      `json:"finished"`
	Dropped  int64     `json:"dropped_spans"`
	Spans    []Span    `json:"spans"`
}

// Snapshot copies the timeline. Safe while the job is running. Traces opened
// with StartCtx gain a synthesized root span covering the job's whole
// lifetime, parented under the propagated client span so cross-process
// timelines stitch into one tree.
func (t *JobTrace) Snapshot() TraceSnapshot {
	t.mu.Lock()
	spans := make([]Span, 0, len(t.spans)+1)
	if t.root != 0 {
		end := t.end
		if !t.finished {
			end = time.Now()
		}
		spans = append(spans, Span{
			ID: t.root, Parent: t.ctx.SpanID, Proc: t.proc,
			Stage: "job", Worker: "job", Start: t.Begin, Dur: end.Sub(t.Begin),
		})
	}
	spans = append(spans, t.spans...)
	snap := TraceSnapshot{
		JobID:    t.JobID,
		Label:    t.Label,
		Begin:    t.Begin,
		End:      t.end,
		Finished: t.finished,
		Dropped:  t.dropped,
		Spans:    spans,
	}
	if t.ctx.Valid() {
		snap.TraceID = FormatTraceID(t.ctx.TraceID)
		snap.Sampled = t.ctx.Sampled
	}
	t.mu.Unlock()
	sort.SliceStable(snap.Spans, func(i, j int) bool {
		return snap.Spans[i].Start.Before(snap.Spans[j].Start)
	})
	return snap
}

// JSON renders the snapshot as indented JSON.
func (s TraceSnapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// chromeEvent is one Chrome trace_event object. Durations and timestamps
// are microseconds, as the format requires.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  uint64         `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace renders the snapshot in Chrome trace_event JSON object format,
// loadable by chrome://tracing and Perfetto. Each originating process
// (etlclient, etlvirtd, cdwd, ...) becomes a trace process numbered in
// first-seen order, and each worker lane within it becomes a thread, so a
// stitched multi-process timeline lays out as one aligned view.
func (s TraceSnapshot) ChromeTrace() ([]byte, error) {
	pids := map[string]uint64{}
	tids := map[string]int{}
	var events []chromeEvent
	procID := func(proc string) uint64 {
		if proc == "" {
			proc = s.Label
		}
		id, ok := pids[proc]
		if !ok {
			id = uint64(len(pids) + 1)
			pids[proc] = id
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", PID: id,
				Args: map[string]any{"name": proc + " · " + s.Label},
			})
		}
		return id
	}
	laneID := func(proc, worker string) int {
		if worker == "" {
			worker = "job"
		}
		key := proc + "/" + worker
		id, ok := tids[key]
		if !ok {
			id = len(tids)
			tids[key] = id
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", PID: procID(proc), TID: id,
				Args: map[string]any{"name": worker},
			})
		}
		return id
	}
	for _, sp := range s.Spans {
		args := map[string]any{}
		if sp.ID != 0 {
			args["span"] = sp.ID
		}
		if sp.Parent != 0 {
			args["parent"] = sp.Parent
		}
		if sp.Rows != 0 {
			args["rows"] = sp.Rows
		}
		if sp.Bytes != 0 {
			args["bytes"] = sp.Bytes
		}
		if sp.Depth != 0 {
			args["depth"] = sp.Depth
		}
		if sp.Err != "" {
			args["err"] = sp.Err
		}
		events = append(events, chromeEvent{
			Name: sp.Stage,
			Cat:  "stage",
			Ph:   "X",
			TS:   float64(sp.Start.Sub(s.Begin).Nanoseconds()) / 1e3,
			Dur:  float64(sp.Dur.Nanoseconds()) / 1e3,
			PID:  procID(sp.Proc),
			TID:  laneID(sp.Proc, sp.Worker),
			Args: args,
		})
	}
	return json.Marshal(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ms"})
}

// Tracer owns the traces of a node's jobs: live jobs are tracked in a map,
// finished traces are retained in a bounded FIFO so recent jobs stay
// inspectable without unbounded growth. A secondary index maps distributed
// trace IDs to the jobs participating in them.
type Tracer struct {
	mu      sync.Mutex
	spanCap int
	retain  int
	proc    string
	live    map[uint64]*JobTrace
	done    map[uint64]*JobTrace
	order   []uint64            // finished-trace eviction order
	byTrace map[uint64][]uint64 // trace ID -> job IDs, in Start order

	started atomic.Int64
	evicted atomic.Int64
}

// NewTracer returns a tracer retaining up to retain finished traces, each
// capped at spanCap spans. Non-positive arguments select defaults (64
// traces, 8192 spans).
func NewTracer(retain, spanCap int) *Tracer {
	if retain <= 0 {
		retain = 64
	}
	if spanCap <= 0 {
		spanCap = 8192
	}
	return &Tracer{
		spanCap: spanCap,
		retain:  retain,
		live:    make(map[uint64]*JobTrace),
		done:    make(map[uint64]*JobTrace),
		byTrace: make(map[uint64][]uint64),
	}
}

// SetProc names the process spans recorded through this tracer default to
// (e.g. "etlvirtd") in multi-process timelines.
func (tr *Tracer) SetProc(proc string) { tr.proc = proc }

// Start opens the trace for a new job, minting a fresh local trace identity.
func (tr *Tracer) Start(id uint64, label string) *JobTrace {
	return tr.start(id, label, TraceContext{}, false)
}

// StartCtx opens the trace for a job continuing the propagated context tc —
// or minting a fresh sampled identity when tc is zero — and gives the trace
// a root span so the job's stage spans parent under one node in the
// cross-process tree.
func (tr *Tracer) StartCtx(id uint64, label string, tc TraceContext) *JobTrace {
	return tr.start(id, label, tc, true)
}

func (tr *Tracer) start(id uint64, label string, tc TraceContext, root bool) *JobTrace {
	if !tc.Valid() {
		tc = TraceContext{TraceID: NewTraceID(), Sampled: true}
	}
	t := &JobTrace{JobID: id, Label: label, Begin: time.Now(), cap: tr.spanCap, ctx: tc, proc: tr.proc}
	if root {
		t.root = NewSpanID()
	}
	tr.started.Add(1)
	tr.mu.Lock()
	tr.live[id] = t
	tr.byTrace[tc.TraceID] = append(tr.byTrace[tc.TraceID], id)
	tr.mu.Unlock()
	return t
}

// Finish marks a job's trace complete and moves it to the retained set,
// evicting the oldest finished trace beyond the retention bound.
func (tr *Tracer) Finish(id uint64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t, ok := tr.live[id]
	if !ok {
		return
	}
	delete(tr.live, id)
	t.mu.Lock()
	t.finished = true
	t.end = time.Now()
	t.mu.Unlock()
	tr.done[id] = t
	tr.order = append(tr.order, id)
	for len(tr.order) > tr.retain {
		tr.dropLocked(tr.order[0])
		tr.order = tr.order[1:]
		tr.evicted.Add(1)
	}
}

// dropLocked removes a finished trace and its trace-ID index entry.
func (tr *Tracer) dropLocked(id uint64) {
	t, ok := tr.done[id]
	if !ok {
		return
	}
	delete(tr.done, id)
	key := t.ctx.TraceID
	jobs := tr.byTrace[key]
	for i, j := range jobs {
		if j == id {
			jobs = append(jobs[:i], jobs[i+1:]...)
			break
		}
	}
	if len(jobs) == 0 {
		delete(tr.byTrace, key)
	} else {
		tr.byTrace[key] = jobs
	}
}

// Get looks a trace up among live then finished jobs.
func (tr *Tracer) Get(id uint64) (*JobTrace, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if t, ok := tr.live[id]; ok {
		return t, true
	}
	t, ok := tr.done[id]
	return t, ok
}

// Live returns the traces of jobs still running, ordered by job ID.
func (tr *Tracer) Live() []*JobTrace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]*JobTrace, 0, len(tr.live))
	for _, t := range tr.live {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

// JobsByTrace returns every live or retained job trace participating in the
// distributed trace, in Start order.
func (tr *Tracer) JobsByTrace(traceID uint64) []*JobTrace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var out []*JobTrace
	for _, id := range tr.byTrace[traceID] {
		if t, ok := tr.live[id]; ok {
			out = append(out, t)
		} else if t, ok := tr.done[id]; ok {
			out = append(out, t)
		}
	}
	return out
}

// TraceByID stitches every job participating in a distributed trace into one
// merged snapshot: spans from all jobs (and, through the spans they folded
// in, all processes) on one clock, ordered by start time.
func (tr *Tracer) TraceByID(traceID uint64) (TraceSnapshot, bool) {
	jobs := tr.JobsByTrace(traceID)
	if len(jobs) == 0 {
		return TraceSnapshot{}, false
	}
	merged := TraceSnapshot{
		TraceID:  FormatTraceID(traceID),
		Label:    "trace " + FormatTraceID(traceID),
		Finished: true,
	}
	for _, jt := range jobs {
		snap := jt.Snapshot()
		if merged.JobID == 0 {
			merged.JobID = snap.JobID
		}
		if merged.Begin.IsZero() || snap.Begin.Before(merged.Begin) {
			merged.Begin = snap.Begin
		}
		if snap.End.After(merged.End) {
			merged.End = snap.End
		}
		merged.Finished = merged.Finished && snap.Finished
		merged.Sampled = merged.Sampled || snap.Sampled
		merged.Dropped += snap.Dropped
		merged.Spans = append(merged.Spans, snap.Spans...)
	}
	if !merged.Finished {
		merged.End = time.Time{}
	}
	sort.SliceStable(merged.Spans, func(i, j int) bool {
		return merged.Spans[i].Start.Before(merged.Spans[j].Start)
	})
	return merged, true
}

// Started counts traces opened since the tracer was built.
func (tr *Tracer) Started() int64 { return tr.started.Load() }

// Evicted counts finished traces dropped by the retention bound.
func (tr *Tracer) Evicted() int64 { return tr.evicted.Load() }

// Retained counts finished traces currently held.
func (tr *Tracer) Retained() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.done)
}

// DroppedSpans sums the spans dropped by the per-trace span cap across live
// and retained traces.
func (tr *Tracer) DroppedSpans() int64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var n int64
	for _, t := range tr.live {
		t.mu.Lock()
		n += t.dropped
		t.mu.Unlock()
	}
	for _, t := range tr.done {
		t.mu.Lock()
		n += t.dropped
		t.mu.Unlock()
	}
	return n
}
