package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// Span is one timed stage of a job: receipt of a chunk, one conversion, one
// file rotation, one upload, one DML statement, one export batch.
type Span struct {
	Stage  string        `json:"stage"`
	Worker string        `json:"worker,omitempty"` // goroutine lane, e.g. "convert-2"
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	Rows   int64         `json:"rows,omitempty"`
	Bytes  int64         `json:"bytes,omitempty"`
	Depth  int           `json:"depth,omitempty"` // adaptive-split depth for DML spans
	Err    string        `json:"err,omitempty"`
}

// JobTrace accumulates the ordered span timeline of one job. Spans may be
// added concurrently from every pipeline goroutine; the timeline is
// retrievable at any moment, including while the job is still running. The
// span count is capped so error storms cannot grow memory without bound;
// spans past the cap are counted in Dropped.
type JobTrace struct {
	JobID uint64
	Label string
	Begin time.Time

	mu       sync.Mutex
	spans    []Span
	cap      int
	dropped  int64
	finished bool
	end      time.Time
}

// Add appends one span. Safe on a nil trace (tracing disabled).
func (t *JobTrace) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.cap {
		t.dropped++
		return
	}
	t.spans = append(t.spans, s)
}

// Span records a completed stage that started at start and just ended.
func (t *JobTrace) Span(stage, worker string, start time.Time, rows, bytes int64, err error) {
	if t == nil {
		return
	}
	s := Span{Stage: stage, Worker: worker, Start: start, Dur: time.Since(start), Rows: rows, Bytes: bytes}
	if err != nil {
		s.Err = err.Error()
	}
	t.Add(s)
}

// TraceSnapshot is a copy of a trace timeline, spans ordered by start time.
type TraceSnapshot struct {
	JobID    uint64    `json:"job_id"`
	Label    string    `json:"label"`
	Begin    time.Time `json:"begin"`
	End      time.Time `json:"end,omitempty"`
	Finished bool      `json:"finished"`
	Dropped  int64     `json:"dropped_spans"`
	Spans    []Span    `json:"spans"`
}

// Snapshot copies the timeline. Safe while the job is running.
func (t *JobTrace) Snapshot() TraceSnapshot {
	t.mu.Lock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	snap := TraceSnapshot{
		JobID:    t.JobID,
		Label:    t.Label,
		Begin:    t.Begin,
		End:      t.end,
		Finished: t.finished,
		Dropped:  t.dropped,
		Spans:    spans,
	}
	t.mu.Unlock()
	sort.SliceStable(snap.Spans, func(i, j int) bool {
		return snap.Spans[i].Start.Before(snap.Spans[j].Start)
	})
	return snap
}

// JSON renders the snapshot as indented JSON.
func (s TraceSnapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// chromeEvent is one Chrome trace_event object. Durations and timestamps
// are microseconds, as the format requires.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  uint64         `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace renders the snapshot in Chrome trace_event JSON object format,
// loadable by chrome://tracing and Perfetto. Each worker lane becomes a
// thread; the job is the process.
func (s TraceSnapshot) ChromeTrace() ([]byte, error) {
	tids := map[string]int{}
	var events []chromeEvent
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: s.JobID,
		Args: map[string]any{"name": s.Label},
	})
	laneID := func(worker string) int {
		if worker == "" {
			worker = "job"
		}
		id, ok := tids[worker]
		if !ok {
			id = len(tids)
			tids[worker] = id
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", PID: s.JobID, TID: id,
				Args: map[string]any{"name": worker},
			})
		}
		return id
	}
	for _, sp := range s.Spans {
		args := map[string]any{}
		if sp.Rows != 0 {
			args["rows"] = sp.Rows
		}
		if sp.Bytes != 0 {
			args["bytes"] = sp.Bytes
		}
		if sp.Depth != 0 {
			args["depth"] = sp.Depth
		}
		if sp.Err != "" {
			args["err"] = sp.Err
		}
		events = append(events, chromeEvent{
			Name: sp.Stage,
			Cat:  "stage",
			Ph:   "X",
			TS:   float64(sp.Start.Sub(s.Begin).Nanoseconds()) / 1e3,
			Dur:  float64(sp.Dur.Nanoseconds()) / 1e3,
			PID:  s.JobID,
			TID:  laneID(sp.Worker),
			Args: args,
		})
	}
	return json.Marshal(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ms"})
}

// Tracer owns the traces of a node's jobs: live jobs are tracked in a map,
// finished traces are retained in a bounded FIFO so recent jobs stay
// inspectable without unbounded growth.
type Tracer struct {
	mu      sync.Mutex
	spanCap int
	retain  int
	live    map[uint64]*JobTrace
	done    map[uint64]*JobTrace
	order   []uint64 // finished-trace eviction order
}

// NewTracer returns a tracer retaining up to retain finished traces, each
// capped at spanCap spans. Non-positive arguments select defaults (64
// traces, 8192 spans).
func NewTracer(retain, spanCap int) *Tracer {
	if retain <= 0 {
		retain = 64
	}
	if spanCap <= 0 {
		spanCap = 8192
	}
	return &Tracer{
		spanCap: spanCap,
		retain:  retain,
		live:    make(map[uint64]*JobTrace),
		done:    make(map[uint64]*JobTrace),
	}
}

// Start opens the trace for a new job.
func (tr *Tracer) Start(id uint64, label string) *JobTrace {
	t := &JobTrace{JobID: id, Label: label, Begin: time.Now(), cap: tr.spanCap}
	tr.mu.Lock()
	tr.live[id] = t
	tr.mu.Unlock()
	return t
}

// Finish marks a job's trace complete and moves it to the retained set,
// evicting the oldest finished trace beyond the retention bound.
func (tr *Tracer) Finish(id uint64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t, ok := tr.live[id]
	if !ok {
		return
	}
	delete(tr.live, id)
	t.mu.Lock()
	t.finished = true
	t.end = time.Now()
	t.mu.Unlock()
	tr.done[id] = t
	tr.order = append(tr.order, id)
	for len(tr.order) > tr.retain {
		delete(tr.done, tr.order[0])
		tr.order = tr.order[1:]
	}
}

// Get looks a trace up among live then finished jobs.
func (tr *Tracer) Get(id uint64) (*JobTrace, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if t, ok := tr.live[id]; ok {
		return t, true
	}
	t, ok := tr.done[id]
	return t, ok
}

// Live returns the traces of jobs still running, ordered by job ID.
func (tr *Tracer) Live() []*JobTrace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]*JobTrace, 0, len(tr.live))
	for _, t := range tr.live {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}
