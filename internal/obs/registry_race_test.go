package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentDuplicateRegistration races N goroutines registering the
// same metric name. Exactly one registration must win; every loser must
// panic (the registry's duplicate guard), and the surviving registry must
// expose exactly one series under the name. Run under -race in CI, this
// also pins the registration path's synchronization.
func TestConcurrentDuplicateRegistration(t *testing.T) {
	r := NewRegistry()
	const n = 16
	var wg sync.WaitGroup
	var won, panicked atomic.Int32
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if recover() != nil {
					panicked.Add(1)
				}
			}()
			<-start
			r.Counter("etlvirt_race_total", "Raced registration.")
			won.Add(1)
		}()
	}
	close(start)
	wg.Wait()
	if won.Load() != 1 {
		t.Errorf("winners = %d, want exactly 1", won.Load())
	}
	if panicked.Load() != n-1 {
		t.Errorf("panics = %d, want %d", panicked.Load(), n-1)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "# HELP etlvirt_race_total"); got != 1 {
		t.Errorf("exposed series count = %d, want 1", got)
	}
}

// TestConcurrentDistinctRegistration races goroutines registering distinct
// names while another goroutine scrapes: no panic, no race, and every
// series lands in the exposition.
func TestConcurrentDistinctRegistration(t *testing.T) {
	r := NewRegistry()
	names := []string{
		"etlvirt_reg_a_total", "etlvirt_reg_b_total", "etlvirt_reg_c_total",
		"etlvirt_reg_d", "etlvirt_reg_e", "etlvirt_reg_f_seconds",
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			<-start
			switch {
			case strings.HasSuffix(name, "_total"):
				r.Counter(name, "C.").Inc()
			case strings.HasSuffix(name, "_seconds"):
				r.Histogram(name, "H.", []float64{1}).Observe(0.5)
			default:
				r.Gauge(name, "G.").Set(1)
			}
		}(name)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		var sb strings.Builder
		_ = r.WritePrometheus(&sb) // concurrent scrape must not race
	}()
	close(start)
	wg.Wait()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if !strings.Contains(sb.String(), "# HELP "+name) {
			t.Errorf("series %s missing from exposition", name)
		}
	}
}

// TestExpositionStableSorted is the regression test for exposition
// determinism: output is byte-identical across scrapes and series appear
// sorted by name regardless of registration order.
func TestExpositionStableSorted(t *testing.T) {
	r := NewRegistry()
	// deliberately registered out of name order
	r.Counter("etlvirt_zeta_total", "Z.").Add(3)
	r.Histogram("etlvirt_mid_seconds", "M.", []float64{0.1, 1}).Observe(0.2)
	r.Gauge("etlvirt_alpha", "A.").Set(7)

	var first, second strings.Builder
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("exposition not stable across scrapes:\n--- first\n%s\n--- second\n%s", first.String(), second.String())
	}
	out := first.String()
	iA := strings.Index(out, "# HELP etlvirt_alpha")
	iM := strings.Index(out, "# HELP etlvirt_mid_seconds")
	iZ := strings.Index(out, "# HELP etlvirt_zeta_total")
	if iA < 0 || iM < 0 || iZ < 0 {
		t.Fatalf("missing series in exposition:\n%s", out)
	}
	if !(iA < iM && iM < iZ) {
		t.Errorf("series not sorted by name: alpha@%d mid@%d zeta@%d", iA, iM, iZ)
	}
}
