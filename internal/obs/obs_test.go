package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "X.")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("y", "Y.")
	g.Set(10)
	g.Add(-4)
	if g.Value() != 6 {
		t.Errorf("gauge = %d, want 6", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.02, 0.5, 2, 7} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.02+0.5+2+7; got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
	// per-bucket (non-cumulative): le=0.01 has {0.005, 0.01}, le=0.1 has
	// {0.02}, le=1 has {0.5}, +Inf has {2, 7}
	snap := r.Histograms()[0]
	for i, want := range []int64{2, 1, 1, 2} {
		if snap.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], want)
		}
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 6`,
		"lat_seconds_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "Q.", []float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all land in the (1,2] bucket
	}
	snap := r.Histograms()[0]
	p50 := snap.Quantile(0.5)
	if p50 < 1 || p50 > 2 {
		t.Errorf("p50 = %g, want within (1,2]", p50)
	}
	if m := snap.Mean(); m < 1.49 || m > 1.51 {
		t.Errorf("mean = %g, want 1.5", m)
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

func TestExpositionTypeLines(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Inc()
	r.Gauge("b", "B.").Set(1)
	r.GaugeFunc("c", "C.", func() float64 { return 2.5 })
	r.CounterFunc("d_total", "D.", func() int64 { return 3 })
	r.Histogram("e_seconds", "E.", []float64{1}).Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	// every series line must be preceded by HELP and TYPE lines for its family
	typed := map[string]bool{}
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := strings.Fields(line)[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && typed[base] {
				name = base
				break
			}
		}
		if !typed[name] {
			t.Errorf("series %q has no preceding # TYPE line", name)
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c_seconds", "C.", nil)
	c := r.Counter("c_total", "C.")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				h.Observe(0.001)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Errorf("count = %d / %d, want 8000", h.Count(), c.Value())
	}
}

func TestTracerTimeline(t *testing.T) {
	tr := NewTracer(2, 0)
	jt := tr.Start(7, "import prod.customer")
	base := time.Now()
	// add out of order; snapshot must sort by start
	jt.Add(Span{Stage: "upload", Start: base.Add(20 * time.Millisecond), Dur: time.Millisecond})
	jt.Add(Span{Stage: "convert", Start: base.Add(5 * time.Millisecond), Dur: 2 * time.Millisecond, Rows: 10})
	jt.Add(Span{Stage: "credit_wait", Start: base, Dur: time.Millisecond})

	snap := jt.Snapshot()
	if snap.Finished {
		t.Error("live trace reported finished")
	}
	order := []string{"credit_wait", "convert", "upload"}
	for i, want := range order {
		if snap.Spans[i].Stage != want {
			t.Errorf("span %d = %s, want %s", i, snap.Spans[i].Stage, want)
		}
	}

	tr.Finish(7)
	got, ok := tr.Get(7)
	if !ok || !got.Snapshot().Finished {
		t.Fatal("finished trace not retained")
	}

	// retention: finish more traces than the bound keeps
	for id := uint64(8); id < 12; id++ {
		tr.Start(id, "x")
		tr.Finish(id)
	}
	if _, ok := tr.Get(7); ok {
		t.Error("oldest trace should have been evicted")
	}
	if _, ok := tr.Get(11); !ok {
		t.Error("newest finished trace missing")
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTracer(1, 3)
	jt := tr.Start(1, "capped")
	for i := 0; i < 10; i++ {
		jt.Add(Span{Stage: "s", Start: time.Now()})
	}
	snap := jt.Snapshot()
	if len(snap.Spans) != 3 || snap.Dropped != 7 {
		t.Errorf("spans=%d dropped=%d, want 3/7", len(snap.Spans), snap.Dropped)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(1, 0)
	jt := tr.Start(3, "import t")
	base := jt.Begin
	jt.Add(Span{Stage: "convert", Worker: "convert-0", Start: base.Add(time.Millisecond),
		Dur: 2 * time.Millisecond, Rows: 5, Bytes: 100})
	jt.Add(Span{Stage: "upload", Worker: "upload-1", Start: base.Add(4 * time.Millisecond),
		Dur: time.Millisecond, Err: "boom"})
	tr.Finish(3)

	raw, err := jt.Snapshot().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var complete, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			if ev["ts"].(float64) < 0 || ev["dur"].(float64) <= 0 {
				t.Errorf("bad ts/dur: %v", ev)
			}
		case "M":
			meta++
		}
	}
	if complete != 2 {
		t.Errorf("complete events = %d, want 2", complete)
	}
	if meta < 3 { // process_name + two thread_name lanes
		t.Errorf("metadata events = %d, want >= 3", meta)
	}

	js, err := jt.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(js) {
		t.Error("snapshot JSON invalid")
	}
}

func TestNilTraceSafe(t *testing.T) {
	var jt *JobTrace
	jt.Add(Span{Stage: "s"})
	jt.Span("s", "w", time.Now(), 0, 0, nil)
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dup", "first.")
	r.Counter("dup", "second.")
}

func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"etlvirt_process_goroutines", "etlvirt_process_heap_alloc_bytes", "etlvirt_process_gc_cycles_total"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("runtime metrics missing %s", want)
		}
	}
}
