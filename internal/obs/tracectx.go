package obs

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

// TraceContext is the compact cross-process trace identity carried on the
// wire: a 64-bit trace ID shared by every span of one distributed timeline,
// the span ID of the sender-side parent, and a sampling bit deciding whether
// downstream processes record spans for it. A zero TraceID means "no trace".
type TraceContext struct {
	TraceID uint64
	SpanID  uint64 // parent span on the sending side; 0 = root
	Sampled bool
}

// Valid reports whether the context names a trace at all.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// String renders the trace ID the way /traces/{traceid} expects it.
func (tc TraceContext) String() string { return FormatTraceID(tc.TraceID) }

// TraceContextWireSize is the encoded size of a TraceContext: trace ID and
// parent span ID as big-endian u64s followed by one flags byte (bit 0 =
// sampled; remaining bits reserved, must be zero).
const TraceContextWireSize = 17

// AppendWire appends the 17-byte wire encoding.
func (tc TraceContext) AppendWire(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, tc.TraceID)
	dst = binary.BigEndian.AppendUint64(dst, tc.SpanID)
	var flags byte
	if tc.Sampled {
		flags |= 1
	}
	return append(dst, flags)
}

// DecodeTraceContext parses the 17-byte wire encoding.
func DecodeTraceContext(b []byte) (TraceContext, error) {
	if len(b) != TraceContextWireSize {
		return TraceContext{}, fmt.Errorf("trace context is %d bytes, want %d", len(b), TraceContextWireSize)
	}
	if b[16]&^1 != 0 {
		return TraceContext{}, fmt.Errorf("trace context flags 0x%02x use reserved bits", b[16])
	}
	return TraceContext{
		TraceID: binary.BigEndian.Uint64(b[0:8]),
		SpanID:  binary.BigEndian.Uint64(b[8:16]),
		Sampled: b[16]&1 != 0,
	}, nil
}

// FormatTraceID renders a trace ID as 16 lowercase hex digits.
func FormatTraceID(id uint64) string {
	const hexdigits = "0123456789abcdef"
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = hexdigits[id&0xF]
		id >>= 4
	}
	return string(buf[:])
}

// ParseTraceID accepts the hex form produced by FormatTraceID (with or
// without zero padding).
func ParseTraceID(s string) (uint64, error) {
	if s == "" || len(s) > 16 {
		return 0, fmt.Errorf("trace id %q is not 1-16 hex digits", s)
	}
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace id %q: %w", s, err)
	}
	return id, nil
}

// idState seeds the shared trace/span ID sequence once from the clock; IDs
// are then drawn lock-free and whitened with a splitmix64 finalizer so
// concurrent processes started in the same nanosecond still diverge quickly.
var idState atomic.Uint64

func nextID() uint64 {
	for {
		cur := idState.Load()
		if cur != 0 {
			break
		}
		idState.CompareAndSwap(0, uint64(time.Now().UnixNano())|1)
	}
	x := idState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// NewTraceID mints a fresh non-zero trace ID.
func NewTraceID() uint64 { return nextID() }

// NewSpanID mints a fresh non-zero span ID.
func NewSpanID() uint64 { return nextID() }
