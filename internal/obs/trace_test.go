package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceContextWireRoundTrip(t *testing.T) {
	cases := []TraceContext{
		{},
		{TraceID: 1, SpanID: 0, Sampled: false},
		{TraceID: 0xDEADBEEFCAFEF00D, SpanID: 0x0123456789ABCDEF, Sampled: true},
		{TraceID: ^uint64(0), SpanID: ^uint64(0), Sampled: true},
	}
	for _, tc := range cases {
		enc := tc.AppendWire(nil)
		if len(enc) != TraceContextWireSize {
			t.Fatalf("%+v: encoded to %d bytes, want %d", tc, len(enc), TraceContextWireSize)
		}
		got, err := DecodeTraceContext(enc)
		if err != nil {
			t.Fatalf("%+v: decode: %v", tc, err)
		}
		if got != tc {
			t.Errorf("round trip %+v -> %+v", tc, got)
		}
	}
	// short, long and reserved-bit encodings must be rejected
	if _, err := DecodeTraceContext(make([]byte, TraceContextWireSize-1)); err == nil {
		t.Error("short encoding accepted")
	}
	if _, err := DecodeTraceContext(make([]byte, TraceContextWireSize+1)); err == nil {
		t.Error("long encoding accepted")
	}
	bad := TraceContext{TraceID: 9}.AppendWire(nil)
	bad[16] |= 0x80
	if _, err := DecodeTraceContext(bad); err == nil {
		t.Error("reserved flag bits accepted")
	}
}

func TestTraceIDFormatParse(t *testing.T) {
	for _, id := range []uint64{1, 0xABCDEF, ^uint64(0)} {
		s := FormatTraceID(id)
		if len(s) != 16 {
			t.Errorf("FormatTraceID(%d) = %q, want 16 hex digits", id, s)
		}
		got, err := ParseTraceID(s)
		if err != nil || got != id {
			t.Errorf("ParseTraceID(%q) = %d, %v; want %d", s, got, err, id)
		}
	}
	for _, bad := range []string{"", "xyz", "00112233445566778899"} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestNewTraceIDsDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace id minted")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %x after %d draws", id, i)
		}
		seen[id] = true
	}
}

// TestTracerRetentionFIFO pins the eviction order at the retain cap: strictly
// oldest-finished-first, with the trace-ID index cleaned alongside.
func TestTracerRetentionFIFO(t *testing.T) {
	const retain = 4
	tr := NewTracer(retain, 0)
	traceIDs := map[uint64]uint64{}
	for id := uint64(1); id <= 10; id++ {
		jt := tr.Start(id, fmt.Sprintf("job %d", id))
		traceIDs[id] = jt.Context().TraceID
		tr.Finish(id)
	}
	if got := tr.Evicted(); got != 10-retain {
		t.Errorf("evicted = %d, want %d", got, 10-retain)
	}
	if got := tr.Retained(); got != retain {
		t.Errorf("retained = %d, want %d", got, retain)
	}
	for id := uint64(1); id <= 10-retain; id++ {
		if _, ok := tr.Get(id); ok {
			t.Errorf("job %d should have been evicted", id)
		}
		if jobs := tr.JobsByTrace(traceIDs[id]); len(jobs) != 0 {
			t.Errorf("trace index still holds evicted job %d", id)
		}
	}
	for id := uint64(10 - retain + 1); id <= 10; id++ {
		if _, ok := tr.Get(id); !ok {
			t.Errorf("job %d should be retained", id)
		}
		jobs := tr.JobsByTrace(traceIDs[id])
		if len(jobs) != 1 || jobs[0].JobID != id {
			t.Errorf("trace index lookup for job %d = %v", id, jobs)
		}
	}
	if got := tr.Started(); got != 10 {
		t.Errorf("started = %d, want 10", got)
	}
}

// TestTracerConcurrentStartFinishSnapshot drives Start/Add/Finish/Snapshot
// and the trace-ID index from many goroutines at once; run under -race this
// pins the tracer's locking discipline.
func TestTracerConcurrentStartFinishSnapshot(t *testing.T) {
	tr := NewTracer(8, 64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// snapshot/readers churn while writers start and finish traces
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, jt := range tr.Live() {
					_ = jt.Snapshot()
					_ = tr.DroppedSpans()
					if s, ok := tr.TraceByID(jt.Context().TraceID); ok {
						_ = s.Spans
					}
				}
				_ = tr.Retained()
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				id := uint64(w*1000 + i + 1)
				jt := tr.StartCtx(id, "race", TraceContext{})
				for s := 0; s < 5; s++ {
					jt.Span("stage", "lane", time.Now(), 1, 1, nil)
				}
				_ = jt.Snapshot()
				tr.Finish(id)
				_, _ = tr.Get(id)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
}

func TestStartCtxContinuation(t *testing.T) {
	tr := NewTracer(4, 0)
	tr.SetProc("etlvirtd")
	incoming := TraceContext{TraceID: 0x1234, SpanID: 77, Sampled: true}
	jt := tr.StartCtx(5, "stream s", incoming)
	if got := jt.Context(); got.TraceID != incoming.TraceID || !got.Sampled {
		t.Fatalf("context = %+v, want continuation of %+v", got, incoming)
	}
	child := jt.ChildContext()
	if child.TraceID != incoming.TraceID || child.SpanID == 0 || child.SpanID == incoming.SpanID {
		t.Fatalf("child context %+v should parent under the job root span", child)
	}
	jt.Span("upload", "stream", time.Now(), 10, 100, nil)
	snap := jt.Snapshot()
	if snap.TraceID != FormatTraceID(incoming.TraceID) {
		t.Errorf("snapshot trace id %q, want %q", snap.TraceID, FormatTraceID(incoming.TraceID))
	}
	// the synthesized root span parents under the propagated client span,
	// and the stage span parents under the root
	if len(snap.Spans) != 2 {
		t.Fatalf("spans = %d, want root + stage", len(snap.Spans))
	}
	root, stage := snap.Spans[0], snap.Spans[1]
	if root.Stage != "job" || root.Parent != incoming.SpanID {
		t.Errorf("root span %+v should parent under client span %d", root, incoming.SpanID)
	}
	if stage.Parent != root.ID || stage.Proc != "etlvirtd" || stage.ID == 0 {
		t.Errorf("stage span %+v should parent under root %d with proc etlvirtd", stage, root.ID)
	}

	// merged lookup by trace ID stitches multiple jobs of one trace
	jt2 := tr.StartCtx(6, "import t", incoming)
	jt2.Span("copy", "stage", time.Now(), 1, 1, nil)
	merged, ok := tr.TraceByID(incoming.TraceID)
	if !ok {
		t.Fatal("TraceByID missed a live trace")
	}
	if merged.Finished {
		t.Error("merged snapshot of live jobs reported finished")
	}
	if len(merged.Spans) != 4 { // two roots + two stage spans
		t.Errorf("merged spans = %d, want 4", len(merged.Spans))
	}
	if _, ok := tr.TraceByID(0xFFFF_FFFF); ok {
		t.Error("unknown trace id resolved")
	}
}

func TestStandaloneJobTrace(t *testing.T) {
	tc := TraceContext{TraceID: NewTraceID(), SpanID: 0, Sampled: true}
	jt := NewJobTrace("client script", 16, "etlclient", tc)
	jt.Span("chunk_send", "session-0", time.Now(), 5, 50, nil)
	snap := jt.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Proc != "etlclient" || snap.Spans[0].ID == 0 {
		t.Fatalf("standalone trace spans = %+v", snap.Spans)
	}
}

func TestEventLogBoundedAndSampled(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Add(Event{Type: "retry", Job: uint64(i)})
	}
	evs := l.Events(0)
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(6+i) || e.Job != uint64(6+i) {
			t.Errorf("event %d = seq %d job %d, want %d", i, e.Seq, e.Job, 6+i)
		}
		if e.Time.IsZero() {
			t.Errorf("event %d missing timestamp", i)
		}
	}
	if l.Recorded() != 10 || l.Dropped() != 6 {
		t.Errorf("recorded/dropped = %d/%d, want 10/6", l.Recorded(), l.Dropped())
	}
	// since-cursor resumes mid-ring
	if got := l.Events(8); len(got) != 2 || got[0].Seq != 8 {
		t.Errorf("Events(8) = %+v", got)
	}

	// per-type sampling records the 1st, (n+1)th, ... of a type
	l2 := NewEventLog(64)
	l2.SetSample("ctrl_decision", 4)
	for i := 0; i < 9; i++ {
		l2.Add(Event{Type: "ctrl_decision"})
	}
	l2.Add(Event{Type: "fault"})
	if got := len(l2.Events(0)); got != 4 { // decisions 0,4,8 + the fault
		t.Errorf("sampled log retained %d, want 4", got)
	}
	if l2.Sampled() != 6 {
		t.Errorf("sampled counter = %d, want 6", l2.Sampled())
	}

	// nil log is a no-op
	var nl *EventLog
	nl.Add(Event{Type: "x"})
	if nl.Events(0) != nil || nl.Recorded() != 0 {
		t.Error("nil event log not inert")
	}
}

func TestEventLogSinkAndJSONL(t *testing.T) {
	l := NewEventLog(8)
	var sink bytes.Buffer
	l.SetSink(&sink)
	l.Add(Event{Type: "job_start", Job: 3, TraceID: "00000000000000ab", Msg: "import PROD.T"})
	l.Add(Event{Type: "job_finish", Job: 3, Attrs: map[string]any{"rows": 42}})

	var drained bytes.Buffer
	if err := l.WriteJSONL(&drained, 0); err != nil {
		t.Fatal(err)
	}
	for _, out := range []string{sink.String(), drained.String()} {
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if len(lines) != 2 {
			t.Fatalf("got %d JSONL lines, want 2:\n%s", len(lines), out)
		}
		var e Event
		if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
			t.Fatalf("line 0 is not JSON: %v", err)
		}
		if e.Type != "job_start" || e.Job != 3 || e.TraceID != "00000000000000ab" {
			t.Errorf("decoded event %+v", e)
		}
	}
}

func TestLabeledGaugeFuncExposition(t *testing.T) {
	r := NewRegistry()
	r.LabeledGaugeFunc("lag_seconds", "Lag.", "stream", func() []LabeledValue {
		return []LabeledValue{{Label: "zeta", Value: 1.5}, {Label: "alpha", Value: 0}}
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	alpha := strings.Index(out, `lag_seconds{stream="alpha"} 0`)
	zeta := strings.Index(out, `lag_seconds{stream="zeta"} 1.5`)
	if alpha < 0 || zeta < 0 {
		t.Fatalf("labeled series missing:\n%s", out)
	}
	if alpha > zeta {
		t.Error("labeled series not sorted by label")
	}
	if !strings.Contains(out, "# TYPE lag_seconds gauge") {
		t.Error("labeled family missing TYPE line")
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x_seconds", "X.", []float64{0.1, 1})
	h.ObserveEx(0.05, 0xAB)
	h.ObserveEx(0.5, 0)  // untraced: no exemplar
	h.ObserveEx(5, 0xCD) // +Inf bucket
	h.Observe(0.2)       // classic path untouched

	exs := h.Exemplars()
	if len(exs) != 3 {
		t.Fatalf("exemplar slots = %d, want 3", len(exs))
	}
	if exs[0].TraceID != 0xAB || exs[0].Value != 0.05 {
		t.Errorf("bucket 0 exemplar = %+v", exs[0])
	}
	if exs[1].TraceID != 0 {
		t.Errorf("untraced bucket grew an exemplar: %+v", exs[1])
	}
	if exs[2].TraceID != 0xCD {
		t.Errorf("+Inf exemplar = %+v", exs[2])
	}

	// classic exposition stays free of mid-line '#', the opt-in variant
	// carries the annotation
	var classic, ex strings.Builder
	if err := r.WritePrometheus(&classic); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheusExemplars(&ex); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(classic.String(), "\n") {
		if !strings.HasPrefix(line, "#") && strings.Contains(line, "#") {
			t.Errorf("classic exposition has mid-line #: %q", line)
		}
	}
	if !strings.Contains(ex.String(), `# {trace_id="00000000000000ab"} 0.05`) {
		t.Errorf("exemplar exposition missing annotation:\n%s", ex.String())
	}
}
