// Package obs is the virtualizer's observability spine: a dependency-free
// metrics registry (atomic counters, gauges and fixed-bucket histograms with
// conformant Prometheus text exposition) plus a per-job span tracer whose
// timelines export as JSON and as Chrome trace_event files.
//
// The package deliberately depends on the standard library only, so every
// layer of the system — credit pool, converter, file writer, cloud store,
// CDW network client, benchmark harness, daemons — can publish into one
// registry without import cycles or third-party baggage.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas are ignored: counters only go up.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency/size histogram. Buckets are cumulative
// upper bounds, exposed Prometheus-style as name_bucket{le="..."} series plus
// name_sum and name_count. Observations made through ObserveEx additionally
// remember the most recent exemplar per bucket — a (value, trace ID) pair
// linking the bucket to one concrete distributed trace that landed in it.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64

	exMu sync.Mutex
	exs  []Exemplar // lazily sized to len(bounds)+1 on first ObserveEx
}

// Exemplar links one histogram bucket to a concrete traced observation.
type Exemplar struct {
	Value   float64
	TraceID uint64
	Time    time.Time
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveEx records one value and, when traceID is non-zero, remembers it as
// the containing bucket's exemplar.
func (h *Histogram) ObserveEx(v float64, traceID uint64) {
	h.Observe(v)
	if traceID == 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exMu.Lock()
	if h.exs == nil {
		h.exs = make([]Exemplar, len(h.bounds)+1)
	}
	h.exs[i] = Exemplar{Value: v, TraceID: traceID, Time: time.Now()}
	h.exMu.Unlock()
}

// Exemplars copies the per-bucket exemplars (len(Bounds)+1 entries; zero
// TraceID means the bucket has none). Returns nil when no exemplar was ever
// recorded.
func (h *Histogram) Exemplars() []Exemplar {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if h.exs == nil {
		return nil
	}
	out := make([]Exemplar, len(h.exs))
	copy(out, h.exs)
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets is the default bucket layout for stage latencies: 10µs to
// 30s on a roughly logarithmic grid. Values are seconds.
var DurationBuckets = []float64{
	0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// DepthBuckets suits small integer distributions such as adaptive-split
// depth or retry counts.
var DepthBuckets = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// SizeBuckets suits byte sizes from 1 KiB to 256 MiB.
var SizeBuckets = []float64{
	1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20,
}

// LabeledValue is one series of a labeled gauge family: the label value and
// the gauge reading.
type LabeledValue struct {
	Label string
	Value float64
}

// metric is one registered series with its exposition metadata.
type metric struct {
	name string
	help string
	typ  string // "counter" | "gauge" | "histogram"

	counter     *Counter
	gauge       *Gauge
	counterFunc func() int64
	gaugeFunc   func() float64
	hist        *Histogram

	labelKey    string
	labeledFunc func() []LabeledValue
}

// Registry holds named metrics and renders them in Prometheus text format.
// Registration is not idempotent: registering a name twice panics, catching
// wiring mistakes early.
type Registry struct {
	mu      sync.RWMutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic("obs: duplicate metric " + m.name)
	}
	r.byName[m.name] = m
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, typ: "counter", counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at exposition
// time (for counters already maintained elsewhere).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(&metric{name: name, help: help, typ: "counter", counterFunc: fn})
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, typ: "gauge", gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, typ: "gauge", gaugeFunc: fn})
}

// LabeledGaugeFunc registers a gauge family keyed by one label (e.g. the
// stream name): fn is read at exposition time and each entry renders as
// name{labelKey="label"} value, sorted by label so the exposition stays
// byte-stable.
func (r *Registry) LabeledGaugeFunc(name, help, labelKey string, fn func() []LabeledValue) {
	r.register(&metric{name: name, help: help, typ: "gauge", labelKey: labelKey, labeledFunc: fn})
}

// Histogram registers and returns a histogram with the given cumulative
// upper bounds (ascending; +Inf is implicit). Nil buckets default to
// DurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DurationBuckets
	}
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram buckets must be ascending: " + name)
		}
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.register(&metric{name: name, help: help, typ: "histogram", hist: h})
	return h
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format: each series carries # HELP and # TYPE lines, histograms
// expand to _bucket/_sum/_count. Series are emitted sorted by name, so the
// exposition is byte-stable regardless of registration order — scrape
// diffing and the exposition regression tests rely on it.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeProm(w, false)
}

// WritePrometheusExemplars renders the same exposition with OpenMetrics-style
// exemplar annotations on histogram buckets that have one:
//
//	name_bucket{le="0.1"} 7 # {trace_id="00ab..."} 0.04 1700000000.000
//
// Classic Prometheus text parsers reject mid-line '#', which is why the
// default exposition leaves exemplars out and this variant is opt-in
// (GET /metrics?exemplars=1).
func (r *Registry) WritePrometheusExemplars(w io.Writer) error {
	return r.writeProm(w, true)
}

func (r *Registry) writeProm(w io.Writer, exemplars bool) error {
	r.mu.RLock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.RUnlock()
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })

	var sb strings.Builder
	for _, m := range metrics {
		fmt.Fprintf(&sb, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(&sb, "# TYPE %s %s\n", m.name, m.typ)
		switch {
		case m.counter != nil:
			fmt.Fprintf(&sb, "%s %d\n", m.name, m.counter.Value())
		case m.counterFunc != nil:
			fmt.Fprintf(&sb, "%s %d\n", m.name, m.counterFunc())
		case m.gauge != nil:
			fmt.Fprintf(&sb, "%s %d\n", m.name, m.gauge.Value())
		case m.gaugeFunc != nil:
			fmt.Fprintf(&sb, "%s %s\n", m.name, formatFloat(m.gaugeFunc()))
		case m.labeledFunc != nil:
			vals := m.labeledFunc()
			sort.Slice(vals, func(i, j int) bool { return vals[i].Label < vals[j].Label })
			for _, lv := range vals {
				fmt.Fprintf(&sb, "%s{%s=%q} %s\n", m.name, m.labelKey, lv.Label, formatFloat(lv.Value))
			}
		case m.hist != nil:
			h := m.hist
			var exs []Exemplar
			if exemplars {
				exs = h.Exemplars()
			}
			cum := int64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&sb, "%s_bucket{le=\"%s\"} %d", m.name, formatFloat(b), cum)
				writeExemplar(&sb, exs, i)
				sb.WriteByte('\n')
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d", m.name, cum)
			writeExemplar(&sb, exs, len(h.bounds))
			sb.WriteByte('\n')
			fmt.Fprintf(&sb, "%s_sum %s\n", m.name, formatFloat(h.Sum()))
			fmt.Fprintf(&sb, "%s_count %d\n", m.name, cum)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func writeExemplar(sb *strings.Builder, exs []Exemplar, i int) {
	if i >= len(exs) || exs[i].TraceID == 0 {
		return
	}
	fmt.Fprintf(sb, " # {trace_id=%q} %s %.3f",
		FormatTraceID(exs[i].TraceID), formatFloat(exs[i].Value),
		float64(exs[i].Time.UnixNano())/1e9)
}

// HistSnapshot is a point-in-time copy of one histogram, suitable for
// summary statistics in benchmark reports.
type HistSnapshot struct {
	Name   string
	Bounds []float64 // upper bounds, +Inf implicit
	Counts []int64   // per-bucket (non-cumulative), len(Bounds)+1
	Sum    float64
	Count  int64
}

// Mean returns the average observed value.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0..1) by linear interpolation within
// the containing bucket. Values beyond the last finite bound clamp to it.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := float64(0)
	for i, b := range s.Bounds {
		prev := cum
		cum += float64(s.Counts[i])
		if cum >= rank && s.Counts[i] > 0 {
			lo := float64(0)
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			frac := (rank - prev) / float64(s.Counts[i])
			return lo + (b-lo)*frac
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Histograms snapshots every registered histogram in registration order.
func (r *Registry) Histograms() []HistSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []HistSnapshot
	for _, m := range r.metrics {
		if m.hist == nil {
			continue
		}
		h := m.hist
		snap := HistSnapshot{
			Name:   m.name,
			Bounds: h.bounds,
			Counts: make([]int64, len(h.counts)),
			Sum:    h.Sum(),
			Count:  h.Count(),
		}
		for i := range h.counts {
			snap.Counts[i] = h.counts[i].Load()
		}
		out = append(out, snap)
	}
	return out
}
