package obs

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"time"
)

// AttachPprof mounts the net/http/pprof handlers on mux under /debug/pprof/,
// without touching http.DefaultServeMux.
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// MetricsHandler serves r in Prometheus text exposition format. Passing
// ?exemplars=1 switches to the OpenMetrics-style variant that annotates
// histogram buckets with their exemplar trace IDs.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.URL.Query().Get("exemplars") == "1" {
			_ = r.WritePrometheusExemplars(w)
			return
		}
		_ = r.WritePrometheus(w)
	})
}

// EventsHandler drains ev as JSON lines, optionally from ?since=seq onward.
func EventsHandler(ev *EventLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var since uint64
		if s := req.URL.Query().Get("since"); s != "" {
			n, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			since = n
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = ev.WriteJSONL(w, since)
	})
}

// Handler returns a mux exposing /healthz, /metrics and the pprof endpoints
// for r — the standalone debug surface used by daemons without a virtualizer
// node (cdwd, edwd, etlrun).
func Handler(r *Registry) http.Handler {
	return DebugMux(r, nil)
}

// DebugMux is Handler plus an /events endpoint draining ev (when non-nil).
func DebugMux(r *Registry, ev *EventLog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.Handle("/metrics", MetricsHandler(r))
	if ev != nil {
		mux.Handle("/events", EventsHandler(ev))
	}
	AttachPprof(mux)
	return mux
}

// memStatsReader caches runtime.ReadMemStats so one scrape does not pay the
// stop-the-world cost once per registered gauge.
type memStatsReader struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (m *memStatsReader) read() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.at) > 500*time.Millisecond {
		runtime.ReadMemStats(&m.stat)
		m.at = time.Now()
	}
	return m.stat
}

// RegisterRuntimeMetrics publishes Go runtime health series (goroutines,
// heap, GC) into r under the etlvirt_process_ prefix.
func RegisterRuntimeMetrics(r *Registry) {
	ms := &memStatsReader{}
	r.GaugeFunc("etlvirt_process_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("etlvirt_process_gomaxprocs", "GOMAXPROCS setting.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	r.GaugeFunc("etlvirt_process_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(ms.read().HeapAlloc) })
	r.GaugeFunc("etlvirt_process_heap_sys_bytes", "Heap memory obtained from the OS.",
		func() float64 { return float64(ms.read().HeapSys) })
	r.CounterFunc("etlvirt_process_alloc_bytes_total", "Cumulative bytes allocated.",
		func() int64 { return int64(ms.read().TotalAlloc) })
	r.CounterFunc("etlvirt_process_gc_cycles_total", "Completed GC cycles.",
		func() int64 { return int64(ms.read().NumGC) })
}
