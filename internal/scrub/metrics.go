package scrub

import (
	"etlvirt/internal/obs"
)

// Metrics is the standard Observer: scrub progress lands on an obs.Registry
// as etlvirt_scrub_* series and in the structured event log, so a scheduled
// scrub shows up on /metrics and /events like any other pipeline activity.
type Metrics struct {
	runs     *obs.Counter
	clean    *obs.Counter
	diverged *obs.Counter
	tables   *obs.Counter
	checks   *obs.Counter
	findings *obs.Counter

	events *obs.EventLog
}

// NewMetrics registers the scrub series on reg and mirrors lifecycle events
// to events (nil disables event logging).
func NewMetrics(reg *obs.Registry, events *obs.EventLog) *Metrics {
	return &Metrics{
		runs:     reg.Counter("etlvirt_scrub_runs", "Differential scrub runs started."),
		clean:    reg.Counter("etlvirt_scrub_clean_runs", "Scrub runs that finished with zero findings."),
		diverged: reg.Counter("etlvirt_scrub_diverged_runs", "Scrub runs that found at least one discrepancy."),
		tables:   reg.Counter("etlvirt_scrub_tables_checked", "Tables (incl. error tables) scrubbed."),
		checks:   reg.Counter("etlvirt_scrub_checks", "Individual layer checks executed."),
		findings: reg.Counter("etlvirt_scrub_findings", "Discrepancies found across all scrub runs."),
		events:   events,
	}
}

// ScrubStart implements Observer.
func (m *Metrics) ScrubStart(ref, subject string, tables int) {
	m.runs.Inc()
	m.events.Add(obs.Event{
		Type: "scrub_start", Msg: "differential scrub",
		Attrs: map[string]any{"ref": ref, "subject": subject, "tables": tables},
	})
}

// ScrubTable implements Observer.
func (m *Metrics) ScrubTable(table string, findings int) {
	m.tables.Inc()
	if findings > 0 {
		m.events.Add(obs.Event{
			Type: "scrub_table_diverged", Msg: table,
			Attrs: map[string]any{"findings": findings},
		})
	}
}

// ScrubDone implements Observer.
func (m *Metrics) ScrubDone(r *Report) {
	m.checks.Add(int64(r.Checks))
	m.findings.Add(int64(len(r.Findings)))
	evType := "scrub_clean"
	if r.OK {
		m.clean.Inc()
	} else {
		m.diverged.Inc()
		evType = "scrub_diverged"
	}
	m.events.Add(obs.Event{
		Type: evType, Msg: "differential scrub finished",
		Attrs: map[string]any{
			"ref": r.Ref, "subject": r.Subject,
			"checks": r.Checks, "findings": len(r.Findings),
		},
	})
}
