// Package scrub implements the post-load differential data-quality scrub:
// after the same workload runs against two warehouses — canonically the
// legacy EDW (ground truth) and the virtualized CDW path — scrub verifies
// layer by layer that they hold identical data. The layers, following the
// multi-layer ELT validation model:
//
//  1. schema     — both sides expose the same columns for each table
//  2. rowcount   — COUNT(*) agrees
//  3. nulls      — per-column non-null counts agree
//  4. checksum   — per-column order-insensitive content checksums agree
//     (XOR_AGG(HASH64(col)), pushed down so only aggregates travel)
//  5. errortable — ET/UV companion tables reconcile the same way
//  6. expected   — counts match the workload manifest's predicted outcomes,
//     catching the case where both engines agree on a wrong answer
//  7. domain     — declared domain predicates hold (violation count is zero)
//
// Everything is computed by the warehouses themselves via pushed-down
// aggregate queries; scrub only compares the tiny result rows, so it works
// identically against an in-process engine or over the legacy wire protocol.
package scrub

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"etlvirt/internal/cdw"
	"etlvirt/internal/etlclient"
	"etlvirt/internal/etlscript"
	"etlvirt/internal/sqlxlate"
	"etlvirt/internal/wire"
)

// ErrNoTable is returned by Source implementations when the probed table
// does not exist on that side.
var ErrNoTable = errors.New("scrub: no such table")

// Source is one side of a differential scrub: a warehouse that answers
// pushed-down verification queries. Rows come back rendered as strings —
// scrub compares, it never computes over the values.
type Source interface {
	// Label names the side in reports ("edw", "virt", an address...).
	Label() string
	// Columns returns the table's column names in definition order, or
	// ErrNoTable.
	Columns(table string) ([]string, error)
	// QueryAll executes one SELECT and returns all rows rendered.
	QueryAll(sql string) ([][]string, error)
}

// EngineSource adapts an in-process cdw.Engine (used by both the reference
// EDW and the CDW) as a scrub Source.
type EngineSource struct {
	Name   string
	Engine *cdw.Engine
}

// Label implements Source.
func (s *EngineSource) Label() string { return s.Name }

// Columns implements Source via the zero-row probe.
func (s *EngineSource) Columns(table string) ([]string, error) {
	probe, err := sqlxlate.ProbeQuery(table)
	if err != nil {
		return nil, err
	}
	res, err := s.Engine.ExecSQL(probe)
	if err != nil {
		var ce *cdw.Error
		if errors.As(err, &ce) && ce.Code == cdw.CodeNoSuchObject {
			return nil, ErrNoTable
		}
		return nil, err
	}
	cols := make([]string, len(res.Columns))
	for i, c := range res.Columns {
		cols[i] = c.Name
	}
	return cols, nil
}

// QueryAll implements Source.
func (s *EngineSource) QueryAll(sql string) ([][]string, error) {
	res, err := s.Engine.ExecSQL(sql)
	if err != nil {
		return nil, err
	}
	out := make([][]string, len(res.Rows))
	for i, row := range res.Rows {
		r := make([]string, len(row))
		for j, d := range row {
			r[j] = d.Render()
		}
		out[i] = r
	}
	return out, nil
}

// WireSource scrubs a server through the legacy wire protocol — the same
// path an operator's etlrun -scrub uses, requiring no access beyond a logon.
type WireSource struct {
	Addr  string
	Logon etlscript.Logon
}

// Label implements Source.
func (s *WireSource) Label() string { return s.Addr }

// Columns implements Source: the zero-row probe's RecordHeader carries the
// layout even when no rows follow.
func (s *WireSource) Columns(table string) ([]string, error) {
	probe, err := sqlxlate.ProbeQuery(table)
	if err != nil {
		return nil, err
	}
	layout, _, err := etlclient.QueryRows(s.Addr, s.Logon, probe)
	if err != nil {
		var f *wire.Failure
		if errors.As(err, &f) && f.Code == cdw.CodeNoSuchObject {
			return nil, ErrNoTable
		}
		return nil, err
	}
	if layout == nil {
		return nil, fmt.Errorf("scrub: probe of %s returned no header", table)
	}
	cols := make([]string, len(layout.Fields))
	for i, f := range layout.Fields {
		cols[i] = f.Name
	}
	return cols, nil
}

// QueryAll implements Source.
func (s *WireSource) QueryAll(sql string) ([][]string, error) {
	_, rows, err := etlclient.QueryRows(s.Addr, s.Logon, sql)
	if err != nil {
		return nil, err
	}
	out := make([][]string, len(rows))
	for i, rec := range rows {
		r := make([]string, len(rec))
		for j, v := range rec {
			r[j] = v.Text()
		}
		out[i] = r
	}
	return out, nil
}

// Table is one scrub target: a table plus its error-table companions.
type Table struct {
	Name      string
	ErrTables []string // ET/UV companions, reconciled as layer "errortable"
}

// ScriptTables derives the scrub targets from a parsed legacy job script:
// every import and stream block's target table with its error-table
// companions, deduplicated in first-appearance order. It is how `etlrun
// -scrub` knows what to verify without any extra operator input.
func ScriptTables(s *etlscript.Script) []Table {
	var out []Table
	idx := map[string]int{}
	add := func(name string, errs ...string) {
		if name == "" {
			return
		}
		key := strings.ToUpper(name)
		i, ok := idx[key]
		if !ok {
			idx[key] = len(out)
			out = append(out, Table{Name: name})
			i = len(out) - 1
		}
		for _, e := range errs {
			if e == "" {
				continue
			}
			dup := false
			for _, have := range out[i].ErrTables {
				if strings.EqualFold(have, e) {
					dup = true
					break
				}
			}
			if !dup {
				out[i].ErrTables = append(out[i].ErrTables, e)
			}
		}
	}
	for _, st := range s.Steps {
		switch {
		case st.Import != nil:
			add(st.Import.Table, st.Import.ErrTableET, st.Import.ErrTableUV)
		case st.Stream != nil:
			add(st.Stream.Table, st.Stream.ErrTableET)
		}
	}
	return out
}

// Expectation is the workload manifest's predicted outcome for one table;
// scrub checks the reference side against it (layer "expected").
type Expectation struct {
	Table string `json:"table"`
	// Rows is the expected target row count; -1 skips the check.
	Rows int64 `json:"rows"`
	// ErrRows maps error-table name to its expected row count.
	ErrRows map[string]int64 `json:"err_rows,omitempty"`
	// Domains are predicates every row must satisfy (layer "domain").
	Domains []string `json:"domains,omitempty"`
}

// Options configures a scrub run.
type Options struct {
	Tables []Table
	Expect []Expectation
	// Observer, when set, receives lifecycle notifications (metrics + event
	// log wiring); see Metrics.
	Observer Observer
}

// Observer receives scrub lifecycle callbacks.
type Observer interface {
	ScrubStart(ref, subject string, tables int)
	ScrubTable(table string, findings int)
	ScrubDone(r *Report)
}

// Run executes a differential scrub of subject against ref.
func Run(ref, subject Source, opts Options) (*Report, error) {
	r := &Report{Ref: ref.Label(), Subject: subject.Label()}
	if opts.Observer != nil {
		opts.Observer.ScrubStart(r.Ref, r.Subject, len(opts.Tables))
	}
	expect := map[string]*Expectation{}
	for i := range opts.Expect {
		expect[strings.ToUpper(opts.Expect[i].Table)] = &opts.Expect[i]
	}
	for _, tbl := range opts.Tables {
		tr, err := scrubTable(ref, subject, tbl, expect[strings.ToUpper(tbl.Name)])
		if err != nil {
			return r, fmt.Errorf("scrub: table %s: %w", tbl.Name, err)
		}
		r.Tables = append(r.Tables, *tr)
		r.Checks += tr.Checks
		r.Findings = append(r.Findings, tr.Findings...)
		if opts.Observer != nil {
			opts.Observer.ScrubTable(tbl.Name, len(tr.Findings))
		}
	}
	r.OK = len(r.Findings) == 0
	if opts.Observer != nil {
		opts.Observer.ScrubDone(r)
	}
	return r, nil
}

// scrubTable runs every layer for one table and its error-table companions.
func scrubTable(ref, subject Source, tbl Table, exp *Expectation) (*TableReport, error) {
	tr := &TableReport{Table: tbl.Name}

	refRows, err := checksumLayers(ref, subject, tbl.Name, "", tr)
	if err != nil {
		return nil, err
	}

	// Layer: errortable — companions reconcile with the same machinery,
	// attributed under the parent table.
	for _, et := range tbl.ErrTables {
		etRows, err := checksumLayers(ref, subject, et, et, tr)
		if err != nil {
			return nil, err
		}
		if exp != nil && exp.ErrRows != nil {
			want, ok := exp.ErrRows[strings.ToUpper(et)]
			if ok && want >= 0 && etRows >= 0 && etRows != want {
				tr.finding("expected", et, "",
					fmt.Sprintf("%d", want), fmt.Sprintf("%d", etRows),
					"error-table rows diverge from the workload manifest")
			}
			tr.Checks++
		}
	}

	// Layer: expected — the manifest's predicted target row count, checked
	// against the reference so a bug shared by both engines still surfaces.
	if exp != nil && exp.Rows >= 0 && refRows >= 0 {
		tr.Checks++
		if refRows != exp.Rows {
			tr.finding("expected", tbl.Name, "",
				fmt.Sprintf("%d", exp.Rows), fmt.Sprintf("%d", refRows),
				"reference row count diverges from the workload manifest")
		}
	}

	// Layer: domain — declared predicates must hold on both sides.
	if exp != nil {
		for _, pred := range exp.Domains {
			q, err := sqlxlate.DomainAuditQuery(tbl.Name, pred)
			if err != nil {
				return nil, err
			}
			for _, side := range []Source{ref, subject} {
				tr.Checks++
				rows, err := side.QueryAll(q)
				if err != nil {
					return nil, fmt.Errorf("domain audit on %s: %w", side.Label(), err)
				}
				if n := rows[0][0]; n != "0" {
					tr.finding("domain", tbl.Name, "", "0", n,
						fmt.Sprintf("%s rows on %s violate %q", n, side.Label(), pred))
				}
			}
		}
	}
	return tr, nil
}

// checksumLayers runs the schema, rowcount, nulls and checksum layers for one
// physical table (target or error table) and returns the reference row count
// (-1 when the table is missing on the reference side). et names the error
// table when the table is a companion, relabelling its findings.
func checksumLayers(ref, subject Source, table, et string, tr *TableReport) (int64, error) {
	layer := func(name string) string {
		if et != "" {
			return "errortable/" + name
		}
		return name
	}

	refCols, refErr := ref.Columns(table)
	subCols, subErr := subject.Columns(table)
	tr.Checks++
	switch {
	case errors.Is(refErr, ErrNoTable) && errors.Is(subErr, ErrNoTable):
		// Absent on both sides: vacuously consistent (e.g. a UV table for a
		// job that never ran on either side).
		return -1, nil
	case errors.Is(refErr, ErrNoTable) || errors.Is(subErr, ErrNoTable):
		missing, side := ref.Label(), "reference"
		if errors.Is(subErr, ErrNoTable) {
			missing, side = subject.Label(), "subject"
		}
		tr.finding(layer("schema"), table, "", "table present", "table missing",
			fmt.Sprintf("%s exists on one side only (missing on %s %s)", table, side, missing))
		return -1, nil
	case refErr != nil:
		return -1, refErr
	case subErr != nil:
		return -1, subErr
	}
	if !sameColumns(refCols, subCols) {
		tr.finding(layer("schema"), table, "",
			strings.Join(refCols, ","), strings.Join(subCols, ","),
			"column sets differ")
		return -1, nil
	}
	if et != "" {
		// Error tables reconcile on the legacy-pinned identity columns only:
		// ERRFIELD/ERRMSG wording is engine prose, not data, and the repo's
		// differential oracle has always excluded it.
		refCols = []string{"SEQNO", "SEQNO_END", "ERRCODE"}
	}

	q, err := sqlxlate.ChecksumQuery(table, refCols)
	if err != nil {
		return -1, err
	}
	refAgg, err := ref.QueryAll(q)
	if err != nil {
		return -1, fmt.Errorf("checksum on %s: %w", ref.Label(), err)
	}
	subAgg, err := subject.QueryAll(q)
	if err != nil {
		return -1, fmt.Errorf("checksum on %s: %w", subject.Label(), err)
	}
	rr, sr := refAgg[0], subAgg[0]

	tr.Checks++
	if rr[0] != sr[0] {
		tr.finding(layer("rowcount"), table, "", rr[0], sr[0], "row counts differ")
	}
	var refRows int64 = -1
	fmt.Sscanf(rr[0], "%d", &refRows)
	if et == "" {
		tr.Rows = refRows
	}

	for i, col := range refCols {
		// Findings use the legacy upper-case spelling regardless of how the
		// engine reports its result columns.
		col = strings.ToUpper(col)
		nulls, sum := 1+2*i, 2+2*i
		tr.Checks++
		if rr[nulls] != sr[nulls] {
			tr.finding(layer("nulls"), table, col, rr[nulls], sr[nulls],
				"non-null counts differ")
		}
		tr.Checks++
		if rr[sum] != sr[sum] {
			tr.finding(layer("checksum"), table, col, rr[sum], sr[sum],
				"column content checksums differ")
		}
	}
	return refRows, nil
}

func sameColumns(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	for i := range as {
		as[i] = strings.ToUpper(as[i])
		bs[i] = strings.ToUpper(bs[i])
	}
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
