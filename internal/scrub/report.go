package scrub

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Finding is one verified discrepancy, attributed to its validation layer,
// table and (when column-granular) column.
type Finding struct {
	Layer  string `json:"layer"`
	Table  string `json:"table"`
	Column string `json:"column,omitempty"`
	Ref    string `json:"ref"`
	Got    string `json:"got"`
	Detail string `json:"detail"`
}

// TableReport is the scrub outcome for one target table and its error-table
// companions.
type TableReport struct {
	Table    string    `json:"table"`
	Rows     int64     `json:"rows"` // reference row count, -1 if unknown
	Checks   int       `json:"checks"`
	Findings []Finding `json:"findings,omitempty"`
}

func (t *TableReport) finding(layer, table, column, ref, got, detail string) {
	t.Findings = append(t.Findings, Finding{
		Layer: layer, Table: table, Column: column, Ref: ref, Got: got, Detail: detail,
	})
}

// Report is the full outcome of one differential scrub run.
type Report struct {
	Ref      string        `json:"ref"`
	Subject  string        `json:"subject"`
	Tables   []TableReport `json:"tables"`
	Checks   int           `json:"checks"`
	Findings []Finding     `json:"findings,omitempty"`
	OK       bool          `json:"ok"`
}

// JSON renders the report as indented JSON for machine consumption.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Diff renders the human-readable report: one summary line, then one line
// per table, then one attributed line per finding.
func (r *Report) Diff() string {
	var sb strings.Builder
	verdict := "CLEAN"
	if !r.OK {
		verdict = "DIVERGED"
	}
	fmt.Fprintf(&sb, "scrub %s: ref=%s subject=%s tables=%d checks=%d findings=%d\n",
		verdict, r.Ref, r.Subject, len(r.Tables), r.Checks, len(r.Findings))
	for _, t := range r.Tables {
		status := "ok"
		if len(t.Findings) > 0 {
			status = fmt.Sprintf("%d finding(s)", len(t.Findings))
		}
		fmt.Fprintf(&sb, "  %-32s rows=%-8d checks=%-4d %s\n", t.Table, t.Rows, t.Checks, status)
	}
	for _, f := range r.Findings {
		loc := f.Table
		if f.Column != "" {
			loc += "." + f.Column
		}
		fmt.Fprintf(&sb, "  [%s] %s: %s (ref=%s got=%s)\n", f.Layer, loc, f.Detail, f.Ref, f.Got)
	}
	return sb.String()
}
