package scrub

import (
	"encoding/json"
	"strings"
	"testing"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cloudstore"
	"etlvirt/internal/etlscript"
	"etlvirt/internal/obs"
)

func newEngine(t *testing.T, ddl ...string) *cdw.Engine {
	t.Helper()
	e := cdw.NewEngine(cloudstore.NewMemStore(), cdw.Options{})
	for _, s := range ddl {
		if _, err := e.ExecSQL(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	return e
}

const custDDL = `CREATE TABLE PROD.CUSTOMER (
	CUST_ID VARCHAR(5) NOT NULL,
	CUST_NAME VARCHAR(50),
	JOIN_DATE DATE,
	PRIMARY KEY (CUST_ID))`

func seedCustomers(t *testing.T, e *cdw.Engine, rows [][3]string) {
	t.Helper()
	for _, r := range rows {
		date := "NULL"
		if r[2] != "" {
			date = "DATE '" + r[2] + "'"
		}
		sql := "INSERT INTO PROD.CUSTOMER VALUES ('" + r[0] + "', '" + r[1] + "', " + date + ")"
		if _, err := e.ExecSQL(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
}

var baseRows = [][3]string{
	{"1", "Smith", "2022-01-01"},
	{"2", "Brown", ""},
	{"3", "Jones", "2022-03-15"},
}

func TestScrubCleanRun(t *testing.T) {
	ref := newEngine(t, custDDL)
	sub := newEngine(t, custDDL)
	seedCustomers(t, ref, baseRows)
	// Insert in a different order: the checksum layer must not care.
	seedCustomers(t, sub, [][3]string{baseRows[2], baseRows[0], baseRows[1]})

	r, err := Run(
		&EngineSource{Name: "ref", Engine: ref},
		&EngineSource{Name: "sub", Engine: sub},
		Options{
			Tables: []Table{{Name: "PROD.CUSTOMER", ErrTables: []string{"PROD.CUSTOMER_ET"}}},
			Expect: []Expectation{{
				Table:   "PROD.CUSTOMER",
				Rows:    3,
				Domains: []string{"CUST_ID <> ''"},
			}},
		})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK || len(r.Findings) != 0 {
		t.Fatalf("clean scrub reported findings:\n%s", r.Diff())
	}
	if r.Checks == 0 || r.Tables[0].Rows != 3 {
		t.Errorf("report summary: %+v", r.Tables[0])
	}
	if !strings.Contains(r.Diff(), "CLEAN") {
		t.Errorf("diff missing verdict:\n%s", r.Diff())
	}
}

// TestScrubSingleCellAttribution pins the acceptance-criteria behaviour: a
// one-cell mutation is detected and attributed to the right table and column,
// without disturbing the rowcount or null layers.
func TestScrubSingleCellAttribution(t *testing.T) {
	ref := newEngine(t, custDDL)
	sub := newEngine(t, custDDL)
	seedCustomers(t, ref, baseRows)
	seedCustomers(t, sub, baseRows)
	if _, err := sub.ExecSQL("UPDATE PROD.CUSTOMER SET CUST_NAME = 'Smyth' WHERE CUST_ID = '1'"); err != nil {
		t.Fatal(err)
	}

	r, err := Run(
		&EngineSource{Name: "ref", Engine: ref},
		&EngineSource{Name: "sub", Engine: sub},
		Options{Tables: []Table{{Name: "PROD.CUSTOMER"}}})
	if err != nil {
		t.Fatal(err)
	}
	if r.OK || len(r.Findings) != 1 {
		t.Fatalf("want exactly one finding, got:\n%s", r.Diff())
	}
	f := r.Findings[0]
	if f.Layer != "checksum" || f.Table != "PROD.CUSTOMER" || f.Column != "CUST_NAME" {
		t.Errorf("misattributed finding: %+v", f)
	}
}

func TestScrubLayerFindings(t *testing.T) {
	t.Run("rowcount", func(t *testing.T) {
		ref := newEngine(t, custDDL)
		sub := newEngine(t, custDDL)
		seedCustomers(t, ref, baseRows)
		seedCustomers(t, sub, baseRows[:2])
		r, err := Run(&EngineSource{Name: "r", Engine: ref}, &EngineSource{Name: "s", Engine: sub},
			Options{Tables: []Table{{Name: "PROD.CUSTOMER"}}})
		if err != nil {
			t.Fatal(err)
		}
		if r.OK || r.Findings[0].Layer != "rowcount" {
			t.Errorf("report:\n%s", r.Diff())
		}
	})
	t.Run("nulls", func(t *testing.T) {
		ref := newEngine(t, custDDL)
		sub := newEngine(t, custDDL)
		seedCustomers(t, ref, baseRows)
		seedCustomers(t, sub, [][3]string{baseRows[0], {"2", "Brown", "2022-02-02"}, baseRows[2]})
		r, err := Run(&EngineSource{Name: "r", Engine: ref}, &EngineSource{Name: "s", Engine: sub},
			Options{Tables: []Table{{Name: "PROD.CUSTOMER"}}})
		if err != nil {
			t.Fatal(err)
		}
		var gotNulls bool
		for _, f := range r.Findings {
			if f.Layer == "nulls" && f.Column == "JOIN_DATE" {
				gotNulls = true
			}
		}
		if !gotNulls {
			t.Errorf("null-pattern change not attributed:\n%s", r.Diff())
		}
	})
	t.Run("schema", func(t *testing.T) {
		ref := newEngine(t, custDDL)
		sub := newEngine(t, `CREATE TABLE PROD.CUSTOMER (
			CUST_ID VARCHAR(5) NOT NULL,
			CUST_NAME VARCHAR(50),
			PRIMARY KEY (CUST_ID))`)
		r, err := Run(&EngineSource{Name: "r", Engine: ref}, &EngineSource{Name: "s", Engine: sub},
			Options{Tables: []Table{{Name: "PROD.CUSTOMER"}}})
		if err != nil {
			t.Fatal(err)
		}
		if r.OK || r.Findings[0].Layer != "schema" {
			t.Errorf("report:\n%s", r.Diff())
		}
	})
	t.Run("missing-table-one-side", func(t *testing.T) {
		ref := newEngine(t, custDDL)
		sub := newEngine(t)
		r, err := Run(&EngineSource{Name: "r", Engine: ref}, &EngineSource{Name: "s", Engine: sub},
			Options{Tables: []Table{{Name: "PROD.CUSTOMER"}}})
		if err != nil {
			t.Fatal(err)
		}
		if r.OK || r.Findings[0].Layer != "schema" {
			t.Errorf("report:\n%s", r.Diff())
		}
	})
	t.Run("missing-table-both-sides-ok", func(t *testing.T) {
		ref := newEngine(t, custDDL)
		sub := newEngine(t, custDDL)
		r, err := Run(&EngineSource{Name: "r", Engine: ref}, &EngineSource{Name: "s", Engine: sub},
			Options{Tables: []Table{{Name: "PROD.CUSTOMER", ErrTables: []string{"PROD.CUSTOMER_UV"}}}})
		if err != nil {
			t.Fatal(err)
		}
		if !r.OK {
			t.Errorf("absent-on-both error table flagged:\n%s", r.Diff())
		}
	})
	t.Run("expected-manifest", func(t *testing.T) {
		ref := newEngine(t, custDDL)
		sub := newEngine(t, custDDL)
		seedCustomers(t, ref, baseRows)
		seedCustomers(t, sub, baseRows)
		r, err := Run(&EngineSource{Name: "r", Engine: ref}, &EngineSource{Name: "s", Engine: sub},
			Options{
				Tables: []Table{{Name: "PROD.CUSTOMER"}},
				Expect: []Expectation{{Table: "PROD.CUSTOMER", Rows: 7}},
			})
		if err != nil {
			t.Fatal(err)
		}
		if r.OK || r.Findings[0].Layer != "expected" {
			t.Errorf("report:\n%s", r.Diff())
		}
	})
	t.Run("domain", func(t *testing.T) {
		ref := newEngine(t, custDDL)
		sub := newEngine(t, custDDL)
		seedCustomers(t, ref, baseRows)
		seedCustomers(t, sub, baseRows)
		r, err := Run(&EngineSource{Name: "r", Engine: ref}, &EngineSource{Name: "s", Engine: sub},
			Options{
				Tables: []Table{{Name: "PROD.CUSTOMER"}},
				Expect: []Expectation{{Table: "PROD.CUSTOMER", Rows: -1,
					Domains: []string{"JOIN_DATE IS NOT NULL"}}},
			})
		if err != nil {
			t.Fatal(err)
		}
		// Row 2 has a NULL date on both sides: two domain findings.
		var n int
		for _, f := range r.Findings {
			if f.Layer == "domain" {
				n++
			}
		}
		if n != 2 {
			t.Errorf("want 2 domain findings (one per side), got:\n%s", r.Diff())
		}
	})
	t.Run("bad-domain-predicate", func(t *testing.T) {
		ref := newEngine(t, custDDL)
		sub := newEngine(t, custDDL)
		_, err := Run(&EngineSource{Name: "r", Engine: ref}, &EngineSource{Name: "s", Engine: sub},
			Options{
				Tables: []Table{{Name: "PROD.CUSTOMER"}},
				Expect: []Expectation{{Table: "PROD.CUSTOMER", Rows: -1,
					Domains: []string{"THIS IS NOT ((( SQL"}}},
			})
		if err == nil {
			t.Error("malformed domain predicate accepted")
		}
	})
}

// TestScrubMetricsObserver wires the standard observer and checks the
// etlvirt_scrub_* series and event types land.
func TestScrubMetricsObserver(t *testing.T) {
	ref := newEngine(t, custDDL)
	sub := newEngine(t, custDDL)
	seedCustomers(t, ref, baseRows)
	seedCustomers(t, sub, baseRows[:2])

	reg := obs.NewRegistry()
	events := obs.NewEventLog(64)
	m := NewMetrics(reg, events)

	r, err := Run(&EngineSource{Name: "r", Engine: ref}, &EngineSource{Name: "s", Engine: sub},
		Options{Tables: []Table{{Name: "PROD.CUSTOMER"}}, Observer: m})
	if err != nil {
		t.Fatal(err)
	}
	if r.OK {
		t.Fatal("expected a diverged run")
	}
	if m.runs.Value() != 1 || m.diverged.Value() != 1 || m.clean.Value() != 0 {
		t.Errorf("run counters: runs=%d diverged=%d clean=%d",
			m.runs.Value(), m.diverged.Value(), m.clean.Value())
	}
	if m.findings.Value() == 0 || m.checks.Value() == 0 || m.tables.Value() != 1 {
		t.Errorf("detail counters: findings=%d checks=%d tables=%d",
			m.findings.Value(), m.checks.Value(), m.tables.Value())
	}
	types := map[string]bool{}
	for _, e := range events.Events(0) {
		types[e.Type] = true
	}
	for _, want := range []string{"scrub_start", "scrub_table_diverged", "scrub_diverged"} {
		if !types[want] {
			t.Errorf("missing event %s in %v", want, types)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	ref := newEngine(t, custDDL)
	sub := newEngine(t, custDDL)
	seedCustomers(t, ref, baseRows)
	seedCustomers(t, sub, baseRows)
	if _, err := sub.ExecSQL("UPDATE PROD.CUSTOMER SET JOIN_DATE = NULL WHERE CUST_ID = '3'"); err != nil {
		t.Fatal(err)
	}
	r, err := Run(&EngineSource{Name: "r", Engine: ref}, &EngineSource{Name: "s", Engine: sub},
		Options{Tables: []Table{{Name: "PROD.CUSTOMER"}}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.OK != r.OK || len(back.Findings) != len(r.Findings) || back.Ref != "r" {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestScriptTables(t *testing.T) {
	src := `
.logon host/user,pass;
.layout L;
.field A varchar(5);
.begin import tables PROD.CUSTOMER
	errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;
.dml label Ins;
insert into PROD.CUSTOMER values (trim(:A));
.import infile a.txt format vartext '|' layout L apply Ins;
.end load;
.begin export outfile out.txt format vartext '|';
select A from PROD.CUSTOMER;
.end export;
.begin import tables PROD.CUSTOMER
	errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;
.dml label Ins2;
insert into PROD.CUSTOMER values (trim(:A));
.import infile b.txt format vartext '|' layout L apply Ins2;
.end load;
.begin stream name s1 tables PROD.ACCOUNT errortables PROD.ACCOUNT_ET;
.dml label Apply;
insert into PROD.ACCOUNT values (trim(:A));
.stream infile d.txt format vartext '|' layout L apply Apply;
.end stream;
`
	s, err := etlscript.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	got := ScriptTables(s)
	if len(got) != 2 {
		t.Fatalf("ScriptTables = %+v, want 2 deduplicated targets", got)
	}
	if got[0].Name != "PROD.CUSTOMER" ||
		strings.Join(got[0].ErrTables, ",") != "PROD.CUSTOMER_ET,PROD.CUSTOMER_UV" {
		t.Errorf("import target: %+v", got[0])
	}
	if got[1].Name != "PROD.ACCOUNT" ||
		strings.Join(got[1].ErrTables, ",") != "PROD.ACCOUNT_ET" {
		t.Errorf("stream target: %+v", got[1])
	}
}
