package stream

import (
	"encoding/binary"
	"errors"

	"etlvirt/internal/wire"
)

// Op marks the kind of one CDC delta record.
type Op byte

// Delta operations. Each delta carries a full-row image; updates and
// inserts are both "latest image of this key", deletes carry the image so
// the key columns can be extracted.
const (
	OpInsert Op = 'I'
	OpUpdate Op = 'U'
	OpDelete Op = 'D'
)

// Valid reports whether o is a known delta operation.
func (o Op) Valid() bool { return o == OpInsert || o == OpUpdate || o == OpDelete }

// String returns the single-letter spelling of the op.
func (o Op) String() string { return string(rune(o)) }

// Framing errors are preallocated sentinels: NextDelta runs once per record
// on the steady-state path and must not construct errors there.
var (
	ErrBadOp     = errors.New("stream: invalid delta op marker")
	ErrTruncated = errors.New("stream: truncated delta record")
)

// AppendDelta appends the wire encoding of one delta — the op marker byte
// followed by the record in its data-format framing — to dst and returns
// the extended slice. The record must already carry its own framing: a
// trailing newline for vartext, the 2-byte length prefix and terminator for
// indicator mode.
//
//etlvirt:hotpath
func AppendDelta(dst []byte, op Op, record []byte) []byte {
	dst = append(dst, byte(op))
	return append(dst, record...)
}

// NextDelta splits the first delta off payload, returning its op, the
// record bytes (with format framing intact, ready for the DataConverter),
// and the remaining payload.
//
//etlvirt:hotpath
func NextDelta(payload []byte, format wire.DataFormat) (op Op, record, rest []byte, err error) {
	if len(payload) == 0 {
		return 0, nil, nil, ErrTruncated
	}
	op = Op(payload[0])
	if !op.Valid() {
		return 0, nil, nil, ErrBadOp
	}
	body := payload[1:]
	switch format {
	case wire.FormatVartext:
		// A vartext record is one newline-terminated line; tolerate a
		// missing terminator on the final record.
		for i := 0; i < len(body); i++ {
			if body[i] == '\n' {
				return op, body[:i+1], body[i+1:], nil
			}
		}
		return op, body, nil, nil
	case wire.FormatIndicator:
		// An indicator record is a 2-byte BE length, that many bytes, and a
		// 1-byte terminator.
		if len(body) < 2 {
			return 0, nil, nil, ErrTruncated
		}
		n := 2 + int(binary.BigEndian.Uint16(body)) + 1
		if len(body) < n {
			return 0, nil, nil, ErrTruncated
		}
		return op, body[:n], body[n:], nil
	default:
		return 0, nil, nil, ErrBadOp
	}
}

// CountDeltas counts the records in a delta payload, validating framing.
func CountDeltas(payload []byte, format wire.DataFormat) (int, error) {
	n := 0
	for len(payload) > 0 {
		_, _, rest, err := NextDelta(payload, format)
		if err != nil {
			return n, err
		}
		payload = rest
		n++
	}
	return n, nil
}
