package stream

import (
	"time"

	"etlvirt/internal/tune"
)

// Config tunes the adaptive controller. Zero values select defaults.
type Config struct {
	// Target is the end-to-end micro-batch commit latency the controller
	// steers toward. Zero defaults to 2s.
	Target time.Duration
	// MinBatch/MaxBatch clamp the records-per-micro-batch hint. Zeros
	// default to 16 and 8192.
	MinBatch int
	MaxBatch int
	// InitialBatch seeds the hint before any observation. Zero defaults to
	// 64 (clamped into [MinBatch, MaxBatch]).
	InitialBatch int
	// Alpha is the EWMA smoothing factor for observed latency and record
	// width, in (0, 1]. Larger reacts faster, smaller damps noise harder.
	// Zero defaults to 0.3.
	Alpha float64
	// Deadband is the fractional hysteresis band around Target inside which
	// the controller holds instead of chasing noise. Zero defaults to 0.15
	// (i.e. hold while smoothed latency is within ±15% of target).
	Deadband float64
	// MinSpoolBytes/MaxSpoolBytes clamp the staging-file rotation threshold
	// derived from the batch hint. Zeros default to 64 KiB and 4 MiB.
	MinSpoolBytes int
	MaxSpoolBytes int
	// MaxCopyFiles caps staged files folded into one COPY statement. Zero
	// defaults to 4.
	MaxCopyFiles int
}

func (c Config) withDefaults() Config {
	if c.Target <= 0 {
		c.Target = 2 * time.Second
	}
	if c.MinBatch <= 0 {
		c.MinBatch = 16
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8192
	}
	if c.MaxBatch < c.MinBatch {
		c.MaxBatch = c.MinBatch
	}
	if c.InitialBatch <= 0 {
		c.InitialBatch = 64
	}
	if c.InitialBatch < c.MinBatch {
		c.InitialBatch = c.MinBatch
	}
	if c.InitialBatch > c.MaxBatch {
		c.InitialBatch = c.MaxBatch
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.Deadband <= 0 {
		c.Deadband = 0.15
	}
	if c.MinSpoolBytes <= 0 {
		c.MinSpoolBytes = 64 << 10
	}
	if c.MaxSpoolBytes <= 0 {
		c.MaxSpoolBytes = 4 << 20
	}
	if c.MaxSpoolBytes < c.MinSpoolBytes {
		c.MaxSpoolBytes = c.MinSpoolBytes
	}
	if c.MaxCopyFiles <= 0 {
		c.MaxCopyFiles = 4
	}
	return c
}

// Action classifies a controller decision. It is the shared tune.Action so
// decisions from the streaming controller and the import-lane tuner read the
// same everywhere they are counted or labeled.
type Action = tune.Action

// Controller decisions: hold the current batch size, grow it, or shrink it.
const (
	ActionHold   = tune.ActionHold
	ActionGrow   = tune.ActionGrow
	ActionShrink = tune.ActionShrink
)

// Decision is the controller's current preferred micro-batch geometry.
type Decision struct {
	Action     Action
	BatchRows  int // preferred records per micro-batch (the client frame hint)
	SpoolBytes int // staging-file rotation threshold for the batch
	CopyFiles  int // max staged files folded into one COPY statement
	// Dominant names the pipeline stage with the largest smoothed share of
	// commit latency ("spool", "upload", "copy", "apply", "checkpoint"), so a
	// grow/shrink decision is attributable to the stage driving it. Empty
	// until a stage breakdown has been observed.
	Dominant string
}

// Stages splits one micro-batch's commit latency into its pipeline stages,
// as measured by the streaming job. Zero fields are unobserved.
type Stages struct {
	Spool      time.Duration // delta decode + staging-file append
	Upload     time.Duration // staging-file rotation and object-store upload
	Copy       time.Duration // COPY of staged files into the work table
	Apply      time.Duration // merge/DML application to the target table
	Checkpoint time.Duration // watermark checkpoint write
}

// stageNames index the controller's per-stage EWMA array.
var stageNames = [...]string{"spool", "upload", "copy", "apply", "checkpoint"}

func (s Stages) seconds() [len(stageNames)]float64 {
	return [len(stageNames)]float64{
		s.Spool.Seconds(), s.Upload.Seconds(), s.Copy.Seconds(),
		s.Apply.Seconds(), s.Checkpoint.Seconds(),
	}
}

// Stats counts controller decisions since construction.
type Stats struct {
	Grows   uint64
	Shrinks uint64
	Holds   uint64
}

// Controller is the adaptive micro-batch sizer. It is a pure unit: it never
// reads the clock — the caller measures each batch's commit latency and
// feeds it to Observe, which returns the geometry for the next batch. It is
// not safe for concurrent use; the streaming job serializes batch commits.
//
// The control law is tune.StepToTarget — a damped multiplicative-adjust
// loop: smoothed latency outside the deadband moves the batch size by the
// ratio target/latency, clamped to [1/2, 3/2] per step so a single outlier
// cannot collapse or explode the batch, then clamped to [MinBatch,
// MaxBatch]. Commit latency grows monotonically with batch size (fixed
// per-batch overhead plus per-row cost), so the ratio step contracts toward
// the fixed point where latency sits inside the band, and the deadband
// stops it from oscillating around the target on noisy measurements.
type Controller struct {
	cfg Config

	batch       int
	lat         tune.EWMA // smoothed commit latency, seconds
	bytesPerRow tune.EWMA // smoothed record width

	stageSec    [len(stageNames)]tune.EWMA // smoothed per-stage latency, seconds
	stageSeeded bool

	stats Stats
}

// NewController builds a controller steering toward cfg.Target.
func NewController(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{cfg: cfg, batch: cfg.InitialBatch}
}

// Target reports the configured latency target after defaulting.
func (c *Controller) Target() time.Duration { return c.cfg.Target }

// Stats returns decision counts since construction.
func (c *Controller) Stats() Stats { return c.stats }

// Hint returns the current geometry without recording an observation.
func (c *Controller) Hint() Decision {
	return Decision{
		Action:     ActionHold,
		BatchRows:  c.batch,
		SpoolBytes: c.spoolBytes(),
		CopyFiles:  c.copyFiles(),
	}
}

// Observe records one committed micro-batch (rows records, bytes of raw
// payload, end-to-end commit latency) and returns the geometry for the next
// batch.
func (c *Controller) Observe(rows, bytes int, latency time.Duration) Decision {
	return c.ObserveStages(rows, bytes, latency, Stages{})
}

// StageEWMA returns the smoothed per-stage latency breakdown, keyed by stage
// name. Nil until a stage breakdown has been observed.
func (c *Controller) StageEWMA() map[string]time.Duration {
	if !c.stageSeeded {
		return nil
	}
	out := make(map[string]time.Duration, len(stageNames))
	for i, name := range stageNames {
		out[name] = time.Duration(c.stageSec[i].Value() * float64(time.Second))
	}
	return out
}

// dominant names the stage with the largest smoothed latency share.
func (c *Controller) dominant() string {
	if !c.stageSeeded {
		return ""
	}
	best, bestSec := "", 0.0
	for i, name := range stageNames {
		if c.stageSec[i].Value() > bestSec {
			best, bestSec = name, c.stageSec[i].Value()
		}
	}
	return best
}

// ObserveStages is Observe with a per-stage latency breakdown attached, so
// the decision reports which stage dominates the commit path. A zero Stages
// leaves the attribution state untouched.
func (c *Controller) ObserveStages(rows, bytes int, latency time.Duration, st Stages) Decision {
	if st != (Stages{}) {
		sec := st.seconds()
		for i := range sec {
			c.stageSec[i].Observe(c.cfg.Alpha, sec[i])
		}
		c.stageSeeded = true
	}
	if rows <= 0 || latency <= 0 {
		d := c.Hint()
		d.Dominant = c.dominant()
		c.stats.Holds++
		return d
	}
	smoothed := c.lat.Observe(c.cfg.Alpha, latency.Seconds())
	if width := float64(bytes) / float64(rows); !c.bytesPerRow.Seeded() || bytes > 0 {
		c.bytesPerRow.Observe(c.cfg.Alpha, width)
	}

	var action Action
	c.batch, action = tune.StepToTarget(c.batch, smoothed, c.cfg.Target.Seconds(), c.cfg.Deadband,
		c.cfg.MinBatch, c.cfg.MaxBatch)
	switch action {
	case ActionGrow:
		c.stats.Grows++
	case ActionShrink:
		c.stats.Shrinks++
	default:
		c.stats.Holds++
	}
	return Decision{
		Action:     action,
		BatchRows:  c.batch,
		SpoolBytes: c.spoolBytes(),
		CopyFiles:  c.copyFiles(),
		Dominant:   c.dominant(),
	}
}

// spoolBytes derives the staging-file rotation threshold: enough for one
// micro-batch in a single file when records are narrow, clamped so wide
// records still rotate before unbounded buffering.
func (c *Controller) spoolBytes() int {
	width := c.bytesPerRow.Value()
	if width <= 0 {
		width = 128 // prior before any observation
	}
	spool := int(width * float64(c.batch))
	if spool < c.cfg.MinSpoolBytes {
		spool = c.cfg.MinSpoolBytes
	}
	if spool > c.cfg.MaxSpoolBytes {
		spool = c.cfg.MaxSpoolBytes
	}
	return spool
}

// copyFiles scales the files-per-COPY batch linearly with where the batch
// hint sits in [MinBatch, MaxBatch]: small latency-bound batches commit one
// file at a time, large throughput-bound batches amortize COPY overhead
// across several staged files.
func (c *Controller) copyFiles() int {
	span := c.cfg.MaxBatch - c.cfg.MinBatch
	if span <= 0 || c.cfg.MaxCopyFiles <= 1 {
		return 1
	}
	files := 1 + (c.batch-c.cfg.MinBatch)*(c.cfg.MaxCopyFiles-1)/span
	if files < 1 {
		files = 1
	}
	if files > c.cfg.MaxCopyFiles {
		files = c.cfg.MaxCopyFiles
	}
	return files
}
