// Package stream implements the continuous micro-batch ingestion mode: the
// adaptive latency controller that sizes micro-batches against a commit
// latency target, and the CDC delta framing shared by the client and the
// virtualizer.
//
// The paper's title promises adaptive real-time virtualization, but its
// legacy pipelines are discrete batch jobs with hand-tuned chunk sizes. This
// package closes that loop: the controller watches observed end-to-end
// commit latency (measured by the server per micro-batch) and resizes the
// three knobs that govern it — records per micro-batch, staging-file
// rotation threshold, and files per COPY statement — so a slow CDW shrinks
// batches toward the target and an idle one grows them for throughput.
// Backpressure stays credit-based (internal/credit): the controller shapes
// batch geometry, credits bound memory.
package stream
