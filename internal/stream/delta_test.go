package stream

import (
	"bytes"
	"encoding/binary"
	"testing"

	"etlvirt/internal/wire"
)

func indicatorRecord(body []byte) []byte {
	rec := binary.BigEndian.AppendUint16(nil, uint16(len(body)))
	rec = append(rec, body...)
	return append(rec, 0x0a)
}

func TestDeltaRoundTripVartext(t *testing.T) {
	var payload []byte
	payload = AppendDelta(payload, OpInsert, []byte("1|alpha\n"))
	payload = AppendDelta(payload, OpUpdate, []byte("2|beta\n"))
	payload = AppendDelta(payload, OpDelete, []byte("1|alpha\n"))

	want := []struct {
		op  Op
		rec string
	}{{OpInsert, "1|alpha\n"}, {OpUpdate, "2|beta\n"}, {OpDelete, "1|alpha\n"}}
	rest := payload
	for i, w := range want {
		op, rec, r, err := NextDelta(rest, wire.FormatVartext)
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		if op != w.op || string(rec) != w.rec {
			t.Fatalf("delta %d: got %c %q, want %c %q", i, op, rec, w.op, w.rec)
		}
		rest = r
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %q", rest)
	}
	if n, err := CountDeltas(payload, wire.FormatVartext); err != nil || n != 3 {
		t.Fatalf("CountDeltas = %d, %v", n, err)
	}
}

func TestDeltaRoundTripIndicator(t *testing.T) {
	recs := [][]byte{indicatorRecord([]byte("abc")), indicatorRecord([]byte("defgh"))}
	var payload []byte
	payload = AppendDelta(payload, OpInsert, recs[0])
	payload = AppendDelta(payload, OpDelete, recs[1])

	op, rec, rest, err := NextDelta(payload, wire.FormatIndicator)
	if err != nil || op != OpInsert || !bytes.Equal(rec, recs[0]) {
		t.Fatalf("first delta: %c %q %v", op, rec, err)
	}
	op, rec, rest, err = NextDelta(rest, wire.FormatIndicator)
	if err != nil || op != OpDelete || !bytes.Equal(rec, recs[1]) {
		t.Fatalf("second delta: %c %q %v", op, rec, err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %q", rest)
	}
}

func TestDeltaVartextMissingNewline(t *testing.T) {
	op, rec, rest, err := NextDelta([]byte("I1|alpha"), wire.FormatVartext)
	if err != nil || op != OpInsert || string(rec) != "1|alpha" || len(rest) != 0 {
		t.Fatalf("got %c %q rest=%q err=%v", op, rec, rest, err)
	}
}

func TestDeltaErrors(t *testing.T) {
	if _, _, _, err := NextDelta(nil, wire.FormatVartext); err != ErrTruncated {
		t.Fatalf("empty payload: %v", err)
	}
	if _, _, _, err := NextDelta([]byte("X1|a\n"), wire.FormatVartext); err != ErrBadOp {
		t.Fatalf("bad op: %v", err)
	}
	if _, _, _, err := NextDelta([]byte{byte(OpInsert), 0x00}, wire.FormatIndicator); err != ErrTruncated {
		t.Fatalf("short length prefix: %v", err)
	}
	truncated := []byte{byte(OpInsert), 0x00, 0x10, 'a'}
	if _, _, _, err := NextDelta(truncated, wire.FormatIndicator); err != ErrTruncated {
		t.Fatalf("truncated body: %v", err)
	}
	if _, err := CountDeltas([]byte("I1|a\nQbad\n"), wire.FormatVartext); err != ErrBadOp {
		t.Fatalf("CountDeltas bad op: %v", err)
	}
}

// BenchmarkNextDelta pins the per-record delta framing as allocation-free:
// it runs once per delta on the steady-state ingest path (PR-5 hotalloc
// discipline).
func BenchmarkNextDelta(b *testing.B) {
	var payload []byte
	for i := 0; i < 64; i++ {
		payload = AppendDelta(payload, OpUpdate, []byte("12345|some customer name|2024-01-01\n"))
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rest := payload
		for len(rest) > 0 {
			_, _, r, err := NextDelta(rest, wire.FormatVartext)
			if err != nil {
				b.Fatal(err)
			}
			rest = r
		}
	}
}

// TestNextDeltaAllocFree is the CI alloc-regression gate for the delta
// framing hot path: NextDelta runs once per CDC record and must never
// allocate.
func TestNextDeltaAllocFree(t *testing.T) {
	var payload []byte
	for i := 0; i < 16; i++ {
		payload = AppendDelta(payload, OpUpdate, []byte("12345|some customer name|2024-01-01\n"))
	}
	allocs := testing.AllocsPerRun(10, func() {
		rest := payload
		for len(rest) > 0 {
			_, _, r, err := NextDelta(rest, wire.FormatVartext)
			if err != nil {
				t.Fatal(err)
			}
			rest = r
		}
	})
	if allocs != 0 {
		t.Errorf("NextDelta allocates %.1f per frame, want 0", allocs)
	}
}
