package stream

import (
	"testing"
	"time"
)

// simulate runs the controller closed-loop against a synthetic latency
// model latency(rows) = base + perRow*rows and returns the batch-size
// trajectory.
func simulate(c *Controller, base, perRow time.Duration, steps int) []int {
	sizes := make([]int, 0, steps)
	batch := c.Hint().BatchRows
	for i := 0; i < steps; i++ {
		lat := base + time.Duration(batch)*perRow
		d := c.Observe(batch, batch*100, lat)
		batch = d.BatchRows
		sizes = append(sizes, batch)
	}
	return sizes
}

func TestControllerConvergence(t *testing.T) {
	cases := []struct {
		name     string
		cfg      Config
		base     time.Duration
		perRow   time.Duration
		wantLo   int // acceptable converged-batch band
		wantHi   int
		maxDrift int // allowed batch movement across the settled tail
	}{
		{
			// ideal batch = (2s - 100ms) / 2ms = 950 rows
			name: "converges_from_below",
			cfg:  Config{Target: 2 * time.Second, InitialBatch: 64},
			base: 100 * time.Millisecond, perRow: 2 * time.Millisecond,
			wantLo: 700, wantHi: 1200, maxDrift: 0,
		},
		{
			// same plant, starting far above the ideal batch
			name: "converges_from_above",
			cfg:  Config{Target: 2 * time.Second, InitialBatch: 8000},
			base: 100 * time.Millisecond, perRow: 2 * time.Millisecond,
			wantLo: 700, wantHi: 1200, maxDrift: 0,
		},
		{
			// ideal batch = (500ms - 50ms) / 1ms = 450 rows
			name: "tighter_target",
			cfg:  Config{Target: 500 * time.Millisecond, InitialBatch: 64},
			base: 50 * time.Millisecond, perRow: time.Millisecond,
			wantLo: 330, wantHi: 550, maxDrift: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewController(tc.cfg)
			sizes := simulate(c, tc.base, tc.perRow, 200)
			final := sizes[len(sizes)-1]
			if final < tc.wantLo || final > tc.wantHi {
				t.Fatalf("converged batch = %d, want in [%d, %d]\ntrajectory tail: %v",
					final, tc.wantLo, tc.wantHi, sizes[len(sizes)-10:])
			}
			// No oscillation: the settled tail must not keep moving.
			tail := sizes[len(sizes)-50:]
			lo, hi := tail[0], tail[0]
			for _, s := range tail {
				if s < lo {
					lo = s
				}
				if s > hi {
					hi = s
				}
			}
			if hi-lo > tc.maxDrift {
				t.Fatalf("batch still oscillating in settled tail: range [%d, %d], want drift <= %d",
					lo, hi, tc.maxDrift)
			}
		})
	}
}

func TestControllerClamps(t *testing.T) {
	t.Run("ceiling", func(t *testing.T) {
		// A plant so fast the ideal batch exceeds MaxBatch: the hint must
		// pin at the ceiling and then hold, not overflow past it.
		c := NewController(Config{Target: 10 * time.Second, MinBatch: 16, MaxBatch: 256})
		sizes := simulate(c, time.Millisecond, time.Microsecond, 100)
		for i, s := range sizes {
			if s > 256 {
				t.Fatalf("step %d: batch %d exceeds ceiling 256", i, s)
			}
		}
		if final := sizes[len(sizes)-1]; final != 256 {
			t.Fatalf("final batch = %d, want pinned at ceiling 256", final)
		}
	})
	t.Run("floor", func(t *testing.T) {
		// A plant so slow even the minimum batch misses the target: the
		// hint must pin at the floor, not collapse to zero.
		c := NewController(Config{Target: 10 * time.Millisecond, MinBatch: 16, MaxBatch: 4096, InitialBatch: 1024})
		sizes := simulate(c, 50*time.Millisecond, time.Millisecond, 100)
		for i, s := range sizes {
			if s < 16 {
				t.Fatalf("step %d: batch %d below floor 16", i, s)
			}
		}
		if final := sizes[len(sizes)-1]; final != 16 {
			t.Fatalf("final batch = %d, want pinned at floor 16", final)
		}
	})
	t.Run("pinned_counts_as_hold", func(t *testing.T) {
		c := NewController(Config{Target: 10 * time.Millisecond, MinBatch: 16, MaxBatch: 64, InitialBatch: 16})
		c.Observe(16, 1600, time.Second) // way over target, already at floor
		if st := c.Stats(); st.Shrinks != 0 || st.Holds != 1 {
			t.Fatalf("clamped decision miscounted: %+v, want 1 hold", st)
		}
	})
}

func TestControllerStepBounds(t *testing.T) {
	// One catastrophic outlier must not move the batch by more than the
	// per-step ratio clamp (even before EWMA damping).
	c := NewController(Config{Target: 2 * time.Second, InitialBatch: 1000, Alpha: 1})
	d := c.Observe(1000, 100_000, 200*time.Second)
	if d.BatchRows < 500 {
		t.Fatalf("single outlier shrank batch to %d, want >= 500 (half)", d.BatchRows)
	}
	d = c.Observe(d.BatchRows, 100, time.Nanosecond)
	if d.BatchRows > 750+1 {
		t.Fatalf("single fast sample grew batch to %d, want <= 1.5x", d.BatchRows)
	}
}

func TestControllerGeometryDerivation(t *testing.T) {
	c := NewController(Config{
		Target: 2 * time.Second, MinBatch: 16, MaxBatch: 1024,
		MinSpoolBytes: 1 << 10, MaxSpoolBytes: 1 << 20, MaxCopyFiles: 4,
	})
	d := c.Hint()
	if d.SpoolBytes < 1<<10 || d.SpoolBytes > 1<<20 {
		t.Fatalf("spool %d outside clamps", d.SpoolBytes)
	}
	if d.CopyFiles < 1 || d.CopyFiles > 4 {
		t.Fatalf("copy files %d outside [1, 4]", d.CopyFiles)
	}
	// 200-byte records at a large batch: spool tracks width*batch.
	for i := 0; i < 50; i++ {
		d = c.Observe(d.BatchRows, d.BatchRows*200, 100*time.Millisecond)
	}
	if d.BatchRows != 1024 {
		t.Fatalf("fast plant should pin ceiling, got %d", d.BatchRows)
	}
	if d.CopyFiles != 4 {
		t.Fatalf("ceiling batch should use max copy files, got %d", d.CopyFiles)
	}
	if want := 200 * 1024; d.SpoolBytes != want {
		t.Fatalf("spool = %d, want width*batch = %d", d.SpoolBytes, want)
	}
}

func TestControllerDefaults(t *testing.T) {
	c := NewController(Config{})
	if c.Target() != 2*time.Second {
		t.Fatalf("default target = %v", c.Target())
	}
	d := c.Hint()
	if d.BatchRows != 64 {
		t.Fatalf("default initial batch = %d, want 64", d.BatchRows)
	}
	// InitialBatch is clamped into [MinBatch, MaxBatch].
	c = NewController(Config{MinBatch: 100, MaxBatch: 200, InitialBatch: 5000})
	if got := c.Hint().BatchRows; got != 200 {
		t.Fatalf("initial batch not clamped: %d", got)
	}
}

// BenchmarkControllerObserve pins the steady-state controller step as
// allocation-free: it runs once per committed micro-batch and must not put
// the allocator on the commit path.
func BenchmarkControllerObserve(b *testing.B) {
	c := NewController(Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(512, 512*120, 1900*time.Millisecond)
	}
}

// TestControllerObserveAllocFree is the CI alloc-regression gate for the
// controller step: Observe runs once per committed micro-batch on the
// streaming commit path and must never allocate.
func TestControllerObserveAllocFree(t *testing.T) {
	c := NewController(Config{})
	allocs := testing.AllocsPerRun(100, func() {
		c.Observe(512, 512*120, 1900*time.Millisecond)
		c.Observe(512, 512*120, 2100*time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("Observe allocates %.1f per call pair, want 0", allocs)
	}
}

func TestObserveStagesAttribution(t *testing.T) {
	c := NewController(Config{Target: 2 * time.Second})
	// Before any stage breakdown: no attribution.
	d := c.Observe(100, 10000, 500*time.Millisecond)
	if d.Dominant != "" {
		t.Errorf("dominant %q before any stage observation", d.Dominant)
	}
	if c.StageEWMA() != nil {
		t.Error("StageEWMA non-nil before any stage observation")
	}
	// COPY dominates this batch.
	d = c.ObserveStages(100, 10000, 500*time.Millisecond, Stages{
		Spool:  10 * time.Millisecond,
		Upload: 50 * time.Millisecond,
		Copy:   300 * time.Millisecond,
		Apply:  100 * time.Millisecond,
	})
	if d.Dominant != "copy" {
		t.Errorf("dominant %q, want copy", d.Dominant)
	}
	ew := c.StageEWMA()
	if ew == nil || ew["copy"] != 300*time.Millisecond {
		t.Errorf("stage EWMA seed: %v", ew)
	}
	// Shift the bottleneck to apply; EWMA needs a few batches to cross over.
	for i := 0; i < 20; i++ {
		d = c.ObserveStages(100, 10000, 500*time.Millisecond, Stages{
			Spool: 10 * time.Millisecond,
			Copy:  50 * time.Millisecond,
			Apply: 400 * time.Millisecond,
		})
	}
	if d.Dominant != "apply" {
		t.Errorf("dominant %q after shift, want apply", d.Dominant)
	}
	// A zero Stages observation keeps the last attribution.
	d = c.Observe(100, 10000, 500*time.Millisecond)
	if d.Dominant != "apply" {
		t.Errorf("dominant %q after plain Observe, want apply", d.Dominant)
	}
}

func TestObserveStagesZeroRowsStillAttributes(t *testing.T) {
	c := NewController(Config{})
	d := c.ObserveStages(0, 0, 0, Stages{Checkpoint: time.Millisecond})
	if d.Dominant != "checkpoint" {
		t.Errorf("dominant %q, want checkpoint", d.Dominant)
	}
	if d.Action != ActionHold {
		t.Errorf("action %v, want hold", d.Action)
	}
}
