package retrier

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"
)

// transientErr is a minimal transient failure for the tests.
type transientErr struct{ msg string }

func (e *transientErr) Error() string   { return e.msg }
func (e *transientErr) Transient() bool { return true }

// fatalErr carries an explicit non-transient verdict.
type fatalErr struct{ msg string }

func (e *fatalErr) Error() string   { return e.msg }
func (e *fatalErr) Transient() bool { return false }

// timeoutNetErr mimics a net.Error timeout.
type timeoutNetErr struct{}

func (timeoutNetErr) Error() string   { return "i/o timeout" }
func (timeoutNetErr) Timeout() bool   { return true }
func (timeoutNetErr) Temporary() bool { return true }

func TestPolicyDelaySchedule(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{
		10 * time.Millisecond, // retry 1
		20 * time.Millisecond, // retry 2
		40 * time.Millisecond, // retry 3
		80 * time.Millisecond, // retry 4 hits the cap
		80 * time.Millisecond, // and stays capped
	}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.WithDefaults()
	if p.MaxAttempts != DefaultMaxAttempts || p.BaseDelay != DefaultBaseDelay ||
		p.MaxDelay != DefaultMaxDelay || p.Multiplier != DefaultMultiplier {
		t.Errorf("defaults not applied: %+v", p)
	}
}

func TestDo(t *testing.T) {
	transient := &transientErr{"store unavailable"}
	fatal := &fatalErr{"bad request"}
	plain := errors.New("unclassified")

	cases := []struct {
		name      string
		policy    Policy
		budget    *Budget
		errs      []error // per-attempt results; nil = success
		wantErr   func(error) bool
		wantCalls int
		wantWaits []time.Duration
	}{
		{
			name:      "first try succeeds",
			policy:    Policy{MaxAttempts: 3, BaseDelay: time.Millisecond},
			errs:      []error{nil},
			wantErr:   func(err error) bool { return err == nil },
			wantCalls: 1,
		},
		{
			name:      "transient then success",
			policy:    Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Multiplier: 2},
			errs:      []error{transient, transient, nil},
			wantErr:   func(err error) bool { return err == nil },
			wantCalls: 3,
			wantWaits: []time.Duration{time.Millisecond, 2 * time.Millisecond},
		},
		{
			name:   "attempt cap exhausted",
			policy: Policy{MaxAttempts: 3, BaseDelay: time.Millisecond},
			errs:   []error{transient, transient, transient},
			wantErr: func(err error) bool {
				var ex *Exhausted
				return errors.As(err, &ex) && ex.Attempts == 3 && errors.Is(err, transient)
			},
			wantCalls: 3,
		},
		{
			name:      "fatal short-circuits",
			policy:    Policy{MaxAttempts: 5, BaseDelay: time.Millisecond},
			errs:      []error{fatal},
			wantErr:   func(err error) bool { return errors.Is(err, fatal) },
			wantCalls: 1,
		},
		{
			name:      "unclassified errors are not retried",
			policy:    Policy{MaxAttempts: 5, BaseDelay: time.Millisecond},
			errs:      []error{plain},
			wantErr:   func(err error) bool { return errors.Is(err, plain) },
			wantCalls: 1,
		},
		{
			name:   "budget exhausted mid-flight",
			policy: Policy{MaxAttempts: 10, BaseDelay: time.Millisecond},
			budget: NewBudget(2),
			errs:   []error{transient, transient, transient},
			wantErr: func(err error) bool {
				var ex *Exhausted
				return errors.As(err, &ex) && ex.Attempts == 3
			},
			wantCalls: 3, // first attempt + 2 budgeted retries
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			calls := 0
			var waits []time.Duration
			r := &Retrier{
				Policy: tc.policy,
				Budget: tc.budget,
				Sleep:  func(_ context.Context, d time.Duration) { waits = append(waits, d) },
			}
			err := r.Do(context.Background(), "op", func() error {
				calls++
				if calls > len(tc.errs) {
					t.Fatalf("unexpected attempt %d", calls)
				}
				return tc.errs[calls-1]
			})
			if !tc.wantErr(err) {
				t.Errorf("err = %v", err)
			}
			if calls != tc.wantCalls {
				t.Errorf("calls = %d, want %d", calls, tc.wantCalls)
			}
			if tc.wantWaits != nil {
				if len(waits) != len(tc.wantWaits) {
					t.Fatalf("waits = %v, want %v", waits, tc.wantWaits)
				}
				for i := range waits {
					if waits[i] != tc.wantWaits[i] {
						t.Errorf("wait[%d] = %v, want %v", i, waits[i], tc.wantWaits[i])
					}
				}
			}
		})
	}
}

func TestDoContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	r := &Retrier{
		Policy: Policy{MaxAttempts: 10, BaseDelay: time.Millisecond},
		Sleep:  defaultSleep,
	}
	err := r.Do(ctx, "op", func() error {
		calls++
		cancel() // cancel during the first attempt
		return &transientErr{"flaky"}
	})
	var ex *Exhausted
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *Exhausted", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (no retries after cancellation)", calls)
	}
}

func TestDoObservers(t *testing.T) {
	var observed []string
	exhausted := 0
	r := &Retrier{
		Policy: Policy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Sleep:  func(context.Context, time.Duration) {},
		Observe: func(op string, retry int, delay time.Duration, err error) {
			observed = append(observed, fmt.Sprintf("%s#%d", op, retry))
		},
		OnExhausted: func(op string, attempts int, err error) { exhausted++ },
	}
	_ = r.Do(context.Background(), "upload", func() error { return &transientErr{"x"} })
	if len(observed) != 2 || observed[0] != "upload#1" || observed[1] != "upload#2" {
		t.Errorf("observed = %v", observed)
	}
	if exhausted != 1 {
		t.Errorf("exhausted callbacks = %d", exhausted)
	}
}

func TestBudget(t *testing.T) {
	b := NewBudget(2)
	if !b.Take() || !b.Take() {
		t.Fatal("budget should allow 2 takes")
	}
	if b.Take() {
		t.Fatal("budget should be spent")
	}
	if b.Remaining() != 0 {
		t.Errorf("remaining = %d", b.Remaining())
	}
	var unlimited *Budget
	if !unlimited.Take() {
		t.Error("nil budget must be unlimited")
	}
	if NewBudget(0).Remaining() != -1 {
		t.Error("zero budget must be unlimited")
	}
}

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{&transientErr{"x"}, true},
		{&fatalErr{"x"}, false},
		{timeoutNetErr{}, true},
		{io.EOF, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("wrap: %w", &transientErr{"x"}), true},
		{&Exhausted{Op: "op", Attempts: 3, Err: &transientErr{"x"}}, false},
	}
	for _, tc := range cases {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("IsTransient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
