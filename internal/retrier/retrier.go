// Package retrier implements the shared retry/backoff policy the resilience
// layer uses around transient infrastructure failures: object-store puts,
// CDW round trips, and COPY recovery.
//
// The design follows three rules the fault-injection tests depend on:
//
//   - Deterministic schedule. Backoff is capped exponential with NO jitter,
//     so the same failure sequence always produces the same wait sequence —
//     a prerequisite for the differential chaos tests, which assert that a
//     faulted run converges to the same final state as a fault-free run.
//   - Transient vs fatal. Only errors classified transient are retried;
//     engine errors (wrong SQL, uniqueness violations, data errors) must
//     surface immediately so legacy per-tuple error semantics are preserved.
//   - Bounded work. A per-call attempt cap plus an optional shared Budget
//     bound the total retry work a node performs; once either is exhausted
//     the operation fails with *Exhausted, which classifies as fatal.
package retrier

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// Policy is a capped exponential backoff schedule. The zero value selects
// the defaults below.
type Policy struct {
	// MaxAttempts is the total number of attempts including the first.
	// Zero selects DefaultMaxAttempts; 1 disables retries.
	MaxAttempts int
	// BaseDelay is the wait before the first retry. Zero selects
	// DefaultBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps the growing backoff. Zero selects DefaultMaxDelay.
	MaxDelay time.Duration
	// Multiplier grows the delay between retries. Values <= 1 select
	// DefaultMultiplier.
	Multiplier float64
}

// Defaults applied when Policy fields are zero.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 5 * time.Millisecond
	DefaultMaxDelay    = 500 * time.Millisecond
	DefaultMultiplier  = 2.0
)

// WithDefaults returns the policy with zero fields replaced by defaults.
func (p Policy) WithDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.Multiplier <= 1 {
		p.Multiplier = DefaultMultiplier
	}
	return p
}

// Delay returns the backoff before retry number retry (1-based: the wait
// after the first failed attempt is Delay(1)). The schedule is deterministic:
// BaseDelay * Multiplier^(retry-1), capped at MaxDelay.
func (p Policy) Delay(retry int) time.Duration {
	p = p.WithDefaults()
	d := float64(p.BaseDelay)
	for i := 1; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			return p.MaxDelay
		}
	}
	if d > float64(p.MaxDelay) {
		return p.MaxDelay
	}
	return time.Duration(d)
}

// Budget is a shared cap on the total number of retries a set of retriers
// may perform — the node-wide bound on recovery work.
type Budget struct {
	remaining atomic.Int64
	unlimited bool
}

// NewBudget returns a budget of n retries. n <= 0 means unlimited.
func NewBudget(n int64) *Budget {
	b := &Budget{unlimited: n <= 0}
	b.remaining.Store(n)
	return b
}

// Take consumes one retry from the budget, reporting false when spent.
func (b *Budget) Take() bool {
	if b == nil || b.unlimited {
		return true
	}
	for {
		r := b.remaining.Load()
		if r <= 0 {
			return false
		}
		if b.remaining.CompareAndSwap(r, r-1) {
			return true
		}
	}
}

// Remaining returns the retries left, or -1 for an unlimited budget.
func (b *Budget) Remaining() int64 {
	if b == nil || b.unlimited {
		return -1
	}
	return b.remaining.Load()
}

// Exhausted reports an operation abandoned after its retry budget or attempt
// cap ran out. It classifies as non-transient so callers fail fast instead
// of retrying a retry failure.
type Exhausted struct {
	Op       string
	Attempts int
	Err      error // last attempt's error
}

func (e *Exhausted) Error() string {
	return fmt.Sprintf("retrier: %s failed after %d attempts: %v", e.Op, e.Attempts, e.Err)
}

// Unwrap exposes the last attempt's error.
func (e *Exhausted) Unwrap() error { return e.Err }

// Transient marks exhaustion as fatal for classification purposes.
func (e *Exhausted) Transient() bool { return false }

// transienter is the classification interface injected faults, store
// timeouts, and exhaustion all implement.
type transienter interface{ Transient() bool }

// IsTransient reports whether a retry of the failed operation may succeed.
// Errors carrying a Transient() verdict use it; network timeouts are
// transient; context cancellation and everything unknown is not — an
// unrecognized failure must surface, not spin.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var tr transienter
	if errors.As(err, &tr) {
		return tr.Transient()
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return ne.Timeout()
	}
	return false
}

// Retrier runs operations under a Policy. The zero value retries nothing;
// construct with the fields needed. A Retrier is safe for concurrent use as
// long as its fields are not mutated after first use.
type Retrier struct {
	Policy Policy
	// Budget, when non-nil, bounds total retries across every Do call
	// sharing it.
	Budget *Budget
	// Retryable decides whether an error is worth another attempt. Nil
	// selects IsTransient.
	Retryable func(error) bool
	// Sleep waits between attempts; nil selects a context-aware sleep.
	// Tests inject a recording no-op to keep the schedule instant.
	Sleep func(ctx context.Context, d time.Duration)
	// Observe, when non-nil, is called before each backoff wait with the
	// operation name, the retry number (1-based), the scheduled delay, and
	// the error being retried. The node wires this into etlvirt_retry_*.
	Observe func(op string, retry int, delay time.Duration, err error)
	// OnExhausted, when non-nil, is called once when an operation gives up.
	OnExhausted func(op string, attempts int, err error)
}

func defaultSleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Do runs fn until it succeeds, fails non-transiently, or the attempt cap /
// budget / context is exhausted. On give-up after a transient failure the
// returned error is *Exhausted wrapping the last attempt's error;
// non-retryable errors are returned unwrapped.
func (r *Retrier) Do(ctx context.Context, op string, fn func() error) error {
	pol := r.Policy.WithDefaults()
	retryable := r.Retryable
	if retryable == nil {
		retryable = IsTransient
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = defaultSleep
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil {
			return nil
		}
		if !retryable(err) {
			return err
		}
		if attempt >= pol.MaxAttempts || ctx.Err() != nil || !r.Budget.Take() {
			if r.OnExhausted != nil {
				r.OnExhausted(op, attempt, err)
			}
			return &Exhausted{Op: op, Attempts: attempt, Err: err}
		}
		delay := pol.Delay(attempt)
		if r.Observe != nil {
			r.Observe(op, attempt, delay, err)
		}
		sleep(ctx, delay)
	}
}
