package etlscript

import (
	"strings"
	"testing"

	"etlvirt/internal/ltype"
	"etlvirt/internal/wire"
)

// example21 is the paper's Example 2.1 script, verbatim modulo quoting.
const example21 = `
.logon host/user,pass;
.layout CustLayout;
.field CUST_ID varchar(5);
.field CUST_NAME varchar(50);
.field JOIN_DATE varchar(10);
.begin import tables PROD.CUSTOMER
	errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;
.dml label InsApply;
insert into PROD.CUSTOMER values (
	trim(:CUST_ID), trim(:CUST_NAME),
	cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') );
.import infile input.txt
	format vartext '|' layout CustLayout
	apply InsApply;
.end load;
`

func TestParseExample21(t *testing.T) {
	s, err := Parse(example21)
	if err != nil {
		t.Fatal(err)
	}
	if s.Logon.Host != "host" || s.Logon.User != "user" || s.Logon.Password != "pass" {
		t.Errorf("logon: %+v", s.Logon)
	}
	l, err := s.Layout("custlayout")
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Fields) != 3 || l.Fields[0].Name != "CUST_ID" || l.Fields[0].Type != ltype.VarChar(5) {
		t.Errorf("layout: %+v", l)
	}
	if l.Fields[2].Type != ltype.VarChar(10) {
		t.Errorf("JOIN_DATE type: %+v", l.Fields[2].Type)
	}
	if len(s.Steps) != 1 || s.Steps[0].Import == nil {
		t.Fatalf("steps: %+v", s.Steps)
	}
	blk := s.Steps[0].Import
	if blk.Table != "PROD.CUSTOMER" || blk.ErrTableET != "PROD.CUSTOMER_ET" || blk.ErrTableUV != "PROD.CUSTOMER_UV" {
		t.Errorf("block: %+v", blk)
	}
	sql, ok := blk.DMLs["insapply"]
	if !ok || !strings.Contains(sql, "cast(:JOIN_DATE as DATE format 'YYYY-MM-DD')") {
		t.Errorf("dml: %q", sql)
	}
	imp := blk.Imports[0]
	if imp.Infile != "input.txt" || imp.Format != wire.FormatVartext || imp.Delim != '|' ||
		imp.LayoutName != "CustLayout" || imp.ApplyLabel != "InsApply" {
		t.Errorf("import cmd: %+v", imp)
	}
}

func TestParseImportOptions(t *testing.T) {
	s, err := Parse(`
.logon h/u,p;
.layout L;
.field A varchar(5);
.begin import tables T errortables ET UV sessions 8 maxerrors 10 maxretries 5;
.dml label X;
insert into T values (:A);
.import infile f format indicator layout L apply X;
.end load;
`)
	if err != nil {
		t.Fatal(err)
	}
	blk := s.Steps[0].Import
	if blk.Sessions != 8 || blk.MaxErrors != 10 || blk.MaxRetries != 5 {
		t.Errorf("options: %+v", blk)
	}
	if blk.Imports[0].Format != wire.FormatIndicator {
		t.Errorf("format: %v", blk.Imports[0].Format)
	}
}

func TestParseExportBlock(t *testing.T) {
	s, err := Parse(`
.logon h/u,p;
.begin export outfile out.txt format vartext ',' sessions 4;
SELECT cust_id, cust_name FROM prod.customer WHERE cust_id > '100';
.end export;
`)
	if err != nil {
		t.Fatal(err)
	}
	blk := s.Steps[0].Export
	if blk == nil {
		t.Fatal("no export step")
	}
	if blk.Outfile != "out.txt" || blk.Delim != ',' || blk.Sessions != 4 {
		t.Errorf("export: %+v", blk)
	}
	if !strings.HasPrefix(blk.Query, "SELECT") {
		t.Errorf("query: %q", blk.Query)
	}
}

func TestParseRunAndMultipleSteps(t *testing.T) {
	s, err := Parse(`
.logon h/u,p;
.run CREATE TABLE t (a INTEGER);
.layout L;
.field A varchar(5);
.begin import tables t;
.dml label X;
insert into t values (:A);
.import infile f layout L apply X;
.end load;
.begin export outfile o;
SELECT * FROM t;
.end export;
.logoff;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Steps) != 3 {
		t.Fatalf("steps: %d", len(s.Steps))
	}
	if s.Steps[0].SQL == "" || s.Steps[1].Import == nil || s.Steps[2].Export == nil {
		t.Errorf("step kinds wrong: %+v", s.Steps)
	}
}

func TestParseCommentsAndStrings(t *testing.T) {
	s, err := Parse(`
.logon h/u,p; -- trailing comment
/* block
   comment ; with semicolon */
.layout L;
.field A varchar(50);
.begin import tables T;
.dml label X;
insert into T values (:A || 'semi;colon ''quoted''');
.import infile f layout L apply X;
.end load;
`)
	if err != nil {
		t.Fatal(err)
	}
	sql := s.Steps[0].Import.DMLs["x"]
	if !strings.Contains(sql, "semi;colon 'quoted'") {
		// Note: statement splitting preserves quotes; the '' stays escaped in
		// the raw SQL text.
		if !strings.Contains(sql, "semi;colon ''quoted''") {
			t.Errorf("sql: %q", sql)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct {
		name, src string
	}{
		{"no logon", ".layout L;"},
		{"missing semicolon", ".logon h/u,p"},
		{"bad logon", ".logon nope;"},
		{"field outside layout", ".logon h/u,p;\n.field A varchar(5);"},
		{"duplicate layout", ".logon h/u,p;\n.layout L;\n.field A varchar(5);\n.layout L;"},
		{"bad type", ".logon h/u,p;\n.layout L;\n.field A wat(5);"},
		{"dml outside block", ".logon h/u,p;\n.dml label X;"},
		{"unknown command", ".logon h/u,p;\n.wat;"},
		{"unclosed import", ".logon h/u,p;\n.layout L;\n.field A varchar(5);\n.begin import tables T;"},
		{"dml without sql", ".logon h/u,p;\n.layout L;\n.field A varchar(5);\n.begin import tables T;\n.dml label X;\n.end load;"},
		{"import no dml", ".logon h/u,p;\n.layout L;\n.field A varchar(5);\n.begin import tables T;\n.import infile f layout L apply X;\n.end load;"},
		{"import undefined layout", ".logon h/u,p;\n.begin import tables T;\n.dml label X;\ninsert into T values (1);\n.import infile f layout NOPE apply X;\n.end load;"},
		{"export no query", ".logon h/u,p;\n.begin export outfile o;\n.end export;"},
		{"export two queries", ".logon h/u,p;\n.begin export outfile o;\nSELECT 1;\nSELECT 2;\n.end export;"},
		{"bare sql", ".logon h/u,p;\nSELECT 1;"},
		{"nested begin", ".logon h/u,p;\n.begin export outfile o;\n.begin export outfile p;"},
		{"empty import block", ".logon h/u,p;\n.begin import tables T;\n.dml label X;\nINSERT INTO T VALUES (1);\n.end load;"},
		{"bad sessions", ".logon h/u,p;\n.begin import tables T sessions abc;"},
		{"unterminated string", ".logon h/u,p;\n.run SELECT 'oops;"},
	}
	for _, c := range bad {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseStreamBlock(t *testing.T) {
	s, err := Parse(`
.logon h/u,p;
.layout CustLayout;
.field CUST_ID varchar(5);
.field CUST_NAME varchar(50);
.begin stream name cdc_cust tables PROD.CUSTOMER
	errortables PROD.CUSTOMER_ET latency 500 maxerrors 25;
.dml label Apply;
insert into PROD.CUSTOMER values (:CUST_ID, :CUST_NAME);
.stream infile deltas.txt format vartext '|' layout CustLayout apply Apply;
.end stream;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Steps) != 1 || s.Steps[0].Stream == nil {
		t.Fatalf("steps: %+v", s.Steps)
	}
	blk := s.Steps[0].Stream
	if blk.Name != "cdc_cust" || blk.Table != "PROD.CUSTOMER" ||
		blk.ErrTableET != "PROD.CUSTOMER_ET" || blk.LatencyMS != 500 || blk.MaxErrors != 25 {
		t.Errorf("block: %+v", blk)
	}
	if sql, ok := blk.DMLs["apply"]; !ok || !strings.HasPrefix(sql, "insert") {
		t.Errorf("dml: %q", sql)
	}
	if len(blk.Streams) != 1 {
		t.Fatalf("streams: %+v", blk.Streams)
	}
	cmd := blk.Streams[0]
	if cmd.Infile != "deltas.txt" || cmd.Format != wire.FormatVartext || cmd.Delim != '|' ||
		cmd.LayoutName != "CustLayout" || cmd.ApplyLabel != "Apply" {
		t.Errorf("stream cmd: %+v", cmd)
	}
}

func TestParseStreamErrors(t *testing.T) {
	bad := []struct {
		name, src string
	}{
		{"stream without name", ".logon h/u,p;\n.begin stream tables T;"},
		{"stream without tables", ".logon h/u,p;\n.begin stream name s;"},
		{"unclosed stream", ".logon h/u,p;\n.begin stream name s tables T;"},
		{"empty stream block", ".logon h/u,p;\n.begin stream name s tables T;\n.dml label X;\nINSERT INTO T VALUES (1);\n.end stream;"},
		{"stream cmd outside block", ".logon h/u,p;\n.stream infile f layout L apply X;"},
		{"stream undefined layout", ".logon h/u,p;\n.begin stream name s tables T;\n.dml label X;\nINSERT INTO T VALUES (1);\n.stream infile f layout NOPE apply X;\n.end stream;"},
		{"stream undefined label", ".logon h/u,p;\n.layout L;\n.field A varchar(5);\n.begin stream name s tables T;\n.stream infile f layout L apply X;\n.end stream;"},
		{"end stream without begin", ".logon h/u,p;\n.end stream;"},
		{"nested begin in stream", ".logon h/u,p;\n.begin stream name s tables T;\n.begin import tables T;"},
		{"run inside stream", ".logon h/u,p;\n.begin stream name s tables T;\n.run SELECT 1;"},
		{"bad latency", ".logon h/u,p;\n.begin stream name s tables T latency soon;"},
	}
	for _, c := range bad {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestVartextDelimiterNotConfusedWithKeyword(t *testing.T) {
	// single-char layout name must not be eaten as delimiter
	s, err := Parse(`
.logon h/u,p;
.layout L;
.field A varchar(5);
.begin import tables T;
.dml label X;
insert into T values (:A);
.import infile f format vartext layout L apply X;
.end load;
`)
	if err != nil {
		t.Fatal(err)
	}
	imp := s.Steps[0].Import.Imports[0]
	if imp.Delim != '|' {
		t.Errorf("default delim: %q", imp.Delim)
	}
	if imp.LayoutName != "L" {
		t.Errorf("layout name eaten: %q", imp.LayoutName)
	}
}
