// Package etlscript parses the proprietary ETL job scripting language of §2
// (Example 2.1). A script declares a logon, one or more record layouts, and
// a sequence of import/export job blocks whose transformations are embedded
// SQL statements.
//
// Grammar sketch (statements end with ';'):
//
//	.logon host/user,password;
//	.layout NAME;
//	.field NAME type;                      -- repeats, attaches to the layout
//	.begin import tables TARGET
//	    errortables ET UV
//	    [sessions N] [maxerrors N] [maxretries N];
//	.dml label LABEL;
//	<SQL statement>;                       -- the DML for LABEL
//	.import infile FILE format vartext 'D' layout NAME apply LABEL;
//	.import infile FILE format indicator layout NAME apply LABEL;
//	.end load;
//	.begin export outfile FILE [format vartext 'D'] [sessions N];
//	<SELECT statement>;
//	.end export;
//	.begin stream name NAME tables TARGET
//	    [errortables ET] [latency MS] [maxerrors N];
//	.dml label LABEL;
//	<INSERT statement>;                    -- the apply DML for LABEL
//	.stream infile FILE format vartext 'D' layout NAME apply LABEL;
//	.end stream;
//	.run SQL;                              -- ad-hoc request outside blocks
//	.logoff;
//
// A stream block is the continuous-ingestion counterpart of an import block:
// the delta file carries CDC records, each line (or indicator record)
// prefixed with an op marker (I/U/D), and the client keeps the session open,
// feeding deltas as adaptively sized frames until the file is exhausted.
package etlscript

import (
	"fmt"
	"strconv"
	"strings"

	"etlvirt/internal/ltype"
	"etlvirt/internal/wire"
)

// Logon carries the credentials of the .logon command.
type Logon struct {
	Host     string
	User     string
	Password string
}

// ImportCmd is one .import command inside an import block.
type ImportCmd struct {
	Infile     string
	Format     wire.DataFormat
	Delim      byte
	LayoutName string
	ApplyLabel string
}

// ImportBlock is a .begin import ... .end load block.
type ImportBlock struct {
	Table      string
	ErrTableET string
	ErrTableUV string
	Sessions   int
	MaxErrors  int
	MaxRetries int
	DMLs       map[string]string // label -> SQL
	Imports    []ImportCmd
}

// ExportBlock is a .begin export ... .end export block.
type ExportBlock struct {
	Outfile  string
	Format   wire.DataFormat
	Delim    byte
	Sessions int
	Query    string
}

// StreamCmd is one .stream command inside a stream block.
type StreamCmd struct {
	Infile     string
	Format     wire.DataFormat
	Delim      byte
	LayoutName string
	ApplyLabel string
}

// StreamBlock is a .begin stream ... .end stream block.
type StreamBlock struct {
	Name       string // durable stream identity for checkpoint/resume
	Table      string
	ErrTableET string
	LatencyMS  int // micro-batch commit latency target; 0 = server default
	MaxErrors  int
	DMLs       map[string]string // label -> apply SQL
	Streams    []StreamCmd
}

// Step is one executable unit of a script, in order.
type Step struct {
	Import *ImportBlock
	Export *ExportBlock
	Stream *StreamBlock
	SQL    string // ad-hoc .run statement
}

// Script is a parsed ETL job script.
type Script struct {
	Logon   Logon
	Layouts map[string]*ltype.Layout
	Steps   []Step
}

// Layout resolves a layout by name.
func (s *Script) Layout(name string) (*ltype.Layout, error) {
	l, ok := s.Layouts[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("etlscript: undefined layout %q", name)
	}
	return l, nil
}

// Parse parses a script.
func Parse(src string) (*Script, error) {
	stmts, err := splitStatements(src)
	if err != nil {
		return nil, err
	}
	p := &parser{script: &Script{Layouts: make(map[string]*ltype.Layout)}}
	for _, st := range stmts {
		if err := p.statement(st); err != nil {
			return nil, err
		}
	}
	if err := p.finish(); err != nil {
		return nil, err
	}
	return p.script, nil
}

// splitStatements splits on top-level semicolons, honoring single-quoted
// strings (” escapes) and -- / block comments.
func splitStatements(src string) ([]string, error) {
	var out []string
	var cur strings.Builder
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\'':
			cur.WriteByte(c)
			i++
			for i < len(src) {
				cur.WriteByte(src[i])
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						i++
						cur.WriteByte(src[i])
					} else {
						break
					}
				}
				i++
			}
			if i >= len(src) {
				return nil, fmt.Errorf("etlscript: unterminated string")
			}
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				i++
			}
			if i+1 >= len(src) {
				return nil, fmt.Errorf("etlscript: unterminated comment")
			}
			i += 2
		case c == ';':
			s := strings.TrimSpace(cur.String())
			if s != "" {
				out = append(out, s)
			}
			cur.Reset()
			i++
		default:
			cur.WriteByte(c)
			i++
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		return nil, fmt.Errorf("etlscript: statement missing terminating ';': %.40q", s)
	}
	return out, nil
}

type parser struct {
	script *Script

	curLayout *ltype.Layout
	curImport *ImportBlock
	curExport *ExportBlock
	curStream *StreamBlock
	dmlLabel  string // set between ".dml label X" and its SQL statement
	sawLogon  bool
}

func (p *parser) statement(st string) error {
	if !strings.HasPrefix(st, ".") {
		return p.bareSQL(st)
	}
	fields := tokenize(st)
	cmd := strings.ToLower(fields[0])
	if cmd != ".field" && cmd != ".layout" {
		p.curLayout = nil // any other command ends a layout definition
	}
	switch cmd {
	case ".logon":
		return p.logon(st)
	case ".layout":
		return p.layout(fields)
	case ".field":
		return p.field(st, fields)
	case ".begin":
		return p.begin(fields)
	case ".dml":
		return p.dml(fields)
	case ".import":
		return p.importCmd(fields)
	case ".stream":
		return p.streamCmd(fields)
	case ".end":
		return p.end(fields)
	case ".run":
		sql := strings.TrimSpace(st[len(".run"):])
		if sql == "" {
			return fmt.Errorf("etlscript: .run requires a SQL statement")
		}
		if p.curImport != nil || p.curExport != nil || p.curStream != nil {
			return fmt.Errorf("etlscript: .run not allowed inside a job block")
		}
		p.script.Steps = append(p.script.Steps, Step{SQL: sql})
		return nil
	case ".logoff":
		return nil
	default:
		return fmt.Errorf("etlscript: unknown command %q", fields[0])
	}
}

// tokenize splits a command into whitespace-separated tokens, keeping
// single-quoted tokens intact (without the quotes).
func tokenize(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r') {
			i++
		}
		if i >= len(s) {
			break
		}
		if s[i] == '\'' {
			j := i + 1
			var sb strings.Builder
			for j < len(s) {
				if s[j] == '\'' {
					if j+1 < len(s) && s[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(s[j])
				j++
			}
			out = append(out, sb.String())
			i = j + 1
			continue
		}
		j := i
		for j < len(s) && s[j] != ' ' && s[j] != '\t' && s[j] != '\n' && s[j] != '\r' {
			j++
		}
		out = append(out, s[i:j])
		i = j
	}
	return out
}

func (p *parser) logon(st string) error {
	if p.sawLogon {
		return fmt.Errorf("etlscript: duplicate .logon")
	}
	rest := strings.TrimSpace(st[len(".logon"):])
	slash := strings.IndexByte(rest, '/')
	comma := strings.IndexByte(rest, ',')
	if slash < 0 || comma < slash {
		return fmt.Errorf("etlscript: .logon expects host/user,password")
	}
	p.script.Logon = Logon{
		Host:     strings.TrimSpace(rest[:slash]),
		User:     strings.TrimSpace(rest[slash+1 : comma]),
		Password: strings.TrimSpace(rest[comma+1:]),
	}
	p.sawLogon = true
	return nil
}

func (p *parser) layout(fields []string) error {
	if len(fields) != 2 {
		return fmt.Errorf("etlscript: .layout expects a name")
	}
	name := fields[1]
	key := strings.ToLower(name)
	if _, dup := p.script.Layouts[key]; dup {
		return fmt.Errorf("etlscript: duplicate layout %q", name)
	}
	l := &ltype.Layout{Name: name}
	p.script.Layouts[key] = l
	p.curLayout = l
	return nil
}

func (p *parser) field(st string, fields []string) error {
	// .field is only valid directly after .layout/.field; restore curLayout
	// cleared by statement() for other commands.
	if len(fields) < 3 {
		return fmt.Errorf("etlscript: .field expects a name and a type")
	}
	if p.curLayout == nil {
		return fmt.Errorf("etlscript: .field outside a .layout")
	}
	name := fields[1]
	typeStr := strings.TrimSpace(st[strings.Index(st, name)+len(name):])
	ty, err := ltype.ParseTypeName(typeStr)
	if err != nil {
		return err
	}
	p.curLayout.Fields = append(p.curLayout.Fields, ltype.Field{Name: name, Type: ty})
	return nil
}

func (p *parser) begin(fields []string) error {
	if len(fields) < 2 {
		return fmt.Errorf("etlscript: .begin expects import or export")
	}
	if p.curImport != nil || p.curExport != nil || p.curStream != nil {
		return fmt.Errorf("etlscript: nested .begin")
	}
	switch strings.ToLower(fields[1]) {
	case "import":
		return p.beginImport(fields[2:])
	case "export":
		return p.beginExport(fields[2:])
	case "stream":
		return p.beginStream(fields[2:])
	default:
		return fmt.Errorf("etlscript: .begin %q not recognized", fields[1])
	}
}

func (p *parser) beginStream(args []string) error {
	blk := &StreamBlock{DMLs: make(map[string]string)}
	i := 0
	for i < len(args) {
		switch strings.ToLower(args[i]) {
		case "name":
			if i+1 >= len(args) {
				return fmt.Errorf("etlscript: name requires a value")
			}
			blk.Name = args[i+1]
			i += 2
		case "tables":
			if i+1 >= len(args) {
				return fmt.Errorf("etlscript: tables requires a name")
			}
			blk.Table = args[i+1]
			i += 2
		case "errortables":
			// A stream has one error table (ET); CDC apply surfaces key
			// collisions as updates, so there is no UV table.
			if i+1 >= len(args) {
				return fmt.Errorf("etlscript: errortables requires a name")
			}
			blk.ErrTableET = args[i+1]
			i += 2
		case "latency":
			n, err := argInt(args, i, "latency")
			if err != nil {
				return err
			}
			blk.LatencyMS = n
			i += 2
		case "maxerrors":
			n, err := argInt(args, i, "maxerrors")
			if err != nil {
				return err
			}
			blk.MaxErrors = n
			i += 2
		default:
			return fmt.Errorf("etlscript: unknown .begin stream option %q", args[i])
		}
	}
	if blk.Name == "" {
		return fmt.Errorf("etlscript: .begin stream requires name (the durable checkpoint identity)")
	}
	if blk.Table == "" {
		return fmt.Errorf("etlscript: .begin stream requires tables")
	}
	p.curStream = blk
	return nil
}

func (p *parser) beginImport(args []string) error {
	blk := &ImportBlock{DMLs: make(map[string]string)}
	i := 0
	for i < len(args) {
		switch strings.ToLower(args[i]) {
		case "tables":
			if i+1 >= len(args) {
				return fmt.Errorf("etlscript: tables requires a name")
			}
			blk.Table = args[i+1]
			i += 2
		case "errortables":
			if i+2 >= len(args) {
				return fmt.Errorf("etlscript: errortables requires two names")
			}
			blk.ErrTableET, blk.ErrTableUV = args[i+1], args[i+2]
			i += 3
		case "sessions":
			n, err := argInt(args, i, "sessions")
			if err != nil {
				return err
			}
			blk.Sessions = n
			i += 2
		case "maxerrors":
			n, err := argInt(args, i, "maxerrors")
			if err != nil {
				return err
			}
			blk.MaxErrors = n
			i += 2
		case "maxretries":
			n, err := argInt(args, i, "maxretries")
			if err != nil {
				return err
			}
			blk.MaxRetries = n
			i += 2
		default:
			return fmt.Errorf("etlscript: unknown .begin import option %q", args[i])
		}
	}
	if blk.Table == "" {
		return fmt.Errorf("etlscript: .begin import requires tables")
	}
	p.curImport = blk
	return nil
}

func (p *parser) beginExport(args []string) error {
	blk := &ExportBlock{Format: wire.FormatVartext, Delim: '|'}
	i := 0
	for i < len(args) {
		switch strings.ToLower(args[i]) {
		case "outfile":
			if i+1 >= len(args) {
				return fmt.Errorf("etlscript: outfile requires a name")
			}
			blk.Outfile = args[i+1]
			i += 2
		case "format":
			if i+1 >= len(args) {
				return fmt.Errorf("etlscript: format requires a value")
			}
			switch strings.ToLower(args[i+1]) {
			case "vartext":
				blk.Format = wire.FormatVartext
				i += 2
				if i < len(args) && len(args[i]) == 1 && !isKeywordArg(args[i]) {
					blk.Delim = args[i][0]
					i++
				}
			case "indicator":
				blk.Format = wire.FormatIndicator
				i += 2
			default:
				return fmt.Errorf("etlscript: unknown format %q", args[i+1])
			}
		case "sessions":
			n, err := argInt(args, i, "sessions")
			if err != nil {
				return err
			}
			blk.Sessions = n
			i += 2
		default:
			return fmt.Errorf("etlscript: unknown .begin export option %q", args[i])
		}
	}
	if blk.Outfile == "" {
		return fmt.Errorf("etlscript: .begin export requires outfile")
	}
	p.curExport = blk
	return nil
}

func isKeywordArg(s string) bool {
	switch strings.ToLower(s) {
	case "sessions", "outfile", "format":
		return true
	}
	return false
}

func argInt(args []string, i int, name string) (int, error) {
	if i+1 >= len(args) {
		return 0, fmt.Errorf("etlscript: %s requires a number", name)
	}
	n, err := strconv.Atoi(args[i+1])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("etlscript: bad %s value %q", name, args[i+1])
	}
	return n, nil
}

func (p *parser) dml(fields []string) error {
	dmls := p.blockDMLs()
	if dmls == nil {
		return fmt.Errorf("etlscript: .dml outside an import or stream block")
	}
	if len(fields) != 3 || strings.ToLower(fields[1]) != "label" {
		return fmt.Errorf("etlscript: .dml expects 'label NAME'")
	}
	if p.dmlLabel != "" {
		return fmt.Errorf("etlscript: .dml label %s has no SQL", p.dmlLabel)
	}
	label := fields[2]
	if _, dup := dmls[strings.ToLower(label)]; dup {
		return fmt.Errorf("etlscript: duplicate DML label %q", label)
	}
	p.dmlLabel = label
	return nil
}

// blockDMLs is the label->SQL map of the open import or stream block, nil
// when neither is open.
func (p *parser) blockDMLs() map[string]string {
	switch {
	case p.curImport != nil:
		return p.curImport.DMLs
	case p.curStream != nil:
		return p.curStream.DMLs
	}
	return nil
}

func (p *parser) bareSQL(st string) error {
	switch {
	case p.dmlLabel != "":
		p.blockDMLs()[strings.ToLower(p.dmlLabel)] = st
		p.dmlLabel = ""
		return nil
	case p.curExport != nil:
		if p.curExport.Query != "" {
			return fmt.Errorf("etlscript: export block has multiple queries")
		}
		p.curExport.Query = st
		return nil
	default:
		return fmt.Errorf("etlscript: unexpected SQL outside .dml/.begin export: %.40q", st)
	}
}

func (p *parser) importCmd(fields []string) error {
	if p.curImport == nil {
		return fmt.Errorf("etlscript: .import outside an import block")
	}
	cmd := ImportCmd{Format: wire.FormatVartext, Delim: '|'}
	i := 1
	for i < len(fields) {
		switch strings.ToLower(fields[i]) {
		case "infile":
			if i+1 >= len(fields) {
				return fmt.Errorf("etlscript: infile requires a name")
			}
			cmd.Infile = fields[i+1]
			i += 2
		case "format":
			if i+1 >= len(fields) {
				return fmt.Errorf("etlscript: format requires a value")
			}
			switch strings.ToLower(fields[i+1]) {
			case "vartext":
				cmd.Format = wire.FormatVartext
				i += 2
				if i < len(fields) && len(fields[i]) == 1 && !isImportKeyword(fields[i]) {
					cmd.Delim = fields[i][0]
					i++
				}
			case "indicator":
				cmd.Format = wire.FormatIndicator
				i += 2
			default:
				return fmt.Errorf("etlscript: unknown format %q", fields[i+1])
			}
		case "layout":
			if i+1 >= len(fields) {
				return fmt.Errorf("etlscript: layout requires a name")
			}
			cmd.LayoutName = fields[i+1]
			i += 2
		case "apply":
			if i+1 >= len(fields) {
				return fmt.Errorf("etlscript: apply requires a label")
			}
			cmd.ApplyLabel = fields[i+1]
			i += 2
		default:
			return fmt.Errorf("etlscript: unknown .import option %q", fields[i])
		}
	}
	if cmd.Infile == "" || cmd.LayoutName == "" || cmd.ApplyLabel == "" {
		return fmt.Errorf("etlscript: .import requires infile, layout and apply")
	}
	if _, ok := p.script.Layouts[strings.ToLower(cmd.LayoutName)]; !ok {
		return fmt.Errorf("etlscript: .import references undefined layout %q", cmd.LayoutName)
	}
	if _, ok := p.curImport.DMLs[strings.ToLower(cmd.ApplyLabel)]; !ok {
		return fmt.Errorf("etlscript: .import references undefined DML label %q", cmd.ApplyLabel)
	}
	p.curImport.Imports = append(p.curImport.Imports, cmd)
	return nil
}

func isImportKeyword(s string) bool {
	switch strings.ToLower(s) {
	case "layout", "apply", "infile", "format":
		return true
	}
	return false
}

func (p *parser) streamCmd(fields []string) error {
	if p.curStream == nil {
		return fmt.Errorf("etlscript: .stream outside a stream block")
	}
	cmd := StreamCmd{Format: wire.FormatVartext, Delim: '|'}
	i := 1
	for i < len(fields) {
		switch strings.ToLower(fields[i]) {
		case "infile":
			if i+1 >= len(fields) {
				return fmt.Errorf("etlscript: infile requires a name")
			}
			cmd.Infile = fields[i+1]
			i += 2
		case "format":
			if i+1 >= len(fields) {
				return fmt.Errorf("etlscript: format requires a value")
			}
			switch strings.ToLower(fields[i+1]) {
			case "vartext":
				cmd.Format = wire.FormatVartext
				i += 2
				if i < len(fields) && len(fields[i]) == 1 && !isImportKeyword(fields[i]) {
					cmd.Delim = fields[i][0]
					i++
				}
			case "indicator":
				cmd.Format = wire.FormatIndicator
				i += 2
			default:
				return fmt.Errorf("etlscript: unknown format %q", fields[i+1])
			}
		case "layout":
			if i+1 >= len(fields) {
				return fmt.Errorf("etlscript: layout requires a name")
			}
			cmd.LayoutName = fields[i+1]
			i += 2
		case "apply":
			if i+1 >= len(fields) {
				return fmt.Errorf("etlscript: apply requires a label")
			}
			cmd.ApplyLabel = fields[i+1]
			i += 2
		default:
			return fmt.Errorf("etlscript: unknown .stream option %q", fields[i])
		}
	}
	if cmd.Infile == "" || cmd.LayoutName == "" || cmd.ApplyLabel == "" {
		return fmt.Errorf("etlscript: .stream requires infile, layout and apply")
	}
	if _, ok := p.script.Layouts[strings.ToLower(cmd.LayoutName)]; !ok {
		return fmt.Errorf("etlscript: .stream references undefined layout %q", cmd.LayoutName)
	}
	if _, ok := p.curStream.DMLs[strings.ToLower(cmd.ApplyLabel)]; !ok {
		return fmt.Errorf("etlscript: .stream references undefined DML label %q", cmd.ApplyLabel)
	}
	p.curStream.Streams = append(p.curStream.Streams, cmd)
	return nil
}

func (p *parser) end(fields []string) error {
	if len(fields) != 2 {
		return fmt.Errorf("etlscript: .end expects load, export or stream")
	}
	switch strings.ToLower(fields[1]) {
	case "load":
		if p.curImport == nil {
			return fmt.Errorf("etlscript: .end load without .begin import")
		}
		if p.dmlLabel != "" {
			return fmt.Errorf("etlscript: .dml label %s has no SQL", p.dmlLabel)
		}
		if len(p.curImport.Imports) == 0 {
			return fmt.Errorf("etlscript: import block has no .import command")
		}
		p.script.Steps = append(p.script.Steps, Step{Import: p.curImport})
		p.curImport = nil
		return nil
	case "export":
		if p.curExport == nil {
			return fmt.Errorf("etlscript: .end export without .begin export")
		}
		if p.curExport.Query == "" {
			return fmt.Errorf("etlscript: export block has no query")
		}
		p.script.Steps = append(p.script.Steps, Step{Export: p.curExport})
		p.curExport = nil
		return nil
	case "stream":
		if p.curStream == nil {
			return fmt.Errorf("etlscript: .end stream without .begin stream")
		}
		if p.dmlLabel != "" {
			return fmt.Errorf("etlscript: .dml label %s has no SQL", p.dmlLabel)
		}
		if len(p.curStream.Streams) == 0 {
			return fmt.Errorf("etlscript: stream block has no .stream command")
		}
		p.script.Steps = append(p.script.Steps, Step{Stream: p.curStream})
		p.curStream = nil
		return nil
	default:
		return fmt.Errorf("etlscript: .end %q not recognized", fields[1])
	}
}

func (p *parser) finish() error {
	if p.curImport != nil {
		return fmt.Errorf("etlscript: import block not closed with .end load")
	}
	if p.curExport != nil {
		return fmt.Errorf("etlscript: export block not closed with .end export")
	}
	if p.curStream != nil {
		return fmt.Errorf("etlscript: stream block not closed with .end stream")
	}
	if !p.sawLogon {
		return fmt.Errorf("etlscript: script has no .logon")
	}
	for _, l := range p.script.Layouts {
		if err := l.Validate(); err != nil {
			return err
		}
	}
	return nil
}
