package ltype

import (
	"bytes"
	"fmt"
	"strings"
)

// Vartext is the delimiter-separated text record format of legacy load
// utilities ("FORMAT VARTEXT '|'"). Every field is transported as text; an
// empty field denotes NULL. A backslash escapes the delimiter, backslash
// itself, and newline inside field data.
//
// Vartext input requires every layout field to be a character type; the
// legacy client rejects scripts that declare numeric fields for vartext
// files, mirroring the real utilities.

// VartextRecord splits one vartext line into raw field strings, honoring
// backslash escapes. It does not validate against a layout.
func VartextRecord(line string, delim byte) []string {
	var fields []string
	var cur strings.Builder
	esc := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case esc:
			cur.WriteByte(c)
			esc = false
		case c == '\\':
			esc = true
		case c == delim:
			fields = append(fields, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if esc {
		cur.WriteByte('\\') // trailing lone backslash is literal
	}
	fields = append(fields, cur.String())
	return fields
}

// AppendVartext appends the vartext encoding of the raw field strings to dst
// with the given delimiter and a trailing newline.
func AppendVartext(dst []byte, fields []string, delim byte) []byte {
	for i, f := range fields {
		if i > 0 {
			dst = append(dst, delim)
		}
		for j := 0; j < len(f); j++ {
			c := f[j]
			if c == delim || c == '\\' || c == '\n' {
				dst = append(dst, '\\')
			}
			dst = append(dst, c)
		}
	}
	return append(dst, '\n')
}

// ParseVartextRecord converts one vartext line into a Record for the layout.
// The field count must match the layout exactly; this is the classic "wrong
// number of fields" data error of §7.
func ParseVartextRecord(line string, delim byte, layout *Layout) (Record, error) {
	fields := VartextRecord(line, delim)
	if len(fields) != len(layout.Fields) {
		return nil, fmt.Errorf("ltype: vartext record has %d fields, layout %q expects %d",
			len(fields), layout.Name, len(layout.Fields))
	}
	rec := make(Record, len(fields))
	for i, f := range layout.Fields {
		v, err := ParseText(fields[i], f.Type)
		if err != nil {
			return nil, fmt.Errorf("ltype: field %q: %w", f.Name, err)
		}
		rec[i] = v
	}
	return rec, nil
}

// ValidateVartextLayout checks that a layout is usable with vartext input:
// every field must be CHAR or VARCHAR.
func ValidateVartextLayout(layout *Layout) error {
	for _, f := range layout.Fields {
		if f.Type.Kind != KindChar && f.Type.Kind != KindVarChar {
			return fmt.Errorf("ltype: vartext layout %q: field %q has non-character type %s",
				layout.Name, f.Name, f.Type)
		}
	}
	return nil
}

// SplitVartextLines splits file contents into lines, tolerating a missing
// final newline and both \n and \r\n line endings. Escaped newlines inside a
// field (backslash immediately before the newline) do not split.
func SplitVartextLines(data []byte) []string {
	var lines []string
	start := 0
	for i := 0; i < len(data); i++ {
		if data[i] != '\n' {
			continue
		}
		// Count the run of backslashes immediately preceding the newline; an
		// odd count means the newline is escaped.
		bs := 0
		for j := i - 1; j >= start && data[j] == '\\'; j-- {
			bs++
		}
		if bs%2 == 1 {
			continue
		}
		line := data[start:i]
		line = bytes.TrimSuffix(line, []byte{'\r'})
		lines = append(lines, string(line))
		start = i + 1
	}
	if start < len(data) {
		line := bytes.TrimSuffix(data[start:], []byte{'\r'})
		lines = append(lines, string(line))
	}
	return lines
}
