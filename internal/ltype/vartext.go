package ltype

import (
	"fmt"
	"strings"
)

// Vartext is the delimiter-separated text record format of legacy load
// utilities ("FORMAT VARTEXT '|'"). Every field is transported as text; an
// empty field denotes NULL. A backslash escapes the delimiter, backslash
// itself, and newline inside field data.
//
// Vartext input requires every layout field to be a character type; the
// legacy client rejects scripts that declare numeric fields for vartext
// files, mirroring the real utilities.

// VartextScratch holds reusable buffers for vartext field splitting. The
// zero value is ready to use; reusing one scratch across calls keeps the
// per-line split allocation-free once the buffers have grown.
type VartextScratch struct {
	fields []string
	esc    []byte
}

// VartextRecord splits one vartext line into raw field strings, honoring
// backslash escapes. It does not validate against a layout. Hot-path
// callers use vartextFieldsInto via ParseVartextRecordInto instead.
func VartextRecord(line string, delim byte) []string {
	var sc VartextScratch
	fields := vartextFieldsInto(&sc, line, delim)
	out := make([]string, len(fields))
	copy(out, fields)
	return out
}

// vartextFieldsInto splits line into sc.fields and returns it. Lines with
// no escapes — the overwhelming majority — split by slicing line itself, so
// the returned strings alias line's memory and the call allocates nothing
// once sc.fields has grown to the field count.
//
//etlvirt:hotpath
func vartextFieldsInto(sc *VartextScratch, line string, delim byte) []string {
	sc.fields = sc.fields[:0]
	if strings.IndexByte(line, '\\') < 0 {
		start := 0
		for i := 0; i < len(line); i++ {
			if line[i] == delim {
				sc.fields = append(sc.fields, line[start:i])
				start = i + 1
			}
		}
		sc.fields = append(sc.fields, line[start:])
		return sc.fields
	}
	return vartextFieldsSlow(sc, line, delim)
}

// vartextFieldsSlow handles lines containing backslash escapes. Unescaped
// bytes are built in sc.esc, but each field still materializes as its own
// string — acceptable, since escaped lines are rare.
func vartextFieldsSlow(sc *VartextScratch, line string, delim byte) []string {
	buf := sc.esc[:0]
	start := 0 // index in buf where the current field begins
	esc := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case esc:
			buf = append(buf, c)
			esc = false
		case c == '\\':
			esc = true
		case c == delim:
			sc.fields = append(sc.fields, string(buf[start:]))
			start = len(buf)
		default:
			buf = append(buf, c)
		}
	}
	if esc {
		buf = append(buf, '\\') // trailing lone backslash is literal
	}
	sc.fields = append(sc.fields, string(buf[start:]))
	sc.esc = buf
	return sc.fields
}

// AppendVartext appends the vartext encoding of the raw field strings to dst
// with the given delimiter and a trailing newline.
func AppendVartext(dst []byte, fields []string, delim byte) []byte {
	for i, f := range fields {
		if i > 0 {
			dst = append(dst, delim)
		}
		for j := 0; j < len(f); j++ {
			c := f[j]
			if c == delim || c == '\\' || c == '\n' {
				dst = append(dst, '\\')
			}
			dst = append(dst, c)
		}
	}
	return append(dst, '\n')
}

// ParseVartextRecord converts one vartext line into a Record for the layout.
// The field count must match the layout exactly; this is the classic "wrong
// number of fields" data error of §7. Hot-path callers use
// ParseVartextRecordInto, which reuses caller-provided scratch.
func ParseVartextRecord(line string, delim byte, layout *Layout) (Record, error) {
	rec := make(Record, len(layout.Fields))
	var sc VartextScratch
	if err := ParseVartextRecordInto(rec, line, delim, layout, &sc); err != nil {
		return nil, err
	}
	return rec, nil
}

// ParseVartextRecordInto parses one vartext line into rec, which must have
// exactly len(layout.Fields) values, reusing sc's split buffers. On the
// common escape-free line the parsed string values alias line's memory and
// the call performs no allocation; the caller must consume or copy rec
// before reusing it or mutating line's backing storage.
//
//etlvirt:hotpath
func ParseVartextRecordInto(rec Record, line string, delim byte, layout *Layout, sc *VartextScratch) error {
	if len(rec) != len(layout.Fields) {
		return errScratchSize(len(rec), layout)
	}
	fields := vartextFieldsInto(sc, line, delim)
	if len(fields) != len(layout.Fields) {
		return errVartextFieldCount(len(fields), layout)
	}
	for i := range layout.Fields {
		v, err := ParseText(fields[i], layout.Fields[i].Type)
		if err != nil {
			return errField(layout.Fields[i].Name, err)
		}
		rec[i] = v
	}
	return nil
}

func errVartextFieldCount(n int, layout *Layout) error {
	return fmt.Errorf("ltype: vartext record has %d fields, layout %q expects %d",
		n, layout.Name, len(layout.Fields))
}

// ValidateVartextLayout checks that a layout is usable with vartext input:
// every field must be CHAR or VARCHAR.
func ValidateVartextLayout(layout *Layout) error {
	for _, f := range layout.Fields {
		if f.Type.Kind != KindChar && f.Type.Kind != KindVarChar {
			return fmt.Errorf("ltype: vartext layout %q: field %q has non-character type %s",
				layout.Name, f.Name, f.Type)
		}
	}
	return nil
}

// SplitVartextLines splits file contents into lines, tolerating a missing
// final newline and both \n and \r\n line endings. Escaped newlines inside a
// field (backslash immediately before the newline) do not split. Hot-path
// callers iterate with NextVartextLine instead of materializing the slice.
func SplitVartextLines(data []byte) []string {
	var lines []string
	s := string(data) // one copy; the returned lines alias it
	for pos := 0; pos < len(s); {
		line, next, ok := NextVartextLine(s, pos)
		if !ok {
			break
		}
		lines = append(lines, line)
		pos = next
	}
	return lines
}

// NextVartextLine returns the vartext line starting at pos in data, the
// position of the following line, and whether a line was present (false
// only when pos is at or past the end). The returned line aliases data,
// has any trailing \r removed, and honors escaped newlines exactly like
// SplitVartextLines.
//
//etlvirt:hotpath
func NextVartextLine(data string, pos int) (line string, next int, ok bool) {
	if pos >= len(data) {
		return "", pos, false
	}
	start := pos
	for i := pos; i < len(data); i++ {
		if data[i] != '\n' {
			continue
		}
		// Count the run of backslashes immediately preceding the newline; an
		// odd count means the newline is escaped.
		bs := 0
		for j := i - 1; j >= start && data[j] == '\\'; j-- {
			bs++
		}
		if bs%2 == 1 {
			continue
		}
		return strings.TrimSuffix(data[start:i], "\r"), i + 1, true
	}
	return strings.TrimSuffix(data[start:], "\r"), len(data), true
}
