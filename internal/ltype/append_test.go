package ltype

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestAppendTextMatchesFmt pins the append codecs to the fmt-based
// formatting they replaced: AppendText must produce byte-identical output
// for every kind, including the sign-handling corners of zero-padded
// date/time rendering.
func TestAppendTextMatchesFmt(t *testing.T) {
	cases := []Value{
		IntValue(KindByteInt, -128),
		IntValue(KindSmallInt, 32767),
		IntValue(KindInteger, -2147483648),
		IntValue(KindBigInt, math.MaxInt64),
		IntValue(KindBigInt, math.MinInt64),
		FloatValue(0),
		FloatValue(-1.5e300),
		FloatValue(math.Inf(1)),
		FloatValue(math.NaN()),
		StringValue(KindChar, "hello"),
		StringValue(KindVarChar, "with,comma"),
		StringValue(KindTimestamp, "2024-01-02 03:04:05.000000"),
		DateValue(2024, 2, 29),
		DateValue(1900, 1, 1),
		IntValue(KindTime, 0),
		IntValue(KindTime, 23*3600+59*60+59),
		BytesValue(KindByte, []byte{0x00, 0xAB, 0xFF}),
		BytesValue(KindVarByte, nil),
		NullValue(KindInteger),
		NullValue(KindVarChar),
	}
	for _, v := range cases {
		got := string(v.AppendText(nil))
		if got != v.Text() {
			t.Errorf("%s: AppendText = %q, Text = %q", v.Kind, got, v.Text())
		}
	}

	// Reference renderings fmt would have produced, pinned explicitly.
	refs := []struct {
		v    Value
		want string
	}{
		{DateValue(2024, 2, 29), "2024-02-29"},
		{DateValue(999, 1, 5), "0999-01-05"},
		{IntValue(KindTime, 3661), "01:01:01"},
		{BytesValue(KindByte, []byte{0x0F, 0xA0}), "0FA0"},
		{IntValue(KindBigInt, math.MinInt64), "-9223372036854775808"},
	}
	for _, c := range refs {
		if got := string(c.v.AppendText(nil)); got != c.want {
			t.Errorf("AppendText(%s) = %q, want %q", c.v.Kind, got, c.want)
		}
	}
}

// TestAppendDecimalMatchesFormatDecimal sweeps scales and magnitudes,
// including the negative and leading-zero corners.
func TestAppendDecimalMatchesFormatDecimal(t *testing.T) {
	vals := []int64{0, 1, -1, 5, -5, 99, 100, -100, 12345, -12345,
		math.MaxInt64, math.MinInt64, math.MinInt64 + 1}
	for _, u := range vals {
		for scale := 0; scale <= 6; scale++ {
			want := FormatDecimal(u, scale)
			got := string(AppendDecimal(nil, u, scale))
			if got != want {
				t.Errorf("AppendDecimal(%d, %d) = %q, want %q", u, scale, got, want)
			}
		}
	}
}

// TestAppendZeroPadded pins the %0*d semantics including negatives, where
// the sign counts toward the total width.
func TestAppendZeroPadded(t *testing.T) {
	cases := []struct {
		v     int64
		width int
	}{
		{0, 2}, {5, 2}, {42, 2}, {123, 2}, {7, 4}, {-7, 4}, {-123, 2},
		{math.MinInt64, 4}, {9999, 4},
	}
	for _, c := range cases {
		want := fmt.Sprintf("%0*d", c.width, c.v)
		got := string(appendZeroPadded(nil, c.v, c.width))
		if got != want {
			t.Errorf("appendZeroPadded(%d, %d) = %q, want %q", c.v, c.width, got, want)
		}
	}
}

// TestDecodeRecordIntoMatchesDecodeRecord round-trips randomized records
// through both decoders and requires identical values (modulo the
// documented DECIMAL difference: the Into variant leaves S empty).
func TestDecodeRecordIntoMatchesDecodeRecord(t *testing.T) {
	layout := &Layout{Name: "L", Fields: []Field{
		{Name: "A", Type: Simple(KindInteger)},
		{Name: "B", Type: VarChar(20)},
		{Name: "C", Type: Char(8)},
		{Name: "D", Type: Decimal(12, 3)},
		{Name: "E", Type: Simple(KindFloat)},
		{Name: "F", Type: Simple(KindDate)},
		{Name: "G", Type: Type{Kind: KindVarByte, Length: 16}},
	}}
	rng := rand.New(rand.NewSource(42))
	scratch := make(Record, len(layout.Fields))
	for i := 0; i < 200; i++ {
		rec := Record{
			IntValue(KindInteger, int64(int32(rng.Int63()))),
			StringValue(KindVarChar, strings.Repeat("x", rng.Intn(20))),
			StringValue(KindChar, "abc"),
			IntValue(KindDecimal, rng.Int63n(1e12)-5e11),
			FloatValue(rng.NormFloat64()),
			DateValue(1900+rng.Intn(300), 1+rng.Intn(12), 1+rng.Intn(28)),
			BytesValue(KindVarByte, []byte{byte(i), byte(i >> 8)}),
		}
		rec[3].S = FormatDecimal(rec[3].I, 3)
		if i%3 == 0 {
			rec[rng.Intn(len(rec))] = NullValue(layout.Fields[rng.Intn(len(rec))].Type.Kind)
			// re-pick so the null's kind matches its slot
			for f := range rec {
				if rec[f].Null {
					rec[f] = NullValue(layout.Fields[f].Type.Kind)
				}
			}
		}
		buf, err := EncodeRecord(nil, layout, rec)
		if err != nil {
			t.Fatal(err)
		}
		want, n1, err := DecodeRecord(buf, layout)
		if err != nil {
			t.Fatal(err)
		}
		n2, err := DecodeRecordInto(scratch, string(buf), layout)
		if err != nil {
			t.Fatal(err)
		}
		if n1 != n2 {
			t.Fatalf("consumed %d vs %d bytes", n1, n2)
		}
		for f := range want {
			w, g := want[f], scratch[f]
			if g.Kind == KindDecimal && !g.Null {
				if g.S != "" {
					t.Errorf("field %d: DecodeRecordInto materialized decimal S %q", f, g.S)
				}
				g.S = FormatDecimal(g.I, layout.Fields[f].Type.Scale)
			}
			if !w.Equal(g) || w.S != g.S {
				t.Errorf("field %d: DecodeRecord %+v vs Into %+v", f, w, g)
			}
		}
	}
}

// TestDecodeRecordIntoScratchReuse checks that reusing one scratch across
// records does not leak values between rows, including B capacity reuse.
func TestDecodeRecordIntoScratchReuse(t *testing.T) {
	layout := &Layout{Name: "L", Fields: []Field{
		{Name: "S", Type: VarChar(10)},
		{Name: "B", Type: Type{Kind: KindVarByte, Length: 8}},
	}}
	first := Record{StringValue(KindVarChar, "aaaa"), BytesValue(KindVarByte, []byte{1, 2, 3, 4})}
	second := Record{NullValue(KindVarChar), BytesValue(KindVarByte, []byte{9})}
	buf, err := EncodeRecord(nil, layout, first)
	if err != nil {
		t.Fatal(err)
	}
	buf, err = EncodeRecord(buf, layout, second)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make(Record, 2)
	n, err := DecodeRecordInto(scratch, string(buf), layout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRecordInto(scratch, string(buf[n:]), layout); err != nil {
		t.Fatal(err)
	}
	if !scratch[0].Null || scratch[0].S != "" {
		t.Errorf("scratch[0] leaked previous row: %+v", scratch[0])
	}
	if string(scratch[1].B) != "\x09" {
		t.Errorf("scratch[1].B = %v, want [9]", scratch[1].B)
	}
}

// TestDecodeRecordIntoScratchSize pins the scratch-size guard.
func TestDecodeRecordIntoScratchSize(t *testing.T) {
	layout := &Layout{Name: "L", Fields: []Field{{Name: "A", Type: Simple(KindInteger)}}}
	if _, err := DecodeRecordInto(make(Record, 2), "", layout); err == nil {
		t.Fatal("expected scratch-size error")
	}
}

// TestParseVartextRecordIntoMatches compares the scratch parser against the
// allocating one, across escapes and error cases.
func TestParseVartextRecordIntoMatches(t *testing.T) {
	layout := &Layout{Name: "V", Fields: []Field{
		{Name: "A", Type: VarChar(30)},
		{Name: "B", Type: VarChar(30)},
		{Name: "C", Type: Char(10)},
	}}
	lines := []string{
		"a|b|c",
		"||",
		`esc\|aped|plain|x`,
		`back\\slash|a|b`,
		"trailing|lone|bs\\",
		"too|few",
		"too|many|fields|here",
		strings.Repeat("y", 40) + "|a|b", // overlong field -> parse error
	}
	scratch := make(Record, len(layout.Fields))
	var sc VartextScratch
	for _, line := range lines {
		want, wantErr := ParseVartextRecord(line, '|', layout)
		gotErr := ParseVartextRecordInto(scratch, line, '|', layout, &sc)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%q: error mismatch: %v vs %v", line, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Errorf("%q: error text %q vs %q", line, wantErr, gotErr)
			}
			continue
		}
		for f := range want {
			if !want[f].Equal(scratch[f]) {
				t.Errorf("%q field %d: %+v vs %+v", line, f, want[f], scratch[f])
			}
		}
	}
}

// TestNextVartextLineMatchesSplit iterates inputs with every line-ending
// and escape corner and requires NextVartextLine to visit exactly the lines
// SplitVartextLines returns.
func TestNextVartextLineMatchesSplit(t *testing.T) {
	inputs := []string{
		"",
		"a",
		"a\n",
		"a\nb",
		"a\r\nb\r\n",
		"a\\\nb\nc",     // escaped newline joins a and b
		"a\\\\\nb",      // even backslash run: newline splits
		"\n\n",          // empty lines
		"x\\\r\ny\n",    // escaped \r\n — the backslash escapes the newline
		"last no eol\r", // trailing \r without newline
	}
	for _, in := range inputs {
		want := SplitVartextLines([]byte(in))
		var got []string
		for pos := 0; pos < len(in); {
			line, next, ok := NextVartextLine(in, pos)
			if !ok {
				break
			}
			got = append(got, line)
			pos = next
		}
		if len(got) != len(want) {
			t.Fatalf("%q: %d lines vs %d (%q vs %q)", in, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%q line %d: %q vs %q", in, i, got[i], want[i])
			}
		}
	}
}

// TestAppendTextAllocFree pins the codec itself to zero allocations when
// the destination has capacity.
func TestAppendTextAllocFree(t *testing.T) {
	v := DateValue(2024, 6, 15)
	dst := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		dst = v.AppendText(dst[:0])
	})
	if allocs != 0 {
		t.Errorf("AppendText allocates %.1f per call, want 0", allocs)
	}
}
