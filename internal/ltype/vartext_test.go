package ltype

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVartextRecord(t *testing.T) {
	cases := []struct {
		line string
		want []string
	}{
		{"123|Smith|2012-01-01", []string{"123", "Smith", "2012-01-01"}},
		{"a||c", []string{"a", "", "c"}},
		{"", []string{""}},
		{"|", []string{"", ""}},
		{`a\|b|c`, []string{"a|b", "c"}},
		{`a\\|b`, []string{`a\`, "b"}},
		{`trailing\`, []string{`trailing\`}},
	}
	for _, c := range cases {
		got := VartextRecord(c.line, '|')
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("VartextRecord(%q) = %#v, want %#v", c.line, got, c.want)
		}
	}
}

func TestAppendVartextRoundTrip(t *testing.T) {
	fields := []string{"plain", "has|pipe", `has\backslash`, "has\nnewline", ""}
	enc := AppendVartext(nil, fields, '|')
	lines := SplitVartextLines(enc)
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1 (escaped newline should not split): %q", len(lines), enc)
	}
	got := VartextRecord(lines[0], '|')
	// The escaped newline survives as a literal newline in the field.
	want := []string{"plain", "has|pipe", `has\backslash`, "has\nnewline", ""}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip = %#v, want %#v", got, want)
	}
}

func TestPropertyVartextRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%6) + 1
		fields := make([]string, count)
		for i := range fields {
			fields[i] = randString(r, r.Intn(12), true)
		}
		enc := AppendVartext(nil, fields, '|')
		lines := SplitVartextLines(enc)
		if len(lines) != 1 {
			return false
		}
		return reflect.DeepEqual(VartextRecord(lines[0], '|'), fields)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseVartextRecord(t *testing.T) {
	layout := custLayout()
	rec, err := ParseVartextRecord("123|Smith|2012-01-01", '|', layout)
	if err != nil {
		t.Fatal(err)
	}
	if rec[0].S != "123" || rec[1].S != "Smith" || rec[2].S != "2012-01-01" {
		t.Errorf("unexpected record %+v", rec)
	}
	// wrong field count is a data error
	if _, err := ParseVartextRecord("only|two", '|', layout); err == nil {
		t.Error("field-count mismatch accepted")
	}
	// empty field is NULL
	rec, err = ParseVartextRecord("123||2012-01-01", '|', layout)
	if err != nil {
		t.Fatal(err)
	}
	if !rec[1].Null {
		t.Error("empty vartext field should be NULL")
	}
	// overlong field for VARCHAR(5)
	if _, err := ParseVartextRecord("toolong|x|y", '|', layout); err == nil {
		t.Error("overlong field accepted")
	}
}

func TestValidateVartextLayout(t *testing.T) {
	if err := ValidateVartextLayout(custLayout()); err != nil {
		t.Errorf("character layout rejected: %v", err)
	}
	bad := &Layout{Name: "B", Fields: []Field{{Name: "N", Type: Simple(KindInteger)}}}
	if err := ValidateVartextLayout(bad); err == nil {
		t.Error("numeric field accepted for vartext")
	}
}

func TestSplitVartextLines(t *testing.T) {
	data := []byte("a|b\nc|d\r\ne|f")
	lines := SplitVartextLines(data)
	want := []string{"a|b", "c|d", "e|f"}
	if !reflect.DeepEqual(lines, want) {
		t.Errorf("SplitVartextLines = %#v, want %#v", lines, want)
	}
	if got := SplitVartextLines(nil); got != nil {
		t.Errorf("SplitVartextLines(nil) = %#v, want nil", got)
	}
	// escaped newline joins lines; double backslash before newline splits
	lines = SplitVartextLines([]byte("a\\\nb\nc\\\\\nd"))
	want = []string{"a\\\nb", "c\\\\", "d"}
	if !reflect.DeepEqual(lines, want) {
		t.Errorf("escaped-newline split = %#v, want %#v", lines, want)
	}
}
