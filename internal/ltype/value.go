package ltype

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Value is a single legacy field value. The zero Value is NULL of an invalid
// kind. Exactly one of the payload fields is meaningful, selected by Kind:
// integers, DATE and TIME use I, DECIMAL uses I as the unscaled value, FLOAT
// uses F, character and TIMESTAMP types use S, binary types use B.
type Value struct {
	Kind Kind
	Null bool
	I    int64
	F    float64
	S    string
	B    []byte
}

// NullValue returns a NULL value of kind k.
func NullValue(k Kind) Value { return Value{Kind: k, Null: true} }

// IntValue returns an integer-kinded value.
func IntValue(k Kind, v int64) Value { return Value{Kind: k, I: v} }

// FloatValue returns a FLOAT value.
func FloatValue(v float64) Value { return Value{Kind: KindFloat, F: v} }

// StringValue returns a character-kinded value.
func StringValue(k Kind, s string) Value { return Value{Kind: k, S: s} }

// BytesValue returns a binary-kinded value.
func BytesValue(k Kind, b []byte) Value { return Value{Kind: k, B: b} }

// DateValue returns a DATE value for the given calendar date using the legacy
// integer encoding.
func DateValue(year, month, day int) Value {
	return Value{Kind: KindDate, I: EncodeLegacyDate(year, month, day)}
}

// EncodeLegacyDate converts a calendar date to the legacy integer encoding
// (year-1900)*10000 + month*100 + day.
func EncodeLegacyDate(year, month, day int) int64 {
	return int64(year-1900)*10000 + int64(month)*100 + int64(day)
}

// DecodeLegacyDate is the inverse of EncodeLegacyDate.
func DecodeLegacyDate(v int64) (year, month, day int) {
	year = int(v/10000) + 1900
	rem := v % 10000
	if rem < 0 {
		rem += 10000
		year--
	}
	return year, int(rem / 100), int(rem % 100)
}

// ValidLegacyDate reports whether v decodes to a real calendar date.
func ValidLegacyDate(v int64) bool {
	y, m, d := DecodeLegacyDate(v)
	if m < 1 || m > 12 || d < 1 {
		return false
	}
	t := time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
	return t.Year() == y && int(t.Month()) == m && t.Day() == d
}

// Equal reports deep equality of two values, treating NULLs of the same kind
// as equal (this is layout equality, not SQL three-valued equality).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind || v.Null != o.Null {
		return false
	}
	if v.Null {
		return true
	}
	switch v.Kind {
	case KindFloat:
		return v.F == o.F || (math.IsNaN(v.F) && math.IsNaN(o.F))
	case KindChar, KindVarChar, KindTimestamp:
		return v.S == o.S
	case KindByte, KindVarByte:
		return string(v.B) == string(o.B)
	default:
		return v.I == o.I
	}
}

// Text formats the value as legacy client text, as it would appear in a
// vartext export file or an error-table dump. NULL renders as the empty
// string; callers that need an explicit marker handle NULL themselves.
// Hot-path callers use AppendText, which produces the same bytes into a
// caller-provided buffer.
func (v Value) Text() string {
	if v.Null {
		return ""
	}
	switch v.Kind {
	case KindDecimal, KindChar, KindVarChar, KindTimestamp:
		return v.S // DECIMAL is formatted at parse time when the scale is known
	default:
		return string(v.AppendText(nil))
	}
}

// FormatDecimal renders an unscaled decimal integer with the given scale,
// e.g. (12345, 2) -> "123.45".
func FormatDecimal(unscaled int64, scale int) string {
	if scale <= 0 {
		return strconv.FormatInt(unscaled, 10)
	}
	neg := unscaled < 0
	u := uint64(unscaled)
	if neg {
		u = uint64(-unscaled) // two's-complement magnitude, MinInt64-safe
	}
	s := strconv.FormatUint(u, 10)
	for len(s) <= scale {
		s = "0" + s
	}
	out := s[:len(s)-scale] + "." + s[len(s)-scale:]
	if neg {
		out = "-" + out
	}
	return out
}

// ParseDecimal parses a decimal string into an unscaled integer at the given
// precision and scale, rounding half away from zero when the input has more
// fraction digits than the scale.
func ParseDecimal(s string, precision, scale int) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("ltype: empty decimal")
	}
	neg := false
	switch s[0] {
	case '-':
		neg, s = true, s[1:]
	case '+':
		s = s[1:]
	}
	intPart, fracPart := s, ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		intPart, fracPart = s[:i], s[i+1:]
	}
	if intPart == "" && fracPart == "" {
		return 0, fmt.Errorf("ltype: malformed decimal %q", s)
	}
	for _, r := range intPart + fracPart {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("ltype: malformed decimal %q", s)
		}
	}
	// Normalize fraction to exactly `scale` digits, with one extra digit kept
	// for rounding.
	round := int64(0)
	if len(fracPart) > scale {
		if fracPart[scale] >= '5' {
			round = 1
		}
		fracPart = fracPart[:scale]
	}
	for len(fracPart) < scale {
		fracPart += "0"
	}
	digits := strings.TrimLeft(intPart+fracPart, "0")
	if digits == "" {
		digits = "0"
	}
	if len(digits) > 18 {
		return 0, fmt.Errorf("ltype: decimal %q overflows 18 digits", s)
	}
	u, err := strconv.ParseInt(digits, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("ltype: malformed decimal %q", s)
	}
	u += round
	if maxAbs := pow10(precision) - 1; u > maxAbs {
		return 0, fmt.Errorf("ltype: decimal %q exceeds precision %d", s, precision)
	}
	if neg {
		u = -u
	}
	return u, nil
}

func pow10(n int) int64 {
	v := int64(1)
	for i := 0; i < n && i < 19; i++ {
		v *= 10
	}
	return v
}

// ParseText parses legacy client text into a value of type t. It implements
// the conversions the legacy client applies when reading vartext input with a
// typed layout. An empty string yields NULL for non-character types and for
// character types too (vartext convention: empty field means NULL).
func ParseText(s string, t Type) (Value, error) {
	if s == "" {
		return NullValue(t.Kind), nil
	}
	switch t.Kind {
	case KindByteInt, KindSmallInt, KindInteger, KindBigInt:
		n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("ltype: bad integer %q: %w", s, err)
		}
		if err := checkIntRange(t.Kind, n); err != nil {
			return Value{}, err
		}
		return IntValue(t.Kind, n), nil
	case KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return Value{}, fmt.Errorf("ltype: bad float %q: %w", s, err)
		}
		return FloatValue(f), nil
	case KindDecimal:
		u, err := ParseDecimal(s, t.Precision, t.Scale)
		if err != nil {
			return Value{}, err
		}
		v := IntValue(KindDecimal, u)
		v.S = FormatDecimal(u, t.Scale)
		return v, nil
	case KindChar:
		if len(s) > t.Length {
			return Value{}, fmt.Errorf("ltype: value %q exceeds CHAR(%d)", s, t.Length)
		}
		return StringValue(KindChar, s), nil
	case KindVarChar:
		if len(s) > t.Length {
			return Value{}, fmt.Errorf("ltype: value %q exceeds VARCHAR(%d)", s, t.Length)
		}
		return StringValue(KindVarChar, s), nil
	case KindDate:
		var y, m, d int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d-%d-%d", &y, &m, &d); err != nil {
			return Value{}, fmt.Errorf("ltype: bad date %q", s)
		}
		v := EncodeLegacyDate(y, m, d)
		if !ValidLegacyDate(v) {
			return Value{}, fmt.Errorf("ltype: invalid calendar date %q", s)
		}
		return IntValue(KindDate, v), nil
	case KindTime:
		var h, mi, sec int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d:%d:%d", &h, &mi, &sec); err != nil {
			return Value{}, fmt.Errorf("ltype: bad time %q", s)
		}
		if h < 0 || h > 23 || mi < 0 || mi > 59 || sec < 0 || sec > 59 {
			return Value{}, fmt.Errorf("ltype: time %q out of range", s)
		}
		return IntValue(KindTime, int64(h*3600+mi*60+sec)), nil
	case KindTimestamp:
		if len(s) != TimestampWidth {
			return Value{}, fmt.Errorf("ltype: bad timestamp %q", s)
		}
		return StringValue(KindTimestamp, s), nil
	case KindByte, KindVarByte:
		b, err := parseHex(s)
		if err != nil {
			return Value{}, err
		}
		if len(b) > t.Length {
			return Value{}, fmt.Errorf("ltype: value exceeds %s(%d)", t.Kind, t.Length)
		}
		return BytesValue(t.Kind, b), nil
	default:
		return Value{}, fmt.Errorf("ltype: cannot parse text into %s", t.Kind)
	}
}

func checkIntRange(k Kind, n int64) error {
	var lo, hi int64
	switch k {
	case KindByteInt:
		lo, hi = math.MinInt8, math.MaxInt8
	case KindSmallInt:
		lo, hi = math.MinInt16, math.MaxInt16
	case KindInteger:
		lo, hi = math.MinInt32, math.MaxInt32
	default:
		return nil
	}
	if n < lo || n > hi {
		return fmt.Errorf("ltype: %d out of range for %s", n, k)
	}
	return nil
}

func parseHex(s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("ltype: odd-length hex %q", s)
	}
	out := make([]byte, len(s)/2)
	for i := 0; i < len(out); i++ {
		hi, ok1 := hexVal(s[2*i])
		lo, ok2 := hexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("ltype: bad hex %q", s)
		}
		out[i] = hi<<4 | lo
	}
	return out, nil
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
