package ltype

import "strconv"

// Append-style codecs for the acquisition hot path (§4-§5). Every function
// here formats into a caller-provided buffer with no intermediate strings
// and no fmt machinery; functions on the per-row path carry the
// //etlvirt:hotpath directive, which the hotalloc analyzer enforces (no fmt
// calls inside them — error construction is delegated to cold helpers).

const hexDigits = "0123456789ABCDEF"

// AppendText appends the value's legacy client text — exactly the bytes
// Text returns — to dst and returns the extended slice. NULL appends
// nothing.
//
// DECIMAL values append their pre-formatted S text; values produced by
// DecodeRecordInto carry no S (the scale lives in the layout, not the
// value), so hot-path callers must use AppendDecimal with the field's scale
// instead.
//
//etlvirt:hotpath
func (v Value) AppendText(dst []byte) []byte {
	if v.Null {
		return dst
	}
	switch v.Kind {
	case KindByteInt, KindSmallInt, KindInteger, KindBigInt:
		return strconv.AppendInt(dst, v.I, 10)
	case KindFloat:
		return strconv.AppendFloat(dst, v.F, 'g', -1, 64)
	case KindDecimal, KindChar, KindVarChar, KindTimestamp:
		return append(dst, v.S...)
	case KindDate:
		y, m, d := DecodeLegacyDate(v.I)
		dst = appendZeroPadded(dst, int64(y), 4)
		dst = append(dst, '-')
		dst = appendZeroPadded(dst, int64(m), 2)
		dst = append(dst, '-')
		return appendZeroPadded(dst, int64(d), 2)
	case KindTime:
		sec := v.I
		dst = appendZeroPadded(dst, sec/3600, 2)
		dst = append(dst, ':')
		dst = appendZeroPadded(dst, (sec/60)%60, 2)
		dst = append(dst, ':')
		return appendZeroPadded(dst, sec%60, 2)
	case KindByte, KindVarByte:
		for _, b := range v.B {
			dst = append(dst, hexDigits[b>>4], hexDigits[b&0xF])
		}
		return dst
	default:
		return dst
	}
}

// AppendDecimal appends the text of an unscaled decimal integer at the
// given scale — exactly the bytes FormatDecimal returns — to dst.
//
//etlvirt:hotpath
func AppendDecimal(dst []byte, unscaled int64, scale int) []byte {
	if scale <= 0 {
		return strconv.AppendInt(dst, unscaled, 10)
	}
	u := uint64(unscaled)
	if unscaled < 0 {
		dst = append(dst, '-')
		u = uint64(-unscaled) // two's-complement magnitude, MinInt64-safe
	}
	var tmp [20]byte
	s := strconv.AppendUint(tmp[:0], u, 10)
	intLen := len(s) - scale
	if intLen <= 0 {
		dst = append(dst, '0', '.')
		for i := intLen; i < 0; i++ {
			dst = append(dst, '0')
		}
		return append(dst, s...)
	}
	dst = append(dst, s[:intLen]...)
	dst = append(dst, '.')
	return append(dst, s[intLen:]...)
}

// appendZeroPadded appends v in decimal, zero-padded to width total bytes
// including any sign — the semantics of fmt's %0*d verb, hand-rolled so the
// hot path never touches fmt.
//
//etlvirt:hotpath
func appendZeroPadded(dst []byte, v int64, width int) []byte {
	u := uint64(v)
	if v < 0 {
		dst = append(dst, '-')
		u = uint64(-v)
		width--
	}
	digits := 1
	for x := u; x >= 10; x /= 10 {
		digits++
	}
	for ; digits < width; digits++ {
		dst = append(dst, '0')
	}
	return strconv.AppendUint(dst, u, 10)
}
