package ltype

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func custLayout() *Layout {
	return &Layout{Name: "CustLayout", Fields: []Field{
		{Name: "CUST_ID", Type: VarChar(5)},
		{Name: "CUST_NAME", Type: VarChar(50)},
		{Name: "JOIN_DATE", Type: VarChar(10)},
	}}
}

func wideLayout() *Layout {
	return &Layout{Name: "Wide", Fields: []Field{
		{Name: "F1", Type: Simple(KindByteInt)},
		{Name: "F2", Type: Simple(KindSmallInt)},
		{Name: "F3", Type: Simple(KindInteger)},
		{Name: "F4", Type: Simple(KindBigInt)},
		{Name: "F5", Type: Simple(KindFloat)},
		{Name: "F6", Type: Decimal(10, 2)},
		{Name: "F7", Type: Char(4)},
		{Name: "F8", Type: VarChar(20)},
		{Name: "F9", Type: Simple(KindDate)},
		{Name: "F10", Type: Simple(KindTime)},
		{Name: "F11", Type: Simple(KindTimestamp)},
		{Name: "F12", Type: Type{Kind: KindByte, Length: 3}},
		{Name: "F13", Type: Type{Kind: KindVarByte, Length: 10}},
	}}
}

func wideRecord() Record {
	dec := IntValue(KindDecimal, 12345)
	dec.S = FormatDecimal(12345, 2)
	return Record{
		IntValue(KindByteInt, -5),
		IntValue(KindSmallInt, 1234),
		IntValue(KindInteger, -99999),
		IntValue(KindBigInt, 1<<40),
		FloatValue(3.25),
		dec,
		StringValue(KindChar, "ab"),
		StringValue(KindVarChar, "hello world"),
		IntValue(KindDate, EncodeLegacyDate(2023, 6, 30)),
		IntValue(KindTime, 12*3600),
		StringValue(KindTimestamp, "2023-06-30 12:00:00"),
		BytesValue(KindByte, []byte{1, 2, 3}),
		BytesValue(KindVarByte, []byte{9, 8}),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	layout := wideLayout()
	rec := wideRecord()
	buf, err := EncodeRecord(nil, layout, rec)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeRecord(buf, layout)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	for i := range rec {
		if !got[i].Equal(rec[i]) {
			t.Errorf("field %d: got %+v, want %+v", i, got[i], rec[i])
		}
	}
}

func TestEncodeDecodeNulls(t *testing.T) {
	layout := wideLayout()
	rec := make(Record, len(layout.Fields))
	for i, f := range layout.Fields {
		rec[i] = NullValue(f.Type.Kind)
	}
	buf, err := EncodeRecord(nil, layout, rec)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeRecord(buf, layout)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !got[i].Null {
			t.Errorf("field %d: want NULL, got %+v", i, got[i])
		}
		if got[i].Kind != layout.Fields[i].Type.Kind {
			t.Errorf("field %d: kind %v, want %v", i, got[i].Kind, layout.Fields[i].Type.Kind)
		}
	}
}

func TestEncodeRecordMismatch(t *testing.T) {
	layout := custLayout()
	if _, err := EncodeRecord(nil, layout, Record{StringValue(KindVarChar, "x")}); err == nil {
		t.Error("field-count mismatch accepted")
	}
	// wrong kind
	rec := Record{IntValue(KindInteger, 1), StringValue(KindVarChar, "a"), StringValue(KindVarChar, "b")}
	if _, err := EncodeRecord(nil, layout, rec); err == nil {
		t.Error("kind mismatch accepted")
	}
	// overlong varchar
	rec = Record{StringValue(KindVarChar, "toolong"), StringValue(KindVarChar, "a"), StringValue(KindVarChar, "b")}
	if _, err := EncodeRecord(nil, layout, rec); err == nil {
		t.Error("overlong VARCHAR accepted")
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	layout := custLayout()
	rec := Record{
		StringValue(KindVarChar, "123"),
		StringValue(KindVarChar, "Smith"),
		StringValue(KindVarChar, "2012-01-01"),
	}
	buf, err := EncodeRecord(nil, layout, rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeRecord(buf[:1], layout); err == nil {
		t.Error("truncated length prefix accepted")
	}
	if _, _, err := DecodeRecord(buf[:len(buf)-2], layout); err == nil {
		t.Error("truncated record accepted")
	}
	bad := append([]byte(nil), buf...)
	bad[len(bad)-1] = 0xFF
	if _, _, err := DecodeRecord(bad, layout); err == nil {
		t.Error("bad terminator accepted")
	}
	if _, _, err := DecodeRecord(nil, layout); err == nil {
		t.Error("empty buffer accepted")
	}
}

func TestCountRecords(t *testing.T) {
	layout := custLayout()
	var buf []byte
	var err error
	for i := 0; i < 7; i++ {
		buf, err = EncodeRecord(buf, layout, Record{
			StringValue(KindVarChar, "id"),
			StringValue(KindVarChar, "name"),
			NullValue(KindVarChar),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	n, err := CountRecords(buf)
	if err != nil || n != 7 {
		t.Errorf("CountRecords = %d, %v; want 7, nil", n, err)
	}
	if _, err := CountRecords(buf[:len(buf)-1]); err == nil {
		t.Error("truncated chunk accepted")
	}
	n, err = CountRecords(nil)
	if err != nil || n != 0 {
		t.Errorf("CountRecords(nil) = %d, %v", n, err)
	}
}

func TestMultipleRecordsSequential(t *testing.T) {
	layout := custLayout()
	recs := []Record{
		{StringValue(KindVarChar, "1"), StringValue(KindVarChar, "a"), StringValue(KindVarChar, "x")},
		{NullValue(KindVarChar), StringValue(KindVarChar, "b"), NullValue(KindVarChar)},
		{StringValue(KindVarChar, "3"), NullValue(KindVarChar), StringValue(KindVarChar, "z")},
	}
	var buf []byte
	var err error
	for _, r := range recs {
		buf, err = EncodeRecord(buf, layout, r)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; len(buf) > 0; i++ {
		got, n, err := DecodeRecord(buf, layout)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if !got[j].Equal(recs[i][j]) {
				t.Errorf("record %d field %d: got %+v want %+v", i, j, got[j], recs[i][j])
			}
		}
		buf = buf[n:]
	}
}

// randomRecord builds a random record for the layout using r.
func randomRecord(r *rand.Rand, layout *Layout) Record {
	rec := make(Record, len(layout.Fields))
	for i, f := range layout.Fields {
		if r.Intn(5) == 0 {
			rec[i] = NullValue(f.Type.Kind)
			continue
		}
		switch f.Type.Kind {
		case KindByteInt:
			rec[i] = IntValue(f.Type.Kind, int64(int8(r.Int())))
		case KindSmallInt:
			rec[i] = IntValue(f.Type.Kind, int64(int16(r.Int())))
		case KindInteger:
			rec[i] = IntValue(f.Type.Kind, int64(int32(r.Int())))
		case KindBigInt:
			rec[i] = IntValue(f.Type.Kind, int64(r.Uint64()))
		case KindFloat:
			rec[i] = FloatValue(r.NormFloat64() * 1000)
		case KindDecimal:
			maxAbs := pow10(f.Type.Precision) - 1
			u := r.Int63n(maxAbs*2+1) - maxAbs
			v := IntValue(KindDecimal, u)
			v.S = FormatDecimal(u, f.Type.Scale)
			rec[i] = v
		case KindChar:
			rec[i] = StringValue(KindChar, randString(r, r.Intn(f.Type.Length)+1, false))
		case KindVarChar:
			rec[i] = StringValue(KindVarChar, randString(r, r.Intn(f.Type.Length+1), true))
		case KindDate:
			rec[i] = DateValue(1950+r.Intn(150), 1+r.Intn(12), 1+r.Intn(28))
		case KindTime:
			rec[i] = IntValue(KindTime, int64(r.Intn(86400)))
		case KindTimestamp:
			rec[i] = StringValue(KindTimestamp, "2023-01-02 03:04:05")
		case KindByte:
			b := make([]byte, f.Type.Length)
			r.Read(b)
			rec[i] = BytesValue(KindByte, b)
		case KindVarByte:
			b := make([]byte, r.Intn(f.Type.Length+1))
			r.Read(b)
			rec[i] = BytesValue(KindVarByte, b)
		}
	}
	return rec
}

func randString(r *rand.Rand, n int, allowTrailingSpace bool) string {
	const alpha = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 |\\,'\""
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[r.Intn(len(alpha))]
	}
	s := string(b)
	// CHAR decoding trims trailing spaces, so avoid them for exact round trips.
	if !allowTrailingSpace {
		for len(s) > 0 && s[len(s)-1] == ' ' {
			s = s[:len(s)-1] + "x"
		}
		if s == "" {
			s = "x"
		}
	}
	return s
}

func TestPropertyRecordRoundTrip(t *testing.T) {
	layout := wideLayout()
	r := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		rec := randomRecord(rr, layout)
		buf, err := EncodeRecord(nil, layout, rec)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		got, n, err := DecodeRecord(buf, layout)
		if err != nil || n != len(buf) {
			t.Logf("decode: %v n=%d len=%d", err, n, len(buf))
			return false
		}
		for i := range rec {
			if !got[i].Equal(rec[i]) {
				t.Logf("field %d mismatch: got %+v want %+v", i, got[i], rec[i])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyDecimalRoundTrip(t *testing.T) {
	f := func(u int64, scaleRaw uint8) bool {
		scale := int(scaleRaw % 7)
		u %= 1_000_000_000_000 // keep within 18 digits
		s := FormatDecimal(u, scale)
		back, err := ParseDecimal(s, 18, scale)
		return err == nil && back == u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLegacyDateRoundTrip(t *testing.T) {
	f := func(yRaw, mRaw, dRaw uint16) bool {
		y := 1900 + int(yRaw%300)
		m := 1 + int(mRaw%12)
		d := 1 + int(dRaw%28)
		enc := EncodeLegacyDate(y, m, d)
		gy, gm, gd := DecodeLegacyDate(enc)
		return gy == y && gm == m && gd == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMaxRecordSizeBound(t *testing.T) {
	layout := wideLayout()
	r := rand.New(rand.NewSource(7))
	bound := layout.MaxRecordSize()
	for i := 0; i < 50; i++ {
		rec := randomRecord(r, layout)
		buf, err := EncodeRecord(nil, layout, rec)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) > bound {
			t.Fatalf("encoded %d bytes exceeds MaxRecordSize %d", len(buf), bound)
		}
	}
}

func TestFloatSpecials(t *testing.T) {
	layout := &Layout{Name: "F", Fields: []Field{{Name: "X", Type: Simple(KindFloat)}}}
	for _, f := range []float64{math.Inf(1), math.Inf(-1), math.NaN(), 0, math.Copysign(0, -1)} {
		buf, err := EncodeRecord(nil, layout, Record{FloatValue(f)})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := DecodeRecord(buf, layout)
		if err != nil {
			t.Fatal(err)
		}
		if !got[0].Equal(FloatValue(f)) {
			t.Errorf("float %v did not round trip: %+v", f, got[0])
		}
	}
}

func BenchmarkEncodeRecord(b *testing.B) {
	layout := wideLayout()
	rec := wideRecord()
	buf := make([]byte, 0, layout.MaxRecordSize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = EncodeRecord(buf[:0], layout, rec)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRecord(b *testing.B) {
	layout := wideLayout()
	buf, err := EncodeRecord(nil, layout, wideRecord())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeRecord(buf, layout); err != nil {
			b.Fatal(err)
		}
	}
}
