package ltype

import (
	"strings"
	"testing"
)

func TestParseTypeName(t *testing.T) {
	cases := []struct {
		in   string
		want Type
	}{
		{"varchar(5)", VarChar(5)},
		{"VARCHAR(50)", VarChar(50)},
		{"char(8)", Char(8)},
		{"CHARACTER(3)", Char(3)},
		{"byteint", Simple(KindByteInt)},
		{"SMALLINT", Simple(KindSmallInt)},
		{"integer", Simple(KindInteger)},
		{"INT", Simple(KindInteger)},
		{"BIGINT", Simple(KindBigInt)},
		{"float", Simple(KindFloat)},
		{"DATE", Simple(KindDate)},
		{"time", Simple(KindTime)},
		{"TIMESTAMP", Simple(KindTimestamp)},
		{"DECIMAL(10,2)", Decimal(10, 2)},
		{"decimal(7)", Decimal(7, 0)},
		{"NUMERIC(18,4)", Decimal(18, 4)},
		{"DEC", Decimal(5, 0)},
		{"BYTE(4)", Type{Kind: KindByte, Length: 4}},
		{"VARBYTE(100)", Type{Kind: KindVarByte, Length: 100}},
		{"VARCHAR(10) CHARACTER SET UNICODE", Type{Kind: KindVarChar, Length: 10, CharSet: CharSetUnicode}},
		{"CHAR(2) CHARACTER SET LATIN", Char(2)},
	}
	for _, c := range cases {
		got, err := ParseTypeName(c.in)
		if err != nil {
			t.Errorf("ParseTypeName(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseTypeName(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseTypeNameErrors(t *testing.T) {
	bad := []string{
		"", "FOO", "VARCHAR", "VARBYTE", "VARCHAR(0)", "VARCHAR(999999)",
		"DECIMAL(0)", "DECIMAL(19)", "DECIMAL(5,6)", "VARCHAR(abc)",
		"INTEGER CHARACTER SET UNICODE", "VARCHAR)5(",
	}
	for _, s := range bad {
		if _, err := ParseTypeName(s); err == nil {
			t.Errorf("ParseTypeName(%q) succeeded, want error", s)
		}
	}
}

func TestTypeString(t *testing.T) {
	cases := []struct {
		t    Type
		want string
	}{
		{VarChar(5), "VARCHAR(5)"},
		{Char(3), "CHAR(3)"},
		{Decimal(10, 2), "DECIMAL(10,2)"},
		{Simple(KindDate), "DATE"},
		{Type{Kind: KindVarChar, Length: 9, CharSet: CharSetUnicode}, "VARCHAR(9) CHARACTER SET UNICODE"},
		{Type{Kind: KindVarByte, Length: 7}, "VARBYTE(7)"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestTypeRoundTripThroughString(t *testing.T) {
	types := []Type{
		VarChar(5), Char(12), Decimal(18, 6), Simple(KindByteInt),
		Simple(KindBigInt), Simple(KindFloat), Simple(KindDate),
		Simple(KindTime), Simple(KindTimestamp),
		{Kind: KindChar, Length: 4, CharSet: CharSetUnicode},
		{Kind: KindByte, Length: 2}, {Kind: KindVarByte, Length: 3},
	}
	for _, ty := range types {
		back, err := ParseTypeName(ty.String())
		if err != nil {
			t.Fatalf("ParseTypeName(%q): %v", ty.String(), err)
		}
		if back != ty {
			t.Errorf("round trip %q: got %+v want %+v", ty.String(), back, ty)
		}
	}
}

func TestFixedWireSize(t *testing.T) {
	cases := []struct {
		t     Type
		size  int
		fixed bool
	}{
		{Simple(KindByteInt), 1, true},
		{Simple(KindSmallInt), 2, true},
		{Simple(KindInteger), 4, true},
		{Simple(KindBigInt), 8, true},
		{Simple(KindFloat), 8, true},
		{Simple(KindDate), 4, true},
		{Simple(KindTime), 4, true},
		{Simple(KindTimestamp), 19, true},
		{Decimal(2, 0), 1, true},
		{Decimal(4, 2), 2, true},
		{Decimal(9, 0), 4, true},
		{Decimal(18, 6), 8, true},
		{Char(7), 7, true},
		{Type{Kind: KindByte, Length: 5}, 5, true},
		{VarChar(10), 0, false},
		{Type{Kind: KindVarByte, Length: 10}, 0, false},
	}
	for _, c := range cases {
		sz, fixed := c.t.FixedWireSize()
		if sz != c.size || fixed != c.fixed {
			t.Errorf("%s.FixedWireSize() = (%d,%v), want (%d,%v)", c.t, sz, fixed, c.size, c.fixed)
		}
	}
}

func TestLayoutValidate(t *testing.T) {
	good := Layout{Name: "L", Fields: []Field{
		{Name: "A", Type: VarChar(5)},
		{Name: "B", Type: Simple(KindInteger)},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
	dup := Layout{Name: "L", Fields: []Field{
		{Name: "A", Type: VarChar(5)},
		{Name: "a", Type: VarChar(5)},
	}}
	if err := dup.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate field not detected: %v", err)
	}
	empty := Layout{Name: "E"}
	if err := empty.Validate(); err == nil {
		t.Error("empty layout accepted")
	}
	unnamed := Layout{Name: "U", Fields: []Field{{Type: VarChar(5)}}}
	if err := unnamed.Validate(); err == nil {
		t.Error("unnamed field accepted")
	}
	badType := Layout{Name: "B", Fields: []Field{{Name: "X", Type: VarChar(0)}}}
	if err := badType.Validate(); err == nil {
		t.Error("invalid field type accepted")
	}
}

func TestLayoutFieldIndex(t *testing.T) {
	l := Layout{Name: "L", Fields: []Field{
		{Name: "CUST_ID", Type: VarChar(5)},
		{Name: "CUST_NAME", Type: VarChar(50)},
	}}
	if i := l.FieldIndex("cust_name"); i != 1 {
		t.Errorf("FieldIndex(cust_name) = %d, want 1", i)
	}
	if i := l.FieldIndex("CUST_ID"); i != 0 {
		t.Errorf("FieldIndex(CUST_ID) = %d, want 0", i)
	}
	if i := l.FieldIndex("NOPE"); i != -1 {
		t.Errorf("FieldIndex(NOPE) = %d, want -1", i)
	}
}

func TestLegacyDateCodec(t *testing.T) {
	cases := []struct {
		y, m, d int
		enc     int64
	}{
		{2012, 1, 1, 1120101},
		{2012, 12, 1, 1121201},
		{1900, 1, 1, 101},
		{1899, 12, 31, -8769}, // pre-epoch
		{2100, 6, 15, 2000615},
	}
	for _, c := range cases {
		enc := EncodeLegacyDate(c.y, c.m, c.d)
		if enc != c.enc {
			t.Errorf("EncodeLegacyDate(%d,%d,%d) = %d, want %d", c.y, c.m, c.d, enc, c.enc)
		}
		y, m, d := DecodeLegacyDate(enc)
		if y != c.y || m != c.m || d != c.d {
			t.Errorf("DecodeLegacyDate(%d) = (%d,%d,%d), want (%d,%d,%d)", enc, y, m, d, c.y, c.m, c.d)
		}
	}
}

func TestValidLegacyDate(t *testing.T) {
	if !ValidLegacyDate(EncodeLegacyDate(2024, 2, 29)) {
		t.Error("2024-02-29 should be valid (leap year)")
	}
	if ValidLegacyDate(EncodeLegacyDate(2023, 2, 29)) {
		t.Error("2023-02-29 should be invalid")
	}
	if ValidLegacyDate(EncodeLegacyDate(2023, 13, 1)) {
		t.Error("month 13 should be invalid")
	}
	if ValidLegacyDate(EncodeLegacyDate(2023, 4, 31)) {
		t.Error("2023-04-31 should be invalid")
	}
	if !ValidLegacyDate(EncodeLegacyDate(2023, 4, 30)) {
		t.Error("2023-04-30 should be valid")
	}
}

func TestDecimalFormatParse(t *testing.T) {
	cases := []struct {
		unscaled int64
		scale    int
		want     string
	}{
		{12345, 2, "123.45"},
		{-12345, 2, "-123.45"},
		{5, 2, "0.05"},
		{-5, 2, "-0.05"},
		{0, 2, "0.00"},
		{42, 0, "42"},
		{1, 4, "0.0001"},
	}
	for _, c := range cases {
		got := FormatDecimal(c.unscaled, c.scale)
		if got != c.want {
			t.Errorf("FormatDecimal(%d,%d) = %q, want %q", c.unscaled, c.scale, got, c.want)
		}
		back, err := ParseDecimal(got, 18, c.scale)
		if err != nil {
			t.Errorf("ParseDecimal(%q): %v", got, err)
			continue
		}
		if back != c.unscaled {
			t.Errorf("ParseDecimal(%q) = %d, want %d", got, back, c.unscaled)
		}
	}
}

func TestParseDecimalRounding(t *testing.T) {
	got, err := ParseDecimal("1.005", 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 101 { // rounds half away from zero
		t.Errorf("ParseDecimal(1.005, scale 2) = %d, want 101", got)
	}
	got, err = ParseDecimal("1.004", 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Errorf("ParseDecimal(1.004, scale 2) = %d, want 100", got)
	}
}

func TestParseDecimalErrors(t *testing.T) {
	bad := []string{"", "abc", "1.2.3", "--5", ".", "12345678901234567890", "1e5"}
	for _, s := range bad {
		if _, err := ParseDecimal(s, 18, 2); err == nil {
			t.Errorf("ParseDecimal(%q) succeeded, want error", s)
		}
	}
	if _, err := ParseDecimal("1000", 3, 0); err == nil {
		t.Error("precision overflow not detected")
	}
}

func TestParseText(t *testing.T) {
	v, err := ParseText("42", Simple(KindInteger))
	if err != nil || v.I != 42 || v.Null {
		t.Errorf("ParseText int: %+v, %v", v, err)
	}
	v, err = ParseText("", Simple(KindInteger))
	if err != nil || !v.Null {
		t.Errorf("empty should parse to NULL: %+v, %v", v, err)
	}
	v, err = ParseText("2012-01-01", Simple(KindDate))
	if err != nil || v.I != 1120101 {
		t.Errorf("ParseText date: %+v, %v", v, err)
	}
	if _, err = ParseText("xxxx", Simple(KindDate)); err == nil {
		t.Error("bad date accepted")
	}
	if _, err = ParseText("2023-02-30", Simple(KindDate)); err == nil {
		t.Error("invalid calendar date accepted")
	}
	v, err = ParseText("12:34:56", Simple(KindTime))
	if err != nil || v.I != 12*3600+34*60+56 {
		t.Errorf("ParseText time: %+v, %v", v, err)
	}
	if _, err = ParseText("25:00:00", Simple(KindTime)); err == nil {
		t.Error("out-of-range time accepted")
	}
	if _, err = ParseText("128", Simple(KindByteInt)); err == nil {
		t.Error("BYTEINT overflow accepted")
	}
	if _, err = ParseText("40000", Simple(KindSmallInt)); err == nil {
		t.Error("SMALLINT overflow accepted")
	}
	if _, err = ParseText("toolongvalue", VarChar(3)); err == nil {
		t.Error("VARCHAR overflow accepted")
	}
	v, err = ParseText("3.14", Simple(KindFloat))
	if err != nil || v.F != 3.14 {
		t.Errorf("ParseText float: %+v, %v", v, err)
	}
	v, err = ParseText("deadBEEF", Type{Kind: KindVarByte, Length: 8})
	if err != nil || len(v.B) != 4 {
		t.Errorf("ParseText varbyte: %+v, %v", v, err)
	}
	if _, err = ParseText("xyz", Type{Kind: KindVarByte, Length: 8}); err == nil {
		t.Error("bad hex accepted")
	}
}

func TestValueText(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{IntValue(KindInteger, -7), "-7"},
		{FloatValue(2.5), "2.5"},
		{StringValue(KindVarChar, "hi"), "hi"},
		{IntValue(KindDate, 1120101), "2012-01-01"},
		{IntValue(KindTime, 3661), "01:01:01"},
		{NullValue(KindInteger), ""},
		{BytesValue(KindVarByte, []byte{0xDE, 0xAD}), "DEAD"},
	}
	for _, c := range cases {
		if got := c.v.Text(); got != c.want {
			t.Errorf("%+v.Text() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !NullValue(KindInteger).Equal(NullValue(KindInteger)) {
		t.Error("NULLs of same kind should be layout-equal")
	}
	if NullValue(KindInteger).Equal(NullValue(KindDate)) {
		t.Error("NULLs of different kinds should differ")
	}
	if !IntValue(KindInteger, 5).Equal(IntValue(KindInteger, 5)) {
		t.Error("equal ints should be equal")
	}
	if IntValue(KindInteger, 5).Equal(NullValue(KindInteger)) {
		t.Error("value vs NULL should differ")
	}
	if !FloatValue(1.5).Equal(FloatValue(1.5)) {
		t.Error("equal floats should be equal")
	}
	if !BytesValue(KindByte, []byte{1}).Equal(BytesValue(KindByte, []byte{1})) {
		t.Error("equal bytes should be equal")
	}
}
