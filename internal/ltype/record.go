package ltype

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// RecordTerminator ends every indicator-mode record on the wire. The legacy
// client uses it as a framing sanity check.
const RecordTerminator = 0x0A

// Record is one row of values matching a Layout.
type Record []Value

// EncodeRecord appends the indicator-mode binary encoding of rec to dst and
// returns the extended slice. Like every other wire format in the system
// (DWP parcel headers, TDF packets), records are network byte order end to
// end — the endian invariant etlvirtlint enforces. The format is:
//
//	uint16 BE  payload length (indicators + field bytes)
//	indicator bitmap, ceil(nfields/8) bytes, MSB-first, bit set = NULL
//	field values in layout order (NULL fields still occupy their fixed
//	width with zero bytes; variable-length NULL fields encode length 0)
//	terminator byte 0x0A
func EncodeRecord(dst []byte, layout *Layout, rec Record) ([]byte, error) {
	if len(rec) != len(layout.Fields) {
		return dst, fmt.Errorf("ltype: record has %d values, layout %q has %d fields",
			len(rec), layout.Name, len(layout.Fields))
	}
	lenPos := len(dst)
	dst = append(dst, 0, 0) // payload length placeholder
	start := len(dst)

	nInd := (len(layout.Fields) + 7) / 8
	indPos := len(dst)
	for i := 0; i < nInd; i++ {
		dst = append(dst, 0)
	}
	for i, f := range layout.Fields {
		v := rec[i]
		if v.Null {
			dst[indPos+i/8] |= 0x80 >> (i % 8)
		}
		var err error
		dst, err = encodeValue(dst, f.Type, v)
		if err != nil {
			return dst, fmt.Errorf("ltype: field %q: %w", f.Name, err)
		}
	}
	payload := len(dst) - start
	if payload > math.MaxUint16 {
		return dst, fmt.Errorf("ltype: record payload %d exceeds 64KB", payload)
	}
	binary.BigEndian.PutUint16(dst[lenPos:], uint16(payload))
	dst = append(dst, RecordTerminator)
	return dst, nil
}

func encodeValue(dst []byte, t Type, v Value) ([]byte, error) {
	if !v.Null && v.Kind != t.Kind {
		return dst, fmt.Errorf("value kind %s does not match field type %s", v.Kind, t.Kind)
	}
	switch t.Kind {
	case KindByteInt:
		return append(dst, byte(int8(v.I))), nil
	case KindSmallInt:
		return binary.BigEndian.AppendUint16(dst, uint16(int16(v.I))), nil
	case KindInteger, KindDate:
		return binary.BigEndian.AppendUint32(dst, uint32(int32(v.I))), nil
	case KindTime:
		return binary.BigEndian.AppendUint32(dst, uint32(int32(v.I))), nil
	case KindBigInt:
		return binary.BigEndian.AppendUint64(dst, uint64(v.I)), nil
	case KindFloat:
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(v.F)), nil
	case KindDecimal:
		sz := DecimalWireSize(t.Precision)
		u := uint64(v.I)
		for i := 0; i < sz; i++ {
			dst = append(dst, byte(u>>(8*i)))
		}
		return dst, nil
	case KindChar:
		s := v.S
		if v.Null {
			s = ""
		}
		if len(s) > t.Length {
			return dst, fmt.Errorf("CHAR value of %d bytes exceeds length %d", len(s), t.Length)
		}
		dst = append(dst, s...)
		for i := len(s); i < t.Length; i++ {
			dst = append(dst, ' ')
		}
		return dst, nil
	case KindTimestamp:
		s := v.S
		if v.Null {
			s = ""
		}
		if len(s) > TimestampWidth {
			return dst, fmt.Errorf("TIMESTAMP value of %d bytes exceeds width %d", len(s), TimestampWidth)
		}
		dst = append(dst, s...)
		for i := len(s); i < TimestampWidth; i++ {
			dst = append(dst, ' ')
		}
		return dst, nil
	case KindVarChar:
		s := v.S
		if v.Null {
			s = ""
		}
		if len(s) > t.Length {
			return dst, fmt.Errorf("VARCHAR value of %d bytes exceeds length %d", len(s), t.Length)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
		return append(dst, s...), nil
	case KindByte:
		b := v.B
		if v.Null {
			b = nil
		}
		if len(b) > t.Length {
			return dst, fmt.Errorf("BYTE value of %d bytes exceeds length %d", len(b), t.Length)
		}
		dst = append(dst, b...)
		for i := len(b); i < t.Length; i++ {
			dst = append(dst, 0)
		}
		return dst, nil
	case KindVarByte:
		b := v.B
		if v.Null {
			b = nil
		}
		if len(b) > t.Length {
			return dst, fmt.Errorf("VARBYTE value of %d bytes exceeds length %d", len(b), t.Length)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(b)))
		return append(dst, b...), nil
	default:
		return dst, fmt.Errorf("cannot encode kind %s", t.Kind)
	}
}

// DecodeRecord decodes one indicator-mode record from buf, returning the
// record and the number of bytes consumed. It returns an error if buf does
// not start with a complete, well-formed record.
func DecodeRecord(buf []byte, layout *Layout) (Record, int, error) {
	if len(buf) < 2 {
		return nil, 0, fmt.Errorf("ltype: truncated record: missing length prefix")
	}
	payload := int(binary.BigEndian.Uint16(buf))
	total := 2 + payload + 1
	if len(buf) < total {
		return nil, 0, fmt.Errorf("ltype: truncated record: need %d bytes, have %d", total, len(buf))
	}
	if buf[total-1] != RecordTerminator {
		return nil, 0, fmt.Errorf("ltype: record missing terminator")
	}
	p := buf[2 : 2+payload]
	nInd := (len(layout.Fields) + 7) / 8
	if len(p) < nInd {
		return nil, 0, fmt.Errorf("ltype: record too short for indicator bytes")
	}
	ind := p[:nInd]
	p = p[nInd:]
	rec := make(Record, len(layout.Fields))
	for i, f := range layout.Fields {
		null := ind[i/8]&(0x80>>(i%8)) != 0
		v, rest, err := decodeValue(p, f.Type, null)
		if err != nil {
			return nil, 0, fmt.Errorf("ltype: field %q: %w", f.Name, err)
		}
		rec[i] = v
		p = rest
	}
	if len(p) != 0 {
		return nil, 0, fmt.Errorf("ltype: %d trailing bytes in record payload", len(p))
	}
	return rec, total, nil
}

func decodeValue(p []byte, t Type, null bool) (Value, []byte, error) {
	need := func(n int) error {
		if len(p) < n {
			return fmt.Errorf("truncated %s value", t.Kind)
		}
		return nil
	}
	mk := func(v Value, n int) (Value, []byte, error) {
		if null {
			return NullValue(t.Kind), p[n:], nil
		}
		return v, p[n:], nil
	}
	switch t.Kind {
	case KindByteInt:
		if err := need(1); err != nil {
			return Value{}, p, err
		}
		return mk(IntValue(t.Kind, int64(int8(p[0]))), 1)
	case KindSmallInt:
		if err := need(2); err != nil {
			return Value{}, p, err
		}
		return mk(IntValue(t.Kind, int64(int16(binary.BigEndian.Uint16(p)))), 2)
	case KindInteger, KindDate, KindTime:
		if err := need(4); err != nil {
			return Value{}, p, err
		}
		return mk(IntValue(t.Kind, int64(int32(binary.BigEndian.Uint32(p)))), 4)
	case KindBigInt:
		if err := need(8); err != nil {
			return Value{}, p, err
		}
		return mk(IntValue(t.Kind, int64(binary.BigEndian.Uint64(p))), 8)
	case KindFloat:
		if err := need(8); err != nil {
			return Value{}, p, err
		}
		return mk(FloatValue(math.Float64frombits(binary.BigEndian.Uint64(p))), 8)
	case KindDecimal:
		sz := DecimalWireSize(t.Precision)
		if err := need(sz); err != nil {
			return Value{}, p, err
		}
		var u uint64
		for i := sz - 1; i >= 0; i-- {
			u = u<<8 | uint64(p[i])
		}
		// sign-extend
		shift := uint(64 - 8*sz)
		iv := int64(u<<shift) >> shift
		v := IntValue(KindDecimal, iv)
		v.S = FormatDecimal(iv, t.Scale)
		return mk(v, sz)
	case KindChar:
		if err := need(t.Length); err != nil {
			return Value{}, p, err
		}
		return mk(StringValue(KindChar, strings.TrimRight(string(p[:t.Length]), " ")), t.Length)
	case KindTimestamp:
		if err := need(TimestampWidth); err != nil {
			return Value{}, p, err
		}
		return mk(StringValue(KindTimestamp, strings.TrimRight(string(p[:TimestampWidth]), " ")), TimestampWidth)
	case KindVarChar:
		if err := need(2); err != nil {
			return Value{}, p, err
		}
		n := int(binary.BigEndian.Uint16(p))
		if err := need(2 + n); err != nil {
			return Value{}, p, err
		}
		if n > t.Length {
			return Value{}, p, fmt.Errorf("VARCHAR length %d exceeds declared %d", n, t.Length)
		}
		return mk(StringValue(KindVarChar, string(p[2:2+n])), 2+n)
	case KindByte:
		if err := need(t.Length); err != nil {
			return Value{}, p, err
		}
		b := make([]byte, t.Length)
		copy(b, p[:t.Length])
		return mk(BytesValue(KindByte, b), t.Length)
	case KindVarByte:
		if err := need(2); err != nil {
			return Value{}, p, err
		}
		n := int(binary.BigEndian.Uint16(p))
		if err := need(2 + n); err != nil {
			return Value{}, p, err
		}
		if n > t.Length {
			return Value{}, p, fmt.Errorf("VARBYTE length %d exceeds declared %d", n, t.Length)
		}
		b := make([]byte, n)
		copy(b, p[2:2+n])
		return mk(BytesValue(KindVarByte, b), 2+n)
	default:
		return Value{}, p, fmt.Errorf("cannot decode kind %s", t.Kind)
	}
}

// CountRecords scans a chunk payload and returns the number of complete
// indicator-mode records it contains, without materializing values. This is
// the "minimal processing" the virtualizer performs before acknowledging a
// chunk (§5): framing validation only.
func CountRecords(buf []byte) (int, error) {
	n := 0
	for len(buf) > 0 {
		if len(buf) < 2 {
			return n, fmt.Errorf("ltype: truncated record length prefix")
		}
		payload := int(binary.BigEndian.Uint16(buf))
		total := 2 + payload + 1
		if len(buf) < total {
			return n, fmt.Errorf("ltype: truncated record")
		}
		if buf[total-1] != RecordTerminator {
			return n, fmt.Errorf("ltype: record %d missing terminator", n)
		}
		buf = buf[total:]
		n++
	}
	return n, nil
}
