package ltype

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// RecordTerminator ends every indicator-mode record on the wire. The legacy
// client uses it as a framing sanity check.
const RecordTerminator = 0x0A

// Record is one row of values matching a Layout.
type Record []Value

// EncodeRecord appends the indicator-mode binary encoding of rec to dst and
// returns the extended slice. Like every other wire format in the system
// (DWP parcel headers, TDF packets), records are network byte order end to
// end — the endian invariant etlvirtlint enforces. The format is:
//
//	uint16 BE  payload length (indicators + field bytes)
//	indicator bitmap, ceil(nfields/8) bytes, MSB-first, bit set = NULL
//	field values in layout order (NULL fields still occupy their fixed
//	width with zero bytes; variable-length NULL fields encode length 0)
//	terminator byte 0x0A
func EncodeRecord(dst []byte, layout *Layout, rec Record) ([]byte, error) {
	if len(rec) != len(layout.Fields) {
		return dst, fmt.Errorf("ltype: record has %d values, layout %q has %d fields",
			len(rec), layout.Name, len(layout.Fields))
	}
	lenPos := len(dst)
	dst = append(dst, 0, 0) // payload length placeholder
	start := len(dst)

	nInd := (len(layout.Fields) + 7) / 8
	indPos := len(dst)
	for i := 0; i < nInd; i++ {
		dst = append(dst, 0)
	}
	for i, f := range layout.Fields {
		v := rec[i]
		if v.Null {
			dst[indPos+i/8] |= 0x80 >> (i % 8)
		}
		var err error
		dst, err = encodeValue(dst, f.Type, v)
		if err != nil {
			return dst, fmt.Errorf("ltype: field %q: %w", f.Name, err)
		}
	}
	payload := len(dst) - start
	if payload > math.MaxUint16 {
		return dst, fmt.Errorf("ltype: record payload %d exceeds 64KB", payload)
	}
	binary.BigEndian.PutUint16(dst[lenPos:], uint16(payload))
	dst = append(dst, RecordTerminator)
	return dst, nil
}

func encodeValue(dst []byte, t Type, v Value) ([]byte, error) {
	if !v.Null && v.Kind != t.Kind {
		return dst, fmt.Errorf("value kind %s does not match field type %s", v.Kind, t.Kind)
	}
	switch t.Kind {
	case KindByteInt:
		return append(dst, byte(int8(v.I))), nil
	case KindSmallInt:
		return binary.BigEndian.AppendUint16(dst, uint16(int16(v.I))), nil
	case KindInteger, KindDate:
		return binary.BigEndian.AppendUint32(dst, uint32(int32(v.I))), nil
	case KindTime:
		return binary.BigEndian.AppendUint32(dst, uint32(int32(v.I))), nil
	case KindBigInt:
		return binary.BigEndian.AppendUint64(dst, uint64(v.I)), nil
	case KindFloat:
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(v.F)), nil
	case KindDecimal:
		sz := DecimalWireSize(t.Precision)
		u := uint64(v.I)
		for i := 0; i < sz; i++ {
			dst = append(dst, byte(u>>(8*i)))
		}
		return dst, nil
	case KindChar:
		s := v.S
		if v.Null {
			s = ""
		}
		if len(s) > t.Length {
			return dst, fmt.Errorf("CHAR value of %d bytes exceeds length %d", len(s), t.Length)
		}
		dst = append(dst, s...)
		for i := len(s); i < t.Length; i++ {
			dst = append(dst, ' ')
		}
		return dst, nil
	case KindTimestamp:
		s := v.S
		if v.Null {
			s = ""
		}
		if len(s) > TimestampWidth {
			return dst, fmt.Errorf("TIMESTAMP value of %d bytes exceeds width %d", len(s), TimestampWidth)
		}
		dst = append(dst, s...)
		for i := len(s); i < TimestampWidth; i++ {
			dst = append(dst, ' ')
		}
		return dst, nil
	case KindVarChar:
		s := v.S
		if v.Null {
			s = ""
		}
		if len(s) > t.Length {
			return dst, fmt.Errorf("VARCHAR value of %d bytes exceeds length %d", len(s), t.Length)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
		return append(dst, s...), nil
	case KindByte:
		b := v.B
		if v.Null {
			b = nil
		}
		if len(b) > t.Length {
			return dst, fmt.Errorf("BYTE value of %d bytes exceeds length %d", len(b), t.Length)
		}
		dst = append(dst, b...)
		for i := len(b); i < t.Length; i++ {
			dst = append(dst, 0)
		}
		return dst, nil
	case KindVarByte:
		b := v.B
		if v.Null {
			b = nil
		}
		if len(b) > t.Length {
			return dst, fmt.Errorf("VARBYTE value of %d bytes exceeds length %d", len(b), t.Length)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(b)))
		return append(dst, b...), nil
	default:
		return dst, fmt.Errorf("cannot encode kind %s", t.Kind)
	}
}

// DecodeRecord decodes one indicator-mode record from buf, returning the
// record and the number of bytes consumed. It returns an error if buf does
// not start with a complete, well-formed record. Hot-path callers use
// DecodeRecordInto, which reuses a caller-provided scratch record.
func DecodeRecord(buf []byte, layout *Layout) (Record, int, error) {
	if len(buf) < 2 {
		return nil, 0, fmt.Errorf("ltype: truncated record: missing length prefix")
	}
	total := 2 + int(binary.BigEndian.Uint16(buf)) + 1
	if len(buf) < total {
		return nil, 0, fmt.Errorf("ltype: truncated record: need %d bytes, have %d", total, len(buf))
	}
	rec := make(Record, len(layout.Fields))
	// One copy of just this record's bytes: the decoded string values alias
	// the immutable copy, so the returned record is safe regardless of what
	// the caller later does with buf.
	n, err := DecodeRecordInto(rec, string(buf[:total]), layout)
	if err != nil {
		return nil, 0, err
	}
	// DecodeRecordInto leaves DECIMAL text unformatted; this compatibility
	// API promises it eagerly.
	for i, f := range layout.Fields {
		if f.Type.Kind == KindDecimal && !rec[i].Null {
			rec[i].S = FormatDecimal(rec[i].I, f.Type.Scale)
		}
	}
	return rec, n, nil
}

// DecodeRecordInto decodes one indicator-mode record from the front of buf
// into rec, which must have exactly len(layout.Fields) values, and returns
// the number of bytes consumed. It is the allocation-free core of
// DecodeRecord: string-kinded values alias buf's memory (buf being a string
// guarantees they stay immutable), binary-kinded values reuse rec's
// existing B capacity, and DECIMAL values carry only the unscaled integer
// in I — their S text is NOT materialized; use AppendDecimal with the
// field's scale to render them. The caller owns rec and must consume or
// copy its values before the next DecodeRecordInto call on the same rec.
//
//etlvirt:hotpath
func DecodeRecordInto(rec Record, buf string, layout *Layout) (int, error) {
	if len(rec) != len(layout.Fields) {
		return 0, errScratchSize(len(rec), layout)
	}
	if len(buf) < 2 {
		return 0, errMissingLenPrefix()
	}
	payload := int(beU16(buf))
	total := 2 + payload + 1
	if len(buf) < total {
		return 0, errTruncatedRecord(total, len(buf))
	}
	if buf[total-1] != RecordTerminator {
		return 0, errMissingTerminator()
	}
	p := buf[2 : 2+payload]
	nInd := (len(layout.Fields) + 7) / 8
	if len(p) < nInd {
		return 0, errShortIndicators()
	}
	ind := p[:nInd]
	p = p[nInd:]
	for i := range layout.Fields {
		null := ind[i/8]&(0x80>>(i%8)) != 0
		n, err := decodeValueInto(&rec[i], p, layout.Fields[i].Type, null)
		if err != nil {
			return 0, errField(layout.Fields[i].Name, err)
		}
		p = p[n:]
	}
	if len(p) != 0 {
		return 0, errTrailingBytes(len(p))
	}
	return total, nil
}

// reset prepares a scratch value for a freshly decoded field: every payload
// slot is cleared but the B capacity survives, so binary fields recycle
// their backing array across rows.
//
//etlvirt:hotpath
func (v *Value) reset(k Kind, null bool) {
	v.Kind, v.Null, v.I, v.F, v.S = k, null, 0, 0, ""
	v.B = v.B[:0]
}

// decodeValueInto decodes one field value from the front of p into v and
// returns the number of payload bytes consumed. NULL fields still consume
// their wire bytes but leave v a NULL of the field's kind.
//
//etlvirt:hotpath
func decodeValueInto(v *Value, p string, t Type, null bool) (int, error) {
	v.reset(t.Kind, null)
	switch t.Kind {
	case KindByteInt:
		if len(p) < 1 {
			return 0, errTruncatedValue(t.Kind)
		}
		if !null {
			v.I = int64(int8(p[0]))
		}
		return 1, nil
	case KindSmallInt:
		if len(p) < 2 {
			return 0, errTruncatedValue(t.Kind)
		}
		if !null {
			v.I = int64(int16(beU16(p)))
		}
		return 2, nil
	case KindInteger, KindDate, KindTime:
		if len(p) < 4 {
			return 0, errTruncatedValue(t.Kind)
		}
		if !null {
			v.I = int64(int32(beU32(p)))
		}
		return 4, nil
	case KindBigInt:
		if len(p) < 8 {
			return 0, errTruncatedValue(t.Kind)
		}
		if !null {
			v.I = int64(beU64(p))
		}
		return 8, nil
	case KindFloat:
		if len(p) < 8 {
			return 0, errTruncatedValue(t.Kind)
		}
		if !null {
			v.F = math.Float64frombits(beU64(p))
		}
		return 8, nil
	case KindDecimal:
		sz := DecimalWireSize(t.Precision)
		if len(p) < sz {
			return 0, errTruncatedValue(t.Kind)
		}
		if !null {
			var u uint64
			for i := sz - 1; i >= 0; i-- {
				u = u<<8 | uint64(p[i])
			}
			// sign-extend; S stays empty — see DecodeRecordInto
			shift := uint(64 - 8*sz)
			v.I = int64(u<<shift) >> shift
		}
		return sz, nil
	case KindChar:
		if len(p) < t.Length {
			return 0, errTruncatedValue(t.Kind)
		}
		if !null {
			v.S = strings.TrimRight(p[:t.Length], " ")
		}
		return t.Length, nil
	case KindTimestamp:
		if len(p) < TimestampWidth {
			return 0, errTruncatedValue(t.Kind)
		}
		if !null {
			v.S = strings.TrimRight(p[:TimestampWidth], " ")
		}
		return TimestampWidth, nil
	case KindVarChar:
		if len(p) < 2 {
			return 0, errTruncatedValue(t.Kind)
		}
		n := int(beU16(p))
		if len(p) < 2+n {
			return 0, errTruncatedValue(t.Kind)
		}
		if n > t.Length {
			return 0, errVarLength("VARCHAR", n, t.Length)
		}
		if !null {
			v.S = p[2 : 2+n]
		}
		return 2 + n, nil
	case KindByte:
		if len(p) < t.Length {
			return 0, errTruncatedValue(t.Kind)
		}
		if !null {
			v.B = append(v.B, p[:t.Length]...)
		}
		return t.Length, nil
	case KindVarByte:
		if len(p) < 2 {
			return 0, errTruncatedValue(t.Kind)
		}
		n := int(beU16(p))
		if len(p) < 2+n {
			return 0, errTruncatedValue(t.Kind)
		}
		if n > t.Length {
			return 0, errVarLength("VARBYTE", n, t.Length)
		}
		if !null {
			v.B = append(v.B, p[2:2+n]...)
		}
		return 2 + n, nil
	default:
		return 0, errBadKind(t.Kind)
	}
}

// Big-endian loads from a string, the wire byte order everywhere in the
// system (see EncodeRecord). encoding/binary only reads []byte; these keep
// the string-aliasing decode path off the allocator.

//etlvirt:hotpath
func beU16(s string) uint16 { return uint16(s[0])<<8 | uint16(s[1]) }

//etlvirt:hotpath
func beU32(s string) uint32 {
	return uint32(s[0])<<24 | uint32(s[1])<<16 | uint32(s[2])<<8 | uint32(s[3])
}

//etlvirt:hotpath
func beU64(s string) uint64 { return uint64(beU32(s))<<32 | uint64(beU32(s[4:])) }

// Cold error constructors: the hot decode functions above are barred from
// fmt by the hotalloc analyzer, so message formatting lives here.

func errScratchSize(n int, layout *Layout) error {
	return fmt.Errorf("ltype: scratch record has %d values, layout %q has %d fields",
		n, layout.Name, len(layout.Fields))
}

func errMissingLenPrefix() error {
	return fmt.Errorf("ltype: truncated record: missing length prefix")
}

func errTruncatedRecord(need, have int) error {
	return fmt.Errorf("ltype: truncated record: need %d bytes, have %d", need, have)
}

func errMissingTerminator() error { return fmt.Errorf("ltype: record missing terminator") }

func errShortIndicators() error { return fmt.Errorf("ltype: record too short for indicator bytes") }

func errField(name string, err error) error { return fmt.Errorf("ltype: field %q: %w", name, err) }

func errTrailingBytes(n int) error {
	return fmt.Errorf("ltype: %d trailing bytes in record payload", n)
}

func errTruncatedValue(k Kind) error { return fmt.Errorf("truncated %s value", k) }

func errVarLength(what string, n, max int) error {
	return fmt.Errorf("%s length %d exceeds declared %d", what, n, max)
}

func errBadKind(k Kind) error { return fmt.Errorf("cannot decode kind %s", k) }

// CountRecords scans a chunk payload and returns the number of complete
// indicator-mode records it contains, without materializing values. This is
// the "minimal processing" the virtualizer performs before acknowledging a
// chunk (§5): framing validation only.
func CountRecords(buf []byte) (int, error) {
	n := 0
	for len(buf) > 0 {
		if len(buf) < 2 {
			return n, fmt.Errorf("ltype: truncated record length prefix")
		}
		payload := int(binary.BigEndian.Uint16(buf))
		total := 2 + payload + 1
		if len(buf) < total {
			return n, fmt.Errorf("ltype: truncated record")
		}
		if buf[total-1] != RecordTerminator {
			return n, fmt.Errorf("ltype: record %d missing terminator", n)
		}
		buf = buf[total:]
		n++
	}
	return n, nil
}
