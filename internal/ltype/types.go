// Package ltype implements the legacy EDW type system and the on-the-wire
// record encodings used by legacy ETL clients: the indicator-mode binary
// record format and the delimiter-separated "vartext" format.
//
// The type system models a Teradata-style legacy warehouse: fixed- and
// variable-length character types with LATIN/UNICODE character sets, exact
// numerics including scaled DECIMALs, approximate FLOATs, and the legacy
// integer DATE encoding ((year-1900)*10000 + month*100 + day).
package ltype

import (
	"fmt"
	"strings"
)

// Kind identifies a legacy data type.
type Kind uint8

// Legacy type kinds. The numeric values are part of the wire protocol
// (layout definitions are transmitted with these codes) and must not change.
const (
	KindInvalid   Kind = 0
	KindByteInt   Kind = 1  // 1-byte signed integer
	KindSmallInt  Kind = 2  // 2-byte signed integer
	KindInteger   Kind = 3  // 4-byte signed integer
	KindBigInt    Kind = 4  // 8-byte signed integer
	KindFloat     Kind = 5  // 8-byte IEEE-754 double
	KindDecimal   Kind = 6  // exact numeric, scaled integer representation
	KindChar      Kind = 7  // fixed-length character, space padded
	KindVarChar   Kind = 8  // variable-length character
	KindDate      Kind = 9  // legacy integer date
	KindTime      Kind = 10 // seconds since midnight, 4-byte
	KindTimestamp Kind = 11 // fixed-width character timestamp 'YYYY-MM-DD HH:MM:SS'
	KindByte      Kind = 12 // fixed-length binary
	KindVarByte   Kind = 13 // variable-length binary
)

// String returns the legacy DDL spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindByteInt:
		return "BYTEINT"
	case KindSmallInt:
		return "SMALLINT"
	case KindInteger:
		return "INTEGER"
	case KindBigInt:
		return "BIGINT"
	case KindFloat:
		return "FLOAT"
	case KindDecimal:
		return "DECIMAL"
	case KindChar:
		return "CHAR"
	case KindVarChar:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	case KindTime:
		return "TIME"
	case KindTimestamp:
		return "TIMESTAMP"
	case KindByte:
		return "BYTE"
	case KindVarByte:
		return "VARBYTE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// CharSet identifies the character set of a character-typed field.
type CharSet uint8

// Character sets supported by the legacy system.
const (
	CharSetLatin   CharSet = 0 // single-byte Latin
	CharSetUnicode CharSet = 1 // UTF-8 transport encoding of UNICODE columns
)

// String returns the legacy spelling of the character set.
func (c CharSet) String() string {
	if c == CharSetUnicode {
		return "UNICODE"
	}
	return "LATIN"
}

// Type is a fully-resolved legacy type: a kind plus its length and, for
// decimals, precision and scale.
type Type struct {
	Kind      Kind
	Length    int     // CHAR/VARCHAR/BYTE/VARBYTE length in bytes
	Precision int     // DECIMAL total digits (1..18)
	Scale     int     // DECIMAL fraction digits (0..Precision)
	CharSet   CharSet // character types only
}

// Char returns a CHAR(n) type.
func Char(n int) Type { return Type{Kind: KindChar, Length: n} }

// VarChar returns a VARCHAR(n) type.
func VarChar(n int) Type { return Type{Kind: KindVarChar, Length: n} }

// Decimal returns a DECIMAL(p,s) type.
func Decimal(p, s int) Type { return Type{Kind: KindDecimal, Precision: p, Scale: s} }

// Simple returns a type with the given kind and no parameters.
func Simple(k Kind) Type { return Type{Kind: k} }

// String returns the legacy DDL spelling of the type.
func (t Type) String() string {
	switch t.Kind {
	case KindChar, KindVarChar:
		s := fmt.Sprintf("%s(%d)", t.Kind, t.Length)
		if t.CharSet == CharSetUnicode {
			s += " CHARACTER SET UNICODE"
		}
		return s
	case KindByte, KindVarByte:
		return fmt.Sprintf("%s(%d)", t.Kind, t.Length)
	case KindDecimal:
		return fmt.Sprintf("DECIMAL(%d,%d)", t.Precision, t.Scale)
	default:
		return t.Kind.String()
	}
}

// FixedWireSize reports the number of payload bytes the type occupies in an
// indicator-mode record, excluding any length prefix, and whether the size is
// fixed. Variable-length types return (0, false).
func (t Type) FixedWireSize() (int, bool) {
	switch t.Kind {
	case KindByteInt:
		return 1, true
	case KindSmallInt:
		return 2, true
	case KindInteger, KindDate, KindTime:
		return 4, true
	case KindBigInt, KindFloat:
		return 8, true
	case KindDecimal:
		return DecimalWireSize(t.Precision), true
	case KindChar, KindByte:
		return t.Length, true
	case KindTimestamp:
		return TimestampWidth, true
	default:
		return 0, false
	}
}

// TimestampWidth is the fixed character width of a legacy TIMESTAMP(0)
// value: 'YYYY-MM-DD HH:MM:SS'.
const TimestampWidth = 19

// DecimalWireSize returns the storage size in bytes for a DECIMAL of the
// given precision, mirroring the legacy system's tiered representation.
func DecimalWireSize(precision int) int {
	switch {
	case precision <= 2:
		return 1
	case precision <= 4:
		return 2
	case precision <= 9:
		return 4
	default:
		return 8
	}
}

// Validate reports whether the type parameters are in range.
func (t Type) Validate() error {
	switch t.Kind {
	case KindChar, KindVarChar, KindByte, KindVarByte:
		if t.Length <= 0 || t.Length > 64000 {
			return fmt.Errorf("ltype: %s length %d out of range [1,64000]", t.Kind, t.Length)
		}
	case KindDecimal:
		if t.Precision < 1 || t.Precision > 18 {
			return fmt.Errorf("ltype: DECIMAL precision %d out of range [1,18]", t.Precision)
		}
		if t.Scale < 0 || t.Scale > t.Precision {
			return fmt.Errorf("ltype: DECIMAL scale %d out of range [0,%d]", t.Scale, t.Precision)
		}
	case KindByteInt, KindSmallInt, KindInteger, KindBigInt, KindFloat,
		KindDate, KindTime, KindTimestamp:
		// no parameters
	default:
		return fmt.Errorf("ltype: invalid kind %d", t.Kind)
	}
	return nil
}

// ParseTypeName parses a legacy DDL type spelling such as "VARCHAR(5)",
// "DECIMAL(10,2)" or "CHAR(8) CHARACTER SET UNICODE". It is used by the ETL
// script parser for .field declarations.
func ParseTypeName(s string) (Type, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	unicode := false
	if i := strings.Index(u, "CHARACTER SET UNICODE"); i >= 0 {
		unicode = true
		u = strings.TrimSpace(u[:i])
	} else if i := strings.Index(u, "CHARACTER SET LATIN"); i >= 0 {
		u = strings.TrimSpace(u[:i])
	}
	name := u
	var args []int
	if i := strings.IndexByte(u, '('); i >= 0 {
		j := strings.IndexByte(u, ')')
		if j < i {
			return Type{}, fmt.Errorf("ltype: malformed type %q", s)
		}
		name = strings.TrimSpace(u[:i])
		for _, part := range strings.Split(u[i+1:j], ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil {
				return Type{}, fmt.Errorf("ltype: malformed type argument in %q", s)
			}
			args = append(args, n)
		}
	}
	var t Type
	switch name {
	case "BYTEINT":
		t = Simple(KindByteInt)
	case "SMALLINT":
		t = Simple(KindSmallInt)
	case "INTEGER", "INT":
		t = Simple(KindInteger)
	case "BIGINT":
		t = Simple(KindBigInt)
	case "FLOAT", "DOUBLE PRECISION", "REAL":
		t = Simple(KindFloat)
	case "DATE":
		t = Simple(KindDate)
	case "TIME":
		t = Simple(KindTime)
	case "TIMESTAMP":
		t = Simple(KindTimestamp)
	case "DECIMAL", "NUMERIC", "DEC":
		if len(args) == 0 {
			t = Decimal(5, 0)
		} else if len(args) == 1 {
			t = Decimal(args[0], 0)
		} else {
			t = Decimal(args[0], args[1])
		}
	case "CHAR", "CHARACTER":
		n := 1
		if len(args) > 0 {
			n = args[0]
		}
		t = Char(n)
	case "VARCHAR", "CHARACTER VARYING", "CHAR VARYING":
		if len(args) == 0 {
			return Type{}, fmt.Errorf("ltype: VARCHAR requires a length in %q", s)
		}
		t = VarChar(args[0])
	case "BYTE":
		n := 1
		if len(args) > 0 {
			n = args[0]
		}
		t = Type{Kind: KindByte, Length: n}
	case "VARBYTE":
		if len(args) == 0 {
			return Type{}, fmt.Errorf("ltype: VARBYTE requires a length in %q", s)
		}
		t = Type{Kind: KindVarByte, Length: args[0]}
	default:
		return Type{}, fmt.Errorf("ltype: unknown type %q", s)
	}
	if unicode {
		if t.Kind != KindChar && t.Kind != KindVarChar {
			return Type{}, fmt.Errorf("ltype: CHARACTER SET on non-character type %q", s)
		}
		t.CharSet = CharSetUnicode
	}
	if err := t.Validate(); err != nil {
		return Type{}, err
	}
	return t, nil
}

// Field is a named, typed position in a record layout.
type Field struct {
	Name string
	Type Type
}

// Layout describes the shape of records in a load or export job: an ordered
// list of fields, as declared by .layout/.field commands in an ETL script.
type Layout struct {
	Name   string
	Fields []Field
}

// FieldIndex returns the position of the named field (case-insensitive), or
// -1 if the layout has no such field.
func (l *Layout) FieldIndex(name string) int {
	for i, f := range l.Fields {
		if strings.EqualFold(f.Name, name) {
			return i
		}
	}
	return -1
}

// Validate checks every field type and that field names are unique.
func (l *Layout) Validate() error {
	seen := make(map[string]bool, len(l.Fields))
	if len(l.Fields) == 0 {
		return fmt.Errorf("ltype: layout %q has no fields", l.Name)
	}
	for _, f := range l.Fields {
		if f.Name == "" {
			return fmt.Errorf("ltype: layout %q has an unnamed field", l.Name)
		}
		key := strings.ToUpper(f.Name)
		if seen[key] {
			return fmt.Errorf("ltype: layout %q has duplicate field %q", l.Name, f.Name)
		}
		seen[key] = true
		if err := f.Type.Validate(); err != nil {
			return fmt.Errorf("ltype: layout %q field %q: %w", l.Name, f.Name, err)
		}
	}
	return nil
}

// MaxRecordSize returns an upper bound on the encoded size of one
// indicator-mode record with this layout, used for buffer sizing.
func (l *Layout) MaxRecordSize() int {
	n := 2 + (len(l.Fields)+7)/8 + 1 // length prefix + indicators + terminator
	for _, f := range l.Fields {
		if sz, fixed := f.Type.FixedWireSize(); fixed {
			n += sz
		} else {
			n += 2 + f.Type.Length
		}
	}
	return n
}
