package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"etlvirt/internal/ltype"
)

// Message body encoding helpers. Bodies are sequences of primitive fields:
// fixed-width big-endian integers, length-prefixed strings and byte slices.

type bodyWriter struct{ b []byte }

func (w *bodyWriter) u8(v uint8)   { w.b = append(w.b, v) }
func (w *bodyWriter) u16(v uint16) { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *bodyWriter) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *bodyWriter) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *bodyWriter) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *bodyWriter) str(s string) error {
	if len(s) > math.MaxUint32 {
		return fmt.Errorf("wire: string too long")
	}
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
	return nil
}

func (w *bodyWriter) bytes(p []byte) error {
	if len(p) > math.MaxUint32 {
		return fmt.Errorf("wire: byte slice too long")
	}
	w.u32(uint32(len(p)))
	w.b = append(w.b, p...)
	return nil
}

type bodyReader struct {
	b   []byte
	err error
}

func (r *bodyReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated body reading %s", what)
	}
}

func (r *bodyReader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail("u8")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *bodyReader) u16() uint16 {
	if r.err != nil || len(r.b) < 2 {
		r.fail("u16")
		return 0
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *bodyReader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail("u32")
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *bodyReader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail("u64")
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *bodyReader) bool() bool { return r.u8() != 0 }

func (r *bodyReader) str() string {
	n := int(r.u32())
	if r.err != nil || len(r.b) < n {
		r.fail("string")
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *bodyReader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || len(r.b) < n {
		r.fail("bytes")
		return nil
	}
	p := make([]byte, n)
	copy(p, r.b[:n])
	r.b = r.b[n:]
	return p
}

func (r *bodyReader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes in body", len(r.b))
	}
	return nil
}

// Layout wire encoding: count, then per field name + kind + length +
// precision + scale + charset.

func writeLayout(w *bodyWriter, l *ltype.Layout) error {
	if err := w.str(l.Name); err != nil {
		return err
	}
	if len(l.Fields) > math.MaxUint16 {
		return fmt.Errorf("wire: layout has too many fields")
	}
	w.u16(uint16(len(l.Fields)))
	for _, f := range l.Fields {
		if err := w.str(f.Name); err != nil {
			return err
		}
		w.u8(uint8(f.Type.Kind))
		w.u32(uint32(f.Type.Length))
		w.u8(uint8(f.Type.Precision))
		w.u8(uint8(f.Type.Scale))
		w.u8(uint8(f.Type.CharSet))
	}
	return nil
}

func readLayout(r *bodyReader) *ltype.Layout {
	l := &ltype.Layout{Name: r.str()}
	n := int(r.u16())
	for i := 0; i < n && r.err == nil; i++ {
		var f ltype.Field
		f.Name = r.str()
		f.Type.Kind = ltype.Kind(r.u8())
		f.Type.Length = int(r.u32())
		f.Type.Precision = int(r.u8())
		f.Type.Scale = int(r.u8())
		f.Type.CharSet = ltype.CharSet(r.u8())
		l.Fields = append(l.Fields, f)
	}
	return l
}
