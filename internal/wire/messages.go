package wire

import (
	"fmt"
	"time"

	"etlvirt/internal/ltype"
	"etlvirt/internal/obs"
)

// Message is a decoded frame body. Each concrete message type corresponds to
// one frame Kind.
type Message interface {
	Kind() Kind
	encode(w *bodyWriter) error
	decode(r *bodyReader) error
}

// DataFormat selects how records are encoded inside DataChunk frames.
type DataFormat uint8

// Data formats supported for load jobs.
const (
	FormatIndicator DataFormat = 0 // indicator-mode binary records
	FormatVartext   DataFormat = 1 // delimiter-separated text records
)

// String returns the script spelling of the format.
func (f DataFormat) String() string {
	if f == FormatVartext {
		return "VARTEXT"
	}
	return "INDICATOR"
}

// Logon authenticates a new session.
type Logon struct {
	Host     string
	User     string
	Password string
	Account  string
}

// Kind implements Message.
func (*Logon) Kind() Kind { return KindLogon }

func (m *Logon) encode(w *bodyWriter) error {
	for _, s := range []string{m.Host, m.User, m.Password, m.Account} {
		if err := w.str(s); err != nil {
			return err
		}
	}
	return nil
}

func (m *Logon) decode(r *bodyReader) error {
	m.Host, m.User, m.Password, m.Account = r.str(), r.str(), r.str(), r.str()
	return r.done()
}

// LogonOK confirms a session.
type LogonOK struct {
	SessionID     uint32
	ServerVersion string
}

// Kind implements Message.
func (*LogonOK) Kind() Kind { return KindLogonOK }

func (m *LogonOK) encode(w *bodyWriter) error {
	w.u32(m.SessionID)
	return w.str(m.ServerVersion)
}

func (m *LogonOK) decode(r *bodyReader) error {
	m.SessionID = r.u32()
	m.ServerVersion = r.str()
	return r.done()
}

// Logoff ends a session.
type Logoff struct{}

// Kind implements Message.
func (*Logoff) Kind() Kind { return KindLogoff }

func (m *Logoff) encode(*bodyWriter) error   { return nil }
func (m *Logoff) decode(r *bodyReader) error { return r.done() }

// RunSQL executes a SQL request on the control session.
type RunSQL struct {
	SQL string
}

// Kind implements Message.
func (*RunSQL) Kind() Kind { return KindRunSQL }

func (m *RunSQL) encode(w *bodyWriter) error { return w.str(m.SQL) }
func (m *RunSQL) decode(r *bodyReader) error {
	m.SQL = r.str()
	return r.done()
}

// StmtSuccess reports a successful statement with its activity count.
type StmtSuccess struct {
	ActivityCount uint64
	Warning       string
}

// Kind implements Message.
func (*StmtSuccess) Kind() Kind { return KindStmtSuccess }

func (m *StmtSuccess) encode(w *bodyWriter) error {
	w.u64(m.ActivityCount)
	return w.str(m.Warning)
}

func (m *StmtSuccess) decode(r *bodyReader) error {
	m.ActivityCount = r.u64()
	m.Warning = r.str()
	return r.done()
}

// RecordHeader announces a result set and carries its layout.
type RecordHeader struct {
	Layout *ltype.Layout
}

// Kind implements Message.
func (*RecordHeader) Kind() Kind { return KindRecordHeader }

func (m *RecordHeader) encode(w *bodyWriter) error { return writeLayout(w, m.Layout) }
func (m *RecordHeader) decode(r *bodyReader) error {
	m.Layout = readLayout(r)
	return r.done()
}

// Records carries a batch of indicator-mode records of a result set.
type Records struct {
	Count   uint32
	Payload []byte
}

// Kind implements Message.
func (*Records) Kind() Kind { return KindRecords }

func (m *Records) encode(w *bodyWriter) error {
	w.u32(m.Count)
	return w.bytes(m.Payload)
}

func (m *Records) decode(r *bodyReader) error {
	m.Count = r.u32()
	m.Payload = r.bytes()
	return r.done()
}

// EndStatement terminates a result set.
type EndStatement struct{}

// Kind implements Message.
func (*EndStatement) Kind() Kind { return KindEndStatement }

func (m *EndStatement) encode(*bodyWriter) error   { return nil }
func (m *EndStatement) decode(r *bodyReader) error { return r.done() }

// Failure reports a failed request.
type Failure struct {
	Code    uint32
	Message string
}

// Kind implements Message.
func (*Failure) Kind() Kind { return KindFailure }

func (m *Failure) encode(w *bodyWriter) error {
	w.u32(m.Code)
	return w.str(m.Message)
}

func (m *Failure) decode(r *bodyReader) error {
	m.Code = r.u32()
	m.Message = r.str()
	return r.done()
}

// Error converts a Failure into a Go error.
func (m *Failure) Error() string {
	return fmt.Sprintf("server failure %d: %s", m.Code, m.Message)
}

// BeginLoad starts an import job on the control session.
type BeginLoad struct {
	Table      string // target table, possibly qualified
	ErrTableET string // transformation-error table
	ErrTableUV string // uniqueness-violation table
	Layout     *ltype.Layout
	Format     DataFormat
	Delim      byte   // vartext delimiter
	Sessions   uint16 // number of parallel data sessions the client will open
	MaxErrors  uint32 // 0 means server default
	MaxRetries uint32 // 0 means server default
}

// Kind implements Message.
func (*BeginLoad) Kind() Kind { return KindBeginLoad }

func (m *BeginLoad) encode(w *bodyWriter) error {
	for _, s := range []string{m.Table, m.ErrTableET, m.ErrTableUV} {
		if err := w.str(s); err != nil {
			return err
		}
	}
	if err := writeLayout(w, m.Layout); err != nil {
		return err
	}
	w.u8(uint8(m.Format))
	w.u8(m.Delim)
	w.u16(m.Sessions)
	w.u32(m.MaxErrors)
	w.u32(m.MaxRetries)
	return nil
}

func (m *BeginLoad) decode(r *bodyReader) error {
	m.Table, m.ErrTableET, m.ErrTableUV = r.str(), r.str(), r.str()
	m.Layout = readLayout(r)
	m.Format = DataFormat(r.u8())
	m.Delim = r.u8()
	m.Sessions = r.u16()
	m.MaxErrors = r.u32()
	m.MaxRetries = r.u32()
	return r.done()
}

// LoadOK confirms job creation.
type LoadOK struct {
	JobID uint64
}

// Kind implements Message.
func (*LoadOK) Kind() Kind { return KindLoadOK }

func (m *LoadOK) encode(w *bodyWriter) error { w.u64(m.JobID); return nil }
func (m *LoadOK) decode(r *bodyReader) error {
	m.JobID = r.u64()
	return r.done()
}

// AttachLoad binds a data session to an import job.
type AttachLoad struct {
	JobID      uint64
	SessionSeq uint16 // 0-based index among the job's parallel sessions
}

// Kind implements Message.
func (*AttachLoad) Kind() Kind { return KindAttachLoad }

func (m *AttachLoad) encode(w *bodyWriter) error {
	w.u64(m.JobID)
	w.u16(m.SessionSeq)
	return nil
}

func (m *AttachLoad) decode(r *bodyReader) error {
	m.JobID = r.u64()
	m.SessionSeq = r.u16()
	return r.done()
}

// AttachOK confirms a data-session attach.
type AttachOK struct{}

// Kind implements Message.
func (*AttachOK) Kind() Kind { return KindAttachOK }

func (m *AttachOK) encode(*bodyWriter) error   { return nil }
func (m *AttachOK) decode(r *bodyReader) error { return r.done() }

// DataChunk carries a batch of input records during acquisition. Seq numbers
// are global across the job's sessions and assign each chunk its position in
// the input; FirstRow is the 1-based row number of the chunk's first record.
type DataChunk struct {
	JobID    uint64
	Seq      uint64
	FirstRow uint64
	Count    uint32
	Payload  []byte
}

// Kind implements Message.
func (*DataChunk) Kind() Kind { return KindDataChunk }

func (m *DataChunk) encode(w *bodyWriter) error {
	w.u64(m.JobID)
	w.u64(m.Seq)
	w.u64(m.FirstRow)
	w.u32(m.Count)
	return w.bytes(m.Payload)
}

func (m *DataChunk) decode(r *bodyReader) error {
	m.JobID = r.u64()
	m.Seq = r.u64()
	m.FirstRow = r.u64()
	m.Count = r.u32()
	m.Payload = r.bytes()
	return r.done()
}

// ChunkAck acknowledges receipt of the chunk with the given sequence number.
// The legacy protocol is synchronous per session: the client does not send
// the next chunk on a session until the previous one is acknowledged.
type ChunkAck struct {
	Seq uint64
}

// Kind implements Message.
func (*ChunkAck) Kind() Kind { return KindChunkAck }

func (m *ChunkAck) encode(w *bodyWriter) error { w.u64(m.Seq); return nil }
func (m *ChunkAck) decode(r *bodyReader) error {
	m.Seq = r.u64()
	return r.done()
}

// EndAcquire signals that a data session has no more chunks.
type EndAcquire struct {
	JobID uint64
}

// Kind implements Message.
func (*EndAcquire) Kind() Kind { return KindEndAcquire }

func (m *EndAcquire) encode(w *bodyWriter) error { w.u64(m.JobID); return nil }
func (m *EndAcquire) decode(r *bodyReader) error {
	m.JobID = r.u64()
	return r.done()
}

// AcquireDone confirms that all received data has been staged and the job is
// ready for the application phase.
type AcquireDone struct {
	JobID      uint64
	RowsStaged uint64
	DataErrors uint64 // malformed records rejected during acquisition
}

// Kind implements Message.
func (*AcquireDone) Kind() Kind { return KindAcquireDone }

func (m *AcquireDone) encode(w *bodyWriter) error {
	w.u64(m.JobID)
	w.u64(m.RowsStaged)
	w.u64(m.DataErrors)
	return nil
}

func (m *AcquireDone) decode(r *bodyReader) error {
	m.JobID = r.u64()
	m.RowsStaged = r.u64()
	m.DataErrors = r.u64()
	return r.done()
}

// ApplyDML submits the application-phase transformation.
type ApplyDML struct {
	JobID uint64
	Label string
	SQL   string
}

// Kind implements Message.
func (*ApplyDML) Kind() Kind { return KindApplyDML }

func (m *ApplyDML) encode(w *bodyWriter) error {
	w.u64(m.JobID)
	if err := w.str(m.Label); err != nil {
		return err
	}
	return w.str(m.SQL)
}

func (m *ApplyDML) decode(r *bodyReader) error {
	m.JobID = r.u64()
	m.Label = r.str()
	m.SQL = r.str()
	return r.done()
}

// ApplyResult reports the outcome of the application phase.
type ApplyResult struct {
	JobID    uint64
	Inserted uint64
	Updated  uint64
	Deleted  uint64
	ErrorsET uint64 // rows recorded in the transformation-error table
	ErrorsUV uint64 // rows recorded in the uniqueness-violation table
}

// Kind implements Message.
func (*ApplyResult) Kind() Kind { return KindApplyResult }

func (m *ApplyResult) encode(w *bodyWriter) error {
	w.u64(m.JobID)
	w.u64(m.Inserted)
	w.u64(m.Updated)
	w.u64(m.Deleted)
	w.u64(m.ErrorsET)
	w.u64(m.ErrorsUV)
	return nil
}

func (m *ApplyResult) decode(r *bodyReader) error {
	m.JobID = r.u64()
	m.Inserted = r.u64()
	m.Updated = r.u64()
	m.Deleted = r.u64()
	m.ErrorsET = r.u64()
	m.ErrorsUV = r.u64()
	return r.done()
}

// EndLoad closes an import job.
type EndLoad struct {
	JobID uint64
}

// Kind implements Message.
func (*EndLoad) Kind() Kind { return KindEndLoad }

func (m *EndLoad) encode(w *bodyWriter) error { w.u64(m.JobID); return nil }
func (m *EndLoad) decode(r *bodyReader) error {
	m.JobID = r.u64()
	return r.done()
}

// LoadDone confirms job teardown.
type LoadDone struct {
	JobID uint64
}

// Kind implements Message.
func (*LoadDone) Kind() Kind { return KindLoadDone }

func (m *LoadDone) encode(w *bodyWriter) error { w.u64(m.JobID); return nil }
func (m *LoadDone) decode(r *bodyReader) error {
	m.JobID = r.u64()
	return r.done()
}

// BeginExport starts an export job whose data source is a SELECT statement.
type BeginExport struct {
	SQL      string
	Sessions uint16
	Format   DataFormat
	Delim    byte
}

// Kind implements Message.
func (*BeginExport) Kind() Kind { return KindBeginExport }

func (m *BeginExport) encode(w *bodyWriter) error {
	if err := w.str(m.SQL); err != nil {
		return err
	}
	w.u16(m.Sessions)
	w.u8(uint8(m.Format))
	w.u8(m.Delim)
	return nil
}

func (m *BeginExport) decode(r *bodyReader) error {
	m.SQL = r.str()
	m.Sessions = r.u16()
	m.Format = DataFormat(r.u8())
	m.Delim = r.u8()
	return r.done()
}

// ExportOK confirms an export job and announces the result layout.
type ExportOK struct {
	JobID  uint64
	Layout *ltype.Layout
}

// Kind implements Message.
func (*ExportOK) Kind() Kind { return KindExportOK }

func (m *ExportOK) encode(w *bodyWriter) error {
	w.u64(m.JobID)
	return writeLayout(w, m.Layout)
}

func (m *ExportOK) decode(r *bodyReader) error {
	m.JobID = r.u64()
	m.Layout = readLayout(r)
	return r.done()
}

// ExportChunkRq requests chunk Seq of the export result.
type ExportChunkRq struct {
	JobID uint64
	Seq   uint64
}

// Kind implements Message.
func (*ExportChunkRq) Kind() Kind { return KindExportChunkRq }

func (m *ExportChunkRq) encode(w *bodyWriter) error {
	w.u64(m.JobID)
	w.u64(m.Seq)
	return nil
}

func (m *ExportChunkRq) decode(r *bodyReader) error {
	m.JobID = r.u64()
	m.Seq = r.u64()
	return r.done()
}

// ExportChunk returns chunk Seq. EOF marks the final chunk; an EOF chunk may
// still carry records.
type ExportChunk struct {
	JobID   uint64
	Seq     uint64
	Count   uint32
	EOF     bool
	Payload []byte
}

// Kind implements Message.
func (*ExportChunk) Kind() Kind { return KindExportChunk }

func (m *ExportChunk) encode(w *bodyWriter) error {
	w.u64(m.JobID)
	w.u64(m.Seq)
	w.u32(m.Count)
	w.bool(m.EOF)
	return w.bytes(m.Payload)
}

func (m *ExportChunk) decode(r *bodyReader) error {
	m.JobID = r.u64()
	m.Seq = r.u64()
	m.Count = r.u32()
	m.EOF = r.bool()
	m.Payload = r.bytes()
	return r.done()
}

// EndExport closes an export job.
type EndExport struct {
	JobID uint64
}

// Kind implements Message.
func (*EndExport) Kind() Kind { return KindEndExport }

func (m *EndExport) encode(w *bodyWriter) error { w.u64(m.JobID); return nil }
func (m *EndExport) decode(r *bodyReader) error {
	m.JobID = r.u64()
	return r.done()
}

// BeginStream opens a long-lived CDC streaming session on the control
// session. Name identifies the stream across reconnects: the server keeps a
// per-name commit watermark in the CDW so a resumed stream can discard
// already-applied deltas.
type BeginStream struct {
	Name            string // durable stream identity, used for checkpoint/resume
	Table           string // target table, possibly qualified
	ErrTableET      string // transformation-error table
	Layout          *ltype.Layout
	Format          DataFormat
	Delim           byte   // vartext delimiter
	SQL             string // INSERT-shaped apply DML; update/delete halves are derived
	LatencyTargetMS uint32 // 0 means server default
	MaxErrors       uint32 // 0 means server default
}

// Kind implements Message.
func (*BeginStream) Kind() Kind { return KindBeginStream }

func (m *BeginStream) encode(w *bodyWriter) error {
	for _, s := range []string{m.Name, m.Table, m.ErrTableET} {
		if err := w.str(s); err != nil {
			return err
		}
	}
	if err := writeLayout(w, m.Layout); err != nil {
		return err
	}
	w.u8(uint8(m.Format))
	w.u8(m.Delim)
	if err := w.str(m.SQL); err != nil {
		return err
	}
	w.u32(m.LatencyTargetMS)
	w.u32(m.MaxErrors)
	return nil
}

func (m *BeginStream) decode(r *bodyReader) error {
	m.Name, m.Table, m.ErrTableET = r.str(), r.str(), r.str()
	m.Layout = readLayout(r)
	m.Format = DataFormat(r.u8())
	m.Delim = r.u8()
	m.SQL = r.str()
	m.LatencyTargetMS = r.u32()
	m.MaxErrors = r.u32()
	return r.done()
}

// StreamOK confirms a stream. ResumeSeq is the persisted commit watermark for
// the stream name: every delta with sequence <= ResumeSeq has already been
// applied, so a resuming client may skip ahead. BatchHint is the controller's
// initial preferred frame size in records.
type StreamOK struct {
	StreamID  uint64
	ResumeSeq uint64
	BatchHint uint32
}

// Kind implements Message.
func (*StreamOK) Kind() Kind { return KindStreamOK }

func (m *StreamOK) encode(w *bodyWriter) error {
	w.u64(m.StreamID)
	w.u64(m.ResumeSeq)
	w.u32(m.BatchHint)
	return nil
}

func (m *StreamOK) decode(r *bodyReader) error {
	m.StreamID = r.u64()
	m.ResumeSeq = r.u64()
	m.BatchHint = r.u32()
	return r.done()
}

// DeltaFrame carries Count CDC delta records. Each record is a one-byte op
// marker ('I', 'U', or 'D') followed by a full-row image in the stream's data
// format. FirstSeq is the global sequence number of the first record; the
// frame covers [FirstSeq, FirstSeq+Count).
type DeltaFrame struct {
	StreamID uint64
	FirstSeq uint64
	Count    uint32
	Payload  []byte
}

// Kind implements Message.
func (*DeltaFrame) Kind() Kind { return KindDeltaFrame }

func (m *DeltaFrame) encode(w *bodyWriter) error {
	w.u64(m.StreamID)
	w.u64(m.FirstSeq)
	w.u32(m.Count)
	return w.bytes(m.Payload)
}

func (m *DeltaFrame) decode(r *bodyReader) error {
	m.StreamID = r.u64()
	m.FirstSeq = r.u64()
	m.Count = r.u32()
	m.Payload = r.bytes()
	return r.done()
}

// DeltaAck acknowledges a delta frame. Like ChunkAck the stream protocol is
// synchronous: the server delays the ack while backpressured, which throttles
// the client. CommittedSeq piggybacks the current durable watermark and
// BatchHint the controller's live preferred frame size, so the client adapts
// without extra round trips.
type DeltaAck struct {
	StreamID     uint64
	Seq          uint64 // FirstSeq of the frame being acknowledged
	CommittedSeq uint64 // highest delta sequence durably applied to the CDW
	BatchHint    uint32 // controller's current preferred records per frame
}

// Kind implements Message.
func (*DeltaAck) Kind() Kind { return KindDeltaAck }

func (m *DeltaAck) encode(w *bodyWriter) error {
	w.u64(m.StreamID)
	w.u64(m.Seq)
	w.u64(m.CommittedSeq)
	w.u32(m.BatchHint)
	return nil
}

func (m *DeltaAck) decode(r *bodyReader) error {
	m.StreamID = r.u64()
	m.Seq = r.u64()
	m.CommittedSeq = r.u64()
	m.BatchHint = r.u32()
	return r.done()
}

// EndStream flushes any buffered deltas, commits, and closes the stream.
type EndStream struct {
	StreamID uint64
}

// Kind implements Message.
func (*EndStream) Kind() Kind { return KindEndStream }

func (m *EndStream) encode(w *bodyWriter) error { w.u64(m.StreamID); return nil }
func (m *EndStream) decode(r *bodyReader) error {
	m.StreamID = r.u64()
	return r.done()
}

// StreamDone reports the final state of a closed stream.
type StreamDone struct {
	StreamID  uint64
	Watermark uint64 // final durable commit watermark
	Inserted  uint64
	Updated   uint64
	Deleted   uint64
	ErrorsET  uint64 // rows recorded in the transformation-error table
	Replayed  uint64 // deltas discarded as already applied (<= resume watermark)
}

// Kind implements Message.
func (*StreamDone) Kind() Kind { return KindStreamDone }

func (m *StreamDone) encode(w *bodyWriter) error {
	w.u64(m.StreamID)
	w.u64(m.Watermark)
	w.u64(m.Inserted)
	w.u64(m.Updated)
	w.u64(m.Deleted)
	w.u64(m.ErrorsET)
	w.u64(m.Replayed)
	return nil
}

func (m *StreamDone) decode(r *bodyReader) error {
	m.StreamID = r.u64()
	m.Watermark = r.u64()
	m.Inserted = r.u64()
	m.Updated = r.u64()
	m.Deleted = r.u64()
	m.ErrorsET = r.u64()
	m.Replayed = r.u64()
	return r.done()
}

// TraceSpans ships client-side trace spans to the server so the virtualizer
// can fold them into the job's distributed timeline before the job is
// evicted. JobID names the server-side job (or stream) the spans belong to.
type TraceSpans struct {
	JobID uint64
	Spans []obs.Span
}

// Kind implements Message.
func (*TraceSpans) Kind() Kind { return KindTraceSpans }

func (m *TraceSpans) encode(w *bodyWriter) error {
	w.u64(m.JobID)
	w.u32(uint32(len(m.Spans)))
	for _, s := range m.Spans {
		w.u64(s.ID)
		w.u64(s.Parent)
		for _, str := range []string{s.Proc, s.Stage, s.Worker} {
			if err := w.str(str); err != nil {
				return err
			}
		}
		w.u64(uint64(s.Start.UnixNano()))
		w.u64(uint64(s.Dur))
		w.u64(uint64(s.Rows))
		w.u64(uint64(s.Bytes))
		w.u32(uint32(s.Depth))
		if err := w.str(s.Err); err != nil {
			return err
		}
	}
	return nil
}

func (m *TraceSpans) decode(r *bodyReader) error {
	m.JobID = r.u64()
	n := r.u32()
	if n == 0 {
		return r.done()
	}
	// Each span is at least 49 encoded bytes; bound the allocation by what the
	// body could actually hold.
	if max := uint32(len(r.b) / 49); n > max {
		n = max + 1 // let the reader run dry and report the short body
	}
	m.Spans = make([]obs.Span, 0, n)
	for i := uint32(0); i < n; i++ {
		var s obs.Span
		s.ID = r.u64()
		s.Parent = r.u64()
		s.Proc, s.Stage, s.Worker = r.str(), r.str(), r.str()
		s.Start = time.Unix(0, int64(r.u64()))
		s.Dur = time.Duration(r.u64())
		s.Rows = int64(r.u64())
		s.Bytes = int64(r.u64())
		s.Depth = int(r.u32())
		s.Err = r.str()
		m.Spans = append(m.Spans, s)
	}
	return r.done()
}

// TraceAck confirms the spans were folded into the job's timeline.
type TraceAck struct {
	JobID uint64
	Added uint32 // spans accepted (the rest hit the trace's span cap)
}

// Kind implements Message.
func (*TraceAck) Kind() Kind { return KindTraceAck }

func (m *TraceAck) encode(w *bodyWriter) error {
	w.u64(m.JobID)
	w.u32(m.Added)
	return nil
}

func (m *TraceAck) decode(r *bodyReader) error {
	m.JobID = r.u64()
	m.Added = r.u32()
	return r.done()
}

// Encode builds a frame for msg on the given session.
func Encode(session uint32, msg Message) (Frame, error) {
	var w bodyWriter
	if err := msg.encode(&w); err != nil {
		return Frame{}, err
	}
	return Frame{Kind: msg.Kind(), Session: session, Body: w.b}, nil
}

// Decode parses a frame body into its message.
func Decode(f Frame) (Message, error) {
	m := newMessage(f.Kind)
	if m == nil {
		return nil, fmt.Errorf("wire: no message for kind %s", f.Kind)
	}
	r := bodyReader{b: f.Body}
	if err := m.decode(&r); err != nil {
		return nil, fmt.Errorf("wire: decoding %s: %w", f.Kind, err)
	}
	return m, nil
}

func newMessage(k Kind) Message {
	//etlvirt:dispatch codec
	switch k {
	case KindLogon:
		return &Logon{}
	case KindLogonOK:
		return &LogonOK{}
	case KindLogoff:
		return &Logoff{}
	case KindRunSQL:
		return &RunSQL{}
	case KindStmtSuccess:
		return &StmtSuccess{}
	case KindRecordHeader:
		return &RecordHeader{}
	case KindRecords:
		return &Records{}
	case KindEndStatement:
		return &EndStatement{}
	case KindFailure:
		return &Failure{}
	case KindBeginLoad:
		return &BeginLoad{}
	case KindLoadOK:
		return &LoadOK{}
	case KindAttachLoad:
		return &AttachLoad{}
	case KindAttachOK:
		return &AttachOK{}
	case KindDataChunk:
		return &DataChunk{}
	case KindChunkAck:
		return &ChunkAck{}
	case KindEndAcquire:
		return &EndAcquire{}
	case KindAcquireDone:
		return &AcquireDone{}
	case KindApplyDML:
		return &ApplyDML{}
	case KindApplyResult:
		return &ApplyResult{}
	case KindEndLoad:
		return &EndLoad{}
	case KindLoadDone:
		return &LoadDone{}
	case KindBeginExport:
		return &BeginExport{}
	case KindExportOK:
		return &ExportOK{}
	case KindExportChunkRq:
		return &ExportChunkRq{}
	case KindExportChunk:
		return &ExportChunk{}
	case KindEndExport:
		return &EndExport{}
	case KindBeginStream:
		return &BeginStream{}
	case KindStreamOK:
		return &StreamOK{}
	case KindDeltaFrame:
		return &DeltaFrame{}
	case KindDeltaAck:
		return &DeltaAck{}
	case KindEndStream:
		return &EndStream{}
	case KindStreamDone:
		return &StreamDone{}
	case KindTraceSpans:
		return &TraceSpans{}
	case KindTraceAck:
		return &TraceAck{}
	default:
		return nil
	}
}
