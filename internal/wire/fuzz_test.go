package wire

import "testing"

// FuzzCoalescer feeds arbitrary bytes to the frame reassembler: it must
// never panic and never hand out a frame with an invalid kind.
func FuzzCoalescer(f *testing.F) {
	good, _ := Encode(1, &RunSQL{SQL: "SELECT 1"})
	enc, _ := AppendFrame(nil, good)
	f.Add(enc)
	f.Add([]byte{Version, byte(KindLogon), 0, 0, 0, 0, 0, 1, 0, 0, 0, 0})
	f.Add([]byte("garbage that is not a frame at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var c Coalescer
		frames, err := c.Push(data)
		if err != nil {
			return
		}
		for _, fr := range frames {
			if fr.Kind == KindInvalid || fr.Kind > kindMax {
				t.Fatalf("coalescer emitted invalid kind %d", fr.Kind)
			}
		}
	})
}

// FuzzDecode checks message decoding never panics on arbitrary bodies.
func FuzzDecode(f *testing.F) {
	for _, m := range []Message{
		&Logon{User: "u"},
		&BeginLoad{Table: "t", Layout: testLayout(), Sessions: 2},
		&DataChunk{JobID: 1, Payload: []byte("x|y\n")},
		&ExportChunk{JobID: 1, EOF: true},
	} {
		fr, _ := Encode(0, m)
		f.Add(uint8(fr.Kind), fr.Body)
	}
	f.Fuzz(func(t *testing.T, kind uint8, body []byte) {
		k := Kind(kind)
		if k == KindInvalid || k > kindMax {
			return
		}
		_, _ = Decode(Frame{Kind: k, Body: body})
	})
}
