// Package wire implements DWP, the legacy data-warehouse wire protocol that
// ETL clients speak to the EDW server — and that the virtualizer must speak
// to impersonate it (§3 of the paper).
//
// A DWP connection carries a stream of frames. Each frame has a fixed
// 12-byte header followed by a message body whose layout depends on the
// message kind. The Coalescer type reassembles complete frames from raw TCP
// segments, mirroring the paper's Coalescer process.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"etlvirt/internal/obs"
)

// Version is the DWP protocol version this implementation speaks.
const Version = 3

// HeaderSize is the size of the fixed frame header in bytes.
const HeaderSize = 12

// MaxBodySize caps the body of a single frame. Data chunks larger than this
// must be split by the sender.
const MaxBodySize = 8 << 20

// Kind identifies the message carried by a frame.
type Kind uint8

// Frame kinds. The values are the protocol; do not renumber.
const (
	KindInvalid       Kind = 0
	KindLogon         Kind = 1  // client -> server: authenticate
	KindLogonOK       Kind = 2  // server -> client: session established
	KindLogoff        Kind = 3  // client -> server: end session
	KindRunSQL        Kind = 4  // client -> server: execute a SQL request
	KindStmtSuccess   Kind = 5  // server -> client: statement succeeded
	KindRecordHeader  Kind = 6  // server -> client: result-set layout
	KindRecords       Kind = 7  // server -> client: batch of result records
	KindEndStatement  Kind = 8  // server -> client: result set complete
	KindFailure       Kind = 9  // server -> client: request failed
	KindBeginLoad     Kind = 10 // client -> server: start an import job
	KindLoadOK        Kind = 11 // server -> client: job created
	KindAttachLoad    Kind = 12 // client -> server: attach a parallel data session
	KindAttachOK      Kind = 13 // server -> client: session attached to job
	KindDataChunk     Kind = 14 // client -> server: chunk of records
	KindChunkAck      Kind = 15 // server -> client: chunk received
	KindEndAcquire    Kind = 16 // client -> server: no more data on this session
	KindAcquireDone   Kind = 17 // server -> client: all data staged
	KindApplyDML      Kind = 18 // client -> server: run the application-phase DML
	KindApplyResult   Kind = 19 // server -> client: DML outcome and error counts
	KindEndLoad       Kind = 20 // client -> server: finish the job
	KindLoadDone      Kind = 21 // server -> client: job closed
	KindBeginExport   Kind = 22 // client -> server: start an export job
	KindExportOK      Kind = 23 // server -> client: export ready, layout attached
	KindExportChunkRq Kind = 24 // client -> server: request chunk N
	KindExportChunk   Kind = 25 // server -> client: chunk N payload
	KindEndExport     Kind = 26 // client -> server: finish export job
	KindBeginStream   Kind = 27 // client -> server: open a continuous CDC stream
	KindStreamOK      Kind = 28 // server -> client: stream open, resume watermark attached
	KindDeltaFrame    Kind = 29 // client -> server: micro-batch of CDC delta records
	KindDeltaAck      Kind = 30 // server -> client: delta frame accepted, commit watermark
	KindEndStream     Kind = 31 // client -> server: flush and close the stream
	KindStreamDone    Kind = 32 // server -> client: stream closed, final counters
	KindTraceSpans    Kind = 33 // client -> server: fold client-side trace spans into a job's timeline
	KindTraceAck      Kind = 34 // server -> client: spans folded
)

// kindMax is the highest assigned frame kind; parseHeader rejects anything
// above it.
const kindMax = KindTraceAck

// flagTrace marks a frame that carries a trace-context extension: a 17-byte
// obs.TraceContext encoding between the header and the body. All other flag
// bits remain reserved and must be zero.
const flagTrace uint16 = 0x0001

// String returns a diagnostic name for the kind.
func (k Kind) String() string {
	names := [...]string{
		"Invalid", "Logon", "LogonOK", "Logoff", "RunSQL", "StmtSuccess",
		"RecordHeader", "Records", "EndStatement", "Failure", "BeginLoad",
		"LoadOK", "AttachLoad", "AttachOK", "DataChunk", "ChunkAck",
		"EndAcquire", "AcquireDone", "ApplyDML", "ApplyResult", "EndLoad",
		"LoadDone", "BeginExport", "ExportOK", "ExportChunkRq", "ExportChunk",
		"EndExport", "BeginStream", "StreamOK", "DeltaFrame", "DeltaAck",
		"EndStream", "StreamDone", "TraceSpans", "TraceAck",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Frame is one protocol frame: a kind, the session it belongs to, an
// optional trace context propagated across the process boundary, and the
// encoded message body.
type Frame struct {
	Kind    Kind
	Session uint32
	Trace   obs.TraceContext // zero TraceID = frame carries no trace context
	Body    []byte
}

// header layout:
//
//	offset 0: version  uint8
//	offset 1: kind     uint8
//	offset 2: flags    uint16 BE (bit 0: trace-context extension follows; rest reserved, zero)
//	offset 4: session  uint32 BE
//	offset 8: bodyLen  uint32 BE
//
// When flag bit 0 is set, a 17-byte trace-context extension (trace ID u64
// BE, parent span ID u64 BE, flags u8) sits between the header and the body.
// bodyLen never includes the extension, so pre-tracing peers and new peers
// agree on the body framing of untraced frames.

// AppendFrame appends the encoded frame to dst and returns the result.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if len(f.Body) > MaxBodySize {
		return dst, fmt.Errorf("wire: frame body %d exceeds max %d", len(f.Body), MaxBodySize)
	}
	var flags uint16
	if f.Trace.Valid() {
		flags |= flagTrace
	}
	dst = append(dst, Version, byte(f.Kind))
	dst = binary.BigEndian.AppendUint16(dst, flags)
	dst = binary.BigEndian.AppendUint32(dst, f.Session)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Body)))
	if f.Trace.Valid() {
		dst = f.Trace.AppendWire(dst)
	}
	return append(dst, f.Body...), nil
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	buf, err := AppendFrame(make([]byte, 0, HeaderSize+obs.TraceContextWireSize+len(f.Body)), f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one complete frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	f, bodyLen, hasTrace, err := parseHeader(hdr[:])
	if err != nil {
		return Frame{}, err
	}
	if hasTrace {
		var ext [obs.TraceContextWireSize]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return Frame{}, fmt.Errorf("wire: truncated trace context: %w", err)
		}
		if f.Trace, err = obs.DecodeTraceContext(ext[:]); err != nil {
			return Frame{}, fmt.Errorf("wire: %w", err)
		}
	}
	if bodyLen > 0 {
		f.Body = make([]byte, bodyLen)
		if _, err := io.ReadFull(r, f.Body); err != nil {
			return Frame{}, fmt.Errorf("wire: truncated frame body: %w", err)
		}
	}
	return f, nil
}

func parseHeader(hdr []byte) (Frame, int, bool, error) {
	if hdr[0] != Version {
		return Frame{}, 0, false, fmt.Errorf("wire: bad protocol version %d", hdr[0])
	}
	k := Kind(hdr[1])
	if k == KindInvalid || k > kindMax {
		return Frame{}, 0, false, fmt.Errorf("wire: invalid frame kind %d", hdr[1])
	}
	flags := binary.BigEndian.Uint16(hdr[2:])
	if flags&^flagTrace != 0 {
		return Frame{}, 0, false, fmt.Errorf("wire: reserved header flags 0x%04x set", flags)
	}
	bodyLen := int(binary.BigEndian.Uint32(hdr[8:]))
	if bodyLen > MaxBodySize {
		return Frame{}, 0, false, fmt.Errorf("wire: frame body %d exceeds max %d", bodyLen, MaxBodySize)
	}
	return Frame{Kind: k, Session: binary.BigEndian.Uint32(hdr[4:])}, bodyLen, flags&flagTrace != 0, nil
}

// Coalescer reassembles complete frames from an arbitrary sequence of byte
// slices, as delivered by the network layer. It is a push parser: feed bytes
// with Push, collect complete frames from the returned slice. Mirrors the
// paper's Coalescer process, which "forms complete TCP messages from the raw
// bytes received over the wire".
type Coalescer struct {
	buf      []byte
	pending  Frame
	need     int  // body bytes still needed; 0 when waiting for a header
	inBody   bool // true when a header has been parsed and body bytes are owed
	hasTrace bool // true when the pending frame owes a trace-context extension
}

// Push feeds raw bytes to the coalescer and returns any frames completed by
// them. The returned frames own their body slices; they do not alias data.
func (c *Coalescer) Push(data []byte) ([]Frame, error) {
	c.buf = append(c.buf, data...)
	var out []Frame
	for {
		if !c.inBody {
			if len(c.buf) < HeaderSize {
				return out, nil
			}
			f, bodyLen, hasTrace, err := parseHeader(c.buf[:HeaderSize])
			if err != nil {
				return out, err
			}
			c.buf = c.buf[HeaderSize:]
			c.pending = f
			c.need = bodyLen
			c.hasTrace = hasTrace
			c.inBody = true
		}
		// The trace-context extension travels with the body bytes: wait for
		// both, then split the extension off the front.
		need := c.need
		if c.hasTrace {
			need += obs.TraceContextWireSize
		}
		if len(c.buf) < need {
			return out, nil
		}
		if c.hasTrace {
			tc, err := obs.DecodeTraceContext(c.buf[:obs.TraceContextWireSize])
			if err != nil {
				return out, fmt.Errorf("wire: %w", err)
			}
			c.pending.Trace = tc
			c.buf = c.buf[obs.TraceContextWireSize:]
		}
		if c.need > 0 {
			c.pending.Body = make([]byte, c.need)
			copy(c.pending.Body, c.buf[:c.need])
			c.buf = c.buf[c.need:]
		}
		out = append(out, c.pending)
		c.pending = Frame{}
		c.need = 0
		c.inBody = false
		c.hasTrace = false
		// Reclaim the buffer if it has been fully consumed to avoid unbounded
		// growth of the backing array across pushes.
		if len(c.buf) == 0 {
			c.buf = nil
		}
	}
}

// Buffered returns the number of bytes held that do not yet form a frame.
func (c *Coalescer) Buffered() int { return len(c.buf) }
