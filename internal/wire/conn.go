package wire

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"

	"etlvirt/internal/obs"
)

// Conn wraps a byte stream with DWP message framing. Reads and writes are
// independently safe for one concurrent reader and one concurrent writer;
// concurrent writers are serialized by a mutex so response frames from
// different server goroutines do not interleave.
type Conn struct {
	rw io.ReadWriteCloser

	rmu sync.Mutex
	br  *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer
}

// NewConn wraps rw (typically a *net.TCPConn) with buffered DWP framing.
func NewConn(rw io.ReadWriteCloser) *Conn {
	return &Conn{
		rw: rw,
		br: bufio.NewReaderSize(rw, 64<<10),
		bw: bufio.NewWriterSize(rw, 64<<10),
	}
}

// Dial connects to a DWP server.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// Send encodes and writes one message, then flushes.
func (c *Conn) Send(session uint32, msg Message) error {
	return c.SendT(session, msg, obs.TraceContext{})
}

// SendT is Send with a trace context attached to the frame. A zero context
// sends a plain untraced frame.
func (c *Conn) SendT(session uint32, msg Message, tc obs.TraceContext) error {
	f, err := Encode(session, msg)
	if err != nil {
		return err
	}
	f.Trace = tc
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := WriteFrame(c.bw, f); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Recv reads and decodes the next message, returning it with its session id.
func (c *Conn) Recv() (Message, uint32, error) {
	m, session, _, err := c.RecvT()
	return m, session, err
}

// RecvT is Recv plus the trace context carried by the frame, if any (zero
// TraceID otherwise).
func (c *Conn) RecvT() (Message, uint32, obs.TraceContext, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	f, err := ReadFrame(c.br)
	if err != nil {
		return nil, 0, obs.TraceContext{}, err
	}
	m, err := Decode(f)
	if err != nil {
		return nil, 0, obs.TraceContext{}, err
	}
	return m, f.Session, f.Trace, nil
}

// Expect reads the next message and asserts its kind. A Failure message is
// converted to an error regardless of the expected kind.
func (c *Conn) Expect(kind Kind) (Message, error) {
	m, _, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if f, ok := m.(*Failure); ok {
		return nil, f
	}
	if m.Kind() != kind {
		return nil, fmt.Errorf("wire: expected %s, got %s", kind, m.Kind())
	}
	return m, nil
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.rw.Close() }
