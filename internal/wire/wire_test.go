package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"etlvirt/internal/ltype"
	"etlvirt/internal/obs"
)

func testLayout() *ltype.Layout {
	return &ltype.Layout{Name: "CustLayout", Fields: []ltype.Field{
		{Name: "CUST_ID", Type: ltype.VarChar(5)},
		{Name: "CUST_NAME", Type: ltype.VarChar(50)},
		{Name: "JOIN_DATE", Type: ltype.VarChar(10)},
	}}
}

func allMessages() []Message {
	return []Message{
		&Logon{Host: "h", User: "u", Password: "p", Account: "a"},
		&LogonOK{SessionID: 7, ServerVersion: "edw-1.0"},
		&Logoff{},
		&RunSQL{SQL: "SELECT 1"},
		&StmtSuccess{ActivityCount: 42, Warning: "w"},
		&RecordHeader{Layout: testLayout()},
		&Records{Count: 3, Payload: []byte{1, 2, 3}},
		&EndStatement{},
		&Failure{Code: 3807, Message: "table does not exist"},
		&BeginLoad{
			Table: "PROD.CUSTOMER", ErrTableET: "PROD.CUSTOMER_ET",
			ErrTableUV: "PROD.CUSTOMER_UV", Layout: testLayout(),
			Format: FormatVartext, Delim: '|', Sessions: 4,
			MaxErrors: 10, MaxRetries: 20,
		},
		&LoadOK{JobID: 9},
		&AttachLoad{JobID: 9, SessionSeq: 2},
		&AttachOK{},
		&DataChunk{JobID: 9, Seq: 5, FirstRow: 101, Count: 2, Payload: []byte("x|y\nz|w\n")},
		&ChunkAck{Seq: 5},
		&EndAcquire{JobID: 9},
		&AcquireDone{JobID: 9, RowsStaged: 100, DataErrors: 2},
		&ApplyDML{JobID: 9, Label: "InsApply", SQL: "insert into t values (:a)"},
		&ApplyResult{JobID: 9, Inserted: 90, Updated: 1, Deleted: 2, ErrorsET: 3, ErrorsUV: 4},
		&EndLoad{JobID: 9},
		&LoadDone{JobID: 9},
		&BeginExport{SQL: "select * from t", Sessions: 2, Format: FormatVartext, Delim: ','},
		&ExportOK{JobID: 11, Layout: testLayout()},
		&ExportChunkRq{JobID: 11, Seq: 3},
		&ExportChunk{JobID: 11, Seq: 3, Count: 10, EOF: true, Payload: []byte("data")},
		&EndExport{JobID: 11},
		&BeginStream{
			Name: "orders-cdc", Table: "PROD.ORDERS", ErrTableET: "PROD.ORDERS_ET",
			Layout: testLayout(), Format: FormatVartext, Delim: '|',
			SQL: "insert into orders values (:a)", LatencyTargetMS: 2000, MaxErrors: 25,
		},
		&StreamOK{StreamID: 13, ResumeSeq: 400, BatchHint: 64},
		&DeltaFrame{StreamID: 13, FirstSeq: 401, Count: 2, Payload: []byte("I|a|b\nD|c|d\n")},
		&DeltaAck{StreamID: 13, Seq: 401, CommittedSeq: 400, BatchHint: 128},
		&EndStream{StreamID: 13},
		&StreamDone{StreamID: 13, Watermark: 402, Inserted: 1, Updated: 0, Deleted: 1, ErrorsET: 2, Replayed: 3},
		&TraceSpans{JobID: 9, Spans: []obs.Span{
			{
				ID: 0xA1, Parent: 0xA0, Proc: "etlclient", Stage: "send_chunk",
				Worker: "sess-1", Start: time.Unix(0, 1700000000000000000),
				Dur: 250 * time.Millisecond, Rows: 100, Bytes: 4096,
			},
			{
				ID: 0xA2, Parent: 0xA0, Proc: "etlclient", Stage: "read_source",
				Start: time.Unix(0, 1700000000100000000), Dur: time.Millisecond,
				Depth: 2, Err: "short read",
			},
		}},
		&TraceAck{JobID: 9, Added: 2},
	}
}

func TestMessageRoundTrip(t *testing.T) {
	for _, msg := range allMessages() {
		f, err := Encode(123, msg)
		if err != nil {
			t.Fatalf("%s encode: %v", msg.Kind(), err)
		}
		if f.Kind != msg.Kind() || f.Session != 123 {
			t.Errorf("%s: frame kind/session wrong: %+v", msg.Kind(), f)
		}
		got, err := Decode(f)
		if err != nil {
			t.Fatalf("%s decode: %v", msg.Kind(), err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("%s round trip:\n got %#v\nwant %#v", msg.Kind(), got, msg)
		}
	}
}

func TestDecodeTruncatedBodies(t *testing.T) {
	for _, msg := range allMessages() {
		f, err := Encode(1, msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Body) == 0 {
			continue
		}
		for cut := 0; cut < len(f.Body); cut++ {
			trunc := Frame{Kind: f.Kind, Session: 1, Body: f.Body[:cut]}
			if _, err := Decode(trunc); err == nil {
				t.Errorf("%s: truncation at %d of %d accepted", msg.Kind(), cut, len(f.Body))
				break
			}
		}
		// trailing garbage must also be rejected
		extra := Frame{Kind: f.Kind, Session: 1, Body: append(append([]byte{}, f.Body...), 0xFF)}
		if _, err := Decode(extra); err == nil {
			t.Errorf("%s: trailing garbage accepted", msg.Kind())
		}
	}
}

func TestFrameReadWrite(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		{Kind: KindLogon, Session: 1, Body: []byte("abc")},
		{Kind: KindLogoff, Session: 2},
		{Kind: KindDataChunk, Session: 3, Body: bytes.Repeat([]byte{7}, 100000)},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Session != want.Session || !bytes.Equal(got.Body, want.Body) {
			t.Errorf("frame %d mismatch", i)
		}
	}
}

func TestReadFrameErrors(t *testing.T) {
	// bad version
	hdr := make([]byte, HeaderSize)
	hdr[0] = 99
	hdr[1] = byte(KindLogon)
	if _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Error("bad version accepted")
	}
	// bad kind
	hdr[0] = Version
	hdr[1] = 200
	if _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Error("bad kind accepted")
	}
	// oversized body
	f := Frame{Kind: KindRecords, Body: make([]byte, MaxBodySize+1)}
	if _, err := AppendFrame(nil, f); err == nil {
		t.Error("oversized body accepted")
	}
	// truncated header
	if _, err := ReadFrame(bytes.NewReader([]byte{Version})); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestCoalescerWholeStream(t *testing.T) {
	var stream []byte
	msgs := allMessages()
	for i, m := range msgs {
		f, err := Encode(uint32(i), m)
		if err != nil {
			t.Fatal(err)
		}
		stream, err = AppendFrame(stream, f)
		if err != nil {
			t.Fatal(err)
		}
	}
	var c Coalescer
	frames, err := c.Push(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(msgs) {
		t.Fatalf("got %d frames, want %d", len(frames), len(msgs))
	}
	for i, f := range frames {
		got, err := Decode(f)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, msgs[i]) {
			t.Errorf("frame %d mismatch", i)
		}
	}
	if c.Buffered() != 0 {
		t.Errorf("coalescer holds %d leftover bytes", c.Buffered())
	}
}

func TestCoalescerArbitrarySegmentation(t *testing.T) {
	var stream []byte
	msgs := allMessages()
	for i, m := range msgs {
		f, err := Encode(uint32(i), m)
		if err != nil {
			t.Fatal(err)
		}
		stream, _ = AppendFrame(stream, f)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var c Coalescer
		var frames []Frame
		rest := stream
		for len(rest) > 0 {
			n := 1 + r.Intn(len(rest))
			got, err := c.Push(rest[:n])
			if err != nil {
				t.Logf("push: %v", err)
				return false
			}
			frames = append(frames, got...)
			rest = rest[n:]
		}
		if len(frames) != len(msgs) || c.Buffered() != 0 {
			t.Logf("frames=%d buffered=%d", len(frames), c.Buffered())
			return false
		}
		for i, fr := range frames {
			got, err := Decode(fr)
			if err != nil || !reflect.DeepEqual(got, msgs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCoalescerByteAtATime(t *testing.T) {
	f, err := Encode(5, &RunSQL{SQL: "SELECT * FROM t"})
	if err != nil {
		t.Fatal(err)
	}
	enc, _ := AppendFrame(nil, f)
	var c Coalescer
	var frames []Frame
	for _, b := range enc {
		got, err := c.Push([]byte{b})
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, got...)
	}
	if len(frames) != 1 {
		t.Fatalf("got %d frames, want 1", len(frames))
	}
	m, err := Decode(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if m.(*RunSQL).SQL != "SELECT * FROM t" {
		t.Errorf("unexpected SQL %q", m.(*RunSQL).SQL)
	}
}

func TestFrameTraceContextRoundTrip(t *testing.T) {
	tc := obs.TraceContext{TraceID: 0xDEADBEEF01, SpanID: 0x42, Sampled: true}
	var buf bytes.Buffer
	frames := []Frame{
		{Kind: KindBeginLoad, Session: 1, Trace: tc, Body: []byte("abc")},
		{Kind: KindLogoff, Session: 2}, // untraced in between
		{Kind: KindDeltaFrame, Session: 3, Trace: obs.TraceContext{TraceID: 7}, Body: []byte("x")},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	// The trace extension must not perturb the body framing: an untraced
	// frame's total size is header+body exactly.
	wire := buf.Bytes()
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Trace != want.Trace {
			t.Errorf("frame %d trace: got %+v want %+v", i, got.Trace, want.Trace)
		}
		if !bytes.Equal(got.Body, want.Body) {
			t.Errorf("frame %d body mismatch", i)
		}
	}
	// Byte-at-a-time through the coalescer: the 17-byte extension must
	// survive arbitrary segmentation.
	var c Coalescer
	var out []Frame
	for _, b := range wire {
		got, err := c.Push([]byte{b})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, got...)
	}
	if len(out) != len(frames) {
		t.Fatalf("coalescer emitted %d frames, want %d", len(out), len(frames))
	}
	for i, want := range frames {
		if out[i].Trace != want.Trace || !bytes.Equal(out[i].Body, want.Body) {
			t.Errorf("coalesced frame %d mismatch: %+v", i, out[i])
		}
	}
	if c.Buffered() != 0 {
		t.Errorf("coalescer holds %d leftover bytes", c.Buffered())
	}
}

func TestFrameReservedFlagsRejected(t *testing.T) {
	enc, err := AppendFrame(nil, Frame{Kind: KindLogoff, Session: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Set a reserved flag bit (bit 1) in the header.
	binary.BigEndian.PutUint16(enc[2:], 0x0002)
	if _, err := ReadFrame(bytes.NewReader(enc)); err == nil {
		t.Error("reserved header flag accepted")
	}
	var c Coalescer
	if _, err := c.Push(enc); err == nil {
		t.Error("coalescer accepted reserved header flag")
	}
}

func TestFrameTruncatedTraceContext(t *testing.T) {
	tc := obs.TraceContext{TraceID: 5, SpanID: 6, Sampled: true}
	enc, err := AppendFrame(nil, Frame{Kind: KindRunSQL, Session: 1, Trace: tc, Body: []byte("SELECT 1")})
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the 17-byte extension.
	if _, err := ReadFrame(bytes.NewReader(enc[:HeaderSize+5])); err == nil {
		t.Error("truncated trace context accepted")
	}
	// Corrupt the extension's reserved flag bits.
	enc[HeaderSize+16] |= 0x80
	if _, err := ReadFrame(bytes.NewReader(enc)); err == nil {
		t.Error("reserved trace-context flag accepted")
	}
	var c Coalescer
	if _, err := c.Push(enc); err == nil {
		t.Error("coalescer accepted reserved trace-context flag")
	}
}

func TestConnSendTRecvT(t *testing.T) {
	c1, c2 := net.Pipe()
	server, client := NewConn(c1), NewConn(c2)
	defer server.Close()
	defer client.Close()
	tc := obs.TraceContext{TraceID: 0xABCD, SpanID: 0x11, Sampled: true}
	go func() {
		_ = client.SendT(3, &BeginLoad{Table: "t", Layout: testLayout(), Sessions: 1}, tc)
		_ = client.Send(3, &EndLoad{JobID: 1})
	}()
	m, sess, got, err := server.RecvT()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*BeginLoad); !ok || sess != 3 {
		t.Fatalf("unexpected message %#v sess %d", m, sess)
	}
	if got != tc {
		t.Errorf("trace context: got %+v want %+v", got, tc)
	}
	m, _, got, err = server.RecvT()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*EndLoad); !ok {
		t.Fatalf("unexpected message %#v", m)
	}
	if got.Valid() {
		t.Errorf("untraced frame carried context %+v", got)
	}
}

func TestCoalescerBadHeader(t *testing.T) {
	var c Coalescer
	bad := make([]byte, HeaderSize)
	bad[0] = 0xAA
	if _, err := c.Push(bad); err == nil {
		t.Error("bad header accepted")
	}
}

func TestConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		conn := NewConn(nc)
		defer conn.Close()
		m, sess, err := conn.Recv()
		if err != nil {
			done <- err
			return
		}
		logon, ok := m.(*Logon)
		if !ok || logon.User != "alice" || sess != 0 {
			done <- errFromf("unexpected logon %#v sess %d", m, sess)
			return
		}
		done <- conn.Send(1, &LogonOK{SessionID: 1, ServerVersion: "test"})
	}()

	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(0, &Logon{User: "alice"}); err != nil {
		t.Fatal(err)
	}
	m, err := conn.Expect(KindLogonOK)
	if err != nil {
		t.Fatal(err)
	}
	if m.(*LogonOK).SessionID != 1 {
		t.Errorf("unexpected session id %d", m.(*LogonOK).SessionID)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestExpectFailure(t *testing.T) {
	c1, c2 := net.Pipe()
	server, client := NewConn(c1), NewConn(c2)
	defer server.Close()
	defer client.Close()
	go func() {
		server.Send(0, &Failure{Code: 2666, Message: "bad date"})
	}()
	_, err := client.Expect(KindStmtSuccess)
	f, ok := err.(*Failure)
	if !ok {
		t.Fatalf("want *Failure, got %T %v", err, err)
	}
	if f.Code != 2666 {
		t.Errorf("code %d, want 2666", f.Code)
	}
}

func TestExpectWrongKind(t *testing.T) {
	c1, c2 := net.Pipe()
	server, client := NewConn(c1), NewConn(c2)
	defer server.Close()
	defer client.Close()
	go func() { server.Send(0, &EndStatement{}) }()
	if _, err := client.Expect(KindStmtSuccess); err == nil {
		t.Error("wrong kind accepted")
	}
}

func errFromf(format string, args ...any) error {
	return &Failure{Code: 1, Message: fmt.Sprintf(format, args...)}
}
