package sqlxlate

import (
	"fmt"
	"strings"

	"etlvirt/internal/ltype"
	"etlvirt/internal/sqlparse"
)

// Finding is one construct in a legacy workload that needs attention before
// or during replatforming — the lightweight equivalent of the qInsight
// upfront workload analysis the paper's case study relies on (§8).
type Finding struct {
	Statement int // 1-based statement index in the analyzed script
	Construct string
	Detail    string
	// Translatable reports whether the cross compiler handles the construct
	// automatically. Non-translatable findings need a manual rewrite.
	Translatable bool
}

// Report summarizes an analyzed workload.
type Report struct {
	Statements   int
	Translatable int // statements that translate fully automatically
	Findings     []Finding
}

// ManualRewrites returns the findings needing manual work.
func (r *Report) ManualRewrites() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Translatable {
			out = append(out, f)
		}
	}
	return out
}

// Analyze inspects a semicolon-separated legacy SQL script and reports the
// constructs the cross compiler will rewrite and those needing manual
// attention.
func Analyze(script string) *Report {
	rep := &Report{}
	stmts, err := sqlparse.ParseAll(script, sqlparse.DialectLegacy)
	if err != nil {
		rep.Findings = append(rep.Findings, Finding{
			Statement: 1, Construct: "unparseable", Detail: err.Error(),
		})
		return rep
	}
	rep.Statements = len(stmts)
	tr := &Translator{StageAlias: "s", Stage: sqlparse.TableName{Name: "stage"}}
	for i, s := range stmts {
		var findings []Finding
		sqlparse.WalkExprs(s, func(e sqlparse.Expr) {
			switch v := e.(type) {
			case *sqlparse.CastExpr:
				if v.Format != "" {
					findings = append(findings, Finding{
						Statement: i + 1, Construct: "format-cast",
						Detail:       fmt.Sprintf("CAST ... AS %s FORMAT '%s'", v.Type.Name, v.Format),
						Translatable: formatCastTranslatable(v.Type.Name),
					})
				}
			case *sqlparse.Placeholder:
				findings = append(findings, Finding{
					Statement: i + 1, Construct: "placeholder",
					Detail: ":" + v.Name, Translatable: true,
				})
			case *sqlparse.FuncCall:
				if detail, known := legacyOnlyFunc(v.Name); known {
					findings = append(findings, Finding{
						Statement: i + 1, Construct: "legacy-function",
						Detail: detail, Translatable: true,
					})
				}
			}
		})
		if ct, ok := s.(*sqlparse.CreateTableStmt); ok {
			for _, c := range ct.Columns {
				if c.Type.CharSet != "" {
					findings = append(findings, Finding{
						Statement: i + 1, Construct: "character-set",
						Detail:       fmt.Sprintf("%s CHARACTER SET %s", c.Name, c.Type.CharSet),
						Translatable: true,
					})
				}
			}
		}
		// The ground truth: does the translator handle the whole statement?
		// Apply-phase upserts go through the DML path rather than TranslateStmt.
		var xerr error
		if up, ok := s.(*sqlparse.UpsertStmt); ok {
			_, xerr = tr.translateUpsertDML(up)
		} else {
			_, xerr = tr.TranslateStmt(s)
		}
		if err := xerr; err != nil {
			findings = append(findings, Finding{
				Statement: i + 1, Construct: "untranslatable",
				Detail: err.Error(),
			})
		} else {
			rep.Translatable++
		}
		rep.Findings = append(rep.Findings, findings...)
	}
	return rep
}

func formatCastTranslatable(typeName string) bool {
	switch typeName {
	case "DATE", "TIMESTAMP", "CHAR", "CHARACTER", "VARCHAR":
		return true
	}
	return false
}

func legacyOnlyFunc(name string) (string, bool) {
	switch name {
	case "ZEROIFNULL", "NULLIFZERO", "INDEX", "CHARACTERS", "OREPLACE":
		return name + "()", true
	}
	return "", false
}

// StagingDDL builds the CREATE TABLE for an import job's staging table: the
// hidden __seq column followed by the layout's fields mapped to CDW types
// (§6: "the staging table is constructed using data types corresponding to
// what was used by the ETL script").
func StagingDDL(stage sqlparse.TableName, layout *ltype.Layout) (string, error) {
	ct := &sqlparse.CreateTableStmt{Table: stage}
	ct.Columns = append(ct.Columns, sqlparse.ColumnDef{
		Name: SeqColumn, Type: sqlparse.TypeName{Name: "BIGINT"}, NotNull: true,
	})
	for _, f := range layout.Fields {
		ty := MapLegacyType(f.Type)
		// Staged values arrive as CSV text; binary fields stage as hex text.
		if ty.Name == "VARBINARY" {
			ty = sqlparse.TypeName{Name: "VARCHAR", Args: []int{2 * f.Type.Length}}
		}
		ct.Columns = append(ct.Columns, sqlparse.ColumnDef{Name: f.Name, Type: ty})
	}
	return sqlparse.Print(ct, sqlparse.DialectCDW)
}

// ErrorTableDDL builds the CREATE TABLE for a job error table. Both the
// transformation-error table (ET) and the uniqueness-violation table (UV)
// use the legacy-compatible shape of Figures 5 and 6: the offending row
// number(s), an error code, the offending field, and a message.
func ErrorTableDDL(name sqlparse.TableName) (string, error) {
	ct := &sqlparse.CreateTableStmt{
		Table: name,
		Columns: []sqlparse.ColumnDef{
			{Name: "SEQNO", Type: sqlparse.TypeName{Name: "BIGINT"}},
			{Name: "SEQNO_END", Type: sqlparse.TypeName{Name: "BIGINT"}},
			{Name: "ERRCODE", Type: sqlparse.TypeName{Name: "INTEGER"}},
			{Name: "ERRFIELD", Type: sqlparse.TypeName{Name: "VARCHAR", Args: []int{128}}},
			{Name: "ERRMSG", Type: sqlparse.TypeName{Name: "VARCHAR", Args: []int{1024}}},
		},
	}
	return sqlparse.Print(ct, sqlparse.DialectCDW)
}

// QuoteName renders a table name as SQL text.
func QuoteName(tn sqlparse.TableName) string {
	sel := &sqlparse.SelectStmt{Items: []sqlparse.SelectItem{{Expr: &sqlparse.Literal{Kind: sqlparse.LitInt, Int: 1}}},
		From: []sqlparse.TableExpr{&sqlparse.TableRef{Table: tn}}}
	s, err := sqlparse.Print(sel, sqlparse.DialectCDW)
	if err != nil {
		return tn.String()
	}
	return strings.TrimPrefix(s, "SELECT 1 FROM ")
}
