package sqlxlate

import (
	"fmt"
	"strings"

	"etlvirt/internal/sqlparse"
)

// This file builds the pushed-down verification queries used by the scrub
// layer (internal/scrub). All state stays in the warehouse: each query is one
// aggregate scan whose tiny result travels back for comparison, so a
// differential scrub of two multi-million-row warehouses exchanges a few
// hundred bytes per table.

// ScrubTableName parses a possibly schema-qualified table spelling as it
// appears in ETL scripts ("PROD.CUSTOMER") into a TableName.
func ScrubTableName(name string) sqlparse.TableName {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return sqlparse.TableName{Schema: strings.TrimSpace(name[:i]), Name: strings.TrimSpace(name[i+1:])}
	}
	return sqlparse.TableName{Name: strings.TrimSpace(name)}
}

// ChecksumQuery builds the one-pass differential aggregate for a table:
//
//	SELECT COUNT(*), COUNT(c1), XOR_AGG(HASH64(c1)), COUNT(c2), ... FROM t
//
// COUNT(*) pins the row count, COUNT(col) the per-column null pattern, and
// XOR_AGG(HASH64(col)) an order-insensitive content checksum — XOR is
// commutative, so the two engines may store and scan rows in any order and
// still agree. The query is built as an AST so identifiers needing quoting
// survive both dialects.
func ChecksumQuery(table string, cols []string) (string, error) {
	if len(cols) == 0 {
		return "", fmt.Errorf("sqlxlate: checksum query for %s needs columns", table)
	}
	items := []sqlparse.SelectItem{
		{Expr: &sqlparse.FuncCall{Name: "COUNT", Args: []sqlparse.Expr{&sqlparse.Star{}}}},
	}
	for _, c := range cols {
		col := &sqlparse.ColRef{Name: c}
		items = append(items,
			sqlparse.SelectItem{Expr: &sqlparse.FuncCall{Name: "COUNT", Args: []sqlparse.Expr{col}}},
			sqlparse.SelectItem{Expr: &sqlparse.FuncCall{
				Name: "XOR_AGG",
				Args: []sqlparse.Expr{&sqlparse.FuncCall{Name: "HASH64", Args: []sqlparse.Expr{col}}},
			}},
		)
	}
	stmt := &sqlparse.SelectStmt{
		Items: items,
		From:  []sqlparse.TableExpr{&sqlparse.TableRef{Table: ScrubTableName(table)}},
	}
	return sqlparse.Print(stmt, sqlparse.DialectCDW)
}

// ProbeQuery builds the zero-row layout probe the scrub layer uses to
// discover a table's columns through either engine: SELECT * FROM t WHERE
// 1 = 0 returns only the record header.
func ProbeQuery(table string) (string, error) {
	stmt := &sqlparse.SelectStmt{
		Items: []sqlparse.SelectItem{{Star: true}},
		From:  []sqlparse.TableExpr{&sqlparse.TableRef{Table: ScrubTableName(table)}},
		Where: &sqlparse.BinaryExpr{
			Op: "=",
			L:  &sqlparse.Literal{Kind: sqlparse.LitInt, Int: 1},
			R:  &sqlparse.Literal{Kind: sqlparse.LitInt, Int: 0},
		},
	}
	return sqlparse.Print(stmt, sqlparse.DialectCDW)
}

// DomainAuditQuery builds a constraint-violation counter: SELECT COUNT(*)
// FROM t WHERE NOT (predicate). The predicate is parsed up front so a typo in
// an expectation manifest fails the scrub loudly instead of auditing nothing.
func DomainAuditQuery(table, predicate string) (string, error) {
	// The raw interpolation below is safe by construction: probe is never sent
	// anywhere — it exists only to be parsed, and the query that ships is
	// re-printed from the parsed AST, so a predicate that is not a well-formed
	// boolean expression errors out here instead of reaching the warehouse.
	//nolint:sqlident
	probe := fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE NOT (%s)",
		ScrubTableName(table).String(), predicate)
	stmt, err := sqlparse.Parse(probe, sqlparse.DialectCDW)
	if err != nil {
		return "", fmt.Errorf("sqlxlate: domain predicate %q: %w", predicate, err)
	}
	return sqlparse.Print(stmt, sqlparse.DialectCDW)
}
