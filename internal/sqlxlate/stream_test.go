package sqlxlate

import (
	"strings"
	"testing"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cloudstore"
	"etlvirt/internal/sqlparse"
)

func streamTranslator() (*Translator, sqlparse.TableName) {
	tr := &Translator{
		Stage:      sqlparse.TableName{Schema: "etl_stage", Name: "ups1"},
		StageAlias: "s",
		Layout:     custLayout(),
	}
	return tr, sqlparse.TableName{Schema: "etl_stage", Name: "del1"}
}

const streamApplySQL = `insert into PROD.CUSTOMER values (
	trim(:CUST_ID), trim(:CUST_NAME),
	cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') )`

var customerCols = []string{"CUST_ID", "CUST_NAME", "JOIN_DATE"}

func TestTranslateStreamDMLShape(t *testing.T) {
	tr, delStage := streamTranslator()
	sd, err := tr.TranslateStreamDML(streamApplySQL, delStage, customerCols, []string{"CUST_ID"})
	if err != nil {
		t.Fatal(err)
	}
	if sd.Target.String() != "PROD.CUSTOMER" {
		t.Errorf("target = %s", sd.Target)
	}

	insSQL, err := sd.Insert.SQL(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"INSERT INTO PROD.CUSTOMER SELECT",
		"FROM etl_stage.ups1 s",
		"s.__seq BETWEEN 1 AND 50",
		"NOT EXISTS",
		"FROM PROD.CUSTOMER t",
		"t.CUST_ID = TRIM(s.CUST_ID)",
	} {
		if !strings.Contains(insSQL, want) {
			t.Errorf("insert SQL missing %q:\n%s", want, insSQL)
		}
	}

	updSQL, err := sd.Update.SQL(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"UPDATE PROD.CUSTOMER t",
		"FROM etl_stage.ups1 s",
		"SET CUST_NAME = TRIM(s.CUST_NAME)",
		"JOIN_DATE = TO_DATE(s.JOIN_DATE, 'YYYY-MM-DD')",
		"t.CUST_ID = TRIM(s.CUST_ID)",
		"s.__seq BETWEEN 1 AND 50",
	} {
		if !strings.Contains(updSQL, want) {
			t.Errorf("update SQL missing %q:\n%s", want, updSQL)
		}
	}
	// The key column must not be assigned.
	if strings.Contains(updSQL, "SET CUST_ID") || strings.Contains(updSQL, ", CUST_ID =") {
		t.Errorf("update assigns key column:\n%s", updSQL)
	}

	delSQL, err := sd.Delete.SQL(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"DELETE FROM PROD.CUSTOMER t",
		"USING etl_stage.del1 sd",
		"t.CUST_ID = TRIM(sd.CUST_ID)",
		"sd.__seq BETWEEN 1 AND 50",
	} {
		if !strings.Contains(delSQL, want) {
			t.Errorf("delete SQL missing %q:\n%s", want, delSQL)
		}
	}

	for _, sql := range []string{insSQL, updSQL, delSQL} {
		if _, err := sqlparse.Parse(sql, sqlparse.DialectCDW); err != nil {
			t.Errorf("translated SQL unparseable in CDW dialect: %v\n%s", err, sql)
		}
	}
	// Independent ranges: re-rendering one half must not disturb another.
	ins2, _ := sd.Insert.SQL(7, 9)
	if !strings.Contains(ins2, "BETWEEN 7 AND 9") {
		t.Errorf("insert range not rebound: %s", ins2)
	}
	del2, _ := sd.Delete.SQL(3, 4)
	if !strings.Contains(del2, "BETWEEN 3 AND 4") {
		t.Errorf("delete range not rebound: %s", del2)
	}
}

func TestTranslateStreamDMLErrors(t *testing.T) {
	tr, delStage := streamTranslator()
	if _, err := tr.TranslateStreamDML("DELETE FROM PROD.CUSTOMER WHERE CUST_ID = :CUST_ID", delStage, customerCols, []string{"CUST_ID"}); err == nil {
		t.Error("non-INSERT apply DML accepted")
	}
	if _, err := tr.TranslateStreamDML(streamApplySQL, delStage, customerCols, nil); err == nil {
		t.Error("missing key columns accepted")
	}
	// Key column not fed by the insert.
	if _, err := tr.TranslateStreamDML(
		"insert into PROD.CUSTOMER (CUST_NAME) values (trim(:CUST_NAME))",
		delStage, customerCols, []string{"CUST_ID"}); err == nil {
		t.Error("insert not feeding the key column accepted")
	}
	bare := &Translator{}
	if _, err := bare.TranslateStreamDML(streamApplySQL, delStage, customerCols, []string{"CUST_ID"}); err == nil {
		t.Error("missing staging context accepted")
	}
}

// TestStreamDMLExecutesOnCDW runs the translated triple against the real CDW
// engine: stage one micro-batch of collapsed images and assert the
// delete/update/insert halves land the expected target state, then re-apply
// the same range and assert idempotence (the checkpoint-resume contract).
func TestStreamDMLExecutesOnCDW(t *testing.T) {
	e := cdw.NewEngine(cloudstore.NewMemStore(), cdw.Options{})
	mustExecSQL := func(sql string) {
		t.Helper()
		if _, err := e.ExecSQL(sql); err != nil {
			t.Fatalf("ExecSQL(%q): %v", sql, err)
		}
	}
	mustExecSQL(`CREATE TABLE PROD.CUSTOMER (
		CUST_ID VARCHAR(5) NOT NULL,
		CUST_NAME VARCHAR(50),
		JOIN_DATE DATE,
		PRIMARY KEY (CUST_ID))`)
	mustExecSQL(`INSERT INTO PROD.CUSTOMER VALUES
		('100', 'Old', '2020-01-01'),
		('200', 'Gone', '2020-01-02')`)

	tr, delStage := streamTranslator()
	upsDDL, err := StagingDDL(tr.Stage, custLayout())
	if err != nil {
		t.Fatal(err)
	}
	delDDL, err := StagingDDL(delStage, custLayout())
	if err != nil {
		t.Fatal(err)
	}
	mustExecSQL(upsDDL)
	mustExecSQL(delDDL)
	// Collapsed batch covering seqs 1..3: update key 100, insert key 300,
	// delete key 200.
	mustExecSQL(`INSERT INTO etl_stage.ups1 VALUES
		(1, '100', 'New', '2024-05-01'),
		(3, '300', 'Fresh', '2024-05-02')`)
	mustExecSQL(`INSERT INTO etl_stage.del1 VALUES
		(2, '200', 'Gone', '2020-01-02')`)

	sd, err := tr.TranslateStreamDML(streamApplySQL, delStage, customerCols, []string{"CUST_ID"})
	if err != nil {
		t.Fatal(err)
	}
	applyOnce := func() {
		t.Helper()
		for _, rs := range []*RangeStmt{sd.Delete, sd.Update, sd.Insert} {
			sql, err := rs.SQL(1, 3)
			if err != nil {
				t.Fatal(err)
			}
			mustExecSQL(sql)
		}
	}
	check := func() {
		t.Helper()
		res, err := e.ExecSQL("SELECT CUST_ID, CUST_NAME FROM PROD.CUSTOMER ORDER BY CUST_ID")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 2 {
			t.Fatalf("got %d rows, want 2", len(res.Rows))
		}
		if res.Rows[0][0].S != "100" || res.Rows[0][1].S != "New" {
			t.Errorf("row0 = %v", res.Rows[0])
		}
		if res.Rows[1][0].S != "300" || res.Rows[1][1].S != "Fresh" {
			t.Errorf("row1 = %v", res.Rows[1])
		}
	}
	applyOnce()
	check()
	// Replay the same staged range: state must not change (no double-apply).
	applyOnce()
	check()
}

func TestCheckpointTableDDL(t *testing.T) {
	ddl, err := CheckpointTableDDL(sqlparse.TableName{Schema: "etl_stage", Name: "stream_checkpoints"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"IF NOT EXISTS", "etl_stage.stream_checkpoints", "STREAM_NAME", "WATERMARK"} {
		if !strings.Contains(ddl, want) {
			t.Errorf("checkpoint DDL missing %q: %s", want, ddl)
		}
	}
	// It must execute on the engine, twice (IF NOT EXISTS).
	e := cdw.NewEngine(cloudstore.NewMemStore(), cdw.Options{})
	for i := 0; i < 2; i++ {
		if _, err := e.ExecSQL(ddl); err != nil {
			t.Fatalf("checkpoint DDL exec %d: %v", i, err)
		}
	}
}

// TestTranslateStreamDMLEdgeCases covers the range and identifier corners
// the replay and error-handling paths depend on: an empty run (hi < lo, the
// shape a fully-replayed batch re-applies), a single-row range (the error
// handler's bisection floor), an all-column primary key (nothing left to
// update), and a target table whose name needs dialect quoting.
func TestTranslateStreamDMLEdgeCases(t *testing.T) {
	tr, delStage := streamTranslator()
	sd, err := tr.TranslateStreamDML(streamApplySQL, delStage, customerCols, []string{"CUST_ID"})
	if err != nil {
		t.Fatal(err)
	}

	// Empty run: renders legal SQL whose range matches nothing.
	for _, rs := range []*RangeStmt{sd.Delete, sd.Update, sd.Insert} {
		sql, err := rs.SQL(5, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sql, "BETWEEN 5 AND 4") {
			t.Errorf("empty run not rendered: %s", sql)
		}
		if _, err := sqlparse.Parse(sql, sqlparse.DialectCDW); err != nil {
			t.Errorf("empty-run SQL unparseable: %v\n%s", err, sql)
		}
	}

	// Single-row range: the bisection floor of sub-range re-application.
	sql, err := sd.Insert.SQL(7, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "BETWEEN 7 AND 7") {
		t.Errorf("single-row range not rendered: %s", sql)
	}

	// All columns in the key: there is nothing to SET, so Update is nil and
	// the triple degrades to guarded Insert + Delete.
	sdAll, err := tr.TranslateStreamDML(streamApplySQL, delStage, customerCols, customerCols)
	if err != nil {
		t.Fatal(err)
	}
	if sdAll.Update != nil {
		u, _ := sdAll.Update.SQL(1, 1)
		t.Errorf("all-column key still builds an update:\n%s", u)
	}
	if sdAll.Insert == nil || sdAll.Delete == nil {
		t.Error("all-column key lost the insert or delete half")
	}

	// A target whose name is a reserved word survives translation and prints
	// quoted in the CDW dialect.
	sdQ, err := tr.TranslateStreamDML(`insert into PROD."ORDER" values (
		trim(:CUST_ID), trim(:CUST_NAME),
		cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') )`,
		delStage, customerCols, []string{"CUST_ID"})
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range []*RangeStmt{sdQ.Delete, sdQ.Update, sdQ.Insert} {
		sql, err := rs.SQL(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sql, `PROD."ORDER"`) {
			t.Errorf("quoted target lost its quoting:\n%s", sql)
		}
		if _, err := sqlparse.Parse(sql, sqlparse.DialectCDW); err != nil {
			t.Errorf("quoted-target SQL unparseable: %v\n%s", err, sql)
		}
	}
}

// TestStreamDMLMaxLengthKeys stages key values at the layout's full declared
// width and applies the triple on the real engine: padding or truncation
// anywhere in the staging/apply chain would break the key match.
func TestStreamDMLMaxLengthKeys(t *testing.T) {
	e := cdw.NewEngine(cloudstore.NewMemStore(), cdw.Options{})
	mustExecSQL := func(sql string) {
		t.Helper()
		if _, err := e.ExecSQL(sql); err != nil {
			t.Fatalf("ExecSQL(%q): %v", sql, err)
		}
	}
	mustExecSQL(`CREATE TABLE PROD.CUSTOMER (
		CUST_ID VARCHAR(5) NOT NULL,
		CUST_NAME VARCHAR(50),
		JOIN_DATE DATE,
		PRIMARY KEY (CUST_ID))`)
	mustExecSQL(`INSERT INTO PROD.CUSTOMER VALUES ('AAAAA', 'Old', '2020-01-01'),
		('BBBBB', 'Stays', '2020-01-02')`)

	tr, delStage := streamTranslator()
	for _, stage := range []sqlparse.TableName{tr.Stage, delStage} {
		ddl, err := StagingDDL(stage, custLayout())
		if err != nil {
			t.Fatal(err)
		}
		mustExecSQL(ddl)
	}
	// Both images carry 5-character keys — the declared VARCHAR(5) maximum.
	mustExecSQL(`INSERT INTO etl_stage.ups1 VALUES (1, 'AAAAA', 'New', '2024-05-01')`)
	mustExecSQL(`INSERT INTO etl_stage.del1 VALUES (2, 'BBBBB', 'Stays', '2020-01-02')`)

	sd, err := tr.TranslateStreamDML(streamApplySQL, delStage, customerCols, []string{"CUST_ID"})
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range []*RangeStmt{sd.Delete, sd.Update, sd.Insert} {
		sql, err := rs.SQL(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		mustExecSQL(sql)
	}
	res, err := e.ExecSQL("SELECT CUST_ID, CUST_NAME FROM PROD.CUSTOMER ORDER BY CUST_ID")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "AAAAA" || res.Rows[0][1].S != "New" {
		t.Errorf("max-length key apply went wrong: %v", res.Rows)
	}
}
