// Package sqlxlate is the SQL half of the Protocol Cross Compiler (§3, §6):
// it rewrites statements from the legacy EDW dialect into the CDW dialect.
//
// The translations implemented here are the ones the paper calls out:
//
//   - type mapping across type systems (e.g. UNICODE character types to
//     national varchar, BYTE to VARBINARY),
//   - CAST (x AS DATE FORMAT 'YYYY-MM-DD') and friends into TO_DATE /
//     TO_TIMESTAMP / TO_CHAR calls,
//   - legacy function idioms (ZEROIFNULL, NULLIFZERO, INDEX, ...) into CDW
//     equivalents,
//   - ETL DML over :field placeholders into set-oriented statements sourced
//     from the staging table, restricted by a __seq row range so the adaptive
//     error handler can re-apply them on sub-chunks (§7).
package sqlxlate

import (
	"fmt"
	"strings"

	"etlvirt/internal/ltype"
	"etlvirt/internal/sqlparse"
)

// SeqColumn is the hidden row-sequence column the DataConverter prepends to
// staged data.
const SeqColumn = "__seq"

// MapLegacyType converts a legacy type to the CDW type used for the same
// data, applying the paper's §6 example mapping (UNICODE -> national
// varchar) and the obvious numeric widenings.
func MapLegacyType(t ltype.Type) sqlparse.TypeName {
	switch t.Kind {
	case ltype.KindByteInt, ltype.KindSmallInt:
		return sqlparse.TypeName{Name: "SMALLINT"}
	case ltype.KindInteger:
		return sqlparse.TypeName{Name: "INTEGER"}
	case ltype.KindBigInt:
		return sqlparse.TypeName{Name: "BIGINT"}
	case ltype.KindFloat:
		return sqlparse.TypeName{Name: "DOUBLE"}
	case ltype.KindDecimal:
		return sqlparse.TypeName{Name: "DECIMAL", Args: []int{t.Precision, t.Scale}}
	case ltype.KindChar, ltype.KindVarChar:
		name := "VARCHAR"
		if t.CharSet == ltype.CharSetUnicode {
			name = "NVARCHAR"
		}
		return sqlparse.TypeName{Name: name, Args: []int{t.Length}}
	case ltype.KindDate:
		return sqlparse.TypeName{Name: "DATE"}
	case ltype.KindTime:
		return sqlparse.TypeName{Name: "TIME"}
	case ltype.KindTimestamp:
		return sqlparse.TypeName{Name: "TIMESTAMP"}
	case ltype.KindByte, ltype.KindVarByte:
		return sqlparse.TypeName{Name: "VARBINARY", Args: []int{t.Length}}
	default:
		return sqlparse.TypeName{Name: "VARCHAR"}
	}
}

// mapTypeName translates a legacy written type to CDW spelling.
func mapTypeName(t sqlparse.TypeName) (sqlparse.TypeName, error) {
	out := sqlparse.TypeName{Args: append([]int{}, t.Args...)}
	switch t.Name {
	case "BYTEINT":
		out.Name = "SMALLINT"
		out.Args = nil
	case "SMALLINT", "INTEGER", "INT", "BIGINT", "DATE", "TIME", "TIMESTAMP",
		"DECIMAL", "NUMERIC", "FLOAT", "DOUBLE", "REAL", "BOOLEAN":
		out.Name = t.Name
	case "CHAR", "CHARACTER", "VARCHAR":
		if t.CharSet == "UNICODE" {
			out.Name = "NVARCHAR"
		} else {
			out.Name = "VARCHAR"
		}
		if len(out.Args) == 0 {
			out.Args = []int{1}
		}
	case "BYTE", "VARBYTE":
		out.Name = "VARBINARY"
		if len(out.Args) == 0 {
			out.Args = []int{1}
		}
	case "CLOB":
		out.Name = "VARCHAR"
		out.Args = nil
	default:
		return out, fmt.Errorf("sqlxlate: no CDW mapping for type %s", t.Name)
	}
	return out, nil
}

// Translator rewrites legacy statements. Binding a staging context enables
// placeholder translation for ETL DML.
type Translator struct {
	// Stage is the staging table placeholders resolve against; required only
	// for DML with :field placeholders.
	Stage sqlparse.TableName
	// StageAlias qualifies staging columns in rewritten statements.
	StageAlias string
	// Layout validates placeholder names when set.
	Layout *ltype.Layout
	// SchemaMap renames schemas (legacy database -> CDW schema). Keys are
	// upper-cased.
	SchemaMap map[string]string
}

func (tr *Translator) mapTable(tn sqlparse.TableName) sqlparse.TableName {
	if tn.Schema == "" || tr.SchemaMap == nil {
		return tn
	}
	if mapped, ok := tr.SchemaMap[strings.ToUpper(tn.Schema)]; ok {
		return sqlparse.TableName{Schema: mapped, Name: tn.Name}
	}
	return tn
}

// TranslateStmt rewrites one legacy statement into a new CDW-dialect AST.
// The input AST is not modified.
func (tr *Translator) TranslateStmt(s sqlparse.Stmt) (sqlparse.Stmt, error) {
	switch st := s.(type) {
	case *sqlparse.SelectStmt:
		return tr.xlateSelect(st)
	case *sqlparse.InsertStmt:
		return tr.xlateInsert(st)
	case *sqlparse.UpdateStmt:
		return tr.xlateUpdate(st)
	case *sqlparse.DeleteStmt:
		return tr.xlateDelete(st)
	case *sqlparse.CreateTableStmt:
		return tr.xlateCreate(st)
	case *sqlparse.DropTableStmt:
		return &sqlparse.DropTableStmt{Table: tr.mapTable(st.Table), IfExists: st.IfExists}, nil
	case *sqlparse.TruncateStmt:
		return &sqlparse.TruncateStmt{Table: tr.mapTable(st.Table)}, nil
	default:
		return nil, fmt.Errorf("sqlxlate: unsupported statement %T", s)
	}
}

// Translate parses legacy SQL text and returns the rewritten CDW SQL text.
func (tr *Translator) Translate(legacySQL string) (string, error) {
	stmt, err := sqlparse.Parse(legacySQL, sqlparse.DialectLegacy)
	if err != nil {
		return "", err
	}
	out, err := tr.TranslateStmt(stmt)
	if err != nil {
		return "", err
	}
	return sqlparse.Print(out, sqlparse.DialectCDW)
}

// xlateInsert translates a general INSERT statement (constants or SELECT
// source). ETL apply-phase inserts with placeholders go through TranslateDML
// instead; placeholders here still resolve if a staging context is bound.
func (tr *Translator) xlateInsert(st *sqlparse.InsertStmt) (sqlparse.Stmt, error) {
	out := &sqlparse.InsertStmt{
		Table:   tr.mapTable(st.Table),
		Columns: append([]string{}, st.Columns...),
	}
	for _, row := range st.Rows {
		var xrow []sqlparse.Expr
		for _, e := range row {
			xe, err := tr.xlateExpr(e)
			if err != nil {
				return nil, err
			}
			xrow = append(xrow, xe)
		}
		out.Rows = append(out.Rows, xrow)
	}
	if st.Select != nil {
		sel, err := tr.xlateSelect(st.Select)
		if err != nil {
			return nil, err
		}
		out.Select = sel
	}
	return out, nil
}

func (tr *Translator) xlateUpdate(st *sqlparse.UpdateStmt) (sqlparse.Stmt, error) {
	out := &sqlparse.UpdateStmt{Table: tr.mapTable(st.Table), Alias: st.Alias}
	for _, a := range st.Set {
		v, err := tr.xlateExpr(a.Value)
		if err != nil {
			return nil, err
		}
		out.Set = append(out.Set, sqlparse.Assignment{Column: a.Column, Value: v})
	}
	for _, te := range st.From {
		x, err := tr.xlateTableExpr(te)
		if err != nil {
			return nil, err
		}
		out.From = append(out.From, x)
	}
	if st.Where != nil {
		w, err := tr.xlateExpr(st.Where)
		if err != nil {
			return nil, err
		}
		out.Where = w
	}
	return out, nil
}

func (tr *Translator) xlateDelete(st *sqlparse.DeleteStmt) (sqlparse.Stmt, error) {
	out := &sqlparse.DeleteStmt{Table: tr.mapTable(st.Table), Alias: st.Alias}
	for _, te := range st.Using {
		x, err := tr.xlateTableExpr(te)
		if err != nil {
			return nil, err
		}
		out.Using = append(out.Using, x)
	}
	if st.Where != nil {
		w, err := tr.xlateExpr(st.Where)
		if err != nil {
			return nil, err
		}
		out.Where = w
	}
	return out, nil
}

func (tr *Translator) xlateCreate(st *sqlparse.CreateTableStmt) (sqlparse.Stmt, error) {
	out := &sqlparse.CreateTableStmt{
		Table:       tr.mapTable(st.Table),
		IfNotExists: st.IfNotExists,
		PrimaryKey:  append([]string{}, st.PrimaryKey...),
	}
	for _, u := range st.Unique {
		out.Unique = append(out.Unique, append([]string{}, u...))
	}
	for _, c := range st.Columns {
		ty, err := mapTypeName(c.Type)
		if err != nil {
			return nil, err
		}
		var def sqlparse.Expr
		if c.Default != nil {
			if def, err = tr.xlateExpr(c.Default); err != nil {
				return nil, err
			}
		}
		out.Columns = append(out.Columns, sqlparse.ColumnDef{
			Name: c.Name, Type: ty, NotNull: c.NotNull, Default: def,
		})
	}
	return out, nil
}

func (tr *Translator) xlateSelect(st *sqlparse.SelectStmt) (*sqlparse.SelectStmt, error) {
	out := &sqlparse.SelectStmt{Distinct: st.Distinct}
	if st.Limit != nil {
		v := *st.Limit
		out.Limit = &v
	}
	for _, it := range st.Items {
		if it.Star {
			out.Items = append(out.Items, it)
			continue
		}
		e, err := tr.xlateExpr(it.Expr)
		if err != nil {
			return nil, err
		}
		out.Items = append(out.Items, sqlparse.SelectItem{Expr: e, Alias: it.Alias})
	}
	for _, te := range st.From {
		t, err := tr.xlateTableExpr(te)
		if err != nil {
			return nil, err
		}
		out.From = append(out.From, t)
	}
	var err error
	if st.Where != nil {
		if out.Where, err = tr.xlateExpr(st.Where); err != nil {
			return nil, err
		}
	}
	for _, g := range st.GroupBy {
		e, err := tr.xlateExpr(g)
		if err != nil {
			return nil, err
		}
		out.GroupBy = append(out.GroupBy, e)
	}
	if st.Having != nil {
		if out.Having, err = tr.xlateExpr(st.Having); err != nil {
			return nil, err
		}
	}
	for _, o := range st.OrderBy {
		e, err := tr.xlateExpr(o.Expr)
		if err != nil {
			return nil, err
		}
		out.OrderBy = append(out.OrderBy, sqlparse.OrderItem{Expr: e, Desc: o.Desc})
	}
	if st.Union != nil {
		u, err := tr.xlateSelect(st.Union)
		if err != nil {
			return nil, err
		}
		out.Union = u
	}
	return out, nil
}

func (tr *Translator) xlateTableExpr(te sqlparse.TableExpr) (sqlparse.TableExpr, error) {
	switch t := te.(type) {
	case *sqlparse.TableRef:
		return &sqlparse.TableRef{Table: tr.mapTable(t.Table), Alias: t.Alias}, nil
	case *sqlparse.SubqueryTable:
		sub, err := tr.xlateSelect(t.Select)
		if err != nil {
			return nil, err
		}
		return &sqlparse.SubqueryTable{Select: sub, Alias: t.Alias}, nil
	case *sqlparse.Join:
		l, err := tr.xlateTableExpr(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := tr.xlateTableExpr(t.Right)
		if err != nil {
			return nil, err
		}
		var on sqlparse.Expr
		if t.On != nil {
			if on, err = tr.xlateExpr(t.On); err != nil {
				return nil, err
			}
		}
		return &sqlparse.Join{Type: t.Type, Left: l, Right: r, On: on}, nil
	default:
		return nil, fmt.Errorf("sqlxlate: unsupported table expression %T", te)
	}
}

func (tr *Translator) placeholderRef(name string) (sqlparse.Expr, error) {
	if tr.StageAlias == "" {
		return nil, fmt.Errorf("sqlxlate: placeholder :%s outside an ETL job context", name)
	}
	if tr.Layout != nil && tr.Layout.FieldIndex(name) < 0 {
		return nil, fmt.Errorf("sqlxlate: placeholder :%s does not match a layout field", name)
	}
	return &sqlparse.ColRef{Qualifier: tr.StageAlias, Name: name}, nil
}

func (tr *Translator) xlateExpr(x sqlparse.Expr) (sqlparse.Expr, error) {
	switch v := x.(type) {
	case nil:
		return nil, nil
	case *sqlparse.Literal:
		c := *v
		return &c, nil
	case *sqlparse.ColRef:
		c := *v
		return &c, nil
	case *sqlparse.Star:
		return &sqlparse.Star{}, nil
	case *sqlparse.Placeholder:
		return tr.placeholderRef(v.Name)

	case *sqlparse.UnaryExpr:
		xx, err := tr.xlateExpr(v.X)
		if err != nil {
			return nil, err
		}
		return &sqlparse.UnaryExpr{Op: v.Op, X: xx}, nil

	case *sqlparse.BinaryExpr:
		l, err := tr.xlateExpr(v.L)
		if err != nil {
			return nil, err
		}
		r, err := tr.xlateExpr(v.R)
		if err != nil {
			return nil, err
		}
		return &sqlparse.BinaryExpr{Op: v.Op, L: l, R: r}, nil

	case *sqlparse.FuncCall:
		return tr.xlateFunc(v)

	case *sqlparse.CastExpr:
		return tr.xlateCast(v)

	case *sqlparse.CaseExpr:
		out := &sqlparse.CaseExpr{}
		var err error
		if v.Operand != nil {
			if out.Operand, err = tr.xlateExpr(v.Operand); err != nil {
				return nil, err
			}
		}
		for _, w := range v.Whens {
			cond, err := tr.xlateExpr(w.Cond)
			if err != nil {
				return nil, err
			}
			then, err := tr.xlateExpr(w.Then)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, sqlparse.WhenClause{Cond: cond, Then: then})
		}
		if v.Else != nil {
			if out.Else, err = tr.xlateExpr(v.Else); err != nil {
				return nil, err
			}
		}
		return out, nil

	case *sqlparse.IsNullExpr:
		xx, err := tr.xlateExpr(v.X)
		if err != nil {
			return nil, err
		}
		return &sqlparse.IsNullExpr{X: xx, Not: v.Not}, nil

	case *sqlparse.InExpr:
		xx, err := tr.xlateExpr(v.X)
		if err != nil {
			return nil, err
		}
		out := &sqlparse.InExpr{X: xx, Not: v.Not}
		for _, it := range v.List {
			e, err := tr.xlateExpr(it)
			if err != nil {
				return nil, err
			}
			out.List = append(out.List, e)
		}
		if v.Sub != nil {
			if out.Sub, err = tr.xlateSelect(v.Sub); err != nil {
				return nil, err
			}
		}
		return out, nil

	case *sqlparse.BetweenExpr:
		xx, err := tr.xlateExpr(v.X)
		if err != nil {
			return nil, err
		}
		lo, err := tr.xlateExpr(v.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := tr.xlateExpr(v.Hi)
		if err != nil {
			return nil, err
		}
		return &sqlparse.BetweenExpr{X: xx, Lo: lo, Hi: hi, Not: v.Not}, nil

	case *sqlparse.LikeExpr:
		xx, err := tr.xlateExpr(v.X)
		if err != nil {
			return nil, err
		}
		p, err := tr.xlateExpr(v.Pattern)
		if err != nil {
			return nil, err
		}
		return &sqlparse.LikeExpr{X: xx, Pattern: p, Not: v.Not}, nil

	case *sqlparse.ExistsExpr:
		sub, err := tr.xlateSelect(v.Sub)
		if err != nil {
			return nil, err
		}
		return &sqlparse.ExistsExpr{Sub: sub, Not: v.Not}, nil

	case *sqlparse.SubqueryExpr:
		sub, err := tr.xlateSelect(v.Sub)
		if err != nil {
			return nil, err
		}
		return &sqlparse.SubqueryExpr{Sub: sub}, nil

	default:
		return nil, fmt.Errorf("sqlxlate: unsupported expression %T", x)
	}
}

// xlateCast rewrites legacy FORMAT casts to TO_DATE/TO_TIMESTAMP/TO_CHAR and
// maps the target type.
func (tr *Translator) xlateCast(v *sqlparse.CastExpr) (sqlparse.Expr, error) {
	inner, err := tr.xlateExpr(v.X)
	if err != nil {
		return nil, err
	}
	if v.Format != "" {
		switch v.Type.Name {
		case "DATE":
			return &sqlparse.FuncCall{Name: "TO_DATE", Args: []sqlparse.Expr{
				inner, &sqlparse.Literal{Kind: sqlparse.LitString, Str: v.Format},
			}}, nil
		case "TIMESTAMP":
			return &sqlparse.FuncCall{Name: "TO_TIMESTAMP", Args: []sqlparse.Expr{
				inner, &sqlparse.Literal{Kind: sqlparse.LitString, Str: v.Format},
			}}, nil
		case "CHAR", "CHARACTER", "VARCHAR":
			return &sqlparse.FuncCall{Name: "TO_CHAR", Args: []sqlparse.Expr{
				inner, &sqlparse.Literal{Kind: sqlparse.LitString, Str: v.Format},
			}}, nil
		default:
			return nil, fmt.Errorf("sqlxlate: FORMAT cast to %s has no CDW equivalent", v.Type.Name)
		}
	}
	ty, err := mapTypeName(v.Type)
	if err != nil {
		return nil, err
	}
	return &sqlparse.CastExpr{X: inner, Type: ty}, nil
}

// xlateFunc maps legacy function idioms to CDW equivalents.
func (tr *Translator) xlateFunc(v *sqlparse.FuncCall) (sqlparse.Expr, error) {
	args := make([]sqlparse.Expr, len(v.Args))
	for i, a := range v.Args {
		e, err := tr.xlateExpr(a)
		if err != nil {
			return nil, err
		}
		args[i] = e
	}
	lit0 := func(n int64) sqlparse.Expr { return &sqlparse.Literal{Kind: sqlparse.LitInt, Int: n} }
	switch v.Name {
	case "ZEROIFNULL":
		if len(args) != 1 {
			return nil, fmt.Errorf("sqlxlate: ZEROIFNULL expects 1 argument")
		}
		return &sqlparse.FuncCall{Name: "COALESCE", Args: []sqlparse.Expr{args[0], lit0(0)}}, nil
	case "NULLIFZERO":
		if len(args) != 1 {
			return nil, fmt.Errorf("sqlxlate: NULLIFZERO expects 1 argument")
		}
		return &sqlparse.FuncCall{Name: "NULLIF", Args: []sqlparse.Expr{args[0], lit0(0)}}, nil
	case "INDEX":
		if len(args) != 2 {
			return nil, fmt.Errorf("sqlxlate: INDEX expects 2 arguments")
		}
		return &sqlparse.FuncCall{Name: "POSITION", Args: args}, nil
	case "CHARACTERS", "CHARACTER_LENGTH", "CHAR_LENGTH":
		if len(args) != 1 {
			return nil, fmt.Errorf("sqlxlate: %s expects 1 argument", v.Name)
		}
		return &sqlparse.FuncCall{Name: "LENGTH", Args: args}, nil
	case "OREPLACE":
		return &sqlparse.FuncCall{Name: "REPLACE", Args: args}, nil
	default:
		// pass through with translated arguments
		return &sqlparse.FuncCall{Name: v.Name, Args: args, Distinct: v.Distinct}, nil
	}
}
