package sqlxlate

import (
	"fmt"
	"strings"

	"etlvirt/internal/sqlparse"
)

// DMLKind classifies an application-phase transformation.
type DMLKind int

// DML kinds.
const (
	DMLInsert DMLKind = iota
	DMLUpdate
	DMLDelete
	DMLUpsert
)

// String names the kind.
func (k DMLKind) String() string {
	switch k {
	case DMLUpdate:
		return "UPDATE"
	case DMLDelete:
		return "DELETE"
	case DMLUpsert:
		return "UPSERT"
	default:
		return "INSERT"
	}
}

// RangeStmt is a translated DML statement whose staging scan is restricted
// to a __seq row range. The range bounds are literal nodes mutated by SQL;
// a RangeStmt must therefore not be shared between goroutines.
type RangeStmt struct {
	stmt   sqlparse.Stmt
	lo, hi *sqlparse.Literal
}

// SQL renders the statement for rows lo..hi inclusive.
func (r *RangeStmt) SQL(lo, hi int64) (string, error) {
	r.lo.Int, r.hi.Int = lo, hi
	return sqlparse.Print(r.stmt, sqlparse.DialectCDW)
}

// DML is one translated application-phase statement plus the auxiliary
// queries the virtualizer needs around it.
type DML struct {
	Kind   DMLKind
	Target sqlparse.TableName
	// Apply is the rewritten statement, sourced from the staging table and
	// restricted to a row range. For upserts it is the UPDATE half.
	Apply *RangeStmt
	// ApplySecond is the guarded INSERT half of an upsert (nil otherwise).
	// It must run after Apply; both statements are idempotent per range so
	// adaptive retries converge.
	ApplySecond *RangeStmt
	// InsertExprs maps target column name (lower-cased) to the rewritten
	// source expression over the staging alias. Only set for inserts; used to
	// build uniqueness-emulation queries.
	InsertExprs map[string]sqlparse.Expr
	// OrderedExprs lists the rewritten insert source expressions in VALUES
	// order. Used to probe which expression fails for an isolated bad row.
	OrderedExprs []sqlparse.Expr
}

// StageFields returns the staging-column names (input fields) referenced by
// expr, given the translator's staging alias.
func StageFields(expr sqlparse.Expr, stageAlias string) []string {
	var out []string
	seen := map[string]bool{}
	wrap := &sqlparse.SelectStmt{Items: []sqlparse.SelectItem{{Expr: expr}}}
	sqlparse.WalkExprs(wrap, func(e sqlparse.Expr) {
		if c, ok := e.(*sqlparse.ColRef); ok && strings.EqualFold(c.Qualifier, stageAlias) {
			k := strings.ToUpper(c.Name)
			if !seen[k] && !strings.EqualFold(c.Name, SeqColumn) {
				seen[k] = true
				out = append(out, c.Name)
			}
		}
	})
	return out
}

// TranslateDML rewrites the application-phase DML of an import job. The
// legacy statement references input fields as :placeholders; the rewrite
// sources them from tr.Stage restricted by __seq range, turning the
// tuple-at-a-time legacy semantics into one set-oriented CDW statement per
// range (§3, §6).
func (tr *Translator) TranslateDML(legacySQL string) (*DML, error) {
	if tr.StageAlias == "" || tr.Stage.Name == "" {
		return nil, fmt.Errorf("sqlxlate: TranslateDML requires a staging context")
	}
	stmt, err := sqlparse.Parse(legacySQL, sqlparse.DialectLegacy)
	if err != nil {
		return nil, err
	}
	switch st := stmt.(type) {
	case *sqlparse.InsertStmt:
		return tr.translateInsertDML(st)
	case *sqlparse.UpdateStmt:
		return tr.translateUpdateDML(st)
	case *sqlparse.DeleteStmt:
		return tr.translateDeleteDML(st)
	case *sqlparse.UpsertStmt:
		return tr.translateUpsertDML(st)
	default:
		return nil, fmt.Errorf("sqlxlate: unsupported DML %T in application phase", stmt)
	}
}

// rangePredicate builds s.__seq BETWEEN lo AND hi with mutable bounds.
func (tr *Translator) rangePredicate() (sqlparse.Expr, *sqlparse.Literal, *sqlparse.Literal) {
	lo := &sqlparse.Literal{Kind: sqlparse.LitInt}
	hi := &sqlparse.Literal{Kind: sqlparse.LitInt}
	pred := &sqlparse.BetweenExpr{
		X:  &sqlparse.ColRef{Qualifier: tr.StageAlias, Name: SeqColumn},
		Lo: lo,
		Hi: hi,
	}
	return pred, lo, hi
}

func (tr *Translator) stageRef() *sqlparse.TableRef {
	return &sqlparse.TableRef{Table: tr.Stage, Alias: tr.StageAlias}
}

func (tr *Translator) translateInsertDML(st *sqlparse.InsertStmt) (*DML, error) {
	if st.Select != nil {
		return nil, fmt.Errorf("sqlxlate: INSERT ... SELECT is not an ETL apply statement")
	}
	if len(st.Rows) != 1 {
		return nil, fmt.Errorf("sqlxlate: ETL INSERT must have exactly one VALUES row")
	}
	target := tr.mapTable(st.Table)
	pred, lo, hi := tr.rangePredicate()
	sel := &sqlparse.SelectStmt{
		From:  []sqlparse.TableExpr{tr.stageRef()},
		Where: pred,
	}
	exprsByCol := make(map[string]sqlparse.Expr, len(st.Rows[0]))
	var ordered []sqlparse.Expr
	for i, e := range st.Rows[0] {
		xe, err := tr.xlateExpr(e)
		if err != nil {
			return nil, err
		}
		ordered = append(ordered, xe)
		sel.Items = append(sel.Items, sqlparse.SelectItem{Expr: xe})
		if i < len(st.Columns) {
			exprsByCol[strings.ToLower(st.Columns[i])] = xe
		} else {
			// positional: record under the ordinal; resolved against target
			// metadata by the caller via PositionalInsertExpr.
			exprsByCol[fmt.Sprintf("#%d", i)] = xe
		}
	}
	ins := &sqlparse.InsertStmt{
		Table:   target,
		Columns: append([]string{}, st.Columns...),
		Select:  sel,
	}
	return &DML{
		Kind:         DMLInsert,
		Target:       target,
		Apply:        &RangeStmt{stmt: ins, lo: lo, hi: hi},
		InsertExprs:  exprsByCol,
		OrderedExprs: ordered,
	}, nil
}

// PositionalInsertExpr returns the source expression feeding target column
// ordinal i for an insert without an explicit column list.
func (d *DML) PositionalInsertExpr(i int) (sqlparse.Expr, bool) {
	e, ok := d.InsertExprs[fmt.Sprintf("#%d", i)]
	return e, ok
}

// NamedInsertExpr returns the source expression feeding the named target
// column.
func (d *DML) NamedInsertExpr(col string) (sqlparse.Expr, bool) {
	e, ok := d.InsertExprs[strings.ToLower(col)]
	return e, ok
}

func (tr *Translator) translateUpdateDML(st *sqlparse.UpdateStmt) (*DML, error) {
	target := tr.mapTable(st.Table)
	pred, lo, hi := tr.rangePredicate()
	out := &sqlparse.UpdateStmt{Table: target, Alias: st.Alias}
	for _, a := range st.Set {
		v, err := tr.xlateExpr(a.Value)
		if err != nil {
			return nil, err
		}
		out.Set = append(out.Set, sqlparse.Assignment{Column: a.Column, Value: v})
	}
	for _, te := range st.From {
		t, err := tr.xlateTableExpr(te)
		if err != nil {
			return nil, err
		}
		out.From = append(out.From, t)
	}
	out.From = append(out.From, tr.stageRef())
	if st.Where != nil {
		w, err := tr.xlateExpr(st.Where)
		if err != nil {
			return nil, err
		}
		out.Where = &sqlparse.BinaryExpr{Op: "AND", L: w, R: pred}
	} else {
		out.Where = pred
	}
	return &DML{Kind: DMLUpdate, Target: target, Apply: &RangeStmt{stmt: out, lo: lo, hi: hi}}, nil
}

func (tr *Translator) translateDeleteDML(st *sqlparse.DeleteStmt) (*DML, error) {
	target := tr.mapTable(st.Table)
	pred, lo, hi := tr.rangePredicate()
	out := &sqlparse.DeleteStmt{Table: target, Alias: st.Alias}
	for _, te := range st.Using {
		t, err := tr.xlateTableExpr(te)
		if err != nil {
			return nil, err
		}
		out.Using = append(out.Using, t)
	}
	out.Using = append(out.Using, tr.stageRef())
	if st.Where != nil {
		w, err := tr.xlateExpr(st.Where)
		if err != nil {
			return nil, err
		}
		out.Where = &sqlparse.BinaryExpr{Op: "AND", L: w, R: pred}
	} else {
		out.Where = pred
	}
	return &DML{Kind: DMLDelete, Target: target, Apply: &RangeStmt{stmt: out, lo: lo, hi: hi}}, nil
}

// translateUpsertDML rewrites the legacy atomic upsert into a set-oriented
// pair: the UPDATE half sourced from the staging range, then an INSERT half
// guarded by NOT EXISTS on the update's match condition so only unmatched
// input rows insert. Both halves are idempotent for a fixed staged range,
// which adaptive error handling relies on when it re-applies sub-ranges.
func (tr *Translator) translateUpsertDML(st *sqlparse.UpsertStmt) (*DML, error) {
	if !st.Update.Table.Equal(st.Insert.Table) {
		return nil, fmt.Errorf("sqlxlate: upsert UPDATE targets %s but INSERT targets %s",
			st.Update.Table, st.Insert.Table)
	}
	upd, err := tr.translateUpdateDML(st.Update)
	if err != nil {
		return nil, err
	}
	ins, err := tr.translateInsertDML(st.Insert)
	if err != nil {
		return nil, err
	}
	// Guard the insert's staging scan: only rows with no matching target
	// row. Inside the subquery the target is in scope first, so the update's
	// match condition resolves target columns against it and staging columns
	// against the outer scan.
	var matchCond sqlparse.Expr
	if st.Update.Where != nil {
		if matchCond, err = tr.xlateExpr(st.Update.Where); err != nil {
			return nil, err
		}
	} else {
		matchCond = &sqlparse.Literal{Kind: sqlparse.LitBool, Bool: true}
	}
	guard := &sqlparse.ExistsExpr{
		Not: true,
		Sub: &sqlparse.SelectStmt{
			Items: []sqlparse.SelectItem{{Expr: &sqlparse.Literal{Kind: sqlparse.LitInt, Int: 1}}},
			From:  []sqlparse.TableExpr{&sqlparse.TableRef{Table: upd.Target}},
			Where: matchCond,
		},
	}
	insStmt := ins.Apply.stmt.(*sqlparse.InsertStmt)
	sel := insStmt.Select
	sel.Where = &sqlparse.BinaryExpr{Op: "AND", L: sel.Where, R: guard}

	return &DML{
		Kind:         DMLUpsert,
		Target:       upd.Target,
		Apply:        upd.Apply,
		ApplySecond:  ins.Apply,
		InsertExprs:  ins.InsertExprs,
		OrderedExprs: ins.OrderedExprs,
	}, nil
}

// DupCheckQueries builds the uniqueness-emulation queries for an insert DML
// (§7): intra-range duplicates among the rows being inserted, and collisions
// between those rows and the target table. keyExprs are the rewritten source
// expressions feeding the target's key columns (parallel to keyCols). Both
// queries return the number of violations in the __seq range.
func (tr *Translator) DupCheckQueries(d *DML, keyCols []string, keyExprs []sqlparse.Expr) (intra, target *RangeStmt, err error) {
	if len(keyCols) == 0 || len(keyCols) != len(keyExprs) {
		return nil, nil, fmt.Errorf("sqlxlate: bad uniqueness key specification")
	}
	countStar := func() *sqlparse.FuncCall {
		return &sqlparse.FuncCall{Name: "COUNT", Args: []sqlparse.Expr{&sqlparse.Star{}}}
	}

	// intra: SELECT count(*) FROM (SELECT 1 AS one FROM stage s WHERE range
	//        GROUP BY e1.. HAVING count(*) > 1) d
	predI, loI, hiI := tr.rangePredicate()
	inner := &sqlparse.SelectStmt{
		Items:   []sqlparse.SelectItem{{Expr: &sqlparse.Literal{Kind: sqlparse.LitInt, Int: 1}, Alias: "one"}},
		From:    []sqlparse.TableExpr{tr.stageRef()},
		Where:   predI,
		GroupBy: keyExprs,
		Having: &sqlparse.BinaryExpr{Op: ">",
			L: countStar(),
			R: &sqlparse.Literal{Kind: sqlparse.LitInt, Int: 1}},
	}
	intraSel := &sqlparse.SelectStmt{
		Items: []sqlparse.SelectItem{{Expr: countStar()}},
		From:  []sqlparse.TableExpr{&sqlparse.SubqueryTable{Select: inner, Alias: "d"}},
	}
	intra = &RangeStmt{stmt: intraSel, lo: loI, hi: hiI}

	// target: SELECT count(*) FROM stage s JOIN tgt t ON t.k1 = e1 ... WHERE range
	predT, loT, hiT := tr.rangePredicate()
	var on sqlparse.Expr
	for i, kc := range keyCols {
		eq := &sqlparse.BinaryExpr{Op: "=",
			L: &sqlparse.ColRef{Qualifier: "t", Name: kc},
			R: keyExprs[i]}
		if on == nil {
			on = eq
		} else {
			on = &sqlparse.BinaryExpr{Op: "AND", L: on, R: eq}
		}
	}
	join := &sqlparse.Join{
		Type:  sqlparse.JoinInner,
		Left:  tr.stageRef(),
		Right: &sqlparse.TableRef{Table: d.Target, Alias: "t"},
		On:    on,
	}
	targetSel := &sqlparse.SelectStmt{
		Items: []sqlparse.SelectItem{{Expr: countStar()}},
		From:  []sqlparse.TableExpr{join},
		Where: predT,
	}
	target = &RangeStmt{stmt: targetSel, lo: loT, hi: hiT}
	return intra, target, nil
}
