package sqlxlate

import (
	"strings"
	"testing"

	"etlvirt/internal/ltype"
	"etlvirt/internal/sqlparse"
)

func custLayout() *ltype.Layout {
	return &ltype.Layout{Name: "CustLayout", Fields: []ltype.Field{
		{Name: "CUST_ID", Type: ltype.VarChar(5)},
		{Name: "CUST_NAME", Type: ltype.VarChar(50)},
		{Name: "JOIN_DATE", Type: ltype.VarChar(10)},
	}}
}

func jobTranslator() *Translator {
	return &Translator{
		Stage:      sqlparse.TableName{Schema: "etl_stage", Name: "job1"},
		StageAlias: "s",
		Layout:     custLayout(),
	}
}

func TestTranslateExample21DML(t *testing.T) {
	tr := jobTranslator()
	dml, err := tr.TranslateDML(`insert into PROD.CUSTOMER values (
		trim(:CUST_ID), trim(:CUST_NAME),
		cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') )`)
	if err != nil {
		t.Fatal(err)
	}
	if dml.Kind != DMLInsert || dml.Target.String() != "PROD.CUSTOMER" {
		t.Errorf("dml head: %+v", dml)
	}
	sql, err := dml.Apply.SQL(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := "INSERT INTO PROD.CUSTOMER SELECT TRIM(s.CUST_ID), TRIM(s.CUST_NAME), TO_DATE(s.JOIN_DATE, 'YYYY-MM-DD') FROM etl_stage.job1 s WHERE s.__seq BETWEEN 1 AND 100"
	if sql != want {
		t.Errorf("apply SQL:\n got %s\nwant %s", sql, want)
	}
	// re-rendering with a new range mutates only the bounds
	sql2, err := dml.Apply.SQL(42, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql2, "BETWEEN 42 AND 42") {
		t.Errorf("range not updated: %s", sql2)
	}
	// positional insert exprs recorded
	if _, ok := dml.PositionalInsertExpr(0); !ok {
		t.Error("positional expr missing")
	}
	// CDW dialect parses the output
	if _, err := sqlparse.Parse(sql, sqlparse.DialectCDW); err != nil {
		t.Errorf("translated SQL does not parse in CDW dialect: %v", err)
	}
}

func TestTranslateDMLUpdateDelete(t *testing.T) {
	tr := jobTranslator()
	dml, err := tr.TranslateDML("UPDATE PROD.CUSTOMER SET CUST_NAME = trim(:CUST_NAME) WHERE CUST_ID = trim(:CUST_ID)")
	if err != nil {
		t.Fatal(err)
	}
	sql, _ := dml.Apply.SQL(5, 10)
	if !strings.Contains(sql, "FROM etl_stage.job1 s") || !strings.Contains(sql, "s.__seq BETWEEN 5 AND 10") {
		t.Errorf("update SQL: %s", sql)
	}
	if dml.Kind != DMLUpdate {
		t.Errorf("kind = %v", dml.Kind)
	}
	if _, err := sqlparse.Parse(sql, sqlparse.DialectCDW); err != nil {
		t.Errorf("update output unparseable: %v\n%s", err, sql)
	}

	dml, err = tr.TranslateDML("DELETE FROM PROD.CUSTOMER WHERE CUST_ID = trim(:CUST_ID)")
	if err != nil {
		t.Fatal(err)
	}
	sql, _ = dml.Apply.SQL(1, 2)
	if !strings.Contains(sql, "USING etl_stage.job1 s") {
		t.Errorf("delete SQL: %s", sql)
	}
	if _, err := sqlparse.Parse(sql, sqlparse.DialectCDW); err != nil {
		t.Errorf("delete output unparseable: %v\n%s", err, sql)
	}
}

func TestTranslateDMLErrors(t *testing.T) {
	tr := jobTranslator()
	bad := []string{
		"insert into t values (:NOPE)",                             // unknown field
		"insert into t values (1), (2)",                            // multiple rows
		"insert into t select * from u",                            // insert-select
		"create table t (a INTEGER)",                               // not DML
		"insert into t values (cast(:CUST_ID as BYTE format 'X'))", // untranslatable format
	}
	for _, src := range bad {
		if _, err := tr.TranslateDML(src); err == nil {
			t.Errorf("TranslateDML(%q) succeeded", src)
		}
	}
	noCtx := &Translator{}
	if _, err := noCtx.TranslateDML("insert into t values (:A)"); err == nil {
		t.Error("missing staging context accepted")
	}
}

func TestTranslateFunctions(t *testing.T) {
	tr := &Translator{}
	cases := []struct{ in, want string }{
		{"SELECT ZEROIFNULL(x) FROM t", "SELECT COALESCE(x, 0) FROM t"},
		{"SELECT NULLIFZERO(x) FROM t", "SELECT NULLIF(x, 0) FROM t"},
		{"SELECT INDEX(a, b) FROM t", "SELECT POSITION(a, b) FROM t"},
		{"SELECT CHARACTERS(a) FROM t", "SELECT LENGTH(a) FROM t"},
		{"SEL TOP 3 a FROM t", "SELECT a FROM t LIMIT 3"},
		{"SELECT a MOD 2 FROM t", "SELECT a % 2 FROM t"},
		{"SELECT cast(x as CHAR(10) format 'YYYY-MM-DD') FROM t", "SELECT TO_CHAR(x, 'YYYY-MM-DD') FROM t"},
		{"SELECT cast(x as TIMESTAMP format 'YYYY-MM-DD HH24:MI:SS') FROM t", "SELECT TO_TIMESTAMP(x, 'YYYY-MM-DD HH24:MI:SS') FROM t"},
	}
	for _, c := range cases {
		got, err := tr.Translate(c.in)
		if err != nil {
			t.Errorf("Translate(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Translate(%q)\n got %s\nwant %s", c.in, got, c.want)
		}
	}
}

func TestTranslateCreateTable(t *testing.T) {
	tr := &Translator{}
	got, err := tr.Translate(`CREATE TABLE PROD.CUSTOMER (
		CUST_ID VARCHAR(5) NOT NULL,
		CUST_NAME VARCHAR(50) CHARACTER SET UNICODE,
		FLAGS BYTEINT,
		PAYLOAD VARBYTE(100),
		JOIN_DATE DATE,
		PRIMARY KEY (CUST_ID))`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"NVARCHAR(50)", "SMALLINT", "VARBINARY(100)", "PRIMARY KEY (CUST_ID)"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %s", want, got)
		}
	}
	if strings.Contains(got, "CHARACTER SET") {
		t.Errorf("CHARACTER SET leaked: %s", got)
	}
	if _, err := sqlparse.Parse(got, sqlparse.DialectCDW); err != nil {
		t.Errorf("output unparseable: %v", err)
	}
}

func TestSchemaMapping(t *testing.T) {
	tr := &Translator{SchemaMap: map[string]string{"PROD": "analytics"}}
	got, err := tr.Translate("SELECT * FROM PROD.CUSTOMER c JOIN other.t o ON c.k = o.k")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "analytics.CUSTOMER") || !strings.Contains(got, "other.t") {
		t.Errorf("schema map: %s", got)
	}
}

func TestMapLegacyType(t *testing.T) {
	cases := []struct {
		in   ltype.Type
		want string
	}{
		{ltype.Simple(ltype.KindByteInt), "SMALLINT"},
		{ltype.Simple(ltype.KindInteger), "INTEGER"},
		{ltype.Simple(ltype.KindBigInt), "BIGINT"},
		{ltype.Simple(ltype.KindFloat), "DOUBLE"},
		{ltype.Decimal(10, 2), "DECIMAL"},
		{ltype.VarChar(5), "VARCHAR"},
		{ltype.Type{Kind: ltype.KindVarChar, Length: 5, CharSet: ltype.CharSetUnicode}, "NVARCHAR"},
		{ltype.Simple(ltype.KindDate), "DATE"},
		{ltype.Type{Kind: ltype.KindVarByte, Length: 4}, "VARBINARY"},
	}
	for _, c := range cases {
		got := MapLegacyType(c.in)
		if got.Name != c.want {
			t.Errorf("MapLegacyType(%s) = %s, want %s", c.in, got.Name, c.want)
		}
	}
}

func TestStagingDDL(t *testing.T) {
	ddl, err := StagingDDL(sqlparse.TableName{Schema: "etl_stage", Name: "job1"}, custLayout())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"__seq BIGINT NOT NULL", "CUST_ID VARCHAR(5)", "JOIN_DATE VARCHAR(10)"} {
		if !strings.Contains(ddl, want) {
			t.Errorf("missing %q in %s", want, ddl)
		}
	}
	if _, err := sqlparse.Parse(ddl, sqlparse.DialectCDW); err != nil {
		t.Errorf("staging DDL unparseable: %v", err)
	}
	// binary fields stage as hex text
	binLayout := &ltype.Layout{Name: "B", Fields: []ltype.Field{
		{Name: "P", Type: ltype.Type{Kind: ltype.KindVarByte, Length: 8}},
	}}
	ddl, err = StagingDDL(sqlparse.TableName{Name: "s2"}, binLayout)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ddl, "P VARCHAR(16)") {
		t.Errorf("binary staging: %s", ddl)
	}
}

func TestErrorTableDDL(t *testing.T) {
	ddl, err := ErrorTableDDL(sqlparse.TableName{Schema: "PROD", Name: "CUSTOMER_ET"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SEQNO", "ERRCODE", "ERRFIELD", "ERRMSG"} {
		if !strings.Contains(ddl, want) {
			t.Errorf("missing %q in %s", want, ddl)
		}
	}
	if _, err := sqlparse.Parse(ddl, sqlparse.DialectCDW); err != nil {
		t.Errorf("error table DDL unparseable: %v", err)
	}
}

func TestDupCheckQueries(t *testing.T) {
	tr := jobTranslator()
	dml, err := tr.TranslateDML(`insert into PROD.CUSTOMER values (
		trim(:CUST_ID), trim(:CUST_NAME), cast(:JOIN_DATE as DATE format 'YYYY-MM-DD'))`)
	if err != nil {
		t.Fatal(err)
	}
	keyExpr, ok := dml.PositionalInsertExpr(0)
	if !ok {
		t.Fatal("missing key expr")
	}
	intra, target, err := tr.DupCheckQueries(dml, []string{"CUST_ID"}, []sqlparse.Expr{keyExpr})
	if err != nil {
		t.Fatal(err)
	}
	isql, err := intra.SQL(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(isql, "GROUP BY TRIM(s.CUST_ID)") || !strings.Contains(isql, "HAVING COUNT(*) > 1") {
		t.Errorf("intra SQL: %s", isql)
	}
	tsql, err := target.SQL(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tsql, "JOIN PROD.CUSTOMER t ON t.CUST_ID = TRIM(s.CUST_ID)") {
		t.Errorf("target SQL: %s", tsql)
	}
	for _, sql := range []string{isql, tsql} {
		if _, err := sqlparse.Parse(sql, sqlparse.DialectCDW); err != nil {
			t.Errorf("dup query unparseable: %v\n%s", err, sql)
		}
	}
	if _, _, err := tr.DupCheckQueries(dml, nil, nil); err == nil {
		t.Error("empty key spec accepted")
	}
}

func TestAnalyze(t *testing.T) {
	rep := Analyze(`
		SELECT ZEROIFNULL(x) FROM t;
		insert into tgt values (cast(:F as DATE format 'YYYY-MM-DD'));
		SELECT cast(x as BYTE(4) format 'X') FROM t;
	`)
	if rep.Statements != 3 {
		t.Fatalf("statements = %d", rep.Statements)
	}
	var constructs []string
	for _, f := range rep.Findings {
		constructs = append(constructs, f.Construct)
	}
	joined := strings.Join(constructs, ",")
	for _, want := range []string{"legacy-function", "format-cast", "placeholder", "untranslatable"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing construct %q in %v", want, constructs)
		}
	}
	if len(rep.ManualRewrites()) == 0 {
		t.Error("manual rewrite not flagged for BYTE format cast")
	}
	// >99% story: translatable statements counted
	if rep.Translatable < 1 {
		t.Errorf("translatable = %d", rep.Translatable)
	}
	// garbage input
	rep = Analyze("NOT SQL AT ALL")
	if len(rep.Findings) == 0 {
		t.Error("unparseable script produced no findings")
	}
}

func TestTranslateUpsertDML(t *testing.T) {
	tr := jobTranslator()
	dml, err := tr.TranslateDML(`UPDATE PROD.CUSTOMER SET CUST_NAME = trim(:CUST_NAME)
		WHERE CUST_ID = trim(:CUST_ID)
		ELSE INSERT INTO PROD.CUSTOMER VALUES (
			trim(:CUST_ID), trim(:CUST_NAME),
			cast(:JOIN_DATE as DATE format 'YYYY-MM-DD'))`)
	if err != nil {
		t.Fatal(err)
	}
	if dml.Kind != DMLUpsert || dml.ApplySecond == nil {
		t.Fatalf("dml: %+v", dml)
	}
	upd, err := dml.Apply.SQL(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(upd, "UPDATE PROD.CUSTOMER SET CUST_NAME = TRIM(s.CUST_NAME)") ||
		!strings.Contains(upd, "s.__seq BETWEEN 1 AND 10") {
		t.Errorf("update half: %s", upd)
	}
	ins, err := dml.ApplySecond.SQL(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ins, "NOT EXISTS (SELECT 1 FROM PROD.CUSTOMER WHERE CUST_ID = TRIM(s.CUST_ID))") {
		t.Errorf("insert guard: %s", ins)
	}
	for _, sql := range []string{upd, ins} {
		if _, err := sqlparse.Parse(sql, sqlparse.DialectCDW); err != nil {
			t.Errorf("unparseable: %v\n%s", err, sql)
		}
	}
	// mismatched targets rejected
	if _, err := tr.TranslateDML(
		"UPDATE a SET v = :CUST_ID WHERE k = :CUST_ID ELSE INSERT INTO b VALUES (:CUST_ID)"); err == nil {
		t.Error("mismatched upsert targets accepted")
	}
}

func TestTranslateUnion(t *testing.T) {
	tr := &Translator{}
	got, err := tr.Translate("SEL ZEROIFNULL(a) FROM t UNION ALL SEL b FROM u ORDER BY 'k'")
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT COALESCE(a, 0) FROM t UNION ALL SELECT b FROM u ORDER BY 'k'"
	if got != want {
		t.Errorf("got %s\nwant %s", got, want)
	}
}

func TestAnalyzeUpsert(t *testing.T) {
	rep := Analyze("UPDATE t SET v = :A WHERE k = :A ELSE INSERT INTO t VALUES (:A, :A);")
	if rep.Statements != 1 || rep.Translatable != 1 {
		t.Errorf("upsert analysis: %+v", rep)
	}
}
