package sqlxlate

import (
	"strings"
	"testing"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cloudstore"
	"etlvirt/internal/sqlparse"
)

func TestScrubTableName(t *testing.T) {
	cases := []struct {
		in           string
		schema, name string
	}{
		{"PROD.CUSTOMER", "PROD", "CUSTOMER"},
		{"CUSTOMER", "", "CUSTOMER"},
		{" PROD . CUSTOMER ", "PROD", "CUSTOMER"},
	}
	for _, c := range cases {
		got := ScrubTableName(c.in)
		if got.Schema != c.schema || got.Name != c.name {
			t.Errorf("ScrubTableName(%q) = %+v", c.in, got)
		}
	}
}

func TestChecksumQuery(t *testing.T) {
	sql, err := ChecksumQuery("PROD.CUSTOMER", []string{"CUST_ID", "JOIN_DATE"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"COUNT(*)",
		"COUNT(CUST_ID)", "XOR_AGG(HASH64(CUST_ID))",
		"COUNT(JOIN_DATE)", "XOR_AGG(HASH64(JOIN_DATE))",
		"FROM PROD.CUSTOMER",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("checksum query missing %q:\n%s", want, sql)
		}
	}
	if _, err := sqlparse.Parse(sql, sqlparse.DialectCDW); err != nil {
		t.Errorf("checksum query unparseable: %v\n%s", err, sql)
	}
	if _, err := ChecksumQuery("PROD.CUSTOMER", nil); err == nil {
		t.Error("checksum query without columns accepted")
	}
}

func TestProbeQuery(t *testing.T) {
	sql, err := ProbeQuery("PROD.CUSTOMER")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SELECT *", "FROM PROD.CUSTOMER", "1 = 0"} {
		if !strings.Contains(sql, want) {
			t.Errorf("probe query missing %q:\n%s", want, sql)
		}
	}
	// The probe must really return zero rows but a full header.
	e := cdw.NewEngine(cloudstore.NewMemStore(), cdw.Options{})
	if _, err := e.ExecSQL(`CREATE TABLE PROD.CUSTOMER (
		CUST_ID VARCHAR(5) NOT NULL, PRIMARY KEY (CUST_ID))`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecSQL(`INSERT INTO PROD.CUSTOMER VALUES ('1')`); err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 || len(res.Columns) != 1 {
		t.Errorf("probe returned %d rows, %d columns", len(res.Rows), len(res.Columns))
	}
}

func TestDomainAuditQuery(t *testing.T) {
	sql, err := DomainAuditQuery("PROD.CUSTOMER", "CUST_ID <> ''")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"COUNT(*)", "FROM PROD.CUSTOMER", "NOT"} {
		if !strings.Contains(sql, want) {
			t.Errorf("domain audit missing %q:\n%s", want, sql)
		}
	}
	if _, err := sqlparse.Parse(sql, sqlparse.DialectCDW); err != nil {
		t.Errorf("domain audit unparseable: %v\n%s", err, sql)
	}
	// A broken predicate must fail loudly at build time, not audit nothing.
	if _, err := DomainAuditQuery("PROD.CUSTOMER", "CUST_ID >"); err == nil {
		t.Error("malformed domain predicate accepted")
	}
}
