package sqlxlate

import (
	"fmt"
	"strings"

	"etlvirt/internal/sqlparse"
)

// StreamDML is the MERGE-style statement triple a streaming micro-batch
// applies. The stream job stages upsert images and delete images in two
// staging tables, each row under its global delta sequence, and applies the
// batch as maximal runs of consecutive same-class deltas in sequence order:
//
//	Delete: DELETE FROM tgt USING delstage d WHERE keys match AND d.__seq range
//	Update: UPDATE tgt SET ... FROM upsstage s WHERE keys match AND s.__seq range
//	Insert: INSERT INTO tgt SELECT ... FROM upsstage s WHERE s.__seq range
//	        AND NOT EXISTS (matching target row)
//
// An upsert run executes Update then the guarded Insert over its range; a
// delete run executes Delete. Run ordering (not server-side key collapse,
// which is impossible here — keys are arbitrary SQL expressions over the
// image) reproduces tuple-at-a-time semantics: the CDW's UPDATE ... FROM
// applies matching images in staged order so the last image of a key wins
// within a run, and run boundaries order deletes against upserts of the same
// key. Each statement is idempotent for a fixed staged range, which both the
// adaptive error handler (sub-range re-application) and checkpoint-resume
// replay (a crash between apply and watermark update re-runs the whole
// batch) rely on. The one hazard — two images of the same not-yet-present
// key inside one range would both pass the Insert guard — is excluded by the
// stream job's intra-range duplicate probe, which forces a split until
// ranges are duplicate-free.
type StreamDML struct {
	Target sqlparse.TableName
	// Delete ranges over the delete-stage __seq. Nil when the batch cannot
	// carry deletes (no usable key columns).
	Delete *RangeStmt
	// Update and Insert both range over the upsert-stage __seq. Update is
	// nil when every inserted column is a key column (nothing to set).
	Update *RangeStmt
	Insert *RangeStmt
	// InsertExprs/OrderedExprs mirror DML for error-probe reuse.
	InsertExprs  map[string]sqlparse.Expr
	OrderedExprs []sqlparse.Expr
}

// TranslateStreamDML derives the streaming statement triple from the
// INSERT-shaped apply DML of a stream. tr's staging context names the
// upsert-image stage; delStage is the delete-image stage (same layout).
// targetCols is the target's column list in ordinal order and keyCols the
// subset forming its primary key — both from table metadata.
func (tr *Translator) TranslateStreamDML(legacySQL string, delStage sqlparse.TableName, targetCols, keyCols []string) (*StreamDML, error) {
	if tr.StageAlias == "" || tr.Stage.Name == "" {
		return nil, fmt.Errorf("sqlxlate: TranslateStreamDML requires a staging context")
	}
	if len(keyCols) == 0 {
		return nil, fmt.Errorf("sqlxlate: streaming requires a primary key on the target table")
	}
	stmt, err := sqlparse.Parse(legacySQL, sqlparse.DialectLegacy)
	if err != nil {
		return nil, err
	}
	ins, ok := stmt.(*sqlparse.InsertStmt)
	if !ok {
		return nil, fmt.Errorf("sqlxlate: stream apply DML must be an INSERT, got %T", stmt)
	}

	// Upsert half over tr's stage (alias s), delete half over a second
	// translator bound to the delete stage with its own alias so the two
	// ranges and key expressions never share mutable AST nodes.
	trDel := &Translator{Stage: delStage, StageAlias: tr.StageAlias + "d", Layout: tr.Layout, SchemaMap: tr.SchemaMap}
	upsDML, err := tr.translateInsertDML(ins)
	if err != nil {
		return nil, err
	}
	delDML, err := trDel.translateInsertDML(ins)
	if err != nil {
		return nil, err
	}
	target := upsDML.Target

	// Resolve the expressions feeding each target column, by name or by
	// ordinal, for both stage aliases.
	colExpr := func(d *DML, col string) (sqlparse.Expr, bool) {
		if e, ok := d.NamedInsertExpr(col); ok {
			return e, true
		}
		for i, c := range targetCols {
			if strings.EqualFold(c, col) {
				return d.PositionalInsertExpr(i)
			}
		}
		return nil, false
	}
	keyMatch := func(d *DML, tgtAlias string) (sqlparse.Expr, error) {
		var cond sqlparse.Expr
		for _, kc := range keyCols {
			e, ok := colExpr(d, kc)
			if !ok {
				return nil, fmt.Errorf("sqlxlate: stream apply DML does not feed key column %s", kc)
			}
			eq := &sqlparse.BinaryExpr{Op: "=",
				L: &sqlparse.ColRef{Qualifier: tgtAlias, Name: kc},
				R: e}
			if cond == nil {
				cond = eq
			} else {
				cond = &sqlparse.BinaryExpr{Op: "AND", L: cond, R: eq}
			}
		}
		return cond, nil
	}
	isKey := func(col string) bool {
		for _, kc := range keyCols {
			if strings.EqualFold(kc, col) {
				return true
			}
		}
		return false
	}
	// Columns fed by the insert, in target order.
	fedCols := ins.Columns
	if len(fedCols) == 0 {
		if len(targetCols) < len(upsDML.OrderedExprs) {
			return nil, fmt.Errorf("sqlxlate: positional stream INSERT feeds %d values but target has %d columns",
				len(upsDML.OrderedExprs), len(targetCols))
		}
		fedCols = targetCols[:len(upsDML.OrderedExprs)]
	}

	out := &StreamDML{
		Target:       target,
		Insert:       upsDML.Apply,
		InsertExprs:  upsDML.InsertExprs,
		OrderedExprs: upsDML.OrderedExprs,
	}

	// Guard the insert: only images with no matching target row insert.
	insMatch, err := keyMatch(upsDML, "t")
	if err != nil {
		return nil, err
	}
	guard := &sqlparse.ExistsExpr{
		Not: true,
		Sub: &sqlparse.SelectStmt{
			Items: []sqlparse.SelectItem{{Expr: &sqlparse.Literal{Kind: sqlparse.LitInt, Int: 1}}},
			From:  []sqlparse.TableExpr{&sqlparse.TableRef{Table: target, Alias: "t"}},
			Where: insMatch,
		},
	}
	insStmt := upsDML.Apply.stmt.(*sqlparse.InsertStmt)
	insStmt.Select.Where = &sqlparse.BinaryExpr{Op: "AND", L: insStmt.Select.Where, R: guard}

	// Update half: set every fed non-key column from the image where keys
	// match. Needs its own key expressions (fresh AST, not shared with the
	// guard) — translate the insert again for them.
	updSrc, err := tr.translateInsertDML(ins)
	if err != nil {
		return nil, err
	}
	var set []sqlparse.Assignment
	for _, col := range fedCols {
		if isKey(col) {
			continue
		}
		e, ok := colExpr(updSrc, col)
		if !ok {
			return nil, fmt.Errorf("sqlxlate: stream apply DML does not feed column %s", col)
		}
		set = append(set, sqlparse.Assignment{Column: col, Value: e})
	}
	if len(set) > 0 {
		updMatch, err := keyMatch(updSrc, "t")
		if err != nil {
			return nil, err
		}
		pred, lo, hi := tr.rangePredicate()
		upd := &sqlparse.UpdateStmt{
			Table: target,
			Alias: "t",
			Set:   set,
			From:  []sqlparse.TableExpr{tr.stageRef()},
			Where: &sqlparse.BinaryExpr{Op: "AND", L: updMatch, R: pred},
		}
		out.Update = &RangeStmt{stmt: upd, lo: lo, hi: hi}
	}

	// Delete half: remove target rows whose keys match a delete image.
	delMatch, err := keyMatch(delDML, "t")
	if err != nil {
		return nil, err
	}
	pred, lo, hi := trDel.rangePredicate()
	del := &sqlparse.DeleteStmt{
		Table: target,
		Alias: "t",
		Using: []sqlparse.TableExpr{trDel.stageRef()},
		Where: &sqlparse.BinaryExpr{Op: "AND", L: delMatch, R: pred},
	}
	out.Delete = &RangeStmt{stmt: del, lo: lo, hi: hi}
	return out, nil
}

// CheckpointTableDDL builds the CREATE TABLE IF NOT EXISTS for the durable
// stream-watermark table. One row per stream name; WATERMARK is the highest
// delta sequence whose micro-batch has been fully applied to the CDW.
func CheckpointTableDDL(table sqlparse.TableName) (string, error) {
	ct := &sqlparse.CreateTableStmt{
		Table:       table,
		IfNotExists: true,
		Columns: []sqlparse.ColumnDef{
			{Name: "STREAM_NAME", Type: sqlparse.TypeName{Name: "VARCHAR", Args: []int{256}}, NotNull: true},
			{Name: "WATERMARK", Type: sqlparse.TypeName{Name: "BIGINT"}, NotNull: true},
		},
		PrimaryKey: []string{"STREAM_NAME"},
	}
	return sqlparse.Print(ct, sqlparse.DialectCDW)
}
