package bench

import (
	"fmt"
	"strings"
	"time"

	"etlvirt/internal/cdw"
	"etlvirt/internal/core"
)

// StagingLaneRow is one configuration of the staging-lane comparison: the
// serialized baseline (one monolithic COPY after acquisition drains), the
// overlapped copy scheduler (incremental manifest COPYs while acquisition
// runs), and the overlapped lane with the adaptive tuner closed over its
// knobs.
type StagingLaneRow struct {
	Name        string
	Times       PhaseTimes
	CopyBatches int64
}

// stagingLaneConfig is the shared shape of the comparison runs: enough rows
// and a small-enough spool threshold to produce a stream of intermediate
// files, gzip so COPY decompression is real work, and a per-statement CDW
// overhead standing in for the cloud round trip — the cost the overlap hides.
func stagingLaneConfig(scale int, node core.Config) RunConfig {
	node.Gzip = true
	node.FileSizeThreshold = 32 << 10
	node.FileWriters = 2
	return RunConfig{
		Workload:     Workload{Rows: 8 * scale, RowBytes: 500, Seed: 30},
		Node:         node,
		CDW:          cdw.Options{StmtOverhead: 2 * time.Millisecond},
		Sessions:     2,
		ChunkRecords: 200,
		// A mildly constrained uplink keeps acquisition long enough to hide
		// the incremental COPYs inside, without stretching it so far that
		// the hidden COPY work becomes a rounding error of the total.
		UplinkBytesPerSec: 16 << 20,
	}
}

// StagingLane runs the overlapped-vs-serialized comparison behind the
// staging-lane optimization: identical workload and stack, with only the
// copy-scheduler and tuner toggles varied.
func StagingLane(scale int) ([]StagingLaneRow, error) {
	if scale <= 0 {
		scale = RowsPerPaperMillion
	}
	modes := []struct {
		name string
		node core.Config
	}{
		{"serialized COPY after drain (baseline)", core.Config{SerializedCopy: true}},
		{"overlapped incremental COPY", core.Config{}},
		{"overlapped + adaptive tuner", core.Config{AdaptiveStaging: true, TunerInterval: 50 * time.Millisecond}},
	}
	var out []StagingLaneRow
	for _, m := range modes {
		p, err := RunImport(stagingLaneConfig(scale, m.node))
		if err != nil {
			return nil, fmt.Errorf("staging lane %q: %w", m.name, err)
		}
		out = append(out, StagingLaneRow{Name: m.name, Times: p, CopyBatches: p.CopyBatches})
	}
	return out, nil
}

// FormatStagingLane renders the comparison.
func FormatStagingLane(rows []StagingLaneRow) string {
	var sb strings.Builder
	sb.WriteString("Staging lane: overlapped incremental COPY vs serialized baseline\n")
	fmt.Fprintf(&sb, "%-42s %14s %14s %12s %8s %8s\n",
		"configuration", "acquisition", "total", "rate MB/s", "files", "batches")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-42s %14v %14v %12.1f %8d %8d\n",
			r.Name, r.Times.Acquisition.Round(time.Millisecond),
			r.Times.Total.Round(time.Millisecond),
			r.Times.AcquireRateMBs(), r.Times.Files, r.CopyBatches)
	}
	if len(rows) >= 2 && rows[0].Times.Total > 0 {
		delta := (1 - float64(rows[1].Times.Total)/float64(rows[0].Times.Total)) * 100
		fmt.Fprintf(&sb, "overlap saves %.0f%% of serialized wall-clock\n", delta)
	}
	return sb.String()
}
