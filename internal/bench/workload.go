// Package bench implements the evaluation harness of §9: synthetic
// workload generation, scaled-down experiment runners for every figure of
// the paper, and text formatters that print the same series the paper
// plots.
//
// Absolute numbers differ from the paper — the substrate here is an
// in-process warehouse, not Azure Synapse — so the harness reports and the
// tests assert the *shapes*: which phase dominates, which system wins, how
// ratios move across the sweep.
package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"etlvirt/internal/ltype"
)

// RowsPerPaperMillion converts the paper's dataset sizes (25-100 million
// rows) into simulation rows. The default keeps every figure reproducible in
// seconds on a laptop; raise it (cmd/benchfig -scale) for longer, smoother
// runs.
const RowsPerPaperMillion = 2000

// Workload describes a synthetic import dataset.
type Workload struct {
	Rows     int
	RowBytes int     // approximate bytes per generated row
	Cols     int     // filler columns beyond key+date; 0 derives from RowBytes
	ErrRate  float64 // fraction of rows with an invalid date (ET errors)
	DupRate  float64 // fraction of rows duplicating an earlier key (UV errors)
	NoPK     bool    // omit the primary key from the target DDL
	Seed     int64
}

// fillerCols returns the number and width of filler columns.
func (w Workload) fillerCols() (n, width int) {
	const keyDateBytes = 12 + 1 + 10 + 1 // key|date| with delimiters
	payload := w.RowBytes - keyDateBytes
	if payload < 8 {
		payload = 8
	}
	n = w.Cols
	if n <= 0 {
		// target ~60-byte columns
		n = payload / 60
		if n < 1 {
			n = 1
		}
	}
	width = payload / n
	if width < 1 {
		width = 1
	}
	return n, width
}

// Layout returns the legacy layout for the generated data.
func (w Workload) Layout() *ltype.Layout {
	nf, width := w.fillerCols()
	l := &ltype.Layout{Name: "BenchLayout", Fields: []ltype.Field{
		{Name: "K", Type: ltype.VarChar(12)},
		{Name: "D", Type: ltype.VarChar(10)},
	}}
	for i := 0; i < nf; i++ {
		l.Fields = append(l.Fields, ltype.Field{
			Name: fmt.Sprintf("F%d", i+1),
			Type: ltype.VarChar(width + 16),
		})
	}
	return l
}

// TargetDDL returns the CDW DDL for the target table.
func (w Workload) TargetDDL(table string) string {
	nf, width := w.fillerCols()
	var sb strings.Builder
	fmt.Fprintf(&sb, "CREATE TABLE %s (K VARCHAR(12) NOT NULL, D DATE", table)
	for i := 0; i < nf; i++ {
		fmt.Fprintf(&sb, ", F%d VARCHAR(%d)", i+1, width+16)
	}
	if !w.NoPK {
		sb.WriteString(", PRIMARY KEY (K)")
	}
	sb.WriteString(")")
	return sb.String()
}

// Script returns the Example 2.1-style job script loading the generated
// file into table. extra is appended to the .begin import line (e.g.
// " sessions 4 maxerrors 100").
func (w Workload) Script(table, extra string) string {
	layout := w.Layout()
	var sb strings.Builder
	sb.WriteString(".logon host/bench,bench;\n.layout BenchLayout;\n")
	for _, f := range layout.Fields {
		fmt.Fprintf(&sb, ".field %s %s;\n", f.Name, f.Type)
	}
	fmt.Fprintf(&sb, ".begin import tables %s errortables %s_ET %s_UV%s;\n", table, table, table, extra)
	sb.WriteString(".dml label Ins;\ninsert into " + table + " values (trim(:K), cast(:D as DATE format 'YYYY-MM-DD')")
	for i := 1; i < len(layout.Fields)-1; i++ {
		fmt.Fprintf(&sb, ", :F%d", i)
	}
	sb.WriteString(");\n")
	sb.WriteString(".import infile bench.dat format vartext '|' layout BenchLayout apply Ins;\n.end load;\n")
	return sb.String()
}

// Generate produces the vartext input file.
func (w Workload) Generate() []byte {
	r := rand.New(rand.NewSource(w.Seed + 1))
	nf, width := w.fillerCols()
	var out []byte
	filler := make([]byte, width)
	for i := 0; i < w.Rows; i++ {
		key := i
		if w.DupRate > 0 && i > 0 && r.Float64() < w.DupRate {
			key = r.Intn(i) // duplicate an earlier key
		}
		date := fmt.Sprintf("20%02d-%02d-%02d", r.Intn(24), 1+r.Intn(12), 1+r.Intn(28))
		if w.ErrRate > 0 && r.Float64() < w.ErrRate {
			date = "9999-99-99"
		}
		out = append(out, fmt.Sprintf("%012d|%s", key, date)...)
		for c := 0; c < nf; c++ {
			out = append(out, '|')
			for j := range filler {
				filler[j] = 'a' + byte(r.Intn(26))
			}
			out = append(out, filler...)
		}
		out = append(out, '\n')
	}
	return out
}

// AvgRowBytes reports the mean encoded row size of generated data.
func AvgRowBytes(data []byte, rows int) int {
	if rows == 0 {
		return 0
	}
	return len(data) / rows
}
