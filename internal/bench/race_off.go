//go:build !race

package bench

// raceEnabled reports whether the race detector is compiled in. Timing
// assertions that compare CPU-bound work (gzip) against simulated I/O skew
// badly under the detector's instrumentation overhead and are skipped.
const raceEnabled = false
