package bench

import (
	"encoding/json"
	"fmt"
	"testing"

	"etlvirt/internal/sqlparse"
)

// JSONReport is the machine-readable benchmark artifact benchfig writes for
// CI (BENCH_10.json): throughput and phase split per run, the per-stage
// latency quantiles behind them, and allocation probes on the staging lane's
// hot paths.
type JSONReport struct {
	Scale       int              `json:"scale"`
	Fig7        []JSONRun        `json:"fig7"`
	StagingLane []JSONRun        `json:"staging_lane"`
	Allocs      []JSONAllocProbe `json:"allocs"`
}

// JSONRun is one benchmark run's outcome.
type JSONRun struct {
	Name          string      `json:"name"`
	Rows          int64       `json:"rows"`
	Bytes         int64       `json:"bytes"`
	RowsPerSec    float64     `json:"rows_per_sec"`
	BytesPerSec   float64     `json:"bytes_per_sec"`
	AcquisitionMS float64     `json:"acquisition_ms"`
	ApplicationMS float64     `json:"application_ms"`
	TotalMS       float64     `json:"total_ms"`
	Files         int64       `json:"files"`
	CopyBatches   int64       `json:"copy_batches,omitempty"`
	Stages        []JSONStage `json:"stages,omitempty"`
}

// JSONStage is one per-stage latency summary in a JSONRun.
type JSONStage struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
}

// JSONAllocProbe is one allocs/op measurement of a hot path.
type JSONAllocProbe struct {
	Name        string  `json:"name"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// jsonRun converts measured phase times into the report row shape.
func jsonRun(name string, p PhaseTimes, stages bool) JSONRun {
	r := JSONRun{
		Name:          name,
		Rows:          p.Rows,
		Bytes:         p.Bytes,
		AcquisitionMS: float64(p.Acquisition.Microseconds()) / 1e3,
		ApplicationMS: float64(p.Application.Microseconds()) / 1e3,
		TotalMS:       float64(p.Total.Microseconds()) / 1e3,
		Files:         p.Files,
		CopyBatches:   p.CopyBatches,
	}
	if secs := p.Total.Seconds(); secs > 0 {
		r.RowsPerSec = float64(p.Rows) / secs
		r.BytesPerSec = float64(p.Bytes) / secs
	}
	if stages {
		for _, s := range p.Stages {
			r.Stages = append(r.Stages, JSONStage{
				Name: s.Name, Count: s.Count, Mean: s.Mean, P50: s.P50, P95: s.P95,
			})
		}
	}
	return r
}

// allocProbes measures allocs/op on the staging lane's client-visible hot
// paths. The copy-scheduler internals have their own white-box alloc gates in
// internal/core; this probe tracks the manifest COPY statement build — the
// per-batch cost the scheduler pays on every issue.
func allocProbes() []JSONAllocProbe {
	files := make([]string, 16)
	for i := range files {
		files[i] = fmt.Sprintf("job42/part-%05d.csv.gz", i)
	}
	manifest := testing.AllocsPerRun(200, func() {
		st := &sqlparse.CopyStmt{
			Table:   sqlparse.TableName{Schema: "bench", Name: "stage"},
			From:    "store://job42/",
			Files:   files,
			Options: map[string]string{"format": "csv", "order": "__seq"},
		}
		if _, err := sqlparse.Print(st, sqlparse.DialectCDW); err != nil {
			panic(err)
		}
	})
	return []JSONAllocProbe{
		{Name: "copy_manifest_sql_16_files", AllocsPerOp: manifest},
	}
}

// BuildJSONReport runs the Figure 7 sweep and the staging-lane comparison
// and assembles the machine-readable benchmark report.
func BuildJSONReport(scale int) ([]byte, error) {
	if scale <= 0 {
		scale = RowsPerPaperMillion
	}
	rep := JSONReport{Scale: scale, Allocs: allocProbes()}
	fig7, err := Fig7(scale)
	if err != nil {
		return nil, err
	}
	for i, r := range fig7 {
		rep.Fig7 = append(rep.Fig7,
			jsonRun(fmt.Sprintf("fig7_%dM", r.PaperMRows), r.Times, i == len(fig7)-1))
	}
	lane, err := StagingLane(scale)
	if err != nil {
		return nil, err
	}
	for _, r := range lane {
		rep.StagingLane = append(rep.StagingLane, jsonRun(r.Name, r.Times, false))
	}
	return json.MarshalIndent(rep, "", "  ")
}
