package bench

import (
	"fmt"
	"strings"
	"time"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cdwnet"
	"etlvirt/internal/cloudstore"
	"etlvirt/internal/core"
	"etlvirt/internal/etlclient"
	"etlvirt/internal/etlscript"
	"etlvirt/internal/ltype"
	"etlvirt/internal/obs"
	"etlvirt/internal/sqlparse"
)

// RunConfig is one experiment run: a workload pushed through a freshly
// assembled stack.
type RunConfig struct {
	Workload     Workload
	Node         core.Config
	CDW          cdw.Options
	Sessions     int
	ChunkRecords int
	ScriptExtra  string // appended to .begin import (maxerrors etc.)
	// UplinkBytesPerSec throttles uploads to the object store.
	UplinkBytesPerSec int64
	// Trace runs the client with distributed tracing enabled and captures
	// the stitched cross-process Chrome trace in PhaseTimes.ChromeTrace.
	Trace bool
}

// PhaseTimes is the measured outcome of one run, phase-split as in Figure 7.
type PhaseTimes struct {
	Acquisition time.Duration
	Application time.Duration
	Other       time.Duration
	Total       time.Duration

	Rows        int64
	Bytes       int64
	Inserted    int64
	ErrorsET    int64
	ErrorsUV    int64
	ApplyStmts  int64
	Files       int64
	CopyBatches int64 // incremental COPY manifests landed during acquisition

	// Stages summarizes the node registry's per-stage latency histograms
	// accumulated over the run — the stage-level attribution behind the
	// phase split. Each run assembles a fresh stack, so the snapshot is the
	// run's own delta.
	Stages []StageSummary

	// ChromeTrace is the run's stitched distributed trace in Chrome
	// trace_event JSON, present when RunConfig.Trace was set.
	ChromeTrace []byte
}

// StageSummary condenses one stage histogram for benchmark reports.
type StageSummary struct {
	Name  string
	Count int64
	Mean  float64 // seconds (or the histogram's native unit)
	P50   float64
	P95   float64
}

// stageSummaries extracts non-empty histograms from a node registry.
func stageSummaries(node *core.Node) []StageSummary {
	var out []StageSummary
	for _, h := range node.Metrics().Histograms() {
		if h.Count == 0 {
			continue
		}
		out = append(out, StageSummary{
			Name:  h.Name,
			Count: h.Count,
			Mean:  h.Mean(),
			P50:   h.Quantile(0.5),
			P95:   h.Quantile(0.95),
		})
	}
	return out
}

// AcquireRateMBs returns the acquisition throughput in MB/s.
func (p PhaseTimes) AcquireRateMBs() float64 {
	if p.Acquisition <= 0 {
		return 0
	}
	return float64(p.Bytes) / p.Acquisition.Seconds() / 1e6
}

// RunImport generates the workload, assembles an in-process stack, runs the
// job through the virtualizer, and reports phase times from the node's job
// report (server-side perspective, as in the paper).
func RunImport(cfg RunConfig) (PhaseTimes, error) {
	data := cfg.Workload.Generate()

	store := cloudstore.NewMemStore()
	eng := cdw.NewEngine(store, cfg.CDW)
	srv := cdwnet.NewServer(eng)
	cdwAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return PhaseTimes{}, err
	}
	defer srv.Close()

	nodeCfg := cfg.Node
	nodeCfg.CDWAddr = cdwAddr
	var nodeStore cloudstore.Store = store
	if cfg.UplinkBytesPerSec > 0 {
		nodeStore = &cloudstore.ThrottledStore{Store: store,
			Link: &cloudstore.Link{BytesPerSec: cfg.UplinkBytesPerSec}}
	}
	node := core.NewNode(nodeCfg, nodeStore)
	nodeAddr, err := node.Listen("127.0.0.1:0")
	if err != nil {
		return PhaseTimes{}, err
	}
	defer node.Close()

	if _, err := eng.ExecSQL(cfg.Workload.TargetDDL("bench.target")); err != nil {
		return PhaseTimes{}, err
	}

	extra := cfg.ScriptExtra
	if cfg.Sessions > 1 {
		extra += fmt.Sprintf(" sessions %d", cfg.Sessions)
	}
	script, err := etlscript.Parse(cfg.Workload.Script("bench.target", extra))
	if err != nil {
		return PhaseTimes{}, err
	}
	opts := etlclient.Options{
		Addr:         nodeAddr,
		ChunkRecords: cfg.ChunkRecords,
		ReadFile:     func(string) ([]byte, error) { return data, nil },
		Trace:        cfg.Trace,
	}
	clientRes, err := etlclient.Run(script, opts)
	if err != nil {
		return PhaseTimes{}, err
	}
	var chromeTrace []byte
	if cfg.Trace && clientRes.TraceID != "" {
		tid, err := obs.ParseTraceID(clientRes.TraceID)
		if err != nil {
			return PhaseTimes{}, err
		}
		snap, ok := node.Tracer().TraceByID(tid)
		if !ok {
			return PhaseTimes{}, fmt.Errorf("bench: traced run left no trace %s on the node", clientRes.TraceID)
		}
		if chromeTrace, err = snap.ChromeTrace(); err != nil {
			return PhaseTimes{}, err
		}
	}

	reports := node.Reports()
	if len(reports) != 1 {
		return PhaseTimes{}, fmt.Errorf("bench: expected one job report, got %d", len(reports))
	}
	r := reports[0]
	return PhaseTimes{
		Acquisition: r.Acquisition,
		Application: r.Application,
		Other:       r.Other,
		Total:       r.Total(),
		Rows:        r.RowsIn,
		Bytes:       r.BytesIn,
		Inserted:    r.Inserted,
		ErrorsET:    r.ErrorsET,
		ErrorsUV:    r.ErrorsUV,
		ApplyStmts:  r.ApplyStmts,
		Files:       r.FilesWritten,
		CopyBatches: r.CopyBatches,
		Stages:      stageSummaries(node),
		ChromeTrace: chromeTrace,
	}, nil
}

// RunBaselineSingleton is the Figure 11 baseline: a client that loads each
// record with its own INSERT statement directly against the CDW, logging
// each erroneous tuple into the error table as it is encountered. No bulk
// staging, no adaptive retries — consistent cost regardless of error rate.
func RunBaselineSingleton(cfg RunConfig) (PhaseTimes, error) {
	data := cfg.Workload.Generate()
	layout := cfg.Workload.Layout()

	store := cloudstore.NewMemStore()
	eng := cdw.NewEngine(store, cfg.CDW)
	srv := cdwnet.NewServer(eng)
	cdwAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return PhaseTimes{}, err
	}
	defer srv.Close()
	client, err := cdwnet.Dial(cdwAddr)
	if err != nil {
		return PhaseTimes{}, err
	}
	defer client.Close()

	if _, err := client.Exec(cfg.Workload.TargetDDL("bench.target")); err != nil {
		return PhaseTimes{}, err
	}
	if _, err := client.Exec(
		"CREATE TABLE bench.target_ET (SEQNO BIGINT, ERRCODE INTEGER, ERRMSG VARCHAR(1024))"); err != nil {
		return PhaseTimes{}, err
	}

	start := time.Now()
	lines := ltype.SplitVartextLines(data)
	var inserted, errors int64
	seen := make(map[string]bool, len(lines))
	for i, line := range lines {
		fields := ltype.VartextRecord(line, '|')
		if len(fields) != len(layout.Fields) {
			errors++
			continue
		}
		// uniqueness is checked client-side against the keys already loaded,
		// the way a naive migration harness would
		if seen[fields[0]] {
			errors++
			if err := logError(client, i+1, cdw.CodeUniqueness, "duplicate key"); err != nil {
				return PhaseTimes{}, err
			}
			continue
		}
		sql := singletonInsert("bench.target", fields)
		if _, err := client.Exec(sql); err != nil {
			if _, ok := err.(*cdw.Error); !ok {
				return PhaseTimes{}, err
			}
			errors++
			if err := logError(client, i+1, cdw.AsError(err).Code, cdw.AsError(err).Msg); err != nil {
				return PhaseTimes{}, err
			}
			continue
		}
		seen[fields[0]] = true
		inserted++
	}
	total := time.Since(start)
	return PhaseTimes{
		Acquisition: total, // the baseline has no phase separation
		Total:       total,
		Rows:        int64(len(lines)),
		Bytes:       int64(len(data)),
		Inserted:    inserted,
		ErrorsET:    errors,
		ApplyStmts:  int64(len(lines)),
	}, nil
}

func singletonInsert(table string, fields []string) string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO " + table + " VALUES (")
	for i, f := range fields {
		if i > 0 {
			sb.WriteString(", ")
		}
		if i == 1 {
			sb.WriteString("to_date(")
			writeStr(&sb, f)
			sb.WriteString(", 'YYYY-MM-DD')")
			continue
		}
		writeStr(&sb, strings.TrimSpace(f))
	}
	sb.WriteString(")")
	return sb.String()
}

func writeStr(sb *strings.Builder, s string) {
	sb.WriteByte('\'')
	sb.WriteString(strings.ReplaceAll(s, "'", "''"))
	sb.WriteByte('\'')
}

func logError(c *cdwnet.Client, seq, code int, msg string) error {
	ins := &sqlparse.InsertStmt{
		Table: sqlparse.TableName{Schema: "bench", Name: "target_ET"},
		Rows: [][]sqlparse.Expr{{
			&sqlparse.Literal{Kind: sqlparse.LitInt, Int: int64(seq)},
			&sqlparse.Literal{Kind: sqlparse.LitInt, Int: int64(code)},
			&sqlparse.Literal{Kind: sqlparse.LitString, Str: msg},
		}},
	}
	sql, err := sqlparse.Print(ins, sqlparse.DialectCDW)
	if err != nil {
		return err
	}
	_, err = c.Exec(sql)
	return err
}
